(** Hand-written lexer for CoreDSL.

   Replaces the Xtext-generated front-end of the paper. Supports C-style
   comments, decimal/hex/binary literals, and Verilog-style sized literals
   such as [7'd0] or [3'b101] (which carry their type, cf. Section 2.3). *)

module Bn = Bitvec.Bn
type token =
    ID of string
  | INT of { value : Ast.Bn.t; forced : Bitvec.ty option; }
  | STRING of string
  | KW of string
  | PUNCT of string
  | EOF
type lexed = { tok : token; loc : Ast.loc; }
val keywords : string list
val is_keyword : string -> bool
val is_ident_start : char -> bool
val is_ident_char : char -> bool
val is_digit : char -> bool
val is_hex_digit : char -> bool
type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;
}
val cur_loc : state -> Ast.loc
val peek_char : state -> char option
val peek_char2 : state -> char option
val advance : state -> unit
val skip_ws : state -> unit
val lex_ident : state -> string
val lex_digits : state -> (char -> bool) -> string
val lex_number : state -> token
val lex_string : state -> token
val puncts : string list
val lex_punct : state -> token
val next_token : state -> lexed
val tokenize : ?file:string -> string -> lexed list
