(* Hand-written lexer for CoreDSL.

   Replaces the Xtext-generated front-end of the paper. Supports C-style
   comments, decimal/hex/binary literals, and Verilog-style sized literals
   such as [7'd0] or [3'b101] (which carry their type, cf. Section 2.3). *)

module Bn = Bitvec.Bn
open Ast

type token =
  | ID of string
  | INT of { value : Bn.t; forced : Bitvec.ty option }
  | STRING of string
  | KW of string
  | PUNCT of string
  | EOF

type lexed = { tok : token; loc : loc }

let keywords =
  [
    "import"; "InstructionSet"; "Core"; "extends"; "provides";
    "architectural_state"; "instructions"; "always"; "functions";
    "encoding"; "behavior"; "assembly"; "register"; "extern"; "const";
    "signed"; "unsigned"; "if"; "else"; "for"; "while"; "do"; "switch"; "case";
    "default"; "break"; "return"; "spawn";
    "void"; "bool"; "int"; "char"; "long"; "short"; "true"; "false";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

type state = { src : string; file : string; mutable pos : int; mutable line : int; mutable bol : int }

let cur_loc st = { file = st.file; line = st.line; col = st.pos - st.bol + 1 }

let peek_char st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let peek_char2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek_char st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let rec skip_ws st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '/' when peek_char2 st = Some '/' ->
      while peek_char st <> None && peek_char st <> Some '\n' do
        advance st
      done;
      skip_ws st
  | Some '/' when peek_char2 st = Some '*' ->
      advance st;
      advance st;
      let rec go () =
        match (peek_char st, peek_char2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> syntax_error (cur_loc st) "unterminated comment"
        | _ ->
            advance st;
            go ()
      in
      go ();
      skip_ws st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while (match peek_char st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_digits st pred =
  let b = Buffer.create 8 in
  let rec go () =
    match peek_char st with
    | Some c when pred c || c = '_' ->
        if c <> '_' then Buffer.add_char b c;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  Buffer.contents b

(* A number, possibly a Verilog-sized literal <width>'<base><digits>. *)
let lex_number st =
  let loc = cur_loc st in
  let digits =
    match (peek_char st, peek_char2 st) with
    | Some '0', Some ('x' | 'X') ->
        advance st;
        advance st;
        "0x" ^ lex_digits st is_hex_digit
    | Some '0', Some ('b' | 'B') ->
        advance st;
        advance st;
        "0b" ^ lex_digits st (fun c -> c = '0' || c = '1')
    | _ -> lex_digits st is_digit
  in
  if digits = "" || digits = "0x" || digits = "0b" then
    syntax_error loc "malformed numeric literal";
  match peek_char st with
  | Some '\'' ->
      (* sized literal: the digits lexed so far are the width *)
      advance st;
      let base =
        match peek_char st with
        | Some (('d' | 'D' | 'b' | 'B' | 'h' | 'H' | 'x' | 'X' | 'o' | 'O') as c) ->
            advance st;
            c
        | _ -> syntax_error (cur_loc st) "expected base character after ' in sized literal"
      in
      let width =
        try int_of_string digits
        with _ -> syntax_error loc "width of sized literal must be a plain decimal"
      in
      let body =
        match base with
        | 'd' | 'D' -> lex_digits st is_digit
        | 'b' | 'B' -> lex_digits st (fun c -> c = '0' || c = '1')
        | 'h' | 'H' | 'x' | 'X' -> lex_digits st is_hex_digit
        | _ -> lex_digits st (fun c -> c >= '0' && c <= '7')
      in
      if body = "" then syntax_error (cur_loc st) "empty sized literal";
      let value =
        match base with
        | 'd' | 'D' -> Bn.of_string body
        | 'b' | 'B' -> Bn.of_string ("0b" ^ body)
        | 'h' | 'H' | 'x' | 'X' -> Bn.of_string ("0x" ^ body)
        | _ ->
            (* octal: fold manually *)
            String.fold_left
              (fun acc c -> Bn.add (Bn.mul acc (Bn.of_int 8)) (Bn.of_int (Char.code c - 48)))
              Bn.zero body
      in
      INT { value; forced = Some (Bitvec.unsigned_ty width) }
  | _ -> INT { value = Bn.of_string digits; forced = None }

let lex_string st =
  advance st (* opening quote *);
  let b = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek_char st with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some c -> Buffer.add_char b c
        | None -> syntax_error (cur_loc st) "unterminated string");
        advance st;
        go ()
    | Some c ->
        Buffer.add_char b c;
        advance st;
        go ()
    | None -> syntax_error (cur_loc st) "unterminated string"
  in
  go ();
  STRING (Buffer.contents b)

(* Multi-character punctuation, longest match first. *)
let puncts =
  [
    "<<="; ">>="; "::"; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||";
    "++"; "--"; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^=";
    "{"; "}"; "("; ")"; "["; "]"; ";"; ":"; ","; "?"; "."; "=";
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "#";
  ]

let lex_punct st =
  let rest = String.length st.src - st.pos in
  let matches p = String.length p <= rest && String.sub st.src st.pos (String.length p) = p in
  match List.find_opt matches puncts with
  | Some p ->
      for _ = 1 to String.length p do
        advance st
      done;
      PUNCT p
  | None -> syntax_error (cur_loc st) "unexpected character '%c'" st.src.[st.pos]

let next_token st =
  skip_ws st;
  let loc = cur_loc st in
  let tok =
    match peek_char st with
    | None -> EOF
    | Some c when is_ident_start c ->
        let id = lex_ident st in
        if is_keyword id then KW id else ID id
    | Some c when is_digit c -> lex_number st
    | Some '"' -> lex_string st
    | Some _ -> lex_punct st
  in
  { tok; loc }

(* Tokenize the whole input. *)
let tokenize ?(file = "<input>") src =
  let st = { src; file; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    let t = next_token st in
    match t.tok with EOF -> List.rev (t :: acc) | _ -> go (t :: acc)
  in
  go []
