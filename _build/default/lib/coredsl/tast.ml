(* Typed AST: the output of {!Typecheck} and the input to both the reference
   interpreter ({!Interp}) and the Longnail IR lowering.

   Every expression carries its resolved CoreDSL type. All implicit
   conversions have been made explicit as [T_cast] nodes, so consumers can
   rely on operand types matching the {!Bitvec} operator algebra exactly. *)

open Ast

type texpr = { te : texpr_node; tty : Bitvec.ty; tloc : loc }

and texpr_node =
  | T_lit of Bitvec.t
  | T_local of string  (* local variable or function parameter *)
  | T_field of string  (* encoding field of the current instruction *)
  | T_reg of string  (* scalar architectural register read (incl. PC) *)
  | T_regfile of string * texpr  (* register file element read *)
  | T_rom of string * texpr  (* constant register file read *)
  | T_mem of { space : string; addr : texpr; elems : int }
      (* little-endian read of [elems] consecutive elements *)
  | T_binop of binop * texpr * texpr
  | T_unop of unop * texpr
  | T_cast of texpr  (* cast/convert the operand to [tty] *)
  | T_concat of texpr * texpr
  | T_extract of { value : texpr; lo : texpr; width : int }
      (* bit-range extract; [lo] may be dynamic, the width is static *)
  | T_ternary of texpr * texpr * texpr
  | T_call of string * texpr list

type tstmt = { ts : tstmt_node; tsloc : loc }

and tstmt_node =
  | S_local_decl of string * Bitvec.ty * texpr option
  | S_assign_local of string * texpr
  | S_assign_reg of string * texpr
  | S_assign_regfile of string * texpr * texpr  (* file, index, value *)
  | S_assign_mem of { space : string; addr : texpr; value : texpr; elems : int }
  | S_if of texpr * tstmt list * tstmt list
  | S_for of { init : tstmt list; cond : texpr; step : tstmt list; body : tstmt list }
  | S_spawn of tstmt list
  | S_return of texpr option
  | S_expr of texpr

type tfunc = {
  tf_name : string;
  tf_ret : Bitvec.ty option;  (* None = void *)
  tf_params : (string * Bitvec.ty) list;
  tf_body : tstmt list;
}

(* One encoding field segment: [len] bits of the field starting at field bit
   [fld_lo] appear in the instruction word starting at bit [instr_lo]. *)
type field_segment = { instr_lo : int; fld_lo : int; seg_len : int }

type field_info = { fld_name : string; fld_width : int; segments : field_segment list }

type tinstr = {
  ti_name : string;
  enc_width : int;
  mask : Bitvec.t;  (* 1-bits where the encoding is fixed *)
  match_bits : Bitvec.t;  (* fixed bit values under the mask *)
  fields : field_info list;
  ti_behavior : tstmt list;
}

type talways = { ta_name : string; ta_body : tstmt list }

type tunit = {
  tu_name : string;
  elab : Elaborate.elaborated;
  tinstrs : tinstr list;
  talways : talways list;
  tfuncs : tfunc list;
}

let find_field ti name = List.find_opt (fun f -> f.fld_name = name) ti.fields
let find_tfunc tu name = List.find_opt (fun f -> f.tf_name = name) tu.tfuncs
let find_tinstr tu name = List.find_opt (fun i -> i.ti_name = name) tu.tinstrs

(* Does this statement list (transitively) contain a spawn block? *)
let rec contains_spawn stmts =
  List.exists
    (fun st ->
      match st.ts with
      | S_spawn _ -> true
      | S_if (_, a, b) -> contains_spawn a || contains_spawn b
      | S_for { body; _ } -> contains_spawn body
      | _ -> false)
    stmts

(* ---- pretty-printing (for tests and debug dumps) ---- *)

let rec pp_texpr fmt (e : texpr) =
  let open Format in
  (match e.te with
  | T_lit v -> fprintf fmt "%s" (Bitvec.to_string v)
  | T_local n -> fprintf fmt "%s" n
  | T_field n -> fprintf fmt "%s" n
  | T_reg n -> fprintf fmt "%s" n
  | T_regfile (n, i) -> fprintf fmt "%s[%a]" n pp_texpr i
  | T_rom (n, i) -> fprintf fmt "%s[%a]" n pp_texpr i
  | T_mem { space; addr; elems } -> fprintf fmt "%s[%a +: %d]" space pp_texpr addr elems
  | T_binop (op, a, b) -> fprintf fmt "(%a %s %a)" pp_texpr a (binop_name op) pp_texpr b
  | T_unop (op, a) ->
      fprintf fmt "%s%a" (match op with Neg -> "-" | Not -> "~" | Lnot -> "!") pp_texpr a
  | T_cast a -> fprintf fmt "(%s)%a" (Bitvec.ty_to_string e.tty) pp_texpr a
  | T_concat (a, b) -> fprintf fmt "(%a :: %a)" pp_texpr a pp_texpr b
  | T_extract { value; lo; width } ->
      fprintf fmt "%a[%a +: %d]" pp_texpr value pp_texpr lo width
  | T_ternary (c, t, f) -> fprintf fmt "(%a ? %a : %a)" pp_texpr c pp_texpr t pp_texpr f
  | T_call (n, args) ->
      fprintf fmt "%s(" n;
      List.iteri (fun i a -> fprintf fmt "%s%a" (if i > 0 then ", " else "") pp_texpr a) args;
      fprintf fmt ")");
  ignore fmt

and binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Land -> "&&"
  | Lor -> "||"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
