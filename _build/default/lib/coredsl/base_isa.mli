(** Built-in CoreDSL description of the RV32I base instruction set.

   ISAX descriptions import this via [import "RV32I.core_desc"] and extend
   it (Figure 1 of the paper). The description declares the standard
   register file X, the program counter and byte-addressable main memory,
   and defines the RV32I unprivileged instructions. It doubles as a large
   test input for the front-end: the interpreter executing these behaviors
   is cross-checked against the hand-written ISS in lib/riscv. *)

(** The RV32I base instruction set. *)
val rv32i : string

(** The RV32M standard extension plus the RV32IM core definition. *)
val rv32m : string

(** Resolves the built-in import paths ("RV32I.core_desc", ...). *)
val provider : string -> string option
