(** Reference interpreter for typed CoreDSL behaviors.

   Executes instruction behaviors and always-blocks against an
   architectural-state model. This is the golden model: the RTL generated
   by Longnail is co-simulated against it in the integration tests
   (Section 5.3 of the paper verifies extended cores by RTL simulation). *)

module Bn = Bitvec.Bn
exception Runtime_error of Ast.loc * string
val runtime_error :
  Ast.loc -> ('a, Format.formatter, unit, 'b) format4 -> 'a
type event =
    Wr_reg of string * Bitvec.t
  | Wr_regfile of string * int * Bitvec.t
  | Wr_mem of string * int * Bitvec.t
type state = {
  unit_ : Tast.tunit;
  regs : (string, Bitvec.t array) Hashtbl.t;
  mems : (string, (int, Bitvec.t) Hashtbl.t) Hashtbl.t;
  mutable trace : event list;
}
val create : Tast.tunit -> state
val reg_array : state -> string -> Bitvec.t array
val read_reg : state -> string -> Bitvec.t
val write_reg : state -> string -> Bitvec.t -> unit
val read_regfile : state -> string -> int -> Bitvec.t
val write_regfile : state -> string -> int -> Bitvec.t -> unit
val space_info : state -> string -> Elaborate.addr_space
val mem_table : state -> string -> (int, Bitvec.t) Hashtbl.t
val read_mem_elem : state -> string -> int -> Bitvec.t
val write_mem_elem : state -> string -> int -> Bitvec.t -> unit
val read_mem : state -> string -> int -> int -> Bitvec.t
val write_mem : state -> string -> int -> int -> Bitvec.t -> unit
type frame = {
  locals : (string, Bitvec.t) Hashtbl.t;
  fields : (string * Bitvec.t) list;
}
exception Return_exc of Bitvec.t option
val eval : state -> frame -> Tast.texpr -> Bitvec.t
val eval_binop :
  state ->
  frame ->
  Ast.loc ->
  Ast.binop ->
  Tast.texpr -> Tast.texpr -> Bitvec.t
val exec_stmt : state -> frame -> Tast.tstmt -> unit
val exec_stmts : state -> frame -> Tast.tstmt list -> unit
val call_function :
  state -> Tast.tfunc -> Bitvec.t list -> Bitvec.t option
val decode_field : Bitvec.t -> Tast.field_info -> Bitvec.t
val matches : Tast.tinstr -> Bitvec.t -> bool
val exec_instr :
  state -> Tast.tinstr -> instr_word:Bitvec.t -> unit
val exec_always : state -> Tast.talways -> unit
val decode : state -> Bitvec.t -> Tast.tinstr option
val encode : Tast.tinstr -> (string * Bitvec.t) list -> Bitvec.t
