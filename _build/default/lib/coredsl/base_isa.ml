(* Built-in CoreDSL description of the RV32I base instruction set.

   ISAX descriptions import this via [import "RV32I.core_desc"] and extend
   it (Figure 1 of the paper). The description declares the standard
   register file X, the program counter and byte-addressable main memory,
   and defines the RV32I unprivileged instructions. It doubles as a large
   test input for the front-end: the interpreter executing these behaviors
   is cross-checked against the hand-written ISS in lib/riscv. *)

let rv32i =
  {|
InstructionSet RV32I {
  architectural_state {
    unsigned int XLEN = 32;
    register unsigned<XLEN> X[32];
    register unsigned<XLEN> PC [[is_pc]];
    extern unsigned<8> MEM[4294967296] [[is_main_mem]];
  }
  instructions {
    LUI {
      encoding: imm[31:12] :: rd[4:0] :: 7'b0110111;
      behavior: { if (rd != 0) X[rd] = imm; }
    }
    AUIPC {
      encoding: imm[31:12] :: rd[4:0] :: 7'b0010111;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(PC + imm); }
    }
    JAL {
      encoding: imm[20:20] :: imm[10:1] :: imm[11:11] :: imm[19:12] :: rd[4:0] :: 7'b1101111;
      behavior: {
        if (rd != 0) X[rd] = (unsigned<32>)(PC + 4);
        PC = (unsigned<32>)(PC + (signed<21>)imm);
      }
    }
    JALR {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b1100111;
      behavior: {
        unsigned<32> target = (unsigned<32>)((X[rs1] + (signed<12>)imm) & 4294967294);
        if (rd != 0) X[rd] = (unsigned<32>)(PC + 4);
        PC = target;
      }
    }
    BEQ {
      encoding: imm[12:12] :: imm[10:5] :: rs2[4:0] :: rs1[4:0] :: 3'b000 :: imm[4:1] :: imm[11:11] :: 7'b1100011;
      behavior: { if (X[rs1] == X[rs2]) PC = (unsigned<32>)(PC + (signed<13>)imm); }
    }
    BNE {
      encoding: imm[12:12] :: imm[10:5] :: rs2[4:0] :: rs1[4:0] :: 3'b001 :: imm[4:1] :: imm[11:11] :: 7'b1100011;
      behavior: { if (X[rs1] != X[rs2]) PC = (unsigned<32>)(PC + (signed<13>)imm); }
    }
    BLT {
      encoding: imm[12:12] :: imm[10:5] :: rs2[4:0] :: rs1[4:0] :: 3'b100 :: imm[4:1] :: imm[11:11] :: 7'b1100011;
      behavior: { if ((signed)X[rs1] < (signed)X[rs2]) PC = (unsigned<32>)(PC + (signed<13>)imm); }
    }
    BGE {
      encoding: imm[12:12] :: imm[10:5] :: rs2[4:0] :: rs1[4:0] :: 3'b101 :: imm[4:1] :: imm[11:11] :: 7'b1100011;
      behavior: { if ((signed)X[rs1] >= (signed)X[rs2]) PC = (unsigned<32>)(PC + (signed<13>)imm); }
    }
    BLTU {
      encoding: imm[12:12] :: imm[10:5] :: rs2[4:0] :: rs1[4:0] :: 3'b110 :: imm[4:1] :: imm[11:11] :: 7'b1100011;
      behavior: { if (X[rs1] < X[rs2]) PC = (unsigned<32>)(PC + (signed<13>)imm); }
    }
    BGEU {
      encoding: imm[12:12] :: imm[10:5] :: rs2[4:0] :: rs1[4:0] :: 3'b111 :: imm[4:1] :: imm[11:11] :: 7'b1100011;
      behavior: { if (X[rs1] >= X[rs2]) PC = (unsigned<32>)(PC + (signed<13>)imm); }
    }
    LB {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0000011;
      behavior: {
        unsigned<32> addr = (unsigned<32>)(X[rs1] + (signed<12>)imm);
        if (rd != 0) X[rd] = (unsigned<32>)(signed<32>)(signed<8>)MEM[addr];
      }
    }
    LH {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b001 :: rd[4:0] :: 7'b0000011;
      behavior: {
        unsigned<32> addr = (unsigned<32>)(X[rs1] + (signed<12>)imm);
        if (rd != 0) X[rd] = (unsigned<32>)(signed<32>)(signed<16>)MEM[addr+1:addr];
      }
    }
    LW {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b010 :: rd[4:0] :: 7'b0000011;
      behavior: {
        unsigned<32> addr = (unsigned<32>)(X[rs1] + (signed<12>)imm);
        if (rd != 0) X[rd] = MEM[addr+3:addr];
      }
    }
    LBU {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b100 :: rd[4:0] :: 7'b0000011;
      behavior: {
        unsigned<32> addr = (unsigned<32>)(X[rs1] + (signed<12>)imm);
        if (rd != 0) X[rd] = (unsigned<32>)MEM[addr];
      }
    }
    LHU {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b101 :: rd[4:0] :: 7'b0000011;
      behavior: {
        unsigned<32> addr = (unsigned<32>)(X[rs1] + (signed<12>)imm);
        if (rd != 0) X[rd] = (unsigned<32>)MEM[addr+1:addr];
      }
    }
    SB {
      encoding: imm[11:5] :: rs2[4:0] :: rs1[4:0] :: 3'b000 :: imm[4:0] :: 7'b0100011;
      behavior: {
        unsigned<32> addr = (unsigned<32>)(X[rs1] + (signed<12>)imm);
        MEM[addr] = (unsigned<8>)X[rs2];
      }
    }
    SH {
      encoding: imm[11:5] :: rs2[4:0] :: rs1[4:0] :: 3'b001 :: imm[4:0] :: 7'b0100011;
      behavior: {
        unsigned<32> addr = (unsigned<32>)(X[rs1] + (signed<12>)imm);
        MEM[addr+1:addr] = (unsigned<16>)X[rs2];
      }
    }
    SW {
      encoding: imm[11:5] :: rs2[4:0] :: rs1[4:0] :: 3'b010 :: imm[4:0] :: 7'b0100011;
      behavior: {
        unsigned<32> addr = (unsigned<32>)(X[rs1] + (signed<12>)imm);
        MEM[addr+3:addr] = X[rs2];
      }
    }
    ADDI {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0010011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] + (signed<12>)imm); }
    }
    SLTI {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b010 :: rd[4:0] :: 7'b0010011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)((signed)X[rs1] < (signed<12>)imm); }
    }
    SLTIU {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b011 :: rd[4:0] :: 7'b0010011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] < (unsigned<32>)(signed<32>)(signed<12>)imm); }
    }
    XORI {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b100 :: rd[4:0] :: 7'b0010011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] ^ (unsigned<32>)(signed<32>)(signed<12>)imm); }
    }
    ORI {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b110 :: rd[4:0] :: 7'b0010011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] | (unsigned<32>)(signed<32>)(signed<12>)imm); }
    }
    ANDI {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b0010011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] & (unsigned<32>)(signed<32>)(signed<12>)imm); }
    }
    SLLI {
      encoding: 7'b0000000 :: shamt[4:0] :: rs1[4:0] :: 3'b001 :: rd[4:0] :: 7'b0010011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] << shamt); }
    }
    SRLI {
      encoding: 7'b0000000 :: shamt[4:0] :: rs1[4:0] :: 3'b101 :: rd[4:0] :: 7'b0010011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] >> shamt); }
    }
    SRAI {
      encoding: 7'b0100000 :: shamt[4:0] :: rs1[4:0] :: 3'b101 :: rd[4:0] :: 7'b0010011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)((signed)X[rs1] >> shamt); }
    }
    ADD {
      encoding: 7'b0000000 :: rs2[4:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0110011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] + X[rs2]); }
    }
    SUB {
      encoding: 7'b0100000 :: rs2[4:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0110011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] - X[rs2]); }
    }
    SLL {
      encoding: 7'b0000000 :: rs2[4:0] :: rs1[4:0] :: 3'b001 :: rd[4:0] :: 7'b0110011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] << (X[rs2] & 31)); }
    }
    SLT {
      encoding: 7'b0000000 :: rs2[4:0] :: rs1[4:0] :: 3'b010 :: rd[4:0] :: 7'b0110011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)((signed)X[rs1] < (signed)X[rs2]); }
    }
    SLTU {
      encoding: 7'b0000000 :: rs2[4:0] :: rs1[4:0] :: 3'b011 :: rd[4:0] :: 7'b0110011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] < X[rs2]); }
    }
    XOR {
      encoding: 7'b0000000 :: rs2[4:0] :: rs1[4:0] :: 3'b100 :: rd[4:0] :: 7'b0110011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] ^ X[rs2]); }
    }
    SRL {
      encoding: 7'b0000000 :: rs2[4:0] :: rs1[4:0] :: 3'b101 :: rd[4:0] :: 7'b0110011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] >> (X[rs2] & 31)); }
    }
    SRA {
      encoding: 7'b0100000 :: rs2[4:0] :: rs1[4:0] :: 3'b101 :: rd[4:0] :: 7'b0110011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)((signed)X[rs1] >> (X[rs2] & 31)); }
    }
    OR {
      encoding: 7'b0000000 :: rs2[4:0] :: rs1[4:0] :: 3'b110 :: rd[4:0] :: 7'b0110011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] | X[rs2]); }
    }
    AND {
      encoding: 7'b0000000 :: rs2[4:0] :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b0110011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] & X[rs2]); }
    }
    FENCE {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0001111;
      behavior: { }
    }
    ECALL {
      encoding: 12'd0 :: 5'd0 :: 3'b000 :: 5'd0 :: 7'b1110011;
      behavior: { }
    }
    EBREAK {
      encoding: 12'd1 :: 5'd0 :: 3'b000 :: 5'd0 :: 7'b1110011;
      behavior: { }
    }
  }
}
|}

(* The RV32M standard extension, demonstrating instruction-set
   composition: it extends RV32I and is combined with it through the
   RV32IM core definition. Division follows the RISC-V corner-case rules
   (x/0 = -1, min/-1 = min, x%0 = x, min%-1 = 0), which fall out of the
   bitwidth-aware arithmetic plus the final truncating cast. *)
let rv32m =
  {|
import "RV32I.core_desc"

InstructionSet RV32M extends RV32I {
  instructions {
    MUL {
      encoding: 7'b0000001 :: rs2[4:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0110011;
      behavior: { if (rd != 0) X[rd] = (unsigned<32>)(X[rs1] * X[rs2]); }
    }
    MULH {
      encoding: 7'b0000001 :: rs2[4:0] :: rs1[4:0] :: 3'b001 :: rd[4:0] :: 7'b0110011;
      behavior: {
        signed<64> p = (signed<64>)((signed)X[rs1] * (signed)X[rs2]);
        if (rd != 0) X[rd] = (unsigned<32>)(p >> 32);
      }
    }
    MULHSU {
      encoding: 7'b0000001 :: rs2[4:0] :: rs1[4:0] :: 3'b010 :: rd[4:0] :: 7'b0110011;
      behavior: {
        signed<65> p = (signed<65>)((signed)X[rs1] * X[rs2]);
        if (rd != 0) X[rd] = (unsigned<32>)(p >> 32);
      }
    }
    MULHU {
      encoding: 7'b0000001 :: rs2[4:0] :: rs1[4:0] :: 3'b011 :: rd[4:0] :: 7'b0110011;
      behavior: {
        unsigned<64> p = X[rs1] * X[rs2];
        if (rd != 0) X[rd] = (unsigned<32>)(p >> 32);
      }
    }
    DIV {
      encoding: 7'b0000001 :: rs2[4:0] :: rs1[4:0] :: 3'b100 :: rd[4:0] :: 7'b0110011;
      behavior: {
        if (rd != 0) {
          if (X[rs2] == 0) X[rd] = 4294967295;
          else X[rd] = (unsigned<32>)((signed)X[rs1] / (signed)X[rs2]);
        }
      }
    }
    DIVU {
      encoding: 7'b0000001 :: rs2[4:0] :: rs1[4:0] :: 3'b101 :: rd[4:0] :: 7'b0110011;
      behavior: {
        if (rd != 0) {
          if (X[rs2] == 0) X[rd] = 4294967295;
          else X[rd] = (unsigned<32>)(X[rs1] / X[rs2]);
        }
      }
    }
    REM {
      encoding: 7'b0000001 :: rs2[4:0] :: rs1[4:0] :: 3'b110 :: rd[4:0] :: 7'b0110011;
      behavior: {
        if (rd != 0) {
          if (X[rs2] == 0) X[rd] = X[rs1];
          else X[rd] = (unsigned<32>)((signed)X[rs1] % (signed)X[rs2]);
        }
      }
    }
    REMU {
      encoding: 7'b0000001 :: rs2[4:0] :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b0110011;
      behavior: {
        if (rd != 0) {
          if (X[rs2] == 0) X[rd] = X[rs1];
          else X[rd] = (unsigned<32>)(X[rs1] % X[rs2]);
        }
      }
    }
  }
}

Core RV32IM provides RV32M {
}
|}

(* Default import provider: resolves the built-in base ISAs. *)
let provider = function
  | "RV32I.core_desc" | "rv32i.core_desc" | "RV32I" -> Some rv32i
  | "RV32M.core_desc" | "rv32m.core_desc" | "RV32M" -> Some rv32m
  | _ -> None
