(* Reference interpreter for typed CoreDSL behaviors.

   Executes instruction behaviors and always-blocks against an
   architectural-state model. This is the golden model: the RTL generated
   by Longnail is co-simulated against it in the integration tests
   (Section 5.3 of the paper verifies extended cores by RTL simulation). *)

module Bn = Bitvec.Bn
open Ast
open Tast

exception Runtime_error of loc * string

let runtime_error loc fmt = Format.kasprintf (fun m -> raise (Runtime_error (loc, m))) fmt

(* A write performed during execution, for tracing and co-simulation. *)
type event =
  | Wr_reg of string * Bitvec.t
  | Wr_regfile of string * int * Bitvec.t
  | Wr_mem of string * int * Bitvec.t  (* single element *)

type state = {
  unit_ : tunit;
  regs : (string, Bitvec.t array) Hashtbl.t;
  mems : (string, (int, Bitvec.t) Hashtbl.t) Hashtbl.t;
  mutable trace : event list;  (* newest first *)
}

let create (tu : tunit) =
  let regs = Hashtbl.create 8 and mems = Hashtbl.create 2 in
  List.iter
    (fun (r : Elaborate.reg) ->
      let a =
        match r.rinit with
        | Some init when Array.length init = r.elems -> Array.map Fun.id init
        | Some init ->
            let a = Array.make r.elems (Bitvec.zero r.rty) in
            Array.blit init 0 a 0 (Array.length init);
            a
        | None -> Array.make r.elems (Bitvec.zero r.rty)
      in
      Hashtbl.replace regs r.rname a)
    tu.elab.regs;
  List.iter
    (fun (s : Elaborate.addr_space) -> Hashtbl.replace mems s.sname (Hashtbl.create 64))
    tu.elab.spaces;
  { unit_ = tu; regs; mems; trace = [] }

(* ---- state accessors ---- *)

let reg_array st name =
  match Hashtbl.find_opt st.regs name with
  | Some a -> a
  | None -> runtime_error no_loc "no register '%s'" name

let read_reg st name = (reg_array st name).(0)

let write_reg st name v =
  let a = reg_array st name in
  let v = Bitvec.cast (Bitvec.typ a.(0)) v in
  a.(0) <- v;
  st.trace <- Wr_reg (name, v) :: st.trace

let read_regfile st name idx =
  let a = reg_array st name in
  if idx < 0 || idx >= Array.length a then
    runtime_error no_loc "index %d out of range for register file %s" idx name;
  a.(idx)

let write_regfile st name idx v =
  let a = reg_array st name in
  if idx < 0 || idx >= Array.length a then
    runtime_error no_loc "index %d out of range for register file %s" idx name;
  let v = Bitvec.cast (Bitvec.typ a.(0)) v in
  a.(idx) <- v;
  st.trace <- Wr_regfile (name, idx, v) :: st.trace

let space_info st name =
  match Elaborate.find_space st.unit_.elab name with
  | Some s -> s
  | None -> runtime_error no_loc "no address space '%s'" name

let mem_table st name =
  match Hashtbl.find_opt st.mems name with
  | Some t -> t
  | None -> runtime_error no_loc "no address space '%s'" name

let read_mem_elem st name addr =
  let s = space_info st name in
  match Hashtbl.find_opt (mem_table st name) addr with
  | Some v -> v
  | None -> Bitvec.zero s.elem_ty

let write_mem_elem st name addr v =
  let s = space_info st name in
  let v = Bitvec.cast s.elem_ty v in
  Hashtbl.replace (mem_table st name) addr v;
  st.trace <- Wr_mem (name, addr, v) :: st.trace

(* little-endian multi-element read: element at [addr + elems - 1] is MSB *)
let read_mem st name addr elems =
  let rec go k acc =
    if k >= elems then acc
    else begin
      let e = read_mem_elem st name (addr + k) in
      go (k + 1) (match acc with None -> Some e | Some hi -> Some (Bitvec.concat e hi))
    end
  in
  (* build by concatenating from MSB side: element addr+elems-1 :: ... :: addr *)
  ignore go;
  let v = ref (read_mem_elem st name (addr + elems - 1)) in
  for k = elems - 2 downto 0 do
    v := Bitvec.concat !v (read_mem_elem st name (addr + k))
  done;
  !v

let write_mem st name addr elems v =
  let s = space_info st name in
  let ew = s.elem_ty.Bitvec.width in
  for k = 0 to elems - 1 do
    let piece = Bitvec.extract (Bitvec.cast (Bitvec.unsigned_ty (elems * ew)) v) ~hi:(((k + 1) * ew) - 1) ~lo:(k * ew) in
    write_mem_elem st name (addr + k) piece
  done

(* ---- expression evaluation ---- *)

type frame = {
  locals : (string, Bitvec.t) Hashtbl.t;
  fields : (string * Bitvec.t) list;  (* decoded encoding fields *)
}

exception Return_exc of Bitvec.t option

let rec eval st (fr : frame) (e : texpr) : Bitvec.t =
  match e.te with
  | T_lit v -> v
  | T_local name -> (
      match Hashtbl.find_opt fr.locals name with
      | Some v -> v
      | None -> runtime_error e.tloc "unbound local '%s'" name)
  | T_field name -> (
      match List.assoc_opt name fr.fields with
      | Some v -> v
      | None -> runtime_error e.tloc "unbound encoding field '%s'" name)
  | T_reg name -> read_reg st name
  | T_regfile (name, idx) -> read_regfile st name (Bitvec.to_int (eval st fr idx))
  | T_rom (name, idx) -> read_regfile st name (Bitvec.to_int (eval st fr idx))
  | T_mem { space; addr; elems } ->
      let a = Bitvec.to_int (Bitvec.reinterpret_sign false (eval st fr addr)) in
      Bitvec.cast e.tty (read_mem st space a elems)
  | T_binop (op, a, b) -> eval_binop st fr e.tloc op a b
  | T_unop (op, a) -> (
      let va = eval st fr a in
      match op with
      | Neg -> Bitvec.neg va
      | Not -> Bitvec.lognot va
      | Lnot -> Bitvec.of_bool (Bitvec.is_zero va))
  | T_cast a -> Bitvec.cast e.tty (eval st fr a)
  | T_concat (a, b) -> Bitvec.concat (eval st fr a) (eval st fr b)
  | T_extract { value; lo; width } ->
      let v = eval st fr value in
      let l = Bitvec.to_int (Bitvec.reinterpret_sign false (eval st fr lo)) in
      if l + width > Bitvec.width v then
        runtime_error e.tloc "extract [%d+:%d] out of range for width %d" l width (Bitvec.width v);
      Bitvec.extract v ~hi:(l + width - 1) ~lo:l
  | T_ternary (c, t, f) -> if Bitvec.to_bool (eval st fr c) then eval st fr t else eval st fr f
  | T_call (name, args) -> (
      let f =
        match find_tfunc st.unit_ name with
        | Some f -> f
        | None -> runtime_error e.tloc "unknown function '%s'" name
      in
      let vargs = List.map (eval st fr) args in
      match call_function st f vargs with
      | Some v -> v
      | None -> runtime_error e.tloc "void function '%s' in expression" name)

and eval_binop st fr loc op a b =
  let module B = Bitvec in
  let va = eval st fr a in
  match op with
  | Land -> B.of_bool (B.to_bool va && B.to_bool (eval st fr b))
  | Lor -> B.of_bool (B.to_bool va || B.to_bool (eval st fr b))
  | _ -> (
      let vb = eval st fr b in
      match op with
      | Add -> B.add va vb
      | Sub -> B.sub va vb
      | Mul -> B.mul va vb
      | Div ->
          if B.is_zero vb then runtime_error loc "division by zero" else B.div va vb
      | Rem -> if B.is_zero vb then runtime_error loc "remainder by zero" else B.rem va vb
      | Shl -> B.cast (B.typ va) (B.shift_left va (B.to_int vb))
      | Shr -> B.cast (B.typ va) (B.shift_right va (B.to_int vb))
      | And -> B.logand va vb
      | Or -> B.logor va vb
      | Xor -> B.logxor va vb
      | Eq -> B.of_bool (B.eq va vb)
      | Ne -> B.of_bool (B.ne va vb)
      | Lt -> B.of_bool (B.lt va vb)
      | Le -> B.of_bool (B.le va vb)
      | Gt -> B.of_bool (B.gt va vb)
      | Ge -> B.of_bool (B.ge va vb)
      | Land | Lor -> assert false)

and exec_stmt st fr (s : tstmt) : unit =
  match s.ts with
  | S_local_decl (name, ty, init) ->
      let v = match init with Some e -> eval st fr e | None -> Bitvec.zero ty in
      Hashtbl.replace fr.locals name (Bitvec.cast ty v)
  | S_assign_local (name, e) ->
      let v = eval st fr e in
      Hashtbl.replace fr.locals name v
  | S_assign_reg (name, e) -> write_reg st name (eval st fr e)
  | S_assign_regfile (name, idx, e) ->
      let i = Bitvec.to_int (Bitvec.reinterpret_sign false (eval st fr idx)) in
      write_regfile st name i (eval st fr e)
  | S_assign_mem { space; addr; value; elems } ->
      let a = Bitvec.to_int (Bitvec.reinterpret_sign false (eval st fr addr)) in
      write_mem st space a elems (eval st fr value)
  | S_if (c, thn, els) ->
      if Bitvec.to_bool (eval st fr c) then exec_stmts st fr thn else exec_stmts st fr els
  | S_for { init; cond; step; body } ->
      exec_stmts st fr init;
      let fuel = ref 1_000_000 in
      while Bitvec.to_bool (eval st fr cond) do
        decr fuel;
        if !fuel <= 0 then runtime_error s.tsloc "for-loop exceeded iteration limit";
        exec_stmts st fr body;
        exec_stmts st fr step
      done
  | S_spawn body ->
      (* architecturally, a spawn block has the same final-state semantics
         as inline execution; timing differences only exist in hardware *)
      exec_stmts st fr body
  | S_return e -> raise (Return_exc (Option.map (eval st fr) e))
  | S_expr e -> ignore (eval st fr e)

and exec_stmts st fr stmts = List.iter (exec_stmt st fr) stmts

and call_function st (f : tfunc) (args : Bitvec.t list) : Bitvec.t option =
  let locals = Hashtbl.create 8 in
  List.iter2 (fun (name, ty) v -> Hashtbl.replace locals name (Bitvec.cast ty v)) f.tf_params args;
  let fr = { locals; fields = [] } in
  try
    exec_stmts st fr f.tf_body;
    None
  with Return_exc v -> v

(* ---- instruction decoding and execution ---- *)

(* Extract the value of an encoding field from an instruction word. *)
let decode_field (instr_word : Bitvec.t) (f : field_info) : Bitvec.t =
  let v = ref (Bitvec.zero (Bitvec.unsigned_ty f.fld_width)) in
  List.iter
    (fun seg ->
      let bits =
        Bitvec.extract instr_word ~hi:(seg.instr_lo + seg.seg_len - 1) ~lo:seg.instr_lo
      in
      let shifted =
        Bitvec.cast (Bitvec.unsigned_ty f.fld_width) (Bitvec.shift_left (Bitvec.cast (Bitvec.unsigned_ty f.fld_width) bits) seg.fld_lo)
      in
      v := Bitvec.logor !v shifted)
    f.segments;
  Bitvec.cast (Bitvec.unsigned_ty f.fld_width) !v

let matches (ti : tinstr) (instr_word : Bitvec.t) =
  Bitvec.width instr_word = ti.enc_width
  && Bitvec.equal_value (Bitvec.logand instr_word ti.mask) ti.match_bits

(* Execute one instruction's behavior for a concrete instruction word. *)
let exec_instr st (ti : tinstr) ~(instr_word : Bitvec.t) =
  let fields = List.map (fun f -> (f.fld_name, decode_field instr_word f)) ti.fields in
  let fr = { locals = Hashtbl.create 8; fields } in
  exec_stmts st fr ti.ti_behavior

(* Execute one evaluation of an always-block (one clock tick). *)
let exec_always st (ta : talways) =
  let fr = { locals = Hashtbl.create 8; fields = [] } in
  exec_stmts st fr ta.ta_body

(* Find the unique instruction matching a word, if any. *)
let decode st (instr_word : Bitvec.t) =
  List.find_opt (fun ti -> matches ti instr_word) st.unit_.tinstrs

(* Encode an instruction word from field values (inverse of decode_field);
   used by tests and the assembler for custom instructions. *)
let encode (ti : tinstr) (field_values : (string * Bitvec.t) list) : Bitvec.t =
  let w = ref ti.match_bits in
  List.iter
    (fun (f : field_info) ->
      match List.assoc_opt f.fld_name field_values with
      | None -> runtime_error no_loc "missing field '%s' for %s" f.fld_name ti.ti_name
      | Some v ->
          let v = Bitvec.cast (Bitvec.unsigned_ty f.fld_width) v in
          List.iter
            (fun seg ->
              let bits = Bitvec.extract v ~hi:(seg.fld_lo + seg.seg_len - 1) ~lo:seg.fld_lo in
              let placed =
                Bitvec.cast (Bitvec.unsigned_ty ti.enc_width)
                  (Bitvec.shift_left (Bitvec.cast (Bitvec.unsigned_ty ti.enc_width) bits) seg.instr_lo)
              in
              w := Bitvec.logor !w placed)
            f.segments)
    ti.fields;
  Bitvec.cast (Bitvec.unsigned_ty ti.enc_width) !w
