lib/coredsl/base_isa.mli:
