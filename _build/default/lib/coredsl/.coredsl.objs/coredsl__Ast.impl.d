lib/coredsl/ast.ml: Bitvec Format
