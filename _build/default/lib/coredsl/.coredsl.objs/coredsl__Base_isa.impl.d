lib/coredsl/base_isa.ml:
