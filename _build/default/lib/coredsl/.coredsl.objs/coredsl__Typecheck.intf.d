lib/coredsl/typecheck.mli: Ast Bitvec Elaborate Format Tast
