lib/coredsl/lexer.ml: Ast Bitvec Buffer Char List String
