lib/coredsl/ast.mli: Bitvec Format
