lib/coredsl/typecheck.ml: Array Ast Bitvec Elaborate Format Hashtbl List Option Printf Tast
