lib/coredsl/interp.mli: Ast Bitvec Elaborate Format Hashtbl Tast
