lib/coredsl/lexer.mli: Ast Bitvec
