lib/coredsl/parser.ml: Array Ast Bitvec Lexer List Printf
