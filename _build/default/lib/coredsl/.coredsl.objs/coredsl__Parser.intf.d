lib/coredsl/parser.mli: Ast Bitvec Format Lexer
