lib/coredsl/elaborate.mli: Ast Bitvec Format Hashtbl
