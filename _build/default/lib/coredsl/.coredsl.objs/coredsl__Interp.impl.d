lib/coredsl/interp.ml: Array Ast Bitvec Elaborate Format Fun Hashtbl List Option Tast
