lib/coredsl/coredsl.ml: Ast Base_isa Elaborate Format Interp Lexer Parser Tast Typecheck
