lib/coredsl/tast.ml: Ast Bitvec Elaborate Format List
