lib/coredsl/tast.mli: Ast Bitvec Elaborate Format
