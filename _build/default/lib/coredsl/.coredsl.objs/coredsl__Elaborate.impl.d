lib/coredsl/elaborate.ml: Array Ast Bitvec Format Hashtbl List Parser
