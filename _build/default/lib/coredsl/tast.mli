(** Typed AST: the output of {!Typecheck} and the input to both the reference
   interpreter ({!Interp}) and the Longnail IR lowering.

   Every expression carries its resolved CoreDSL type. All implicit
   conversions have been made explicit as [T_cast] nodes, so consumers can
   rely on operand types matching the {!Bitvec} operator algebra exactly. *)

type texpr = {
  te : texpr_node;
  tty : Bitvec.ty;
  tloc : Ast.loc;
}
and texpr_node =
    T_lit of Bitvec.t
  | T_local of string
  | T_field of string
  | T_reg of string
  | T_regfile of string * texpr
  | T_rom of string * texpr
  | T_mem of { space : string; addr : texpr; elems : int; }
  | T_binop of Ast.binop * texpr * texpr
  | T_unop of Ast.unop * texpr
  | T_cast of texpr
  | T_concat of texpr * texpr
  | T_extract of { value : texpr; lo : texpr; width : int; }
  | T_ternary of texpr * texpr * texpr
  | T_call of string * texpr list
type tstmt = { ts : tstmt_node; tsloc : Ast.loc; }
and tstmt_node =
    S_local_decl of string * Bitvec.ty * texpr option
  | S_assign_local of string * texpr
  | S_assign_reg of string * texpr
  | S_assign_regfile of string * texpr * texpr
  | S_assign_mem of { space : string; addr : texpr; value : texpr;
      elems : int;
    }
  | S_if of texpr * tstmt list * tstmt list
  | S_for of { init : tstmt list; cond : texpr; step : tstmt list;
      body : tstmt list;
    }
  | S_spawn of tstmt list
  | S_return of texpr option
  | S_expr of texpr
type tfunc = {
  tf_name : string;
  tf_ret : Bitvec.ty option;
  tf_params : (string * Bitvec.ty) list;
  tf_body : tstmt list;
}
type field_segment = { instr_lo : int; fld_lo : int; seg_len : int; }
type field_info = {
  fld_name : string;
  fld_width : int;
  segments : field_segment list;
}
type tinstr = {
  ti_name : string;
  enc_width : int;
  mask : Bitvec.t;
  match_bits : Bitvec.t;
  fields : field_info list;
  ti_behavior : tstmt list;
}
type talways = { ta_name : string; ta_body : tstmt list; }
type tunit = {
  tu_name : string;
  elab : Elaborate.elaborated;
  tinstrs : tinstr list;
  talways : talways list;
  tfuncs : tfunc list;
}
val find_field : tinstr -> string -> field_info option
val find_tfunc : tunit -> string -> tfunc option
val find_tinstr : tunit -> string -> tinstr option
val contains_spawn : tstmt list -> bool
val pp_texpr : Format.formatter -> texpr -> unit
val binop_name : Ast.binop -> string
