(* CoreDSL front-end: public entry points.

   Typical use:
   {[
     let tu = Coredsl.compile ~target:"X_DOTP" source in
     let st = Coredsl.Interp.create tu in
     ...
   ]}

   [compile] parses [source] (resolving imports through the built-in base
   ISA provider plus an optional user provider), elaborates the requested
   Core or InstructionSet, and type-checks every instruction, always-block
   and function. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Elaborate = Elaborate
module Tast = Tast
module Typecheck = Typecheck
module Interp = Interp
module Base_isa = Base_isa

exception Error of string

(* Combine the built-in provider with a user-supplied one. *)
let combined_provider user path =
  match user path with Some s -> Some s | None -> Base_isa.provider path

let compile ?(provider = fun _ -> None) ?(file = "<input>") ~target src =
  try
    let elab = Elaborate.elaborate ~provider:(combined_provider provider) ~file ~target src in
    Typecheck.check elab
  with
  | Ast.Syntax_error (loc, m) ->
      raise (Error (Format.asprintf "%a: syntax error: %s" Ast.pp_loc loc m))
  | Elaborate.Elab_error (loc, m) ->
      raise (Error (Format.asprintf "%a: elaboration error: %s" Ast.pp_loc loc m))
  | Typecheck.Type_error (loc, m) ->
      raise (Error (Format.asprintf "%a: type error: %s" Ast.pp_loc loc m))

(* Compile the built-in RV32I base ISA on its own. *)
let compile_rv32i () = compile ~file:"RV32I.core_desc" ~target:"RV32I" Base_isa.rv32i

(* Compile RV32I + the M standard extension (the RV32IM core). *)
let compile_rv32im () = compile ~file:"RV32M.core_desc" ~target:"RV32IM" Base_isa.rv32m
