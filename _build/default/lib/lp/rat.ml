(* Exact rational numbers over the arbitrary-precision integers of
   {!Bitvec.Bn}. Used by the simplex solver, where floating point would
   accumulate pivoting error and exact pivots guarantee termination with
   Bland's rule. Invariant: [den > 0] and [gcd(num, den) = 1]. *)

module Bn = Bitvec.Bn

type t = { num : Bn.t; den : Bn.t }

let make num den =
  if Bn.is_zero den then invalid_arg "Rat.make: zero denominator";
  let num, den = if Bn.compare den Bn.zero < 0 then (Bn.neg num, Bn.neg den) else (num, den) in
  let g = Bn.gcd num den in
  if Bn.is_zero g then { num = Bn.zero; den = Bn.one }
  else { num = fst (Bn.divmod num g); den = fst (Bn.divmod den g) }

let of_bn n = { num = n; den = Bn.one }
let of_int i = of_bn (Bn.of_int i)
let of_ints a b = make (Bn.of_int a) (Bn.of_int b)
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let is_zero x = Bn.is_zero x.num
let sign x = Bn.compare x.num Bn.zero

let add a b = make (Bn.add (Bn.mul a.num b.den) (Bn.mul b.num a.den)) (Bn.mul a.den b.den)
let sub a b = make (Bn.sub (Bn.mul a.num b.den) (Bn.mul b.num a.den)) (Bn.mul a.den b.den)
let mul a b = make (Bn.mul a.num b.num) (Bn.mul a.den b.den)

let div a b =
  if is_zero b then raise Division_by_zero;
  make (Bn.mul a.num b.den) (Bn.mul a.den b.num)

let neg a = { a with num = Bn.neg a.num }
let inv a = div one a

let compare a b = Bn.compare (Bn.mul a.num b.den) (Bn.mul b.num a.den)
let equal a b = compare a b = 0
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let min a b = if le a b then a else b
let max a b = if le a b then b else a

let is_integer x = Bn.equal x.den Bn.one

(* floor(x) as an integer. *)
let floor x =
  let q, r = Bn.divmod x.num x.den in
  if Bn.is_zero r || Bn.compare x.num Bn.zero >= 0 then q else Bn.sub q Bn.one

let ceil x = Bn.neg (floor (neg x))

let to_float x = Bn.to_float x.num /. Bn.to_float x.den

let to_int_exn x =
  if not (is_integer x) then failwith "Rat.to_int_exn: not an integer";
  Bn.to_int_exn x.num

let to_string x =
  if is_integer x then Bn.to_string x.num
  else Printf.sprintf "%s/%s" (Bn.to_string x.num) (Bn.to_string x.den)

let pp fmt x = Format.pp_print_string fmt (to_string x)
