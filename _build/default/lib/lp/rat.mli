(** Exact rational numbers over the arbitrary-precision integers of
   {!Bitvec.Bn}. Used by the simplex solver, where floating point would
   accumulate pivoting error and exact pivots guarantee termination with
   Bland's rule. Invariant: [den > 0] and [gcd(num, den) = 1]. *)

module Bn = Bitvec.Bn
type t = { num : Bn.t; den : Bn.t; }
val make : Bn.t -> Bn.t -> t
val of_bn : Bn.t -> t
val of_int : int -> t
val of_ints : int -> int -> t
val zero : t
val one : t
val minus_one : t
val is_zero : t -> bool
val sign : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val is_integer : t -> bool
val floor : t -> Bn.t
val ceil : t -> Bn.t
val to_float : t -> float
val to_int_exn : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
