lib/lp/simplex.ml: Array Rat
