lib/lp/rat.ml: Bitvec Format Printf
