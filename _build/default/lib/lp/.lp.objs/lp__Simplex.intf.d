lib/lp/simplex.mli: Rat
