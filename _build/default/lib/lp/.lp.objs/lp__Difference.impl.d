lib/lp/difference.ml: Array List
