lib/lp/rat.mli: Bitvec Format
