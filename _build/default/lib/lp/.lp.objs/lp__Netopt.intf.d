lib/lp/netopt.mli:
