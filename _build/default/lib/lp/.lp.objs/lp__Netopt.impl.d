lib/lp/netopt.ml: Array List Queue
