lib/lp/difference.mli:
