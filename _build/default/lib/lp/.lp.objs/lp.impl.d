lib/lp/lp.ml: Array Buffer Difference List Netopt Option Printf Rat Simplex
