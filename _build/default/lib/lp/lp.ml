(* Mixed-integer linear programming by branch & bound over the exact
   {!Simplex} solver.

   This module replaces the paper's Cbc/OR-Tools backend. It offers a small
   problem-builder API: create variables (with lower/upper bounds and an
   integrality flag), add linear constraints, set a minimization objective,
   and solve. All solutions are exact rationals; integer variables are
   branched on until integral. *)

module Rat = Rat
module Simplex = Simplex
module Difference = Difference
module Netopt = Netopt

type rel = Le | Ge | Eq

type var = int

type constr = { coeffs : (Rat.t * var) list; rel : rel; rhs : Rat.t }

type problem = {
  mutable nvars : int;
  mutable names : string list;  (* reversed *)
  mutable lower : Rat.t list;  (* reversed, per var *)
  mutable upper : Rat.t option list;  (* reversed, per var *)
  mutable integer : bool list;  (* reversed, per var *)
  mutable constraints : constr list;  (* reversed *)
  mutable objective : (Rat.t * var) list;
}

type solution = { values : Rat.t array; objective : Rat.t }

type outcome = [ `Optimal of solution | `Infeasible | `Unbounded ]

let create () =
  {
    nvars = 0;
    names = [];
    lower = [];
    upper = [];
    integer = [];
    constraints = [];
    objective = [];
  }

let add_var ?(lower = Rat.zero) ?upper ?(integer = false) p ~name =
  let v = p.nvars in
  p.nvars <- v + 1;
  p.names <- name :: p.names;
  p.lower <- lower :: p.lower;
  p.upper <- upper :: p.upper;
  p.integer <- integer :: p.integer;
  v

let add_int_var ?(lower = 0) ?upper p ~name =
  add_var p ~name ~integer:true ~lower:(Rat.of_int lower)
    ?upper:(Option.map Rat.of_int upper)

let add_constraint p coeffs rel rhs = p.constraints <- { coeffs; rel; rhs } :: p.constraints

let add_int_constraint p coeffs rel rhs =
  add_constraint p
    (List.map (fun (c, v) -> (Rat.of_int c, v)) coeffs)
    rel (Rat.of_int rhs)

let set_objective (p : problem) coeffs = p.objective <- coeffs

let set_int_objective (p : problem) coeffs = p.objective <- List.map (fun (c, v) -> (Rat.of_int c, v)) coeffs

let var_name p v = List.nth (List.rev p.names) v

(* Render the problem in an LP-like text format (used by the fig7 bench to
   show the generated ILP). *)
let to_text (p : problem) =
  let buf = Buffer.create 256 in
  let names = Array.of_list (List.rev p.names) in
  let pp_term first (c, v) =
    let s = Rat.to_string c in
    if first then Printf.sprintf "%s %s" s names.(v)
    else if Rat.sign c >= 0 then Printf.sprintf " + %s %s" s names.(v)
    else Printf.sprintf " - %s %s" (Rat.to_string (Rat.neg c)) names.(v)
  in
  Buffer.add_string buf "minimize\n  ";
  List.iteri (fun i t -> Buffer.add_string buf (pp_term (i = 0) t)) p.objective;
  Buffer.add_string buf "\nsubject to\n";
  List.iter
    (fun { coeffs; rel; rhs } ->
      Buffer.add_string buf "  ";
      List.iteri (fun i t -> Buffer.add_string buf (pp_term (i = 0) t)) coeffs;
      Buffer.add_string buf
        (Printf.sprintf " %s %s\n"
           (match rel with Le -> "<=" | Ge -> ">=" | Eq -> "=")
           (Rat.to_string rhs)))
    (List.rev p.constraints);
  Buffer.add_string buf "bounds\n";
  let lower = Array.of_list (List.rev p.lower) in
  let upper = Array.of_list (List.rev p.upper) in
  let integer = Array.of_list (List.rev p.integer) in
  for v = 0 to p.nvars - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  %s <= %s%s%s\n" (Rat.to_string lower.(v)) names.(v)
         (match upper.(v) with None -> "" | Some u -> Printf.sprintf " <= %s" (Rat.to_string u))
         (if integer.(v) then "  (integer)" else ""))
  done;
  Buffer.contents buf

(* Solve the LP relaxation of [p] with additional branching rows.
   Variables are shifted by their lower bounds so that the simplex sees
   y = x - lo >= 0. *)
let solve_relaxation (p : problem) ~extra_rows =
  let n = p.nvars in
  let lower = Array.of_list (List.rev p.lower) in
  let upper = Array.of_list (List.rev p.upper) in
  let obj = Array.make n Rat.zero in
  List.iter (fun (c, v) -> obj.(v) <- Rat.add obj.(v) c) p.objective;
  let shift_row { coeffs; rel; rhs } =
    (* sum c_v x_v REL rhs  ==>  sum c_v y_v REL rhs - sum c_v lo_v *)
    let a = Array.make n Rat.zero in
    let shift = ref Rat.zero in
    List.iter
      (fun (c, v) ->
        a.(v) <- Rat.add a.(v) c;
        shift := Rat.add !shift (Rat.mul c lower.(v)))
      coeffs;
    let rel = match rel with Le -> Simplex.Le | Ge -> Simplex.Ge | Eq -> Simplex.Eq in
    (a, rel, Rat.sub rhs !shift)
  in
  let bound_rows = ref [] in
  Array.iteri
    (fun v up ->
      match up with
      | None -> ()
      | Some u ->
          let a = Array.make n Rat.zero in
          a.(v) <- Rat.one;
          bound_rows := (a, Simplex.Le, Rat.sub u lower.(v)) :: !bound_rows)
    upper;
  let rows =
    List.map shift_row (List.rev p.constraints)
    @ List.map shift_row extra_rows
    @ !bound_rows
  in
  match Simplex.solve ~obj ~rows with
  | Simplex.Infeasible -> `Infeasible
  | Simplex.Unbounded -> `Unbounded
  | Simplex.Optimal (y, objval) ->
      let x = Array.mapi (fun v yv -> Rat.add yv lower.(v)) y in
      (* the shifted objective differs from the true one by sum c_v lo_v *)
      let fix = ref objval in
      List.iter (fun (c, v) -> fix := Rat.add !fix (Rat.mul c lower.(v))) p.objective;
      `Optimal (x, !fix)

exception Node_limit
exception Unbounded_relaxation

let solve ?(max_nodes = 50_000) (p : problem) : outcome =
  let integer = Array.of_list (List.rev p.integer) in
  let incumbent = ref None in
  let nodes = ref 0 in
  let better obj = match !incumbent with None -> true | Some (_, o) -> Rat.lt obj o in
  let rec branch extra_rows =
    incr nodes;
    if !nodes > max_nodes then raise Node_limit;
    match solve_relaxation p ~extra_rows with
    | `Infeasible -> ()
    | `Unbounded ->
        (* with an incumbent this node can't prove unboundedness of the MILP;
           without one we propagate it via an exception *)
        raise Unbounded_relaxation
    | `Optimal (x, obj) ->
        if better obj then begin
          (* find a fractional integer variable *)
          let frac = ref (-1) in
          (try
             Array.iteri
               (fun v xv ->
                 if integer.(v) && not (Rat.is_integer xv) then begin
                   frac := v;
                   raise Exit
                 end)
               x
           with Exit -> ());
          if !frac < 0 then incumbent := Some (x, obj)
          else begin
            let v = !frac and xv = x.(!frac) in
            let floor_row =
              { coeffs = [ (Rat.one, v) ]; rel = Le; rhs = Rat.of_bn (Rat.floor xv) }
            in
            let ceil_row =
              { coeffs = [ (Rat.one, v) ]; rel = Ge; rhs = Rat.of_bn (Rat.ceil xv) }
            in
            branch (floor_row :: extra_rows);
            branch (ceil_row :: extra_rows)
          end
        end
  in
  try
    branch [];
    match !incumbent with
    | None -> `Infeasible
    | Some (x, obj) -> `Optimal { values = x; objective = obj }
  with
  | Unbounded_relaxation -> `Unbounded
  | Node_limit -> (
      match !incumbent with
      | Some (x, obj) -> `Optimal { values = x; objective = obj }
      | None -> `Infeasible)

let value_int sol v = Rat.to_int_exn sol.values.(v)
