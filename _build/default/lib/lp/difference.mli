(** Solver for systems of difference constraints.

   The precedence part of the Longnail scheduling problem (constraints C1,
   C3, C5 in Figure 7 of the paper) is a system of constraints of the form
   x_j - x_i >= w plus per-variable bounds. Such systems admit a
   componentwise-minimal solution computed by longest paths from a virtual
   source (Bellman-Ford), which also minimizes the sum of start times. This
   is used as the fast scheduling path and as an ablation baseline against
   the full ILP. *)

type edge = { src : int; dst : int; weight : int; }
type t = {
  nvars : int;
  mutable edges : edge list;
  lower : int array;
  upper : int option array;
}
val create : int -> t
val add_ge : t -> src:int -> dst:int -> weight:int -> unit
val set_lower : t -> int -> int -> unit
val set_upper : t -> int -> int -> unit
val solve : t -> int array option
