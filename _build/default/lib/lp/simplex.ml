(* Exact two-phase primal simplex over rationals.

   Dense tableau implementation with Bland's anti-cycling rule, which
   together with exact {!Rat} arithmetic guarantees termination. Problems
   produced by the Longnail scheduler have tens of variables, so the O(m*n)
   pricing per iteration is irrelevant.

   The solver works on the standard form: minimize c.x subject to the given
   rows, with all structural variables constrained to x >= 0. General bounds
   and integrality live one layer up, in {!Lp}. *)

type rel = Le | Ge | Eq

type outcome =
  | Optimal of Rat.t array * Rat.t  (* values of structural variables, objective *)
  | Infeasible
  | Unbounded

type tableau = {
  rows : Rat.t array array;  (* m x ncols coefficient matrix *)
  rhs : Rat.t array;  (* m *)
  basis : int array;  (* m, column basic in each row *)
  ncols : int;
  nstruct : int;  (* structural variables are columns 0..nstruct-1 *)
  art_start : int;  (* columns >= art_start are artificial *)
}

(* Reduced costs r_j = c_j - sum_i c_B(i) * T(i,j) for all columns. *)
let reduced_costs t (c : Rat.t array) =
  let m = Array.length t.rows in
  let r = Array.copy c in
  for i = 0 to m - 1 do
    let cb = c.(t.basis.(i)) in
    if not (Rat.is_zero cb) then
      for j = 0 to t.ncols - 1 do
        if not (Rat.is_zero t.rows.(i).(j)) then
          r.(j) <- Rat.sub r.(j) (Rat.mul cb t.rows.(i).(j))
      done
  done;
  r

let objective_value t (c : Rat.t array) =
  let m = Array.length t.rows in
  let v = ref Rat.zero in
  for i = 0 to m - 1 do
    v := Rat.add !v (Rat.mul c.(t.basis.(i)) t.rhs.(i))
  done;
  !v

let pivot t ~row ~col =
  let m = Array.length t.rows in
  let pinv = Rat.inv t.rows.(row).(col) in
  for j = 0 to t.ncols - 1 do
    t.rows.(row).(j) <- Rat.mul t.rows.(row).(j) pinv
  done;
  t.rhs.(row) <- Rat.mul t.rhs.(row) pinv;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = t.rows.(i).(col) in
      if not (Rat.is_zero f) then begin
        for j = 0 to t.ncols - 1 do
          t.rows.(i).(j) <- Rat.sub t.rows.(i).(j) (Rat.mul f t.rows.(row).(j))
        done;
        t.rhs.(i) <- Rat.sub t.rhs.(i) (Rat.mul f t.rhs.(row))
      end
    end
  done

(* Run simplex iterations on [t] minimizing cost vector [c]. [banned j] marks
   columns that may not enter the basis (used to keep artificials out in
   phase 2). Returns [false] on unboundedness. *)
let iterate t (c : Rat.t array) ~banned =
  let m = Array.length t.rows in
  let running = ref true and bounded = ref true in
  while !running do
    let r = reduced_costs t c in
    (* Bland: entering column = smallest index with negative reduced cost *)
    let enter = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if (not (banned j)) && Rat.sign r.(j) < 0 then begin
           enter := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !enter < 0 then running := false
    else begin
      let col = !enter in
      (* ratio test; Bland tie-break on smallest basic variable index *)
      let best_row = ref (-1) and best_ratio = ref Rat.zero in
      for i = 0 to m - 1 do
        if Rat.sign t.rows.(i).(col) > 0 then begin
          let ratio = Rat.div t.rhs.(i) t.rows.(i).(col) in
          let better =
            !best_row < 0
            || Rat.lt ratio !best_ratio
            || (Rat.equal ratio !best_ratio && t.basis.(i) < t.basis.(!best_row))
          in
          if better then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then begin
        bounded := false;
        running := false
      end
      else begin
        pivot t ~row:!best_row ~col;
        t.basis.(!best_row) <- col
      end
    end
  done;
  !bounded

let solve ~(obj : Rat.t array) ~(rows : (Rat.t array * rel * Rat.t) list) : outcome =
  let nstruct = Array.length obj in
  let rows = Array.of_list rows in
  let m = Array.length rows in
  (* normalize rhs >= 0 so the artificial basis is feasible *)
  let rows =
    Array.map
      (fun (a, rel, b) ->
        if Rat.sign b < 0 then
          (Array.map Rat.neg a, (match rel with Le -> Ge | Ge -> Le | Eq -> Eq), Rat.neg b)
        else (a, rel, b))
      rows
  in
  (* column layout: structural | slack/surplus (one per Le/Ge row) | artificial *)
  let n_slack =
    Array.fold_left (fun n (_, rel, _) -> match rel with Eq -> n | Le | Ge -> n + 1) 0 rows
  in
  let n_art =
    Array.fold_left (fun n (_, rel, _) -> match rel with Le -> n | Ge | Eq -> n + 1) 0 rows
  in
  let art_start = nstruct + n_slack in
  let ncols = art_start + n_art in
  let t =
    {
      rows = Array.init m (fun _ -> Array.make ncols Rat.zero);
      rhs = Array.make m Rat.zero;
      basis = Array.make m (-1);
      ncols;
      nstruct;
      art_start;
    }
  in
  let slack = ref nstruct and art = ref art_start in
  Array.iteri
    (fun i (a, rel, b) ->
      Array.iteri (fun j v -> if j < nstruct then t.rows.(i).(j) <- v) a;
      t.rhs.(i) <- b;
      match rel with
      | Le ->
          t.rows.(i).(!slack) <- Rat.one;
          t.basis.(i) <- !slack;
          incr slack
      | Ge ->
          t.rows.(i).(!slack) <- Rat.minus_one;
          incr slack;
          t.rows.(i).(!art) <- Rat.one;
          t.basis.(i) <- !art;
          incr art
      | Eq ->
          t.rows.(i).(!art) <- Rat.one;
          t.basis.(i) <- !art;
          incr art)
    rows;
  let infeasible = ref false in
  (* Phase 1: minimize the sum of artificials *)
  if n_art > 0 then begin
    let c1 = Array.make ncols Rat.zero in
    for j = art_start to ncols - 1 do
      c1.(j) <- Rat.one
    done;
    ignore (iterate t c1 ~banned:(fun _ -> false));
    if Rat.sign (objective_value t c1) > 0 then infeasible := true
    else
      (* drive remaining artificials out of the basis where possible *)
      for i = 0 to m - 1 do
        if t.basis.(i) >= art_start then begin
          let piv = ref (-1) in
          (try
             for j = 0 to art_start - 1 do
               if not (Rat.is_zero t.rows.(i).(j)) then begin
                 piv := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !piv >= 0 then begin
            pivot t ~row:i ~col:!piv;
            t.basis.(i) <- !piv
          end
          (* otherwise the row is redundant (all-zero with zero rhs) *)
        end
      done
  end;
  if !infeasible then Infeasible
  else begin
    (* Phase 2 *)
    let c2 = Array.make ncols Rat.zero in
    Array.blit obj 0 c2 0 nstruct;
    let banned j = j >= art_start in
    if not (iterate t c2 ~banned) then Unbounded
    else begin
      let x = Array.make nstruct Rat.zero in
      Array.iteri (fun i b -> if b >= 0 && b < nstruct then x.(b) <- t.rhs.(i)) t.basis;
      Optimal (x, objective_value t c2)
    end
  end
