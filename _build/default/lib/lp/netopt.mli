(** Optimal solver for linear objectives over difference-constraint systems.

   Solves:   minimize    sum_i cost_i * t_i
             subject to  t_dst - t_src >= w        (difference constraints)
                         lower_i <= t_i <= upper_i
                         t integral

   This is the shape the Longnail scheduling ILP (Figure 7 of the paper)
   takes after the lifetime variables are eliminated analytically:
   at any optimum l_ij = t_j - t_i, so the objective
   "sum t_i + sum l_ij" collapses to a weighted sum of start times with
   integer node costs (1 + indegree - outdegree).

   Algorithm: the feasible set is a lattice polyhedron whose least element
   is the ASAP solution (computed by Bellman-Ford longest paths). A linear
   function restricted to such a lattice is L-natural-convex, so steepest
   ascent over "shift a closed set S by +delta" moves reaches the global
   optimum; the best improving set is a minimum-weight closed set under
   the tight-edge closure relation, found with a max-flow min-cut
   computation (Dinic). Each accepted move strictly decreases the
   objective, guaranteeing termination.

   Exactness is cross-checked against the branch-and-bound MILP solver in
   the test suite. *)

type edge = { e_src : int; e_dst : int; e_w : int; }
exception Unbounded
module Maxflow :
  sig
    type arc = {
      dst : int;
      mutable cap : int;
      mutable flow : int;
      rev : int;
    }
    type t = {
      n : int;
      adj : arc array array;
      mutable adj_build : arc list array;
    }
    val inf : int
    val create : int -> t
    val add_edge : t -> int -> int -> int -> unit
    val freeze : t -> t
    val max_flow : t -> int -> int -> int * int array
  end
val asap :
  n:int ->
  edges:edge list ->
  lower:int array -> upper:int option array -> int array option
val solve :
  n:int ->
  edges:edge list ->
  lower:int array ->
  upper:int option array -> cost:int array -> int array option
val objective : cost:int array -> int array -> int
