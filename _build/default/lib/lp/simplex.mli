(** Exact two-phase primal simplex over rationals.

   Dense tableau implementation with Bland's anti-cycling rule, which
   together with exact {!Rat} arithmetic guarantees termination. Problems
   produced by the Longnail scheduler have tens of variables, so the O(m*n)
   pricing per iteration is irrelevant.

   The solver works on the standard form: minimize c.x subject to the given
   rows, with all structural variables constrained to x >= 0. General bounds
   and integrality live one layer up, in {!Lp}. *)

type rel = Le | Ge | Eq
type outcome =
    Optimal of Rat.t array * Rat.t
  | Infeasible
  | Unbounded
type tableau = {
  rows : Rat.t array array;
  rhs : Rat.t array;
  basis : int array;
  ncols : int;
  nstruct : int;
  art_start : int;
}
val reduced_costs : tableau -> Rat.t array -> Rat.t array
val objective_value : tableau -> Rat.t array -> Rat.t
val pivot : tableau -> row:int -> col:int -> unit
val iterate : tableau -> Rat.t array -> banned:(int -> bool) -> bool
val solve :
  obj:Rat.t array ->
  rows:(Rat.t array * rel * Rat.t) list -> outcome
