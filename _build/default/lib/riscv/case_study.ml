(* The Section 5.5 case study: summing an n-element integer array held in
   memory, on the VexRiscv model, with and without the autoinc + zol
   ISAXes. The paper reports 18n + 50 cycles for the baseline and
   11n + 50 with the ISAXes (>60% speedup at 16% area). *)

(* Both programs use a realistic call prologue/epilogue so the constant
   term lands near the paper's ~50 cycles. *)
let baseline_program n =
  Printf.sprintf
    {|
  jal ra, sum
  ebreak
sum:
  addi sp, sp, -8
  sw s0, 0(sp)
  sw s1, 4(sp)
  li a0, 0          # sum accumulator
  li a1, 0x1000     # array base
  li a2, %d         # element count
loop:
  lw a4, 0(a1)
  add a0, a0, a4
  addi a1, a1, 4
  addi a2, a2, -1
  bnez a2, loop
  lw s1, 4(sp)
  lw s0, 0(sp)
  addi sp, sp, 8
  ret
|}
    n

(* With autoinc + zol: the loop body shrinks to an auto-incrementing load
   plus the accumulate, and the loop control runs in the ZOL always-block
   with zero overhead. uimmS counts half-words from setup_zol to the end
   of the loop body (here: 3 instructions ahead = 6 half-words). *)
let isax_program n =
  Printf.sprintf
    {|
  jal ra, sum
  ebreak
sum:
  addi sp, sp, -8
  sw s0, 0(sp)
  li a0, 0
  li a1, 0x1000
  .isax AI_SETUP rs1=a1, imm=0
  li a2, %d
  .isax setup_zol uimmL=%d, uimmS=6
loop:
  .isax AI_LW rd=a4
  add a0, a0, a4
  lw s0, 0(sp)
  addi sp, sp, 8
  ret
|}
    n n

type run_result = { cycles : int; checksum : int; instret : int }

let fill_array m n =
  for i = 0 to n - 1 do
    Machine.store_word m (0x1000 + (4 * i)) (i + 1)
  done

let expected_sum n = n * (n + 1) / 2

let run_baseline ~n : run_result =
  let tu = Coredsl.compile_rv32i () in
  let m = Machine.create ~timing:Machine.vexriscv_timing tu in
  Machine.write_gpr m 2 0x8000 (* stack pointer *);
  let words = Asm.assemble (baseline_program n) in
  Machine.load_program m words;
  fill_array m n;
  let cycles = Machine.run m in
  { cycles; checksum = Machine.read_gpr m 10; instret = m.Machine.instret }

(* [compiled] must be a Longnail compile of the autoinc+zol unit for the
   core whose timing should be modelled. *)
let run_isax ~n (compiled : Longnail.Flow.compiled) : run_result =
  let m = Machine.of_compiled compiled in
  Machine.write_gpr m 2 0x8000;
  let enc = Machine.isax_encoder compiled.Longnail.Flow.unit_ in
  let words = Asm.assemble ~custom:enc (isax_program n) in
  Machine.load_program m words;
  fill_array m n;
  let cycles = Machine.run m in
  { cycles; checksum = Machine.read_gpr m 10; instret = m.Machine.instret }

(* Fit cycles = a*n + b through two measurement points. *)
let fit (n1, c1) (n2, c2) =
  let a = (c2 - c1) / (n2 - n1) in
  (a, c1 - (a * n1))
