(** A small RV32I assembler.

   Supports the full RV32I base set, the usual pseudo-instructions, labels,
   and a directive for custom ISAX instructions:

     .isax NAME field=value field=value ...

   where NAME is an instruction defined in a CoreDSL unit and the fields
   are its encoding fields (register fields take x-register numbers or ABI
   names, immediates take integers or label references). Used to write the
   "handwritten assembler programs" with which the paper verifies the
   extended cores (Section 5.3) and the Section 5.5 case study. *)

exception Asm_error of string
val asm_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val abi_names : (string * int) list
val parse_reg : string -> int
type operand = Reg of int | Imm of int | Label of string | Mem of int * int
val parse_operand : string -> operand
val r_type :
  funct7:int ->
  rs2:int -> rs1:int -> funct3:int -> rd:int -> opcode:int -> int
val i_type : imm:int -> rs1:int -> funct3:int -> rd:int -> opcode:int -> int
val s_type : imm:int -> rs2:int -> rs1:int -> funct3:int -> opcode:int -> int
val b_type : imm:int -> rs2:int -> rs1:int -> funct3:int -> opcode:int -> int
val u_type : imm:int -> rd:int -> opcode:int -> int
val j_type : imm:int -> rd:int -> opcode:int -> int
type item = Word of int | Needs_label of (int -> (string -> int) -> int)
type custom_encoder = string -> (string * int) list -> int
val split_operands : string -> string list
val assemble : ?base:int -> ?custom:custom_encoder -> string -> int list
