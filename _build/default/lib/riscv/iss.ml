(* Native RV32I instruction-set simulator.

   A fast, hand-written golden model operating on OCaml ints. Used as the
   oracle to cross-validate the CoreDSL-described RV32I (the same
   instructions executed through the reference interpreter must produce
   identical architectural state). *)

type t = {
  mutable pc : int;
  regs : int array;  (* 32 registers, values in [0, 2^32) *)
  mem : (int, int) Hashtbl.t;  (* byte-addressable *)
}

let mask32 = 0xFFFFFFFF

let create () = { pc = 0; regs = Array.make 32 0; mem = Hashtbl.create 1024 }

let read_reg t i = if i = 0 then 0 else t.regs.(i)

let write_reg t i v = if i <> 0 then t.regs.(i) <- v land mask32

let read_byte t a = Option.value ~default:0 (Hashtbl.find_opt t.mem (a land mask32))
let write_byte t a v = Hashtbl.replace t.mem (a land mask32) (v land 0xFF)

let read_word t a =
  read_byte t a lor (read_byte t (a + 1) lsl 8) lor (read_byte t (a + 2) lsl 16)
  lor (read_byte t (a + 3) lsl 24)

let write_word t a v =
  write_byte t a v;
  write_byte t (a + 1) (v lsr 8);
  write_byte t (a + 2) (v lsr 16);
  write_byte t (a + 3) (v lsr 24)

let read_half t a = read_byte t a lor (read_byte t (a + 1) lsl 8)

let write_half t a v =
  write_byte t a v;
  write_byte t (a + 1) (v lsr 8)

(* sign extension from bit [b] *)
let sext v b = if v land (1 lsl b) <> 0 then v - (1 lsl (b + 1)) else v

(* signed view of a 32-bit value *)
let s32 v = sext (v land mask32) 31

exception Unknown_instruction of int

(* Execute one instruction word; updates pc. *)
let step_word t w =
  let opcode = w land 0x7F in
  let rd = (w lsr 7) land 0x1F in
  let funct3 = (w lsr 12) land 0x7 in
  let rs1 = (w lsr 15) land 0x1F in
  let rs2 = (w lsr 20) land 0x1F in
  let funct7 = (w lsr 25) land 0x7F in
  let i_imm = sext ((w lsr 20) land 0xFFF) 11 in
  let s_imm = sext ((((w lsr 25) land 0x7F) lsl 5) lor ((w lsr 7) land 0x1F)) 11 in
  let b_imm =
    sext
      ((((w lsr 31) land 1) lsl 12)
      lor (((w lsr 7) land 1) lsl 11)
      lor (((w lsr 25) land 0x3F) lsl 5)
      lor (((w lsr 8) land 0xF) lsl 1))
      12
  in
  let u_imm = w land 0xFFFFF000 in
  let j_imm =
    sext
      ((((w lsr 31) land 1) lsl 20)
      lor (((w lsr 12) land 0xFF) lsl 12)
      lor (((w lsr 20) land 1) lsl 11)
      lor (((w lsr 21) land 0x3FF) lsl 1))
      20
  in
  let v1 = read_reg t rs1 and v2 = read_reg t rs2 in
  let next = ref ((t.pc + 4) land mask32) in
  (match opcode with
  | 0x37 -> write_reg t rd u_imm (* LUI *)
  | 0x17 -> write_reg t rd (t.pc + u_imm) (* AUIPC *)
  | 0x6F ->
      write_reg t rd (t.pc + 4);
      next := (t.pc + j_imm) land mask32 (* JAL *)
  | 0x67 ->
      let target = (v1 + i_imm) land lnot 1 land mask32 in
      write_reg t rd (t.pc + 4);
      next := target (* JALR *)
  | 0x63 ->
      let taken =
        match funct3 with
        | 0 -> v1 = v2
        | 1 -> v1 <> v2
        | 4 -> s32 v1 < s32 v2
        | 5 -> s32 v1 >= s32 v2
        | 6 -> v1 < v2
        | 7 -> v1 >= v2
        | _ -> raise (Unknown_instruction w)
      in
      if taken then next := (t.pc + b_imm) land mask32
  | 0x03 ->
      let a = (v1 + i_imm) land mask32 in
      let v =
        match funct3 with
        | 0 -> sext (read_byte t a) 7 land mask32
        | 1 -> sext (read_half t a) 15 land mask32
        | 2 -> read_word t a
        | 4 -> read_byte t a
        | 5 -> read_half t a
        | _ -> raise (Unknown_instruction w)
      in
      write_reg t rd v
  | 0x23 ->
      let a = (v1 + s_imm) land mask32 in
      (match funct3 with
      | 0 -> write_byte t a v2
      | 1 -> write_half t a v2
      | 2 -> write_word t a v2
      | _ -> raise (Unknown_instruction w))
  | 0x13 ->
      let shamt = rs2 in
      let v =
        match funct3 with
        | 0 -> v1 + i_imm
        | 2 -> if s32 v1 < i_imm then 1 else 0
        | 3 -> if v1 < i_imm land mask32 then 1 else 0
        | 4 -> v1 lxor (i_imm land mask32)
        | 6 -> v1 lor (i_imm land mask32)
        | 7 -> v1 land (i_imm land mask32)
        | 1 -> v1 lsl shamt
        | 5 -> if funct7 land 0x20 <> 0 then s32 v1 asr shamt else v1 lsr shamt
        | _ -> raise (Unknown_instruction w)
      in
      write_reg t rd v
  | 0x33 when funct7 = 0x01 ->
      (* RV32M; native ints are 63-bit, so 32x32 products need care: split
         the multiplication to stay in range *)
      let mul_full a b =
        (* full 64-bit product of two unsigned 32-bit values as (hi, lo) *)
        let a0 = a land 0xFFFF and a1 = a lsr 16 in
        let b0 = b land 0xFFFF and b1 = b lsr 16 in
        let ll = a0 * b0 in
        let lh = a0 * b1 and hl = a1 * b0 in
        let hh = a1 * b1 in
        let mid = lh + hl + (ll lsr 16) in
        let lo = ((mid land 0xFFFF) lsl 16) lor (ll land 0xFFFF) in
        let hi = hh + (mid lsr 16) in
        (hi land mask32, lo land mask32)
      in
      let signed_hi a b =
        (* high word of the signed 64-bit product *)
        let sa = s32 a and sb = s32 b in
        let neg = sa < 0 <> (sb < 0) in
        let ua = abs sa and ub = abs sb in
        let hi, lo = mul_full ua ub in
        if not neg then hi
        else begin
          (* two's complement negate the 64-bit (hi, lo) *)
          let lo' = (lnot lo + 1) land mask32 in
          let hi' = (lnot hi + if lo = 0 then 1 else 0) land mask32 in
          ignore lo';
          hi'
        end
      in
      let mulhsu_hi a b =
        let sa = s32 a in
        let neg = sa < 0 in
        let hi, lo = mul_full (abs sa) b in
        if not neg then hi
        else (lnot hi + if lo = 0 then 1 else 0) land mask32
      in
      let v =
        match funct3 with
        | 0 -> snd (mul_full v1 v2)
        | 1 -> signed_hi v1 v2
        | 2 -> mulhsu_hi v1 v2
        | 3 -> fst (mul_full v1 v2)
        | 4 ->
            if v2 = 0 then mask32
            else if s32 v1 = -0x80000000 && s32 v2 = -1 then 0x80000000
            else (s32 v1 / s32 v2) land mask32
        | 5 -> if v2 = 0 then mask32 else v1 / v2
        | 6 ->
            if v2 = 0 then v1
            else if s32 v1 = -0x80000000 && s32 v2 = -1 then 0
            else (s32 v1 mod s32 v2) land mask32
        | 7 -> if v2 = 0 then v1 else v1 mod v2
        | _ -> raise (Unknown_instruction w)
      in
      write_reg t rd v
  | 0x33 ->
      let sh = v2 land 31 in
      let v =
        match (funct3, funct7) with
        | 0, 0x00 -> v1 + v2
        | 0, 0x20 -> v1 - v2
        | 1, _ -> v1 lsl sh
        | 2, _ -> if s32 v1 < s32 v2 then 1 else 0
        | 3, _ -> if v1 < v2 then 1 else 0
        | 4, _ -> v1 lxor v2
        | 5, 0x00 -> v1 lsr sh
        | 5, 0x20 -> s32 v1 asr sh
        | 6, _ -> v1 lor v2
        | 7, _ -> v1 land v2
        | _ -> raise (Unknown_instruction w)
      in
      write_reg t rd v
  | 0x0F -> () (* FENCE *)
  | 0x73 -> () (* ECALL/EBREAK: no-op in this model *)
  | _ -> raise (Unknown_instruction w));
  t.pc <- !next

let step t = step_word t (read_word t t.pc)
