(** The Section 5.5 case study: summing an n-element integer array held in
   memory, on the VexRiscv model, with and without the autoinc + zol
   ISAXes. The paper reports 18n + 50 cycles for the baseline and
   11n + 50 with the ISAXes (>60% speedup at 16% area). *)

val baseline_program : int -> string
val isax_program : int -> string
type run_result = { cycles : int; checksum : int; instret : int; }
val fill_array : Machine.t -> int -> unit
val expected_sum : int -> int
val run_baseline : n:int -> run_result
val run_isax : n:int -> Longnail.Flow.compiled -> run_result
val fit : int * int -> int * int -> int * int
