(** Native RV32I instruction-set simulator.

   A fast, hand-written golden model operating on OCaml ints. Used as the
   oracle to cross-validate the CoreDSL-described RV32I (the same
   instructions executed through the reference interpreter must produce
   identical architectural state). *)

type t = { mutable pc : int; regs : int array; mem : (int, int) Hashtbl.t; }
val mask32 : int
val create : unit -> t
val read_reg : t -> int -> int
val write_reg : t -> int -> int -> unit
val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit
val read_word : t -> int -> int
val write_word : t -> int -> int -> unit
val read_half : t -> int -> int
val write_half : t -> int -> int -> unit
val sext : int -> int -> int
val s32 : int -> int
exception Unknown_instruction of int
val step_word : t -> int -> unit
val step : t -> unit
