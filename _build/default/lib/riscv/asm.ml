(* A small RV32I assembler.

   Supports the full RV32I base set, the usual pseudo-instructions, labels,
   and a directive for custom ISAX instructions:

     .isax NAME field=value field=value ...

   where NAME is an instruction defined in a CoreDSL unit and the fields
   are its encoding fields (register fields take x-register numbers or ABI
   names, immediates take integers or label references). Used to write the
   "handwritten assembler programs" with which the paper verifies the
   extended cores (Section 5.3) and the Section 5.5 case study. *)

exception Asm_error of string

let asm_error fmt = Format.kasprintf (fun m -> raise (Asm_error m)) fmt

let abi_names =
  [
    ("zero", 0); ("ra", 1); ("sp", 2); ("gp", 3); ("tp", 4);
    ("t0", 5); ("t1", 6); ("t2", 7);
    ("s0", 8); ("fp", 8); ("s1", 9);
    ("a0", 10); ("a1", 11); ("a2", 12); ("a3", 13); ("a4", 14); ("a5", 15); ("a6", 16); ("a7", 17);
    ("s2", 18); ("s3", 19); ("s4", 20); ("s5", 21); ("s6", 22); ("s7", 23); ("s8", 24); ("s9", 25);
    ("s10", 26); ("s11", 27);
    ("t3", 28); ("t4", 29); ("t5", 30); ("t6", 31);
  ]

let parse_reg s =
  let s = String.lowercase_ascii (String.trim s) in
  if String.length s >= 2 && s.[0] = 'x' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r when r >= 0 && r < 32 -> r
    | _ -> asm_error "bad register '%s'" s
  else
    match List.assoc_opt s abi_names with
    | Some r -> r
    | None -> asm_error "bad register '%s'" s

type operand =
  | Reg of int
  | Imm of int
  | Label of string
  | Mem of int * int  (* offset(reg) *)

let parse_operand s =
  let s = String.trim s in
  if s = "" then asm_error "empty operand";
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
      let off = String.trim (String.sub s 0 i) in
      let reg = String.sub s (i + 1) (String.length s - i - 2) in
      let off = if off = "" then 0 else int_of_string off in
      Mem (off, parse_reg reg)
  | _ -> (
      match int_of_string_opt s with
      | Some i -> Imm i
      | None -> (
          try Reg (parse_reg s)
          with Asm_error _ -> Label s))

(* encoders *)
let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor opcode

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  ((imm land 0xFFF) lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor opcode

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  (((imm lsr 5) land 0x7F) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor ((imm land 0x1F) lsl 7) lor opcode

let b_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  (((imm lsr 12) land 1) lsl 31)
  lor (((imm lsr 5) land 0x3F) lsl 25)
  lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (((imm lsr 1) land 0xF) lsl 8)
  lor (((imm lsr 11) land 1) lsl 7)
  lor opcode

let u_type ~imm ~rd ~opcode = (imm land 0xFFFFF000) lor (rd lsl 7) lor opcode

let j_type ~imm ~rd ~opcode =
  (((imm lsr 20) land 1) lsl 31)
  lor (((imm lsr 1) land 0x3FF) lsl 21)
  lor (((imm lsr 11) land 1) lsl 20)
  lor (((imm lsr 12) land 0xFF) lsl 12)
  lor (rd lsl 7) lor opcode

type item =
  | Word of int
  | Needs_label of (int -> (string -> int) -> int)  (* pc, label resolver -> word *)

type custom_encoder = string -> (string * int) list -> int
(** ISAX encoder: instruction name, field assignments -> word *)

let split_operands s =
  if String.trim s = "" then []
  else List.map String.trim (String.split_on_char ',' s)

(* first pass: parse lines into items, collecting label addresses *)
let assemble ?(base = 0) ?(custom : custom_encoder option) (src : string) : int list =
  let lines = String.split_on_char '\n' src in
  let items = ref [] and labels = Hashtbl.create 16 in
  let pc = ref base in
  let emit i =
    items := (i, !pc) :: !items;
    pc := !pc + 4
  in
  let reg = function
    | Reg r -> r
    | o -> asm_error "expected register, got %s" (match o with Imm i -> string_of_int i | Label l -> l | Mem _ -> "mem operand" | Reg _ -> assert false)
  in
  let imm = function Imm i -> i | _ -> asm_error "expected immediate" in
  let process_line raw =
    let line =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    let line = String.trim line in
    if line = "" then ()
    else begin
      (* labels *)
      let line =
        match String.index_opt line ':' with
        | Some i ->
            let lbl = String.trim (String.sub line 0 i) in
            Hashtbl.replace labels lbl !pc;
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
        | None -> line
      in
      if line = "" then ()
      else begin
        let mnem, rest =
          match String.index_opt line ' ' with
          | Some i -> (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
          | None -> (line, "")
        in
        let mnem = String.lowercase_ascii mnem in
        let ops = List.map parse_operand (split_operands rest) in
        let branch funct3 =
          match ops with
          | [ a; b; Label l ] ->
              let ra = reg a and rb = reg b in
              emit (Needs_label (fun pc resolve -> b_type ~imm:(resolve l - pc) ~rs2:rb ~rs1:ra ~funct3 ~opcode:0x63))
          | [ a; b; Imm ofs ] -> emit (Word (b_type ~imm:ofs ~rs2:(reg b) ~rs1:(reg a) ~funct3 ~opcode:0x63))
          | _ -> asm_error "branch needs rs1, rs2, target"
        in
        let alu_imm funct3 =
          match ops with
          | [ rd; rs1; i ] -> emit (Word (i_type ~imm:(imm i) ~rs1:(reg rs1) ~funct3 ~rd:(reg rd) ~opcode:0x13))
          | _ -> asm_error "%s needs rd, rs1, imm" mnem
        in
        let shift_imm funct3 funct7 =
          match ops with
          | [ rd; rs1; i ] ->
              emit (Word (r_type ~funct7 ~rs2:(imm i land 31) ~rs1:(reg rs1) ~funct3 ~rd:(reg rd) ~opcode:0x13))
          | _ -> asm_error "%s needs rd, rs1, shamt" mnem
        in
        let alu_reg funct3 funct7 =
          match ops with
          | [ rd; rs1; rs2 ] ->
              emit (Word (r_type ~funct7 ~rs2:(reg rs2) ~rs1:(reg rs1) ~funct3 ~rd:(reg rd) ~opcode:0x33))
          | _ -> asm_error "%s needs rd, rs1, rs2" mnem
        in
        let load funct3 =
          match ops with
          | [ rd; Mem (ofs, base) ] -> emit (Word (i_type ~imm:ofs ~rs1:base ~funct3 ~rd:(reg rd) ~opcode:0x03))
          | _ -> asm_error "%s needs rd, ofs(rs1)" mnem
        in
        let store funct3 =
          match ops with
          | [ rs2; Mem (ofs, base) ] -> emit (Word (s_type ~imm:ofs ~rs2:(reg rs2) ~rs1:base ~funct3 ~opcode:0x23))
          | _ -> asm_error "%s needs rs2, ofs(rs1)" mnem
        in
        match mnem with
        | "lui" -> (match ops with
            | [ rd; i ] -> emit (Word (u_type ~imm:(imm i lsl 12) ~rd:(reg rd) ~opcode:0x37))
            | _ -> asm_error "lui needs rd, imm")
        | "auipc" -> (match ops with
            | [ rd; i ] -> emit (Word (u_type ~imm:(imm i lsl 12) ~rd:(reg rd) ~opcode:0x17))
            | _ -> asm_error "auipc needs rd, imm")
        | "jal" -> (match ops with
            | [ rd; Label l ] ->
                let r = reg rd in
                emit (Needs_label (fun pc resolve -> j_type ~imm:(resolve l - pc) ~rd:r ~opcode:0x6F))
            | [ Label l ] -> emit (Needs_label (fun pc resolve -> j_type ~imm:(resolve l - pc) ~rd:1 ~opcode:0x6F))
            | _ -> asm_error "jal needs rd, label")
        | "j" -> (match ops with
            | [ Label l ] -> emit (Needs_label (fun pc resolve -> j_type ~imm:(resolve l - pc) ~rd:0 ~opcode:0x6F))
            | _ -> asm_error "j needs label")
        | "jalr" -> (match ops with
            | [ rd; Mem (ofs, base) ] -> emit (Word (i_type ~imm:ofs ~rs1:base ~funct3:0 ~rd:(reg rd) ~opcode:0x67))
            | [ rd; rs1; i ] -> emit (Word (i_type ~imm:(imm i) ~rs1:(reg rs1) ~funct3:0 ~rd:(reg rd) ~opcode:0x67))
            | _ -> asm_error "jalr needs rd, ofs(rs1)")
        | "ret" -> emit (Word (i_type ~imm:0 ~rs1:1 ~funct3:0 ~rd:0 ~opcode:0x67))
        | "beq" -> branch 0
        | "bne" -> branch 1
        | "blt" -> branch 4
        | "bge" -> branch 5
        | "bltu" -> branch 6
        | "bgeu" -> branch 7
        | "beqz" -> (match ops with
            | [ a; l ] -> (match l with
                | Label l ->
                    let ra = reg a in
                    emit (Needs_label (fun pc resolve -> b_type ~imm:(resolve l - pc) ~rs2:0 ~rs1:ra ~funct3:0 ~opcode:0x63))
                | _ -> asm_error "beqz needs reg, label")
            | _ -> asm_error "beqz needs reg, label")
        | "bnez" -> (match ops with
            | [ a; l ] -> (match l with
                | Label l ->
                    let ra = reg a in
                    emit (Needs_label (fun pc resolve -> b_type ~imm:(resolve l - pc) ~rs2:0 ~rs1:ra ~funct3:1 ~opcode:0x63))
                | _ -> asm_error "bnez needs reg, label")
            | _ -> asm_error "bnez needs reg, label")
        | "lb" -> load 0
        | "lh" -> load 1
        | "lw" -> load 2
        | "lbu" -> load 4
        | "lhu" -> load 5
        | "sb" -> store 0
        | "sh" -> store 1
        | "sw" -> store 2
        | "addi" -> alu_imm 0
        | "slti" -> alu_imm 2
        | "sltiu" -> alu_imm 3
        | "xori" -> alu_imm 4
        | "ori" -> alu_imm 6
        | "andi" -> alu_imm 7
        | "slli" -> shift_imm 1 0x00
        | "srli" -> shift_imm 5 0x00
        | "srai" -> shift_imm 5 0x20
        | "add" -> alu_reg 0 0x00
        | "sub" -> alu_reg 0 0x20
        | "sll" -> alu_reg 1 0x00
        | "slt" -> alu_reg 2 0x00
        | "sltu" -> alu_reg 3 0x00
        | "xor" -> alu_reg 4 0x00
        | "srl" -> alu_reg 5 0x00
        | "sra" -> alu_reg 5 0x20
        | "or" -> alu_reg 6 0x00
        | "and" -> alu_reg 7 0x00
        | "mul" -> alu_reg 0 0x01
        | "mulh" -> alu_reg 1 0x01
        | "mulhsu" -> alu_reg 2 0x01
        | "mulhu" -> alu_reg 3 0x01
        | "div" -> alu_reg 4 0x01
        | "divu" -> alu_reg 5 0x01
        | "rem" -> alu_reg 6 0x01
        | "remu" -> alu_reg 7 0x01
        | "nop" -> emit (Word (i_type ~imm:0 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:0x13))
        | "li" -> (match ops with
            | [ rd; i ] ->
                let v = imm i in
                if v >= -2048 && v < 2048 then
                  emit (Word (i_type ~imm:v ~rs1:0 ~funct3:0 ~rd:(reg rd) ~opcode:0x13))
                else begin
                  (* lui + addi *)
                  let lo = ((v land 0xFFF) lsl 20) asr 20 in
                  let hi = (v - lo) land 0xFFFFFFFF in
                  let r = reg rd in
                  emit (Word (u_type ~imm:hi ~rd:r ~opcode:0x37));
                  emit (Word (i_type ~imm:lo ~rs1:r ~funct3:0 ~rd:r ~opcode:0x13))
                end
            | _ -> asm_error "li needs rd, imm")
        | "mv" -> (match ops with
            | [ rd; rs ] -> emit (Word (i_type ~imm:0 ~rs1:(reg rs) ~funct3:0 ~rd:(reg rd) ~opcode:0x13))
            | _ -> asm_error "mv needs rd, rs")
        | "ebreak" -> emit (Word (i_type ~imm:1 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:0x73))
        | "ecall" -> emit (Word (i_type ~imm:0 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:0x73))
        | ".word" -> (match ops with
            | [ Imm v ] -> emit (Word (v land 0xFFFFFFFF))
            | _ -> asm_error ".word needs a value")
        | ".isax" -> (
            match custom with
            | None -> asm_error ".isax used without a custom encoder"
            | Some enc -> (
                let toks =
                  String.split_on_char ' ' rest
                  |> List.concat_map (String.split_on_char ',')
                  |> List.map String.trim
                  |> List.filter (fun s -> s <> "")
                in
                match toks with
                | name :: fields ->
                    let kvs =
                      List.map
                        (fun f ->
                          match String.index_opt f '=' with
                          | Some i ->
                              let k = String.trim (String.sub f 0 i) in
                              let v = String.trim (String.sub f (i + 1) (String.length f - i - 1)) in
                              let v =
                                match int_of_string_opt v with
                                | Some n -> n
                                | None -> parse_reg v
                              in
                              (k, v)
                          | None -> asm_error "bad .isax field '%s'" f)
                        fields
                    in
                    emit (Word (enc (String.trim name) kvs))
                | [] -> asm_error ".isax needs an instruction name"))
        | m -> asm_error "unknown mnemonic '%s'" m
      end
    end
  in
  List.iter process_line lines;
  let resolve l =
    match Hashtbl.find_opt labels l with
    | Some a -> a
    | None -> asm_error "undefined label '%s'" l
  in
  List.rev_map
    (fun (item, pc) ->
      match item with Word w -> w | Needs_label f -> f pc resolve)
    !items
