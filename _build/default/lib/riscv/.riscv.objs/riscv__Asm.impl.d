lib/riscv/asm.ml: Format Hashtbl List String
