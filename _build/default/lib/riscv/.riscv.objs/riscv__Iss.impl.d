lib/riscv/iss.ml: Array Hashtbl Option
