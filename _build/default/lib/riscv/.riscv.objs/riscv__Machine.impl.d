lib/riscv/machine.ml: Array Asm Bitvec Coredsl List Longnail Printf Scaiev
