lib/riscv/rtl_loop.ml: Array Bitvec Coredsl List Longnail Option Printf
