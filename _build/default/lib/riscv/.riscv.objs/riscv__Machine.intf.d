lib/riscv/machine.mli: Asm Bitvec Coredsl Longnail Scaiev
