lib/riscv/pipeline.mli: Bitvec Coredsl Longnail Rtl
