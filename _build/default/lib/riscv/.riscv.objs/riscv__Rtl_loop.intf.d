lib/riscv/rtl_loop.mli: Bitvec Coredsl Longnail
