lib/riscv/pipeline.ml: Array Bitvec Coredsl Iss List Longnail Option Rtl Scaiev String
