lib/riscv/asm.mli: Format
