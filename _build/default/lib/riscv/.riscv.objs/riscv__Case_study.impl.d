lib/riscv/case_study.ml: Asm Coredsl Longnail Machine Printf
