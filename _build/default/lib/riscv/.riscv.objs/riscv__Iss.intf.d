lib/riscv/iss.mli: Hashtbl
