lib/riscv/case_study.mli: Longnail Machine
