(* Synthetic 22nm standard-cell library.

   Substitutes for the commercial ASIC reference flow of Section 5.3 (see
   DESIGN.md, substitution 1). Per-operator area and delay constants are in
   the range of published 22nm FDSOI data and were calibrated so that the
   Table 4 baselines and overhead *shapes* reproduce. Delay is the same
   width-aware model the scheduler can optionally use
   ({!Longnail.Delay_model.physical}); area is per result bit except for
   multipliers/dividers (quadratic) and ROMs (per stored bit). *)

(* area of one node, in um^2 *)
let comb_area ~op ~width ~(n_inputs : int) =
  let w = float_of_int width in
  match op with
  | "hw.constant" -> 0.0
  | "comb.extract" | "comb.concat" | "comb.replicate" -> 0.0 (* wiring *)
  | "comb.and" | "comb.or" -> 0.25 *. w
  | "comb.xor" -> 0.5 *. w
  | "comb.mux" -> 0.35 *. w *. float_of_int (max 1 (n_inputs - 2))
  | "comb.add" | "comb.sub" -> 1.0 *. w
  | "comb.shl" | "comb.shru" | "comb.shrs" -> 0.8 *. w
  | "comb.icmp_eq" | "comb.icmp_ne" -> 0.6 *. w
  | "comb.icmp_ult" | "comb.icmp_ule" | "comb.icmp_ugt" | "comb.icmp_uge" | "comb.icmp_slt"
  | "comb.icmp_sle" | "comb.icmp_sgt" | "comb.icmp_sge" ->
      0.6 *. w
  | "comb.mul" -> 0.35 *. w *. w
  | "comb.divu" | "comb.divs" | "comb.modu" | "comb.mods" -> 1.0 *. w *. w
  | _ -> 0.5 *. w

let flop_area_per_bit = 0.6
let rom_area_per_bit = 0.06

(* physical propagation delay of one node, ns *)
let comb_delay ~op ~width = Longnail.Delay_model.default_op_delay op width

(* delay contributed by a register output / input port pad *)
let launch_delay = 0.05
let setup_time = 0.04
