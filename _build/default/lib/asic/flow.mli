(** The full ASIC-flow model: given a Longnail compile for one core, produce
   the Table 4 data point (area and frequency overhead versus the
   unmodified base core).

   The base-core area/fmax values are the calibrated Table 4 baselines
   (they come from a commercial 22nm flow we cannot run; see DESIGN.md).
   Everything on top is derived from the actually generated hardware:
   - ISAX module area/timing from technology mapping + STA ({!Synth}),
   - SCAIE-V adapter area from the integration plan
     ({!Scaiev.Generator.adapter}),
   - achieved frequency from the worst per-stage path, including the
     forwarding-path effect that penalizes cores which forward from the
     writeback stage (ORCA, Section 5.4),
   - a synthesis "extra effort" area bloat when a module misses timing,
   - a small deterministic jitter modelling place-and-route noise. *)

type result = {
  core_name : string;
  isax_name : string;
  base_area_um2 : float;
  base_freq_mhz : float;
  isax_area_um2 : float;
  adapter_area_um2 : float;
  total_area_um2 : float;
  achieved_freq_mhz : float;
  area_overhead_pct : float;
  freq_delta_pct : float;
  module_reports : (string * Synth.report) list;
}
val adapter_area : Scaiev.Generator.adapter -> float
val jitter : seed:'a -> amp:float -> float
val run : ?isax_name:string -> Longnail.Flow.compiled -> result
