(* "Synthesis" of an RTL netlist: technology mapping into the synthetic
   cell library (area accounting) and static timing analysis (longest
   combinational path between sequential elements / ports). *)

open Rtl.Netlist

type report = {
  area_um2 : float;  (* combinational + sequential + ROM area *)
  comb_area_um2 : float;
  seq_area_um2 : float;
  rom_area_um2 : float;
  critical_path_ns : float;  (* longest register-to-register/port path *)
  n_cells : int;
}

let node_area = function
  | Comb c -> Library.comb_area ~op:c.op ~width:c.width ~n_inputs:(List.length c.inputs)
  | Rom r -> Library.rom_area_per_bit *. float_of_int (Array.length r.table * r.width)
  | Reg r -> Library.flop_area_per_bit *. float_of_int r.width

(* longest path: arrival time at each signal, walking combinational nodes
   in dependency order; registers and inputs launch at [launch_delay] *)
let critical_path (m : Rtl.Netlist.t) =
  let arrival = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace arrival p.port_signal Library.launch_delay) m.inputs;
  List.iter
    (fun (r : reg_node) -> Hashtbl.replace arrival r.out Library.launch_delay)
    (registers m);
  let at s = Option.value ~default:0.0 (Hashtbl.find_opt arrival s) in
  let worst = ref 0.0 in
  List.iter
    (fun n ->
      let inputs, delay, out =
        match n with
        | Comb c ->
            (c.inputs, Library.comb_delay ~op:c.op ~width:c.width, c.out)
        | Rom r -> ([ r.index ], Library.comb_delay ~op:"lil.rom" ~width:r.width, r.out)
        | Reg _ -> ([], 0.0, "")
      in
      if out <> "" then begin
        let arr = List.fold_left (fun acc s -> max acc (at s)) 0.0 inputs +. delay in
        Hashtbl.replace arrival out arr;
        worst := max !worst arr
      end)
    (topo_nodes m);
  (* paths terminate at register data/enable inputs and output ports *)
  let endpoint s = at s +. Library.setup_time in
  List.iter
    (fun (r : reg_node) ->
      worst := max !worst (endpoint r.next);
      match r.enable with Some e -> worst := max !worst (endpoint e) | None -> ())
    (registers m);
  List.iter (fun p -> worst := max !worst (endpoint p.port_signal)) m.outputs;
  !worst

let synthesize (m : Rtl.Netlist.t) : report =
  let comb = ref 0.0 and seq = ref 0.0 and rom = ref 0.0 and cells = ref 0 in
  List.iter
    (fun n ->
      incr cells;
      let a = node_area n in
      match n with
      | Comb _ -> comb := !comb +. a
      | Rom _ -> rom := !rom +. a
      | Reg _ -> seq := !seq +. a)
    m.nodes;
  {
    area_um2 = !comb +. !seq +. !rom;
    comb_area_um2 = !comb;
    seq_area_um2 = !seq;
    rom_area_um2 = !rom;
    critical_path_ns = critical_path m;
    n_cells = !cells;
  }
