(* Markdown report generator: one page summarizing a Longnail compile for
   a host core — functionality table, schedules, ASIC cost breakdown,
   sharing opportunities, and the SCAIE-V configuration. Used by the
   CLI's `report` command. *)

let generate ?(isax_name = "isax") (c : Longnail.Flow.compiled) : string =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let core = c.Longnail.Flow.core in
  let r = Flow.run ~isax_name c in
  pr "# Longnail report: %s on %s\n\n" isax_name core.core_name;
  pr "Base core: %.0f um^2 at %.0f MHz (%d-stage %s)\n\n" core.base_area_um2 core.base_freq_mhz
    core.pipeline_stages
    (if core.is_fsm then "FSM" else "pipeline");
  pr "## Functionalities\n\n";
  pr "| name | kind | mode | last stage | module area (um^2) | critical path (ns) |\n";
  pr "|------|------|------|-----------:|-------------------:|-------------------:|\n";
  List.iter
    (fun (f : Longnail.Flow.compiled_functionality) ->
      let rep = Synth.synthesize f.cf_hw.Longnail.Hwgen.netlist in
      pr "| %s | %s | %s | %d | %.0f | %.2f |\n" f.cf_name
        (match f.cf_kind with `Instruction -> "instruction" | `Always -> "always")
        (Scaiev.Config.mode_to_string f.cf_mode)
        f.cf_hw.Longnail.Hwgen.max_stage rep.area_um2 rep.critical_path_ns)
    c.funcs;
  pr "\n## Interface schedule\n\n";
  List.iter
    (fun (f : Longnail.Flow.compiled_functionality) ->
      pr "### %s\n\n" f.cf_name;
      pr "| sub-interface | stage | mode |\n|---|---:|---|\n";
      List.iter
        (fun (b : Longnail.Hwgen.iface_binding) ->
          pr "| %s | %d | %s |\n" b.ib_iface b.ib_stage (Scaiev.Config.mode_to_string b.ib_mode))
        f.cf_hw.Longnail.Hwgen.bindings;
      pr "\n")
    c.funcs;
  pr "## ASIC cost (synthetic 22nm flow)\n\n";
  pr "| | um^2 |\n|---|---:|\n";
  pr "| ISAX modules | %.0f |\n" r.isax_area_um2;
  pr "| SCAIE-V adapter | %.0f |\n" r.adapter_area_um2;
  pr "| total (incl. base core) | %.0f |\n\n" r.total_area_um2;
  pr "Area overhead **%+.1f%%**, achieved frequency **%.0f MHz** (%+.1f%%).\n\n"
    r.area_overhead_pct r.achieved_freq_mhz r.freq_delta_pct;
  let opps = Longnail.Sharing.analyze c in
  if opps <> [] then begin
    pr "## Resource-sharing opportunities (prototype analysis)\n\n";
    pr "| operator | width | shareable units | estimated saving (um^2) | scope |\n";
    pr "|---|---:|---:|---:|---|\n";
    List.iter
      (fun (o : Longnail.Sharing.opportunity) ->
        pr "| %s | %d | %d | %.0f | %s |\n" o.sh_op o.sh_width o.sh_shareable o.sh_saved_area_um2
          (match o.sh_scope with
          | `Within f -> Printf.sprintf "within %s" f
          | `Across (a, b) -> Printf.sprintf "across %s/%s" a b))
      opps;
    pr "\n"
  end;
  pr "## SCAIE-V configuration\n\n```yaml\n%s```\n" c.config_yaml;
  Buffer.contents buf
