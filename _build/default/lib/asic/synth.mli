(** "Synthesis" of an RTL netlist: technology mapping into the synthetic
   cell library (area accounting) and static timing analysis (longest
   combinational path between sequential elements / ports). *)

type report = {
  area_um2 : float;
  comb_area_um2 : float;
  seq_area_um2 : float;
  rom_area_um2 : float;
  critical_path_ns : float;
  n_cells : int;
}
val node_area : Rtl.Netlist.node -> float
val critical_path : Rtl.Netlist.t -> float
val synthesize : Rtl.Netlist.t -> report
