(** Synthetic 22nm standard-cell library.

   Substitutes for the commercial ASIC reference flow of Section 5.3 (see
   DESIGN.md, substitution 1). Per-operator area and delay constants are in
   the range of published 22nm FDSOI data and were calibrated so that the
   Table 4 baselines and overhead *shapes* reproduce. Delay is the same
   width-aware model the scheduler can optionally use
   ({!Longnail.Delay_model.physical}); area is per result bit except for
   multipliers/dividers (quadratic) and ROMs (per stored bit). *)

val comb_area : op:string -> width:int -> n_inputs:int -> float
val flop_area_per_bit : float
val rom_area_per_bit : float
val comb_delay : op:string -> width:int -> float
val launch_delay : float
val setup_time : float
