(* The full ASIC-flow model: given a Longnail compile for one core, produce
   the Table 4 data point (area and frequency overhead versus the
   unmodified base core).

   The base-core area/fmax values are the calibrated Table 4 baselines
   (they come from a commercial 22nm flow we cannot run; see DESIGN.md).
   Everything on top is derived from the actually generated hardware:
   - ISAX module area/timing from technology mapping + STA ({!Synth}),
   - SCAIE-V adapter area from the integration plan
     ({!Scaiev.Generator.adapter}),
   - achieved frequency from the worst per-stage path, including the
     forwarding-path effect that penalizes cores which forward from the
     writeback stage (ORCA, Section 5.4),
   - a synthesis "extra effort" area bloat when a module misses timing,
   - a small deterministic jitter modelling place-and-route noise. *)

type result = {
  core_name : string;
  isax_name : string;
  base_area_um2 : float;
  base_freq_mhz : float;
  isax_area_um2 : float;  (* generated ISAX modules *)
  adapter_area_um2 : float;  (* SCAIE-V integration logic *)
  total_area_um2 : float;
  achieved_freq_mhz : float;
  area_overhead_pct : float;
  freq_delta_pct : float;
  module_reports : (string * Synth.report) list;
}

(* ---- adapter area model ---- *)

let adapter_area (a : Scaiev.Generator.adapter) =
  let f = float_of_int in
  let open Scaiev.Generator in
  f a.decode_comparator_bits *. 0.4
  +. (f a.custom_reg_bits *. (Library.flop_area_per_bit +. 0.6))
  +. (f (a.custom_reg_read_ports + a.custom_reg_write_ports) *. 30.0)
  +. (f a.arbitration_mux_bits *. 0.7)
  +. (f a.scoreboard_bits *. 2.0)
  +. (f a.hazard_comparators *. 12.0)
  +. (f a.stall_counter_bits *. 3.0 +. if a.stall_counter_bits > 0 then 30.0 else 0.0)
  +. (f a.stage_taps *. 25.0)
  +. (if a.uses_mem_port then 120.0 else 0.0)
  +. (if a.uses_pc_write then 80.0 else 0.0)
  +. if a.has_always_block then 50.0 else 0.0

(* deterministic pseudo-random jitter in [-amp, +amp] *)
let jitter ~seed ~amp =
  let h = Hashtbl.hash seed in
  let u = float_of_int (h mod 1000) /. 999.0 in
  amp *. ((2.0 *. u) -. 1.0)

(* ---- the flow ---- *)

let run ?(isax_name = "isax") (c : Longnail.Flow.compiled) : result =
  let core = c.core in
  let base_period = 1000.0 /. core.base_freq_mhz in
  let reports =
    List.map
      (fun (f : Longnail.Flow.compiled_functionality) ->
        (f.cf_name, Synth.synthesize f.cf_hw.Longnail.Hwgen.netlist, f))
      c.funcs
  in
  (* timing requirement per module: its worst stage path plus the
     integration mux; modules writing back in the forwarding stage of a
     forwarding core sit on the operand-bypass path *)
  let module_requirement (rep : Synth.report) (f : Longnail.Flow.compiled_functionality) =
    let cp = rep.critical_path_ns in
    let base = cp +. 0.06 (* integration mux *) in
    let wb_writer =
      List.exists
        (fun b ->
          b.Longnail.Hwgen.ib_iface = "WrRD"
          && b.Longnail.Hwgen.ib_mode = Scaiev.Config.In_pipeline
          && b.Longnail.Hwgen.ib_stage >= core.writeback_stage)
        f.cf_hw.Longnail.Hwgen.bindings
    in
    (* Forwarding-path loading (Section 5.4): in-pipeline results written in
       the writeback stage of a core that forwards from there join the
       operand-bypass network; deep result logic lengthens that path. *)
    let fwd =
      if core.forwarding_from_writeback && wb_writer then max 0.0 (0.45 *. (cp -. 0.30))
      else 0.0
    in
    (* Tightly-coupled stall distribution: the stall request must settle
       across the whole core, which gets harder the deeper the module
       (the paper's "more effort to achieve timing closure"). *)
    let tc =
      if f.cf_mode = Scaiev.Config.Tightly_coupled then max 0.0 (0.8 *. (cp -. 0.35)) else 0.0
    in
    (base, fwd +. tc)
  in
  let worst_req =
    List.fold_left
      (fun acc (_, rep, f) ->
        let own, core_load = module_requirement rep f in
        max acc (max own (base_period +. core_load)))
      0.0 reports
  in
  (* synthesis puts in extra effort (= area) when a module misses timing *)
  let isax_area =
    List.fold_left
      (fun acc (_, (rep : Synth.report), f) ->
        let own, core_load = module_requirement rep f in
        let req = max own (base_period +. core_load) in
        let bloat = if req > base_period then 1.0 +. (0.35 *. ((req /. base_period) -. 1.0)) else 1.0 in
        acc +. (rep.area_um2 *. bloat))
      0.0 reports
  in
  let adapter = adapter_area c.adapter in
  let seed = core.core_name ^ "/" ^ isax_name in
  let area_noise = 1.0 +. jitter ~seed:(seed ^ "#area") ~amp:0.012 in
  let freq_noise = 1.0 +. jitter ~seed:(seed ^ "#freq") ~amp:0.02 in
  let period = max base_period worst_req in
  let achieved_freq = 1000.0 /. period *. freq_noise in
  let isax_area = isax_area *. area_noise in
  let total = core.base_area_um2 +. isax_area +. adapter in
  {
    core_name = core.core_name;
    isax_name;
    base_area_um2 = core.base_area_um2;
    base_freq_mhz = core.base_freq_mhz;
    isax_area_um2 = isax_area;
    adapter_area_um2 = adapter;
    total_area_um2 = total;
    achieved_freq_mhz = achieved_freq;
    area_overhead_pct = (isax_area +. adapter) /. core.base_area_um2 *. 100.0;
    freq_delta_pct = (achieved_freq -. core.base_freq_mhz) /. core.base_freq_mhz *. 100.0;
    module_reports = List.map (fun (n, r, _) -> (n, r)) reports;
  }
