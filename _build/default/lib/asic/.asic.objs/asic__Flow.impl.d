lib/asic/flow.ml: Hashtbl Library List Longnail Scaiev Synth
