lib/asic/synth.ml: Array Hashtbl Library List Option Rtl
