lib/asic/library.ml: Longnail
