lib/asic/synth.mli: Rtl
