lib/asic/report.ml: Buffer Flow List Longnail Printf Scaiev Synth
