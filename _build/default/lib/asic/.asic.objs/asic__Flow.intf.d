lib/asic/flow.mli: Longnail Scaiev Synth
