lib/asic/library.mli:
