lib/asic/report.mli: Longnail
