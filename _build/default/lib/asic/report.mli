(** Markdown report generator: one page summarizing a Longnail compile for
   a host core — functionality table, schedules, ASIC cost breakdown,
   sharing opportunities, and the SCAIE-V configuration. Used by the
   CLI's `report` command. *)

val generate : ?isax_name:string -> Longnail.Flow.compiled -> string
