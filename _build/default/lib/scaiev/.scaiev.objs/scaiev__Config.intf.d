lib/scaiev/config.mli: Bitvec
