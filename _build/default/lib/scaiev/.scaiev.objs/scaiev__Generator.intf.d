lib/scaiev/generator.mli: Config Datasheet Format
