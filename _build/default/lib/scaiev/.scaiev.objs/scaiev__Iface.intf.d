lib/scaiev/iface.mli: Format
