lib/scaiev/generator.ml: Config Datasheet Filename Format Hashtbl Iface List Option String
