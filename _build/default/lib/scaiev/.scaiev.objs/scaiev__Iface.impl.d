lib/scaiev/iface.ml: Format List String
