lib/scaiev/config.ml: Bitvec Buffer List Printf String
