lib/scaiev/datasheet.mli:
