lib/scaiev/datasheet.ml: Buffer List Printf String
