(* The SCAIE-V configuration file exchanged between Longnail and SCAIE-V
   (Figures 8 and 9 of the paper).

   Longnail emits this after scheduling; SCAIE-V consumes it to generate
   the integration logic. We keep the paper's YAML-based format, and
   support parsing it back so the two tools remain decoupled. *)

type mode = In_pipeline | Tightly_coupled | Decoupled | Always_mode

let mode_to_string = function
  | In_pipeline -> "in-pipeline"
  | Tightly_coupled -> "tightly-coupled"
  | Decoupled -> "decoupled"
  | Always_mode -> "always"

let mode_of_string = function
  | "in-pipeline" -> In_pipeline
  | "tightly-coupled" -> Tightly_coupled
  | "decoupled" -> Decoupled
  | "always" -> Always_mode
  | s -> invalid_arg ("unknown execution mode " ^ s)

type reg_req = { cr_name : string; cr_width : int; cr_elems : int }

type sched_entry = {
  se_iface : string;  (* e.g. "RdPC", "WrCOUNT.data" *)
  se_stage : int;
  se_has_valid : bool;
  se_mode : mode;  (* variant selected for this interface use *)
}

type functionality = {
  fn_name : string;
  fn_kind : [ `Instruction | `Always ];
  fn_mask : string;  (* e.g. "-----------------101000000001011" *)
  fn_entries : sched_entry list;
}

type t = { regs : reg_req list; funcs : functionality list }

(* ---- emission (Figure 8 format) ---- *)

let to_yaml (c : t) =
  let buf = Buffer.create 512 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "- {register: %s, width: %d, elements: %d}\n" r.cr_name r.cr_width
           r.cr_elems))
    c.regs;
  List.iter
    (fun f ->
      (match f.fn_kind with
      | `Instruction ->
          Buffer.add_string buf (Printf.sprintf "- instruction: %s\n" f.fn_name);
          Buffer.add_string buf (Printf.sprintf "  mask: \"%s\"\n" f.fn_mask)
      | `Always -> Buffer.add_string buf (Printf.sprintf "- always: %s\n" f.fn_name));
      Buffer.add_string buf "  schedule:\n";
      List.iter
        (fun e ->
          Buffer.add_string buf
            (Printf.sprintf "    - {interface: %s, stage: %d%s%s}\n" e.se_iface e.se_stage
               (if e.se_has_valid then ", has valid: 1" else "")
               (match e.se_mode with
               | In_pipeline -> ""
               | m -> Printf.sprintf ", mode: %s" (mode_to_string m))))
        f.fn_entries)
    c.funcs;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of string

let strip s =
  let is_ws c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_ws s.[!i] do incr i done;
  while !j >= !i && is_ws s.[!j] do decr j done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

(* parse "{k1: v1, k2: v2}" into an assoc list *)
let parse_braces s =
  let s = strip s in
  if String.length s < 2 || s.[0] <> '{' || s.[String.length s - 1] <> '}' then
    raise (Parse_error ("expected {...}: " ^ s));
  let inner = String.sub s 1 (String.length s - 2) in
  String.split_on_char ',' inner
  |> List.filter_map (fun kv ->
         match String.index_opt kv ':' with
         | None -> None
         | Some i ->
             let k = strip (String.sub kv 0 i) in
             let v = strip (String.sub kv (i + 1) (String.length kv - i - 1)) in
             Some (k, v))

let unquote s =
  let s = strip s in
  if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
    String.sub s 1 (String.length s - 2)
  else s

let of_yaml (text : string) : t =
  let lines = String.split_on_char '\n' text in
  let regs = ref [] and funcs = ref [] in
  let cur : functionality option ref = ref None in
  let flush_cur () =
    match !cur with
    | Some f -> funcs := { f with fn_entries = List.rev f.fn_entries } :: !funcs
    | None -> ()
  in
  List.iter
    (fun raw ->
      let line = strip raw in
      if line = "" || line.[0] = '#' then ()
      else if line = "schedule:" then ()
      else if String.length line >= 2 && String.sub line 0 2 = "- " then begin
        let rest = strip (String.sub line 2 (String.length line - 2)) in
        if String.length rest > 0 && rest.[0] = '{' then begin
          let kvs = parse_braces rest in
          match (List.assoc_opt "register" kvs, List.assoc_opt "interface" kvs) with
          | Some rname, _ ->
              regs :=
                {
                  cr_name = rname;
                  cr_width = int_of_string (List.assoc "width" kvs);
                  cr_elems = int_of_string (List.assoc "elements" kvs);
                }
                :: !regs
          | None, Some iface -> (
              match !cur with
              | None -> raise (Parse_error "schedule entry outside functionality")
              | Some f ->
                  let e =
                    {
                      se_iface = iface;
                      se_stage = int_of_string (List.assoc "stage" kvs);
                      se_has_valid =
                        (match List.assoc_opt "has valid" kvs with
                        | Some "1" | Some "true" -> true
                        | _ -> false);
                      se_mode =
                        (match List.assoc_opt "mode" kvs with
                        | Some m -> mode_of_string m
                        | None -> if f.fn_kind = `Always then Always_mode else In_pipeline);
                    }
                  in
                  cur := Some { f with fn_entries = e :: f.fn_entries })
          | None, None -> raise (Parse_error ("unrecognized entry: " ^ rest))
        end
        else if String.length rest >= 12 && String.sub rest 0 12 = "instruction:" then begin
          flush_cur ();
          cur :=
            Some
              {
                fn_name = strip (String.sub rest 12 (String.length rest - 12));
                fn_kind = `Instruction;
                fn_mask = "";
                fn_entries = [];
              }
        end
        else if String.length rest >= 7 && String.sub rest 0 7 = "always:" then begin
          flush_cur ();
          cur :=
            Some
              {
                fn_name = strip (String.sub rest 7 (String.length rest - 7));
                fn_kind = `Always;
                fn_mask = "";
                fn_entries = [];
              }
        end
        else raise (Parse_error ("unrecognized list item: " ^ rest))
      end
      else if String.length line >= 5 && String.sub line 0 5 = "mask:" then begin
        match !cur with
        | Some f -> cur := Some { f with fn_mask = unquote (String.sub line 5 (String.length line - 5)) }
        | None -> raise (Parse_error "mask outside instruction")
      end
      else raise (Parse_error ("unrecognized line: " ^ line)))
    lines;
  flush_cur ();
  { regs = List.rev !regs; funcs = List.rev !funcs }

(* Render an encoding mask/match pair as the Figure 8 bit-pattern string:
   '-' for don't-care bits, '0'/'1' for fixed bits; MSB first. *)
let mask_string ~width ~(mask : Bitvec.t) ~(match_bits : Bitvec.t) =
  String.init width (fun i ->
      let bit = width - 1 - i in
      if Bitvec.is_zero (Bitvec.bit mask bit) then '-'
      else if Bitvec.is_zero (Bitvec.bit match_bits bit) then '0'
      else '1')
