(* The SCAIE-V sub-interface operations (Table 1 of the paper), for a
   32-bit host core.

   Custom-register interfaces are created on demand per register; [AW]
   denotes the register's address width and [DW] its data width. *)

type signature = { operands : string list; results : string list; descr : string }

(* Table 1, row by row. *)
let table1 : (string * signature) list =
  [
    ("RdInstr", { operands = []; results = [ "i32" ]; descr = "Read the full instruction word." });
    ( "RdRS1",
      {
        operands = [];
        results = [ "i32" ];
        descr = "Read the value of the GPR indicated by the rs1 encoding field.";
      } );
    ( "RdRS2",
      {
        operands = [];
        results = [ "i32" ];
        descr = "Read the value of the GPR indicated by the rs2 encoding field.";
      } );
    ( "RdCustReg",
      {
        operands = [ "iAW index"; "i1 pred" ];
        results = [ "iDW" ];
        descr = "Read the value of a custom register at the given index.";
      } );
    ("RdPC", { operands = []; results = [ "i32" ]; descr = "Read the program counter." });
    ( "RdMem",
      {
        operands = [ "i32 address"; "i1 pred" ];
        results = [ "i32" ];
        descr = "Load a word from main memory.";
      } );
    ( "WrRD",
      {
        operands = [ "i32 value"; "i1 pred" ];
        results = [];
        descr = "Write a value to the GPR indicated by the rd encoding field.";
      } );
    ( "WrCustReg.addr",
      {
        operands = [ "iAW index" ];
        results = [];
        descr = "Submit an index for a write to a custom register.";
      } );
    ( "WrCustReg.data",
      {
        operands = [ "iDW value"; "i1 pred" ];
        results = [];
        descr = "Write a value to a custom register at the previously submitted index.";
      } );
    ( "WrPC",
      { operands = [ "i32 newPC"; "i1 pred" ]; results = []; descr = "Write the program counter." } );
    ( "WrMem",
      {
        operands = [ "i32 address"; "i32 value"; "i1 pred" ];
        results = [];
        descr = "Store a word to the core's main memory.";
      } );
    ( "RdIValid_s",
      {
        operands = [];
        results = [ "i1" ];
        descr = "Query whether an instruction is currently executing in stage s.";
      } );
    ( "RdStall_s",
      { operands = []; results = [ "i1" ]; descr = "Query whether stage s is stalled." } );
    ( "RdFlush_s",
      { operands = []; results = [ "i1" ]; descr = "Query whether stage s is being flushed." } );
    ( "WrStall_s", { operands = [ "i1 pred" ]; results = []; descr = "Stall stage s." } );
    ( "WrFlush_s",
      { operands = [ "i1 pred" ]; results = []; descr = "Flush stages zero to s." } );
  ]

(* The lil op names corresponding to schedulable sub-interfaces. *)
let of_lil_op = function
  | "lil.instr_word" -> Some "RdInstr"
  | "lil.read_rs1" -> Some "RdRS1"
  | "lil.read_rs2" -> Some "RdRS2"
  | "lil.read_pc" -> Some "RdPC"
  | "lil.read_mem" -> Some "RdMem"
  | "lil.write_rd" -> Some "WrRD"
  | "lil.write_pc" -> Some "WrPC"
  | "lil.write_mem" -> Some "WrMem"
  | "lil.read_custreg" -> Some "RdCustReg"
  | "lil.write_custreg" -> Some "WrCustReg"
  | _ -> None

(* interfaces whose 'latest' is relaxed to infinity by Longnail so that the
   tightly-coupled / decoupled variants become available (Section 4.2) *)
let relaxable = [ "WrRD"; "RdMem"; "WrMem" ]

let pp_table1 fmt () =
  Format.fprintf fmt "%-16s | %-32s | %-8s | %s\n" "Sub-interface" "Operands" "Results"
    "Description";
  Format.fprintf fmt "%s\n" (String.make 100 '-');
  List.iter
    (fun (name, s) ->
      Format.fprintf fmt "%-16s | %-32s | %-8s | %s\n" name
        (String.concat ", " s.operands)
        (String.concat ", " s.results)
        s.descr)
    table1
