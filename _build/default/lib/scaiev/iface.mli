(** The SCAIE-V sub-interface operations (Table 1 of the paper), for a
   32-bit host core.

   Custom-register interfaces are created on demand per register; [AW]
   denotes the register's address width and [DW] its data width. *)

type signature = {
  operands : string list;
  results : string list;
  descr : string;
}
val table1 : (string * signature) list
val of_lil_op : string -> string option
val relaxable : string list
val pp_table1 : Format.formatter -> unit -> unit
