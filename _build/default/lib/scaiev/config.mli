(** The SCAIE-V configuration file exchanged between Longnail and SCAIE-V
   (Figures 8 and 9 of the paper).

   Longnail emits this after scheduling; SCAIE-V consumes it to generate
   the integration logic. We keep the paper's YAML-based format, and
   support parsing it back so the two tools remain decoupled. *)

type mode = In_pipeline | Tightly_coupled | Decoupled | Always_mode
val mode_to_string : mode -> string
val mode_of_string : string -> mode
type reg_req = { cr_name : string; cr_width : int; cr_elems : int; }
type sched_entry = {
  se_iface : string;
  se_stage : int;
  se_has_valid : bool;
  se_mode : mode;
}
type functionality = {
  fn_name : string;
  fn_kind : [ `Always | `Instruction ];
  fn_mask : string;
  fn_entries : sched_entry list;
}
type t = { regs : reg_req list; funcs : functionality list; }
val to_yaml : t -> string
exception Parse_error of string
val strip : string -> string
val parse_braces : string -> (string * string) list
val unquote : string -> string
val of_yaml : string -> t
val mask_string : width:int -> mask:Bitvec.t -> match_bits:Bitvec.t -> string
