lib/sched/problem.ml: Array Format List Printf Queue
