lib/sched/problem.mli: Format
