lib/sched/asap_scheduler.ml: Array List Lp Problem
