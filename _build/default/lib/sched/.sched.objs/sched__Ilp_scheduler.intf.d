lib/sched/ilp_scheduler.mli: Lp Problem
