lib/sched/asap_scheduler.mli: Problem
