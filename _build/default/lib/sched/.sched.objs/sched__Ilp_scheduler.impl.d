lib/sched/ilp_scheduler.ml: Array List Lp Printf Problem
