(** The extensible scheduling-problem model (Table 2 of the paper),
   re-implementing the slice of CIRCT's static scheduling infrastructure
   that Longnail builds on.

   The hierarchy is:
   - [Problem]: operations linked to operator types with a latency;
     solution must respect operand availability.
   - [ChainingProblem]: adds physical propagation delays
     (incoming/outgoing) and start times within a cycle.
   - [LongnailProblem]: adds per-operator-type [earliest]/[latest] bounds,
     which encode the SCAIE-V virtual-datasheet constraints. *)

type operator_type = {
  ot_name : string;
  latency : int;
  incoming_delay : float;
  outgoing_delay : float;
  earliest : int;
  latest : int option;
}
val operator_type :
  ?latency:int ->
  ?incoming_delay:float ->
  ?outgoing_delay:float ->
  ?earliest:int -> ?latest:int -> string -> operator_type
type operation = { op_index : int; lot : operator_type; op_label : string; }
type dependence = { dep_src : int; dep_dst : int; }
type t = {
  operations : operation array;
  dependences : dependence list;
  cycle_time : float option;
  mutable start_time : int array;
  mutable start_time_in_cycle : float array;
}
exception Problem_error of string
val problem_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
type builder = {
  mutable ops_rev : operation list;
  mutable deps : dependence list;
}
val builder : unit -> builder
val add_operation : builder -> label:string -> operator_type -> int
val add_dependence : builder -> src:int -> dst:int -> unit
val finish : ?cycle_time:float -> builder -> t
val topo_order : t -> int list
val check_input : t -> unit
val verify_precedence : t -> unit
val verify_chaining : t -> unit
val verify_windows : t -> unit
val verify : t -> unit
val makespan : t -> int
val total_lifetime : t -> int
val chain_breakers : t -> dependence list
val compute_start_time_in_cycle : t -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
