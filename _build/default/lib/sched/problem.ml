(* The extensible scheduling-problem model (Table 2 of the paper),
   re-implementing the slice of CIRCT's static scheduling infrastructure
   that Longnail builds on.

   The hierarchy is:
   - [Problem]: operations linked to operator types with a latency;
     solution must respect operand availability.
   - [ChainingProblem]: adds physical propagation delays
     (incoming/outgoing) and start times within a cycle.
   - [LongnailProblem]: adds per-operator-type [earliest]/[latest] bounds,
     which encode the SCAIE-V virtual-datasheet constraints. *)

type operator_type = {
  ot_name : string;
  latency : int;
  incoming_delay : float;
  outgoing_delay : float;
  earliest : int;  (* LongnailProblem: first permitted start time *)
  latest : int option;  (* None = unbounded *)
}

let operator_type ?(latency = 0) ?(incoming_delay = 0.0) ?(outgoing_delay = 0.0) ?(earliest = 0)
    ?latest ot_name =
  { ot_name; latency; incoming_delay; outgoing_delay; earliest; latest }

type operation = {
  op_index : int;
  lot : operator_type;  (* linked operator type *)
  op_label : string;  (* for diagnostics and Figure 6-style dumps *)
}

type dependence = { dep_src : int; dep_dst : int }

type t = {
  operations : operation array;
  dependences : dependence list;
  cycle_time : float option;  (* chaining: target clock period in ns *)
  mutable start_time : int array;  (* solution *)
  mutable start_time_in_cycle : float array;  (* chaining solution *)
}

exception Problem_error of string

let problem_error fmt = Format.kasprintf (fun m -> raise (Problem_error m)) fmt

(* ---- construction ---- *)

type builder = { mutable ops_rev : operation list; mutable deps : dependence list }

let builder () = { ops_rev = []; deps = [] }

let add_operation b ~label lot =
  let idx = List.length b.ops_rev in
  b.ops_rev <- { op_index = idx; lot; op_label = label } :: b.ops_rev;
  idx

let add_dependence b ~src ~dst = b.deps <- { dep_src = src; dep_dst = dst } :: b.deps

let finish ?cycle_time b =
  let operations = Array.of_list (List.rev b.ops_rev) in
  {
    operations;
    dependences = List.rev b.deps;
    cycle_time;
    start_time = Array.make (Array.length operations) (-1);
    start_time_in_cycle = Array.make (Array.length operations) 0.0;
  }

(* topological order; raises on cycles *)
let topo_order p =
  let n = Array.length p.operations in
  let indeg = Array.make n 0 in
  List.iter (fun d -> indeg.(d.dep_dst) <- indeg.(d.dep_dst) + 1) p.dependences;
  let out = Array.make n [] in
  List.iter (fun d -> out.(d.dep_src) <- d.dep_dst :: out.(d.dep_src)) p.dependences;
  let q = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i q) indeg;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    incr seen;
    order := i :: !order;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j q)
      out.(i)
  done;
  if !seen <> n then problem_error "dependence graph is cyclic";
  List.rev !order

(* ---- input constraints (validity of the instance) ---- *)

let check_input p =
  Array.iter
    (fun op ->
      if op.lot.latency < 0 then problem_error "negative latency on %s" op.op_label;
      if op.lot.incoming_delay < 0.0 || op.lot.outgoing_delay < 0.0 then
        problem_error "negative delay on %s" op.op_label;
      if op.lot.earliest < 0 then problem_error "negative earliest on %s" op.op_label;
      (match op.lot.latest with
      | Some l when l < op.lot.earliest ->
          problem_error "empty window [%d, %d] on %s" op.lot.earliest l op.op_label
      | _ -> ());
      match p.cycle_time with
      | Some ct when op.lot.incoming_delay > ct || op.lot.outgoing_delay > ct ->
          problem_error "operator %s delay exceeds cycle time" op.lot.ot_name
      | _ -> ())
    p.operations;
  List.iter
    (fun d ->
      if d.dep_src < 0 || d.dep_src >= Array.length p.operations
         || d.dep_dst < 0 || d.dep_dst >= Array.length p.operations
      then problem_error "dependence endpoint out of range")
    p.dependences;
  (* acyclicity via topological sort *)
  ignore (topo_order p)

(* ---- solution constraints (Table 2) ---- *)

(* Problem level: i.ST + i.latency <= j.ST for every dependence. *)
let verify_precedence p =
  List.iter
    (fun d ->
      let i = p.operations.(d.dep_src) and j = p.operations.(d.dep_dst) in
      let ti = p.start_time.(d.dep_src) and tj = p.start_time.(d.dep_dst) in
      if ti < 0 || tj < 0 then problem_error "unscheduled operation";
      if ti + i.lot.latency > tj then
        problem_error "precedence violated: %s(t=%d,lat=%d) -> %s(t=%d)" i.op_label ti
          i.lot.latency j.op_label tj)
    p.dependences

(* ChainingProblem level: start times within a cycle respect propagation
   delays along zero-latency chains and at cycle boundaries. *)
let verify_chaining p =
  List.iter
    (fun d ->
      let i = p.operations.(d.dep_src) and j = p.operations.(d.dep_dst) in
      let ti = p.start_time.(d.dep_src) and tj = p.start_time.(d.dep_dst) in
      let si = p.start_time_in_cycle.(d.dep_src) and sj = p.start_time_in_cycle.(d.dep_dst) in
      if i.lot.latency = 0 && ti = tj && si +. i.lot.outgoing_delay > sj +. 1e-9 then
        problem_error "chaining violated on %s -> %s" i.op_label j.op_label;
      if i.lot.latency > 0 && ti + i.lot.latency = tj && i.lot.outgoing_delay > sj +. 1e-9 then
        problem_error "chaining violated at cycle boundary %s -> %s" i.op_label j.op_label)
    p.dependences;
  match p.cycle_time with
  | None -> ()
  | Some ct ->
      Array.iteri
        (fun idx op ->
          if p.start_time_in_cycle.(idx) +. op.lot.outgoing_delay > ct +. 1e-9 then
            problem_error "operation %s exceeds cycle time" op.op_label)
        p.operations

(* LongnailProblem level: earliest <= ST <= latest. *)
let verify_windows p =
  Array.iteri
    (fun idx op ->
      let t = p.start_time.(idx) in
      if t < op.lot.earliest then
        problem_error "%s scheduled at %d before earliest %d" op.op_label t op.lot.earliest;
      match op.lot.latest with
      | Some l when t > l -> problem_error "%s scheduled at %d after latest %d" op.op_label t l
      | _ -> ())
    p.operations

let verify p =
  verify_precedence p;
  verify_chaining p;
  verify_windows p

(* latest finish time over all operations *)
let makespan p =
  Array.fold_left max 0
    (Array.mapi (fun i op -> p.start_time.(i) + op.lot.latency) p.operations)

(* sum of value lifetimes: for each dependence, t_dst - t_src (the paper's
   register-pressure proxy in the ILP objective) *)
let total_lifetime p =
  List.fold_left
    (fun acc d -> acc + (p.start_time.(d.dep_dst) - p.start_time.(d.dep_src)))
    0 p.dependences

(* ---- chaining support ---- *)

(* Compute chain-breaking edges: walking in topological order, accumulate
   combinational delay along zero-latency chains; an edge whose head would
   push the accumulated delay past the cycle time becomes a chain breaker
   (its endpoints must be separated by at least one time step), and the
   accumulation restarts at the head. Mirrors CIRCT's ChainingSupport. *)
let chain_breakers p =
  match p.cycle_time with
  | None -> []
  | Some ct ->
      let order = topo_order p in
      let n = Array.length p.operations in
      let acc = Array.make n 0.0 in
      let preds = Array.make n [] in
      List.iter (fun d -> preds.(d.dep_dst) <- d :: preds.(d.dep_dst)) p.dependences;
      let breakers = ref [] in
      List.iter
        (fun j ->
          let opj = p.operations.(j) in
          let my_delay = opj.lot.incoming_delay +. opj.lot.outgoing_delay in
          let arrive = ref 0.0 in
          List.iter
            (fun d ->
              let i = d.dep_src in
              let opi = p.operations.(i) in
              if opi.lot.latency = 0 then begin
                let candidate = acc.(i) in
                if candidate +. my_delay > ct then breakers := d :: !breakers
                else arrive := max !arrive candidate
              end
              else arrive := max !arrive opi.lot.outgoing_delay)
            preds.(j);
          acc.(j) <- !arrive +. my_delay)
        order;
      List.rev !breakers

(* Fill start_time_in_cycle from start_time: ASAP within each cycle along
   zero-latency chains (the utility function mentioned in Section 4.3). *)
let compute_start_time_in_cycle p =
  let order = topo_order p in
  let preds = Array.make (Array.length p.operations) [] in
  List.iter (fun d -> preds.(d.dep_dst) <- d :: preds.(d.dep_dst)) p.dependences;
  List.iter
    (fun j ->
      let tj = p.start_time.(j) in
      let s = ref 0.0 in
      List.iter
        (fun d ->
          let i = d.dep_src in
          let opi = p.operations.(i) in
          if opi.lot.latency = 0 && p.start_time.(i) = tj then
            s := max !s (p.start_time_in_cycle.(i) +. opi.lot.outgoing_delay)
          else if opi.lot.latency > 0 && p.start_time.(i) + opi.lot.latency = tj then
            s := max !s opi.lot.outgoing_delay)
        preds.(j);
      p.start_time_in_cycle.(j) <- !s)
    order

(* ---- pretty-printing (Figure 6-style dump) ---- *)

let pp fmt p =
  Format.fprintf fmt "scheduling problem: %d operations, %d dependences%s\n"
    (Array.length p.operations) (List.length p.dependences)
    (match p.cycle_time with
    | Some ct -> Printf.sprintf ", cycle time %.2f ns" ct
    | None -> "");
  Array.iteri
    (fun i op ->
      Format.fprintf fmt "  [%2d] %-24s lot=%-14s lat=%d window=[%d,%s]" i op.op_label
        op.lot.ot_name op.lot.latency op.lot.earliest
        (match op.lot.latest with Some l -> string_of_int l | None -> "inf");
      if p.start_time.(i) >= 0 then
        Format.fprintf fmt "  t=%d (%.2f ns)" p.start_time.(i) p.start_time_in_cycle.(i);
      Format.fprintf fmt "\n")
    p.operations

let to_string p = Format.asprintf "%a" pp p
