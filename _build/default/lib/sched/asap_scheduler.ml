(* ASAP scheduler based on difference constraints (Bellman-Ford longest
   path). Computes the componentwise-minimal feasible start times, which
   minimizes the sum of start times but — unlike the ILP of Figure 7 —
   ignores value lifetimes. Serves as the fast scheduling path and as the
   baseline for the scheduler ablation bench. *)

type outcome = Scheduled | Infeasible

let schedule (p : Problem.t) : outcome =
  Problem.check_input p;
  let n = Array.length p.Problem.operations in
  let d = Lp.Difference.create n in
  List.iter
    (fun (dep : Problem.dependence) ->
      let lat = p.Problem.operations.(dep.dep_src).lot.latency in
      Lp.Difference.add_ge d ~src:dep.dep_src ~dst:dep.dep_dst ~weight:lat)
    p.Problem.dependences;
  List.iter
    (fun (dep : Problem.dependence) ->
      let lat = p.Problem.operations.(dep.dep_src).lot.latency in
      Lp.Difference.add_ge d ~src:dep.dep_src ~dst:dep.dep_dst ~weight:(lat + 1))
    (Problem.chain_breakers p);
  Array.iteri
    (fun i (op : Problem.operation) ->
      Lp.Difference.set_lower d i op.lot.earliest;
      match op.lot.latest with
      | Some l -> Lp.Difference.set_upper d i l
      | None -> ())
    p.Problem.operations;
  match Lp.Difference.solve d with
  | None -> Infeasible
  | Some sol ->
      Array.iteri (fun i t -> p.Problem.start_time.(i) <- t) (Array.of_list (Array.to_list sol));
      Problem.compute_start_time_in_cycle p;
      Scheduled
