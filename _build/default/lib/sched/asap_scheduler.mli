(** ASAP scheduler based on difference constraints (Bellman-Ford longest
   path). Computes the componentwise-minimal feasible start times, which
   minimizes the sum of start times but — unlike the ILP of Figure 7 —
   ignores value lifetimes. Serves as the fast scheduling path and as the
   baseline for the scheduler ablation bench. *)

type outcome = Scheduled | Infeasible
val schedule : Problem.t -> outcome
