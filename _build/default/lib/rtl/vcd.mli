(** Value-change-dump (VCD) tracing for the RTL simulator.

   Records every named signal of a simulated module cycle by cycle and
   renders a standard VCD file that waveform viewers (GTKWave, Surfer)
   understand. Used by the CLI's --vcd option and by debugging sessions
   around the co-simulation harness. *)

type signal = { sg_name : string; sg_width : int; sg_id : string; }
type t = {
  mutable signals : signal list;
  mutable changes : (int * string * Bitvec.t) list;
  mutable last : (string, Bitvec.t) Hashtbl.t;
  mutable time : int;
  module_name : string;
}
val ident_of_index : int -> string
val create : module_name:string -> t
val watch_module : t -> Netlist.t -> unit
val sample : t -> Sim.t -> unit
val bin_of : Bitvec.t -> string
val render : t -> string
val trace :
  Netlist.t ->
  cycles:int -> drive:(int -> (string * Bitvec.t) list) -> string
