(* Register-transfer-level netlist: the target of Longnail's hardware
   generation, standing in for CIRCT's hw/seq/sv dialects (Section 4.1d).

   A module is a set of named signals: input ports, combinational nodes
   (with {!Ir.Comb_eval} semantics), ROM lookups (internalized constant
   registers), and clocked registers (the stallable pipeline registers
   Longnail inserts between stages). Output ports alias internal signals. *)

type reg_node = {
  out : string;
  width : int;
  next : string;  (* sampled input *)
  enable : string option;  (* stall gating: update only when enable=1 *)
  init : Bitvec.t option;
}

type node =
  | Comb of {
      out : string;
      width : int;
      op : string;  (* a comb.* / hw.constant op name *)
      attrs : (string * Ir.Mir.attr) list;
      inputs : string list;
    }
  | Rom of { out : string; width : int; table : Bitvec.t array; index : string }
  | Reg of reg_node

type port = { port_name : string; port_width : int; port_signal : string }

type t = {
  mod_name : string;
  inputs : port list;  (* port_signal = signal it defines *)
  outputs : port list;  (* port_signal = signal it exposes *)
  nodes : node list;
}

let node_out = function Comb c -> c.out | Rom r -> r.out | Reg r -> r.out

let node_width = function Comb c -> c.width | Rom r -> r.width | Reg r -> r.width

exception Netlist_error of string

let nl_error fmt = Format.kasprintf (fun m -> raise (Netlist_error m)) fmt

(* signals read combinationally by a node *)
let comb_deps = function
  | Comb c -> c.inputs
  | Rom r -> [ r.index ]
  | Reg _ -> []  (* registers break combinational cycles *)

(* Topological order of the combinational nodes; registers come first (their
   outputs are state), then combs in dependency order. Detects comb loops. *)
let topo_nodes (m : t) =
  let by_out = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace by_out (node_out n) n) m.nodes;
  let inputs = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace inputs p.port_signal ()) m.inputs;
  let visited = Hashtbl.create 64 and visiting = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit sig_name =
    if Hashtbl.mem visited sig_name || Hashtbl.mem inputs sig_name then ()
    else if Hashtbl.mem visiting sig_name then nl_error "combinational cycle through %s" sig_name
    else begin
      match Hashtbl.find_opt by_out sig_name with
      | None -> nl_error "undefined signal %s in module %s" sig_name m.mod_name
      | Some n ->
          Hashtbl.replace visiting sig_name ();
          List.iter visit (comb_deps n);
          Hashtbl.remove visiting sig_name;
          Hashtbl.replace visited sig_name ();
          (match n with Reg _ -> () | _ -> order := n :: !order)
    end
  in
  (* make sure register next/enable signals are also evaluated *)
  List.iter
    (fun n ->
      visit (node_out n);
      match n with
      | Reg r ->
          visit r.next;
          Option.iter visit r.enable
      | _ -> ())
    m.nodes;
  List.iter (fun p -> visit p.port_signal) m.outputs;
  List.rev !order

let registers m : reg_node list = List.filter_map (function Reg r -> Some r | _ -> None) m.nodes

(* quick sanity check: unique signal names, ports resolved *)
let validate m =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let o = node_out n in
      if Hashtbl.mem seen o then nl_error "signal %s defined twice" o;
      Hashtbl.replace seen o ())
    m.nodes;
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.port_signal then nl_error "input %s shadows a node" p.port_signal;
      Hashtbl.replace seen p.port_signal ())
    m.inputs;
  ignore (topo_nodes m)

(* ---- structural statistics (used by the ASIC flow model) ---- *)

type stats = {
  n_comb_nodes : int;
  n_registers : int;
  register_bits : int;
  rom_bits : int;
  comb_ops_by_kind : (string * int) list;
}

let stats m =
  let kinds = Hashtbl.create 16 in
  let combs = ref 0 and regs = ref 0 and reg_bits = ref 0 and rom_bits = ref 0 in
  List.iter
    (function
      | Comb c ->
          incr combs;
          Hashtbl.replace kinds c.op (1 + Option.value ~default:0 (Hashtbl.find_opt kinds c.op))
      | Rom r -> rom_bits := !rom_bits + (Array.length r.table * r.width)
      | Reg r ->
          incr regs;
          reg_bits := !reg_bits + r.width)
    m.nodes;
  {
    n_comb_nodes = !combs;
    n_registers = !regs;
    register_bits = !reg_bits;
    rom_bits = !rom_bits;
    comb_ops_by_kind = Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds [];
  }
