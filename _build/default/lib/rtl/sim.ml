(* Cycle-accurate two-phase simulator for RTL netlists.

   Used to verify the functional correctness of generated ISAX modules
   against the CoreDSL reference interpreter (the paper verifies extended
   cores by RTL simulation of assembler programs, Section 5.3).

   Usage per clock cycle:
   - [set_input] for each input port,
   - [eval] to settle combinational logic,
   - read outputs with [output],
   - [clock] to advance the registers. *)

open Netlist

type t = {
  m : Netlist.t;
  values : (string, Bitvec.t) Hashtbl.t;
  order : node list;  (* combinational nodes in dependency order *)
}

let u w = Bitvec.unsigned_ty w

let create (m : Netlist.t) =
  validate m;
  let values = Hashtbl.create 64 in
  (* inputs and registers start at zero / their reset value *)
  List.iter (fun p -> Hashtbl.replace values p.port_signal (Bitvec.zero (u p.port_width))) m.inputs;
  List.iter
    (fun (r : reg_node) ->
      Hashtbl.replace values r.out
        (match r.init with Some v -> Bitvec.cast (u r.width) v | None -> Bitvec.zero (u r.width)))
    (registers m);
  { m; values; order = topo_nodes m }

let set_input t name v =
  match List.find_opt (fun p -> p.port_name = name) t.m.inputs with
  | Some p -> Hashtbl.replace t.values p.port_signal (Bitvec.cast (u p.port_width) v)
  | None -> nl_error "no input port %s" name

let signal t name =
  match Hashtbl.find_opt t.values name with
  | Some v -> v
  | None -> nl_error "signal %s has no value" name

(* settle combinational logic *)
let eval t =
  List.iter
    (fun n ->
      match n with
      | Comb c ->
          let ops = List.map (signal t) c.inputs in
          Hashtbl.replace t.values c.out
            (Ir.Comb_eval.eval ~name:c.op ~attrs:c.attrs ~ops ~result_width:c.width)
      | Rom r ->
          let idx = Bitvec.to_int (signal t r.index) in
          let v =
            if idx >= 0 && idx < Array.length r.table then r.table.(idx)
            else Bitvec.zero (u r.width)
          in
          Hashtbl.replace t.values r.out (Bitvec.cast (u r.width) v)
      | Reg _ -> ())
    t.order

(* advance registers (two-phase: sample all, then update) *)
let clock t =
  let sampled =
    List.filter_map
      (fun (r : reg_node) ->
        let en = match r.enable with None -> true | Some e -> Bitvec.to_bool (signal t e) in
        if en then Some (r.out, Bitvec.cast (u r.width) (signal t r.next)) else None)
      (registers t.m)
  in
  List.iter (fun (out, v) -> Hashtbl.replace t.values out v) sampled

let output t name =
  match List.find_opt (fun p -> p.port_name = name) t.m.outputs with
  | Some p -> Bitvec.cast (u p.port_width) (signal t p.port_signal)
  | None -> nl_error "no output port %s" name

(* convenience: run a full cycle with the given inputs *)
let cycle t inputs =
  List.iter (fun (n, v) -> set_input t n v) inputs;
  eval t;
  clock t
