(* Value-change-dump (VCD) tracing for the RTL simulator.

   Records every named signal of a simulated module cycle by cycle and
   renders a standard VCD file that waveform viewers (GTKWave, Surfer)
   understand. Used by the CLI's --vcd option and by debugging sessions
   around the co-simulation harness. *)

type signal = { sg_name : string; sg_width : int; sg_id : string }

type t = {
  mutable signals : signal list;  (* reversed *)
  mutable changes : (int * string * Bitvec.t) list;  (* time, id, value; reversed *)
  mutable last : (string, Bitvec.t) Hashtbl.t;
  mutable time : int;
  module_name : string;
}

(* VCD identifier characters: printable ASCII 33..126 *)
let ident_of_index i =
  let base = 94 and lo = 33 in
  let rec go i acc =
    let acc = String.make 1 (Char.chr (lo + (i mod base))) ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create ~module_name =
  { signals = []; changes = []; last = Hashtbl.create 64; time = 0; module_name }

(* Watch every port and internal node of [m]. *)
let watch_module t (m : Netlist.t) =
  let add name width =
    let id = ident_of_index (List.length t.signals) in
    t.signals <- { sg_name = name; sg_width = width; sg_id = id } :: t.signals
  in
  List.iter (fun (p : Netlist.port) -> add p.port_signal p.port_width) m.inputs;
  List.iter
    (fun n -> add (Netlist.node_out n) (Netlist.node_width n))
    m.nodes

(* Record the current value of every watched signal of [sim]. Call once per
   cycle after [Sim.eval]. *)
let sample t (sim : Sim.t) =
  List.iter
    (fun s ->
      match Hashtbl.find_opt sim.Sim.values s.sg_name with
      | None -> ()
      | Some v ->
          let changed =
            match Hashtbl.find_opt t.last s.sg_name with
            | Some prev -> not (Bitvec.equal_value prev v)
            | None -> true
          in
          if changed then begin
            Hashtbl.replace t.last s.sg_name v;
            t.changes <- (t.time, s.sg_id, v) :: t.changes
          end)
    (List.rev t.signals);
  t.time <- t.time + 1

let bin_of v =
  let s = Bitvec.to_bin_string v in
  String.sub s 2 (String.length s - 2)

(* Render the accumulated trace as VCD text. *)
let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date reproduction run $end\n";
  Buffer.add_string buf "$version longnail rtl simulator $end\n";
  Buffer.add_string buf "$timescale 1ns $end\n";
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" t.module_name);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" s.sg_width s.sg_id s.sg_name))
    (List.rev t.signals);
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let by_time = Hashtbl.create 64 in
  List.iter
    (fun (time, id, v) ->
      Hashtbl.replace by_time time ((id, v) :: Option.value ~default:[] (Hashtbl.find_opt by_time time)))
    t.changes;
  for time = 0 to t.time - 1 do
    match Hashtbl.find_opt by_time time with
    | None -> ()
    | Some changes ->
        Buffer.add_string buf (Printf.sprintf "#%d\n" time);
        List.iter
          (fun (id, v) ->
            if Bitvec.width v = 1 then
              Buffer.add_string buf (Printf.sprintf "%s%s\n" (bin_of v) id)
            else Buffer.add_string buf (Printf.sprintf "b%s %s\n" (bin_of v) id))
          changes
  done;
  Buffer.contents buf

(* Convenience: simulate [cycles] cycles of [m] with inputs supplied per
   cycle by [drive], tracing everything. *)
let trace (m : Netlist.t) ~cycles ~(drive : int -> (string * Bitvec.t) list) =
  let sim = Sim.create m in
  let t = create ~module_name:m.mod_name in
  watch_module t m;
  for cycle = 0 to cycles - 1 do
    List.iter (fun (n, v) -> Sim.set_input sim n v) (drive cycle);
    Sim.eval sim;
    sample t sim;
    Sim.clock sim
  done;
  render t
