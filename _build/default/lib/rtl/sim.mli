(** Cycle-accurate two-phase simulator for RTL netlists.

   Used to verify the functional correctness of generated ISAX modules
   against the CoreDSL reference interpreter (the paper verifies extended
   cores by RTL simulation of assembler programs, Section 5.3).

   Usage per clock cycle:
   - [set_input] for each input port,
   - [eval] to settle combinational logic,
   - read outputs with [output],
   - [clock] to advance the registers. *)

type t = {
  m : Netlist.t;
  values : (string, Bitvec.t) Hashtbl.t;
  order : Netlist.node list;
}
val u : int -> Bitvec.ty
val create : Netlist.t -> t
val set_input : t -> string -> Bitvec.t -> unit
val signal : t -> string -> Bitvec.t
val eval : t -> unit
val clock : t -> unit
val output : t -> string -> Bitvec.t
val cycle : t -> (string * Bitvec.t) list -> unit
