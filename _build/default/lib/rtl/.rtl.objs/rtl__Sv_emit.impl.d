lib/rtl/sv_emit.ml: Array Bitvec Buffer Ir List Netlist Printf String
