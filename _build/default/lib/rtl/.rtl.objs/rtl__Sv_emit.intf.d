lib/rtl/sv_emit.mli: Bitvec Ir Netlist
