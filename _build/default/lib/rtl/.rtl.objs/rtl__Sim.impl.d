lib/rtl/sim.ml: Array Bitvec Hashtbl Ir List Netlist
