lib/rtl/netlist.ml: Array Bitvec Format Hashtbl Ir List Option
