lib/rtl/netlist.mli: Bitvec Format Ir
