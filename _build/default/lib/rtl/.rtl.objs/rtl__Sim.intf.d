lib/rtl/sim.mli: Bitvec Hashtbl Netlist
