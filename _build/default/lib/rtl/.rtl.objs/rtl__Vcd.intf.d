lib/rtl/vcd.mli: Bitvec Hashtbl Netlist Sim
