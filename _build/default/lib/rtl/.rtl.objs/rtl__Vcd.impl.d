lib/rtl/vcd.ml: Bitvec Buffer Char Hashtbl List Netlist Option Printf Sim String
