(** SystemVerilog emission from the RTL netlist (the paper uses CIRCT's
   export pipeline; Figure 5d shows the style we match). *)

val sv_ident : string -> string
val wire : int -> string -> string
val bv_literal : Bitvec.t -> string
val comb_expr :
  attrs:(string * Ir.Mir.attr) list ->
  op:string -> inputs:string list -> width:int -> string
val emit : Netlist.t -> string
