(** Register-transfer-level netlist: the target of Longnail's hardware
   generation, standing in for CIRCT's hw/seq/sv dialects (Section 4.1d).

   A module is a set of named signals: input ports, combinational nodes
   (with {!Ir.Comb_eval} semantics), ROM lookups (internalized constant
   registers), and clocked registers (the stallable pipeline registers
   Longnail inserts between stages). Output ports alias internal signals. *)

type reg_node = {
  out : string;
  width : int;
  next : string;
  enable : string option;
  init : Bitvec.t option;
}
type node =
    Comb of { out : string; width : int; op : string;
      attrs : (string * Ir.Mir.attr) list; inputs : string list;
    }
  | Rom of { out : string; width : int; table : Bitvec.t array;
      index : string;
    }
  | Reg of reg_node
type port = { port_name : string; port_width : int; port_signal : string; }
type t = {
  mod_name : string;
  inputs : port list;
  outputs : port list;
  nodes : node list;
}
val node_out : node -> string
val node_width : node -> int
exception Netlist_error of string
val nl_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val comb_deps : node -> string list
val topo_nodes : t -> node list
val registers : t -> reg_node list
val validate : t -> unit
type stats = {
  n_comb_nodes : int;
  n_registers : int;
  register_bits : int;
  rom_bits : int;
  comb_ops_by_kind : (string * int) list;
}
val stats : t -> stats
