(* Arbitrary-precision signed integers in sign-magnitude representation.

   This is the numeric engine underneath {!Bitvec}. The magnitude is a
   little-endian array of base-2^30 limbs with no trailing zero limbs; the
   sign is -1, 0 or +1, and [sign = 0] iff the magnitude is empty. Keeping
   the invariant canonical makes structural equality coincide with numeric
   equality, which the rest of the library relies on. *)

let limb_bits = 30
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }
let is_zero x = x.sign = 0

(* Strip trailing zero limbs and fix the sign of a zero result. *)
let norm sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int i =
  if i = 0 then zero
  else if i = min_int then
    (* |min_int| = 2^62 on a 63-bit platform; abs would overflow. *)
    norm (-1) [| 0; 0; 1 lsl 2 |]
  else begin
    let sign = if i < 0 then -1 else 1 in
    let a = abs i in
    norm sign
      [| a land limb_mask; (a lsr limb_bits) land limb_mask; (a lsr (2 * limb_bits)) land limb_mask |]
  end

let one = of_int 1

(* Compare magnitudes only. *)
let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign = 0 then 0
  else x.sign * mag_compare x.mag y.mag

let equal x y = compare x y = 0

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let l = max la lb + 1 in
  let r = Array.make l 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r

(* Requires |a| >= |b|. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + limb_base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  r

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }

let rec add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then norm x.sign (mag_add x.mag y.mag)
  else begin
    match mag_compare x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> norm x.sign (mag_sub x.mag y.mag)
    | _ -> norm y.sign (mag_sub y.mag x.mag)
  end

and sub x y = add x (neg y)

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else begin
    let la = Array.length x.mag and lb = Array.length y.mag in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = x.mag.(i) in
      for j = 0 to lb - 1 do
        let t = (ai * y.mag.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    norm (x.sign * y.sign) r
  end

(* Number of significant bits in |x| (0 for zero). *)
let num_bits x =
  if x.sign = 0 then 0
  else begin
    let l = Array.length x.mag in
    let top = x.mag.(l - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((l - 1) * limb_bits) + width top 0
  end

(* Bit [i] of |x| (magnitude, not two's complement). *)
let mag_testbit x i =
  let limb = i / limb_bits and off = i mod limb_bits in
  if limb >= Array.length x.mag then false else (x.mag.(limb) lsr off) land 1 = 1

let shift_left x k =
  if x.sign = 0 || k = 0 then x
  else begin
    let limbs = k / limb_bits and off = k mod limb_bits in
    let la = Array.length x.mag in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = x.mag.(i) lsl off in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr limb_bits)
    done;
    norm x.sign r
  end

(* Arithmetic right shift on the numeric value: floor(x / 2^k). *)
let shift_right x k =
  if x.sign = 0 || k = 0 then x
  else begin
    let limbs = k / limb_bits and off = k mod limb_bits in
    let la = Array.length x.mag in
    if limbs >= la then (if x.sign < 0 then of_int (-1) else zero)
    else begin
      let l = la - limbs in
      let r = Array.make l 0 in
      for i = 0 to l - 1 do
        let lo = x.mag.(i + limbs) lsr off in
        let hi = if i + limbs + 1 < la then (x.mag.(i + limbs + 1) lsl (limb_bits - off)) land limb_mask else 0 in
        r.(i) <- if off = 0 then x.mag.(i + limbs) else lo lor hi
      done;
      let q = norm x.sign r in
      if x.sign < 0 then begin
        (* floor semantics: if any bit was shifted out, round toward -inf *)
        let dropped =
          let rec go i = i < k && (mag_testbit x i || go (i + 1)) in
          go 0
        in
        if dropped then sub q one else q
      end
      else q
    end
  end

(* Truncating division (toward zero), binary long division on magnitudes. *)
let divmod x y =
  if y.sign = 0 then invalid_arg "Bn.divmod: division by zero";
  if x.sign = 0 then (zero, zero)
  else begin
    let n = num_bits x in
    let q = Array.make (Array.length x.mag) 0 in
    let r = ref zero in
    for i = n - 1 downto 0 do
      r := shift_left !r 1;
      if mag_testbit x i then r := add !r one;
      if mag_compare !r.mag y.mag >= 0 then begin
        r := norm 1 (mag_sub !r.mag y.mag);
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    let qv = norm (x.sign * y.sign) q in
    let rv = if is_zero !r then zero else { sign = x.sign; mag = !r.mag } in
    (qv, rv)
  end

let pow2 k = shift_left one k

(* Limb-wise bitwise operation on non-negative values. *)
let bitwise f a b =
  if a.sign < 0 || b.sign < 0 then invalid_arg "Bn.bitwise: negative operand";
  let la = Array.length a.mag and lb = Array.length b.mag in
  let l = max la lb in
  let r = Array.make (max l 1) 0 in
  for i = 0 to l - 1 do
    r.(i) <- f (if i < la then a.mag.(i) else 0) (if i < lb then b.mag.(i) else 0) land limb_mask
  done;
  norm 1 r

(* x mod 2^k, result in [0, 2^k). *)
let mod_pow2 x k =
  if k = 0 then zero
  else begin
    let limbs = (k + limb_bits - 1) / limb_bits in
    let la = Array.length x.mag in
    let r = Array.make limbs 0 in
    for i = 0 to limbs - 1 do
      r.(i) <- if i < la then x.mag.(i) else 0
    done;
    let top_bits = k - ((limbs - 1) * limb_bits) in
    if top_bits < limb_bits then r.(limbs - 1) <- r.(limbs - 1) land ((1 lsl top_bits) - 1);
    let m = norm 1 r in
    if x.sign >= 0 then m
    else if is_zero m then zero
    else sub (pow2 k) m
  end

let min_int_mag = [| 0; 0; 1 lsl 2 |]

let to_int_opt x =
  if x.sign = 0 then Some 0
  else if x.sign < 0 && mag_compare x.mag min_int_mag = 0 then Some min_int
  else if num_bits x > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length x.mag - 1 downto 0 do
      v := (!v lsl limb_bits) lor x.mag.(i)
    done;
    Some (x.sign * !v)
  end

let rec gcd a b =
  (* Euclid on magnitudes; gcd(0, x) = |x|. *)
  let a = { a with sign = abs a.sign } and b = { b with sign = abs b.sign } in
  if is_zero b then a else gcd b (snd (divmod a b))

let to_int_exn x =
  match to_int_opt x with Some v -> v | None -> failwith "Bn.to_int_exn: out of native int range"

let to_float x =
  let v = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    v := (!v *. float_of_int limb_base) +. float_of_int x.mag.(i)
  done;
  !v *. float_of_int x.sign

let of_string_base base s =
  let b = of_int base in
  let v = ref zero in
  String.iter
    (fun c ->
      if c <> '_' then begin
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> invalid_arg "Bn.of_string: bad digit"
        in
        if d >= base then invalid_arg "Bn.of_string: digit out of range";
        v := add (mul !v b) (of_int d)
      end)
    s;
  !v

let of_string s =
  let neg_input = String.length s > 0 && s.[0] = '-' in
  let s = if neg_input then String.sub s 1 (String.length s - 1) else s in
  let v =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      of_string_base 16 (String.sub s 2 (String.length s - 2))
    else if String.length s > 2 && s.[0] = '0' && (s.[1] = 'b' || s.[1] = 'B') then
      of_string_base 2 (String.sub s 2 (String.length s - 2))
    else of_string_base 10 s
  in
  if neg_input then neg v else v

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let ten9 = of_int 1_000_000_000 in
    let rec go v acc =
      if is_zero v then acc
      else begin
        let q, r = divmod v ten9 in
        go q (to_int_exn r :: acc)
      end
    in
    let chunks = go { x with sign = 1 } [] in
    if x.sign < 0 then Buffer.add_char buf '-';
    (match chunks with
    | [] -> Buffer.add_char buf '0'
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let pp fmt x = Format.pp_print_string fmt (to_string x)
