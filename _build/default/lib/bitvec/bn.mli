(** Arbitrary-precision signed integers in sign-magnitude representation.

   This is the numeric engine underneath {!Bitvec}. The magnitude is a
   little-endian array of base-2^30 limbs with no trailing zero limbs; the
   sign is -1, 0 or +1, and [sign = 0] iff the magnitude is empty. Keeping
   the invariant canonical makes structural equality coincide with numeric
   equality, which the rest of the library relies on. *)

val limb_bits : int
val limb_base : int
val limb_mask : int
type t = { sign : int; mag : int array; }
val zero : t
val is_zero : t -> bool
val norm : int -> int array -> t
val of_int : int -> t
val one : t
val mag_compare : 'a array -> 'a array -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val mag_add : int array -> int array -> int array
val mag_sub : int array -> int array -> int array
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val num_bits : t -> int
val mag_testbit : t -> int -> bool
val shift_left : t -> int -> t
val shift_right : t -> int -> t
val divmod : t -> t -> t * t
val pow2 : int -> t
val bitwise : (int -> int -> int) -> t -> t -> t
val mod_pow2 : t -> int -> t
val min_int_mag : int array
val to_int_opt : t -> int option
val gcd : t -> t -> t
val to_int_exn : t -> int
val to_float : t -> float
val of_string_base : int -> string -> t
val of_string : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
