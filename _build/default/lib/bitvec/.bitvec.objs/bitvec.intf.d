lib/bitvec/bitvec.mli: Bn Format
