lib/bitvec/bitvec.ml: Bn Buffer Format Printf String
