lib/bitvec/bn.ml: Array Buffer Char Format List Printf String
