lib/bitvec/bn.mli: Format
