(** Fixed-width two's-complement bit vectors of arbitrary width.

    This is the value domain of the whole tool flow: the CoreDSL type
    system (Section 2.3 of the paper), the reference interpreter, constant
    folding, and the RTL simulator all compute on {!t}. A value carries its
    CoreDSL type — width plus signedness — and its numeric value, kept
    canonical within the representable range of that type.

    All operators implement the bitwidth-aware CoreDSL semantics: results
    are wide enough that no over-/underflow can occur (e.g.
    [unsigned<5> + signed<4> : signed<7>]), and narrowing only happens
    through explicit {!cast}/{!trunc} calls. *)

(** Arbitrary-precision signed integers (sign-magnitude over base-2^30
    limbs); the numeric engine underneath this module. *)
module Bn = Bn

(** A CoreDSL integer type: [signed<width>] or [unsigned<width>]. *)
type ty = { width : int; signed : bool }

(** A typed value. The representation is exposed for pattern matching, but
    the invariant [in_range ty v] always holds for values built through
    this interface. *)
type t = { ty : ty; v : Bn.t }

(** Raised when a width is illegal or a value does not fit a type. *)
exception Width_error of string

(** {1 Types} *)

(** [ty ~width ~signed] builds a type; raises {!Width_error} if
    [width <= 0]. *)
val ty : width:int -> signed:bool -> ty

val unsigned_ty : int -> ty
val signed_ty : int -> ty

(** [unsigned<1>], the type of predicates and comparison results. *)
val bool_ty : ty

val ty_equal : ty -> ty -> bool
val pp_ty : Format.formatter -> ty -> unit

(** Renders like the surface syntax, e.g. ["signed<7>"]. *)
val ty_to_string : ty -> string

(** Smallest / largest representable value of a type. *)
val min_value_bn : ty -> Bn.t

val max_value_bn : ty -> Bn.t

(** Does the numeric value fit the type without wrapping? *)
val in_range : ty -> Bn.t -> bool

(** Reduce an arbitrary integer into the range of the type
    (two's-complement wrap-around). *)
val wrap : ty -> Bn.t -> Bn.t

(** {1 Construction and access} *)

(** [make ty v] wraps [v] into [ty] (never fails). *)
val make : ty -> Bn.t -> t

(** [make_exact ty v] requires [v] to be representable; raises
    {!Width_error} otherwise. *)
val make_exact : ty -> Bn.t -> t

val of_int : ty -> int -> t
val of_int_exact : ty -> int -> t
val of_bn : ty -> Bn.t -> t
val to_bn : t -> Bn.t

(** Numeric value as a native int; fails for values beyond 62 bits. *)
val to_int : t -> int

val to_int_opt : t -> int option
val width : t -> int
val is_signed : t -> bool
val typ : t -> ty
val zero : ty -> t
val one : ty -> t
val is_zero : t -> bool

(** Structural equality: same type and same value. *)
val equal : t -> t -> bool

(** Numeric equality, ignoring the types. *)
val equal_value : t -> t -> bool

(** The unsigned bit pattern of the value at its width, in [0, 2^w). *)
val pattern : t -> Bn.t

(** Smallest unsigned type able to hold the non-negative value. *)
val fit_unsigned : Bn.t -> ty

(** {1 The CoreDSL operator type algebra}

    Result types of the bitwidth-aware operators (Section 2.3): wide
    enough that the operation can never over- or underflow. *)

(** The common super-type: every value of either argument type is
    representable. Mixing signedness yields a signed type one bit wider
    than the unsigned operand requires. *)
val union_ty : ty -> ty -> ty

val add_result_ty : ty -> ty -> ty

(** Subtraction can go negative, so the result is always signed. *)
val sub_result_ty : ty -> ty -> ty

val mul_result_ty : ty -> ty -> ty

(** One extra bit for signed division (min_int / -1). *)
val div_result_ty : ty -> ty -> ty

val rem_result_ty : 'a -> 'b -> 'a
val neg_result_ty : ty -> ty
val not_result_ty : 'a -> 'a

(** Shifts keep the left operand's type (like CoreDSL). *)
val shl_result_ty : 'a -> 'b -> 'a

val shr_result_ty : 'a -> 'b -> 'a
val bitwise_result_ty : ty -> ty -> ty

(** Concatenation is unsigned with the summed width. *)
val concat_result_ty : ty -> ty -> ty

(** {1 Arithmetic}

    These never wrap: the result carries the algebra's wider type. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Truncating division; raises [Division_by_zero]. *)
val div : t -> t -> t

val rem : t -> t -> t
val neg : t -> t

(** Bitwise complement at the operand's width (same type). *)
val lognot : t -> t

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

(** Shifts by a non-negative amount; the result has the left operand's
    type, so bits shifted beyond the width are dropped. *)
val shift_left : t -> int -> t

val shift_right : t -> int -> t

(** {1 Comparisons} — on numeric values, signedness-aware. *)

val compare_value : t -> t -> int
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
val eq : t -> t -> bool
val ne : t -> t -> bool
val of_bool : bool -> t

(** [true] iff the value is non-zero. *)
val to_bool : t -> bool

(** {1 Structure: concatenation, slicing, replication} *)

(** [concat hi lo] joins bit patterns, [hi] in the upper bits. *)
val concat : t -> t -> t

(** [extract x ~hi ~lo] takes bits [hi..lo] of the pattern (unsigned
    result); raises {!Width_error} when out of range. *)
val extract : t -> hi:int -> lo:int -> t

(** Single-bit select, as a 1-bit unsigned value. *)
val bit : t -> int -> t

(** [replicate x n] repeats the pattern [n] times (n >= 1). *)
val replicate : t -> int -> t

(** {1 Casts} *)

(** C-style cast: truncates or sign-/zero-extends the pattern to the
    target type (CoreDSL's explicit cast). *)
val cast : ty -> t -> t

(** Reinterpret at the same width with the given signedness. *)
val reinterpret_sign : bool -> t -> t

(** Truncate/extend to [w] bits keeping the signedness. *)
val trunc : int -> t -> t

(** The legality rule for implicit assignments: every value of [src] must
    be representable in [dst] (Section 2.3's "no implicit information
    loss"). *)
val implicit_conv_ok : src:ty -> dst:ty -> bool

(** Widening conversion; raises {!Width_error} when information would be
    lost (i.e. when {!implicit_conv_ok} is false). *)
val convert_exn : ty -> t -> t

(** {1 Literals} *)

(** C-style literal ("42", "0xcafe"): unsigned with minimal width;
    negative literals become minimal signed values. *)
val of_literal : string -> t

(** Verilog-style sized literal, e.g. [~width:7 ~base:'d' ~digits:"13"]
    for [7'd13]. *)
val of_verilog_literal : width:int -> base:char -> digits:string -> t

(** {1 Printing} *)

val to_string : t -> string

(** ["0x.."] at the type's width (pattern, not numeric value). *)
val to_hex_string : t -> string

(** ["0b.."] at the type's width. *)
val to_bin_string : t -> string

(** Value and type, e.g. ["-3:signed<4>"]. *)
val pp : Format.formatter -> t -> unit
