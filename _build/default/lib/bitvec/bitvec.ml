(* Fixed-width two's-complement bit vectors of arbitrary width.

   A value carries its CoreDSL type (width + signedness) and its numeric
   value, kept canonical within the representable range of that type.
   All operators implement the bitwidth-aware CoreDSL semantics: results are
   wide enough that no over-/underflow can occur, and narrowing only happens
   through explicit {!trunc}/{!cast} calls. *)

module Bn = Bn

type ty = { width : int; signed : bool }

type t = { ty : ty; v : Bn.t }

exception Width_error of string

let ty ~width ~signed =
  if width <= 0 then raise (Width_error (Printf.sprintf "illegal width %d" width));
  { width; signed }

let unsigned_ty w = ty ~width:w ~signed:false
let signed_ty w = ty ~width:w ~signed:true
let bool_ty = unsigned_ty 1

let ty_equal a b = a.width = b.width && a.signed = b.signed

let pp_ty fmt t =
  Format.fprintf fmt "%s<%d>" (if t.signed then "signed" else "unsigned") t.width

let ty_to_string t = Format.asprintf "%a" pp_ty t

(* Smallest / largest representable value of a type. *)
let min_value_bn t = if t.signed then Bn.neg (Bn.pow2 (t.width - 1)) else Bn.zero
let max_value_bn t = Bn.sub (Bn.pow2 (if t.signed then t.width - 1 else t.width)) Bn.one

let in_range t v = Bn.compare v (min_value_bn t) >= 0 && Bn.compare v (max_value_bn t) <= 0

(* Wrap an arbitrary integer into the range of [t] (two's-complement). *)
let wrap t v =
  let m = Bn.mod_pow2 v t.width in
  if t.signed && Bn.compare m (Bn.pow2 (t.width - 1)) >= 0 then Bn.sub m (Bn.pow2 t.width) else m

let make ty v = { ty; v = wrap ty v }

let make_exact ty v =
  if not (in_range ty v) then
    raise
      (Width_error
         (Printf.sprintf "value %s does not fit in %s" (Bn.to_string v) (ty_to_string ty)));
  { ty; v }

let of_int ty i = make ty (Bn.of_int i)
let of_int_exact ty i = make_exact ty (Bn.of_int i)
let of_bn = make
let to_bn x = x.v
let to_int x = Bn.to_int_exn x.v
let to_int_opt x = Bn.to_int_opt x.v
let width x = x.ty.width
let is_signed x = x.ty.signed
let typ x = x.ty

let zero ty = of_int ty 0
let one ty = of_int ty 1
let is_zero x = Bn.is_zero x.v

let equal a b = ty_equal a.ty b.ty && Bn.equal a.v b.v
let equal_value a b = Bn.equal a.v b.v

(* The unsigned bit pattern of [x] at its width, in [0, 2^w). *)
let pattern x = Bn.mod_pow2 x.v x.ty.width

(* Smallest unsigned type able to hold the value [v >= 0]. *)
let fit_unsigned v =
  let bits = max 1 (Bn.num_bits v) in
  unsigned_ty bits

(* ---- Type algebra (CoreDSL operator result types) ---- *)

(* The common super-type of [a] and [b]: every value of either type is
   representable. Mixing signedness forces a signed result one bit wider
   than the unsigned operand needs. *)
let union_ty a b =
  if a.signed = b.signed then { width = max a.width b.width; signed = a.signed }
  else begin
    let s, u = if a.signed then (a, b) else (b, a) in
    { width = max s.width (u.width + 1); signed = true }
  end

let add_result_ty a b =
  let u = union_ty a b in
  { u with width = u.width + 1 }

let sub_result_ty a b =
  (* Subtraction of unsigned values can go negative, so the result is
     always signed. *)
  let u = union_ty a b in
  { width = u.width + 1; signed = true }

let mul_result_ty a b = { width = a.width + b.width; signed = a.signed || b.signed }

let div_result_ty a b =
  (* signed division overflows only for min/-1, hence one extra bit. *)
  if a.signed || b.signed then { width = a.width + 1; signed = true } else a

let rem_result_ty a _b = a
let neg_result_ty a = { width = a.width + 1; signed = true }
let not_result_ty a = a
let shl_result_ty a _b = a
let shr_result_ty a _b = a
let bitwise_result_ty a b = union_ty a b
let concat_result_ty a b = unsigned_ty (a.width + b.width)

(* ---- Arithmetic (never overflows: result types per the algebra above) ---- *)

let add a b = make_exact (add_result_ty a.ty b.ty) (Bn.add a.v b.v)
let sub a b = make_exact (sub_result_ty a.ty b.ty) (Bn.sub a.v b.v)
let mul a b = make_exact (mul_result_ty a.ty b.ty) (Bn.mul a.v b.v)

let div a b =
  if is_zero b then raise Division_by_zero;
  make_exact (div_result_ty a.ty b.ty) (fst (Bn.divmod a.v b.v))

let rem a b =
  if is_zero b then raise Division_by_zero;
  make_exact (rem_result_ty a.ty b.ty) (snd (Bn.divmod a.v b.v))

let neg a = make_exact (neg_result_ty a.ty) (Bn.neg a.v)

(* Bitwise complement at the operand's width (same type). *)
let lognot a =
  let p = pattern a in
  let np = Bn.sub (Bn.sub (Bn.pow2 a.ty.width) Bn.one) p in
  make a.ty np

let bitwise2 f a b =
  let t = bitwise_result_ty a.ty b.ty in
  let pa = Bn.mod_pow2 a.v t.width and pb = Bn.mod_pow2 b.v t.width in
  make t (Bn.bitwise f pa pb)

let logand = bitwise2 ( land )
let logor = bitwise2 ( lor )
let logxor = bitwise2 ( lxor )

let shift_left a k =
  if k < 0 then invalid_arg "Bitvec.shift_left: negative amount";
  make (shl_result_ty a.ty k) (Bn.shift_left a.v k)

let shift_right a k =
  if k < 0 then invalid_arg "Bitvec.shift_right: negative amount";
  make (shr_result_ty a.ty k) (Bn.shift_right a.v k)

(* ---- Comparisons (on numeric values; result is a 1-bit bool) ---- *)

let compare_value a b = Bn.compare a.v b.v
let lt a b = compare_value a b < 0
let le a b = compare_value a b <= 0
let gt a b = compare_value a b > 0
let ge a b = compare_value a b >= 0
let eq a b = compare_value a b = 0
let ne a b = compare_value a b <> 0

let of_bool b = of_int bool_ty (if b then 1 else 0)
let to_bool x = not (is_zero x)

(* ---- Structure: concat / slice / bit access / replicate ---- *)

let concat hi lo =
  let t = concat_result_ty hi.ty lo.ty in
  make t (Bn.add (Bn.shift_left (pattern hi) lo.ty.width) (pattern lo))

let extract x ~hi ~lo =
  if lo < 0 || hi < lo || hi >= x.ty.width then
    raise
      (Width_error (Printf.sprintf "extract [%d:%d] out of range for width %d" hi lo x.ty.width));
  let p = Bn.shift_right (pattern x) lo in
  make (unsigned_ty (hi - lo + 1)) (Bn.mod_pow2 p (hi - lo + 1))

let bit x i = extract x ~hi:i ~lo:i

let replicate x n =
  if n <= 0 then invalid_arg "Bitvec.replicate: non-positive count";
  let rec go acc k = if k = 1 then acc else go (concat acc x) (k - 1) in
  go x n

(* ---- Casts ---- *)

(* Resize/reinterpret to [t], truncating or sign-/zero-extending the bit
   pattern exactly like a C-style cast in CoreDSL. *)
let cast t x =
  if t.width >= x.ty.width then
    (* widening: value is preserved unless we drop the sign *)
    make t x.v
  else make t (pattern x)

let reinterpret_sign signed x = cast { x.ty with signed } x

let trunc w x = cast { x.ty with width = w } x

(* Widen to [t]; fails if [t] cannot represent every value of [x]'s type
   (this is the implicit-assignment legality rule of CoreDSL). *)
let implicit_conv_ok ~src ~dst =
  if src.signed = dst.signed then dst.width >= src.width
  else if src.signed && not dst.signed then false
  else dst.width >= src.width + 1

let convert_exn t x =
  if not (implicit_conv_ok ~src:x.ty ~dst:t) then
    raise
      (Width_error
         (Printf.sprintf "implicit conversion from %s to %s loses information"
            (ty_to_string x.ty) (ty_to_string t)));
  make_exact t x.v

(* ---- Literals ---- *)

(* Plain C-style literal: unsigned with minimal width. *)
let of_literal s =
  let v = Bn.of_string s in
  if Bn.compare v Bn.zero < 0 then
    let t = signed_ty (Bn.num_bits (Bn.neg v) + 1) in
    make_exact t v
  else make_exact (fit_unsigned v) v

(* Verilog-style sized literal, e.g. 7'd13, 3'b101, 8'hff. *)
let of_verilog_literal ~width ~base ~digits =
  let v =
    match base with
    | 'd' | 'D' -> Bn.of_string digits
    | 'b' | 'B' -> Bn.of_string ("0b" ^ digits)
    | 'h' | 'H' | 'x' | 'X' -> Bn.of_string ("0x" ^ digits)
    | c -> invalid_arg (Printf.sprintf "Bitvec.of_verilog_literal: base '%c'" c)
  in
  make (unsigned_ty width) v

(* ---- Printing ---- *)

let to_string x = Bn.to_string x.v

let to_hex_string x =
  let p = pattern x in
  let digits = (x.ty.width + 3) / 4 in
  let buf = Buffer.create (digits + 2) in
  Buffer.add_string buf "0x";
  for i = digits - 1 downto 0 do
    let nib = Bn.to_int_exn (Bn.mod_pow2 (Bn.shift_right p (i * 4)) 4) in
    Buffer.add_char buf "0123456789abcdef".[nib]
  done;
  Buffer.contents buf

let to_bin_string x =
  let p = pattern x in
  let buf = Buffer.create (x.ty.width + 2) in
  Buffer.add_string buf "0b";
  for i = x.ty.width - 1 downto 0 do
    Buffer.add_char buf (if Bn.mag_testbit p i then '1' else '0')
  done;
  Buffer.contents buf

let pp fmt x = Format.fprintf fmt "%s:%a" (to_string x) pp_ty x.ty
