(** Resource-sharing opportunity analysis (Section 7 outlook).

   Longnail currently builds fully spatial data paths ("allocation and
   binding are trivial", Section 4.2); the paper's planned extension shares
   operators within an instruction and across instruction boundaries. This
   module implements the *analysis* half: it identifies which expensive
   operators could be time-multiplexed and estimates the area saving, so
   the sharing bench can quantify the opportunity on the benchmark ISAXes.

   Sharing is only legal where two operations can never be active in the
   same cycle with different data:
   - within one functionality, operations of the same kind and width in
     different stages can share a unit if the module's initiation interval
     is greater than one - true for tightly-coupled modules (the core
     stalls, so only one instruction is in flight) and decoupled modules
     with a busy scoreboard, but not for in-pipeline modules;
   - across functionalities, same-kind/width/stage operations in different
     instructions can share because the decoder dispatches one custom
     instruction per cycle per stage. *)

type opportunity = {
  sh_op : string;
  sh_width : int;
  sh_count : int;
  sh_shareable : int;
  sh_saved_area_um2 : float;
  sh_scope : [ `Across of string * string | `Within of string ];
}
val shareable_area : string -> (int -> float) option
val mux_cost_per_input : int -> float
val op_instances :
  Flow.compiled_functionality -> (string * int * int) list
val group_by : ('a -> 'b) -> 'a list -> ('b * 'a list) list
val within : Flow.compiled_functionality -> opportunity list
val across :
  Flow.compiled_functionality ->
  Flow.compiled_functionality -> opportunity list
val analyze : Flow.compiled -> opportunity list
val total_saving : opportunity list -> float
