(** Automated design-space exploration (the Section 7 outlook feature).

   Area minimization and performance metrics conflict, so for one ISAX on
   one core we sweep the knobs Longnail exposes —
   - the scheduler (lifetime-minimizing ILP vs. plain ASAP),
   - the target cycle time handed to chain breaking (scheduling for a
     slower clock packs stages fuller: fewer pipeline registers, lower
     fmax; scheduling for a faster clock spreads the logic),
   - the scheduling delay model (the paper's uniform delays vs. the
     physical width-aware model),
   and report the Pareto-optimal trade-off points over (area, frequency,
   instruction latency). *)

type point = {
  dp_label : string;
  dp_scheduler : Sched_build.scheduler;
  dp_cycle_factor : float;
  dp_physical : bool;
  dp_area_pct : float;
  dp_freq_mhz : float;
  dp_latency : int;
  dp_pipe_bits : int;
  dp_pareto : bool;
}
val dominates : point -> point -> bool
val mark_pareto : point list -> point list
val explore :
  ?cycle_factors:float list ->
  measure:(Flow.compiled -> float * float) ->
  Scaiev.Datasheet.t -> Coredsl.Tast.tunit -> point list
