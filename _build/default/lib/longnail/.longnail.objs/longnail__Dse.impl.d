lib/longnail/dse.ml: Coredsl Delay_model Flow Hwgen List Printf Scaiev Sched_build
