lib/longnail/flow.ml: Config_gen Coredsl Delay_model Hwgen Ir Lazy List Option Printf Rtl Scaiev Sched Sched_build
