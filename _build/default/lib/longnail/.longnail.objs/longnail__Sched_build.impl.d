lib/longnail/sched_build.ml: Array Bitvec Delay_model Format Hashtbl Ir List Printf Scaiev Sched
