lib/longnail/delay_model.mli:
