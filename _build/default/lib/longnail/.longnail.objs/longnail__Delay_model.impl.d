lib/longnail/delay_model.ml:
