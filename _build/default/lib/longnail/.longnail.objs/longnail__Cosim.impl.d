lib/longnail/cosim.ml: Bitvec Flow Hwgen List Option Printf Rtl String
