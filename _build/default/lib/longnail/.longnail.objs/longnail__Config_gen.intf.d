lib/longnail/config_gen.mli: Coredsl Hwgen Scaiev
