lib/longnail/sched_build.mli: Delay_model Format Hashtbl Ir Scaiev Sched
