lib/longnail/dse.mli: Coredsl Flow Scaiev Sched_build
