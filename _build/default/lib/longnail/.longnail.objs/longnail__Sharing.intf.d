lib/longnail/sharing.mli: Flow
