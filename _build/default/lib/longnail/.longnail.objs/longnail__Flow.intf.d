lib/longnail/flow.mli: Coredsl Delay_model Hwgen Ir Scaiev Sched_build
