lib/longnail/sharing.ml: Bitvec Flow Hashtbl Ir List Option Scaiev Sched_build
