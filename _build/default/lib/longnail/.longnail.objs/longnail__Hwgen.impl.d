lib/longnail/hwgen.ml: Bitvec Coredsl Format Hashtbl Ir Lazy List Option Printf Rtl Scaiev Sched_build
