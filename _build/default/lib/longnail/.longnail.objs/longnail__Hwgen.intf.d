lib/longnail/hwgen.mli: Coredsl Format Hashtbl Ir Rtl Scaiev Sched_build
