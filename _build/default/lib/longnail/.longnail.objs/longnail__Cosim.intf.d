lib/longnail/cosim.mli: Bitvec Flow
