lib/longnail/config_gen.ml: Bitvec Coredsl Hashtbl Hwgen List Printf Scaiev
