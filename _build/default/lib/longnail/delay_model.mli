(** Physical delay model for scheduling.

   The paper currently assumes uniform delays ("we plan to leverage an
   actual target-specific technology library in the future"); we use a
   slightly richer width-aware linear model calibrated against typical
   22nm standard-cell data so that chaining produces realistic pipeline
   depths (e.g. the 32-iteration sqrt spans about 10 stages, Section 5.4).
   All delays in nanoseconds. *)

type t = { op_delay : string -> int -> float; }
val default_op_delay : string -> int -> float
val physical : t
val uniform : float -> t
val default : t
