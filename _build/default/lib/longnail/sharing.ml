(* Resource-sharing opportunity analysis (Section 7 outlook).

   Longnail currently builds fully spatial data paths ("allocation and
   binding are trivial", Section 4.2); the paper's planned extension shares
   operators within an instruction and across instruction boundaries. This
   module implements the *analysis* half: it identifies which expensive
   operators could be time-multiplexed and estimates the area saving, so
   the sharing bench can quantify the opportunity on the benchmark ISAXes.

   Sharing is only legal where two operations can never be active in the
   same cycle with different data:
   - within one functionality, operations of the same kind and width in
     different stages can share a unit if the module's initiation interval
     is greater than one - true for tightly-coupled modules (the core
     stalls, so only one instruction is in flight) and decoupled modules
     with a busy scoreboard, but not for in-pipeline modules;
   - across functionalities, same-kind/width/stage operations in different
     instructions can share because the decoder dispatches one custom
     instruction per cycle per stage. *)

type opportunity = {
  sh_op : string;  (* operator kind, e.g. "comb.mul" *)
  sh_width : int;
  sh_count : int;  (* instances found *)
  sh_shareable : int;  (* instances that could be eliminated *)
  sh_saved_area_um2 : float;  (* net of the multiplexers a binder would add *)
  sh_scope : [ `Within of string | `Across of string * string ];
}

(* operators worth sharing, with per-bit area and the per-bit mux cost a
   shared binding adds on each input *)
let shareable_area = function
  | "comb.mul" -> Some (fun w -> 0.35 *. float_of_int (w * w))
  | "comb.divu" | "comb.divs" | "comb.modu" | "comb.mods" ->
      Some (fun w -> 1.0 *. float_of_int (w * w))
  | "comb.add" | "comb.sub" -> Some (fun w -> 1.0 *. float_of_int w)
  | _ -> None

let mux_cost_per_input w = 0.35 *. float_of_int w *. 2.0 (* two operand muxes *)

(* ops of one functionality grouped by (kind, width, stage) / (kind, width) *)
let op_instances (f : Flow.compiled_functionality) =
  List.filter_map
    (fun (op : Ir.Mir.op) ->
      match (shareable_area op.opname, op.results) with
      | Some _, r :: _ ->
          Some (op.opname, r.vty.Bitvec.width, Sched_build.start_time f.cf_built op)
      | _ -> None)
    f.cf_lil.Ir.Mir.body

let group_by key xs =
  let t = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let k = key x in
      Hashtbl.replace t k (x :: Option.value ~default:[] (Hashtbl.find_opt t k)))
    xs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []

(* sharing within one functionality: only meaningful when the module does
   not accept a new instruction every cycle *)
let within (f : Flow.compiled_functionality) : opportunity list =
  let sequential =
    match f.cf_mode with
    | Scaiev.Config.Tightly_coupled | Scaiev.Config.Decoupled -> true
    | Scaiev.Config.In_pipeline | Scaiev.Config.Always_mode -> false
  in
  if not sequential then []
  else
    group_by (fun (op, w, _) -> (op, w)) (op_instances f)
    |> List.filter_map (fun ((op, w), instances) ->
           (* instances in distinct stages can take turns on one unit *)
           let stages = List.sort_uniq compare (List.map (fun (_, _, s) -> s) instances) in
           let n = List.length instances in
           let distinct = List.length stages in
           if distinct < 2 then None
           else begin
             let area = Option.get (shareable_area op) w in
             let eliminated = distinct - 1 in
             let saved =
               (float_of_int eliminated *. area) -. (mux_cost_per_input w *. float_of_int distinct)
             in
             if saved <= 0.0 then None
             else
               Some
                 {
                   sh_op = op;
                   sh_width = w;
                   sh_count = n;
                   sh_shareable = eliminated;
                   sh_saved_area_um2 = saved;
                   sh_scope = `Within f.cf_name;
                 }
           end)

(* sharing across two functionalities: same kind/width/stage pairs *)
let across (f1 : Flow.compiled_functionality) (f2 : Flow.compiled_functionality) :
    opportunity list =
  let i2 = op_instances f2 in
  group_by (fun (op, w, s) -> (op, w, s)) (op_instances f1)
  |> List.filter_map (fun ((op, w, s), insts1) ->
         let n2 = List.length (List.filter (fun x -> x = (op, w, s)) i2) in
         let pairs = min (List.length insts1) n2 in
         if pairs = 0 then None
         else begin
           let area = Option.get (shareable_area op) w in
           let saved = float_of_int pairs *. (area -. mux_cost_per_input w) in
           if saved <= 0.0 then None
           else
             Some
               {
                 sh_op = op;
                 sh_width = w;
                 sh_count = List.length insts1 + n2;
                 sh_shareable = pairs;
                 sh_saved_area_um2 = saved;
                 sh_scope = `Across (f1.cf_name, f2.cf_name);
               }
         end)

(* all opportunities in a compiled unit *)
let analyze (c : Flow.compiled) : opportunity list =
  let instrs = List.filter (fun f -> f.Flow.cf_kind = `Instruction) c.funcs in
  let rec pairs = function
    | [] -> []
    | f :: rest -> List.map (fun g -> (f, g)) rest @ pairs rest
  in
  List.concat_map within instrs @ List.concat_map (fun (a, b) -> across a b) (pairs instrs)

let total_saving opportunities =
  List.fold_left (fun acc o -> acc +. o.sh_saved_area_um2) 0.0 opportunities
