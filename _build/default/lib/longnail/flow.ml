(* The end-to-end Longnail flow (Figure 9):

   CoreDSL source
     -> typed AST                      (lib/coredsl)
     -> high-level IR, Figure 5b      (Ir.Hlir)
     -> lil CDFG, Figure 5c           (Ir.Lil + Ir.Passes)
     -> LongnailProblem + schedule    (Sched_build, against the core's
                                       virtual datasheet)
     -> RTL + SystemVerilog, Fig 5d   (Hwgen, Rtl.Sv_emit)
     -> SCAIE-V configuration, Fig 8  (Config_gen)

   Only the ISAX instructions (those not part of the RV32I base set) and
   always-blocks are synthesized; base instructions are implemented by the
   host core itself. *)

exception Flow_error of string

type compiled_functionality = {
  cf_name : string;
  cf_kind : [ `Instruction | `Always ];
  cf_hlir : Ir.Mir.graph;
  cf_lil : Ir.Mir.graph;
  cf_built : Sched_build.built;
  cf_hw : Hwgen.result;
  cf_sv : string;
  cf_mode : Scaiev.Config.mode;  (* dominant execution mode *)
}

type compiled = {
  core : Scaiev.Datasheet.t;
  unit_ : Coredsl.Tast.tunit;
  funcs : compiled_functionality list;
  config : Scaiev.Config.t;
  config_yaml : string;
  adapter : Scaiev.Generator.adapter;
}

(* names of the base RV32I instructions, which are not ISAXes *)
let base_instr_names =
  lazy
    (let tu = Coredsl.compile_rv32i () in
     List.map (fun (ti : Coredsl.Tast.tinstr) -> ti.ti_name) tu.tinstrs)

let is_isax_instruction (ti : Coredsl.Tast.tinstr) =
  not (List.mem ti.ti_name (Lazy.force base_instr_names))

let dominant_mode (hw : Hwgen.result) ~kind =
  if kind = `Always then Scaiev.Config.Always_mode
  else if List.exists (fun b -> b.Hwgen.ib_mode = Scaiev.Config.Decoupled) hw.bindings then
    Scaiev.Config.Decoupled
  else if List.exists (fun b -> b.Hwgen.ib_mode = Scaiev.Config.Tightly_coupled) hw.bindings
  then Scaiev.Config.Tightly_coupled
  else Scaiev.Config.In_pipeline

(* The paper schedules with uniform operator delays; we default to a
   uniform delay of one fourteenth of the target clock period, i.e. up to
   ~14 chained logic operations per stage. This reproduces the reported ~10
   pipeline stages for the 32-iteration sqrt and lets the downstream ASIC
   timing analysis (with true physical delays) discover the frequency
   regressions of Table 4, exactly like the paper's flow. *)
let default_delay_model core cycle_time =
  let ct = match cycle_time with Some ct -> ct | None -> Scaiev.Datasheet.cycle_time_ns core in
  Delay_model.uniform (ct /. 14.0)

let compile_functionality (core : Scaiev.Datasheet.t) (tu : Coredsl.Tast.tunit)
    ?(scheduler = Sched_build.Ilp) ?delay_model ?cycle_time
    (fn : [ `Instr of Coredsl.Tast.tinstr | `Always of Coredsl.Tast.talways ]) :
    compiled_functionality =
  let delay_model =
    match delay_model with Some dm -> dm | None -> default_delay_model core cycle_time
  in
  let hlir, fields, name, kind =
    match fn with
    | `Instr ti -> (Ir.Hlir.lower_instruction tu ti, ti.fields, ti.ti_name, `Instruction)
    | `Always ta -> (Ir.Hlir.lower_always tu ta, [], ta.ta_name, `Always)
  in
  Ir.Mir.verify hlir;
  let lil = Ir.Lil.of_hlir tu.elab ~fields hlir in
  let lil = Ir.Passes.optimize lil in
  Ir.Mir.verify lil;
  Ir.Lil.validate_single_use lil;
  let built = Sched_build.build core ~delay_model ?cycle_time lil in
  if not (Sched_build.schedule ~scheduler built) then
    raise
      (Flow_error
         (Printf.sprintf "scheduling of %s for core %s is infeasible" name core.core_name));
  Sched.Problem.verify built.problem;
  let hw = Hwgen.generate core tu.elab built lil in
  let sv = Rtl.Sv_emit.emit hw.netlist in
  {
    cf_name = name;
    cf_kind = kind;
    cf_hlir = hlir;
    cf_lil = lil;
    cf_built = built;
    cf_hw = hw;
    cf_sv = sv;
    cf_mode = dominant_mode hw ~kind;
  }

let mask_of (ti : Coredsl.Tast.tinstr) =
  Scaiev.Config.mask_string ~width:ti.enc_width ~mask:ti.mask ~match_bits:ti.match_bits

(* Compile every ISAX functionality of [tu] for [core]. *)
let compile ?(scheduler = Sched_build.Ilp) ?delay_model ?cycle_time
    ?(hazard_handling = true) (core : Scaiev.Datasheet.t) (tu : Coredsl.Tast.tunit) : compiled =
  let delay_model =
    match delay_model with Some dm -> dm | None -> default_delay_model core cycle_time
  in
  let instrs = List.filter is_isax_instruction tu.tinstrs in
  let funcs =
    List.map
      (fun ti -> compile_functionality core tu ~scheduler ~delay_model ?cycle_time (`Instr ti))
      instrs
    @ List.map
        (fun ta -> compile_functionality core tu ~scheduler ~delay_model ?cycle_time (`Always ta))
        tu.talways
  in
  let config =
    {
      Scaiev.Config.regs = Config_gen.reg_requests tu.elab (List.map (fun f -> f.cf_hw) funcs);
      funcs =
        List.map
          (fun f ->
            let mask =
              match f.cf_kind with
              | `Instruction ->
                  let ti = Option.get (Coredsl.Tast.find_tinstr tu f.cf_name) in
                  mask_of ti
              | `Always -> ""
            in
            Config_gen.functionality_of ~name:f.cf_name ~kind:f.cf_kind ~mask f.cf_hw)
          funcs;
    }
  in
  let adapter = Scaiev.Generator.generate ~hazard_handling core config in
  {
    core;
    unit_ = tu;
    funcs;
    config;
    config_yaml = Scaiev.Config.to_yaml config;
    adapter;
  }

let find_func c name = List.find_opt (fun f -> f.cf_name = name) c.funcs
