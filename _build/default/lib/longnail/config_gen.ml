(* Emission of the SCAIE-V configuration (Figures 8 and 9) from the
   hardware-generation results. *)

open Hwgen

(* the Figure 8 representation of one interface use *)
let entries_of_binding (b : iface_binding) : Scaiev.Config.sched_entry list =
  match (b.ib_opname, b.ib_reg) with
  | "lil.write_custreg", Some reg ->
      (* WrCustReg splits into .addr and .data; SCAIE-V derives the hazard
         window from the earliest write access to the addr port *)
      [
        { Scaiev.Config.se_iface = Printf.sprintf "Wr%s.addr" reg; se_stage = b.ib_stage; se_has_valid = false; se_mode = b.ib_mode };
        { se_iface = Printf.sprintf "Wr%s.data" reg; se_stage = b.ib_stage; se_has_valid = b.ib_has_valid; se_mode = b.ib_mode };
      ]
  | _, Some reg when b.ib_opname = "lil.read_custreg" ->
      [ { se_iface = "Rd" ^ reg; se_stage = b.ib_stage; se_has_valid = false; se_mode = b.ib_mode } ]
  | _ ->
      [
        {
          se_iface = b.ib_iface;
          se_stage = b.ib_stage;
          se_has_valid = b.ib_has_valid && b.ib_iface <> "RdMem";
          se_mode = b.ib_mode;
        };
      ]

let functionality_of ~name ~kind ~mask (hw : result) : Scaiev.Config.functionality =
  {
    Scaiev.Config.fn_name = name;
    fn_kind = kind;
    fn_mask = mask;
    fn_entries = List.concat_map entries_of_binding hw.bindings;
  }

(* the custom registers requested from SCAIE-V: every non-constant,
   non-standard register actually touched by some functionality *)
let reg_requests (elab : Coredsl.Elaborate.elaborated) (hws : result list) :
    Scaiev.Config.reg_req list =
  let used = Hashtbl.create 8 in
  List.iter
    (fun hw ->
      List.iter
        (fun b -> match b.ib_reg with Some r -> Hashtbl.replace used r () | None -> ())
        hw.bindings)
    hws;
  List.filter_map
    (fun (r : Coredsl.Elaborate.reg) ->
      if Hashtbl.mem used r.rname && not r.rconst && not r.is_pc then
        Some
          {
            Scaiev.Config.cr_name = r.rname;
            cr_width = r.rty.Bitvec.width;
            cr_elems = r.elems;
          }
      else None)
    elab.regs
