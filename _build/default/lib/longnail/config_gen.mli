(** Emission of the SCAIE-V configuration (Figures 8 and 9) from the
   hardware-generation results. *)

val entries_of_binding :
  Hwgen.iface_binding -> Scaiev.Config.sched_entry list
val functionality_of :
  name:string ->
  kind:[ `Always | `Instruction ] ->
  mask:string -> Hwgen.result -> Scaiev.Config.functionality
val reg_requests :
  Coredsl.Elaborate.elaborated ->
  Hwgen.result list -> Scaiev.Config.reg_req list
