lib/isax/sources.ml: Buffer Printf String
