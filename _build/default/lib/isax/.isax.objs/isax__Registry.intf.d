lib/isax/registry.mli: Coredsl
