lib/isax/sources.mli:
