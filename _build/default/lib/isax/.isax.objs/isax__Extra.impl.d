lib/isax/extra.ml: Coredsl List Registry
