lib/isax/registry.ml: Coredsl List Option Printf Sources
