lib/isax/extra.mli: Coredsl
