(** Registry of the benchmark ISAXes (Table 3 of the paper).

   Each entry names the CoreDSL target to elaborate, carries the source
   text, and records the description/demonstrates columns of Table 3 so the
   bench harness can regenerate the table. *)

type entry = {
  name : string;
  target : string;
  import_name : string;
  source : string;
  description : string;
  demonstrates : string;
}
val all : entry list
val find : string -> entry option
val find_exn : string -> entry
val provider : string -> string option
val compile : entry -> Coredsl.Tast.tunit
val compile_by_name : string -> Coredsl.Tast.tunit
