(** Additional ISAXes beyond the paper's Table 3 benchmark set, exercising
   hardware patterns the benchmark ISAXes do not cover:

   - bitrev: a pure-wiring datapath (bit reversal),
   - crc32b: a deep serial xor/mux chain (bit-serial CRC-32 over one byte),
   - clz: priority logic (count leading zeros).

   They are used by the extra tests and the `extra` bench target, and are
   available to the CLI like the Table 3 set. *)

val bitrev : string
val crc32b : string
val clz : string
type entry = {
  name : string;
  target : string;
  instr : string;
  source : string;
}
val all : entry list
val find : string -> entry option
val compile : entry -> Coredsl.Tast.tunit
