(* Additional ISAXes beyond the paper's Table 3 benchmark set, exercising
   hardware patterns the benchmark ISAXes do not cover:

   - bitrev: a pure-wiring datapath (bit reversal),
   - crc32b: a deep serial xor/mux chain (bit-serial CRC-32 over one byte),
   - clz: priority logic (count leading zeros).

   They are used by the extra tests and the `extra` bench target, and are
   available to the CLI like the Table 3 set. *)

let bitrev =
  {|
import "RV32I.core_desc"

InstructionSet X_BITREV extends RV32I {
  instructions {
    BITREV {
      encoding: 12'd0 :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b1011011;
      behavior: {
        unsigned<32> r = 0;
        for (int i = 0; i < 32; i += 1) {
          r = r[30:0] :: X[rs1][i];
        }
        if (rd != 0) X[rd] = r;
      }
    }
  }
}
|}

let crc32b =
  {|
import "RV32I.core_desc"

InstructionSet X_CRC32 extends RV32I {
  instructions {
    CRC32B {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'b001 :: rd[4:0] :: 7'b1011011;
      behavior: {
        unsigned<32> crc = (unsigned<32>)(X[rs1] ^ (unsigned<32>)X[rs2][7:0]);
        for (int i = 0; i < 8; i += 1) {
          if (crc[0] == 1) {
            crc = (unsigned<32>)((crc >> 1) ^ 0xEDB88320);
          } else {
            crc = (unsigned<32>)(crc >> 1);
          }
        }
        if (rd != 0) X[rd] = crc;
      }
    }
  }
}
|}

let clz =
  {|
import "RV32I.core_desc"

InstructionSet X_CLZ extends RV32I {
  instructions {
    CLZ {
      encoding: 12'd0 :: rs1[4:0] :: 3'b010 :: rd[4:0] :: 7'b1011011;
      behavior: {
        unsigned<6> n = 0;
        unsigned<1> found = 0;
        for (int i = 31; i >= 0; i -= 1) {
          if (found == 0) {
            if (X[rs1][i] == 1) {
              found = 1;
            } else {
              n = (unsigned<6>)(n + 1);
            }
          }
        }
        if (rd != 0) X[rd] = (unsigned<32>)n;
      }
    }
  }
}
|}

type entry = { name : string; target : string; instr : string; source : string }

let all =
  [
    { name = "bitrev"; target = "X_BITREV"; instr = "BITREV"; source = bitrev };
    { name = "crc32b"; target = "X_CRC32"; instr = "CRC32B"; source = crc32b };
    { name = "clz"; target = "X_CLZ"; instr = "CLZ"; source = clz };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let compile (e : entry) = Coredsl.compile ~provider:Registry.provider ~file:e.name ~target:e.target e.source
