(** Graphviz (DOT) export of IR graphs and scheduled problems.

   Renders a lil CDFG in the style of Figure 6 of the paper: one node per
   operation labelled with its name (and schedule time when available),
   one edge per SSA dependence. Used by the CLI's --dot option. *)

val escape : string -> string
val of_graph : ?time_of:(int -> int option) -> Mir.graph -> string
val of_scheduled :
  'a -> start_time:(int -> int option) -> Mir.graph -> string
