(* Evaluation semantics of the signless [comb] dialect.

   Shared by the constant-folding pass and the RTL simulator: both need to
   compute the value of a comb operation from unsigned bit patterns. All
   inputs and the output are {!Bitvec} values with unsigned types; signed
   operators (divs, shrs, signed comparisons) reinterpret their patterns. *)

let u w = Bitvec.unsigned_ty w
let s w = Bitvec.signed_ty w

let as_signed v = Bitvec.cast (s (Bitvec.width v)) v

let bool_bv b = Bitvec.of_bool b

(* Evaluate op [name] with attributes [attrs] on operand patterns [ops],
   producing a pattern of [result_width] bits. *)
let eval ~name ~(attrs : (string * Mir.attr) list) ~(ops : Bitvec.t list) ~result_width : Bitvec.t =
  let w = result_width in
  let wrap v = Bitvec.cast (u w) v in
  let a () = List.nth ops 0 and b () = List.nth ops 1 in
  let shift_amount () =
    (* amounts >= width produce 0 (or the sign fill for shrs) *)
    Bitvec.to_int (b ())
  in
  match name with
  | "hw.constant" -> (
      match List.assoc_opt "value" attrs with
      | Some (Mir.A_bv v) -> wrap v
      | _ -> invalid_arg "hw.constant without value")
  | "comb.add" -> wrap (Bitvec.add (a ()) (b ()))
  | "comb.sub" -> wrap (Bitvec.sub (a ()) (b ()))
  | "comb.mul" -> wrap (Bitvec.mul (a ()) (b ()))
  | "comb.divu" -> if Bitvec.is_zero (b ()) then Bitvec.lognot (Bitvec.zero (u w)) else wrap (Bitvec.div (a ()) (b ()))
  | "comb.modu" -> if Bitvec.is_zero (b ()) then wrap (a ()) else wrap (Bitvec.rem (a ()) (b ()))
  | "comb.divs" ->
      if Bitvec.is_zero (b ()) then Bitvec.lognot (Bitvec.zero (u w))
      else wrap (Bitvec.div (as_signed (a ())) (as_signed (b ())))
  | "comb.mods" ->
      if Bitvec.is_zero (b ()) then wrap (a ())
      else wrap (Bitvec.rem (as_signed (a ())) (as_signed (b ())))
  | "comb.and" -> wrap (Bitvec.logand (a ()) (b ()))
  | "comb.or" -> wrap (Bitvec.logor (a ()) (b ()))
  | "comb.xor" -> wrap (Bitvec.logxor (a ()) (b ()))
  | "comb.mux" ->
      if Bitvec.to_bool (List.nth ops 0) then wrap (List.nth ops 1) else wrap (List.nth ops 2)
  | "comb.extract" -> (
      match List.assoc_opt "lowBit" attrs with
      | Some (Mir.A_int lo) -> Bitvec.extract (List.nth ops 0) ~hi:(lo + w - 1) ~lo
      | _ -> invalid_arg "comb.extract without lowBit")
  | "comb.concat" ->
      (* first operand is the most significant *)
      List.fold_left (fun acc v -> Bitvec.concat acc v) (List.hd ops) (List.tl ops)
  | "comb.replicate" ->
      let n = w / Bitvec.width (List.hd ops) in
      Bitvec.replicate (List.hd ops) n
  | "comb.shl" ->
      let k = shift_amount () in
      if k >= w then Bitvec.zero (u w) else wrap (Bitvec.shift_left (a ()) k)
  | "comb.shru" ->
      let k = shift_amount () in
      if k >= w then Bitvec.zero (u w) else wrap (Bitvec.shift_right (a ()) k)
  | "comb.shrs" ->
      let k = shift_amount () in
      let sv = as_signed (a ()) in
      wrap (Bitvec.shift_right sv (min k (w - 1)))
  | "comb.icmp_eq" -> bool_bv (Bitvec.eq (a ()) (b ()))
  | "comb.icmp_ne" -> bool_bv (Bitvec.ne (a ()) (b ()))
  | "comb.icmp_ult" -> bool_bv (Bitvec.lt (a ()) (b ()))
  | "comb.icmp_ule" -> bool_bv (Bitvec.le (a ()) (b ()))
  | "comb.icmp_ugt" -> bool_bv (Bitvec.gt (a ()) (b ()))
  | "comb.icmp_uge" -> bool_bv (Bitvec.ge (a ()) (b ()))
  | "comb.icmp_slt" -> bool_bv (Bitvec.lt (as_signed (a ())) (as_signed (b ())))
  | "comb.icmp_sle" -> bool_bv (Bitvec.le (as_signed (a ())) (as_signed (b ())))
  | "comb.icmp_sgt" -> bool_bv (Bitvec.gt (as_signed (a ())) (as_signed (b ())))
  | "comb.icmp_sge" -> bool_bv (Bitvec.ge (as_signed (a ())) (as_signed (b ())))
  | other -> invalid_arg (Printf.sprintf "Comb_eval.eval: not a comb op: %s" other)

(* Is this op pure combinational logic that [eval] understands? *)
let is_comb = function
  | "hw.constant" | "comb.add" | "comb.sub" | "comb.mul" | "comb.divu" | "comb.modu"
  | "comb.divs" | "comb.mods" | "comb.and" | "comb.or" | "comb.xor" | "comb.mux"
  | "comb.extract" | "comb.concat" | "comb.replicate" | "comb.shl" | "comb.shru" | "comb.shrs"
  | "comb.icmp_eq" | "comb.icmp_ne" | "comb.icmp_ult" | "comb.icmp_ule" | "comb.icmp_ugt"
  | "comb.icmp_uge" | "comb.icmp_slt" | "comb.icmp_sle" | "comb.icmp_sgt" | "comb.icmp_sge" ->
      true
  | _ -> false
