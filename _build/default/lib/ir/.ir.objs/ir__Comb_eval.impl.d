lib/ir/comb_eval.ml: Bitvec List Mir Printf
