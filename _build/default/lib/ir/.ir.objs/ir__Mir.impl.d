lib/ir/mir.ml: Bitvec Format Hashtbl List Option Printf String
