lib/ir/comb_eval.mli: Bitvec Mir
