lib/ir/dot.ml: Bitvec Buffer Hashtbl List Mir Option Printf String
