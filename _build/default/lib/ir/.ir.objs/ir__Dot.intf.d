lib/ir/dot.mli: Mir
