lib/ir/hlir.mli: Bitvec Coredsl Format Mir
