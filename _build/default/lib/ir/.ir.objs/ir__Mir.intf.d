lib/ir/mir.mli: Bitvec Format Hashtbl
