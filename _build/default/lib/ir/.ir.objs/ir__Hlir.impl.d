lib/ir/hlir.ml: Bitvec Coredsl Format List Mir Option
