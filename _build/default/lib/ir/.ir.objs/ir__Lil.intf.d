lib/ir/lil.mli: Bitvec Coredsl Format Hashtbl Mir
