lib/ir/passes.ml: Bitvec Comb_eval Hashtbl List Mir Option Printf String
