lib/ir/lil.ml: Bitvec Coredsl Format Hashtbl List Mir Option
