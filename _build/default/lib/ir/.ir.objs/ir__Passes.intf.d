lib/ir/passes.mli: Mir
