(** Evaluation semantics of the signless [comb] dialect.

   Shared by the constant-folding pass and the RTL simulator: both need to
   compute the value of a comb operation from unsigned bit patterns. All
   inputs and the output are {!Bitvec} values with unsigned types; signed
   operators (divs, shrs, signed comparisons) reinterpret their patterns. *)

val u : int -> Bitvec.ty
val s : int -> Bitvec.ty
val as_signed : Bitvec.t -> Bitvec.t
val bool_bv : bool -> Bitvec.t
val eval :
  name:string ->
  attrs:(string * Mir.attr) list ->
  ops:Bitvec.t list -> result_width:int -> Bitvec.t
val is_comb : string -> bool
