(* Optimization passes over lil graphs: constant folding (canonicalization),
   common-subexpression elimination, and dead-code elimination. These mirror
   MLIR's canonicalization infrastructure the paper relies on ("constant
   registers are internalized into the ISAX module and subject to MLIR's
   usual canonicalization patterns"). *)

open Mir

(* ops with side effects must never be removed or deduplicated *)
let has_side_effect op =
  match op.opname with
  | "lil.write_rd" | "lil.write_pc" | "lil.write_custreg" | "lil.write_mem" | "lil.sink"
  | "coredsl.set" | "coredsl.store" ->
      true
  | _ -> false

(* interface reads are kept even when pure: they anchor the schedule *)
let is_interface_read op =
  match op.opname with
  | "lil.instr_word" | "lil.read_rs1" | "lil.read_rs2" | "lil.read_pc" | "lil.read_custreg"
  | "lil.read_mem" | "lil.rom" | "coredsl.get" | "coredsl.load" | "coredsl.rom"
  | "coredsl.field" ->
      true
  | _ -> false

(* ---- constant folding ---- *)

let fold_constants (g : graph) : graph =
  let const_of : (int, Bitvec.t) Hashtbl.t = Hashtbl.create 32 in
  let subst = Hashtbl.create 16 in
  let changed = ref false in
  let body =
    List.filter_map
      (fun op ->
        match op.opname with
        | "hw.constant" ->
            (match (op.results, attr_bv op "value") with
            | [ r ], Some v -> Hashtbl.replace const_of r.vid v
            | _ -> ());
            Some op
        | name when Comb_eval.is_comb name && op.results <> [] -> (
            let operand_consts =
              List.map (fun v -> Hashtbl.find_opt const_of v.vid) op.operands
            in
            if List.for_all Option.is_some operand_consts then begin
              let vals = List.map Option.get operand_consts in
              let r = List.hd op.results in
              match
                (try Some (Comb_eval.eval ~name ~attrs:op.attrs ~ops:vals ~result_width:r.vty.Bitvec.width)
                 with _ -> None)
              with
              | Some folded ->
                  changed := true;
                  Hashtbl.replace const_of r.vid folded;
                  (* replace with a fresh constant op reusing the result *)
                  Some { op with opname = "hw.constant"; operands = []; attrs = [ ("value", A_bv folded) ] }
              | None -> Some op
            end
            else begin
              (* simple mux canonicalization: constant condition *)
              match (op.opname, op.operands) with
              | "comb.mux", [ c; t; f ] -> (
                  match Hashtbl.find_opt const_of c.vid with
                  | Some cv ->
                      changed := true;
                      let keep = if Bitvec.to_bool cv then t else f in
                      Hashtbl.replace subst (List.hd op.results).vid keep;
                      None
                  | None -> Some op)
              | _ -> Some op
            end)
        | _ -> Some op)
      g.body
  in
  let g = { g with body } in
  if Hashtbl.length subst > 0 then rewrite g ~subst ~keep:(fun _ -> true) else g

(* ---- common-subexpression elimination ---- *)

let cse (g : graph) : graph =
  let table : (string, value list) Hashtbl.t = Hashtbl.create 32 in
  let subst : (int, value) Hashtbl.t = Hashtbl.create 16 in
  let canon v = match Hashtbl.find_opt subst v.vid with Some v' -> v' | None -> v in
  let key op =
    let operands = List.map (fun v -> string_of_int (canon v).vid) op.operands in
    (* result types are part of the identity: the same extract/concat can
       produce different widths *)
    let results = List.map (fun r -> Bitvec.ty_to_string r.vty) op.results in
    let attrs =
      List.map
        (fun (k, a) ->
          Printf.sprintf "%s=%s" k
            (match a with
            | A_int i -> string_of_int i
            | A_str s -> s
            | A_bv v -> Bitvec.to_hex_string v ^ "/" ^ string_of_int (Bitvec.width v)
            | A_bool b -> string_of_bool b))
        op.attrs
    in
    Printf.sprintf "%s(%s){%s}:%s" op.opname (String.concat "," operands)
      (String.concat "," attrs) (String.concat "," results)
  in
  let body =
    List.filter
      (fun op ->
        if has_side_effect op || op.results = [] then true
        else begin
          let k = key op in
          match Hashtbl.find_opt table k with
          | Some prior ->
              List.iter2 (fun r p -> Hashtbl.replace subst r.vid p) op.results prior;
              false
          | None ->
              Hashtbl.replace table k op.results;
              true
        end)
      g.body
  in
  rewrite { g with body } ~subst ~keep:(fun _ -> true)

(* ---- dead-code elimination ---- *)

let dce (g : graph) : graph =
  let changed = ref true in
  let g = ref g in
  while !changed do
    changed := false;
    let uses = use_map !g in
    let body =
      List.filter
        (fun op ->
          if has_side_effect op || is_interface_read op then true
          else begin
            let live =
              List.exists
                (fun r ->
                  match Hashtbl.find_opt uses r.vid with
                  | Some (_ :: _) -> true
                  | _ -> false)
                op.results
            in
            if not live then changed := true;
            live
          end)
        (!g).body
    in
    g := { !g with body }
  done;
  !g

(* Also drop interface *reads* that are completely unused (e.g. a register
   read whose value was optimized away). Writes are always kept. *)
let dce_interface_reads (g : graph) : graph =
  let uses = use_map g in
  let body =
    List.filter
      (fun op ->
        if not (is_interface_read op) then true
        else
          List.exists
            (fun r ->
              match Hashtbl.find_opt uses r.vid with Some (_ :: _) -> true | _ -> false)
            op.results)
      g.body
  in
  { g with body }

(* ---- constant-shift lowering ---- *)

(* A shift by a compile-time-constant amount is pure wiring in hardware:
   rewrite it to extract/concat/replicate so that neither the scheduler
   nor the timing analysis charges barrel-shifter delay or area for it.
   (Rotations expressed as shl|shru, as in the sparkle ISAX, become free.) *)
let lower_constant_shifts (g : graph) : graph =
  let const_of : (int, Bitvec.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun op ->
      match (op.opname, op.results, attr_bv op "value") with
      | "hw.constant", [ r ], Some v -> Hashtbl.replace const_of r.vid v
      | _ -> ())
    (all_ops g);
  let b = builder () in
  (* continue id numbering above the existing graph to keep SSA ids unique *)
  List.iter
    (fun op ->
      b.next_o <- max b.next_o (op.oid + 1);
      List.iter (fun r -> b.next_v <- max b.next_v (r.vid + 1)) op.results)
    (all_ops g);
  (* keep existing value ids stable by tracking a substitution for results *)
  let subst : (int, value) Hashtbl.t = Hashtbl.create 16 in
  let s v = match Hashtbl.find_opt subst v.vid with Some v' -> v' | None -> v in
  let u w = Bitvec.unsigned_ty w in
  let rewrite_shift op kind x k =
    let w = x.vty.Bitvec.width in
    let r = List.hd op.results in
    let replacement =
      if k = 0 then s x
      else if k >= w then begin
        match kind with
        | `Shl | `Shru ->
            add_op1 b "hw.constant" [] (u w) ~attrs:[ ("value", A_bv (Bitvec.zero (u w))) ]
        | `Shrs ->
            let sign =
              add_op1 b "comb.extract" [ s x ] (u 1) ~attrs:[ ("lowBit", A_int (w - 1)) ]
            in
            add_op1 b "comb.replicate" [ sign ] (u w)
      end
      else begin
        match kind with
        | `Shl ->
            let kept =
              add_op1 b "comb.extract" [ s x ] (u (w - k)) ~attrs:[ ("lowBit", A_int 0) ]
            in
            let zeros =
              add_op1 b "hw.constant" [] (u k) ~attrs:[ ("value", A_bv (Bitvec.zero (u k))) ]
            in
            add_op1 b "comb.concat" [ kept; zeros ] (u w)
        | `Shru ->
            let kept =
              add_op1 b "comb.extract" [ s x ] (u (w - k)) ~attrs:[ ("lowBit", A_int k) ]
            in
            let zeros =
              add_op1 b "hw.constant" [] (u k) ~attrs:[ ("value", A_bv (Bitvec.zero (u k))) ]
            in
            add_op1 b "comb.concat" [ zeros; kept ] (u w)
        | `Shrs ->
            let kept =
              add_op1 b "comb.extract" [ s x ] (u (w - k)) ~attrs:[ ("lowBit", A_int k) ]
            in
            let sign =
              add_op1 b "comb.extract" [ s x ] (u 1) ~attrs:[ ("lowBit", A_int (w - 1)) ]
            in
            let rep = add_op1 b "comb.replicate" [ sign ] (u k) in
            add_op1 b "comb.concat" [ rep; kept ] (u w)
      end
    in
    Hashtbl.replace subst r.vid replacement
  in
  List.iter
    (fun op ->
      match (op.opname, op.operands) with
      | ("comb.shl" | "comb.shru" | "comb.shrs"), [ x; amt ]
        when Hashtbl.mem const_of amt.vid ->
          let k =
            match Bitvec.to_int_opt (Hashtbl.find const_of amt.vid) with
            | Some k when k >= 0 -> k
            | _ -> max_int
          in
          if k = max_int then
            b.ops <- { op with operands = List.map s op.operands } :: b.ops
          else
            rewrite_shift op
              (match op.opname with
              | "comb.shl" -> `Shl
              | "comb.shru" -> `Shru
              | _ -> `Shrs)
              x k
      | _ -> b.ops <- { op with operands = List.map s op.operands } :: b.ops)
    g.body;
  (* fresh value ids from the builder may collide with existing ones; remap
     everything through a final rewrite that only applies the subst *)
  { g with body = List.rev b.ops }

(* standard pipeline: fold to fixpoint, share, strip dead logic *)
let optimize ?(fold_rounds = 4) (g : graph) : graph =
  let g = ref g in
  g := fold_constants !g;
  g := lower_constant_shifts !g;
  for _ = 1 to fold_rounds do
    g := fold_constants !g;
    g := cse !g
  done;
  g := dce !g;
  g := dce_interface_reads !g;
  g := dce !g;
  !g
