(* Graphviz (DOT) export of IR graphs and scheduled problems.

   Renders a lil CDFG in the style of Figure 6 of the paper: one node per
   operation labelled with its name (and schedule time when available),
   one edge per SSA dependence. Used by the CLI's --dot option. *)

open Mir

let escape s = String.concat "\\\"" (String.split_on_char '"' s)

(* [time_of] optionally supplies a scheduled start time per op id. *)
let of_graph ?(time_of : (int -> int option) option) (g : graph) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape g.gname));
  Buffer.add_string buf "  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  let producer = Hashtbl.create 64 in
  let ops = all_ops g in
  List.iter
    (fun (op : op) -> List.iter (fun r -> Hashtbl.replace producer r.vid op.oid) op.results)
    ops;
  (* group nodes by scheduled time step when a schedule is available *)
  let clusters : (int, op list) Hashtbl.t = Hashtbl.create 8 in
  let unscheduled = ref [] in
  List.iter
    (fun (op : op) ->
      match Option.bind time_of (fun f -> f op.oid) with
      | Some t -> Hashtbl.replace clusters t (op :: Option.value ~default:[] (Hashtbl.find_opt clusters t))
      | None -> unscheduled := op :: !unscheduled)
    ops;
  let emit_node (op : op) =
    let is_iface = String.length op.opname > 4 && String.sub op.opname 0 4 = "lil." in
    let shape, fill =
      if is_iface then ("box", "lightblue")
      else match op.opname with
        | "hw.constant" -> ("ellipse", "white")
        | _ -> ("box", "lightgrey")
    in
    let label =
      match (op.opname, attr_bv op "value") with
      | "hw.constant", Some v -> Printf.sprintf "%s" (Bitvec.to_string v)
      | _ -> op.opname
    in
    Buffer.add_string buf
      (Printf.sprintf "    n%d [label=\"%s\" shape=%s style=filled fillcolor=%s];\n" op.oid
         (escape label) shape fill)
  in
  let times = Hashtbl.fold (fun t _ acc -> t :: acc) clusters [] |> List.sort compare in
  List.iter
    (fun t ->
      Buffer.add_string buf (Printf.sprintf "  subgraph cluster_t%d {\n    label=\"t = %d\";\n" t t);
      List.iter emit_node (Hashtbl.find clusters t);
      Buffer.add_string buf "  }\n")
    times;
  List.iter emit_node !unscheduled;
  List.iter
    (fun (op : op) ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt producer v.vid with
          | Some src ->
              Buffer.add_string buf
                (Printf.sprintf "  n%d -> n%d [label=\"%%%d:%db\"];\n" src op.oid v.vid
                   v.vty.Bitvec.width)
          | None -> ())
        op.operands)
    ops;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* DOT rendering of a scheduled compile result, Figure 6 style. *)
let of_scheduled (built : 'a) ~(start_time : int -> int option) (g : graph) =
  ignore built;
  of_graph ~time_of:start_time g
