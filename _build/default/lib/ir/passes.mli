(** Optimization passes over lil graphs: constant folding (canonicalization),
   common-subexpression elimination, and dead-code elimination. These mirror
   MLIR's canonicalization infrastructure the paper relies on ("constant
   registers are internalized into the ISAX module and subject to MLIR's
   usual canonicalization patterns"). *)

val has_side_effect : Mir.op -> bool
val is_interface_read : Mir.op -> bool
val fold_constants : Mir.graph -> Mir.graph
val cse : Mir.graph -> Mir.graph
val dce : Mir.graph -> Mir.graph
val dce_interface_reads : Mir.graph -> Mir.graph
val lower_constant_shifts : Mir.graph -> Mir.graph
val optimize : ?fold_rounds:int -> Mir.graph -> Mir.graph
