test/test_bitvec.mli:
