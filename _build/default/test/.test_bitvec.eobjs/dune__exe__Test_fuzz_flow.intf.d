test/test_fuzz_flow.mli:
