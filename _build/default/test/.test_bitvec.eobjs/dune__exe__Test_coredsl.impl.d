test/test_coredsl.ml: Alcotest Array Ast Bitvec Coredsl Elaborate Interp Isax Lexer List Longnail Option Parser Printf QCheck QCheck_alcotest Scaiev String Tast
