test/test_lp.ml: Alcotest Array Bitvec List Lp Printf QCheck QCheck_alcotest String
