test/test_bitvec.ml: Alcotest Bitvec List QCheck QCheck_alcotest Random String
