test/test_scaiev.ml: Alcotest Coredsl Isax List Longnail Option Scaiev String
