test/test_rtl.ml: Alcotest Bitvec Coredsl Ir List Longnail Netlist Option Printf QCheck QCheck_alcotest Rtl Scaiev Sim String Sv_emit
