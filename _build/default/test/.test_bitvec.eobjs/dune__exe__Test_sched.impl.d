test/test_sched.ml: Alcotest Array List Printf QCheck QCheck_alcotest Random Sched String
