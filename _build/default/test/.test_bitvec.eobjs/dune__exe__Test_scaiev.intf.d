test/test_scaiev.mli:
