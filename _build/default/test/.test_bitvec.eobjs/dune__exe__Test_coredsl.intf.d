test/test_coredsl.mli:
