test/test_longnail.mli:
