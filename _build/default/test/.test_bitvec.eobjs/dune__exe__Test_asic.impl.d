test/test_asic.ml: Alcotest Array Asic Bitvec Isax List Longnail Printf Rtl Scaiev String
