test/test_pipeline.ml: Alcotest Bitvec Coredsl Fun Isax Lazy List Longnail Option Printf QCheck QCheck_alcotest Random Riscv Scaiev String
