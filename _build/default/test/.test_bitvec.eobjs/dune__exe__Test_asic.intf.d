test/test_asic.mli:
