test/test_ir.ml: Alcotest Bitvec Comb_eval Coredsl Dot Hashtbl Hlir Ir Isax Lil List Longnail Mir Option Passes Printf QCheck QCheck_alcotest Scaiev String
