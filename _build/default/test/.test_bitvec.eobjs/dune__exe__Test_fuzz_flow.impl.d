test/test_fuzz_flow.ml: Alcotest Bitvec Buffer Coredsl List Longnail Option Printf QCheck QCheck_alcotest Random Scaiev String
