test/test_longnail.ml: Alcotest Asic Bitvec Coredsl Isax List Longnail Option Printf Rtl Scaiev Sched String
