test/test_riscv.ml: Alcotest Array Bitvec Coredsl Fun Isax List Longnail Option Printf QCheck QCheck_alcotest Random Riscv Scaiev String
