test/test_rtl.mli:
