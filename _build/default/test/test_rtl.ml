(* Tests for the RTL layer: netlist validation, the cycle-accurate
   simulator, and SystemVerilog emission. *)

open Rtl

let u w = Bitvec.unsigned_ty w
let bv w v = Bitvec.of_int (u w) v
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let const name w v =
  Netlist.Comb { out = name; width = w; op = "hw.constant"; attrs = [ ("value", Ir.Mir.A_bv (bv w v)) ]; inputs = [] }

(* a 4-bit counter: c <= c + 1 *)
let counter_module =
  {
    Netlist.mod_name = "counter";
    inputs = [];
    outputs = [ { port_name = "count"; port_width = 4; port_signal = "c" } ];
    nodes =
      [
        const "one" 4 1;
        Netlist.Comb { out = "next"; width = 4; op = "comb.add"; attrs = []; inputs = [ "c"; "one" ] };
        Netlist.Reg { out = "c"; width = 4; next = "next"; enable = None; init = Some (bv 4 0) };
      ];
  }

let test_sim_counter () =
  let s = Sim.create counter_module in
  for expect = 0 to 20 do
    Sim.eval s;
    check_int (Printf.sprintf "count at %d" expect) (expect mod 16)
      (Bitvec.to_int (Sim.output s "count"));
    Sim.clock s
  done

let test_sim_stall_enable () =
  (* register with an enable driven by an input *)
  let m =
    {
      Netlist.mod_name = "stallable";
      inputs =
        [
          { Netlist.port_name = "d"; port_width = 8; port_signal = "d" };
          { port_name = "en"; port_width = 1; port_signal = "en" };
        ];
      outputs = [ { port_name = "q"; port_width = 8; port_signal = "q" } ];
      nodes = [ Netlist.Reg { out = "q"; width = 8; next = "d"; enable = Some "en"; init = None } ];
    }
  in
  let s = Sim.create m in
  Sim.cycle s [ ("d", bv 8 0xAA); ("en", bv 1 1) ];
  Sim.eval s;
  check_int "loaded" 0xAA (Bitvec.to_int (Sim.output s "q"));
  Sim.cycle s [ ("d", bv 8 0x55); ("en", bv 1 0) ];
  Sim.eval s;
  check_int "stalled" 0xAA (Bitvec.to_int (Sim.output s "q"));
  Sim.cycle s [ ("d", bv 8 0x55); ("en", bv 1 1) ];
  Sim.eval s;
  check_int "released" 0x55 (Bitvec.to_int (Sim.output s "q"))

let test_sim_rom () =
  let m =
    {
      Netlist.mod_name = "rom";
      inputs = [ { Netlist.port_name = "i"; port_width = 2; port_signal = "i" } ];
      outputs = [ { port_name = "o"; port_width = 8; port_signal = "o" } ];
      nodes = [ Netlist.Rom { out = "o"; width = 8; table = [| bv 8 10; bv 8 20; bv 8 30; bv 8 40 |]; index = "i" } ];
    }
  in
  let s = Sim.create m in
  List.iter
    (fun (i, expect) ->
      Sim.set_input s "i" (bv 2 i);
      Sim.eval s;
      check_int "rom lookup" expect (Bitvec.to_int (Sim.output s "o")))
    [ (0, 10); (1, 20); (2, 30); (3, 40) ]

let test_comb_cycle_detected () =
  let m =
    {
      Netlist.mod_name = "loopy";
      inputs = [];
      outputs = [];
      nodes =
        [
          Netlist.Comb { out = "a"; width = 1; op = "comb.xor"; attrs = []; inputs = [ "b"; "b" ] };
          Netlist.Comb { out = "b"; width = 1; op = "comb.xor"; attrs = []; inputs = [ "a"; "a" ] };
        ];
    }
  in
  try
    Netlist.validate m;
    Alcotest.fail "expected cycle error"
  with Netlist.Netlist_error _ -> ()

let test_undefined_signal_detected () =
  let m =
    {
      Netlist.mod_name = "dangling";
      inputs = [];
      outputs = [ { Netlist.port_name = "o"; port_width = 1; port_signal = "nowhere" } ];
      nodes = [];
    }
  in
  try
    Netlist.validate m;
    Alcotest.fail "expected undefined signal"
  with Netlist.Netlist_error _ -> ()

let test_stats () =
  let st = Netlist.stats counter_module in
  check_int "regs" 1 st.Netlist.n_registers;
  check_int "reg bits" 4 st.Netlist.register_bits;
  check_int "combs" 2 st.Netlist.n_comb_nodes

let test_sv_emission () =
  let sv = Sv_emit.emit counter_module in
  check_bool "module header" true (contains sv "module counter(");
  check_bool "always_ff" true (contains sv "always_ff @(posedge clk)");
  check_bool "reset value" true (contains sv "if (rst)");
  check_bool "assign" true (contains sv "assign next = c + one;");
  check_bool "endmodule" true (contains sv "endmodule")

let test_sv_generated_isax () =
  (* SV emission of a real generated module resembles Figure 5d *)
  let tu = Coredsl.compile_rv32i () in
  let core = Scaiev.Datasheet.vexriscv in
  let addi = Option.get (Coredsl.Tast.find_tinstr tu "ADDI") in
  let f = Longnail.Flow.compile_functionality core tu (`Instr addi) in
  let sv = f.Longnail.Flow.cf_sv in
  check_bool "module named ADDI" true (contains sv "module ADDI(");
  check_bool "instr word port" true (contains sv "instr_word_");
  check_bool "rs1 port" true (contains sv "rs1_");
  check_bool "result port" true (contains sv "res_");
  check_bool "no unmapped ops" true (not (contains sv "lil."))

let test_vcd_trace () =
  let vcd =
    Rtl.Vcd.trace counter_module ~cycles:8 ~drive:(fun _ -> [])
  in
  check_bool "header" true (contains vcd "$timescale 1ns $end");
  check_bool "module scope" true (contains vcd "$scope module counter $end");
  check_bool "declares count wire" true (contains vcd "$var wire 4");
  check_bool "has time marks" true (contains vcd "#0\n");
  check_bool "has vector changes" true (contains vcd "b0001 ");
  (* the counter value changes every cycle: at least 8 time marks *)
  let marks = List.length (String.split_on_char '#' vcd) - 1 in
  check_bool "8 time steps" true (marks >= 8)

(* property: the simulator agrees with direct Comb_eval on random two-input
   expressions *)
let prop_sim_matches_comb_eval =
  QCheck.Test.make ~name:"sim matches comb_eval" ~count:200
    (QCheck.triple (QCheck.int_bound 0xFFFF) (QCheck.int_bound 0xFFFF)
       (QCheck.oneofl [ "comb.add"; "comb.sub"; "comb.mul"; "comb.and"; "comb.or"; "comb.xor"; "comb.icmp_ult" ]))
    (fun (a, b, op) ->
      let w = 16 in
      let rw = if op = "comb.icmp_ult" then 1 else w in
      let m =
        {
          Netlist.mod_name = "t";
          inputs =
            [
              { Netlist.port_name = "a"; port_width = w; port_signal = "a" };
              { port_name = "b"; port_width = w; port_signal = "b" };
            ];
          outputs = [ { port_name = "o"; port_width = rw; port_signal = "o" } ];
          nodes = [ Netlist.Comb { out = "o"; width = rw; op; attrs = []; inputs = [ "a"; "b" ] } ];
        }
      in
      let s = Sim.create m in
      Sim.set_input s "a" (bv w a);
      Sim.set_input s "b" (bv w b);
      Sim.eval s;
      let direct = Ir.Comb_eval.eval ~name:op ~attrs:[] ~ops:[ bv w a; bv w b ] ~result_width:rw in
      Bitvec.equal_value (Sim.output s "o") direct)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_sim_matches_comb_eval ]

let () =
  Alcotest.run "rtl"
    [
      ( "sim",
        [
          Alcotest.test_case "counter" `Quick test_sim_counter;
          Alcotest.test_case "stall enable" `Quick test_sim_stall_enable;
          Alcotest.test_case "rom" `Quick test_sim_rom;
          Alcotest.test_case "vcd trace" `Quick test_vcd_trace;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "comb cycle detected" `Quick test_comb_cycle_detected;
          Alcotest.test_case "undefined signal" `Quick test_undefined_signal_detected;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "sv",
        [
          Alcotest.test_case "counter emission" `Quick test_sv_emission;
          Alcotest.test_case "generated ISAX module" `Quick test_sv_generated_isax;
        ] );
      ("properties", qcheck_cases);
    ]
