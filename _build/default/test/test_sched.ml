(* Tests for the scheduling infrastructure: the Table 2 problem hierarchy,
   chain breaking, the Figure 7 ILP (exact and network backends), and the
   ASAP baseline. *)

module P = Sched.Problem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ot = P.operator_type

(* chain a -> b -> c with unit latencies *)
let simple_chain () =
  let b = P.builder () in
  let o1 = P.add_operation b ~label:"a" (ot "alu" ~latency:1) in
  let o2 = P.add_operation b ~label:"b" (ot "alu" ~latency:1) in
  let o3 = P.add_operation b ~label:"c" (ot "alu" ~latency:1) in
  P.add_dependence b ~src:o1 ~dst:o2;
  P.add_dependence b ~src:o2 ~dst:o3;
  P.finish b

let test_problem_check_input () =
  let p = simple_chain () in
  P.check_input p (* must not raise *)

let test_cycle_detection () =
  let b = P.builder () in
  let o1 = P.add_operation b ~label:"a" (ot "alu") in
  let o2 = P.add_operation b ~label:"b" (ot "alu") in
  P.add_dependence b ~src:o1 ~dst:o2;
  P.add_dependence b ~src:o2 ~dst:o1;
  let p = P.finish b in
  Alcotest.check_raises "cyclic" (P.Problem_error "dependence graph is cyclic") (fun () ->
      P.check_input p)

let test_empty_window_rejected () =
  let b = P.builder () in
  let _ = P.add_operation b ~label:"a" (ot "x" ~earliest:5 ~latest:4) in
  let p = P.finish b in
  (try
     P.check_input p;
     Alcotest.fail "expected error"
   with P.Problem_error _ -> ())

let test_ilp_schedules_chain () =
  let p = simple_chain () in
  check_bool "scheduled" true (Sched.Ilp_scheduler.schedule p = Sched.Ilp_scheduler.Scheduled);
  P.verify p;
  check_int "a" 0 p.P.start_time.(0);
  check_int "b" 1 p.P.start_time.(1);
  check_int "c" 2 p.P.start_time.(2);
  check_int "makespan" 3 (P.makespan p)

let test_windows_respected () =
  let b = P.builder () in
  let o1 = P.add_operation b ~label:"rs1" (ot "RdRS1" ~earliest:2 ~latest:4) in
  let o2 = P.add_operation b ~label:"add" (ot "alu") in
  let o3 = P.add_operation b ~label:"wr" (ot "WrRD" ~earliest:4 ~latest:6) in
  P.add_dependence b ~src:o1 ~dst:o2;
  P.add_dependence b ~src:o2 ~dst:o3;
  let p = P.finish b in
  check_bool "scheduled" true (Sched.Ilp_scheduler.schedule p = Sched.Ilp_scheduler.Scheduled);
  P.verify p;
  check_int "rs1 at earliest" 2 p.P.start_time.(o1);
  check_int "wr at its earliest" 4 p.P.start_time.(o3)

let test_infeasible_windows () =
  let b = P.builder () in
  let o1 = P.add_operation b ~label:"late" (ot "a" ~earliest:5 ~latency:1) in
  let o2 = P.add_operation b ~label:"early" (ot "b" ~latest:3) in
  P.add_dependence b ~src:o1 ~dst:o2;
  let p = P.finish b in
  check_bool "infeasible" true (Sched.Ilp_scheduler.schedule p = Sched.Ilp_scheduler.Infeasible);
  check_bool "asap infeasible too" true
    (Sched.Asap_scheduler.schedule p = Sched.Asap_scheduler.Infeasible)

(* Figure 6: ADDI on a host with instr word in stages 1..4, register file
   2..4, cycle time 3.5 ns; the write must land strictly after the chain. *)
let test_figure6_scenario () =
  let b = P.builder () in
  let iw = P.add_operation b ~label:"lil.instr_word" (ot "RdInstr" ~earliest:1 ~latest:4 ~outgoing_delay:0.1) in
  let ext = P.add_operation b ~label:"comb.extract" (ot "extract" ~outgoing_delay:0.1) in
  let rs1 = P.add_operation b ~label:"lil.read_rs1" (ot "RdRS1" ~earliest:2 ~latest:4 ~outgoing_delay:0.1) in
  let rep = P.add_operation b ~label:"comb.replicate" (ot "replicate" ~outgoing_delay:0.1) in
  let cat = P.add_operation b ~label:"comb.concat" (ot "concat" ~outgoing_delay:0.1) in
  let add = P.add_operation b ~label:"comb.add" (ot "add" ~outgoing_delay:3.4) in
  let wr = P.add_operation b ~label:"lil.write_rd" (ot "WrRD" ~earliest:2 ~outgoing_delay:0.1) in
  P.add_dependence b ~src:iw ~dst:ext;
  P.add_dependence b ~src:ext ~dst:rep;
  P.add_dependence b ~src:rep ~dst:cat;
  P.add_dependence b ~src:cat ~dst:add;
  P.add_dependence b ~src:rs1 ~dst:add;
  P.add_dependence b ~src:add ~dst:wr;
  let p = P.finish ~cycle_time:3.5 b in
  check_bool "scheduled" true (Sched.Ilp_scheduler.schedule p = Sched.Ilp_scheduler.Scheduled);
  P.verify p;
  (* the adder's 3.4 ns output cannot chain into the write in the same
     cycle: a chain breaker pushes write_rd one step later, to time 3 *)
  check_int "rs1 at 2" 2 p.P.start_time.(rs1);
  check_int "write_rd pushed to 3" 3 p.P.start_time.(wr)

let test_chain_breakers () =
  let b = P.builder () in
  let mk lbl d = P.add_operation b ~label:lbl (ot lbl ~outgoing_delay:d) in
  let a = mk "a" 0.5 in
  let c = mk "b" 0.5 in
  let d = mk "c" 0.5 in
  P.add_dependence b ~src:a ~dst:c;
  P.add_dependence b ~src:c ~dst:d;
  let p = P.finish ~cycle_time:1.0 b in
  let breakers = P.chain_breakers p in
  check_int "one breaker" 1 (List.length breakers);
  check_bool "scheduled" true (Sched.Ilp_scheduler.schedule p = Sched.Ilp_scheduler.Scheduled);
  check_bool "split across cycles" true (p.P.start_time.(d) > p.P.start_time.(a))

let test_ilp_beats_asap_on_lifetimes () =
  (* a value with two late consumers: delaying the producer saves two
     lifetimes at the cost of one start time, so the ILP delays it while
     ASAP leaves it at time 0 *)
  let build () =
    let b = P.builder () in
    let producer = P.add_operation b ~label:"producer" (ot "alu") in
    let anchor = P.add_operation b ~label:"anchor" (ot "anchor" ~earliest:5) in
    let c1 = P.add_operation b ~label:"c1" (ot "alu") in
    let c2 = P.add_operation b ~label:"c2" (ot "alu") in
    P.add_dependence b ~src:producer ~dst:c1;
    P.add_dependence b ~src:producer ~dst:c2;
    P.add_dependence b ~src:anchor ~dst:c1;
    P.add_dependence b ~src:anchor ~dst:c2;
    P.finish b
  in
  let p = build () in
  check_bool "ilp" true (Sched.Ilp_scheduler.schedule p = Sched.Ilp_scheduler.Scheduled);
  let ilp_lifetime = P.total_lifetime p in
  check_int "producer delayed to 5" 5 p.P.start_time.(0);
  let p2 = build () in
  check_bool "asap" true (Sched.Asap_scheduler.schedule p2 = Sched.Asap_scheduler.Scheduled);
  let asap_lifetime = P.total_lifetime p2 in
  check_bool
    (Printf.sprintf "ilp lifetime %d < asap %d" ilp_lifetime asap_lifetime)
    true (ilp_lifetime < asap_lifetime)

let test_start_time_in_cycle () =
  let b = P.builder () in
  let a = P.add_operation b ~label:"a" (ot "a" ~outgoing_delay:0.4) in
  let c = P.add_operation b ~label:"b" (ot "b" ~outgoing_delay:0.4) in
  P.add_dependence b ~src:a ~dst:c;
  let p = P.finish ~cycle_time:1.0 b in
  check_bool "ok" true (Sched.Ilp_scheduler.schedule p = Sched.Ilp_scheduler.Scheduled);
  Alcotest.(check (float 1e-9)) "a starts cycle" 0.0 p.P.start_time_in_cycle.(a);
  Alcotest.(check (float 1e-9)) "b chained after a" 0.4 p.P.start_time_in_cycle.(c)

let test_ilp_text_dump () =
  let p = simple_chain () in
  let txt = Sched.Ilp_scheduler.ilp_text p in
  check_bool "has objective" true (String.length txt > 20);
  check_bool "starts with minimize" true (String.sub txt 0 8 = "minimize")

(* ---- property: the network backend matches the exact MILP ---- *)

let random_problem rng =
  let n = 3 + Random.State.int rng 6 in
  let b = P.builder () in
  let ops =
    Array.init n (fun i ->
        let earliest = Random.State.int rng 3 in
        let latest = if Random.State.bool rng then Some (earliest + Random.State.int rng 6) else None in
        let latency = Random.State.int rng 2 in
        P.add_operation b ~label:(Printf.sprintf "o%d" i) (ot "t" ~earliest ?latest ~latency))
  in
  (* random forward edges to keep the graph acyclic *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.int rng 100 < 35 then P.add_dependence b ~src:ops.(i) ~dst:ops.(j)
    done
  done;
  P.finish b

let objective p =
  let st = Array.fold_left ( + ) 0 p.P.start_time in
  st + P.total_lifetime p

let prop_netflow_matches_exact =
  QCheck.Test.make ~name:"netflow backend is as good as exact MILP" ~count:60 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let p1 = random_problem rng in
      let rng = Random.State.make [| seed |] in
      let p2 = random_problem rng in
      let r1 = Sched.Ilp_scheduler.schedule ~backend:Sched.Ilp_scheduler.Netflow p1 in
      let r2 = Sched.Ilp_scheduler.schedule ~backend:Sched.Ilp_scheduler.Exact p2 in
      match (r1, r2) with
      | Sched.Ilp_scheduler.Infeasible, Sched.Ilp_scheduler.Infeasible -> true
      | Sched.Ilp_scheduler.Scheduled, Sched.Ilp_scheduler.Scheduled ->
          P.verify p1;
          P.verify p2;
          objective p1 = objective p2
      | _ -> false)

let prop_asap_minimal =
  QCheck.Test.make ~name:"ASAP start times are componentwise minimal" ~count:60 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let p1 = random_problem rng in
      let rng = Random.State.make [| seed |] in
      let p2 = random_problem rng in
      match
        ( Sched.Asap_scheduler.schedule p1,
          Sched.Ilp_scheduler.schedule ~backend:Sched.Ilp_scheduler.Netflow p2 )
      with
      | Sched.Asap_scheduler.Scheduled, Sched.Ilp_scheduler.Scheduled ->
          Array.for_all2 (fun a b -> a <= b) p1.P.start_time p2.P.start_time
      | Sched.Asap_scheduler.Infeasible, Sched.Ilp_scheduler.Infeasible -> true
      | _ -> false)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_netflow_matches_exact; prop_asap_minimal ]

let () =
  Alcotest.run "sched"
    [
      ( "problem",
        [
          Alcotest.test_case "input constraints" `Quick test_problem_check_input;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "empty window" `Quick test_empty_window_rejected;
          Alcotest.test_case "start time in cycle" `Quick test_start_time_in_cycle;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "ilp chain" `Quick test_ilp_schedules_chain;
          Alcotest.test_case "windows respected" `Quick test_windows_respected;
          Alcotest.test_case "infeasible windows" `Quick test_infeasible_windows;
          Alcotest.test_case "figure 6 scenario" `Quick test_figure6_scenario;
          Alcotest.test_case "chain breakers" `Quick test_chain_breakers;
          Alcotest.test_case "ilp beats asap lifetimes" `Quick test_ilp_beats_asap_on_lifetimes;
          Alcotest.test_case "ilp text dump" `Quick test_ilp_text_dump;
        ] );
      ("properties", qcheck_cases);
    ]
