(* Tests for the RISC-V substrate: the native ISS, cross-validation of the
   CoreDSL-described RV32I against the ISS, the assembler, and the
   cycle-level machine models (including the Section 5.5 case study). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let u32 = Bitvec.unsigned_ty 32
let bv v = Bitvec.of_int u32 v

(* ---- assembler ---- *)

let test_asm_encodings () =
  (* golden encodings cross-checked with a standard assembler *)
  let one s = List.hd (Riscv.Asm.assemble s) in
  check_int "addi x1, x0, 42" 0x02A00093 (one "addi x1, x0, 42");
  check_int "add x3, x1, x2" 0x002081B3 (one "add x3, x1, x2");
  check_int "lw a4, 4(a1)" 0x0045A703 (one "lw a4, 4(a1)");
  check_int "sw a2, 8(a0)" 0x00C52423 (one "sw a2, 8(a0)");
  check_int "lui t0, 0x12345" 0x123452B7 (one "lui t0, 0x12345");
  check_int "srai x5, x6, 3" 0x40335293 (one "srai x5, x6, 3");
  check_int "ebreak" 0x00100073 (one "ebreak")

let test_asm_labels_and_branches () =
  let words = Riscv.Asm.assemble "start:\n addi x1, x1, 1\n bne x1, x2, start\n jal ra, start" in
  check_int "three words" 3 (List.length words);
  (* bne back by 4: imm = -4 *)
  check_int "bne encoding" 0xFE209EE3 (List.nth words 1);
  check_int "jal encoding" 0xFF9FF0EF (List.nth words 2)

let test_asm_pseudo () =
  let words = Riscv.Asm.assemble "li a0, 100000\n nop\n mv a1, a0" in
  (* li with a large value expands to lui + addi *)
  check_int "four words" 4 (List.length words)

let test_asm_errors () =
  (try
     ignore (Riscv.Asm.assemble "frobnicate x1");
     Alcotest.fail "expected error"
   with Riscv.Asm.Asm_error _ -> ());
  try
    ignore (Riscv.Asm.assemble "beq x1, x2, nowhere");
    Alcotest.fail "expected undefined label"
  with Riscv.Asm.Asm_error _ -> ()

(* ---- native ISS ---- *)

let test_iss_basic () =
  let t = Riscv.Iss.create () in
  let words = Riscv.Asm.assemble "li a0, 5\n li a1, 7\n add a2, a0, a1\n ebreak" in
  List.iteri (fun i w -> Riscv.Iss.write_word t (4 * i) w) words;
  Riscv.Iss.step t;
  Riscv.Iss.step t;
  Riscv.Iss.step t;
  check_int "a2" 12 (Riscv.Iss.read_reg t 12)

(* cross-validation: run random short ALU programs through the native ISS
   and the CoreDSL-described RV32I interpreter; states must agree *)
let prop_iss_matches_coredsl =
  let tu = Coredsl.compile_rv32i () in
  QCheck.Test.make ~name:"native ISS matches CoreDSL RV32I" ~count:100 QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rnd n = Random.State.int rng n in
      (* build a random straight-line program over ALU ops and memory *)
      let mnems =
        [|
          (fun () -> Printf.sprintf "addi x%d, x%d, %d" (1 + rnd 15) (rnd 16) (rnd 2048 - 1024));
          (fun () -> Printf.sprintf "add x%d, x%d, x%d" (1 + rnd 15) (rnd 16) (rnd 16));
          (fun () -> Printf.sprintf "sub x%d, x%d, x%d" (1 + rnd 15) (rnd 16) (rnd 16));
          (fun () -> Printf.sprintf "xor x%d, x%d, x%d" (1 + rnd 15) (rnd 16) (rnd 16));
          (fun () -> Printf.sprintf "and x%d, x%d, x%d" (1 + rnd 15) (rnd 16) (rnd 16));
          (fun () -> Printf.sprintf "or x%d, x%d, x%d" (1 + rnd 15) (rnd 16) (rnd 16));
          (fun () -> Printf.sprintf "slt x%d, x%d, x%d" (1 + rnd 15) (rnd 16) (rnd 16));
          (fun () -> Printf.sprintf "sltu x%d, x%d, x%d" (1 + rnd 15) (rnd 16) (rnd 16));
          (fun () -> Printf.sprintf "slli x%d, x%d, %d" (1 + rnd 15) (rnd 16) (rnd 32));
          (fun () -> Printf.sprintf "srli x%d, x%d, %d" (1 + rnd 15) (rnd 16) (rnd 32));
          (fun () -> Printf.sprintf "srai x%d, x%d, %d" (1 + rnd 15) (rnd 16) (rnd 32));
          (fun () -> Printf.sprintf "lui x%d, %d" (1 + rnd 15) (rnd 1048576));
          (* the data region starts above the code so stores cannot
             self-modify the program *)
          (fun () -> Printf.sprintf "sw x%d, %d(x0)" (rnd 16) (1024 + (4 * rnd 64)));
          (fun () -> Printf.sprintf "lw x%d, %d(x0)" (1 + rnd 15) (1024 + (4 * rnd 64)));
          (fun () -> Printf.sprintf "lb x%d, %d(x0)" (1 + rnd 15) (1024 + rnd 256));
          (fun () -> Printf.sprintf "sh x%d, %d(x0)" (rnd 16) (1024 + (2 * rnd 128)));
        |]
      in
      let lines = List.init 25 (fun _ -> mnems.(rnd (Array.length mnems)) ()) in
      let prog = String.concat "\n" lines in
      let words = Riscv.Asm.assemble prog in
      (* native ISS *)
      let iss = Riscv.Iss.create () in
      List.iteri (fun i w -> Riscv.Iss.write_word iss (4 * i) w) words;
      List.iter (fun _ -> Riscv.Iss.step iss) words;
      (* CoreDSL interpreter *)
      let st = Coredsl.Interp.create tu in
      List.iteri
        (fun i w -> Coredsl.Interp.write_mem st "MEM" (4 * i) 4 (bv w))
        words;
      List.iter
        (fun w ->
          match Coredsl.Interp.decode st (bv w) with
          | Some ti -> Coredsl.Interp.exec_instr st ti ~instr_word:(bv w)
          | None -> Alcotest.failf "undecodable word %08x" w)
        words;
      (* compare the full register file *)
      List.for_all
        (fun r ->
          Riscv.Iss.read_reg iss r
          = Bitvec.to_int (Coredsl.Interp.read_regfile st "X" r))
        (List.init 32 Fun.id))

(* the RV32M extension: corner cases against the spec, then random
   programs against the native ISS *)
let test_rv32m_corner_cases () =
  let tu = Coredsl.compile_rv32im () in
  let st = Coredsl.Interp.create tu in
  let exec name fields =
    let ti = Option.get (Coredsl.Tast.find_tinstr tu name) in
    let w = Coredsl.Interp.encode ti (List.map (fun (k, v) -> (k, bv v)) fields) in
    Coredsl.Interp.exec_instr st ti ~instr_word:w
  in
  let setx i v = Coredsl.Interp.write_regfile st "X" i (bv v) in
  let getx i = Bitvec.to_int (Coredsl.Interp.read_regfile st "X" i) in
  (* plain multiply *)
  setx 1 7;
  setx 2 6;
  exec "MUL" [ ("rs1", 1); ("rs2", 2); ("rd", 3) ];
  check_int "7*6" 42 (getx 3);
  (* high half of signed product: -1 * -1 = 1, high word 0 *)
  setx 1 0xFFFFFFFF;
  setx 2 0xFFFFFFFF;
  exec "MULH" [ ("rs1", 1); ("rs2", 2); ("rd", 3) ];
  check_int "mulh(-1,-1)" 0 (getx 3);
  exec "MULHU" [ ("rs1", 1); ("rs2", 2); ("rd", 3) ];
  check_int "mulhu(max,max)" 0xFFFFFFFE (getx 3);
  (* division corner cases from the RISC-V spec *)
  setx 1 17;
  setx 2 0;
  exec "DIV" [ ("rs1", 1); ("rs2", 2); ("rd", 3) ];
  check_int "div by zero" 0xFFFFFFFF (getx 3);
  exec "REM" [ ("rs1", 1); ("rs2", 2); ("rd", 3) ];
  check_int "rem by zero" 17 (getx 3);
  setx 1 0x80000000;
  setx 2 0xFFFFFFFF;
  exec "DIV" [ ("rs1", 1); ("rs2", 2); ("rd", 3) ];
  check_int "min / -1 overflows to min" 0x80000000 (getx 3);
  exec "REM" [ ("rs1", 1); ("rs2", 2); ("rd", 3) ];
  check_int "min %% -1 = 0" 0 (getx 3)

let prop_rv32m_matches_iss =
  let tu = Coredsl.compile_rv32im () in
  QCheck.Test.make ~name:"RV32M matches native ISS" ~count:80 QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rnd n = Random.State.int rng n in
      let mnems = [| "mul"; "mulh"; "mulhsu"; "mulhu"; "div"; "divu"; "rem"; "remu" |] in
      let lines =
        List.init 20 (fun _ ->
            Printf.sprintf "%s x%d, x%d, x%d" mnems.(rnd 8) (1 + rnd 15) (rnd 16) (rnd 16))
      in
      (* seed some interesting register values first *)
      let prog =
        "lui x1, 0x80000
li x2, -1
li x3, 12345
li x4, 0
lui x5, 0xFFFFF
"
        ^ String.concat "
" lines
      in
      let words = Riscv.Asm.assemble prog in
      let iss = Riscv.Iss.create () in
      List.iteri (fun i w -> Riscv.Iss.write_word iss (4 * i) w) words;
      List.iter (fun _ -> Riscv.Iss.step iss) words;
      let st = Coredsl.Interp.create tu in
      List.iteri (fun i w -> Coredsl.Interp.write_mem st "MEM" (4 * i) 4 (bv w)) words;
      List.iter
        (fun w ->
          match Coredsl.Interp.decode st (bv w) with
          | Some ti -> Coredsl.Interp.exec_instr st ti ~instr_word:(bv w)
          | None -> Alcotest.failf "undecodable %08x" w)
        words;
      List.for_all
        (fun r ->
          Riscv.Iss.read_reg iss r = Bitvec.to_int (Coredsl.Interp.read_regfile st "X" r))
        (List.init 32 Fun.id))

(* ---- machine timing ---- *)

let test_machine_runs_program () =
  let tu = Coredsl.compile_rv32i () in
  let m = Riscv.Machine.create ~timing:Riscv.Machine.vexriscv_timing tu in
  let words = Riscv.Asm.assemble "li a0, 5\nli a1, 6\nadd a0, a0, a1\nebreak" in
  Riscv.Machine.load_program m words;
  let cycles = Riscv.Machine.run m in
  check_int "result" 11 (Riscv.Machine.read_gpr m 10);
  check_int "cycles: 3 + ebreak" 4 cycles

let test_machine_memory_and_branch_costs () =
  let tu = Coredsl.compile_rv32i () in
  let m = Riscv.Machine.create ~timing:Riscv.Machine.vexriscv_timing tu in
  let words = Riscv.Asm.assemble "lw a0, 0(zero)\nj skip\nnop\nskip:\nebreak" in
  Riscv.Machine.load_program m words;
  let cycles = Riscv.Machine.run m in
  (* lw = 1+9, j = 1+4, ebreak = 1 *)
  check_int "cycles" 16 cycles

(* the Section 5.5 case study numbers *)
let test_case_study_formulas () =
  let tu = Isax.Registry.compile_by_name "autoinc+zol" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let b1 = Riscv.Case_study.run_baseline ~n:64 in
  let b2 = Riscv.Case_study.run_baseline ~n:256 in
  check_int "baseline checksum" (Riscv.Case_study.expected_sum 64) b1.checksum;
  let a, b = Riscv.Case_study.fit (64, b1.cycles) (256, b2.cycles) in
  check_int "baseline slope 18" 18 a;
  check_bool (Printf.sprintf "baseline const %d ~ 50" b) true (abs (b - 50) <= 5);
  let i1 = Riscv.Case_study.run_isax ~n:64 c in
  let i2 = Riscv.Case_study.run_isax ~n:256 c in
  check_int "isax checksum" (Riscv.Case_study.expected_sum 64) i1.checksum;
  let a2, b2' = Riscv.Case_study.fit (64, i1.cycles) (256, i2.cycles) in
  check_int "isax slope 11" 11 a2;
  check_bool (Printf.sprintf "isax const %d ~ 50" b2') true (abs (b2' - 50) <= 5);
  (* >60% speedup at large n (the paper's headline) *)
  let speedup = float_of_int b2.cycles /. float_of_int i2.cycles in
  check_bool (Printf.sprintf "speedup %.2f > 1.6" speedup) true (speedup > 1.6)

let test_machine_zol_redirect_free () =
  (* a tight ZOL loop executes its body with zero loop overhead *)
  let tu = Isax.Registry.compile_by_name "zol" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let m = Riscv.Machine.of_compiled c in
  let enc = Riscv.Machine.isax_encoder tu in
  (* run 10 iterations of a 2-instruction body *)
  let words =
    Riscv.Asm.assemble ~custom:enc
      "li a0, 0\n.isax setup_zol uimmL=10, uimmS=6\nbody:\naddi a0, a0, 1\naddi a0, a0, 1\nebreak"
  in
  Riscv.Machine.load_program m words;
  let cycles = Riscv.Machine.run m in
  (* Figure 3 semantics: the body falls through once and is re-entered by
     COUNT redirects, so it runs COUNT+1 times *)
  check_int "2*11 increments" 22 (Riscv.Machine.read_gpr m 10);
  (* li + setup + 22 addi + ebreak, zero loop overhead *)
  check_int "cycles" 25 cycles

let test_machine_decoupled_scoreboard () =
  (* a dependent instruction right after SQRT_D stalls until the decoupled
     result commits; an independent one does not *)
  let tu = Isax.Registry.compile_by_name "sqrt_decoupled" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let enc = Riscv.Machine.isax_encoder tu in
  let run prog =
    let m = Riscv.Machine.of_compiled c in
    let words = Riscv.Asm.assemble ~custom:enc prog in
    Riscv.Machine.load_program m words;
    (Riscv.Machine.run m, m)
  in
  let dep_cycles, m1 =
    run "li a1, 16\n.isax SQRT_D rs1=a1, rd=a2\nadd a3, a2, a2\nebreak"
  in
  let indep_cycles, _ =
    run "li a1, 16\n.isax SQRT_D rs1=a1, rd=a2\nadd a3, a4, a4\nebreak"
  in
  check_bool
    (Printf.sprintf "dependent (%d) slower than independent (%d)" dep_cycles indep_cycles)
    true (dep_cycles > indep_cycles);
  (* architecture still correct: sqrt(16 * 2^32) = 4 * 65536 *)
  check_int "sqrt result" (4 * 65536) (Riscv.Machine.read_gpr m1 12)

(* ---- RTL-in-the-loop whole-program verification (Section 5.3) ---- *)

let test_rtl_in_the_loop_case_study () =
  (* the Section 5.5 autoinc+zol program, with every AI_SETUP / AI_LW /
     setup_zol instruction and every zol always-block tick executing
     through the generated RTL; the result must match the interpreter *)
  let tuq = Isax.Registry.compile_by_name "autoinc+zol" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tuq in
  let n = 8 in
  let enc = Riscv.Machine.isax_encoder tuq in
  let words = Riscv.Asm.assemble ~custom:enc (Riscv.Case_study.isax_program n) in
  (* RTL-in-the-loop run *)
  let rl = Riscv.Rtl_loop.create c in
  Riscv.Rtl_loop.write_pc rl 0;
  Riscv.Rtl_loop.load_program rl words;
  (Coredsl.Interp.reg_array rl.Riscv.Rtl_loop.st "X").(2) <- bv 0x8000;
  for i = 0 to n - 1 do
    Coredsl.Interp.write_mem rl.Riscv.Rtl_loop.st "MEM" (0x1000 + (4 * i)) 4 (bv (i + 1))
  done;
  let instret = Riscv.Rtl_loop.run rl in
  check_int "checksum through RTL" (Riscv.Case_study.expected_sum n)
    (Riscv.Rtl_loop.read_gpr rl 10);
  check_bool "executed a plausible number of instructions" true (instret > 2 * n);
  (* compare the complete register file against a pure-interpreter run *)
  let m = Riscv.Machine.of_compiled c in
  Riscv.Machine.write_gpr m 2 0x8000;
  Riscv.Machine.load_program m words;
  for i = 0 to n - 1 do
    Riscv.Machine.store_word m (0x1000 + (4 * i)) (i + 1)
  done;
  ignore (Riscv.Machine.run m);
  List.iter
    (fun r ->
      check_int (Printf.sprintf "x%d matches" r) (Riscv.Machine.read_gpr m r)
        (Riscv.Rtl_loop.read_gpr rl r))
    (List.init 32 Fun.id)

let test_rtl_in_the_loop_sqrt () =
  (* a program mixing base instructions and the decoupled sqrt *)
  let tuq = Isax.Registry.compile_by_name "sqrt_decoupled" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tuq in
  let enc = Riscv.Machine.isax_encoder tuq in
  let words =
    Riscv.Asm.assemble ~custom:enc
      "li a1, 1764
.isax SQRT_D rs1=a1, rd=a2
srli a3, a2, 16
add a4, a3, a3
ebreak"
  in
  let rl = Riscv.Rtl_loop.create c in
  Riscv.Rtl_loop.load_program rl words;
  ignore (Riscv.Rtl_loop.run rl);
  check_int "sqrt(1764) = 42" 42 (Riscv.Rtl_loop.read_gpr rl 13);
  check_int "dependent add" 84 (Riscv.Rtl_loop.read_gpr rl 14)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_iss_matches_coredsl; prop_rv32m_matches_iss ]

let () =
  Alcotest.run "riscv"
    [
      ( "asm",
        [
          Alcotest.test_case "golden encodings" `Quick test_asm_encodings;
          Alcotest.test_case "labels and branches" `Quick test_asm_labels_and_branches;
          Alcotest.test_case "pseudo instructions" `Quick test_asm_pseudo;
          Alcotest.test_case "errors" `Quick test_asm_errors;
        ] );
      ( "iss",
        [
          Alcotest.test_case "basic" `Quick test_iss_basic;
          Alcotest.test_case "rv32m corner cases" `Quick test_rv32m_corner_cases;
        ] );
      ( "machine",
        [
          Alcotest.test_case "runs a program" `Quick test_machine_runs_program;
          Alcotest.test_case "memory/branch costs" `Quick test_machine_memory_and_branch_costs;
          Alcotest.test_case "case study 5.5 formulas" `Quick test_case_study_formulas;
          Alcotest.test_case "zol zero overhead" `Quick test_machine_zol_redirect_free;
          Alcotest.test_case "decoupled scoreboard" `Quick test_machine_decoupled_scoreboard;
        ] );
      ( "rtl-in-the-loop",
        [
          Alcotest.test_case "case study program" `Slow test_rtl_in_the_loop_case_study;
          Alcotest.test_case "sqrt program" `Quick test_rtl_in_the_loop_sqrt;
        ] );
      ("properties", qcheck_cases);
    ]
