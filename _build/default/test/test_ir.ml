(* Tests for the IR layer: Hlir lowering (unrolling, inlining,
   predication), Lil lowering (interface mapping, hwarith legalization),
   and the optimization passes. *)

open Ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile_instr ?(extra_state = "") body =
  let src =
    Printf.sprintf
      {|
import "RV32I.core_desc"
InstructionSet T extends RV32I {
  architectural_state { %s }
  instructions {
    TEST {
      encoding: 12'd0 :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b1111011;
      behavior: { %s }
    }
  }
}
|}
      extra_state body
  in
  let tu = Coredsl.compile ~target:"T" src in
  let ti = Option.get (Coredsl.Tast.find_tinstr tu "TEST") in
  (tu, ti)

let lower ?extra_state body =
  let tu, ti = compile_instr ?extra_state body in
  let hg = Hlir.lower_instruction tu ti in
  Mir.verify hg;
  let lg = Lil.of_hlir tu.elab ~fields:ti.fields hg in
  Mir.verify lg;
  let lg = Passes.optimize lg in
  Mir.verify lg;
  (tu, ti, hg, lg)

let count_ops g name =
  List.length (List.filter (fun (o : Mir.op) -> o.opname = name) (Mir.all_ops g))

(* ---- Hlir ---- *)

let test_addi_shape () =
  (* the running example of Figure 5: X[rd] = X[rs1] + imm *)
  let tu = Coredsl.compile_rv32i () in
  let addi = Option.get (Coredsl.Tast.find_tinstr tu "ADDI") in
  let hg = Hlir.lower_instruction tu addi in
  Mir.verify hg;
  check_int "one get" 1 (count_ops hg "coredsl.get");
  check_int "one set" 1 (count_ops hg "coredsl.set");
  check_int "one add" 1 (count_ops hg "hwarith.add");
  check_bool "has casts" true (count_ops hg "hwarith.cast" >= 1)

let test_loop_unrolling () =
  let _, _, hg, _ =
    lower
      "signed<32> acc = 0; for (int i = 0; i < 4; i += 1) { acc += (signed) X[rs1][i+7:i]; } \
       X[rd] = (unsigned) acc;"
  in
  (* four unrolled additions *)
  check_bool "unrolled adds" true (count_ops hg "hwarith.add" >= 1);
  (* the loop is gone: lowering a constant-bound loop terminates and
     produces a pure dataflow graph *)
  check_int "no loop ops remain" 0 (count_ops hg "scf.for")

let test_loop_fully_constant_folds () =
  (* loop over constants folds to a single constant write *)
  let _, _, _, lg =
    lower "signed<32> acc = 0; for (int i = 0; i < 4; i += 1) { acc += i; } X[rd] = (unsigned) acc;"
  in
  (* 0+1+2+3 = 6 must appear as a constant *)
  let has_six =
    List.exists
      (fun (o : Mir.op) ->
        o.opname = "hw.constant"
        && match Mir.attr_bv o "value" with Some v -> Bitvec.to_int v = 6 | None -> false)
      (Mir.all_ops lg)
  in
  check_bool "constant 6" true has_six

let test_function_inlining_no_muxes () =
  (* a pure helper called under a predicate must not generate per-assignment
     muxes (scope-aware predication) *)
  let tu = Isax.Registry.compile_by_name "sparkle" in
  let ti = Option.get (Coredsl.Tast.find_tinstr tu "ALZ_X") in
  let hg = Hlir.lower_instruction tu ti in
  let lg = Passes.optimize (Lil.of_hlir tu.elab ~fields:ti.fields hg) in
  check_int "no muxes in alzette datapath" 0 (count_ops lg "comb.mux")

let test_if_conversion () =
  let _, _, _, lg = lower "if (X[rs1] > 5) X[rd] = (unsigned<32>)1; else X[rd] = (unsigned<32>)2;" in
  (* both branches merge into one predicated write_rd with a mux *)
  check_int "single write_rd" 1 (count_ops lg "lil.write_rd");
  check_bool "mux present" true (count_ops lg "comb.mux" >= 1)

let test_spawn_attr_propagation () =
  let tu = Isax.Registry.compile_by_name "sqrt_decoupled" in
  let ti = Option.get (Coredsl.Tast.find_tinstr tu "SQRT_D") in
  let hg = Hlir.lower_instruction tu ti in
  let lg = Passes.optimize (Lil.of_hlir tu.elab ~fields:ti.fields hg) in
  let wr = List.find (fun (o : Mir.op) -> o.opname = "lil.write_rd") (Mir.all_ops lg) in
  check_bool "write_rd marked spawn" true (Mir.attr_bool wr "spawn")

let test_write_merging () =
  (* two conditional writes to the same register merge into one *)
  let _, _, _, lg =
    lower ~extra_state:"register unsigned<32> R;"
      "if (X[rs1] > 5) R = X[rs1]; if (X[rs1] > 9) R = (unsigned<32>)0;"
  in
  check_int "one custreg write" 1 (count_ops lg "lil.write_custreg")

let test_read_after_write () =
  (* a read after a write observes the written value: the final value of
     R2 is rs1+1, computed from the written R, not a second read *)
  let _, _, _, lg =
    lower ~extra_state:"register unsigned<32> R; register unsigned<32> R2;"
      "R = (unsigned<32>)(X[rs1] + 1); R2 = R;"
  in
  check_int "only one custreg read (none)" 0 (count_ops lg "lil.read_custreg");
  check_int "two writes" 2 (count_ops lg "lil.write_custreg")

(* ---- Lil ---- *)

let test_lil_interface_mapping () =
  let tu = Coredsl.compile_rv32i () in
  let lw = Option.get (Coredsl.Tast.find_tinstr tu "LW") in
  let hg = Hlir.lower_instruction tu lw in
  let lg = Passes.optimize (Lil.of_hlir tu.elab ~fields:lw.fields hg) in
  check_int "read_rs1" 1 (count_ops lg "lil.read_rs1");
  check_int "read_mem" 1 (count_ops lg "lil.read_mem");
  check_int "write_rd" 1 (count_ops lg "lil.write_rd");
  Lil.validate_single_use lg

let test_lil_rejects_arbitrary_x_index () =
  let tu, ti = compile_instr "X[5] = (unsigned<32>)1;" in
  let hg = Hlir.lower_instruction tu ti in
  (try
     ignore (Lil.of_hlir tu.elab ~fields:ti.fields hg);
     Alcotest.fail "expected lil error"
   with Lil.Lil_error _ -> ())

let test_lil_single_use_enforcement () =
  (* two loads from different addresses exceed the single RdMem budget *)
  let tu, ti = compile_instr "X[rd] = (unsigned<32>)(MEM[X[rs1]] + MEM[(unsigned<32>)(X[rs1]+100)]);" in
  let hg = Hlir.lower_instruction tu ti in
  let lg = Passes.optimize (Lil.of_hlir tu.elab ~fields:ti.fields hg) in
  (try
     Lil.validate_single_use lg;
     Alcotest.fail "expected single-use violation"
   with Lil.Lil_error _ -> ())

let test_legalization_sign_extension () =
  (* signed cast becomes replicate + concat, like Figure 5c *)
  let tu = Coredsl.compile_rv32i () in
  let addi = Option.get (Coredsl.Tast.find_tinstr tu "ADDI") in
  let hg = Hlir.lower_instruction tu addi in
  let lg = Passes.optimize (Lil.of_hlir tu.elab ~fields:addi.fields hg) in
  check_bool "replicate" true (count_ops lg "comb.replicate" >= 1);
  check_bool "concat" true (count_ops lg "comb.concat" >= 1);
  check_int "one comb.add" 1 (count_ops lg "comb.add")

(* ---- passes ---- *)

let test_cse_dedups_reads () =
  (* X[rs1] read twice collapses to one read_rs1 *)
  let _, _, _, lg = lower "X[rd] = (unsigned<32>)(X[rs1] + X[rs1]);" in
  check_int "one rs1 read" 1 (count_ops lg "lil.read_rs1")

let test_dce_removes_dead_logic () =
  let _, _, _, lg = lower "unsigned<64> dead = X[rs1] * X[rs1]; X[rd] = X[rs1];" in
  check_int "dead multiply removed" 0 (count_ops lg "comb.mul")

let test_constant_fold () =
  let _, _, _, lg = lower "X[rd] = (unsigned<32>)(2 + 3);" in
  check_int "no adds" 0 (count_ops lg "comb.add")

let test_constant_shift_lowering () =
  let _, _, _, lg = lower "X[rd] = (unsigned<32>)(X[rs1] << 3);" in
  check_int "no shifter" 0 (count_ops lg "comb.shl");
  check_bool "wiring instead" true (count_ops lg "comb.concat" >= 1)

let test_dynamic_shift_stays () =
  let _, _, _, lg =
    lower
      ~extra_state:"register unsigned<32> AMT;"
      "X[rd] = (unsigned<32>)(X[rs1] << (AMT & 31));"
  in
  check_int "real shifter" 1 (count_ops lg "comb.shl")

let test_dot_export () =
  let tu = Coredsl.compile_rv32i () in
  let addi = Option.get (Coredsl.Tast.find_tinstr tu "ADDI") in
  let hg = Hlir.lower_instruction tu addi in
  let lg = Passes.optimize (Lil.of_hlir tu.elab ~fields:addi.fields hg) in
  let dot = Dot.of_graph lg in
  let contains needle =
    let nl = String.length needle and hl = String.length dot in
    let rec go i = i + nl <= hl && (String.sub dot i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "digraph" true (contains "digraph \"ADDI\"");
  check_bool "interface node" true (contains "lil.read_rs1");
  check_bool "edges with widths" true (contains ":34b");
  (* with a schedule, nodes are clustered by time step *)
  let core = Scaiev.Datasheet.vexriscv in
  let f = Longnail.Flow.compile_functionality core tu (`Instr addi) in
  let dot2 =
    Dot.of_graph
      ~time_of:(fun oid ->
        try Some (Longnail.Sched_build.start_time f.cf_built
                    (List.find (fun (o : Mir.op) -> o.oid = oid) (Mir.all_ops f.cf_lil)))
        with _ -> None)
      f.cf_lil
  in
  let contains2 needle =
    let nl = String.length needle and hl = String.length dot2 in
    let rec go i = i + nl <= hl && (String.sub dot2 i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "clustered by time" true (contains2 "subgraph cluster_t")

(* semantics preservation: optimized vs unoptimized graph agree when
   evaluated on random inputs through the comb interpreter *)
let eval_graph (g : Mir.graph) ~(inputs : (string * Bitvec.t) list) =
  (* evaluate all comb ops; interface reads take values from [inputs] *)
  let values : (int, Bitvec.t) Hashtbl.t = Hashtbl.create 64 in
  let u w = Bitvec.unsigned_ty w in
  let result = ref None in
  List.iter
    (fun (op : Mir.op) ->
      let set v x = Hashtbl.replace values v.Mir.vid x in
      let get v = Hashtbl.find values v.Mir.vid in
      match op.Mir.opname with
      | "lil.instr_word" -> set (List.hd op.results) (List.assoc "instr_word" inputs)
      | "lil.read_rs1" -> set (List.hd op.results) (List.assoc "rs1" inputs)
      | "lil.read_rs2" -> set (List.hd op.results) (List.assoc "rs2" inputs)
      | "lil.read_pc" -> set (List.hd op.results) (List.assoc "pc" inputs)
      | "lil.write_rd" -> result := Some (get (List.hd op.operands))
      | "lil.sink" -> ()
      | name when Comb_eval.is_comb name ->
          let r = List.hd op.results in
          set r
            (Comb_eval.eval ~name ~attrs:op.attrs
               ~ops:(List.map (fun v -> Bitvec.cast (u v.Mir.vty.Bitvec.width) (get v)) op.operands)
               ~result_width:r.Mir.vty.Bitvec.width)
      | other -> Alcotest.failf "eval_graph: unsupported op %s" other)
    g.Mir.body;
  !result

let prop_optimize_preserves_semantics =
  QCheck.Test.make ~name:"optimize preserves dotprod semantics" ~count:100
    (QCheck.pair (QCheck.int_bound 0xFFFFFF) (QCheck.int_bound 0xFFFFFF)) (fun (a, b) ->
      let tu = Isax.Registry.compile_by_name "dotprod" in
      let ti = Option.get (Coredsl.Tast.find_tinstr tu "DOTP") in
      let hg = Hlir.lower_instruction tu ti in
      let raw = Lil.of_hlir tu.elab ~fields:ti.fields hg in
      let opt = Passes.optimize raw in
      let u32 = Bitvec.unsigned_ty 32 in
      let inputs =
        [
          ("instr_word", Bitvec.of_int u32 0x0020_80EB);
          ("rs1", Bitvec.of_int u32 a);
          ("rs2", Bitvec.of_int u32 b);
        ]
      in
      match (eval_graph raw ~inputs, eval_graph opt ~inputs) with
      | Some x, Some y -> Bitvec.equal_value x y
      | _ -> false)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_optimize_preserves_semantics ]

let () =
  Alcotest.run "ir"
    [
      ( "hlir",
        [
          Alcotest.test_case "ADDI shape (fig 5b)" `Quick test_addi_shape;
          Alcotest.test_case "loop unrolling" `Quick test_loop_unrolling;
          Alcotest.test_case "constant loop folds" `Quick test_loop_fully_constant_folds;
          Alcotest.test_case "inlining without muxes" `Quick test_function_inlining_no_muxes;
          Alcotest.test_case "if conversion" `Quick test_if_conversion;
          Alcotest.test_case "spawn attribute" `Quick test_spawn_attr_propagation;
          Alcotest.test_case "write merging" `Quick test_write_merging;
          Alcotest.test_case "read after write" `Quick test_read_after_write;
        ] );
      ( "lil",
        [
          Alcotest.test_case "interface mapping" `Quick test_lil_interface_mapping;
          Alcotest.test_case "arbitrary X index rejected" `Quick test_lil_rejects_arbitrary_x_index;
          Alcotest.test_case "single-use enforcement" `Quick test_lil_single_use_enforcement;
          Alcotest.test_case "sign-extension legalization" `Quick test_legalization_sign_extension;
        ] );
      ( "passes",
        [
          Alcotest.test_case "cse dedups reads" `Quick test_cse_dedups_reads;
          Alcotest.test_case "dce removes dead logic" `Quick test_dce_removes_dead_logic;
          Alcotest.test_case "constant folding" `Quick test_constant_fold;
          Alcotest.test_case "constant shift lowering" `Quick test_constant_shift_lowering;
          Alcotest.test_case "dynamic shift stays" `Quick test_dynamic_shift_stays;
          Alcotest.test_case "dot export" `Quick test_dot_export;
        ] );
      ("properties", qcheck_cases);
    ]
