(* Quickstart: define a custom instruction in CoreDSL, compile it with
   Longnail for a host core, and watch the generated RTL compute.

   Run with:  dune exec examples/quickstart.exe *)

(* A minimal ISAX: MINU rd, rs1, rs2 computes the unsigned minimum. *)
let source =
  {|
import "RV32I.core_desc"

InstructionSet X_MINU extends RV32I {
  instructions {
    MINU {
      encoding: 7'd3 :: rs2[4:0] :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b0001011;
      behavior: {
        if (rd != 0) X[rd] = (X[rs1] < X[rs2]) ? X[rs1] : X[rs2];
      }
    }
  }
}
|}

let u32 = Bitvec.unsigned_ty 32
let bv = Bitvec.of_int u32

let () =
  (* 1. parse, elaborate and type-check the CoreDSL description *)
  let tu = Coredsl.compile ~target:"X_MINU" source in
  Printf.printf "compiled instruction set with %d instructions (RV32I + MINU)\n"
    (List.length tu.Coredsl.Tast.tinstrs);

  (* 2. run Longnail against a host core's virtual datasheet *)
  let core = Scaiev.Datasheet.vexriscv in
  let c = Longnail.Flow.compile core tu in
  let f = Option.get (Longnail.Flow.find_func c "MINU") in
  Printf.printf "scheduled for %s: execution mode %s, last stage %d\n" core.core_name
    (Scaiev.Config.mode_to_string f.cf_mode)
    f.cf_hw.Longnail.Hwgen.max_stage;

  (* 3. the two Longnail outputs: SystemVerilog and the SCAIE-V config *)
  print_endline "\n--- generated SystemVerilog ---";
  print_endline f.cf_sv;
  print_endline "--- SCAIE-V configuration ---";
  print_string c.config_yaml;

  (* 4. execute one instruction in the golden interpreter... *)
  let ti = Option.get (Coredsl.Tast.find_tinstr tu "MINU") in
  let word = Coredsl.Interp.encode ti [ ("rs1", bv 1); ("rs2", bv 2); ("rd", bv 3) ] in
  let st = Coredsl.Interp.create tu in
  Coredsl.Interp.write_regfile st "X" 1 (bv 1234);
  Coredsl.Interp.write_regfile st "X" 2 (bv 777);
  Coredsl.Interp.exec_instr st ti ~instr_word:word;
  let golden = Coredsl.Interp.read_regfile st "X" 3 in

  (* ...and through the generated RTL, cycle by cycle *)
  let resp =
    Longnail.Cosim.run f
      {
        Longnail.Cosim.default_stimulus with
        instr_word = Some word;
        rs1 = Some (bv 1234);
        rs2 = Some (bv 777);
      }
  in
  (match resp.rd_write with
  | Some (data, true) ->
      Printf.printf "\nmin(1234, 777): interpreter says %s, RTL says %s -> %s\n"
        (Bitvec.to_string golden) (Bitvec.to_string data)
        (if Bitvec.equal_value golden data then "MATCH" else "MISMATCH")
  | _ -> print_endline "RTL produced no result!")
