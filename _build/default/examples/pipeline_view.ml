(* Watch the extended core execute: a cycle-by-cycle stage diagram of the
   structural pipeline running a zero-overhead loop, with the ZOL
   always-block RTL redirecting the fetch and the setup instruction's
   custom-register writes happening in their scheduled stage.

   Run with:  dune exec examples/pipeline_view.exe *)

let () =
  let tu = Isax.Registry.compile_by_name "zol" in
  let c = Longnail.Flow.compile Scaiev.Datasheet.vexriscv tu in
  let enc = Riscv.Machine.isax_encoder tu in
  let words =
    Riscv.Asm.assemble ~custom:enc
      "li a0, 0\n.isax setup_zol uimmL=2, uimmS=6\nbody:\naddi a0, a0, 1\naddi a0, a0, 2\nebreak"
  in
  let p = Riscv.Pipeline.create c in
  Riscv.Pipeline.load_program p words;
  let nstages = Array.length p.Riscv.Pipeline.stages - 1 in
  Printf.printf "structural pipeline, %d stages; ZOL body of 2 instructions, 3 iterations\n\n"
    nstages;
  Printf.printf "%5s  %-10s" "cycle" "fetch";
  for s = 1 to nstages do
    Printf.printf " | %-9s" (Printf.sprintf "stage %d" s)
  done;
  Printf.printf " | COUNT\n%s\n" (String.make (18 + (12 * nstages) + 8) '-');
  let running = ref true in
  while !running do
    let fetch = Printf.sprintf "0x%02x" p.Riscv.Pipeline.fetch_pc in
    running := Riscv.Pipeline.step p;
    if !running then begin
      Printf.printf "%5d  %-10s" p.Riscv.Pipeline.cycles fetch;
      for s = 1 to nstages do
        Printf.printf " | %-9s"
          (match p.Riscv.Pipeline.stages.(s) with
          | Some sl -> sl.Riscv.Pipeline.s_ti.Coredsl.Tast.ti_name
          | None -> ".")
      done;
      Printf.printf " | %s\n"
        (Bitvec.to_string (Coredsl.Interp.read_reg p.Riscv.Pipeline.st "COUNT"))
    end
  done;
  Printf.printf "\nresult a0 = %d (3 iterations x (1+2))\n" (Riscv.Pipeline.read_gpr p 10);
  assert (Riscv.Pipeline.read_gpr p 10 = 9)
