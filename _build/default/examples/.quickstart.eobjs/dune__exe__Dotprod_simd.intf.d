examples/dotprod_simd.mli:
