examples/quickstart.ml: Bitvec Coredsl List Longnail Option Printf Scaiev
