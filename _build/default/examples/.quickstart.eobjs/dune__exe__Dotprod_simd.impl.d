examples/dotprod_simd.ml: Asic Bitvec Coredsl Isax List Longnail Option Printf Riscv Scaiev
