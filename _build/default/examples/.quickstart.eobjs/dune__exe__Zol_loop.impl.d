examples/zol_loop.ml: Bitvec Coredsl Isax List Longnail Option Printf Riscv Scaiev
