examples/pipeline_view.mli:
