examples/pipeline_view.ml: Array Bitvec Coredsl Isax Longnail Printf Riscv Scaiev String
