examples/sqrt_cordic.ml: Asic Isax List Longnail Option Printf Riscv Scaiev
