examples/zol_loop.mli:
