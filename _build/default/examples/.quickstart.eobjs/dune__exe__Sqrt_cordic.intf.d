examples/sqrt_cordic.mli:
