examples/quickstart.mli:
