(* The Figure 3 ISAX: zero-overhead loops via custom registers and an
   always-block.

   Shows the generated SCAIE-V configuration (Figure 8), co-simulates one
   evaluation of the always-block, and measures the loop overhead saved on
   the cycle-level VexRiscv model.

   Run with:  dune exec examples/zol_loop.exe *)

let u32 = Bitvec.unsigned_ty 32
let bv = Bitvec.of_int u32

let () =
  let tu = Isax.Registry.compile_by_name "zol" in
  let core = Scaiev.Datasheet.vexriscv in
  let c = Longnail.Flow.compile core tu in

  print_endline "SCAIE-V configuration generated for the ZOL ISAX (cf. Figure 8):\n";
  print_string c.config_yaml;

  (* one tick of the always-block in the generated RTL: at END_PC with a
     non-zero counter it redirects the PC and decrements the counter *)
  let f = Option.get (Longnail.Flow.find_func c "zol") in
  let resp =
    Longnail.Cosim.run f
      {
        Longnail.Cosim.default_stimulus with
        pc = Some (bv 0x10A);
        custreg =
          (fun reg _ ->
            match reg with
            | "COUNT" -> bv 3
            | "START_PC" -> bv 0x104
            | "END_PC" -> bv 0x10A
            | _ -> bv 0);
      }
  in
  print_endline "\none always-block evaluation at PC = END_PC with COUNT = 3:";
  (match resp.pc_write with
  | Some (pc, true) -> Printf.printf "  WrPC    <- %s (valid)\n" (Bitvec.to_hex_string pc)
  | _ -> print_endline "  no PC redirect!");
  List.iter
    (fun (w : Longnail.Cosim.custreg_write) ->
      if w.cw_valid then
        Printf.printf "  Wr%-6s <- %s (valid)\n" w.cw_reg (Bitvec.to_hex_string w.cw_data))
    resp.custreg_writes;

  (* measure the saved loop overhead: the same 3-instruction body run with
     a conventional counted loop vs. under ZOL control *)
  let n = 100 in
  let conventional =
    Printf.sprintf
      {|
  li a0, 0
  li a2, %d
loop:
  addi a0, a0, 1
  addi a0, a0, 2
  addi a0, a0, 3
  addi a2, a2, -1
  bnez a2, loop
  ebreak
|}
      n
  in
  let with_zol =
    (* Figure 3 semantics: the body falls through once, then COUNT
       redirects re-enter it; uimmL = n-1 gives n total iterations *)
    Printf.sprintf
      {|
  li a0, 0
  .isax setup_zol uimmL=%d, uimmS=8
body:
  addi a0, a0, 1
  addi a0, a0, 2
  addi a0, a0, 3
  ebreak
|}
      (n - 1)
  in
  let run prog isax =
    let m =
      if isax then Riscv.Machine.of_compiled c
      else Riscv.Machine.create ~timing:Riscv.Machine.vexriscv_timing (Coredsl.compile_rv32i ())
    in
    let enc = if isax then Some (Riscv.Machine.isax_encoder tu) else None in
    Riscv.Machine.load_program m (Riscv.Asm.assemble ?custom:enc prog);
    let cycles = Riscv.Machine.run m in
    (cycles, Riscv.Machine.read_gpr m 10)
  in
  let c1, s1 = run conventional false in
  let c2, s2 = run with_zol true in
  assert (s1 = s2);
  Printf.printf "\n%d iterations of a 3-instruction body (result %d):\n" n s1;
  Printf.printf "  conventional loop (addi + bnez): %5d cycles\n" c1;
  Printf.printf "  zero-overhead loop:              %5d cycles\n" c2;
  Printf.printf "  loop-control overhead removed:   %5d cycles (%.0f%%)\n" (c1 - c2)
    (100.0 *. float_of_int (c1 - c2) /. float_of_int c1)
