(* The benchmark ISAXes of Table 3, as CoreDSL sources.

   Each source imports the built-in RV32I base description and extends it.
   The encodings use the RISC-V custom-0 (0001011) and custom-1 (0101011)
   opcode spaces, with disjoint funct3 values so that any subset of ISAXes
   can be combined into one core without encoding conflicts. *)

(* textual substitution helper for deriving the decoupled sqrt variant *)
let replace_all s ~needle ~by =
  let nl = String.length needle in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i <= String.length s - nl do
    if String.sub s !i nl = needle then begin
      Buffer.add_string buf by;
      i := !i + nl
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub s !i (String.length s - !i));
  Buffer.contents buf

(* Figure 1: 4x8-bit SIMD dot product. *)
let dotprod =
  {|
import "RV32I.core_desc"

InstructionSet X_DOTP extends RV32I {
  instructions {
    DOTP {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        signed<32> res = 0;
        for (int i = 0; i < 32; i += 8) {
          signed<16> prod = (signed) X[rs1][i+7:i] * (signed) X[rs2][i+7:i];
          res += prod;
        }
        X[rd] = (unsigned) res;
      }
    }
  }
}
|}

(* Auto-incrementing load/store with a custom address register. *)
let autoinc =
  {|
import "RV32I.core_desc"

InstructionSet X_AUTOINC extends RV32I {
  architectural_state {
    register unsigned<32> ADDR;
  }
  instructions {
    AI_SETUP {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: 5'b00000 :: 7'b0101011;
      behavior: { ADDR = (unsigned<32>)(X[rs1] + (signed<12>)imm); }
    }
    AI_LW {
      encoding: 12'd0 :: 5'b00000 :: 3'b001 :: rd[4:0] :: 7'b0101011;
      behavior: {
        if (rd != 0) X[rd] = MEM[ADDR+3:ADDR];
        ADDR = (unsigned<32>)(ADDR + 4);
      }
    }
    AI_SW {
      encoding: 7'd0 :: rs2[4:0] :: 5'b00000 :: 3'b010 :: 5'b00000 :: 7'b0101011;
      behavior: {
        MEM[ADDR+3:ADDR] = X[rs2];
        ADDR = (unsigned<32>)(ADDR + 4);
      }
    }
  }
}
|}

(* Indirect jump: read the next PC from main memory. *)
let ijmp =
  {|
import "RV32I.core_desc"

InstructionSet X_IJMP extends RV32I {
  instructions {
    IJMP {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b100 :: 5'b00000 :: 7'b0001011;
      behavior: {
        unsigned<32> addr = (unsigned<32>)(X[rs1] + (signed<12>)imm);
        PC = MEM[addr+3:addr];
      }
    }
  }
}
|}

(* AES SubBytes on a full word via a constant S-Box ROM. *)
let sbox =
  {|
import "RV32I.core_desc"

InstructionSet X_SBOX extends RV32I {
  architectural_state {
    const unsigned<8> SBOX[256] = {
      0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
      0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
      0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
      0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
      0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
      0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
      0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
      0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
      0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
      0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
      0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
      0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
      0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
      0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
      0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
      0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16
    };
  }
  instructions {
    SUBBYTES {
      encoding: 12'd0 :: rs1[4:0] :: 3'b001 :: rd[4:0] :: 7'b0001011;
      behavior: {
        if (rd != 0)
          X[rd] = SBOX[X[rs1][31:24]] :: SBOX[X[rs1][23:16]]
               :: SBOX[X[rs1][15:8]] :: SBOX[X[rs1][7:0]];
      }
    }
  }
}
|}

(* One Alzette ARX-box of the SPARKLE suite (lightweight post-quantum
   cryptography), split into two R-type instructions returning the x and y
   halves. Demonstrates bit manipulation and helper functions. *)
let sparkle =
  {|
import "RV32I.core_desc"

InstructionSet X_SPARKLE extends RV32I {
  functions {
    unsigned<32> ror(unsigned<32> x, unsigned<32> n) {
      return (unsigned<32>)((x >> n) | (x << (unsigned<32>)(32 - n)));
    }
    unsigned<32> alzette_x(unsigned<32> x0, unsigned<32> y0, unsigned<32> c) {
      unsigned<32> x = x0;
      unsigned<32> y = y0;
      x = (unsigned<32>)(x + ror(y, 31)); y = (unsigned<32>)(y ^ ror(x, 24)); x = (unsigned<32>)(x ^ c);
      x = (unsigned<32>)(x + ror(y, 17)); y = (unsigned<32>)(y ^ ror(x, 17)); x = (unsigned<32>)(x ^ c);
      x = (unsigned<32>)(x + y);          y = (unsigned<32>)(y ^ ror(x, 31)); x = (unsigned<32>)(x ^ c);
      x = (unsigned<32>)(x + ror(y, 24)); y = (unsigned<32>)(y ^ ror(x, 16)); x = (unsigned<32>)(x ^ c);
      return x;
    }
    unsigned<32> alzette_y(unsigned<32> x0, unsigned<32> y0, unsigned<32> c) {
      unsigned<32> x = x0;
      unsigned<32> y = y0;
      x = (unsigned<32>)(x + ror(y, 31)); y = (unsigned<32>)(y ^ ror(x, 24)); x = (unsigned<32>)(x ^ c);
      x = (unsigned<32>)(x + ror(y, 17)); y = (unsigned<32>)(y ^ ror(x, 17)); x = (unsigned<32>)(x ^ c);
      x = (unsigned<32>)(x + y);          y = (unsigned<32>)(y ^ ror(x, 31)); x = (unsigned<32>)(x ^ c);
      x = (unsigned<32>)(x + ror(y, 24)); y = (unsigned<32>)(y ^ ror(x, 16)); x = (unsigned<32>)(x ^ c);
      return y;
    }
  }
  instructions {
    ALZ_X {
      encoding: 7'd1 :: rs2[4:0] :: rs1[4:0] :: 3'b010 :: rd[4:0] :: 7'b0001011;
      behavior: { if (rd != 0) X[rd] = alzette_x(X[rs1], X[rs2], 0xb7e15162); }
    }
    ALZ_Y {
      encoding: 7'd2 :: rs2[4:0] :: rs1[4:0] :: 3'b010 :: rd[4:0] :: 7'b0001011;
      behavior: { if (rd != 0) X[rd] = alzette_y(X[rs1], X[rs2], 0xb7e15162); }
    }
  }
}
|}

(* Fix-point square root, 32 shift-subtract iterations (the paper's CORDIC
   stand-in): computes floor(sqrt(x * 2^32)), i.e. a Q16.16 root. The
   tightly-coupled variant runs inside the stalled pipeline... *)
let sqrt_body =
  {|
        unsigned<64> v = X[rs1] :: 32'd0;
        unsigned<32> q = 0;
        unsigned<34> r = 0;
        for (int i = 31; i >= 0; --i) {
          r = (unsigned<34>)((r :: 2'd0) | v[2*i+1 : 2*i]);
          unsigned<34> t = q :: 2'd1;
          if (r >= t) {
            r = (unsigned<34>)(r - t);
            q = (unsigned<32>)(q :: 1'b1);
          } else {
            q = (unsigned<32>)(q :: 1'b0);
          }
        }
|}

let sqrt_tightly =
  Printf.sprintf
    {|
import "RV32I.core_desc"

InstructionSet X_SQRT_T extends RV32I {
  instructions {
    SQRT {
      encoding: 12'd0 :: rs1[4:0] :: 3'b011 :: rd[4:0] :: 7'b0001011;
      behavior: {
%s
        if (rd != 0) X[rd] = q;
      }
    }
  }
}
|}
    sqrt_body

(* ... while the decoupled variant wraps the long-running part in a
   spawn-block (Figure 4), letting independent instructions overtake. *)
let sqrt_decoupled =
  Printf.sprintf
    {|
import "RV32I.core_desc"

InstructionSet X_SQRT_D extends RV32I {
  instructions {
    SQRT_D {
      encoding: 12'd0 :: rs1[4:0] :: 3'b101 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<32> op = X[rs1];
        spawn {
%s
          if (rd != 0) X[rd] = q;
        }
      }
    }
  }
}
|}
    (* inside the spawn block the operand was latched into 'op' *)
    (replace_all sqrt_body ~needle:"X[rs1]" ~by:"op")

(* Figure 3: zero-overhead loop via custom registers and an always-block. *)
let zol =
  {|
import "RV32I.core_desc"

InstructionSet X_ZOL extends RV32I {
  architectural_state {
    register unsigned<32> START_PC, END_PC, COUNT;
  }
  instructions {
    setup_zol {
      encoding: uimmL[11:0] :: uimmS[4:0] :: 3'b110 :: 5'b00000 :: 7'b0101011;
      behavior: {
        START_PC = (unsigned<32>)(PC + 4);
        END_PC = (unsigned<32>)(PC + (uimmS :: 1'b0));
        COUNT = uimmL;
      }
    }
  }
  always {
    zol {
      if (COUNT != 0 && END_PC == PC) {
        PC = START_PC;
        --COUNT;
      }
    }
  }
}
|}

(* Byte-wise checksum written naively at word width.  The accumulator is
   declared unsigned<32> even though four bytes can never exceed 11 bits,
   so the datapath is over-wide by construction: the bit-level analysis
   proves the leading bits constant and --narrow=on shrinks the adders. *)
let chksum =
  {|
import "RV32I.core_desc"

InstructionSet X_CHKSUM extends RV32I {
  instructions {
    CHKSUM {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<32> sum = 0;
        for (int i = 0; i < 32; i += 8) {
          sum = (unsigned<32>)(sum + X[rs1][i+7:i] + X[rs2][i+7:i]);
        }
        sum = (unsigned<32>)((sum & 0x0000FFFF) + (sum >> 16));
        if (rd != 0) X[rd] = sum;
      }
    }
  }
}
|}

(* Combination used in the Section 5.5 case study. *)
let autoinc_zol =
  {|
import "X_AUTOINC.core_desc"
import "X_ZOL.core_desc"

Core AUTOINC_ZOL provides X_AUTOINC, X_ZOL {
}
|}
