(* Registry of the benchmark ISAXes (Table 3 of the paper).

   Each entry names the CoreDSL target to elaborate, carries the source
   text, and records the description/demonstrates columns of Table 3 so the
   bench harness can regenerate the table. *)

type entry = {
  name : string;  (* Table 3 row name *)
  target : string;  (* Core or InstructionSet to elaborate *)
  import_name : string;  (* path under which other ISAXes can import it *)
  source : string;
  description : string;
  demonstrates : string;
}

let all : entry list =
  [
    {
      name = "autoinc";
      target = "X_AUTOINC";
      import_name = "X_AUTOINC.core_desc";
      source = Sources.autoinc;
      description = "Auto-incrementing load/store instructions and setup, using a custom register to track the current address";
      demonstrates = "Custom register and main memory access";
    };
    {
      name = "dotprod";
      target = "X_DOTP";
      import_name = "X_DOTP.core_desc";
      source = Sources.dotprod;
      description = "4x8bit dot product (Figure 1)";
      demonstrates = "Use of loop and bit ranges to concisely describe SIMD behavior";
    };
    {
      name = "ijmp";
      target = "X_IJMP";
      import_name = "X_IJMP.core_desc";
      source = Sources.ijmp;
      description = "Read next PC from memory";
      demonstrates = "PC and main memory access";
    };
    {
      name = "sbox";
      target = "X_SBOX";
      import_name = "X_SBOX.core_desc";
      source = Sources.sbox;
      description = "Lookup from AES S-Box";
      demonstrates = "Constant custom register";
    };
    {
      name = "sparkle";
      target = "X_SPARKLE";
      import_name = "X_SPARKLE.core_desc";
      source = Sources.sparkle;
      description = "Lightweight post-quantum cryptography (Alzette ARX-box)";
      demonstrates = "R-type instructions, bit manipulations, helper functions";
    };
    {
      name = "sqrt_tightly";
      target = "X_SQRT_T";
      import_name = "X_SQRT_T.core_desc";
      source = Sources.sqrt_tightly;
      description = "CORDIC-based fix-point square root";
      demonstrates = "Loop unrolling, use of tightly-coupled interfaces";
    };
    {
      name = "sqrt_decoupled";
      target = "X_SQRT_D";
      import_name = "X_SQRT_D.core_desc";
      source = Sources.sqrt_decoupled;
      description = "CORDIC-based fix-point square root";
      demonstrates = "spawn-block, use of decoupled interfaces";
    };
    {
      name = "zol";
      target = "X_ZOL";
      import_name = "X_ZOL.core_desc";
      source = Sources.zol;
      description = "Zero-overhead loop inspired by PULP extensions. Loop bounds and counter modeled as custom registers.";
      demonstrates = "PC and custom register access in always-block";
    };
    {
      name = "chksum";
      target = "X_CHKSUM";
      import_name = "X_CHKSUM.core_desc";
      source = Sources.chksum;
      description = "Byte-wise checksum accumulated in a naively word-wide datapath";
      demonstrates = "Analysis-driven width narrowing of over-wide arithmetic";
    };
    {
      name = "autoinc+zol";
      target = "AUTOINC_ZOL";
      import_name = "AUTOINC_ZOL.core_desc";
      source = Sources.autoinc_zol;
      description = "Combination of autoinc and zol (Section 5.5 case study)";
      demonstrates = "Composition of ISAXes into one core";
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let find_exn name =
  match find name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "unknown ISAX '%s'" name)

(* Provider resolving cross-ISAX imports (e.g. for the autoinc+zol core). *)
let provider path = Option.map (fun e -> e.source) (List.find_opt (fun e -> e.import_name = path) all)

(* Compile an ISAX to its typed unit (includes the inherited RV32I base). *)
let compile (e : entry) = Coredsl.compile ~provider ~file:e.import_name ~target:e.target e.source

let compile_by_name name = compile (find_exn name)
