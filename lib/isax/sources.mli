(** The benchmark ISAXes of Table 3, as CoreDSL sources.

   Each source imports the built-in RV32I base description and extends it.
   The encodings use the RISC-V custom-0 (0001011) and custom-1 (0101011)
   opcode spaces, with disjoint funct3 values so that any subset of ISAXes
   can be combined into one core without encoding conflicts. *)

val replace_all : string -> needle:string -> by:string -> string
val dotprod : string
val autoinc : string
val ijmp : string
val sbox : string
val sparkle : string
val sqrt_body : string
val sqrt_tightly : string
val sqrt_decoupled : string
val zol : string
val chksum : string
val autoinc_zol : string
