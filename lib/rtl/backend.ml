(* The emission-backend axis: every backend turns a netlist into HDL text
   through the shared {!Emit_core} layer, so outputs differ only in
   dialect. Mirrors the {!Engine} axis for simulation. *)

type kind = Sv | V2001

let to_string = function Sv -> "sv" | V2001 -> "v2001"
let all_kinds = [ ("sv", Sv); ("v2001", V2001) ]
let kind_names = List.map fst all_kinds

let of_string s = Choice.parse ~what:"emission backend" ~choices:all_kinds s

(* Output file extension: .sv for SystemVerilog, .v for Verilog-2001. *)
let file_ext = function Sv -> "sv" | V2001 -> "v"

let emit kind (m : Netlist.t) : string =
  match kind with Sv -> Sv_emit.emit m | V2001 -> V2001_emit.emit m
