(** Closed-name-set parsing with did-you-mean suggestions, shared by
    {!Engine.kind_of_string} and {!Backend.of_string}. Error messages
    follow the same "unknown X 'y' (available: ...); did you mean ...?"
    shape as the core registry's resolver. *)

val levenshtein : string -> string -> int

(** Up to three closest candidates for an unknown name. *)
val suggest : names:string list -> string -> string list

val parse : what:string -> choices:(string * 'a) list -> string -> ('a, string) result
