(** Common interface over the RTL simulation engines: the two-phase
    interpreter ({!Sim}, the reference) and the compiled engine
    ({!Compiled}, the default fast path). Consumers hold an {!t} and
    never see which engine runs underneath; cross-engine tests create
    one of each and assert bit-identical traces. *)

type kind = Interp | Compiled

val kind_to_string : kind -> string

(** All engines as [(name, kind)], for choice parsing and docs. *)
val all_kinds : (string * kind) list

val kind_names : string list

(** Parse an engine name; errors carry did-you-mean suggestions in the
    standard registry shape (see {!Choice.parse}). *)
val kind_of_string : string -> (kind, string) result

type t = I of Sim.t | C of Compiled.t

(** [create ?kind m] builds a simulator for [m]; the compiled engine is
    the default. *)
val create : ?kind:kind -> Netlist.t -> t

val kind : t -> kind
val netlist : t -> Netlist.t
val set_input : t -> string -> Bitvec.t -> unit
val signal : t -> string -> Bitvec.t

(** Signal-observation API used by {!Vcd}: [None] when the engine has no
    value for this name. *)
val signal_opt : t -> string -> Bitvec.t option

val eval : t -> unit
val clock : t -> unit
val output : t -> string -> Bitvec.t
val cycle : t -> (string * Bitvec.t) list -> unit
