(* Verilog-2001 emission: the same deterministic naming and module
   structure as the SystemVerilog backend ({!Emit_core}), restricted to
   the Verilog-2001 dialect so open tools like iverilog/Qflow (the mriscv
   contract) can consume it. Differences from the SV output are keyword
   only: [always @*] for ROM processes and [always @(posedge clk)] for
   registers; declarations are already wire/reg in both dialects. *)

let emit (m : Netlist.t) : string = Emit_core.emit ~dialect:Emit_core.v2001 m

(* SystemVerilog-only keywords that must never appear in Verilog-2001
   output. Used by the built-in lexical lint when iverilog is absent. *)
let banned_sv_keywords = [ "always_ff"; "always_comb"; "always_latch"; "logic"; "bit"; "int" ]

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

(* Find whole-word occurrences of [kw] in [src]; returns 1-based line
   numbers of offending occurrences. *)
let find_keyword src kw =
  let n = String.length src and k = String.length kw in
  let hits = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i <= n - k do
    if src.[!i] = '\n' then incr line;
    if String.sub src !i k = kw
       && (!i = 0 || not (is_ident_char src.[!i - 1]))
       && (!i + k >= n || not (is_ident_char src.[!i + k]))
    then hits := !line :: !hits;
    incr i
  done;
  List.rev !hits

(* Lexical lint for banned SV-only constructs. Returns problems as
   ["line N: SystemVerilog-only keyword 'kw'"] strings; empty = clean. *)
let lint (src : string) : string list =
  List.concat_map
    (fun kw ->
      List.map
        (fun ln -> Printf.sprintf "line %d: SystemVerilog-only keyword '%s'" ln kw)
        (find_keyword src kw))
    banned_sv_keywords
