(* Value-change-dump (VCD) tracing for the RTL simulators.

   Records every named signal of a simulated module cycle by cycle and
   renders a standard VCD file that waveform viewers (GTKWave, Surfer)
   understand. Used by the CLI's --vcd option and by debugging sessions
   around the co-simulation harness.

   Sampling goes through {!Engine.signal_opt} — the engines' common
   signal-observation API — so the dump is engine-agnostic and the
   cross-engine tests can assert byte-identical traces. *)

type signal = { sg_name : string; sg_width : int; sg_id : string }

type t = {
  mutable signals : signal list;  (* reversed *)
  mutable changes : (int * string * Bitvec.t) list;  (* time, id, value; reversed *)
  mutable last : (string, Bitvec.t) Hashtbl.t;
  mutable time : int;
  module_name : string;
}

(* VCD identifier characters: printable ASCII 33..126 *)
let ident_of_index i =
  let base = 94 and lo = 33 in
  let rec go i acc =
    let acc = String.make 1 (Char.chr (lo + (i mod base))) ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create ~module_name =
  { signals = []; changes = []; last = Hashtbl.create 64; time = 0; module_name }

(* Watch every port and internal node of [m]. *)
let watch_module t (m : Netlist.t) =
  let add name width =
    let id = ident_of_index (List.length t.signals) in
    t.signals <- { sg_name = name; sg_width = width; sg_id = id } :: t.signals
  in
  List.iter (fun (p : Netlist.port) -> add p.port_signal p.port_width) m.inputs;
  List.iter
    (fun n -> add (Netlist.node_out n) (Netlist.node_width n))
    m.nodes

(* Record the current value of every watched signal of [eng]. Call once per
   cycle after [Engine.eval]. *)
let sample t (eng : Engine.t) =
  List.iter
    (fun s ->
      match Engine.signal_opt eng s.sg_name with
      | None -> ()
      | Some v ->
          let changed =
            match Hashtbl.find_opt t.last s.sg_name with
            | Some prev -> not (Bitvec.equal_value prev v)
            | None -> true
          in
          if changed then begin
            Hashtbl.replace t.last s.sg_name v;
            t.changes <- (t.time, s.sg_id, v) :: t.changes
          end)
    (List.rev t.signals);
  t.time <- t.time + 1

let bin_of v =
  let s = Bitvec.to_bin_string v in
  String.sub s 2 (String.length s - 2)

(* Render the accumulated trace as VCD text. *)
let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date reproduction run $end\n";
  Buffer.add_string buf "$version longnail rtl simulator $end\n";
  Buffer.add_string buf "$timescale 1ns $end\n";
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" t.module_name);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" s.sg_width s.sg_id s.sg_name))
    (List.rev t.signals);
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let by_time = Hashtbl.create 64 in
  List.iter
    (fun (time, id, v) ->
      Hashtbl.replace by_time time ((id, v) :: Option.value ~default:[] (Hashtbl.find_opt by_time time)))
    t.changes;
  for time = 0 to t.time - 1 do
    match Hashtbl.find_opt by_time time with
    | None -> ()
    | Some changes ->
        Buffer.add_string buf (Printf.sprintf "#%d\n" time);
        List.iter
          (fun (id, v) ->
            if Bitvec.width v = 1 then
              Buffer.add_string buf (Printf.sprintf "%s%s\n" (bin_of v) id)
            else Buffer.add_string buf (Printf.sprintf "b%s %s\n" (bin_of v) id))
          changes
  done;
  Buffer.contents buf

(* Convenience: simulate [cycles] cycles of [m] with inputs supplied per
   cycle by [drive], tracing everything. *)
let trace ?engine (m : Netlist.t) ~cycles ~(drive : int -> (string * Bitvec.t) list) =
  let eng = Engine.create ?kind:engine m in
  let t = create ~module_name:m.mod_name in
  watch_module t m;
  for cycle = 0 to cycles - 1 do
    List.iter (fun (n, v) -> Engine.set_input eng n v) (drive cycle);
    Engine.eval eng;
    sample t eng;
    Engine.clock eng
  done;
  render t

(* Trace equality across engines: VCD output is deterministic, so
   bit-identical behavior means byte-identical dumps. *)
let traces_equal (a : string) (b : string) = String.equal a b

(* First differing line of two traces, as (line number, left, right);
   None when equal. Used to report cross-engine divergences readably. *)
let first_divergence (a : string) (b : string) =
  if String.equal a b then None
  else
    let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
    let rec go i la lb =
      match (la, lb) with
      | [], [] -> None
      | x :: _, [] -> Some (i, x, "<end of trace>")
      | [], y :: _ -> Some (i, "<end of trace>", y)
      | x :: la', y :: lb' ->
          if String.equal x y then go (i + 1) la' lb' else Some (i, x, y)
    in
    go 1 la lb
