(** The dialect-independent half of HDL emission: deterministic signal
    naming, literal formatting, expression lowering and module layout,
    shared by every emission backend ({!Sv_emit}, {!V2001_emit}) so the
    outputs can differ only in dialect keywords. *)

val sv_ident : string -> string
val wire : int -> string -> string
val bv_literal : Bitvec.t -> string

val comb_expr :
  attrs:(string * Ir.Mir.attr) list ->
  op:string -> inputs:string list -> width:int -> string

(** A dialect is the set of process keywords a backend is allowed to
    change; everything else (names, declarations, ordering) is fixed. *)
type dialect = {
  d_name : string;
  d_always_comb : string;
  d_always_ff : string;
}

val sv : dialect
val v2001 : dialect

val emit : dialect:dialect -> Netlist.t -> string
