(* Closed-name-set parsing with did-you-mean suggestions, shared by the
   engine and backend selectors (and anything else with a small fixed
   vocabulary). Mirrors the suggestion shape of Core_registry.resolve so
   "unknown core" and "unknown engine/backend" read the same way. *)

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let is_prefix ~prefix s =
  String.length prefix <= String.length s && String.sub s 0 (String.length prefix) = prefix

let suggest ~names s =
  let budget = max 2 (String.length s / 3) in
  names
  |> List.filter_map (fun n ->
         let d = levenshtein s n in
         if d <= budget || is_prefix ~prefix:s n then Some (d, n) else None)
  |> List.sort compare
  |> List.filteri (fun i _ -> i < 3)
  |> List.map snd

(* [parse ~what ~choices s] resolves [s] against the closed set
   [choices]; on failure the error message lists the valid names and a
   did-you-mean hint, in the same format as Core_registry.resolve. *)
let parse ~what ~(choices : (string * 'a) list) (s : string) : ('a, string) result =
  match List.assoc_opt s choices with
  | Some v -> Ok v
  | None ->
      let names = List.map fst choices in
      let hint =
        match suggest ~names s with
        | [] -> ""
        | [ one ] -> Printf.sprintf "; did you mean '%s'?" one
        | several ->
            Printf.sprintf "; did you mean one of %s?"
              (String.concat ", " (List.map (Printf.sprintf "'%s'") several))
      in
      Error
        (Printf.sprintf "unknown %s '%s' (available: %s)%s" what s
           (String.concat ", " names) hint)
