(** Value-change-dump (VCD) tracing for the RTL simulators.

   Records every named signal of a simulated module cycle by cycle and
   renders a standard VCD file that waveform viewers (GTKWave, Surfer)
   understand. Sampling goes through {!Engine.signal_opt}, so tracing is
   engine-agnostic. *)

type signal = { sg_name : string; sg_width : int; sg_id : string; }
type t = {
  mutable signals : signal list;
  mutable changes : (int * string * Bitvec.t) list;
  mutable last : (string, Bitvec.t) Hashtbl.t;
  mutable time : int;
  module_name : string;
}
val ident_of_index : int -> string
val create : module_name:string -> t
val watch_module : t -> Netlist.t -> unit
val sample : t -> Engine.t -> unit
val bin_of : Bitvec.t -> string
val render : t -> string

(** [trace ?engine m ~cycles ~drive] simulates [m] on the chosen engine
    (compiled by default) and returns the VCD text. *)
val trace :
  ?engine:Engine.kind ->
  Netlist.t ->
  cycles:int -> drive:(int -> (string * Bitvec.t) list) -> string

(** Byte equality of two rendered traces (VCD output is deterministic,
    so bit-identical behavior means byte-identical dumps). *)
val traces_equal : string -> string -> bool

(** First differing line of two traces as [(line, left, right)]; [None]
    when the traces are equal. *)
val first_divergence : string -> string -> (int * string * string) option
