(* Compiled RTL simulation engine (the Hardcaml approach): topologically
   sort the netlist once, allocate a flat mutable signal arena, and
   compile every node into a straight-line update closure executed per
   phase. Signals of at most [Sys.int_size - 1] bits are specialized to
   unboxed native-int arithmetic; anything wider (or any node touching a
   wide signal) falls back to the {!Ir.Comb_eval} reference semantics on
   {!Bitvec} values, so narrow and wide paths are bit-identical to the
   interpreter in {!Sim} by construction of the narrow ops and by shared
   code for the rest. *)

open Netlist

let u w = Bitvec.unsigned_ty w

(* A signal is "narrow" when its unsigned pattern fits a native int with
   the headroom the wrap-and-mask identities below need. On a 64-bit
   machine this is 62 bits. *)
let narrow_limit = Sys.int_size - 1
let is_narrow w = w <= narrow_limit

(* [mask w] = 2^w - 1, valid for w <= narrow_limit: at w = int_size - 1
   the [1 lsl w] overflows to min_int and the subtraction wraps to
   max_int, which is exactly the wanted mask. *)
let mask w = (1 lsl w) - 1

(* Sign-extend the low [w] bits of [x] to a native int. *)
let sx w x = (x lsl (Sys.int_size - w)) asr (Sys.int_size - w)

type slot = { idx : int; s_width : int; s_wide : bool }

type t = {
  m : Netlist.t;
  slots : (string, slot) Hashtbl.t;
  ints : int array;  (* narrow signals: unsigned patterns *)
  wides : Bitvec.t array;  (* wide signals: raw Bitvec values, as Sim stores them *)
  steps : (unit -> unit) array;  (* combinational update program, topo order *)
  commit_regs : unit -> unit;  (* two-phase register update *)
}

let netlist t = t.m

let create (m : Netlist.t) : t =
  validate m;
  (* arena layout: one slot per defined signal *)
  let slots = Hashtbl.create 64 in
  let n_ints = ref 0 and n_wides = ref 0 in
  let alloc name w =
    if not (Hashtbl.mem slots name) then
      if is_narrow w then (
        Hashtbl.replace slots name { idx = !n_ints; s_width = w; s_wide = false };
        incr n_ints)
      else (
        Hashtbl.replace slots name { idx = !n_wides; s_width = w; s_wide = true };
        incr n_wides)
  in
  List.iter (fun p -> alloc p.port_signal p.port_width) m.inputs;
  List.iter (fun n -> alloc (node_out n) (node_width n)) m.nodes;
  let ints = Array.make (max 1 !n_ints) 0 in
  let wides = Array.make (max 1 !n_wides) (Bitvec.zero (u 1)) in
  Hashtbl.iter
    (fun _ s -> if s.s_wide then wides.(s.idx) <- Bitvec.zero (u s.s_width))
    slots;
  let slot name =
    match Hashtbl.find_opt slots name with
    | Some s -> s
    | None -> nl_error "signal %s has no slot" name
  in
  let read_bv (s : slot) () =
    if s.s_wide then wides.(s.idx) else Bitvec.of_int (u s.s_width) ints.(s.idx)
  in
  let write_bv (s : slot) v =
    if s.s_wide then wides.(s.idx) <- v
    else ints.(s.idx) <- Bitvec.to_int (Bitvec.cast (u s.s_width) v)
  in
  (* fallback: any node touching a wide signal replays the reference
     semantics in Ir.Comb_eval on Bitvec operands *)
  let generic_comb op attrs width (o : slot) (ins : slot list) =
    let readers = List.map read_bv ins in
    fun () ->
      let ops = List.map (fun r -> r ()) readers in
      write_bv o (Ir.Comb_eval.eval ~name:op ~attrs ~ops ~result_width:width)
  in
  (* narrow specialization: out and every input fit native ints; each op
     mirrors Ir.Comb_eval.eval exactly (wrap = land mask, signed views
     via sx at the operand's own width) *)
  let narrow_comb op attrs width (o : slot) (ins : slot list) =
    let w = width in
    let m = mask w in
    let io = o.idx in
    let i n = (List.nth ins n).idx in
    let wi n = (List.nth ins n).s_width in
    match op with
    | "comb.add" ->
        let a = i 0 and b = i 1 in
        fun () -> ints.(io) <- (ints.(a) + ints.(b)) land m
    | "comb.sub" ->
        let a = i 0 and b = i 1 in
        fun () -> ints.(io) <- (ints.(a) - ints.(b)) land m
    | "comb.mul" ->
        let a = i 0 and b = i 1 in
        fun () -> ints.(io) <- (ints.(a) * ints.(b)) land m
    | "comb.divu" ->
        let a = i 0 and b = i 1 in
        fun () ->
          let bv = ints.(b) in
          ints.(io) <- (if bv = 0 then m else ints.(a) / bv land m)
    | "comb.modu" ->
        let a = i 0 and b = i 1 in
        fun () ->
          let bv = ints.(b) in
          ints.(io) <- (if bv = 0 then ints.(a) land m else ints.(a) mod bv land m)
    | "comb.divs" ->
        let a = i 0 and b = i 1 and wa = wi 0 and wb = wi 1 in
        fun () ->
          let bv = ints.(b) in
          ints.(io) <- (if bv = 0 then m else sx wa ints.(a) / sx wb bv land m)
    | "comb.mods" ->
        let a = i 0 and b = i 1 and wa = wi 0 and wb = wi 1 in
        fun () ->
          let bv = ints.(b) in
          ints.(io) <- (if bv = 0 then ints.(a) land m else sx wa ints.(a) mod sx wb bv land m)
    | "comb.and" ->
        let a = i 0 and b = i 1 in
        fun () -> ints.(io) <- ints.(a) land ints.(b) land m
    | "comb.or" ->
        let a = i 0 and b = i 1 in
        fun () -> ints.(io) <- (ints.(a) lor ints.(b)) land m
    | "comb.xor" ->
        let a = i 0 and b = i 1 in
        fun () -> ints.(io) <- (ints.(a) lxor ints.(b)) land m
    | "comb.mux" ->
        let c = i 0 and t1 = i 1 and e2 = i 2 in
        fun () -> ints.(io) <- (if ints.(c) <> 0 then ints.(t1) else ints.(e2)) land m
    | "comb.extract" -> (
        match List.assoc_opt "lowBit" attrs with
        | Some (Ir.Mir.A_int lo) ->
            let a = i 0 in
            fun () -> ints.(io) <- (ints.(a) lsr lo) land m
        | _ -> invalid_arg "comb.extract without lowBit")
    | "comb.concat" ->
        (* first operand is the most significant; the result is the
           un-wrapped sum-width value, exactly like Bitvec.concat *)
        let parts = List.map (fun (s : slot) -> (s.idx, s.s_width)) ins in
        fun () ->
          ints.(io) <-
            List.fold_left (fun acc (ix, wx) -> (acc lsl wx) lor ints.(ix)) 0 parts
    | "comb.replicate" ->
        let a = i 0 and wa = wi 0 in
        let n = w / wi 0 in
        fun () ->
          let v = ints.(a) in
          let r = ref 0 in
          for _ = 1 to n do
            r := (!r lsl wa) lor v
          done;
          ints.(io) <- !r
    | "comb.shl" ->
        let a = i 0 and b = i 1 in
        fun () ->
          let k = ints.(b) in
          ints.(io) <- (if k >= w then 0 else ints.(a) lsl k land m)
    | "comb.shru" ->
        let a = i 0 and b = i 1 in
        fun () ->
          let k = ints.(b) in
          ints.(io) <- (if k >= w then 0 else ints.(a) lsr k land m)
    | "comb.shrs" ->
        let a = i 0 and b = i 1 and wa = wi 0 in
        fun () ->
          let k = min ints.(b) (w - 1) in
          ints.(io) <- sx wa ints.(a) asr k land m
    | "comb.icmp_eq" ->
        let a = i 0 and b = i 1 in
        fun () -> ints.(io) <- Bool.to_int (ints.(a) = ints.(b))
    | "comb.icmp_ne" ->
        let a = i 0 and b = i 1 in
        fun () -> ints.(io) <- Bool.to_int (ints.(a) <> ints.(b))
    | "comb.icmp_ult" ->
        let a = i 0 and b = i 1 in
        fun () -> ints.(io) <- Bool.to_int (ints.(a) < ints.(b))
    | "comb.icmp_ule" ->
        let a = i 0 and b = i 1 in
        fun () -> ints.(io) <- Bool.to_int (ints.(a) <= ints.(b))
    | "comb.icmp_ugt" ->
        let a = i 0 and b = i 1 in
        fun () -> ints.(io) <- Bool.to_int (ints.(a) > ints.(b))
    | "comb.icmp_uge" ->
        let a = i 0 and b = i 1 in
        fun () -> ints.(io) <- Bool.to_int (ints.(a) >= ints.(b))
    | "comb.icmp_slt" ->
        let a = i 0 and b = i 1 and wa = wi 0 and wb = wi 1 in
        fun () -> ints.(io) <- Bool.to_int (sx wa ints.(a) < sx wb ints.(b))
    | "comb.icmp_sle" ->
        let a = i 0 and b = i 1 and wa = wi 0 and wb = wi 1 in
        fun () -> ints.(io) <- Bool.to_int (sx wa ints.(a) <= sx wb ints.(b))
    | "comb.icmp_sgt" ->
        let a = i 0 and b = i 1 and wa = wi 0 and wb = wi 1 in
        fun () -> ints.(io) <- Bool.to_int (sx wa ints.(a) > sx wb ints.(b))
    | "comb.icmp_sge" ->
        let a = i 0 and b = i 1 and wa = wi 0 and wb = wi 1 in
        fun () -> ints.(io) <- Bool.to_int (sx wa ints.(a) >= sx wb ints.(b))
    | _ ->
        (* unknown op: defer to the reference evaluator so the error
           behavior matches the interpreter *)
        generic_comb op attrs width o ins
  in
  let compile_node (n : node) : (unit -> unit) option =
    match n with
    | Reg _ -> None
    | Comb { op = "hw.constant"; out; width; attrs; _ } -> (
        (* constants are written into the arena once, at compile time *)
        match List.assoc_opt "value" attrs with
        | Some (Ir.Mir.A_bv v) ->
            write_bv (slot out) (Bitvec.cast (u width) v);
            None
        | _ -> invalid_arg "hw.constant without value")
    | Comb c ->
        let o = slot c.out in
        let ins = List.map slot c.inputs in
        if (not o.s_wide) && List.for_all (fun (s : slot) -> not s.s_wide) ins then
          Some (narrow_comb c.op c.attrs c.width o ins)
        else Some (generic_comb c.op c.attrs c.width o ins)
    | Rom r ->
        let o = slot r.out and ix = slot r.index in
        let len = Array.length r.table in
        if (not o.s_wide) && not ix.s_wide then (
          let tbl =
            Array.map (fun v -> Bitvec.to_int (Bitvec.cast (u r.width) v)) r.table
          in
          let io = o.idx and ii = ix.idx in
          Some
            (fun () ->
              let i = ints.(ii) in
              ints.(io) <- (if i < len then tbl.(i) else 0)))
        else
          let read_ix = read_bv ix in
          Some
            (fun () ->
              let i = Bitvec.to_int (read_ix ()) in
              let v =
                if i >= 0 && i < len then r.table.(i) else Bitvec.zero (u r.width)
              in
              write_bv o (Bitvec.cast (u r.width) v))
  in
  (* registers: reset state now; sample-then-commit closures for clock *)
  let regs = registers m in
  List.iter
    (fun (r : reg_node) ->
      write_bv (slot r.out)
        (match r.init with
        | Some v -> Bitvec.cast (u r.width) v
        | None -> Bitvec.zero (u r.width)))
    regs;
  let nregs = List.length regs in
  let staged_i = Array.make (max 1 nregs) 0 in
  let staged_w = Array.make (max 1 nregs) (Bitvec.zero (u 1)) in
  let enabled = Array.make (max 1 nregs) false in
  let reg_progs =
    List.mapi
      (fun k (r : reg_node) ->
        let o = slot r.out in
        let nx = slot r.next in
        let en_check =
          match r.enable with
          | None -> fun () -> true
          | Some e ->
              let s = slot e in
              if s.s_wide then fun () -> Bitvec.to_bool wides.(s.idx)
              else fun () -> ints.(s.idx) <> 0
        in
        let sample =
          if (not o.s_wide) && not nx.s_wide then (
            let m = mask r.width and inx = nx.idx in
            fun () ->
              enabled.(k) <- en_check ();
              if enabled.(k) then staged_i.(k) <- ints.(inx) land m)
          else
            let read_nx = read_bv nx in
            let w = r.width in
            fun () ->
              enabled.(k) <- en_check ();
              if enabled.(k) then staged_w.(k) <- Bitvec.cast (u w) (read_nx ())
        in
        let commit =
          if (not o.s_wide) && not nx.s_wide then (fun () ->
            if enabled.(k) then ints.(o.idx) <- staged_i.(k))
          else fun () -> if enabled.(k) then write_bv o staged_w.(k)
        in
        (sample, commit))
      regs
  in
  let samples = Array.of_list (List.map fst reg_progs) in
  let commits = Array.of_list (List.map snd reg_progs) in
  let commit_regs () =
    Array.iter (fun f -> f ()) samples;
    Array.iter (fun f -> f ()) commits
  in
  let steps =
    topo_nodes m |> List.filter_map compile_node |> Array.of_list
  in
  { m; slots; ints; wides; steps; commit_regs }

let set_input t name v =
  match List.find_opt (fun p -> p.port_name = name) t.m.inputs with
  | Some p ->
      let s = Hashtbl.find t.slots p.port_signal in
      let v = Bitvec.cast (u p.port_width) v in
      if s.s_wide then t.wides.(s.idx) <- v else t.ints.(s.idx) <- Bitvec.to_int v
  | None -> nl_error "no input port %s" name

let signal_opt t name =
  match Hashtbl.find_opt t.slots name with
  | Some s ->
      Some (if s.s_wide then t.wides.(s.idx) else Bitvec.of_int (u s.s_width) t.ints.(s.idx))
  | None -> None

let signal t name =
  match signal_opt t name with
  | Some v -> v
  | None -> nl_error "signal %s has no value" name

(* settle combinational logic: run the straight-line update program *)
let eval t =
  let steps = t.steps in
  for i = 0 to Array.length steps - 1 do
    steps.(i) ()
  done

(* advance registers (two-phase: sample all, then update) *)
let clock t = t.commit_regs ()

let output t name =
  match List.find_opt (fun p -> p.port_name = name) t.m.outputs with
  | Some p -> Bitvec.cast (u p.port_width) (signal t p.port_signal)
  | None -> nl_error "no output port %s" name

let cycle t inputs =
  List.iter (fun (n, v) -> set_input t n v) inputs;
  eval t;
  clock t
