(* The dialect-independent half of HDL emission: deterministic signal
   naming, literal formatting, expression lowering and module layout are
   shared by every emission backend, so two backends can only differ in
   dialect keywords — never in names, ordering or structure. The
   SystemVerilog backend ({!Sv_emit}) and the Verilog-2001 backend
   ({!V2001_emit}) are both thin dialect records over [emit]. *)

open Netlist

(* Deterministic signal/module naming shared by all backends. *)
let sv_ident s =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' then c else '_') s

let wire w name = if w = 1 then name else Printf.sprintf "[%d:0] %s" (w - 1) name

let bv_literal v =
  Printf.sprintf "%d'h%s" (Bitvec.width v)
    (let h = Bitvec.to_hex_string v in
     String.sub h 2 (String.length h - 2))

(* The expression grammar is the Verilog-2001 subset of SystemVerilog
   ($signed is Verilog-2001), so one lowering serves every dialect. *)
let comb_expr ~attrs ~op ~(inputs : string list) ~width =
  let a () = List.nth inputs 0 and b () = List.nth inputs 1 in
  let signed x = Printf.sprintf "$signed(%s)" x in
  match op with
  | "hw.constant" -> (
      match List.assoc_opt "value" attrs with
      | Some (Ir.Mir.A_bv v) -> bv_literal v
      | _ -> invalid_arg "constant without value")
  | "comb.add" -> Printf.sprintf "%s + %s" (a ()) (b ())
  | "comb.sub" -> Printf.sprintf "%s - %s" (a ()) (b ())
  | "comb.mul" -> Printf.sprintf "%s * %s" (a ()) (b ())
  | "comb.divu" -> Printf.sprintf "%s / %s" (a ()) (b ())
  | "comb.modu" -> Printf.sprintf "%s %% %s" (a ()) (b ())
  | "comb.divs" -> Printf.sprintf "%s / %s" (signed (a ())) (signed (b ()))
  | "comb.mods" -> Printf.sprintf "%s %% %s" (signed (a ())) (signed (b ()))
  | "comb.and" -> Printf.sprintf "%s & %s" (a ()) (b ())
  | "comb.or" -> Printf.sprintf "%s | %s" (a ()) (b ())
  | "comb.xor" -> Printf.sprintf "%s ^ %s" (a ()) (b ())
  | "comb.mux" ->
      Printf.sprintf "%s ? %s : %s" (List.nth inputs 0) (List.nth inputs 1) (List.nth inputs 2)
  | "comb.extract" -> (
      match List.assoc_opt "lowBit" attrs with
      | Some (Ir.Mir.A_int lo) ->
          if width = 1 then Printf.sprintf "%s[%d]" (a ()) lo
          else Printf.sprintf "%s[%d:%d]" (a ()) (lo + width - 1) lo
      | _ -> invalid_arg "extract without lowBit")
  | "comb.concat" -> Printf.sprintf "{%s}" (String.concat ", " inputs)
  | "comb.replicate" -> Printf.sprintf "{%d{%s}}" width (a ())
  | "comb.shl" -> Printf.sprintf "%s << %s" (a ()) (b ())
  | "comb.shru" -> Printf.sprintf "%s >> %s" (a ()) (b ())
  | "comb.shrs" -> Printf.sprintf "%s >>> %s" (signed (a ())) (b ())
  | "comb.icmp_eq" -> Printf.sprintf "%s == %s" (a ()) (b ())
  | "comb.icmp_ne" -> Printf.sprintf "%s != %s" (a ()) (b ())
  | "comb.icmp_ult" -> Printf.sprintf "%s < %s" (a ()) (b ())
  | "comb.icmp_ule" -> Printf.sprintf "%s <= %s" (a ()) (b ())
  | "comb.icmp_ugt" -> Printf.sprintf "%s > %s" (a ()) (b ())
  | "comb.icmp_uge" -> Printf.sprintf "%s >= %s" (a ()) (b ())
  | "comb.icmp_slt" -> Printf.sprintf "%s < %s" (signed (a ())) (signed (b ()))
  | "comb.icmp_sle" -> Printf.sprintf "%s <= %s" (signed (a ())) (signed (b ()))
  | "comb.icmp_sgt" -> Printf.sprintf "%s > %s" (signed (a ())) (signed (b ()))
  | "comb.icmp_sge" -> Printf.sprintf "%s >= %s" (signed (a ())) (signed (b ()))
  | other -> invalid_arg ("no SV lowering for " ^ other)

(* What a backend may change: the process keywords. Declarations are
   wire/reg in every dialect (the SystemVerilog backend deliberately never
   used [logic], so both outputs share the declaration section too). *)
type dialect = {
  d_name : string;
  d_always_comb : string;  (* "always_comb" or "always @*" *)
  d_always_ff : string;  (* "always_ff @(posedge clk)" or "always @(posedge clk)" *)
}

let sv = { d_name = "sv"; d_always_comb = "always_comb"; d_always_ff = "always_ff @(posedge clk)" }

let v2001 =
  { d_name = "v2001"; d_always_comb = "always @*"; d_always_ff = "always @(posedge clk)" }

let emit ~(dialect : dialect) (m : t) : string =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "module %s(\n" (sv_ident m.mod_name);
  pr "  input clk,\n  input rst";
  List.iter (fun p -> pr ",\n  input  %s" (wire p.port_width (sv_ident p.port_name))) m.inputs;
  List.iter (fun p -> pr ",\n  output %s" (wire p.port_width (sv_ident p.port_name))) m.outputs;
  pr ");\n\n";
  (* declarations *)
  List.iter
    (fun n ->
      match n with
      | Comb c -> pr "  wire %s;\n" (wire c.width (sv_ident c.out))
      | Rom r -> pr "  reg %s;\n" (wire r.width (sv_ident r.out))
      | Reg r -> pr "  reg %s;\n" (wire r.width (sv_ident r.out)))
    m.nodes;
  pr "\n";
  (* combinational logic in dependency order for readability *)
  List.iter
    (fun n ->
      match n with
      | Comb c ->
          pr "  assign %s = %s;\n" (sv_ident c.out)
            (comb_expr ~attrs:c.attrs ~op:c.op ~inputs:(List.map sv_ident c.inputs)
               ~width:c.width)
      | Rom r ->
          pr "  %s begin\n    case (%s)\n" dialect.d_always_comb (sv_ident r.index);
          Array.iteri
            (fun i v -> pr "      %d: %s = %s;\n" i (sv_ident r.out) (bv_literal v))
            r.table;
          pr "      default: %s = %d'd0;\n    endcase\n  end\n" (sv_ident r.out) r.width
      | Reg _ -> ())
    (topo_nodes m);
  pr "\n";
  (* sequential logic *)
  List.iter
    (fun (r : Netlist.reg_node) ->
      match r with
      | { out; next; enable; init; _ } ->
          pr "  %s\n" dialect.d_always_ff;
          (match init with
          | Some v ->
              pr "    if (rst) %s <= %s;\n    else " (sv_ident out) (bv_literal v)
          | None -> pr "    ");
          (match enable with
          | Some en -> pr "%s <= %s ? %s : %s;\n" (sv_ident out) (sv_ident en) (sv_ident next) (sv_ident out)
          | None -> pr "%s <= %s;\n" (sv_ident out) (sv_ident next)))
    (registers m);
  pr "\nendmodule\n";
  Buffer.contents buf
