(** Emission backends behind one interface: SystemVerilog ({!Sv_emit},
    the default) and Verilog-2001 ({!V2001_emit}). Both share
    {!Emit_core}'s deterministic naming and module structure, so the
    outputs differ only in dialect keywords. *)

type kind = Sv | V2001

val to_string : kind -> string

(** All backends as [(name, kind)], for choice parsing and docs. *)
val all_kinds : (string * kind) list

val kind_names : string list

(** Parse a backend name; errors carry did-you-mean suggestions in the
    standard registry shape (see {!Choice.parse}). *)
val of_string : string -> (kind, string) result

(** ["sv"] for SystemVerilog, ["v"] for Verilog-2001. *)
val file_ext : kind -> string

val emit : kind -> Netlist.t -> string
