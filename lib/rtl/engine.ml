(* The common simulation-engine interface: the reference interpreter
   ({!Sim}) and the compiled engine ({!Compiled}) behind one type, so
   every RTL-in-the-loop consumer (cosimulation, fuzzing, the core grids,
   VCD tracing) is engine-agnostic and can cross-check engines. *)

type kind = Interp | Compiled

let kind_to_string = function Interp -> "interp" | Compiled -> "compiled"
let all_kinds = [ ("interp", Interp); ("compiled", Compiled) ]
let kind_names = List.map fst all_kinds

let kind_of_string s = Choice.parse ~what:"simulation engine" ~choices:all_kinds s

type t = I of Sim.t | C of Compiled.t

(* The compiled engine is the default everywhere; the interpreter is the
   reference implementation kept for cross-checks. *)
let create ?(kind = Compiled) m =
  match kind with Interp -> I (Sim.create m) | Compiled -> C (Compiled.create m)

let kind = function I _ -> Interp | C _ -> Compiled
let netlist = function I s -> s.Sim.m | C c -> Compiled.netlist c

let set_input t name v =
  match t with I s -> Sim.set_input s name v | C c -> Compiled.set_input c name v

let signal t name =
  match t with I s -> Sim.signal s name | C c -> Compiled.signal c name

(* Signal observation for tracing: [None] when the engine has no value
   for the name (interpreter before first [eval], or unknown signal). *)
let signal_opt t name =
  match t with
  | I s -> Hashtbl.find_opt s.Sim.values name
  | C c -> Compiled.signal_opt c name

let eval = function I s -> Sim.eval s | C c -> Compiled.eval c
let clock = function I s -> Sim.clock s | C c -> Compiled.clock c

let output t name =
  match t with I s -> Sim.output s name | C c -> Compiled.output c name

let cycle t inputs =
  match t with I s -> Sim.cycle s inputs | C c -> Compiled.cycle c inputs
