(** Verilog-2001 emission backend: shares {!Emit_core}'s deterministic
    naming and module structure with {!Sv_emit}; output differs from the
    SystemVerilog backend only in dialect keywords. *)

val emit : Netlist.t -> string

(** SystemVerilog-only keywords rejected by {!lint}. *)
val banned_sv_keywords : string list

(** Lexical lint for SystemVerilog-only constructs in Verilog-2001
    output; returns one ["line N: ..."] message per offence (empty list
    when the source is clean). Used as the fallback smoke-parse when no
    Verilog toolchain is installed. *)
val lint : string -> string list
