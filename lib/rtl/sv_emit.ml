(* SystemVerilog emission from the RTL netlist (the paper uses CIRCT's
   export pipeline; Figure 5d shows the style we match).

   All naming, literal formatting and module layout live in {!Emit_core};
   this backend only selects the SystemVerilog dialect keywords, so its
   output is byte-identical to what the pre-refactor monolithic emitter
   produced (the pinned goldens in test_cache.ml hold it to that). *)

let sv_ident = Emit_core.sv_ident
let wire = Emit_core.wire
let bv_literal = Emit_core.bv_literal
let comb_expr = Emit_core.comb_expr
let emit (m : Netlist.t) : string = Emit_core.emit ~dialect:Emit_core.sv m
