(** Compiled RTL simulation engine: the netlist is topologically sorted
    once and compiled into an array of straight-line update closures over
    a flat mutable signal arena. Signals of at most [Sys.int_size - 1]
    bits run as unboxed native-int operations; wider signals (and any
    node touching one) fall back to the {!Ir.Comb_eval} reference
    semantics on {!Bitvec}, keeping results bit-identical to {!Sim}.

    The API mirrors {!Sim}; use {!Engine} to select between the two. *)

type t

val narrow_limit : int
val is_narrow : int -> bool

val create : Netlist.t -> t
val netlist : t -> Netlist.t
val set_input : t -> string -> Bitvec.t -> unit

(** The current value of a named signal, [None] if the name is not a
    defined signal of the module. Unevaluated combinational signals read
    as zero (the interpreter has no value for them at all). *)
val signal_opt : t -> string -> Bitvec.t option

val signal : t -> string -> Bitvec.t
val eval : t -> unit
val clock : t -> unit
val output : t -> string -> Bitvec.t
val cycle : t -> (string * Bitvec.t) list -> unit
