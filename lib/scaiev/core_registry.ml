(* The host-core registry (see core_registry.mli and docs/CORES.md).

   Descriptors live in registration order; the four Table-4 paper cores
   are registered first (in the order the bench tables print them),
   then the ported cores, then the Section-7 outlook prototypes. The
   registry validates every descriptor at registration time so a
   mistyped datasheet fails fast, before any consumer sees it. *)

type kind = Paper | Ported | Outlook

type timing = {
  fsm_base : int;
  mem_wait : int;
  branch_penalty : int;
  decoupled_issue_stall : int;
}

type sim = { reset_pc : int; sp_init : int }

type t = {
  name : string;
  slug : string;
  kind : kind;
  datasheet : Datasheet.t;
  timing : timing;
  sim : sim;
  summary : string;
}

exception Registration_error of string

(* ---- well-formedness ---- *)

let validate (d : t) =
  let ds = d.datasheet in
  let bad = ref [] in
  let err fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
  if d.slug = "" then err "empty slug";
  if d.slug <> String.lowercase_ascii d.slug then err "slug '%s' is not lowercase" d.slug;
  if String.lowercase_ascii d.name <> d.slug then
    err "slug '%s' does not match display name '%s'" d.slug d.name;
  if ds.core_name <> d.name then
    err "datasheet core_name '%s' does not match descriptor name '%s'" ds.core_name d.name;
  (* FSM flag consistent with the stage count *)
  if ds.is_fsm && ds.pipeline_stages <> 0 then
    err "FSM core declares %d pipeline stages (expected 0)" ds.pipeline_stages;
  if (not ds.is_fsm) && ds.pipeline_stages <= 0 then
    err "pipelined core declares %d pipeline stages" ds.pipeline_stages;
  (* stage indices: operand read strictly before writeback, memory no
     later than writeback, everything within the pipeline depth *)
  if ds.operand_stage < 0 then err "negative operand stage %d" ds.operand_stage;
  if ds.operand_stage >= ds.writeback_stage then
    err "operand stage %d not before writeback stage %d" ds.operand_stage ds.writeback_stage;
  if ds.memory_stage > ds.writeback_stage then
    err "memory stage %d past writeback stage %d" ds.memory_stage ds.writeback_stage;
  if (not ds.is_fsm) && ds.writeback_stage > ds.pipeline_stages - 1 then
    err "writeback stage %d outside the %d-stage pipeline" ds.writeback_stage ds.pipeline_stages;
  (* interface windows *)
  List.iter
    (fun (name, (w : Datasheet.window)) ->
      if w.earliest < 0 then err "%s: negative earliest stage %d" name w.earliest;
      if w.latency < 0 then err "%s: negative latency %d" name w.latency;
      match w.native_latest with
      | Some l ->
          if w.earliest > l then err "%s: earliest %d > native latest %d" name w.earliest l;
          if (not ds.is_fsm) && l > ds.pipeline_stages - 1 then
            err "%s: native latest %d outside the %d-stage pipeline" name l ds.pipeline_stages
      | None ->
          (* no in-pipeline upper bound: only meaningful for FSM cores *)
          if not ds.is_fsm then err "%s: pipelined core without a native latest stage" name)
    ds.ifaces;
  (* baselines and timing parameters *)
  if ds.base_area_um2 <= 0.0 then err "non-positive baseline area %g" ds.base_area_um2;
  if ds.base_freq_mhz <= 0.0 then err "non-positive baseline frequency %g" ds.base_freq_mhz;
  if d.timing.fsm_base < 1 then err "timing: fsm_base %d < 1" d.timing.fsm_base;
  if d.timing.mem_wait < 0 then err "timing: negative mem_wait %d" d.timing.mem_wait;
  if d.timing.branch_penalty < 0 then
    err "timing: negative branch_penalty %d" d.timing.branch_penalty;
  if d.timing.decoupled_issue_stall < 0 then
    err "timing: negative decoupled_issue_stall %d" d.timing.decoupled_issue_stall;
  List.rev !bad

(* ---- the registry ---- *)

let registered : t list ref = ref []

let register d =
  (match validate d with
  | [] -> ()
  | violations ->
      raise
        (Registration_error
           (Printf.sprintf "core '%s': %s" d.slug (String.concat "; " violations))));
  if List.exists (fun r -> r.slug = d.slug) !registered then
    raise (Registration_error (Printf.sprintf "core '%s' is already registered" d.slug));
  registered := !registered @ [ d ]

let of_kind k = List.filter (fun d -> d.kind = k) !registered

let all ?(include_outlook = false) () =
  List.filter
    (fun d -> match d.kind with Paper | Ported -> true | Outlook -> include_outlook)
    !registered

let paper_cores () = of_kind Paper
let outlook () = of_kind Outlook
let datasheets ?include_outlook () = List.map (fun d -> d.datasheet) (all ?include_outlook ())
let paper_datasheets () = List.map (fun d -> d.datasheet) (paper_cores ())
let names ?include_outlook () = List.map (fun d -> d.name) (all ?include_outlook ())
let slugs ?include_outlook () = List.map (fun d -> d.slug) (all ?include_outlook ())

let find name =
  let n = String.lowercase_ascii name in
  List.find_opt (fun d -> d.slug = n) !registered

let find_exn name =
  match find name with
  | Some d -> d
  | None -> raise (Registration_error (Printf.sprintf "core '%s' is not registered" name))

let find_datasheet name = Option.map (fun d -> d.datasheet) (find name)

let of_datasheet (ds : Datasheet.t) = find ds.core_name

(* ---- did-you-mean ---- *)

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (prev.(j) + 1) (cur.(j - 1) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let is_prefix p s = String.length p <= String.length s && String.sub s 0 (String.length p) = p

let suggest name =
  let n = String.lowercase_ascii name in
  !registered
  |> List.filter_map (fun d ->
         let dist = levenshtein n d.slug in
         let budget = max 2 (String.length d.slug / 3) in
         if dist <= budget || (n <> "" && is_prefix n d.slug) then Some (dist, d.slug) else None)
  |> List.stable_sort (fun (d1, _) (d2, _) -> compare d1 d2)
  |> List.map snd
  |> fun l -> List.filteri (fun i _ -> i < 3) l

let resolve name =
  match find name with
  | Some d -> Ok d
  | None ->
      let available = String.concat ", " (slugs ~include_outlook:true ()) in
      let hint =
        match suggest name with
        | [] -> ""
        | [ s ] -> Printf.sprintf "; did you mean '%s'?" s
        | ss -> Printf.sprintf "; did you mean one of %s?" (String.concat ", " ss)
      in
      Error (Printf.sprintf "unknown core '%s' (available: %s)%s" name available hint)

let validate_all () =
  List.filter_map
    (fun d -> match validate d with [] -> None | v -> Some (d.slug, v))
    !registered

(* ---- the fifth core: mriscv ----

   An open-source educational RV32I core with the classic five-stage
   organization (IF/ID/EX/MEM/WB, fetch = time step 0): register read
   ports in decode (stage 1), data memory in stage 3, writeback in
   stage 4, and a stall-on-use interlock instead of a forwarding path
   from writeback. The paper never saw this core — it exists here to
   exercise the portability claim. Interface windows follow the same
   shape as the VexRiscv datasheet with the operand read one stage
   earlier (the classic decode-stage read ports). *)

let mriscv =
  let window = Datasheet.window in
  {
    Datasheet.core_name = "mriscv";
    pipeline_stages = 5;
    is_fsm = false;
    operand_stage = 1;
    memory_stage = 3;
    writeback_stage = 4;
    forwarding_from_writeback = false;
    ifaces =
      [
        ("RdInstr", window 1 ~native_latest:4);
        ("RdRS1", window 1 ~native_latest:4);
        ("RdRS2", window 1 ~native_latest:4);
        ("RdPC", window 1 ~native_latest:4);
        ("RdMem", window 3 ~native_latest:4 ~latency:1);
        ("WrRD", window 2 ~native_latest:4);
        ("WrPC", window 1 ~native_latest:4);
        ("WrMem", window 3 ~native_latest:4 ~latency:1);
        ("RdCustReg", window 1 ~native_latest:4);
        ("WrCustReg", window 1 ~native_latest:4);
      ];
    base_area_um2 = 5890.0;
    base_freq_mhz = 612.0;
  }

(* ---- built-in registrations ----

   Cycle-cost parameters mirror the presets [Riscv.Machine] shipped
   with (the pipelined cores share the bus model; PicoRV32's FSM
   charges three states per instruction against a faster local
   memory); mriscv resolves branches in execute, so a taken branch
   flushes three younger stages. ISS defaults: reset at address 0,
   stack at 0x10000 (the CLI/cosim convention). *)

let default_sim = { reset_pc = 0; sp_init = 0x10000 }
let pipelined_timing = { fsm_base = 1; mem_wait = 9; branch_penalty = 4; decoupled_issue_stall = 1 }

let () =
  register
    {
      name = "ORCA";
      slug = "orca";
      kind = Paper;
      datasheet = Datasheet.orca;
      timing = pipelined_timing;
      sim = default_sim;
      summary = "VectorBlox ORCA: 5-stage pipeline, late operands, forwarding from writeback";
    };
  register
    {
      name = "Piccolo";
      slug = "piccolo";
      kind = Paper;
      datasheet = Datasheet.piccolo;
      timing = { pipelined_timing with branch_penalty = 2 };
      sim = default_sim;
      summary = "Bluespec Piccolo: 3-stage pipeline, single-stage interface windows";
    };
  register
    {
      name = "PicoRV32";
      slug = "picorv32";
      kind = Paper;
      datasheet = Datasheet.picorv32;
      timing = { fsm_base = 3; mem_wait = 4; branch_penalty = 2; decoupled_issue_stall = 1 };
      sim = default_sim;
      summary = "PicoRV32: FSM-sequenced (non-pipelined), no native interface upper bounds";
    };
  register
    {
      name = "VexRiscv";
      slug = "vexriscv";
      kind = Paper;
      datasheet = Datasheet.vexriscv;
      timing = pipelined_timing;
      sim = default_sim;
      summary = "VexRiscv: 5-stage pipeline, the paper's primary evaluation core";
    };
  register
    {
      name = "mriscv";
      slug = "mriscv";
      kind = Ported;
      datasheet = mriscv;
      timing = { pipelined_timing with branch_penalty = 3 };
      sim = default_sim;
      summary = "mriscv: classic RV32I 5-stage (IF/ID/EX/MEM/WB), stall-on-use interlock";
    };
  register
    {
      name = "CVA5";
      slug = "cva5";
      kind = Outlook;
      datasheet = Datasheet.cva5;
      timing = pipelined_timing;
      sim = default_sim;
      summary = "OpenHW CVA5 (ex-Taiga): 7-stage application-class prototype (Section 7)";
    };
  register
    {
      name = "CVA6";
      slug = "cva6";
      kind = Outlook;
      datasheet = Datasheet.cva6;
      timing = pipelined_timing;
      sim = default_sim;
      summary = "OpenHW CVA6 (ex-Ariane): 6-stage application-class prototype (Section 7)";
    }
