(* The SCAIE-V interface generator.

   Consumes a virtual datasheet (core description) and a Longnail-emitted
   configuration, validates it against the rules of Section 3, and
   synthesizes the *integration plan*: which pieces of adapter hardware
   must be generated inside the host core. The plan is consumed by
   - the ASIC flow model (lib/asic), which converts the features into gate
     area and timing-path load, and
   - the cycle-level core models (lib/riscv), which interpret the same
     plan to emulate the integrated ISAX cycle-accurately. *)

exception Generate_error of Diag.t

let gen_error ?(code = "E0502") ?span fmt =
  Format.kasprintf (fun m -> raise (Generate_error (Diag.make ?span ~code m))) fmt

type adapter = {
  core : Datasheet.t;
  config : Config.t;
  (* decode logic: one mask comparator per custom instruction *)
  decode_comparator_bits : int;
  (* SCAIE-V-managed custom registers *)
  custom_reg_bits : int;
  custom_reg_read_ports : int;
  custom_reg_write_ports : int;
  (* multiplexing of state-update payloads from multiple functionalities *)
  arbitration_mux_bits : int;
  (* decoupled mode: scoreboard for register data hazards *)
  scoreboard_bits : int;
  hazard_comparators : int;
  (* tightly-coupled mode: stall generation *)
  stall_counter_bits : int;
  (* pipeline interface taps: stage-crossing wires the adapter must route *)
  stage_taps : int;
  uses_pc_write : bool;
  uses_mem_port : bool;
  has_always_block : bool;
  (* modes present, for reporting *)
  modes : Config.mode list;
}

let base_iface_of entry =
  (* "WrCOUNT.addr" -> WrCustReg family; plain names map to themselves *)
  let s = entry.Config.se_iface in
  if String.length s > 2 && String.sub s 0 2 = "Wr" then
    match String.index_opt s '.' with
    | Some _ -> "WrCustReg"
    | None -> (
        match s with "WrRD" | "WrPC" | "WrMem" -> s | _ -> "WrCustReg")
  else if String.length s > 2 && String.sub s 0 2 = "Rd" then
    match s with
    | "RdInstr" | "RdRS1" | "RdRS2" | "RdPC" | "RdMem" -> s
    | _ -> "RdCustReg"
  else gen_error "malformed interface name '%s'" s

let is_write iface = String.length iface > 2 && String.sub iface 0 2 = "Wr"

(* ---- validation (Sections 3.1 and 3.2) ---- *)

let validate (core : Datasheet.t) (cfg : Config.t) =
  List.iter
    (fun (f : Config.functionality) ->
      (* each sub-interface may be used at most once per functionality;
         WrCustReg.addr/.data pairs count as one use *)
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (e : Config.sched_entry) ->
          let key =
            match String.index_opt e.se_iface '.' with
            | Some i -> String.sub e.se_iface 0 i
            | None -> e.se_iface
          in
          let prior = Hashtbl.find_opt seen key in
          (match prior with
          | Some () when String.contains e.se_iface '.' -> () (* .addr/.data pair *)
          | Some () -> gen_error "%s: sub-interface %s used more than once" f.fn_name key
          | None -> ());
          Hashtbl.replace seen key ())
        f.fn_entries;
      match f.fn_kind with
      | `Always ->
          List.iter
            (fun (e : Config.sched_entry) ->
              if e.se_stage <> 0 then
                gen_error "%s: always-block entries must be in stage 0, got %d" f.fn_name
                  e.se_stage;
              (* only the data/payload port needs the valid bit; the .addr
                 half of a WrCustReg pair carries none (Figure 8) *)
              if
                is_write (base_iface_of e)
                && (not (Filename.check_suffix e.se_iface ".addr"))
                && not e.se_has_valid
              then gen_error "%s: state updates from always-blocks require a valid bit" f.fn_name)
            f.fn_entries
      | `Instruction ->
          List.iter
            (fun (e : Config.sched_entry) ->
              let base = base_iface_of e in
              (match e.se_mode with
              | Config.Tightly_coupled | Config.Decoupled ->
                  if not (List.mem base Iface.relaxable) then
                    gen_error "%s: %s cannot use the %s mode" f.fn_name e.se_iface
                      (Config.mode_to_string e.se_mode)
              | Config.Always_mode -> gen_error "%s: always mode on an instruction" f.fn_name
              | Config.In_pipeline -> ());
              match Datasheet.find core base with
              | None -> gen_error "core %s offers no %s interface" core.core_name base
              | Some w -> (
                  if e.se_stage < w.earliest then
                    gen_error "%s: %s scheduled in stage %d before earliest %d" f.fn_name
                      e.se_iface e.se_stage w.earliest;
                  match (w.native_latest, e.se_mode) with
                  | Some l, Config.In_pipeline when e.se_stage > l ->
                      gen_error "%s: %s scheduled in stage %d past native latest %d without a \
                                 relaxed mode"
                        f.fn_name e.se_iface e.se_stage l
                  | _ -> ()))
            f.fn_entries)
    cfg.funcs

(* ---- integration-plan synthesis ---- *)

let generate ?(hazard_handling = true) (core : Datasheet.t) (cfg : Config.t) : adapter =
  validate core cfg;
  let instrs = List.filter (fun f -> f.Config.fn_kind = `Instruction) cfg.funcs in
  let always = List.filter (fun f -> f.Config.fn_kind = `Always) cfg.funcs in
  (* decode: count fixed bits in each mask *)
  let decode_comparator_bits =
    List.fold_left
      (fun acc (f : Config.functionality) ->
        acc + String.length (String.concat "" (List.filter_map (fun c ->
            if c = '0' || c = '1' then Some "x" else None)
            (List.init (String.length f.fn_mask) (String.get f.fn_mask)))))
      0 instrs
  in
  (* custom registers *)
  let custom_reg_bits =
    List.fold_left (fun acc (r : Config.reg_req) -> acc + (r.cr_width * r.cr_elems)) 0 cfg.regs
  in
  let reads_of_reg r =
    List.length
      (List.filter
         (fun (f : Config.functionality) ->
           List.exists (fun e -> e.Config.se_iface = "Rd" ^ r.Config.cr_name) f.fn_entries)
         cfg.funcs)
  in
  let writes_of_reg r =
    List.length
      (List.filter
         (fun (f : Config.functionality) ->
           List.exists
             (fun e -> e.Config.se_iface = "Wr" ^ r.Config.cr_name ^ ".data")
             f.fn_entries)
         cfg.funcs)
  in
  let custom_reg_read_ports = List.fold_left (fun a r -> a + min 1 (reads_of_reg r)) 0 cfg.regs in
  let custom_reg_write_ports = List.fold_left (fun a r -> a + min 1 (writes_of_reg r)) 0 cfg.regs in
  (* arbitration: for every writable interface written by k > 1
     functionalities, SCAIE-V multiplexes payloads (Section 3.3) *)
  let payload_width = function
    | "WrRD" -> 32
    | "WrPC" -> 32
    | "WrMem" -> 64 (* address + data *)
    | _ -> 32
  in
  let write_counts = Hashtbl.create 8 in
  List.iter
    (fun (f : Config.functionality) ->
      List.iter
        (fun e ->
          let base = base_iface_of e in
          if is_write base then begin
            let key =
              if base = "WrCustReg" then e.Config.se_iface else base
            in
            (* only count .data once per custreg write *)
            if base <> "WrCustReg" || Filename.check_suffix key ".data" then
              Hashtbl.replace write_counts key
                (1 + Option.value ~default:0 (Hashtbl.find_opt write_counts key))
          end)
        f.fn_entries)
    cfg.funcs;
  let arbitration_mux_bits =
    Hashtbl.fold
      (fun key k acc ->
        if k > 1 then begin
          let base = if String.contains key '.' then "WrCustReg" else key in
          acc + ((k - 1) * payload_width base)
        end
        else acc)
      write_counts 0
  in
  (* decoupled: scoreboard over the 32 GPRs + in-flight rd + hazard
     comparators on both operand read ports *)
  let has_decoupled =
    List.exists
      (fun (f : Config.functionality) ->
        List.exists (fun e -> e.Config.se_mode = Config.Decoupled) f.fn_entries)
      cfg.funcs
  in
  let scoreboard_bits = if has_decoupled && hazard_handling then 32 + 5 + 1 else 0 in
  let hazard_comparators = if has_decoupled && hazard_handling then 3 else 0 in
  (* tightly-coupled: a stall counter sized for the longest overrun *)
  let max_tc_stage =
    List.fold_left
      (fun acc (f : Config.functionality) ->
        List.fold_left
          (fun acc e ->
            if e.Config.se_mode = Config.Tightly_coupled then max acc e.Config.se_stage else acc)
          acc f.fn_entries)
      0 cfg.funcs
  in
  let stall_counter_bits =
    if max_tc_stage > core.writeback_stage then
      let extra = max_tc_stage - core.writeback_stage in
      max 1 (int_of_float (ceil (log (float_of_int (extra + 1)) /. log 2.0)))
    else 0
  in
  (* stage taps: distinct (interface, stage) pairs the adapter must wire *)
  let taps = Hashtbl.create 16 in
  List.iter
    (fun (f : Config.functionality) ->
      List.iter
        (fun e -> Hashtbl.replace taps (base_iface_of e, min e.Config.se_stage core.writeback_stage) ())
        f.fn_entries)
    cfg.funcs;
  let uses iface =
    List.exists
      (fun (f : Config.functionality) ->
        List.exists (fun e -> base_iface_of e = iface) f.fn_entries)
      cfg.funcs
  in
  let modes =
    List.sort_uniq compare
      (List.concat_map
         (fun (f : Config.functionality) ->
           List.map (fun e -> e.Config.se_mode) f.fn_entries)
         cfg.funcs)
  in
  {
    core;
    config = cfg;
    decode_comparator_bits;
    custom_reg_bits;
    custom_reg_read_ports;
    custom_reg_write_ports;
    arbitration_mux_bits;
    scoreboard_bits;
    hazard_comparators;
    stall_counter_bits;
    stage_taps = Hashtbl.length taps;
    uses_pc_write = uses "WrPC";
    uses_mem_port = uses "RdMem" || uses "WrMem";
    has_always_block = always <> [];
    modes;
  }
