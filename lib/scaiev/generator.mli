(** The SCAIE-V interface generator.

   Consumes a virtual datasheet (core description) and a Longnail-emitted
   configuration, validates it against the rules of Section 3, and
   synthesizes the *integration plan*: which pieces of adapter hardware
   must be generated inside the host core. The plan is consumed by
   - the ASIC flow model (lib/asic), which converts the features into gate
     area and timing-path load, and
   - the cycle-level core models (lib/riscv), which interpret the same
     plan to emulate the integrated ISAX cycle-accurately. *)

exception Generate_error of Diag.t
val gen_error : ?code:string -> ?span:Diag.span -> ('a, Format.formatter, unit, 'b) format4 -> 'a
type adapter = {
  core : Datasheet.t;
  config : Config.t;
  decode_comparator_bits : int;
  custom_reg_bits : int;
  custom_reg_read_ports : int;
  custom_reg_write_ports : int;
  arbitration_mux_bits : int;
  scoreboard_bits : int;
  hazard_comparators : int;
  stall_counter_bits : int;
  stage_taps : int;
  uses_pc_write : bool;
  uses_mem_port : bool;
  has_always_block : bool;
  modes : Config.mode list;
}
val base_iface_of : Config.sched_entry -> string
val is_write : string -> bool
val validate : Datasheet.t -> Config.t -> unit
val generate :
  ?hazard_handling:bool -> Datasheet.t -> Config.t -> adapter
