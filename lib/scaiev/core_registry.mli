(** The host-core registry: one first-class descriptor per supported core.

    The paper's portability claim (Section 5.2) is that one CoreDSL
    description retargets across host cores purely through SCAIE-V
    virtual datasheets. This module makes that claim structural: a
    {!t} bundles everything the rest of the system needs to know about
    a host core — the virtual datasheet (Figure 9), the cycle-cost
    timing parameters consumed by [Riscv.Machine], the ISS execution
    defaults, and the Table-4 ASIC baselines (carried inside the
    datasheet) — and every consumer (CLI [--core] parsing and
    [longnail cores], the serve daemon's request validation, the bench
    grids, the per-core test loops) enumerates or looks cores up here
    instead of pattern-matching on core names. Adding host core #N
    touches exactly one registration site: a [register] call with a
    fully-populated descriptor (see docs/CORES.md for the walkthrough,
    using mriscv as the worked example).

    Enumeration classes:
    - {e paper} — the four Table-4 evaluation cores (ORCA, Piccolo,
      PicoRV32, VexRiscv). Golden artifacts and the Table-4 bench
      columns are pinned to exactly these, in registration order.
    - {e ported} — cores added after the paper to exercise the
      portability claim (mriscv). [all] = paper + ported.
    - {e outlook} — the Section-7 application-class prototypes (CVA5,
      CVA6); folded into enumerations only behind
      [~include_outlook:true]. *)

type kind = Paper | Ported | Outlook

(** Cycle-cost model parameters consumed by [Riscv.Machine]. Plain data
    (no [Riscv] types) so the registry can live below [lib/riscv] in
    the library stack. *)
type timing = {
  fsm_base : int;  (** FSM sequencing states charged per instruction *)
  mem_wait : int;  (** extra cycles per data-memory access *)
  branch_penalty : int;  (** flushed cycles per taken branch *)
  decoupled_issue_stall : int;  (** issue stall per decoupled ISAX *)
}

(** ISS execution defaults used by [longnail run] and the cosimulation
    harnesses. *)
type sim = {
  reset_pc : int;  (** program-counter value after reset *)
  sp_init : int;  (** initial stack-pointer (x2) value *)
}

type t = {
  name : string;  (** canonical display name, e.g. ["VexRiscv"] *)
  slug : string;  (** lowercase lookup key, e.g. ["vexriscv"] *)
  kind : kind;
  datasheet : Datasheet.t;
  timing : timing;
  sim : sim;
  summary : string;  (** one-line description for docs and [longnail cores] *)
}

exception Registration_error of string

val register : t -> unit
(** Add a descriptor. Raises {!Registration_error} on a duplicate slug,
    a slug/datasheet name mismatch, or any {!validate} violation — a
    mistyped datasheet fails at registration, not mid-compile. *)

(** {1 Enumeration} *)

val all : ?include_outlook:bool -> unit -> t list
(** Paper + ported descriptors in registration order; with
    [~include_outlook:true], the outlook descriptors follow. *)

val paper_cores : unit -> t list
val outlook : unit -> t list

val datasheets : ?include_outlook:bool -> unit -> Datasheet.t list
val paper_datasheets : unit -> Datasheet.t list
val names : ?include_outlook:bool -> unit -> string list
val slugs : ?include_outlook:bool -> unit -> string list

(** {1 Lookup} *)

val find : string -> t option
(** Case-insensitive lookup by slug or display name, over every
    registered descriptor (outlook included). *)

val find_exn : string -> t
(** Like {!find}; raises {!Registration_error} when absent. *)

val find_datasheet : string -> Datasheet.t option

val of_datasheet : Datasheet.t -> t option
(** The descriptor registered under a datasheet's [core_name], if any —
    the bridge for consumers holding only a [Datasheet.t]. *)

val suggest : string -> string list
(** Did-you-mean candidates for a misspelled core name: registered
    slugs within a small edit distance (or sharing a prefix), closest
    first, at most three. *)

val resolve : string -> (t, string) result
(** {!find}, with the uniform error message every front end shows for
    an unknown core: the available slug list plus {!suggest}
    candidates. The CLI [--core] converter and the serve daemon both
    use this, so their messages can never drift apart. *)

(** {1 Well-formedness} *)

val validate : t -> string list
(** Datasheet/descriptor invariant violations (empty = well-formed):
    interface windows within the pipeline depth, [earliest <=
    native_latest], operand stage before writeback, FSM flag consistent
    with the stage count, positive baseline area/frequency, positive
    timing parameters. Checked at {!register} time and property-tested
    over every registered core. *)

val validate_all : unit -> (string * string list) list
(** [(slug, violations)] for every registered descriptor that fails
    {!validate} (empty = registry well-formed). *)

(** {1 The fifth core}

    The mriscv datasheet is defined here, inside its registration
    entry, to keep "add a core" a one-site change; it is re-exported
    for tests and examples. *)

val mriscv : Datasheet.t
