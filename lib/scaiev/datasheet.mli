(** Virtual datasheets: SCAIE-V's per-core abstraction of the host
   microarchitecture (Section 3.1 and Figure 9).

   For each sub-interface the datasheet gives the earliest and latest time
   step (relative to time step 0 = instruction fetch) in which it may be
   used, plus its latency. The [native_latest] records the stage up to
   which the in-pipeline variant exists; Longnail relaxes the scheduler's
   upper bound to infinity for WrRD/RdMem/WrMem, and any operation
   scheduled past [native_latest] selects the tightly-coupled or decoupled
   variant instead (Section 4.3).

   The four cores match the evaluation in Section 5.2:
   ORCA and VexRiscv are 5-stage pipelines, Piccolo is a 3-stage pipeline,
   and PicoRV32 is non-pipelined (FSM-sequenced). Baseline area/frequency
   are the Table 4 baselines for the 22nm ASIC flow model. *)

type window = { earliest : int; native_latest : int option; latency : int; }
type t = {
  core_name : string;
  pipeline_stages : int;
  is_fsm : bool;
  operand_stage : int;
  memory_stage : int;
  writeback_stage : int;
  forwarding_from_writeback : bool;
  ifaces : (string * window) list;
  base_area_um2 : float;
  base_freq_mhz : float;
}
val window : ?latency:int -> ?native_latest:int -> int -> window
val find : t -> string -> window option
val cycle_time_ns : t -> float
val vexriscv : t
val orca : t
val piccolo : t
val picorv32 : t
(** The four paper (Table 4) datasheets, as static values. Enumeration
    and name lookup of the supported-core set go through
    {!Core_registry} ([datasheets], [paper_datasheets], [find],
    [resolve]) — the registry also carries the ported/outlook cores,
    timing models and ISS defaults. *)

val cva5 : t
val cva6 : t
(** The Section-7 outlook prototypes, registered in {!Core_registry} as
    outlook descriptors (excluded from the default enumeration). *)

val to_yaml : t -> string
