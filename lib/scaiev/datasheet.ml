(* Virtual datasheets: SCAIE-V's per-core abstraction of the host
   microarchitecture (Section 3.1 and Figure 9).

   For each sub-interface the datasheet gives the earliest and latest time
   step (relative to time step 0 = instruction fetch) in which it may be
   used, plus its latency. The [native_latest] records the stage up to
   which the in-pipeline variant exists; Longnail relaxes the scheduler's
   upper bound to infinity for WrRD/RdMem/WrMem, and any operation
   scheduled past [native_latest] selects the tightly-coupled or decoupled
   variant instead (Section 4.3).

   The four cores match the evaluation in Section 5.2:
   ORCA and VexRiscv are 5-stage pipelines, Piccolo is a 3-stage pipeline,
   and PicoRV32 is non-pipelined (FSM-sequenced). Baseline area/frequency
   are the Table 4 baselines for the 22nm ASIC flow model. *)

type window = {
  earliest : int;
  native_latest : int option;  (* None: no in-pipeline limit (FSM cores) *)
  latency : int;
}

type t = {
  core_name : string;
  pipeline_stages : int;  (* 0 for FSM-based cores *)
  is_fsm : bool;
  operand_stage : int;  (* stage in which RdRS1/RdRS2 deliver *)
  memory_stage : int;
  writeback_stage : int;
  (* ORCA forwards from the last stage into the operand stage; ISAX logic
     scheduled in the last stage then sits on the forwarding path. *)
  forwarding_from_writeback : bool;
  ifaces : (string * window) list;
  base_area_um2 : float;  (* Table 4 baseline *)
  base_freq_mhz : float;  (* Table 4 baseline *)
}

let window ?(latency = 0) ?native_latest earliest = { earliest; native_latest; latency }

let find t name = List.assoc_opt name t.ifaces

let cycle_time_ns t = 1000.0 /. t.base_freq_mhz

(* ---- the four host cores ---- *)

let vexriscv =
  {
    core_name = "VexRiscv";
    pipeline_stages = 5;
    is_fsm = false;
    operand_stage = 2;
    memory_stage = 3;
    writeback_stage = 4;
    forwarding_from_writeback = false;
    ifaces =
      [
        ("RdInstr", window 1 ~native_latest:4);
        ("RdRS1", window 2 ~native_latest:4);
        ("RdRS2", window 2 ~native_latest:4);
        ("RdPC", window 1 ~native_latest:4);
        ("RdMem", window 3 ~native_latest:4 ~latency:1);
        ("WrRD", window 2 ~native_latest:4);
        ("WrPC", window 1 ~native_latest:4);
        ("WrMem", window 3 ~native_latest:4 ~latency:1);
        ("RdCustReg", window 1 ~native_latest:4);
        ("WrCustReg", window 1 ~native_latest:4);
      ];
    base_area_um2 = 9052.0;
    base_freq_mhz = 701.0;
  }

let orca =
  {
    core_name = "ORCA";
    pipeline_stages = 5;
    is_fsm = false;
    operand_stage = 3;
    memory_stage = 3;
    writeback_stage = 4;
    forwarding_from_writeback = true;
    ifaces =
      [
        ("RdInstr", window 1 ~native_latest:4);
        (* operands arrive late and writeback is expected in the very next
           stage (Section 5.4), leaving a single-stage window *)
        ("RdRS1", window 3 ~native_latest:4);
        ("RdRS2", window 3 ~native_latest:4);
        ("RdPC", window 1 ~native_latest:4);
        ("RdMem", window 3 ~native_latest:4 ~latency:1);
        ("WrRD", window 4 ~native_latest:4);
        ("WrPC", window 2 ~native_latest:4);
        ("WrMem", window 3 ~native_latest:4 ~latency:1);
        ("RdCustReg", window 2 ~native_latest:4);
        ("WrCustReg", window 2 ~native_latest:4);
      ];
    base_area_um2 = 6612.0;
    base_freq_mhz = 996.0;
  }

let piccolo =
  {
    core_name = "Piccolo";
    pipeline_stages = 3;
    is_fsm = false;
    operand_stage = 1;
    memory_stage = 1;
    writeback_stage = 2;
    forwarding_from_writeback = false;
    ifaces =
      [
        ("RdInstr", window 1 ~native_latest:2);
        ("RdRS1", window 1 ~native_latest:2);
        ("RdRS2", window 1 ~native_latest:2);
        ("RdPC", window 1 ~native_latest:2);
        ("RdMem", window 1 ~native_latest:2 ~latency:1);
        ("WrRD", window 1 ~native_latest:2);
        ("WrPC", window 1 ~native_latest:2);
        ("WrMem", window 1 ~native_latest:2 ~latency:1);
        ("RdCustReg", window 1 ~native_latest:2);
        ("WrCustReg", window 1 ~native_latest:2);
      ];
    base_area_um2 = 26098.0;
    base_freq_mhz = 420.0;
  }

let picorv32 =
  {
    core_name = "PicoRV32";
    pipeline_stages = 0;
    is_fsm = true;
    operand_stage = 1;
    memory_stage = 2;
    writeback_stage = 3;
    forwarding_from_writeback = false;
    (* FSM sequencing: interfaces have no native upper bound — the FSM
       simply spends more states on longer ISAXes *)
    ifaces =
      [
        ("RdInstr", window 0);
        ("RdRS1", window 1);
        ("RdRS2", window 1);
        ("RdPC", window 0);
        ("RdMem", window 2 ~latency:1);
        ("WrRD", window 1);
        ("WrPC", window 1);
        ("WrMem", window 2 ~latency:1);
        ("RdCustReg", window 1);
        ("WrCustReg", window 1);
      ];
    base_area_um2 = 4745.0;
    base_freq_mhz = 1278.0;
  }

(* ---- application-class prototypes (Section 7 outlook) ----

   The paper reports initial SCAIE-V/Longnail prototypes on the OpenHW
   CVA5 (ex-Taiga) and CVA6 (ex-Ariane) cores: still in-order single-issue,
   but with deeper pipelines and far larger base area, so the *relative*
   cost of an ISAX integration decreases. These datasheets model the
   32-bit configurations; the Table 4 evaluation covers only the four
   MCU-class cores, so {!Core_registry} registers these as outlook
   descriptors excluded from the default enumeration. *)

let cva5 =
  {
    core_name = "CVA5";
    pipeline_stages = 7;
    is_fsm = false;
    operand_stage = 3;
    memory_stage = 4;
    writeback_stage = 6;
    forwarding_from_writeback = false;
    ifaces =
      [
        ("RdInstr", window 1 ~native_latest:6);
        ("RdRS1", window 3 ~native_latest:6);
        ("RdRS2", window 3 ~native_latest:6);
        ("RdPC", window 1 ~native_latest:6);
        ("RdMem", window 4 ~native_latest:6 ~latency:1);
        ("WrRD", window 3 ~native_latest:6);
        ("WrPC", window 2 ~native_latest:6);
        ("WrMem", window 4 ~native_latest:6 ~latency:1);
        ("RdCustReg", window 2 ~native_latest:6);
        ("WrCustReg", window 2 ~native_latest:6);
      ];
    base_area_um2 = 29500.0;
    base_freq_mhz = 910.0;
  }

let cva6 =
  {
    core_name = "CVA6";
    pipeline_stages = 6;
    is_fsm = false;
    operand_stage = 3;
    memory_stage = 4;
    writeback_stage = 5;
    forwarding_from_writeback = false;
    ifaces =
      [
        ("RdInstr", window 1 ~native_latest:5);
        ("RdRS1", window 3 ~native_latest:5);
        ("RdRS2", window 3 ~native_latest:5);
        ("RdPC", window 1 ~native_latest:5);
        ("RdMem", window 4 ~native_latest:5 ~latency:1);
        ("WrRD", window 3 ~native_latest:5);
        ("WrPC", window 2 ~native_latest:5);
        ("WrMem", window 4 ~native_latest:5 ~latency:1);
        ("RdCustReg", window 2 ~native_latest:5);
        ("WrCustReg", window 2 ~native_latest:5);
      ];
    base_area_um2 = 175000.0;
    base_freq_mhz = 1400.0;
  }

(* YAML-ish rendering of a virtual datasheet (Figure 9 left box). *)
let to_yaml t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "core: %s\n" t.core_name);
  Buffer.add_string buf
    (Printf.sprintf "pipeline: {stages: %d, fsm: %b}\n" t.pipeline_stages t.is_fsm);
  Buffer.add_string buf "interfaces:\n";
  List.iter
    (fun (name, w) ->
      Buffer.add_string buf
        (Printf.sprintf "  - {interface: %s, earliest: %d, latest: %s, latency: %d}\n" name
           w.earliest
           (match w.native_latest with Some l -> string_of_int l | None -> "inf")
           w.latency))
    t.ifaces;
  Buffer.contents buf
