(* Recursive-descent parser for CoreDSL, following the grammar in Figure 2
   of the paper plus C-inspired statements and expressions (Section 2.4). *)

module Bn = Bitvec.Bn
open Ast
open Lexer

type p = {
  toks : lexed array;
  mutable i : int;
  (* running '{'/'}' nesting depth of everything consumed so far; used by
     error recovery to resynchronize at the closing brace of a broken
     construct *)
  mutable depth : int;
  (* when present, recoverable syntax errors are accumulated here instead
     of aborting the parse *)
  diags : Diag.collector option;
}

let peek p = p.toks.(p.i).tok
let peek2 p = if p.i + 1 < Array.length p.toks then p.toks.(p.i + 1).tok else EOF
let loc p = p.toks.(p.i).loc

let advance p =
  if p.i < Array.length p.toks - 1 then begin
    (match p.toks.(p.i).tok with
    | PUNCT "{" -> p.depth <- p.depth + 1
    | PUNCT "}" -> p.depth <- p.depth - 1
    | _ -> ());
    p.i <- p.i + 1
  end

let describe = function
  | ID s -> Printf.sprintf "identifier '%s'" s
  | INT _ -> "integer literal"
  | STRING _ -> "string literal"
  | KW s -> Printf.sprintf "keyword '%s'" s
  | PUNCT s -> Printf.sprintf "'%s'" s
  | EOF -> "end of input"

let err p fmt = syntax_error (loc p) fmt

(* ---- error recovery ---- *)

let recovering p = p.diags <> None

let record_error p l m =
  match p.diags with
  | Some c -> Diag.add c (Diag.make ~span:(Ast.span_of_loc l) ~code:"E0002" m)
  | None -> ()

(* Skip tokens until the brace depth returns to [d], eating the closing
   '}' of the broken construct. Guarantees at least one token of progress
   when the error occurred at depth [d] already (unless the next token is
   the '}' or EOF the caller handles itself). *)
let resync_to_depth p d =
  let start = p.i in
  while p.depth > d && peek p <> EOF do
    advance p
  done;
  if p.i = start && peek p <> EOF && peek p <> PUNCT "}" then advance p

let expect_punct p s =
  match peek p with
  | PUNCT q when q = s -> advance p
  | t -> err p "expected '%s' but found %s" s (describe t)

let expect_kw p s =
  match peek p with
  | KW q when q = s -> advance p
  | t -> err p "expected keyword '%s' but found %s" s (describe t)

let expect_id p =
  match peek p with
  | ID s ->
      advance p;
      s
  | t -> err p "expected identifier but found %s" (describe t)

let accept_punct p s =
  match peek p with
  | PUNCT q when q = s ->
      advance p;
      true
  | _ -> false

let accept_kw p s =
  match peek p with
  | KW q when q = s ->
      advance p;
      true
  | _ -> false

(* ---- types ---- *)

let lit_expr l n = { e = Lit { value = Bn.of_int n; forced = None }; eloc = l }

let is_type_start = function
  | KW ("signed" | "unsigned" | "int" | "char" | "bool" | "long" | "short" | "void") -> true
  | _ -> false

(* Parse a type. [parse_expr] is passed in to break the mutual recursion
   with expressions (widths are expressions). *)
let rec parse_ty p ~parse_expr =
  let l = loc p in
  match peek p with
  | KW "void" ->
      advance p;
      Ty_void
  | KW (("signed" | "unsigned") as sgn) -> (
      advance p;
      let signed = sgn = "signed" in
      match peek p with
      | PUNCT "<" ->
          advance p;
          let w = parse_expr p in
          (match peek p with
          | PUNCT ">" -> advance p
          | PUNCT ">>" ->
              (* split '>>' that closes nested templates; not needed in
                 practice but cheap to handle *)
              p.toks.(p.i) <- { (p.toks.(p.i)) with tok = PUNCT ">" }
          | t -> err p "expected '>' but found %s" (describe t));
          Ty_int { signed; width = w }
      | KW "int" ->
          advance p;
          Ty_int { signed; width = lit_expr l 32 }
      | KW "char" ->
          advance p;
          Ty_int { signed; width = lit_expr l 8 }
      | KW "long" ->
          advance p;
          Ty_int { signed; width = lit_expr l 64 }
      | KW "short" ->
          advance p;
          Ty_int { signed; width = lit_expr l 16 }
      | _ -> Ty_int { signed; width = lit_expr l 32 })
  | KW "int" ->
      advance p;
      Ty_int { signed = true; width = lit_expr l 32 }
  | KW "char" ->
      advance p;
      Ty_int { signed = false; width = lit_expr l 8 }
  | KW "long" ->
      advance p;
      Ty_int { signed = true; width = lit_expr l 64 }
  | KW "short" ->
      advance p;
      Ty_int { signed = true; width = lit_expr l 16 }
  | KW "bool" ->
      advance p;
      Ty_int { signed = false; width = lit_expr l 1 }
  | t -> err p "expected type but found %s" (describe t)

(* ---- expressions (precedence climbing) ---- *)

(* binary operator levels, loosest first; [None] marks the concatenation
   operator, which builds a [Concat] node instead of a [Binop] *)
let level_ops = function
  | 0 -> [ ("||", Some Lor) ]
  | 1 -> [ ("&&", Some Land) ]
  | 2 -> [ ("|", Some Or) ]
  | 3 -> [ ("^", Some Xor) ]
  | 4 -> [ ("&", Some And) ]
  | 5 -> [ ("==", Some Eq); ("!=", Some Ne) ]
  | 6 -> [ ("<", Some Lt); ("<=", Some Le); (">", Some Gt); (">=", Some Ge) ]
  | 7 -> [ ("::", None) ]
  | 8 -> [ ("<<", Some Shl); (">>", Some Shr) ]
  | 9 -> [ ("+", Some Add); ("-", Some Sub) ]
  | 10 -> [ ("*", Some Mul); ("/", Some Div); ("%", Some Rem) ]
  | _ -> []

let num_levels = 11

(* Width expressions inside 'signed<...>' start at the additive level so
   that '>' closes the template bracket; parenthesize to use lower-
   precedence operators in a width. *)
let rec parse_expr p = parse_ternary p

and parse_width_expr p = parse_binop p 9

and parse_ternary p =
  let c = parse_binop p 0 in
  if accept_punct p "?" then begin
    let t = parse_expr p in
    expect_punct p ":";
    let f = parse_ternary p in
    { e = Ternary (c, t, f); eloc = c.eloc }
  end
  else c

and parse_binop p level =
  if level >= num_levels then parse_unary p
  else begin
    let ops = level_ops level in
    let lhs = ref (parse_binop p (level + 1)) in
    let rec go () =
      match peek p with
      | PUNCT s when List.mem_assoc s ops ->
          advance p;
          let rhs = parse_binop p (level + 1) in
          lhs :=
            (match List.assoc s ops with
            | Some op -> { e = Binop (op, !lhs, rhs); eloc = !lhs.eloc }
            | None -> { e = Concat (!lhs, rhs); eloc = !lhs.eloc });
          go ()
      | _ -> ()
    in
    go ();
    !lhs
  end

and parse_unary p =
  let l = loc p in
  match peek p with
  | PUNCT "-" ->
      advance p;
      { e = Unop (Neg, parse_unary p); eloc = l }
  | PUNCT "~" ->
      advance p;
      { e = Unop (Not, parse_unary p); eloc = l }
  | PUNCT "!" ->
      advance p;
      { e = Unop (Lnot, parse_unary p); eloc = l }
  | PUNCT "+" ->
      advance p;
      parse_unary p
  | PUNCT "(" when is_type_start (peek2 p) ->
      advance p;
      let ck =
        match peek p with
        | KW (("signed" | "unsigned") as sgn) when peek2 p = PUNCT ")" ->
            (* bare (signed)/(unsigned): reinterpret at the operand width *)
            advance p;
            { cast_signed = sgn = "signed"; cast_width = None }
        | _ -> (
            match parse_ty p ~parse_expr:parse_width_expr with
            | Ty_int { signed; width } -> { cast_signed = signed; cast_width = Some width }
            | Ty_void -> err p "cannot cast to void"
            | Ty_alias _ -> assert false)
      in
      expect_punct p ")";
      let arg = parse_unary p in
      { e = Cast (ck, arg); eloc = l }
  | PUNCT "(" ->
      advance p;
      let e = parse_expr p in
      expect_punct p ")";
      (* a parenthesized expression can be indexed/sliced: (a + b)[3:0] *)
      parse_suffixes p e
  | _ -> parse_postfix p

and parse_postfix p =
  let l = loc p in
  let prim =
    match peek p with
    | INT { value; forced } ->
        advance p;
        { e = Lit { value; forced }; eloc = l }
    | KW "true" ->
        advance p;
        { e = Lit { value = Bn.one; forced = Some Bitvec.bool_ty }; eloc = l }
    | KW "false" ->
        advance p;
        { e = Lit { value = Bn.zero; forced = Some Bitvec.bool_ty }; eloc = l }
    | ID name when peek2 p = PUNCT "(" ->
        advance p;
        advance p;
        let args = parse_args p in
        { e = Call (name, args); eloc = l }
    | ID name ->
        advance p;
        { e = Ident name; eloc = l }
    | PUNCT "{" ->
        (* array initializer, e.g. ROM contents *)
        advance p;
        let rec go acc =
          if accept_punct p "}" then List.rev acc
          else begin
            let e = parse_expr p in
            if accept_punct p "," then go (e :: acc)
            else begin
              expect_punct p "}";
              List.rev (e :: acc)
            end
          end
        in
        { e = Array_init (go []); eloc = l }
    | t -> err p "expected expression but found %s" (describe t)
  in
  parse_suffixes p prim

and parse_suffixes p e =
  if accept_punct p "[" then begin
    let first = parse_expr p in
    if accept_punct p ":" then begin
      let lo = parse_expr p in
      expect_punct p "]";
      parse_suffixes p { e = Range (e, first, lo); eloc = e.eloc }
    end
    else begin
      expect_punct p "]";
      parse_suffixes p { e = Index (e, first); eloc = e.eloc }
    end
  end
  else e

and parse_args p =
  if accept_punct p ")" then []
  else begin
    let rec go acc =
      let e = parse_expr p in
      if accept_punct p "," then go (e :: acc)
      else begin
        expect_punct p ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

(* ---- statements ---- *)

let parse_ty p = parse_ty p ~parse_expr:parse_width_expr

let is_assign_punct = function
  | "=" | "+=" | "-=" | "*=" | "&=" | "|=" | "^=" | "<<=" | ">>=" -> true
  | _ -> false

let assign_op_of = function
  | "=" -> A_eq
  | "+=" -> A_add
  | "-=" -> A_sub
  | "*=" -> A_mul
  | "&=" -> A_and
  | "|=" -> A_or
  | "^=" -> A_xor
  | "<<=" -> A_shl
  | ">>=" -> A_shr
  | _ -> assert false

let rec parse_stmt p : stmt =
  let l = loc p in
  match peek p with
  | PUNCT "{" ->
      advance p;
      let body = parse_stmts_until p "}" in
      { s = Block body; sloc = l }
  | KW "if" ->
      advance p;
      expect_punct p "(";
      let c = parse_expr p in
      expect_punct p ")";
      let thn = block_of (parse_stmt p) in
      let els = if accept_kw p "else" then block_of (parse_stmt p) else [] in
      { s = If (c, thn, els); sloc = l }
  | KW "for" ->
      advance p;
      expect_punct p "(";
      let init = if accept_punct p ";" then None else Some (parse_simple_or_decl p) in
      let cond = if peek p = PUNCT ";" then None else Some (parse_expr p) in
      expect_punct p ";";
      let step = if peek p = PUNCT ")" then None else Some (parse_simple p) in
      expect_punct p ")";
      let body = block_of (parse_stmt p) in
      { s = For (init, cond, step, body); sloc = l }
  | KW "while" ->
      advance p;
      expect_punct p "(";
      let c = parse_expr p in
      expect_punct p ")";
      let body = block_of (parse_stmt p) in
      { s = While (c, body); sloc = l }
  | KW "do" ->
      advance p;
      let body = block_of (parse_stmt p) in
      expect_kw p "while";
      expect_punct p "(";
      let c = parse_expr p in
      expect_punct p ")";
      expect_punct p ";";
      { s = Do_while (body, c); sloc = l }
  | KW "switch" ->
      advance p;
      expect_punct p "(";
      let scrutinee = parse_expr p in
      expect_punct p ")";
      expect_punct p "{";
      let parse_arm () =
        let case_value =
          if accept_kw p "case" then begin
            let v = parse_expr p in
            expect_punct p ":";
            Some v
          end
          else begin
            expect_kw p "default";
            expect_punct p ":";
            None
          end
        in
        (* arm body runs until the next case/default label or the closing
           brace; an optional trailing 'break;' ends the arm (arms never
           fall through) *)
        let rec stmts acc =
          match peek p with
          | PUNCT "}" | KW "case" | KW "default" -> List.rev acc
          | KW "break" ->
              advance p;
              expect_punct p ";";
              (match peek p with
              | PUNCT "}" | KW "case" | KW "default" -> ()
              | _ -> err p "statements after 'break' in a switch arm");
              List.rev acc
          | _ -> stmts (parse_stmt p :: acc)
        in
        (case_value, stmts [])
      in
      let rec arms acc =
        if accept_punct p "}" then List.rev acc else arms (parse_arm () :: acc)
      in
      { s = Switch (scrutinee, arms []); sloc = l }
  | KW "return" ->
      advance p;
      let e = if peek p = PUNCT ";" then None else Some (parse_expr p) in
      expect_punct p ";";
      { s = Return e; sloc = l }
  | KW "spawn" ->
      advance p;
      expect_punct p "{";
      let body = parse_stmts_until p "}" in
      { s = Spawn body; sloc = l }
  | t when is_type_start t ->
      let st = parse_decl p in
      expect_punct p ";";
      st
  | _ ->
      let st = parse_simple p in
      expect_punct p ";";
      st

and block_of st = match st.s with Block b -> b | _ -> [ st ]

and parse_stmts_until p closer =
  let rec go acc =
    if accept_punct p closer then List.rev acc else go (parse_stmt p :: acc)
  in
  go []

(* declaration: ty name (= init)? (, name (= init)?)* — local variables *)
and parse_decl p =
  let l = loc p in
  let ty = parse_ty p in
  let rec go acc =
    let name = expect_id p in
    let size = if accept_punct p "[" then begin
        let e = parse_expr p in
        expect_punct p "]";
        Some e
      end
      else None
    in
    let init = if accept_punct p "=" then Some (parse_expr p) else None in
    let acc = (name, size, init) :: acc in
    if accept_punct p "," then go acc else List.rev acc
  in
  { s = Decl { ty; decls = go [] }; sloc = l }

(* init part of a for loop: declaration or simple statement *)
and parse_simple_or_decl p =
  let st = if is_type_start (peek p) then parse_decl p else parse_simple p in
  expect_punct p ";";
  st

(* assignment / increment / call statement (no trailing ';') *)
and parse_simple p =
  let l = loc p in
  match peek p with
  | PUNCT "++" ->
      advance p;
      { s = Incr (parse_postfix p); sloc = l }
  | PUNCT "--" ->
      advance p;
      { s = Decr (parse_postfix p); sloc = l }
  | _ -> (
      let lv = parse_expr p in
      match peek p with
      | PUNCT s when is_assign_punct s ->
          advance p;
          let rhs = parse_expr p in
          { s = Assign (assign_op_of s, lv, rhs); sloc = l }
      | PUNCT "++" ->
          advance p;
          { s = Incr lv; sloc = l }
      | PUNCT "--" ->
          advance p;
          { s = Decr lv; sloc = l }
      | _ -> { s = Expr_stmt lv; sloc = l })

(* ---- top-level structure ---- *)

(* encoding: elements separated by '::', terminated by ';' *)
let parse_encoding p =
  let parse_elem () =
    let l = loc p in
    match peek p with
    | INT { value; forced } -> (
        advance p;
        match forced with
        | Some ty -> Enc_lit (Bitvec.of_bn ty value)
        | None -> syntax_error l "encoding literals must be sized (e.g. 7'd0)")
    | ID field ->
        advance p;
        expect_punct p "[";
        let int_tok () =
          match peek p with
          | INT { value; _ } ->
              advance p;
              Bn.to_int_exn value
          | t -> err p "expected integer in encoding field range, found %s" (describe t)
        in
        let hi = int_tok () in
        expect_punct p ":";
        let lo = int_tok () in
        expect_punct p "]";
        Enc_field { field; hi; lo }
    | t -> err p "expected encoding element, found %s" (describe t)
  in
  let rec go acc =
    let e = parse_elem () in
    if accept_punct p "::" then go (e :: acc)
    else begin
      expect_punct p ";";
      List.rev (e :: acc)
    end
  in
  go []

let parse_attrs p =
  (* [[attr]] [[attr2]] ... *)
  let rec go acc =
    if peek p = PUNCT "[" && peek2 p = PUNCT "[" then begin
      advance p;
      advance p;
      let a = expect_id p in
      expect_punct p "]";
      expect_punct p "]";
      go (a :: acc)
    end
    else List.rev acc
  in
  go []

(* architectural_state body: storage-classed declarations *)
let parse_state_decls p =
  expect_punct p "{";
  let rec go acc =
    if accept_punct p "}" then List.rev acc
    else begin
      let l = loc p in
      let storage =
        if accept_kw p "register" then St_register
        else if accept_kw p "extern" then St_extern
        else if accept_kw p "const" then begin
          ignore (accept_kw p "register");
          St_const
        end
        else St_param
      in
      let ty = parse_ty p in
      let rec decls acc2 =
        let name = expect_id p in
        (* '[[' starts an attribute, a single '[' an array size *)
        let size =
          if peek p = PUNCT "[" && peek2 p <> PUNCT "[" then begin
            advance p;
            let e = parse_expr p in
            expect_punct p "]";
            Some e
          end
          else None
        in
        let attrs = parse_attrs p in
        let init = if accept_punct p "=" then Some (parse_expr p) else None in
        let d = { dname = name; dty = ty; storage; array_size = size; init; attrs; dloc = l } in
        if accept_punct p "," then decls (d :: acc2) else List.rev (d :: acc2)
      in
      let ds = decls [] in
      expect_punct p ";";
      go (List.rev ds @ acc)
    end
  in
  go []

let parse_instruction p =
  let l = loc p in
  let name = expect_id p in
  expect_punct p "{";
  let encoding = ref [] and behavior = ref [] in
  let rec go () =
    if accept_punct p "}" then ()
    else begin
      (match peek p with
      | KW "encoding" ->
          advance p;
          expect_punct p ":";
          encoding := parse_encoding p
      | KW "assembly" ->
          (* accepted and ignored: assembly syntax hints don't affect HLS *)
          advance p;
          expect_punct p ":";
          (match peek p with
          | STRING _ -> advance p
          | PUNCT "{" ->
              advance p;
              (match peek p with STRING _ -> advance p | _ -> ());
              (if accept_punct p "," then match peek p with STRING _ -> advance p | _ -> ());
              expect_punct p "}"
          | t -> err p "expected assembly string, found %s" (describe t));
          expect_punct p ";"
      | KW "behavior" ->
          advance p;
          expect_punct p ":";
          behavior := block_of (parse_stmt p)
      | t -> err p "expected instruction section, found %s" (describe t));
      go ()
    end
  in
  go ();
  { iname = name; encoding = !encoding; behavior = !behavior; iloc = l }

let parse_instructions p =
  expect_punct p "{";
  let d0 = p.depth in
  let rec go acc =
    if accept_punct p "}" then List.rev acc
    else
      match parse_instruction p with
      | i -> go (i :: acc)
      | exception Syntax_error (l, m) when recovering p ->
          (* record the error, drop the broken instruction and resume at
             its closing '}' so the remaining instructions still parse *)
          record_error p l m;
          resync_to_depth p d0;
          if peek p = EOF then List.rev acc else go acc
  in
  go []

let parse_always p =
  expect_punct p "{";
  let rec go acc =
    if accept_punct p "}" then List.rev acc
    else begin
      let l = loc p in
      let name = expect_id p in
      expect_punct p "{";
      let body = parse_stmts_until p "}" in
      go ({ aname = name; abody = body; aloc = l } :: acc)
    end
  in
  go []

let parse_functions p =
  expect_punct p "{";
  let rec go acc =
    if accept_punct p "}" then List.rev acc
    else begin
      let l = loc p in
      let ret = parse_ty p in
      let name = expect_id p in
      expect_punct p "(";
      let params =
        if accept_punct p ")" then []
        else begin
          let rec ps acc2 =
            let ty = parse_ty p in
            let pn = expect_id p in
            if accept_punct p "," then ps ((ty, pn) :: acc2)
            else begin
              expect_punct p ")";
              List.rev ((ty, pn) :: acc2)
            end
          in
          ps []
        end
      in
      expect_punct p "{";
      let body = parse_stmts_until p "}" in
      go ({ fname = name; ret; params; body; floc = l } :: acc)
    end
  in
  go []

let parse_isa p =
  expect_punct p "{";
  let state = ref [] and instructions = ref [] and always = ref [] and functions = ref [] in
  let rec go () =
    if accept_punct p "}" then ()
    else begin
      (match peek p with
      | KW "architectural_state" ->
          advance p;
          state := !state @ parse_state_decls p
      | KW "instructions" ->
          advance p;
          instructions := !instructions @ parse_instructions p
      | KW "always" ->
          advance p;
          always := !always @ parse_always p
      | KW "functions" ->
          advance p;
          functions := !functions @ parse_functions p
      | t -> err p "expected ISA section, found %s" (describe t));
      go ()
    end
  in
  go ();
  { state = !state; instructions = !instructions; always = !always; functions = !functions }

let is_toplevel_start = function
  | KW ("import" | "InstructionSet" | "Core") -> true
  | _ -> false

let parse_desc p =
  let imports = ref [] and sets = ref [] and cores = ref [] in
  let step () =
    match peek p with
    | EOF -> ()
    | KW "import" ->
        let l = loc p in
        advance p;
        (match peek p with
        | STRING s ->
            advance p;
            imports := (s, l) :: !imports
        | t -> err p "expected import path string, found %s" (describe t));
        (* the ';' is required by the Figure 2 grammar but omitted in the
           paper's own examples; accept both *)
        ignore (accept_punct p ";")
    | KW "InstructionSet" ->
        advance p;
        let name = expect_id p in
        let extends = if accept_kw p "extends" then Some (expect_id p) else None in
        let isa = parse_isa p in
        sets := { set_name = name; extends; set_isa = isa } :: !sets
    | KW "Core" ->
        advance p;
        let name = expect_id p in
        let provides =
          if accept_kw p "provides" then begin
            let rec ps acc =
              let s = expect_id p in
              if accept_punct p "," then ps (s :: acc) else List.rev (s :: acc)
            in
            ps []
          end
          else []
        in
        let isa = parse_isa p in
        cores := { core_name = name; provides; core_isa = isa } :: !cores
    | t -> err p "expected import, InstructionSet or Core, found %s" (describe t)
  in
  let rec go () =
    if peek p <> EOF then begin
      (try step ()
       with Syntax_error (l, m) when recovering p ->
         record_error p l m;
         (* resynchronize at the next top-level construct *)
         let start = p.i in
         while peek p <> EOF && (p.depth > 0 || not (is_toplevel_start (peek p))) do
           advance p
         done;
         if p.i = start && peek p <> EOF then advance p);
      go ()
    end
  in
  go ();
  { imports = List.rev !imports; sets = List.rev !sets; cores = List.rev !cores }

(* Parse a complete CoreDSL description from a string. When [diags] is
   given, recoverable syntax errors are accumulated there (and the broken
   construct dropped) instead of aborting the parse; lexical errors remain
   fatal. *)
let parse ?diags ?(file = "<input>") src =
  let toks = Array.of_list (Lexer.tokenize ~file src) in
  let p = { toks; i = 0; depth = 0; diags } in
  parse_desc p

(* Parse a single expression (for tests and parameter values). *)
let parse_expr_string ?(file = "<expr>") src =
  let toks = Array.of_list (Lexer.tokenize ~file src) in
  let p = { toks; i = 0; depth = 0; diags = None } in
  let e = parse_expr p in
  (match peek p with EOF -> () | t -> err p "trailing tokens after expression: %s" (describe t));
  e
