(* Elaboration of CoreDSL descriptions.

   Resolves imports, flattens InstructionSet inheritance chains into the
   providing Core (or a stand-alone set), evaluates ISA parameters, and
   resolves the architectural state into concrete registers, register files,
   ROMs and address spaces with fixed widths. The result is the input to
   {!Typecheck}. *)

module Bn = Bitvec.Bn
open Ast

exception Elab_error of Diag.t

let elab_error ?(code = "E0200") loc fmt =
  Format.kasprintf
    (fun m ->
      (* builtin constructs have no source position: emit a spanless
         diagnostic rather than an invalid <builtin>:0:0 span *)
      let span = if loc = no_loc then None else Some (span_of_loc loc) in
      raise (Elab_error (Diag.make ?span ~code m)))
    fmt

(* ---- constant expression evaluation ---- *)

(* Environment for compile-time evaluation: parameters and local constants. *)
type cenv = { vars : (string * Bitvec.t) list }

let empty_cenv = { vars = [] }

let rec const_eval (env : cenv) (e : expr) : Bitvec.t =
  match e.e with
  | Lit { value; forced = Some ty } -> Bitvec.of_bn ty value
  | Lit { value; forced = None } ->
      if Bn.compare value Bn.zero >= 0 then
        Bitvec.of_bn (Bitvec.unsigned_ty (max 1 (Bn.num_bits value))) value
      else Bitvec.of_bn (Bitvec.signed_ty (Bn.num_bits (Bn.neg value) + 1)) value
  | Ident name -> (
      match List.assoc_opt name env.vars with
      | Some v -> v
      | None -> elab_error ~code:"E0204" e.eloc "'%s' is not a compile-time constant" name)
  | Binop (op, a, b) -> const_binop e.eloc op (const_eval env a) (const_eval env b)
  | Unop (Neg, a) -> Bitvec.neg (const_eval env a)
  | Unop (Not, a) -> Bitvec.lognot (const_eval env a)
  | Unop (Lnot, a) -> Bitvec.of_bool (Bitvec.is_zero (const_eval env a))
  | Cast ({ cast_signed; cast_width }, a) -> (
      let v = const_eval env a in
      match cast_width with
      | None -> Bitvec.reinterpret_sign cast_signed v
      | Some w ->
          let w = Bitvec.to_int (const_eval env w) in
          Bitvec.cast (Bitvec.ty ~width:w ~signed:cast_signed) v)
  | Concat (a, b) -> Bitvec.concat (const_eval env a) (const_eval env b)
  | Ternary (c, t, f) ->
      if Bitvec.to_bool (const_eval env c) then const_eval env t else const_eval env f
  | Range (a, hi, lo) ->
      let v = const_eval env a in
      let hi = Bitvec.to_int (const_eval env hi) and lo = Bitvec.to_int (const_eval env lo) in
      Bitvec.extract v ~hi ~lo
  | Index (a, i) ->
      let v = const_eval env a and i = Bitvec.to_int (const_eval env i) in
      Bitvec.bit v i
  | Call (name, _) -> elab_error ~code:"E0204" e.eloc "call to '%s' in constant expression" name
  | Array_init _ ->
      elab_error ~code:"E0204" e.eloc "array initializer in scalar constant expression"

and const_binop loc op a b =
  let module B = Bitvec in
  match op with
  | Add -> B.add a b
  | Sub -> B.sub a b
  | Mul -> B.mul a b
  | Div -> B.div a b
  | Rem -> B.rem a b
  | Shl -> B.shift_left a (B.to_int b)
  | Shr -> B.shift_right a (B.to_int b)
  | And -> B.logand a b
  | Or -> B.logor a b
  | Xor -> B.logxor a b
  | Land -> B.of_bool (B.to_bool a && B.to_bool b)
  | Lor -> B.of_bool (B.to_bool a || B.to_bool b)
  | Eq -> B.of_bool (B.eq a b)
  | Ne -> B.of_bool (B.ne a b)
  | Lt -> B.of_bool (B.lt a b)
  | Le -> B.of_bool (B.le a b)
  | Gt -> B.of_bool (B.gt a b)
  | Ge -> B.of_bool (B.ge a b)
  |> fun r ->
  ignore loc;
  r

let const_eval_int env e = Bitvec.to_int (const_eval env e)

(* Resolve a type expression to a concrete Bitvec type. *)
let resolve_ty env loc = function
  | Ty_int { signed; width } ->
      let w = const_eval_int env width in
      if w <= 0 then elab_error loc "type width must be positive, got %d" w;
      Bitvec.ty ~width:w ~signed
  | Ty_void -> elab_error loc "void type is only allowed as a function return type"
  | Ty_alias a -> elab_error loc "unresolved type alias '%s'" a

(* ---- elaborated state model ---- *)

type reg = {
  rname : string;
  rty : Bitvec.ty;
  elems : int;  (* 1 for scalar registers *)
  is_pc : bool;
  rconst : bool;  (* ROM: internalized by synthesis *)
  rinit : Bitvec.t array option;
}

type addr_space = {
  sname : string;
  elem_ty : Bitvec.ty;
  space_size : Bn.t;
  is_main_mem : bool;
}

type elaborated = {
  ename : string;
  params : (string * Bitvec.t) list;
  regs : reg list;
  spaces : addr_space list;
  instructions : instruction list;
  always : always_block list;
  functions : func list;
}

let find_reg el name = List.find_opt (fun r -> r.rname = name) el.regs
let find_space el name = List.find_opt (fun s -> s.sname = name) el.spaces
let pc_reg el = List.find_opt (fun r -> r.is_pc) el.regs
let main_mem el = List.find_opt (fun s -> s.is_main_mem) el.spaces
let find_function el name = List.find_opt (fun f -> f.fname = name) el.functions

(* ---- import resolution and inheritance flattening ---- *)

type provider = string -> string option
(** maps an import path to CoreDSL source text *)

(* Parse [src] and all transitive imports; return every InstructionSet and
   Core seen, later definitions shadowing earlier ones by name. *)
let load ?diags ~(provider : provider) ~file src =
  let seen_imports = Hashtbl.create 8 in
  let sets = Hashtbl.create 8 and set_order = ref [] in
  let cores = Hashtbl.create 8 and core_order = ref [] in
  (* [chain] is the stack of import sites that led to [file], innermost
     first; it becomes the provenance labels of unresolved-import errors *)
  let rec go chain file src =
    Diag.register_source ~file src;
    let desc = Parser.parse ?diags ~file src in
    List.iter
      (fun (path, iloc) ->
        if not (Hashtbl.mem seen_imports path) then begin
          Hashtbl.add seen_imports path ();
          match provider path with
          | Some s -> go (iloc :: chain) path s
          | None ->
              let labels =
                List.map
                  (fun l -> { Diag.lb_span = span_of_loc l; lb_text = "imported here" })
                  chain
              in
              raise
                (Elab_error
                   (Diag.errorf ~span:(span_of_loc iloc) ~labels ~code:"E0201"
                      "cannot resolve import \"%s\"" path))
        end)
      desc.imports;
    List.iter
      (fun s ->
        if not (Hashtbl.mem sets s.set_name) then set_order := s.set_name :: !set_order;
        Hashtbl.replace sets s.set_name s)
      desc.sets;
    List.iter
      (fun c ->
        if not (Hashtbl.mem cores c.core_name) then core_order := c.core_name :: !core_order;
        Hashtbl.replace cores c.core_name c)
      desc.cores
  in
  go [] file src;
  (sets, List.rev !set_order, cores, List.rev !core_order)

(* Chain of instruction sets from the root ancestor down to [name]. *)
let inheritance_chain sets name =
  let rec go name acc =
    match Hashtbl.find_opt sets name with
    | None -> elab_error ~code:"E0202" no_loc "unknown instruction set '%s'" name
    | Some s -> (
        match s.extends with
        | None -> s :: acc
        | Some parent ->
            if List.exists (fun x -> x.set_name = parent) acc then
              elab_error ~code:"E0203" no_loc "cyclic inheritance involving '%s'" parent;
            go parent (s :: acc))
  in
  go name []

let concat_isa isas =
  List.fold_left
    (fun acc isa ->
      {
        state = acc.state @ isa.state;
        instructions = acc.instructions @ isa.instructions;
        always = acc.always @ isa.always;
        functions = acc.functions @ isa.functions;
      })
    empty_isa isas

(* Build the flattened ISA for a target. The target is either a Core (its
   provided sets plus its own sections) or a bare InstructionSet. *)
let flatten (sets, _set_order, cores, _core_order) target =
  match Hashtbl.find_opt cores target with
  | Some core ->
      let provided = List.concat_map (fun s -> inheritance_chain sets s) core.provides in
      (* deduplicate sets included via multiple inheritance paths *)
      let seen = Hashtbl.create 8 in
      let provided =
        List.filter
          (fun s ->
            if Hashtbl.mem seen s.set_name then false
            else begin
              Hashtbl.add seen s.set_name ();
              true
            end)
          provided
      in
      concat_isa (List.map (fun s -> s.set_isa) provided @ [ core.core_isa ])
  | None ->
      let chain = inheritance_chain sets target in
      concat_isa (List.map (fun s -> s.set_isa) chain)

(* ---- state resolution ---- *)

let elaborate_state isa =
  (* first pass: parameters, in declaration order; later (Core-level)
     assignments override earlier defaults *)
  let params = ref [] in
  let env () = { vars = !params } in
  List.iter
    (fun d ->
      if d.storage = St_param then begin
        let ty = resolve_ty (env ()) d.dloc d.dty in
        let v =
          match d.init with
          | Some e -> Bitvec.cast ty (const_eval (env ()) e)
          | None -> Bitvec.zero ty
        in
        params := (d.dname, v) :: List.remove_assoc d.dname !params
      end)
    isa.state;
  let regs = ref [] and spaces = ref [] in
  List.iter
    (fun d ->
      match d.storage with
      | St_param | St_local -> ()
      | St_register | St_const ->
          let ty = resolve_ty (env ()) d.dloc d.dty in
          let elems = match d.array_size with None -> 1 | Some e -> const_eval_int (env ()) e in
          if elems <= 0 then elab_error ~code:"E0205" d.dloc "register file '%s' has no elements" d.dname;
          let rinit =
            match d.init with
            | None -> None
            | Some { e = Array_init es; _ } ->
                let vals = List.map (fun e -> Bitvec.cast ty (const_eval (env ()) e)) es in
                if List.length vals > elems then
                  elab_error ~code:"E0205" d.dloc "initializer for '%s' has too many elements" d.dname;
                let a = Array.make elems (Bitvec.zero ty) in
                List.iteri (fun i v -> a.(i) <- v) vals;
                Some a
            | Some e -> Some [| Bitvec.cast ty (const_eval (env ()) e) |]
          in
          if d.storage = St_const && rinit = None then
            elab_error ~code:"E0205" d.dloc "const register '%s' requires an initializer" d.dname;
          let r =
            {
              rname = d.dname;
              rty = ty;
              elems;
              is_pc = List.mem "is_pc" d.attrs;
              rconst = d.storage = St_const;
              rinit;
            }
          in
          regs := r :: List.filter (fun x -> x.rname <> d.dname) !regs
      | St_extern ->
          let ty = resolve_ty (env ()) d.dloc d.dty in
          let size =
            match d.array_size with
            | Some e -> Bitvec.to_bn (const_eval (env ()) e)
            | None -> elab_error ~code:"E0205" d.dloc "address space '%s' requires a size" d.dname
          in
          let s =
            {
              sname = d.dname;
              elem_ty = ty;
              space_size = size;
              is_main_mem = List.mem "is_main_mem" d.attrs || d.dname = "MEM";
            }
          in
          spaces := s :: List.filter (fun x -> x.sname <> d.dname) !spaces)
    isa.state;
  (List.rev !params, List.rev !regs, List.rev !spaces)

(* Elaborate [target] (a Core or InstructionSet name) from [src] and its
   imports. *)
let elaborate ?diags ?(provider : provider = fun _ -> None) ?(file = "<input>") ~target src =
  let loaded = load ?diags ~provider ~file src in
  let isa = flatten loaded target in
  let params, regs, spaces = elaborate_state isa in
  (* instructions/always/functions: later definitions override earlier ones
     with the same name (a Core can refine an inherited instruction) *)
  let dedup key items =
    let rec go acc = function
      | [] -> List.rev acc
      | x :: rest ->
          if List.exists (fun y -> key y = key x) rest then go acc rest else go (x :: acc) rest
    in
    List.rev (go [] (List.rev items))
  in
  ignore dedup;
  let dedup_keep_last key items =
    let seen = Hashtbl.create 8 in
    List.rev
      (List.fold_left
         (fun acc x ->
           if Hashtbl.mem seen (key x) then
             (* replace earlier occurrence *)
             List.map (fun y -> if key y = key x then x else y) acc
           else begin
             Hashtbl.add seen (key x) ();
             x :: acc
           end)
         [] items)
  in
  {
    ename = target;
    params;
    regs;
    spaces;
    instructions = dedup_keep_last (fun i -> i.iname) isa.instructions;
    always = dedup_keep_last (fun a -> a.aname) isa.always;
    functions = dedup_keep_last (fun f -> f.fname) isa.functions;
  }
