(** Type checker for CoreDSL behaviors.

   Implements the bitwidth-aware type system of Section 2.3: all operators
   produce results wide enough to avoid over-/underflow, and assignments
   that would lose precision or sign information are rejected unless an
   explicit cast is present. Produces the typed AST of {!Tast}. *)

module Bn = Bitvec.Bn
exception Type_error of Diag.t
val type_error :
  ?code:string -> Ast.loc -> ('a, Format.formatter, unit, 'b) format4 -> 'a
type ctx = {
  elab : Elaborate.elaborated;
  cenv : Elaborate.cenv;
  fields : Tast.field_info list;
  mutable scopes : (string * Bitvec.ty) list list;
  fn_ret : Bitvec.ty option option;
  in_always : bool;
  tfuncs : (string * Tast.tfunc) list;
}
val lookup_local : ctx -> string -> Bitvec.ty option
val declare_local : ctx -> Ast.loc -> string -> Bitvec.ty -> unit
val push_scope : ctx -> unit
val pop_scope : ctx -> unit
val in_scope : ctx -> (unit -> 'a) -> 'a
val try_const : ctx -> Ast.expr -> Bitvec.t option
val expr_equal : Ast.expr -> Ast.expr -> bool
val range_width :
  ctx ->
  Ast.loc ->
  Ast.expr ->
  Ast.expr -> [> `Dynamic of int | `Static of int * int ]
val index_width : int -> int
val coerce :
  'a ->
  Ast.loc ->
  Bitvec.ty -> Tast.texpr -> Tast.texpr
val wrap_to :
  Bitvec.ty ->
  Tast.texpr -> Ast.loc -> Tast.texpr
val check_expr : ctx -> Ast.expr -> Tast.texpr
val check_ident :
  ctx -> Ast.loc -> string -> Tast.texpr
val check_index :
  ctx ->
  Ast.loc ->
  Ast.expr -> Ast.expr -> Tast.texpr
val bit_select :
  ctx ->
  Ast.loc ->
  Tast.texpr -> Ast.expr -> Tast.texpr
val check_range :
  ctx ->
  Ast.loc ->
  Ast.expr ->
  Ast.expr -> Ast.expr -> Tast.texpr
val check_binop :
  ctx ->
  Ast.loc ->
  Ast.binop ->
  Ast.expr -> Ast.expr -> Tast.texpr
val check_unop :
  ctx ->
  Ast.loc ->
  Ast.unop -> Ast.expr -> Tast.texpr
val check_call :
  ctx ->
  Ast.loc ->
  string -> Ast.expr list -> Tast.texpr
val resolve_local_ty :
  ctx -> Ast.loc -> Ast.ty_expr -> Bitvec.ty
val switch_counter : int ref
val fresh_switch_name : unit -> string
val check_stmt : ctx -> Ast.stmt -> Tast.tstmt list
val check_stmts :
  ctx -> Ast.stmt list -> Tast.tstmt list
val check_assign :
  ctx ->
  Ast.loc ->
  Ast.expr -> Tast.texpr -> Tast.tstmt
val check_encoding :
  Ast.loc ->
  Ast.enc_elem list ->
  int * Bitvec.t * Bitvec.t * Tast.field_info list
val check_function :
  Elaborate.elaborated ->
  Elaborate.cenv ->
  (string * Tast.tfunc) list ->
  Ast.func -> Tast.tfunc
val check_instruction :
  Elaborate.elaborated ->
  Elaborate.cenv ->
  (string * Tast.tfunc) list ->
  Ast.instruction -> Tast.tinstr
val check_always :
  Elaborate.elaborated ->
  Elaborate.cenv ->
  (string * Tast.tfunc) list ->
  Ast.always_block -> Tast.talways
val check : Elaborate.elaborated -> Tast.tunit

val check_all : Elaborate.elaborated -> (Tast.tunit, Diag.t list) result
(** Like {!check} but accumulates one diagnostic per failing
    function/instruction/always-block instead of aborting on the first. *)
