(* Type checker for CoreDSL behaviors.

   Implements the bitwidth-aware type system of Section 2.3: all operators
   produce results wide enough to avoid over-/underflow, and assignments
   that would lose precision or sign information are rejected unless an
   explicit cast is present. Produces the typed AST of {!Tast}. *)

module Bn = Bitvec.Bn
open Ast
open Tast

exception Type_error of Diag.t

let type_error ?(code = "E0109") loc fmt =
  Format.kasprintf
    (fun m -> raise (Type_error (Diag.make ~span:(span_of_loc loc) ~code m)))
    fmt

type ctx = {
  elab : Elaborate.elaborated;
  cenv : Elaborate.cenv;  (* parameters for const-eval *)
  fields : field_info list;  (* encoding fields of current instruction *)
  mutable scopes : (string * Bitvec.ty) list list;  (* innermost first *)
  fn_ret : Bitvec.ty option option;  (* Some r = inside function returning r *)
  in_always : bool;
  tfuncs : (string * tfunc) list;  (* already-checked functions *)
}

let lookup_local ctx name =
  let rec go = function
    | [] -> None
    | scope :: rest -> ( match List.assoc_opt name scope with Some t -> Some t | None -> go rest)
  in
  go ctx.scopes

let declare_local ctx loc name ty =
  match ctx.scopes with
  | scope :: rest ->
      if List.mem_assoc name scope then type_error ~code:"E0108" loc "redeclaration of '%s'" name;
      ctx.scopes <- ((name, ty) :: scope) :: rest
  | [] -> assert false

let push_scope ctx = ctx.scopes <- [] :: ctx.scopes
let pop_scope ctx = match ctx.scopes with _ :: rest -> ctx.scopes <- rest | [] -> ()

let in_scope ctx f =
  push_scope ctx;
  let r = f () in
  pop_scope ctx;
  r

(* try to evaluate an expression as a compile-time constant *)
let try_const ctx e = try Some (Elaborate.const_eval ctx.cenv e) with _ -> None

(* structural expression equality, used for the [from:to] same-variable rule *)
let rec expr_equal a b =
  match (a.e, b.e) with
  | Lit { value = v1; _ }, Lit { value = v2; _ } -> Bn.equal v1 v2
  | Ident x, Ident y -> x = y
  | Index (a1, i1), Index (a2, i2) -> expr_equal a1 a2 && expr_equal i1 i2
  | Range (a1, h1, l1), Range (a2, h2, l2) ->
      expr_equal a1 a2 && expr_equal h1 h2 && expr_equal l1 l2
  | Binop (o1, x1, y1), Binop (o2, x2, y2) -> o1 = o2 && expr_equal x1 x2 && expr_equal y1 y2
  | Unop (o1, x1), Unop (o2, x2) -> o1 = o2 && expr_equal x1 x2
  | Concat (x1, y1), Concat (x2, y2) -> expr_equal x1 x2 && expr_equal y1 y2
  | _ -> false

(* Decompose a range [hi:lo]: the width must be static. Returns the typed
   low index and the width. Accepts (1) both bounds constant, (2) hi
   structurally equal to lo + c for a constant c. *)
let range_width ctx loc hi lo =
  match (try_const ctx hi, try_const ctx lo) with
  | Some h, Some l ->
      let h = Bitvec.to_int h and l = Bitvec.to_int l in
      if h < l then type_error ~code:"E0104" loc "range [%d:%d] is reversed" h l;
      `Static (h, l)
  | _ -> (
      (* hi must be lo + c *)
      match hi.e with
      | Binop (Add, base, ofs) when expr_equal base lo -> (
          match try_const ctx ofs with
          | Some c -> `Dynamic (Bitvec.to_int c)
          | None -> type_error ~code:"E0104" loc "range bounds must differ by a compile-time constant")
      | Binop (Add, ofs, base) when expr_equal base lo -> (
          match try_const ctx ofs with
          | Some c -> `Dynamic (Bitvec.to_int c)
          | None -> type_error ~code:"E0104" loc "range bounds must differ by a compile-time constant")
      | _ ->
          type_error loc
            "range bounds must be constants or reference the same expression with a constant \
             offset")

let index_width elems = max 1 (Bitvec.Bn.num_bits (Bitvec.Bn.of_int (max 1 (elems - 1))))

(* insert an implicit conversion to [ty], failing if information is lost *)
let coerce ctx loc (ty : Bitvec.ty) (e : texpr) =
  ignore ctx;
  if Bitvec.ty_equal e.tty ty then e
  else if Bitvec.implicit_conv_ok ~src:e.tty ~dst:ty then { te = T_cast e; tty = ty; tloc = loc }
  else
    type_error ~code:"E0102" loc "implicit conversion from %s to %s loses information (use an explicit cast)"
      (Bitvec.ty_to_string e.tty) (Bitvec.ty_to_string ty)

(* truncating conversion used by compound assignments and ++/-- *)
let wrap_to ty (e : texpr) loc = if Bitvec.ty_equal e.tty ty then e else { te = T_cast e; tty = ty; tloc = loc }

let rec check_expr ctx (e : expr) : texpr =
  let loc = e.eloc in
  match e.e with
  | Lit { value; forced = Some ty } -> { te = T_lit (Bitvec.of_bn ty value); tty = ty; tloc = loc }
  | Lit { value; forced = None } ->
      let v =
        if Bn.compare value Bn.zero >= 0 then
          Bitvec.of_bn (Bitvec.unsigned_ty (max 1 (Bn.num_bits value))) value
        else Bitvec.of_bn (Bitvec.signed_ty (Bn.num_bits (Bn.neg value) + 1)) value
      in
      { te = T_lit v; tty = Bitvec.typ v; tloc = loc }
  | Ident name -> check_ident ctx loc name
  | Index (base, idx) -> check_index ctx loc base idx
  | Range (base, hi, lo) -> check_range ctx loc base hi lo
  | Binop (op, a, b) -> check_binop ctx loc op a b
  | Unop (op, a) -> check_unop ctx loc op a
  | Cast ({ cast_signed; cast_width }, a) -> (
      let ta = check_expr ctx a in
      match cast_width with
      | None ->
          let ty = { (ta.tty) with Bitvec.signed = cast_signed } in
          { te = T_cast ta; tty = ty; tloc = loc }
      | Some w ->
          let w =
            match try_const ctx w with
            | Some v -> Bitvec.to_int v
            | None -> type_error loc "cast width must be a compile-time constant"
          in
          let ty = Bitvec.ty ~width:w ~signed:cast_signed in
          { te = T_cast ta; tty = ty; tloc = loc })
  | Concat (a, b) ->
      let ta = check_expr ctx a and tb = check_expr ctx b in
      {
        te = T_concat (ta, tb);
        tty = Bitvec.concat_result_ty ta.tty tb.tty;
        tloc = loc;
      }
  | Ternary (c, t, f) ->
      let tc = check_expr ctx c in
      let tt = check_expr ctx t and tf = check_expr ctx f in
      let ty = Bitvec.union_ty tt.tty tf.tty in
      let tt = coerce ctx loc ty tt and tf = coerce ctx loc ty tf in
      { te = T_ternary (tc, tt, tf); tty = ty; tloc = loc }
  | Call (name, args) -> check_call ctx loc name args
  | Array_init _ -> type_error loc "array initializer not allowed in expression context"

and check_ident ctx loc name =
  match lookup_local ctx name with
  | Some ty -> { te = T_local name; tty = ty; tloc = loc }
  | None -> (
      match List.find_opt (fun (f : field_info) -> f.fld_name = name) ctx.fields with
      | Some f -> { te = T_field name; tty = Bitvec.unsigned_ty f.fld_width; tloc = loc }
      | None -> (
          match List.assoc_opt name ctx.elab.params with
          | Some v -> { te = T_lit v; tty = Bitvec.typ v; tloc = loc }
          | None -> (
              match Elaborate.find_reg ctx.elab name with
              | Some r when r.elems = 1 && not r.rconst ->
                  { te = T_reg name; tty = r.rty; tloc = loc }
              | Some r when r.elems = 1 && r.rconst -> (
                  match r.rinit with
                  | Some a -> { te = T_lit a.(0); tty = r.rty; tloc = loc }
                  | None -> assert false)
              | Some _ -> type_error loc "register file '%s' must be indexed" name
              | None -> type_error ~code:"E0101" loc "unknown identifier '%s'" name)))

and check_index ctx loc base idx =
  match base.e with
  | Ident name when Elaborate.find_reg ctx.elab name <> None && lookup_local ctx name = None
                    && not (List.exists (fun (f : field_info) -> f.fld_name = name) ctx.fields) -> (
      let r = Option.get (Elaborate.find_reg ctx.elab name) in
      if r.elems = 1 then begin
        (* bit select on a scalar register *)
        let tb = check_expr ctx base in
        bit_select ctx loc tb idx
      end
      else begin
        let ti = check_expr ctx idx in
        let want = Bitvec.unsigned_ty (index_width r.elems) in
        ignore want;
        if r.rconst then { te = T_rom (name, ti); tty = r.rty; tloc = loc }
        else { te = T_regfile (name, ti); tty = r.rty; tloc = loc }
      end)
  | Ident name when Elaborate.find_space ctx.elab name <> None ->
      let s = Option.get (Elaborate.find_space ctx.elab name) in
      let ta = check_expr ctx idx in
      { te = T_mem { space = name; addr = ta; elems = 1 }; tty = s.elem_ty; tloc = loc }
  | _ ->
      (* bit select on an arbitrary value *)
      let tb = check_expr ctx base in
      bit_select ctx loc tb idx

and bit_select ctx loc (tb : texpr) idx =
  let ti = check_expr ctx idx in
  ignore ctx;
  { te = T_extract { value = tb; lo = ti; width = 1 }; tty = Bitvec.unsigned_ty 1; tloc = loc }

and check_range ctx loc base hi lo =
  match base.e with
  | Ident name when Elaborate.find_space ctx.elab name <> None -> (
      (* multi-element little-endian memory access MEM[addr+k:addr] *)
      let s = Option.get (Elaborate.find_space ctx.elab name) in
      match range_width ctx loc hi lo with
      | `Static (h, l) ->
          let elems = h - l + 1 in
          let ta = check_expr ctx { e = Lit { value = Bn.of_int l; forced = None }; eloc = loc } in
          {
            te = T_mem { space = name; addr = ta; elems };
            tty = Bitvec.unsigned_ty (elems * s.elem_ty.Bitvec.width);
            tloc = loc;
          }
      | `Dynamic ofs ->
          let elems = ofs + 1 in
          let ta = check_expr ctx lo in
          {
            te = T_mem { space = name; addr = ta; elems };
            tty = Bitvec.unsigned_ty (elems * s.elem_ty.Bitvec.width);
            tloc = loc;
          })
  | _ -> (
      let tb = check_expr ctx base in
      match range_width ctx loc hi lo with
      | `Static (h, l) ->
          if h >= tb.tty.Bitvec.width then
            type_error ~code:"E0104" loc "range [%d:%d] exceeds width of %s" h l (Bitvec.ty_to_string tb.tty);
          let tl = { te = T_lit (Bitvec.of_int (Bitvec.unsigned_ty 32) l); tty = Bitvec.unsigned_ty 32; tloc = loc } in
          { te = T_extract { value = tb; lo = tl; width = h - l + 1 }; tty = Bitvec.unsigned_ty (h - l + 1); tloc = loc }
      | `Dynamic ofs ->
          let tl = check_expr ctx lo in
          { te = T_extract { value = tb; lo = tl; width = ofs + 1 }; tty = Bitvec.unsigned_ty (ofs + 1); tloc = loc })

and check_binop ctx loc op a b =
  let ta = check_expr ctx a and tb = check_expr ctx b in
  let module B = Bitvec in
  let bool_t = B.bool_ty in
  match op with
  | Add -> { te = T_binop (op, ta, tb); tty = B.add_result_ty ta.tty tb.tty; tloc = loc }
  | Sub -> { te = T_binop (op, ta, tb); tty = B.sub_result_ty ta.tty tb.tty; tloc = loc }
  | Mul -> { te = T_binop (op, ta, tb); tty = B.mul_result_ty ta.tty tb.tty; tloc = loc }
  | Div -> { te = T_binop (op, ta, tb); tty = B.div_result_ty ta.tty tb.tty; tloc = loc }
  | Rem -> { te = T_binop (op, ta, tb); tty = B.rem_result_ty ta.tty tb.tty; tloc = loc }
  | Shl | Shr -> { te = T_binop (op, ta, tb); tty = ta.tty; tloc = loc }
  | And | Or | Xor ->
      let ty = B.bitwise_result_ty ta.tty tb.tty in
      { te = T_binop (op, ta, tb); tty = ty; tloc = loc }
  | Land | Lor -> { te = T_binop (op, ta, tb); tty = bool_t; tloc = loc }
  | Eq | Ne | Lt | Le | Gt | Ge -> { te = T_binop (op, ta, tb); tty = bool_t; tloc = loc }

and check_unop ctx loc op a =
  let ta = check_expr ctx a in
  match op with
  | Neg -> { te = T_unop (Neg, ta); tty = Bitvec.neg_result_ty ta.tty; tloc = loc }
  | Not -> { te = T_unop (Not, ta); tty = ta.tty; tloc = loc }
  | Lnot -> { te = T_unop (Lnot, ta); tty = Bitvec.bool_ty; tloc = loc }

and check_call ctx loc name args =
  match List.assoc_opt name ctx.tfuncs with
  | None -> type_error ~code:"E0105" loc "call to unknown function '%s'" name
  | Some f ->
      if List.length args <> List.length f.tf_params then
        type_error ~code:"E0105" loc "'%s' expects %d arguments, got %d" name (List.length f.tf_params)
          (List.length args);
      let targs =
        List.map2
          (fun arg (_, pty) ->
            let ta = check_expr ctx arg in
            coerce ctx loc pty ta)
          args f.tf_params
      in
      let ret =
        match f.tf_ret with
        | Some r -> r
        | None -> type_error ~code:"E0105" loc "void function '%s' used in expression" name
      in
      { te = T_call (name, targs); tty = ret; tloc = loc }

(* ---- statements ---- *)

let resolve_local_ty ctx loc ty =
  match ty with
  | Ty_int { signed; width } -> (
      match try_const ctx width with
      | Some w -> Bitvec.ty ~width:(Bitvec.to_int w) ~signed
      | None -> type_error loc "local variable width must be a compile-time constant")
  | Ty_void -> type_error loc "local variable cannot be void"
  | Ty_alias a -> type_error loc "unresolved type alias '%s'" a

(* unique names for switch scrutinee snapshots *)
let switch_counter = ref 0

let fresh_switch_name () =
  incr switch_counter;
  Printf.sprintf "__switch%d" !switch_counter

let rec check_stmt ctx (st : stmt) : tstmt list =
  let loc = st.sloc in
  match st.s with
  | Decl { ty; decls } ->
      List.map
        (fun (name, size, init) ->
          if size <> None then type_error loc "local arrays are not supported";
          let t = resolve_local_ty ctx loc ty in
          let tinit =
            Option.map
              (fun e ->
                let te = check_expr ctx e in
                coerce ctx loc t te)
              init
          in
          declare_local ctx loc name t;
          { ts = S_local_decl (name, t, tinit); tsloc = loc })
        decls
  | Assign (A_eq, lv, rhs) ->
      let trhs = check_expr ctx rhs in
      [ check_assign ctx loc lv trhs ]
  | Assign (op, lv, rhs) ->
      (* compound assignment: a op= b  ==>  a = (typeof a)(a op b) *)
      let binop =
        match op with
        | A_add -> Add
        | A_sub -> Sub
        | A_mul -> Mul
        | A_and -> And
        | A_or -> Or
        | A_xor -> Xor
        | A_shl -> Shl
        | A_shr -> Shr
        | A_eq -> assert false
      in
      let tl = check_expr ctx lv in
      let trhs = check_binop ctx loc binop lv rhs in
      let wrapped = wrap_to tl.tty trhs loc in
      [ check_assign ctx loc lv wrapped ]
  | Incr lv ->
      let tl = check_expr ctx lv in
      let one = { e = Lit { value = Bn.one; forced = None }; eloc = loc } in
      let trhs = check_binop ctx loc Add lv one in
      [ check_assign ctx loc lv (wrap_to tl.tty trhs loc) ]
  | Decr lv ->
      let tl = check_expr ctx lv in
      let one = { e = Lit { value = Bn.one; forced = None }; eloc = loc } in
      let trhs = check_binop ctx loc Sub lv one in
      [ check_assign ctx loc lv (wrap_to tl.tty trhs loc) ]
  | Expr_stmt e -> (
      match e.e with
      | Call (name, args) -> (
          match List.assoc_opt name ctx.tfuncs with
          | Some { tf_ret = None; _ } ->
              (* void call: check arguments only *)
              let f = List.assoc name ctx.tfuncs in
              if List.length args <> List.length f.tf_params then
                type_error ~code:"E0105" loc "'%s' expects %d arguments" name (List.length f.tf_params);
              let targs =
                List.map2
                  (fun arg (_, pty) -> coerce ctx loc pty (check_expr ctx arg))
                  args f.tf_params
              in
              [ { ts = S_expr { te = T_call (name, targs); tty = Bitvec.bool_ty; tloc = loc }; tsloc = loc } ]
          | _ ->
              let te = check_expr ctx e in
              [ { ts = S_expr te; tsloc = loc } ])
      | _ ->
          let te = check_expr ctx e in
          [ { ts = S_expr te; tsloc = loc } ])
  | If (c, thn, els) ->
      let tc = check_expr ctx c in
      let tthn = in_scope ctx (fun () -> check_stmts ctx thn) in
      let tels = in_scope ctx (fun () -> check_stmts ctx els) in
      [ { ts = S_if (tc, tthn, tels); tsloc = loc } ]
  | While (cond, body) ->
      (* while (c) B  ==  for (; c; ) B *)
      check_stmt ctx { s = For (None, Some cond, None, body); sloc = loc }
  | Do_while (body, cond) ->
      (* do B while (c)  ==  B; while (c) B *)
      let first = in_scope ctx (fun () -> check_stmts ctx body) in
      let rest = check_stmt ctx { s = While (cond, body); sloc = loc } in
      first @ rest
  | Switch (scrutinee, arms) ->
      (* desugared to an if-else chain over a snapshot of the scrutinee;
         arms do not fall through *)
      let tscrut = check_expr ctx scrutinee in
      let tmp = fresh_switch_name () in
      declare_local ctx loc tmp tscrut.tty;
      let decl = { ts = S_local_decl (tmp, tscrut.tty, Some tscrut); tsloc = loc } in
      let tmp_ref = { te = T_local tmp; tty = tscrut.tty; tloc = loc } in
      let default_arm =
        match List.filter (fun (v, _) -> v = None) arms with
        | [] -> []
        | [ (_, body) ] -> in_scope ctx (fun () -> check_stmts ctx body)
        | _ -> type_error loc "multiple default arms in switch"
      in
      let case_arms = List.filter (fun (v, _) -> v <> None) arms in
      let chain =
        List.fold_right
          (fun (v, body) els ->
            let tv = check_expr ctx (Option.get v) in
            let cond =
              { te = T_binop (Eq, tmp_ref, tv); tty = Bitvec.bool_ty; tloc = loc }
            in
            let tbody = in_scope ctx (fun () -> check_stmts ctx body) in
            [ { ts = S_if (cond, tbody, els); tsloc = loc } ])
          case_arms default_arm
      in
      decl :: chain
  | For (init, cond, step, body) ->
      in_scope ctx (fun () ->
          let tinit = match init with None -> [] | Some st -> check_stmt ctx st in
          let tcond =
            match cond with
            | Some c -> check_expr ctx c
            | None -> { te = T_lit (Bitvec.of_bool true); tty = Bitvec.bool_ty; tloc = loc }
          in
          let tstep = match step with None -> [] | Some st -> check_stmt ctx st in
          let tbody = in_scope ctx (fun () -> check_stmts ctx body) in
          [ { ts = S_for { init = tinit; cond = tcond; step = tstep; body = tbody }; tsloc = loc } ])
  | Spawn body ->
      if ctx.in_always then type_error ~code:"E0106" loc "spawn is not allowed inside an always-block";
      if ctx.fn_ret <> None then type_error ~code:"E0106" loc "spawn is not allowed inside a function";
      let tbody = in_scope ctx (fun () -> check_stmts ctx body) in
      [ { ts = S_spawn tbody; tsloc = loc } ]
  | Return e -> (
      match ctx.fn_ret with
      | None -> type_error ~code:"E0106" loc "return outside of a function"
      | Some None ->
          if e <> None then type_error ~code:"E0105" loc "void function cannot return a value";
          [ { ts = S_return None; tsloc = loc } ]
      | Some (Some rty) -> (
          match e with
          | None -> type_error ~code:"E0106" loc "function must return a value"
          | Some e ->
              let te = check_expr ctx e in
              [ { ts = S_return (Some (coerce ctx loc rty te)); tsloc = loc } ]))
  | Block body -> in_scope ctx (fun () -> [ { ts = S_if ({ te = T_lit (Bitvec.of_bool true); tty = Bitvec.bool_ty; tloc = loc }, check_stmts ctx body, []); tsloc = loc } ])

and check_stmts ctx stmts = List.concat_map (check_stmt ctx) stmts

and check_assign ctx loc lv (rhs : texpr) : tstmt =
  match lv.e with
  | Ident name -> (
      match lookup_local ctx name with
      | Some ty -> { ts = S_assign_local (name, coerce ctx loc ty rhs); tsloc = loc }
      | None -> (
          match Elaborate.find_reg ctx.elab name with
          | Some r when r.rconst -> type_error ~code:"E0103" loc "cannot assign to constant register '%s'" name
          | Some r when r.elems = 1 ->
              { ts = S_assign_reg (name, coerce ctx loc r.rty rhs); tsloc = loc }
          | Some _ -> type_error ~code:"E0103" loc "register file '%s' must be indexed in assignment" name
          | None ->
              if List.exists (fun (f : field_info) -> f.fld_name = name) ctx.fields then
                type_error ~code:"E0103" loc "cannot assign to encoding field '%s'" name
              else type_error ~code:"E0103" loc "unknown assignment target '%s'" name))
  | Index (({ e = Ident name; _ } as base), idx) -> (
      match Elaborate.find_reg ctx.elab name with
      | Some r when r.elems > 1 && lookup_local ctx name = None ->
          if r.rconst then type_error ~code:"E0103" loc "cannot assign to constant register file '%s'" name;
          let ti = check_expr ctx idx in
          { ts = S_assign_regfile (name, ti, coerce ctx loc r.rty rhs); tsloc = loc }
      | _ -> (
          match Elaborate.find_space ctx.elab name with
          | Some s ->
              let ta = check_expr ctx idx in
              {
                ts = S_assign_mem { space = name; addr = ta; value = coerce ctx loc s.elem_ty rhs; elems = 1 };
                tsloc = loc;
              }
          | None ->
              ignore base;
              type_error ~code:"E0103" loc "unsupported assignment target"))
  | Range (({ e = Ident name; _ } as base), hi, lo) -> (
      match Elaborate.find_space ctx.elab name with
      | Some s -> (
          match range_width ctx loc hi lo with
          | `Static (h, l) ->
              let elems = h - l + 1 in
              let ta = check_expr ctx { e = Lit { value = Bn.of_int l; forced = None }; eloc = loc } in
              let want = Bitvec.unsigned_ty (elems * s.elem_ty.Bitvec.width) in
              {
                ts = S_assign_mem { space = name; addr = ta; value = coerce ctx loc want rhs; elems };
                tsloc = loc;
              }
          | `Dynamic ofs ->
              let elems = ofs + 1 in
              let ta = check_expr ctx lo in
              let want = Bitvec.unsigned_ty (elems * s.elem_ty.Bitvec.width) in
              {
                ts = S_assign_mem { space = name; addr = ta; value = coerce ctx loc want rhs; elems };
                tsloc = loc;
              })
      | None ->
          ignore base;
          type_error ~code:"E0103" loc "bit-range assignment is only supported on address spaces")
  | _ -> type_error ~code:"E0103" loc "unsupported assignment target"

(* ---- encodings ---- *)

let check_encoding loc (enc : enc_elem list) =
  if enc = [] then type_error ~code:"E0107" loc "instruction has no encoding";
  let total = List.fold_left (fun n el -> n + match el with
      | Enc_lit v -> Bitvec.width v
      | Enc_field { hi; lo; _ } -> hi - lo + 1) 0 enc
  in
  let mask = ref Bn.zero and match_bits = ref Bn.zero in
  let fields : (string, field_segment list * int) Hashtbl.t = Hashtbl.create 4 in
  let pos = ref total in
  List.iter
    (fun el ->
      match el with
      | Enc_lit v ->
          let w = Bitvec.width v in
          pos := !pos - w;
          let ones = Bn.sub (Bn.pow2 w) Bn.one in
          mask := Bn.add !mask (Bn.shift_left ones !pos);
          match_bits := Bn.add !match_bits (Bn.shift_left (Bitvec.pattern v) !pos)
      | Enc_field { field; hi; lo } ->
          let w = hi - lo + 1 in
          if w <= 0 then type_error ~code:"E0107" loc "empty field range in encoding";
          pos := !pos - w;
          let seg = { instr_lo = !pos; fld_lo = lo; seg_len = w } in
          let segs, maxw =
            match Hashtbl.find_opt fields field with Some (s, m) -> (s, m) | None -> ([], 0)
          in
          Hashtbl.replace fields field (seg :: segs, max maxw (hi + 1)))
    enc;
  if !pos <> 0 then assert false;
  let field_infos =
    Hashtbl.fold
      (fun name (segs, w) acc -> { fld_name = name; fld_width = w; segments = segs } :: acc)
      fields []
  in
  ( total,
    Bitvec.of_bn (Bitvec.unsigned_ty total) !mask,
    Bitvec.of_bn (Bitvec.unsigned_ty total) !match_bits,
    field_infos )

(* ---- top level ---- *)

let check_function elab cenv tfuncs (f : func) : tfunc =
  let ret =
    match f.ret with
    | Ty_void -> None
    | ty -> Some (Elaborate.resolve_ty cenv f.floc ty)
  in
  let params =
    List.map (fun (ty, name) -> (name, Elaborate.resolve_ty cenv f.floc ty)) f.params
  in
  let ctx =
    {
      elab;
      cenv;
      fields = [];
      scopes = [ params ];
      fn_ret = Some ret;
      in_always = false;
      tfuncs;
    }
  in
  let body = check_stmts ctx f.body in
  { tf_name = f.fname; tf_ret = ret; tf_params = params; tf_body = body }

let check_instruction elab cenv tfuncs (i : instruction) : tinstr =
  let enc_width, mask, match_bits, fields = check_encoding i.iloc i.encoding in
  let ctx =
    { elab; cenv; fields; scopes = [ [] ]; fn_ret = None; in_always = false; tfuncs }
  in
  let behavior = check_stmts ctx i.behavior in
  { ti_name = i.iname; enc_width; mask; match_bits; fields; ti_behavior = behavior }

let check_always elab cenv tfuncs (a : always_block) : talways =
  let ctx =
    { elab; cenv; fields = []; scopes = [ [] ]; fn_ret = None; in_always = true; tfuncs }
  in
  { ta_name = a.aname; ta_body = check_stmts ctx a.abody }

(* Type-check a whole elaborated unit, failing on the first error. *)
let check (elab : Elaborate.elaborated) : tunit =
  let cenv = { Elaborate.vars = elab.params } in
  (* functions first (they may call previously defined functions only) *)
  let tfuncs =
    List.fold_left
      (fun acc f -> acc @ [ (f.fname, check_function elab cenv acc f) ])
      [] elab.functions
  in
  let tinstrs = List.map (check_instruction elab cenv tfuncs) elab.instructions in
  let talways = List.map (check_always elab cenv tfuncs) elab.always in
  {
    tu_name = elab.ename;
    elab;
    tinstrs;
    talways;
    tfuncs = List.map snd tfuncs;
  }

(* Type-check a whole elaborated unit, accumulating one diagnostic per
   failing function/instruction/always-block instead of aborting on the
   first. Elaboration errors raised during checking (width resolution,
   const-eval) are accumulated the same way. *)
let check_all (elab : Elaborate.elaborated) : (tunit, Diag.t list) result =
  let c = Diag.collector () in
  let cenv = { Elaborate.vars = elab.params } in
  let collect f =
    match f () with
    | v -> Some v
    | exception Type_error d -> Diag.add c d; None
    | exception Elaborate.Elab_error d -> Diag.add c d; None
  in
  let tfuncs =
    List.fold_left
      (fun acc f ->
        match collect (fun () -> check_function elab cenv acc f) with
        | Some tf -> acc @ [ (f.fname, tf) ]
        | None -> acc)
      [] elab.functions
  in
  let tinstrs =
    List.filter_map
      (fun i -> collect (fun () -> check_instruction elab cenv tfuncs i))
      elab.instructions
  in
  let talways =
    List.filter_map (fun a -> collect (fun () -> check_always elab cenv tfuncs a)) elab.always
  in
  if Diag.has_errors c then Error (Diag.to_list c)
  else
    Ok
      {
        tu_name = elab.ename;
        elab;
        tinstrs;
        talways;
        tfuncs = List.map snd tfuncs;
      }
