(* CoreDSL front-end: public entry points.

   Typical use:
   {[
     let tu = Coredsl.compile ~target:"X_DOTP" source in
     let st = Coredsl.Interp.create tu in
     ...
   ]}

   [compile] parses [source] (resolving imports through the built-in base
   ISA provider plus an optional user provider), elaborates the requested
   Core or InstructionSet, and type-checks every instruction, always-block
   and function. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Elaborate = Elaborate
module Tast = Tast
module Typecheck = Typecheck
module Interp = Interp
module Base_isa = Base_isa

exception Error of string

(* Combine the built-in provider with a user-supplied one. *)
let combined_provider user path =
  match user path with Some s -> Some s | None -> Base_isa.provider path

(* Compile to a [result], accumulating every diagnostic the front end can
   produce in one run: recoverable syntax errors (the parser drops the
   broken construct and resynchronizes) plus one diagnostic per failing
   function/instruction/always-block from the typechecker. Lexical errors
   and elaboration errors outside instruction bodies abort early. *)
let compile_result ?(provider = fun _ -> None) ?(file = "<input>") ~target src =
  Diag.register_source ~file src;
  let diags = Diag.collector () in
  match
    let elab =
      Elaborate.elaborate ~diags ~provider:(combined_provider provider) ~file ~target src
    in
    Typecheck.check_all elab
  with
  | Ok tu -> if Diag.has_errors diags then Stdlib.Error (Diag.to_list diags) else Ok tu
  | Stdlib.Error ds -> Stdlib.Error (Diag.to_list diags @ ds)
  | exception Ast.Syntax_error (loc, m) ->
      Stdlib.Error
        (Diag.to_list diags @ [ Diag.make ~span:(Ast.span_of_loc loc) ~code:"E0002" m ])
  | exception Elaborate.Elab_error d -> Stdlib.Error (Diag.to_list diags @ [ d ])
  | exception Typecheck.Type_error d -> Stdlib.Error (Diag.to_list diags @ [ d ])

(* Legacy string-rendering interface: raises {!Error} with every
   diagnostic rendered as text. *)
let compile ?provider ?file ~target src =
  match compile_result ?provider ?file ~target src with
  | Ok tu -> tu
  | Stdlib.Error ds -> raise (Error (Format.asprintf "%a" Diag.render_all ds))

(* Compile the built-in RV32I base ISA on its own. The base ISAs are
   compiled from immutable bundled sources and requested from dozens of
   call sites (every flow compile consults the base instruction list), so
   both units are memoized; the typed unit is immutable and interpreter
   state lives elsewhere, making sharing safe. *)
let rv32i_memo = lazy (compile ~file:"RV32I.core_desc" ~target:"RV32I" Base_isa.rv32i)
let compile_rv32i () = Lazy.force rv32i_memo

(* Compile RV32I + the M standard extension (the RV32IM core). *)
let rv32im_memo = lazy (compile ~file:"RV32M.core_desc" ~target:"RV32IM" Base_isa.rv32m)
let compile_rv32im () = Lazy.force rv32im_memo
