(** Elaboration of CoreDSL descriptions.

   Resolves imports, flattens InstructionSet inheritance chains into the
   providing Core (or a stand-alone set), evaluates ISA parameters, and
   resolves the architectural state into concrete registers, register files,
   ROMs and address spaces with fixed widths. The result is the input to
   {!Typecheck}. *)

module Bn = Bitvec.Bn
exception Elab_error of Diag.t
val elab_error :
  ?code:string -> Ast.loc -> ('a, Format.formatter, unit, 'b) format4 -> 'a
type cenv = { vars : (string * Bitvec.t) list; }
val empty_cenv : cenv
val const_eval : cenv -> Ast.expr -> Bitvec.t
val const_binop :
  Ast.loc ->
  Ast.binop -> Bitvec.t -> Bitvec.t -> Bitvec.t
val const_eval_int : cenv -> Ast.expr -> int
val resolve_ty :
  cenv -> Ast.loc -> Ast.ty_expr -> Bitvec.ty
type reg = {
  rname : string;
  rty : Bitvec.ty;
  elems : int;
  is_pc : bool;
  rconst : bool;
  rinit : Bitvec.t array option;
}
type addr_space = {
  sname : string;
  elem_ty : Bitvec.ty;
  space_size : Ast.Bn.t;
  is_main_mem : bool;
}
type elaborated = {
  ename : string;
  params : (string * Bitvec.t) list;
  regs : reg list;
  spaces : addr_space list;
  instructions : Ast.instruction list;
  always : Ast.always_block list;
  functions : Ast.func list;
}
val find_reg : elaborated -> string -> reg option
val find_space : elaborated -> string -> addr_space option
val pc_reg : elaborated -> reg option
val main_mem : elaborated -> addr_space option
val find_function : elaborated -> string -> Ast.func option
type provider = string -> string option
val load :
  ?diags:Diag.collector ->
  provider:provider ->
  file:string ->
  string ->
  (string, Ast.instr_set) Hashtbl.t * string list *
  (string, Ast.core_def) Hashtbl.t * string list
val inheritance_chain :
  (string, Ast.instr_set) Hashtbl.t ->
  string -> Ast.instr_set list
val concat_isa : Ast.isa list -> Ast.isa
val flatten :
  (string, Ast.instr_set) Hashtbl.t * 'a *
  (string, Ast.core_def) Hashtbl.t * 'b ->
  string -> Ast.isa
val elaborate_state :
  Ast.isa ->
  (string * Bitvec.t) list * reg list * addr_space list
val elaborate :
  ?diags:Diag.collector ->
  ?provider:provider -> ?file:string -> target:string -> string -> elaborated
