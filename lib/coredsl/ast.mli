(** Abstract syntax tree for the CoreDSL language (Figure 2 of the paper).

   The AST is produced by {!Parser} and consumed by {!Elaborate} and
   {!Typecheck}. Width expressions inside types are ordinary expressions and
   are only required to be compile-time constants at elaboration time, which
   lets instruction sets declare parameterized state such as
   [register unsigned<XLEN> X[32]]. *)

module Bn = Bitvec.Bn
type loc = { file : string; line : int; col : int; }
val no_loc : loc
val pp_loc : Format.formatter -> loc -> unit

(** Point span at this location, for building diagnostics. *)
val span_of_loc : loc -> Diag.span
type binop =
    Add
  | Sub
  | Mul
  | Div
  | Rem
  | Shl
  | Shr
  | And
  | Or
  | Xor
  | Land
  | Lor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
type unop = Neg | Not | Lnot
type cast_kind = { cast_signed : bool; cast_width : expr option; }
and ty_expr =
    Ty_int of { signed : bool; width : expr; }
  | Ty_alias of string
  | Ty_void
and expr = { e : expr_node; eloc : loc; }
and expr_node =
    Lit of { value : Bn.t; forced : Bitvec.ty option; }
  | Ident of string
  | Index of expr * expr
  | Range of expr * expr * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cast of cast_kind * expr
  | Concat of expr * expr
  | Ternary of expr * expr * expr
  | Call of string * expr list
  | Array_init of expr list
type storage = St_register | St_extern | St_param | St_const | St_local
type assign_op =
    A_eq
  | A_add
  | A_sub
  | A_mul
  | A_and
  | A_or
  | A_xor
  | A_shl
  | A_shr
type stmt = { s : stmt_node; sloc : loc; }
and stmt_node =
    Decl of { ty : ty_expr;
      decls : (string * expr option * expr option) list;
    }
  | Assign of assign_op * expr * expr
  | Incr of expr
  | Decr of expr
  | Expr_stmt of expr
  | If of expr * stmt list * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | Switch of expr * (expr option * stmt list) list
  | Spawn of stmt list
  | Return of expr option
  | Block of stmt list
type enc_elem =
    Enc_lit of Bitvec.t
  | Enc_field of { field : string; hi : int; lo : int; }
type instruction = {
  iname : string;
  encoding : enc_elem list;
  behavior : stmt list;
  iloc : loc;
}
type always_block = { aname : string; abody : stmt list; aloc : loc; }
type state_decl = {
  dname : string;
  dty : ty_expr;
  storage : storage;
  array_size : expr option;
  init : expr option;
  attrs : string list;
  dloc : loc;
}
type func = {
  fname : string;
  ret : ty_expr;
  params : (ty_expr * string) list;
  body : stmt list;
  floc : loc;
}
type isa = {
  state : state_decl list;
  instructions : instruction list;
  always : always_block list;
  functions : func list;
}
val empty_isa : isa
type instr_set = {
  set_name : string;
  extends : string option;
  set_isa : isa;
}
type core_def = {
  core_name : string;
  provides : string list;
  core_isa : isa;
}
type desc = {
  imports : (string * loc) list;  (** import path and the location of the import statement *)
  sets : instr_set list;
  cores : core_def list;
}
exception Syntax_error of loc * string
val syntax_error : loc -> ('a, Format.formatter, unit, 'b) format4 -> 'a
