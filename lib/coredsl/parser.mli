(** Recursive-descent parser for CoreDSL, following the grammar in Figure 2
   of the paper plus C-inspired statements and expressions (Section 2.4). *)

module Bn = Bitvec.Bn
type p = {
  toks : Lexer.lexed array;
  mutable i : int;
  mutable depth : int;
  diags : Diag.collector option;
}
val peek : p -> Lexer.token
val peek2 : p -> Lexer.token
val loc : p -> Ast.loc
val advance : p -> unit
val describe : Lexer.token -> string
val err : p -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val expect_punct : p -> string -> unit
val expect_kw : p -> string -> unit
val expect_id : p -> string
val accept_punct : p -> string -> bool
val accept_kw : p -> string -> bool
val lit_expr : Ast.loc -> int -> Ast.expr
val is_type_start : Lexer.token -> bool
val level_ops : int -> (string * Ast.binop option) list
val num_levels : int
val parse_expr : p -> Ast.expr
val parse_width_expr : p -> Ast.expr
val parse_ternary : p -> Ast.expr
val parse_binop : p -> int -> Ast.expr
val parse_unary : p -> Ast.expr
val parse_postfix : p -> Ast.expr
val parse_suffixes : p -> Ast.expr -> Ast.expr
val parse_args : p -> Ast.expr list
val parse_ty : p -> Ast.ty_expr
val is_assign_punct : string -> bool
val assign_op_of : string -> Ast.assign_op
val parse_stmt : p -> Ast.stmt
val block_of : Ast.stmt -> Ast.stmt list
val parse_stmts_until : p -> string -> Ast.stmt list
val parse_decl : p -> Ast.stmt
val parse_simple_or_decl : p -> Ast.stmt
val parse_simple : p -> Ast.stmt
val parse_encoding : p -> Ast.enc_elem list
val parse_attrs : p -> string list
val parse_state_decls : p -> Ast.state_decl list
val parse_instruction : p -> Ast.instruction
val parse_instructions : p -> Ast.instruction list
val parse_always : p -> Ast.always_block list
val parse_functions : p -> Ast.func list
val parse_isa : p -> Ast.isa
val parse_desc : p -> Ast.desc

(** With [diags], recoverable syntax errors are accumulated (dropping the
    broken construct) instead of raising; lexical errors remain fatal. *)
val parse : ?diags:Diag.collector -> ?file:string -> string -> Ast.desc
val parse_expr_string : ?file:string -> string -> Ast.expr
