(* Abstract syntax tree for the CoreDSL language (Figure 2 of the paper).

   The AST is produced by {!Parser} and consumed by {!Elaborate} and
   {!Typecheck}. Width expressions inside types are ordinary expressions and
   are only required to be compile-time constants at elaboration time, which
   lets instruction sets declare parameterized state such as
   [register unsigned<XLEN> X[32]]. *)

module Bn = Bitvec.Bn

type loc = { file : string; line : int; col : int }

let no_loc = { file = "<builtin>"; line = 0; col = 0 }

let pp_loc fmt l = Format.fprintf fmt "%s:%d:%d" l.file l.line l.col

(* Bridge into the diagnostics subsystem: a point span at this location. *)
let span_of_loc l = Diag.point ~file:l.file ~line:l.line ~col:l.col

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | And | Or | Xor
  | Land | Lor
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Not | Lnot

(* (signed) e / (unsigned<5>) e / (unsigned) e / (signed<16>) e *)
type cast_kind = { cast_signed : bool; cast_width : expr option }

and ty_expr =
  | Ty_int of { signed : bool; width : expr }  (* signed<w> / unsigned<w> *)
  | Ty_alias of string  (* int, unsigned int, char, bool, ... resolved at elaboration *)
  | Ty_void

and expr = { e : expr_node; eloc : loc }

and expr_node =
  | Lit of { value : Bn.t; forced : Bitvec.ty option }
      (* [forced] is set for Verilog-sized literals such as 7'd0 *)
  | Ident of string
  | Index of expr * expr  (* a[i]: bit-select on scalars, element on arrays *)
  | Range of expr * expr * expr  (* a[hi:lo] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cast of cast_kind * expr
  | Concat of expr * expr  (* a :: b *)
  | Ternary of expr * expr * expr
  | Call of string * expr list
  | Array_init of expr list  (* { e0, e1, ... } for constant tables *)

type storage =
  | St_register  (* architectural register (scalar or file) *)
  | St_extern  (* address space, e.g. main memory *)
  | St_param  (* no storage class: ISA parameter *)
  | St_const  (* const register: ROM, internalized by synthesis *)
  | St_local  (* local variable inside behavior *)

type assign_op = A_eq | A_add | A_sub | A_mul | A_and | A_or | A_xor | A_shl | A_shr

type stmt = { s : stmt_node; sloc : loc }

and stmt_node =
  | Decl of { ty : ty_expr; decls : (string * expr option * expr option) list }
      (* name, optional array size, optional initializer *)
  | Assign of assign_op * expr * expr  (* lvalue, rhs *)
  | Incr of expr  (* ++x / x++ *)
  | Decr of expr  (* --x / x-- *)
  | Expr_stmt of expr  (* function call for side effects *)
  | If of expr * stmt list * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | Switch of expr * (expr option * stmt list) list
      (* case value (None = default), arm body; arms do not fall through *)
  | Spawn of stmt list
  | Return of expr option
  | Block of stmt list

(* One element of an encoding specifier: a sized literal or a named field
   covering bits [hi:lo] of that field's value. *)
type enc_elem =
  | Enc_lit of Bitvec.t
  | Enc_field of { field : string; hi : int; lo : int }

type instruction = {
  iname : string;
  encoding : enc_elem list;  (* most-significant element first *)
  behavior : stmt list;
  iloc : loc;
}

type always_block = { aname : string; abody : stmt list; aloc : loc }

type state_decl = {
  dname : string;
  dty : ty_expr;
  storage : storage;
  array_size : expr option;  (* [n] for register files / address spaces *)
  init : expr option;
  attrs : string list;  (* e.g. is_pc, is_main_mem *)
  dloc : loc;
}

type func = {
  fname : string;
  ret : ty_expr;
  params : (ty_expr * string) list;
  body : stmt list;
  floc : loc;
}

type isa = {
  state : state_decl list;
  instructions : instruction list;
  always : always_block list;
  functions : func list;
}

let empty_isa = { state = []; instructions = []; always = []; functions = [] }

type instr_set = { set_name : string; extends : string option; set_isa : isa }

type core_def = { core_name : string; provides : string list; core_isa : isa }

type desc = { imports : (string * loc) list; sets : instr_set list; cores : core_def list }

exception Syntax_error of loc * string

let syntax_error loc fmt = Format.kasprintf (fun m -> raise (Syntax_error (loc, m))) fmt
