(* Lowering from the typed CoreDSL AST to the high-level IR (Figure 5b).

   The output is a flat SSA graph per instruction / always-block mixing the
   [coredsl] dialect (state access, bit manipulation, fields) with the
   [hwarith] dialect (bitwidth-aware arithmetic). On the way down we
   perform, like the paper's "pre-HLS upstream utilities":
   - full loop unrolling (loops must have compile-time trip counts),
   - function inlining,
   - if-conversion: branches become predicated state writes and muxes,
   - SSA construction for mutable locals,
   - merging of multiple writes to one architectural state element into a
     single predicated write (each SCAIE-V sub-interface may be used at
     most once per instruction).

   Ops lowered inside a spawn-block are tagged with the [spawn] attribute,
   mirroring Longnail's flattening with provenance markers (Section 4.1c). *)

module Bn = Bitvec.Bn
open Coredsl.Tast
open Mir

exception Lower_error of Diag.t

let lower_error ?span fmt =
  Format.kasprintf (fun m -> raise (Lower_error (Diag.make ?span ~code:"E0301" m))) fmt

(* A lowering invariant the typechecker should have made unreachable was
   violated: report which construct broke it instead of [assert false]. *)
let internal_error ?span fmt =
  Format.kasprintf
    (fun m ->
      raise
        (Lower_error
           (Diag.make ?span ~code:"E0903"
              ~notes:
                [ "this is a bug in the HLIR lowering, not in the source \
                   program" ]
              m)))
    fmt

let u w = Bitvec.unsigned_ty w
let bool_ty = Bitvec.bool_ty

(* pending (merged) write to one architectural state element *)
type pending = {
  p_operands : value list;  (* scalar: [value]; regfile: [index; value]; mem: [addr; value] *)
  p_pred : value option;  (* None = unconditional *)
  p_spawn : bool;
  p_elems : int;  (* memory only *)
  p_loc : Diag.span option;  (* span of the (last) originating write statement *)
}

type env = {
  b : builder;
  tu : tunit;
  mutable locals : (string * (value * int)) list;  (* value, declaration depth *)
  mutable consts : (string * Bitvec.t) list;  (* compile-time views of locals *)
  mutable fields : (string * value) list;
  mutable reg_cur : (string * value) list;  (* current value of scalar registers *)
  mutable pend_reg : (string * pending) list;  (* scalar register writes *)
  mutable pend_rf : (string * pending) list;  (* register file writes *)
  mutable pend_mem : (string * pending) list;  (* memory writes *)
  mutable preds : value list;  (* stack of branch conditions, innermost first *)
  mutable in_spawn : bool;
  mutable ret : (value option * value option) option;
      (* inlining: Some (value, pred); pred None = definitely returned *)
}

(* conjunction of all active branch conditions (None = unconditional);
   CSE later deduplicates the repeated and-chains *)
let rec conj env = function
  | [] -> None
  | [ c ] -> Some c
  | c :: rest -> (
      match conj env rest with None -> Some c | Some r -> Some (bool_and_fwd env c r))

and bool_and_fwd env a b = add_op1 env.b "hwarith.and" [ a; b ] Bitvec.bool_ty

let current_pred env = conj env env.preds

let constant env v = add_op1 env.b "hw.constant" [] (Bitvec.typ v) ~attrs:[ ("value", A_bv v) ]

let bool_and env a b = add_op1 env.b "hwarith.and" [ a; b ] bool_ty
let bool_or env a b = add_op1 env.b "hwarith.or" [ a; b ] bool_ty

let bool_not env a =
  add_op1 env.b "hwarith.icmp" [ a; constant env (Bitvec.of_bool false) ] bool_ty
    ~attrs:[ ("predicate", A_str "eq") ]

let mux env c t f =
  if t.vid = f.vid then t else add_op1 env.b "hwarith.mux" [ c; t; f ] t.vty



(* fold a new predicated write into an existing pending entry;
   later writes take priority *)
let merge_pending env (prev : pending option) operands pred spawn elems =
  (* the flushed set/store op inherits the span of the latest contributing
     write statement (flush happens after [cur_loc] is restored) *)
  let loc =
    match env.b.cur_loc with
    | Some _ as l -> l
    | None -> ( match prev with Some old -> old.p_loc | None -> None)
  in
  match prev with
  | None -> { p_operands = operands; p_pred = pred; p_spawn = spawn; p_elems = elems; p_loc = loc }
  | Some old -> (
      match pred with
      | None ->
          { p_operands = operands; p_pred = None; p_spawn = spawn || old.p_spawn; p_elems = elems;
            p_loc = loc }
      | Some p ->
          let merged = List.map2 (fun n o -> mux env p n o) operands old.p_operands in
          let pred' =
            match old.p_pred with None -> None | Some p0 -> Some (bool_or env p p0)
          in
          { p_operands = merged; p_pred = pred'; p_spawn = spawn || old.p_spawn; p_elems = elems;
            p_loc = loc })

(* ---- constant folding over typed expressions ---- *)

(* Evaluate [e] if it only involves literals and constant locals; used to
   drive loop unrolling and to fold addresses. *)
let rec try_const env (e : texpr) : Bitvec.t option =
  let open Coredsl.Ast in
  match e.te with
  | T_lit v -> Some v
  | T_local n -> List.assoc_opt n env.consts
  | T_cast a -> Option.map (Bitvec.cast e.tty) (try_const env a)
  | T_unop (Neg, a) -> Option.map Bitvec.neg (try_const env a)
  | T_unop (Not, a) -> Option.map Bitvec.lognot (try_const env a)
  | T_unop (Lnot, a) ->
      Option.map (fun v -> Bitvec.of_bool (Bitvec.is_zero v)) (try_const env a)
  | T_binop (op, a, b) -> (
      match (try_const env a, try_const env b) with
      | Some va, Some vb -> (
          try Some (Coredsl.Elaborate.const_binop e.tloc op va vb) with _ -> None)
      | _ -> None)
  | T_concat (a, b) -> (
      match (try_const env a, try_const env b) with
      | Some va, Some vb -> Some (Bitvec.concat va vb)
      | _ -> None)
  | T_extract { value; lo; width } -> (
      match (try_const env value, try_const env lo) with
      | Some v, Some l ->
          let l = Bitvec.to_int l in
          if l + width <= Bitvec.width v then Some (Bitvec.extract v ~hi:(l + width - 1) ~lo:l)
          else None
      | _ -> None)
  | T_ternary (c, t, f) -> (
      match try_const env c with
      | Some vc -> if Bitvec.to_bool vc then try_const env t else try_const env f
      | None -> None)
  | _ -> None

(* ---- expression lowering ---- *)

let spawn_attr env = if env.in_spawn then [ ("spawn", A_bool true) ] else []

(* convert an arbitrary-width value to a 1-bit truth value *)
let to_bool env (v : value) =
  if Bitvec.ty_equal v.vty bool_ty then v
  else
    add_op1 env.b "hwarith.icmp"
      [ v; constant env (Bitvec.zero v.vty) ]
      bool_ty
      ~attrs:[ ("predicate", A_str "ne") ]

(* Ops emitted for [e] itself carry [e]'s source span; recursive calls set
   (and restore) the ambient location for their own subtrees, so every op
   in the graph points at the smallest enclosing source expression. *)
let rec lower_expr env (e : texpr) : value =
  let saved = env.b.cur_loc in
  set_loc env.b (Some (Coredsl.Ast.span_of_loc e.tloc));
  let v = lower_expr_at env e in
  set_loc env.b saved;
  v

and lower_expr_at env (e : texpr) : value =
  let open Coredsl.Ast in
  match try_const env e with
  | Some v -> constant env (Bitvec.cast e.tty v)
  | None -> (
      match e.te with
      | T_lit v -> constant env v
      | T_local n -> (
          match List.assoc_opt n env.locals with
          | Some (v, _) -> v
          | None -> lower_error ?span:env.b.cur_loc "unbound local '%s' during lowering" n)
      | T_field n -> (
          match List.assoc_opt n env.fields with
          | Some v -> v
          | None -> lower_error ?span:env.b.cur_loc "unbound field '%s' during lowering" n)
      | T_reg name -> (
          match List.assoc_opt name env.reg_cur with
          | Some v -> v
          | None ->
              let v =
                add_op1 env.b "coredsl.get" [] e.tty
                  ~attrs:(("state", A_str name) :: spawn_attr env)
              in
              env.reg_cur <- (name, v) :: env.reg_cur;
              v)
      | T_regfile (name, idx) ->
          let vi = lower_expr env idx in
          add_op1 env.b "coredsl.get" [ vi ] e.tty
            ~attrs:(("state", A_str name) :: spawn_attr env)
      | T_rom (name, idx) ->
          let vi = lower_expr env idx in
          add_op1 env.b "coredsl.rom" [ vi ] e.tty ~attrs:[ ("state", A_str name) ]
      | T_mem { space; addr; elems } ->
          let va = lower_expr env addr in
          let pred = current_pred env in
          let operands = match pred with None -> [ va ] | Some p -> [ va; p ] in
          add_op1 env.b "coredsl.load" operands e.tty
            ~attrs:
              ([ ("space", A_str space); ("elems", A_int elems) ]
              @ (if pred <> None then [ ("has_pred", A_bool true) ] else [])
              @ spawn_attr env)
      | T_binop (op, a, b) -> lower_binop env e op a b
      | T_unop (Neg, a) ->
          let va = lower_expr env a in
          add_op1 env.b "hwarith.sub" [ constant env (Bitvec.zero a.tty); va ] e.tty
      | T_unop (Not, a) ->
          let va = lower_expr env a in
          add_op1 env.b "hwarith.not" [ va ] e.tty
      | T_unop (Lnot, a) ->
          let va = lower_expr env a in
          add_op1 env.b "hwarith.icmp"
            [ va; constant env (Bitvec.zero a.tty) ]
            bool_ty
            ~attrs:[ ("predicate", A_str "eq") ]
      | T_cast a ->
          let va = lower_expr env a in
          if Bitvec.ty_equal va.vty e.tty then va
          else add_op1 env.b "hwarith.cast" [ va ] e.tty
      | T_concat (a, b) ->
          let va = lower_expr env a and vb = lower_expr env b in
          add_op1 env.b "coredsl.concat" [ va; vb ] e.tty
      | T_extract { value; lo; width } ->
          let vv = lower_expr env value in
          let vl = lower_expr env lo in
          add_op1 env.b "coredsl.extract" [ vv; vl ] e.tty ~attrs:[ ("width", A_int width) ]
      | T_ternary (c, t, f) ->
          let vc = to_bool env (lower_expr env c) in
          let vt = lower_expr env t and vf = lower_expr env f in
          add_op1 env.b "hwarith.mux" [ vc; vt; vf ] e.tty
      | T_call (name, args) -> (
          let vargs = List.map (lower_expr env) args in
          match inline_call env name vargs with
          | Some v -> v
          | None -> lower_error ?span:env.b.cur_loc "void call '%s' in expression position" name))

and lower_binop env (e : texpr) op a b =
  let open Coredsl.Ast in
  match op with
  | Land ->
      let va = to_bool env (lower_expr env a) and vb = to_bool env (lower_expr env b) in
      bool_and env va vb
  | Lor ->
      let va = to_bool env (lower_expr env a) and vb = to_bool env (lower_expr env b) in
      bool_or env va vb
  | Eq | Ne | Lt | Le | Gt | Ge ->
      let va = lower_expr env a and vb = lower_expr env b in
      let pred =
        match op with
        | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
        | _ ->
            internal_error ?span:env.b.cur_loc
              "no icmp predicate for binary operator '%s'"
              (Coredsl.Tast.binop_name op)
      in
      add_op1 env.b "hwarith.icmp" [ va; vb ] bool_ty ~attrs:[ ("predicate", A_str pred) ]
  | Shl | Shr ->
      let va = lower_expr env a and vb = lower_expr env b in
      let name = if op = Shl then "hwarith.shl" else "hwarith.shr" in
      add_op1 env.b name [ va; vb ] e.tty
  | Add | Sub | Mul | Div | Rem | And | Or | Xor ->
      let va = lower_expr env a and vb = lower_expr env b in
      let name =
        match op with
        | Add -> "hwarith.add" | Sub -> "hwarith.sub" | Mul -> "hwarith.mul"
        | Div -> "hwarith.div" | Rem -> "hwarith.rem"
        | And -> "hwarith.band" | Or -> "hwarith.bor" | Xor -> "hwarith.bxor"
        | _ ->
            internal_error ?span:env.b.cur_loc
              "no hwarith op for binary operator '%s'"
              (Coredsl.Tast.binop_name op)
      in
      add_op1 env.b name [ va; vb ] e.tty

(* inline a function call; returns its value (None for void) *)
and inline_call env name args : value option =
  let f =
    match find_tfunc env.tu name with
    | Some f -> f
    | None -> lower_error ?span:env.b.cur_loc "unknown function '%s'" name
  in
  (* save caller context *)
  let saved_locals = env.locals and saved_consts = env.consts and saved_ret = env.ret in
  let depth = List.length env.preds in
  env.locals <- List.map2 (fun (pn, _) v -> (pn, (v, depth))) f.tf_params args;
  env.consts <- [];
  env.ret <- None;
  lower_stmts env f.tf_body;
  let result =
    match (env.ret, f.tf_ret) with
    | Some (Some v, _), Some _ -> Some v
    | None, None -> None
    | Some (None, _), None -> None
    | None, Some _ -> lower_error ?span:env.b.cur_loc "function '%s' did not return a value on all paths" name
    | Some (Some _, _), None | Some (None, _), Some _ -> lower_error ?span:env.b.cur_loc "return arity mismatch in '%s'" name
  in
  env.locals <- saved_locals;
  env.consts <- saved_consts;
  env.ret <- saved_ret;
  result

(* ---- statement lowering ---- *)

and assign_local env name (v : value) (cv : Bitvec.t option) =
  (* Only the branch conditions entered *after* the local's declaration
     guard the assignment; an assignment at the declaration's own depth is
     unconditional for that local (this keeps inlined function bodies and
     loop-local code mux-free). *)
  let depth = List.length env.preds in
  let decl_depth, old =
    match List.assoc_opt name env.locals with
    | Some (old, d) -> (d, Some old)
    | None -> (depth, None)
  in
  let extra =
    if depth > decl_depth then
      (* innermost-first stack: the first (depth - decl_depth) entries *)
      List.filteri (fun i _ -> i < depth - decl_depth) env.preds
    else []
  in
  let merged =
    match (conj env extra, old) with
    | None, _ | _, None -> v
    | Some p, Some old -> mux env p v old
  in
  env.locals <- (name, (merged, decl_depth)) :: List.remove_assoc name env.locals;
  (* constant view survives only assignments unconditional for this local *)
  match (extra, cv) with
  | [], Some c -> env.consts <- (name, c) :: List.remove_assoc name env.consts
  | _ -> env.consts <- List.remove_assoc name env.consts

and lower_stmt env (s : tstmt) : unit =
  let saved = env.b.cur_loc in
  set_loc env.b (Some (Coredsl.Ast.span_of_loc s.tsloc));
  lower_stmt_at env s;
  set_loc env.b saved

and lower_stmt_at env (s : tstmt) : unit =
  match s.ts with
  | S_local_decl (name, ty, init) ->
      let cv = Option.bind init (try_const env) in
      let v =
        match init with
        | Some e -> lower_expr env e
        | None -> constant env (Bitvec.zero ty)
      in
      let cv = match init with None -> Some (Bitvec.zero ty) | Some _ -> cv in
      (* declarations bind fresh at the current depth *)
      env.locals <- (name, (v, List.length env.preds)) :: List.remove_assoc name env.locals;
      (match cv with
      | Some c -> env.consts <- (name, c) :: List.remove_assoc name env.consts
      | None -> env.consts <- List.remove_assoc name env.consts)
  | S_assign_local (name, e) ->
      let cv = try_const env e in
      let v = lower_expr env e in
      assign_local env name v cv
  | S_assign_reg (name, e) ->
      let v = lower_expr env e in
      let pred = current_pred env in
      let prev = List.assoc_opt name env.pend_reg in
      let p = merge_pending env prev [ v ] pred env.in_spawn 0 in
      env.pend_reg <- (name, p) :: List.remove_assoc name env.pend_reg;
      (* subsequent reads in this behavior observe the (predicated) write *)
      let cur_read =
        match pred with
        | None -> v
        | Some pr -> (
            match List.assoc_opt name env.reg_cur with
            | Some old -> mux env pr v old
            | None ->
                let got =
                  add_op1 env.b "coredsl.get" [] v.vty ~attrs:[ ("state", A_str name) ]
                in
                mux env pr v got)
      in
      env.reg_cur <- (name, cur_read) :: List.remove_assoc name env.reg_cur
  | S_assign_regfile (name, idx, e) ->
      let vi = lower_expr env idx in
      let v = lower_expr env e in
      let prev = List.assoc_opt name env.pend_rf in
      let p = merge_pending env prev [ vi; v ] (current_pred env) env.in_spawn 0 in
      env.pend_rf <- (name, p) :: List.remove_assoc name env.pend_rf
  | S_assign_mem { space; addr; value; elems } ->
      let va = lower_expr env addr in
      let vv = lower_expr env value in
      let prev = List.assoc_opt space env.pend_mem in
      (match prev with
      | Some old when old.p_elems <> elems ->
          lower_error ?span:env.b.cur_loc "conflicting memory access widths on '%s'" space
      | _ -> ());
      let p = merge_pending env prev [ va; vv ] (current_pred env) env.in_spawn elems in
      env.pend_mem <- (space, p) :: List.remove_assoc space env.pend_mem
  | S_if (c, thn, els) -> (
      match try_const env c with
      | Some vc -> if Bitvec.to_bool vc then lower_stmts env thn else lower_stmts env els
      | None ->
          let vc = to_bool env (lower_expr env c) in
          let saved = env.preds in
          env.preds <- vc :: saved;
          lower_stmts env thn;
          env.preds <- bool_not env vc :: saved;
          lower_stmts env els;
          env.preds <- saved)
  | S_for { init; cond; step; body } ->
      lower_stmts env init;
      let fuel = ref 4096 in
      let rec iter () =
        match try_const env cond with
        | None -> lower_error ?span:env.b.cur_loc "loop condition is not compile-time constant; cannot unroll"
        | Some v when not (Bitvec.to_bool v) -> ()
        | Some _ ->
            decr fuel;
            if !fuel <= 0 then lower_error ?span:env.b.cur_loc "loop unrolling exceeded 4096 iterations";
            lower_stmts env body;
            lower_stmts env step;
            iter ()
      in
      iter ()
  | S_spawn body ->
      let saved = env.in_spawn in
      env.in_spawn <- true;
      lower_stmts env body;
      env.in_spawn <- saved
  | S_return e ->
      let v = Option.map (lower_expr env) e in
      (match env.ret with
      | Some (_, None) -> () (* already definitely returned; unreachable code *)
      | Some (old_v, Some p_old) ->
          (* first return wins where its predicate held *)
          let merged =
            match (old_v, v) with
            | Some ov, Some nv -> Some (mux env p_old ov nv)
            | None, None -> None
            | _ -> lower_error ?span:env.b.cur_loc "inconsistent return arity"
          in
          let p' =
            match current_pred env with
            | None -> None
            | Some p -> Some (bool_or env p_old p)
          in
          env.ret <- Some (merged, p')
      | None -> env.ret <- Some (v, current_pred env))
  | S_expr e -> (
      match e.te with
      | T_call (name, args) ->
          let vargs = List.map (lower_expr env) args in
          ignore (inline_call env name vargs)
      | _ -> ignore (lower_expr env e))

and lower_stmts env stmts = List.iter (lower_stmt env) stmts

(* ---- graph construction ---- *)

let flush_pending env =
  let emit_set kind name (p : pending) extra_attrs =
    let operands =
      match p.p_pred with None -> p.p_operands | Some pr -> p.p_operands @ [ pr ]
    in
    let attrs =
      [ ("state", A_str name) ]
      @ extra_attrs
      @ (if p.p_pred <> None then [ ("has_pred", A_bool true) ] else [])
      @ if p.p_spawn then [ ("spawn", A_bool true) ] else []
    in
    ignore (add_op env.b kind operands [] ~attrs ?loc:p.p_loc)
  in
  List.iter (fun (name, p) -> emit_set "coredsl.set" name p []) (List.rev env.pend_reg);
  List.iter (fun (name, p) -> emit_set "coredsl.set" name p []) (List.rev env.pend_rf);
  List.iter
    (fun (name, p) ->
      let operands =
        match p.p_pred with None -> p.p_operands | Some pr -> p.p_operands @ [ pr ]
      in
      let attrs =
        [ ("space", A_str name); ("elems", A_int p.p_elems) ]
        @ (if p.p_pred <> None then [ ("has_pred", A_bool true) ] else [])
        @ if p.p_spawn then [ ("spawn", A_bool true) ] else []
      in
      ignore (add_op env.b "coredsl.store" operands [] ~attrs ?loc:p.p_loc))
    (List.rev env.pend_mem)

let fresh_env tu b =
  {
    b;
    tu;
    locals = [];
    consts = [];
    fields = [];
    reg_cur = [];
    pend_reg = [];
    pend_rf = [];
    pend_mem = [];
    preds = [];
    in_spawn = false;
    ret = None;
  }

(* Lower one instruction to a high-level graph. Encoding fields become
   [coredsl.field] ops. *)
let lower_instruction (tu : tunit) (ti : tinstr) : graph =
  let b = builder () in
  let env = fresh_env tu b in
  env.fields <-
    List.map
      (fun (f : field_info) ->
        let v =
          add_op1 b "coredsl.field" [] (u f.fld_width) ~attrs:[ ("name", A_str f.fld_name) ]
            ~hint:f.fld_name
        in
        (f.fld_name, v))
      ti.fields;
  lower_stmts env ti.ti_behavior;
  flush_pending env;
  finish b ~name:ti.ti_name ~kind:`Instruction
    ~attrs:
      [
        ("mask", A_bv ti.mask);
        ("match", A_bv ti.match_bits);
        ("enc_width", A_int ti.enc_width);
      ]
    ()

(* Lower an always-block: same machinery, no fields, no spawn. *)
let lower_always (tu : tunit) (ta : talways) : graph =
  let b = builder () in
  let env = fresh_env tu b in
  lower_stmts env ta.ta_body;
  flush_pending env;
  finish b ~name:ta.ta_name ~kind:`Always ()

(* Lower every functionality of a unit. *)
let lower_unit (tu : tunit) : graph list =
  List.map (lower_instruction tu) tu.tinstrs @ List.map (lower_always tu) tu.talways
