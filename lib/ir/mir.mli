(** A miniature MLIR-like SSA IR.

   Stands in for the MLIR/CIRCT infrastructure of the paper (Section 4).
   Operations are generic records identified by a dialect-qualified name
   ("hwarith.add", "lil.read_rs1", ...) with typed operands and results,
   attributes, and nested regions (used by spawn blocks). Graphs are flat
   operation lists in SSA form; def-use information is computed on demand.

   Two dialect levels are built on this module:
   - {!Hlir}: the high-level coredsl+hwarith representation (Figure 5b)
   - {!Lil}: the CDFG with explicit SCAIE-V interface ops (Figure 5c) *)

type value = { vid : int; vty : Bitvec.ty; vhint : string; }
type attr =
    A_int of int
  | A_str of string
  | A_bv of Bitvec.t
  | A_bool of bool
type op = {
  oid : int;
  opname : string;
  operands : value list;
  results : value list;
  attrs : (string * attr) list;
  regions : op list list;
  oloc : Diag.span option;
      (** CoreDSL source span this op was lowered from; preserved by every
          rewrite, not printed by {!pp_op} *)
}
type graph = {
  gname : string;
  gkind : [ `Always | `Function | `Instruction ];
  gattrs : (string * attr) list;
  body : op list;
}
type builder = {
  mutable next_v : int;
  mutable next_o : int;
  mutable ops : op list;
  mutable cur_loc : Diag.span option;
}
val builder : unit -> builder
val set_loc : builder -> Diag.span option -> unit
val fresh_value : builder -> ?hint:string -> Bitvec.ty -> value
val add_op :
  builder ->
  ?attrs:(string * attr) list ->
  ?regions:op list list ->
  ?hints:string list ->
  ?loc:Diag.span -> string -> value list -> Bitvec.ty list -> op
val add_op1 :
  builder ->
  ?attrs:(string * attr) list ->
  ?regions:op list list ->
  ?hint:string -> ?loc:Diag.span -> string -> value list -> Bitvec.ty -> value
val finish :
  builder ->
  name:string ->
  kind:[ `Always | `Function | `Instruction ] ->
  ?attrs:(string * attr) list -> unit -> graph
val attr : op -> string -> attr option
val attr_int : op -> string -> int option
val attr_str : op -> string -> string option
val attr_bv : op -> string -> Bitvec.t option
val attr_bool : op -> string -> bool
val all_ops_in : op list -> op list
val all_ops : graph -> op list
val def_map : graph -> (int, op) Hashtbl.t
val use_map : graph -> (int, op list) Hashtbl.t
exception Verify_error of string
val verify : graph -> unit
val ty_suffix : Bitvec.ty -> string
val pp_attr : Format.formatter -> attr -> unit
val pp_op : ?indent:int -> Format.formatter -> op -> unit
val pp_graph : Format.formatter -> graph -> unit
val graph_to_string : graph -> string
val rewrite :
  graph -> subst:(int, value) Hashtbl.t -> keep:(op -> bool) -> graph

val renumber_values : graph -> f:(int -> int) -> graph
(** Rebuild the graph with every SSA value id (defs and uses, including
    nested regions) mapped through [f]. [f] must be injective for the
    result to remain a valid SSA graph. *)
