(* A miniature MLIR-like SSA IR.

   Stands in for the MLIR/CIRCT infrastructure of the paper (Section 4).
   Operations are generic records identified by a dialect-qualified name
   ("hwarith.add", "lil.read_rs1", ...) with typed operands and results,
   attributes, and nested regions (used by spawn blocks). Graphs are flat
   operation lists in SSA form; def-use information is computed on demand.

   Two dialect levels are built on this module:
   - {!Hlir}: the high-level coredsl+hwarith representation (Figure 5b)
   - {!Lil}: the CDFG with explicit SCAIE-V interface ops (Figure 5c) *)

type value = { vid : int; vty : Bitvec.ty; vhint : string }

type attr =
  | A_int of int
  | A_str of string
  | A_bv of Bitvec.t
  | A_bool of bool

type op = {
  oid : int;
  opname : string;
  operands : value list;
  results : value list;
  attrs : (string * attr) list;
  regions : op list list;
  (* CoreDSL source span this op was lowered from; carried through every
     rewrite so back-end errors can cite the originating source line. Not
     printed by [pp_op] (graph text is compared structurally by passes). *)
  oloc : Diag.span option;
}

(* A lil.graph / coredsl.instruction / coredsl.always container. *)
type graph = {
  gname : string;
  gkind : [ `Instruction | `Always | `Function ];
  gattrs : (string * attr) list;
  body : op list;
}

(* ---- builder ---- *)

type builder = {
  mutable next_v : int;
  mutable next_o : int;
  mutable ops : op list;
  (* ambient source location: ops created while set inherit it *)
  mutable cur_loc : Diag.span option;
}

let builder () = { next_v = 0; next_o = 0; ops = []; cur_loc = None }

let set_loc b loc = b.cur_loc <- loc

let fresh_value b ?(hint = "") ty =
  let v = { vid = b.next_v; vty = ty; vhint = hint } in
  b.next_v <- b.next_v + 1;
  v

(* Create an op with [n] results of the given types and append it. The op
   location defaults to the builder's ambient [cur_loc]. *)
let add_op b ?(attrs = []) ?(regions = []) ?(hints = []) ?loc opname operands result_tys =
  let results =
    List.mapi
      (fun i ty -> fresh_value b ~hint:(try List.nth hints i with _ -> "") ty)
      result_tys
  in
  let oloc = match loc with Some _ -> loc | None -> b.cur_loc in
  let op = { oid = b.next_o; opname; operands; results; attrs; regions; oloc } in
  b.next_o <- b.next_o + 1;
  b.ops <- op :: b.ops;
  op

let add_op1 b ?attrs ?regions ?(hint = "") ?loc opname operands result_ty =
  let op = add_op b ?attrs ?regions ~hints:[ hint ] ?loc opname operands [ result_ty ] in
  List.hd op.results

let finish b ~name ~kind ?(attrs = []) () =
  { gname = name; gkind = kind; gattrs = attrs; body = List.rev b.ops }

(* ---- attribute access ---- *)

let attr op name = List.assoc_opt name op.attrs

let attr_int op name =
  match attr op name with Some (A_int i) -> Some i | _ -> None

let attr_str op name =
  match attr op name with Some (A_str s) -> Some s | _ -> None

let attr_bv op name = match attr op name with Some (A_bv v) -> Some v | _ -> None
let attr_bool op name = match attr op name with Some (A_bool v) -> v | _ -> false

(* ---- traversal ---- *)

(* All ops in a graph, including ops nested in regions, pre-order. *)
let rec all_ops_in body =
  List.concat_map (fun op -> op :: List.concat_map all_ops_in op.regions) body

let all_ops g = all_ops_in g.body

(* Map from value id to its defining op. *)
let def_map g =
  let t = Hashtbl.create 64 in
  List.iter (fun op -> List.iter (fun r -> Hashtbl.replace t r.vid op) op.results) (all_ops g);
  t

(* Map from value id to the ops using it. *)
let use_map g =
  let t = Hashtbl.create 64 in
  List.iter
    (fun op ->
      List.iter
        (fun v ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt t v.vid) in
          Hashtbl.replace t v.vid (op :: prev))
        op.operands)
    (all_ops g);
  t

(* ---- verification ---- *)

exception Verify_error of string

(* SSA sanity: every operand is defined by an earlier op (or region parent),
   each value defined once. *)
let verify g =
  let defined = Hashtbl.create 64 in
  let rec go body =
    List.iter
      (fun op ->
        List.iter
          (fun v ->
            if not (Hashtbl.mem defined v.vid) then
              raise
                (Verify_error
                   (Printf.sprintf "op %d (%s) uses undefined value %%%d" op.oid op.opname v.vid)))
          op.operands;
        List.iter
          (fun r ->
            if Hashtbl.mem defined r.vid then
              raise (Verify_error (Printf.sprintf "value %%%d defined twice" r.vid));
            Hashtbl.replace defined r.vid ())
          op.results;
        List.iter go op.regions)
      body
  in
  go g.body

(* ---- printing (MLIR-flavoured) ---- *)

let ty_suffix (t : Bitvec.ty) =
  Printf.sprintf "%s%d" (if t.Bitvec.signed then "si" else "ui") t.Bitvec.width

let pp_attr fmt = function
  | A_int i -> Format.fprintf fmt "%d" i
  | A_str s -> Format.fprintf fmt "%S" s
  | A_bv v -> Format.fprintf fmt "%s : %s" (Bitvec.to_string v) (ty_suffix (Bitvec.typ v))
  | A_bool b -> Format.fprintf fmt "%b" b

let rec pp_op ?(indent = 2) fmt op =
  let pad = String.make indent ' ' in
  Format.fprintf fmt "%s" pad;
  (match op.results with
  | [] -> ()
  | rs ->
      List.iteri
        (fun i r -> Format.fprintf fmt "%s%%%d" (if i > 0 then ", " else "") r.vid)
        rs;
      Format.fprintf fmt " = ");
  Format.fprintf fmt "%s" op.opname;
  (match op.operands with
  | [] -> ()
  | os ->
      Format.fprintf fmt " ";
      List.iteri
        (fun i o -> Format.fprintf fmt "%s%%%d" (if i > 0 then ", " else "") o.vid)
        os);
  if op.attrs <> [] then begin
    Format.fprintf fmt " {";
    List.iteri
      (fun i (k, v) ->
        Format.fprintf fmt "%s%s = %a" (if i > 0 then ", " else "") k pp_attr v)
      op.attrs;
    Format.fprintf fmt "}"
  end;
  (match (op.operands, op.results) with
  | [], [] -> ()
  | ops, res ->
      Format.fprintf fmt " : (%s) -> (%s)"
        (String.concat ", " (List.map (fun v -> ty_suffix v.vty) ops))
        (String.concat ", " (List.map (fun v -> ty_suffix v.vty) res)));
  List.iter
    (fun region ->
      Format.fprintf fmt " {\n";
      List.iter (fun o -> Format.fprintf fmt "%a\n" (pp_op ~indent:(indent + 2)) o) region;
      Format.fprintf fmt "%s}" pad)
    op.regions

let pp_graph fmt g =
  let kind =
    match g.gkind with
    | `Instruction -> "instruction"
    | `Always -> "always"
    | `Function -> "function"
  in
  Format.fprintf fmt "%s @%s" kind g.gname;
  if g.gattrs <> [] then begin
    Format.fprintf fmt " {";
    List.iteri
      (fun i (k, v) -> Format.fprintf fmt "%s%s = %a" (if i > 0 then ", " else "") k pp_attr v)
      g.gattrs;
    Format.fprintf fmt "}"
  end;
  Format.fprintf fmt " {\n";
  List.iter (fun o -> Format.fprintf fmt "%a\n" (pp_op ~indent:2) o) g.body;
  Format.fprintf fmt "}"

let graph_to_string g = Format.asprintf "%a" pp_graph g

(* ---- rewriting support ---- *)

(* Rebuild a graph replacing values according to [subst] (vid -> value) and
   dropping ops for which [keep] is false. Region bodies are rewritten
   recursively. *)
let rewrite g ~subst ~keep =
  let s v = match Hashtbl.find_opt subst v.vid with Some v' -> v' | None -> v in
  let rec go body =
    List.filter_map
      (fun op ->
        if not (keep op) then None
        else
          Some { op with operands = List.map s op.operands; regions = List.map go op.regions })
      body
  in
  { g with body = go g.body }

(* Rebuild a graph with every SSA value id mapped through [f] (operands,
   results, and region bodies alike). Used by the content-addressed cache
   tests to check that fingerprints are invariant under alpha-renaming. *)
let renumber_values g ~f =
  let rv v = { v with vid = f v.vid } in
  let rec go body =
    List.map
      (fun op ->
        {
          op with
          operands = List.map rv op.operands;
          results = List.map rv op.results;
          regions = List.map go op.regions;
        })
      body
  in
  { g with body = go g.body }
