(* Optimization passes over lil graphs: constant folding (canonicalization),
   common-subexpression elimination, and dead-code elimination. These mirror
   MLIR's canonicalization infrastructure the paper relies on ("constant
   registers are internalized into the ISAX module and subject to MLIR's
   usual canonicalization patterns"). *)

open Mir

(* ops with side effects must never be removed or deduplicated *)
let has_side_effect op =
  match op.opname with
  | "lil.write_rd" | "lil.write_pc" | "lil.write_custreg" | "lil.write_mem" | "lil.sink"
  | "coredsl.set" | "coredsl.store" ->
      true
  | _ -> false

(* interface reads are kept even when pure: they anchor the schedule *)
let is_interface_read op =
  match op.opname with
  | "lil.instr_word" | "lil.read_rs1" | "lil.read_rs2" | "lil.read_pc" | "lil.read_custreg"
  | "lil.read_mem" | "lil.rom" | "coredsl.get" | "coredsl.load" | "coredsl.rom"
  | "coredsl.field" ->
      true
  | _ -> false

(* ---- constant folding ---- *)

let fold_constants (g : graph) : graph =
  let const_of : (int, Bitvec.t) Hashtbl.t = Hashtbl.create 32 in
  let subst = Hashtbl.create 16 in
  let changed = ref false in
  let body =
    List.filter_map
      (fun op ->
        match op.opname with
        | "hw.constant" ->
            (match (op.results, attr_bv op "value") with
            | [ r ], Some v -> Hashtbl.replace const_of r.vid v
            | _ -> ());
            Some op
        | name when Comb_eval.is_comb name && op.results <> [] -> (
            let operand_consts =
              List.map (fun v -> Hashtbl.find_opt const_of v.vid) op.operands
            in
            if List.for_all Option.is_some operand_consts then begin
              let vals = List.map Option.get operand_consts in
              let r = List.hd op.results in
              match
                (try Some (Comb_eval.eval ~name ~attrs:op.attrs ~ops:vals ~result_width:r.vty.Bitvec.width)
                 with _ -> None)
              with
              | Some folded ->
                  changed := true;
                  Hashtbl.replace const_of r.vid folded;
                  (* replace with a fresh constant op reusing the result *)
                  Some { op with opname = "hw.constant"; operands = []; attrs = [ ("value", A_bv folded) ] }
              | None -> Some op
            end
            else begin
              (* simple mux canonicalization: constant condition *)
              match (op.opname, op.operands) with
              | "comb.mux", [ c; t; f ] -> (
                  match Hashtbl.find_opt const_of c.vid with
                  | Some cv ->
                      changed := true;
                      let keep = if Bitvec.to_bool cv then t else f in
                      Hashtbl.replace subst (List.hd op.results).vid keep;
                      None
                  | None -> Some op)
              | _ -> Some op
            end)
        | _ -> Some op)
      g.body
  in
  let g = { g with body } in
  if Hashtbl.length subst > 0 then rewrite g ~subst ~keep:(fun _ -> true) else g

(* ---- common-subexpression elimination ---- *)

let cse (g : graph) : graph =
  let table : (string, value list) Hashtbl.t = Hashtbl.create 32 in
  let subst : (int, value) Hashtbl.t = Hashtbl.create 16 in
  let canon v = match Hashtbl.find_opt subst v.vid with Some v' -> v' | None -> v in
  let key op =
    let operands = List.map (fun v -> string_of_int (canon v).vid) op.operands in
    (* result types are part of the identity: the same extract/concat can
       produce different widths *)
    let results = List.map (fun r -> Bitvec.ty_to_string r.vty) op.results in
    let attrs =
      List.map
        (fun (k, a) ->
          Printf.sprintf "%s=%s" k
            (match a with
            | A_int i -> string_of_int i
            | A_str s -> s
            | A_bv v -> Bitvec.to_hex_string v ^ "/" ^ string_of_int (Bitvec.width v)
            | A_bool b -> string_of_bool b))
        op.attrs
    in
    Printf.sprintf "%s(%s){%s}:%s" op.opname (String.concat "," operands)
      (String.concat "," attrs) (String.concat "," results)
  in
  let body =
    List.filter
      (fun op ->
        if has_side_effect op || op.results = [] then true
        else begin
          let k = key op in
          match Hashtbl.find_opt table k with
          | Some prior ->
              List.iter2 (fun r p -> Hashtbl.replace subst r.vid p) op.results prior;
              false
          | None ->
              Hashtbl.replace table k op.results;
              true
        end)
      g.body
  in
  rewrite { g with body } ~subst ~keep:(fun _ -> true)

(* ---- dead-code elimination ---- *)

let dce (g : graph) : graph =
  let changed = ref true in
  let g = ref g in
  while !changed do
    changed := false;
    let uses = use_map !g in
    let body =
      List.filter
        (fun op ->
          if has_side_effect op || is_interface_read op then true
          else begin
            let live =
              List.exists
                (fun r ->
                  match Hashtbl.find_opt uses r.vid with
                  | Some (_ :: _) -> true
                  | _ -> false)
                op.results
            in
            if not live then changed := true;
            live
          end)
        (!g).body
    in
    g := { !g with body }
  done;
  !g

(* Also drop interface *reads* that are completely unused (e.g. a register
   read whose value was optimized away). Writes are always kept. *)
let dce_interface_reads (g : graph) : graph =
  let uses = use_map g in
  let body =
    List.filter
      (fun op ->
        if not (is_interface_read op) then true
        else
          List.exists
            (fun r ->
              match Hashtbl.find_opt uses r.vid with Some (_ :: _) -> true | _ -> false)
            op.results)
      g.body
  in
  { g with body }

(* ---- constant-shift lowering ---- *)

(* A shift by a compile-time-constant amount is pure wiring in hardware:
   rewrite it to extract/concat/replicate so that neither the scheduler
   nor the timing analysis charges barrel-shifter delay or area for it.
   (Rotations expressed as shl|shru, as in the sparkle ISAX, become free.) *)
let lower_constant_shifts (g : graph) : graph =
  let const_of : (int, Bitvec.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun op ->
      match (op.opname, op.results, attr_bv op "value") with
      | "hw.constant", [ r ], Some v -> Hashtbl.replace const_of r.vid v
      | _ -> ())
    (all_ops g);
  let b = builder () in
  (* continue id numbering above the existing graph to keep SSA ids unique *)
  List.iter
    (fun op ->
      b.next_o <- max b.next_o (op.oid + 1);
      List.iter (fun r -> b.next_v <- max b.next_v (r.vid + 1)) op.results)
    (all_ops g);
  (* keep existing value ids stable by tracking a substitution for results *)
  let subst : (int, value) Hashtbl.t = Hashtbl.create 16 in
  let s v = match Hashtbl.find_opt subst v.vid with Some v' -> v' | None -> v in
  let u w = Bitvec.unsigned_ty w in
  let rewrite_shift op kind x k =
    (* replacement wiring inherits the span of the shift it stands in for *)
    set_loc b op.oloc;
    let w = x.vty.Bitvec.width in
    let r = List.hd op.results in
    let replacement =
      if k = 0 then s x
      else if k >= w then begin
        match kind with
        | `Shl | `Shru ->
            add_op1 b "hw.constant" [] (u w) ~attrs:[ ("value", A_bv (Bitvec.zero (u w))) ]
        | `Shrs ->
            let sign =
              add_op1 b "comb.extract" [ s x ] (u 1) ~attrs:[ ("lowBit", A_int (w - 1)) ]
            in
            add_op1 b "comb.replicate" [ sign ] (u w)
      end
      else begin
        match kind with
        | `Shl ->
            let kept =
              add_op1 b "comb.extract" [ s x ] (u (w - k)) ~attrs:[ ("lowBit", A_int 0) ]
            in
            let zeros =
              add_op1 b "hw.constant" [] (u k) ~attrs:[ ("value", A_bv (Bitvec.zero (u k))) ]
            in
            add_op1 b "comb.concat" [ kept; zeros ] (u w)
        | `Shru ->
            let kept =
              add_op1 b "comb.extract" [ s x ] (u (w - k)) ~attrs:[ ("lowBit", A_int k) ]
            in
            let zeros =
              add_op1 b "hw.constant" [] (u k) ~attrs:[ ("value", A_bv (Bitvec.zero (u k))) ]
            in
            add_op1 b "comb.concat" [ zeros; kept ] (u w)
        | `Shrs ->
            let kept =
              add_op1 b "comb.extract" [ s x ] (u (w - k)) ~attrs:[ ("lowBit", A_int k) ]
            in
            let sign =
              add_op1 b "comb.extract" [ s x ] (u 1) ~attrs:[ ("lowBit", A_int (w - 1)) ]
            in
            let rep = add_op1 b "comb.replicate" [ sign ] (u k) in
            add_op1 b "comb.concat" [ rep; kept ] (u w)
      end
    in
    Hashtbl.replace subst r.vid replacement
  in
  List.iter
    (fun op ->
      match (op.opname, op.operands) with
      | ("comb.shl" | "comb.shru" | "comb.shrs"), [ x; amt ]
        when Hashtbl.mem const_of amt.vid ->
          let k =
            match Bitvec.to_int_opt (Hashtbl.find const_of amt.vid) with
            | Some k when k >= 0 -> k
            | _ -> max_int
          in
          if k = max_int then
            b.ops <- { op with operands = List.map s op.operands } :: b.ops
          else
            rewrite_shift op
              (match op.opname with
              | "comb.shl" -> `Shl
              | "comb.shru" -> `Shru
              | _ -> `Shrs)
              x k
      | _ -> b.ops <- { op with operands = List.map s op.operands } :: b.ops)
    g.body;
  (* fresh value ids from the builder may collide with existing ones; remap
     everything through a final rewrite that only applies the subst *)
  { g with body = List.rev b.ops }

(* ---- instrumented pass manager ---- *)

(* Each optimization pass is registered here by name so the pass manager
   can wrap it uniformly: per run it records wall time and before/after
   op- and edge-counts into the profiling scope, and the fixpoint driver
   reports its rounds-to-convergence. This is the measurement substrate
   for all later compile-time work (caching, parallel compile, sharing). *)

type pass = { pass_name : string; pass_fn : graph -> graph }

let all_passes : pass list =
  [
    { pass_name = "fold_constants"; pass_fn = fold_constants };
    { pass_name = "lower_constant_shifts"; pass_fn = lower_constant_shifts };
    { pass_name = "cse"; pass_fn = cse };
    { pass_name = "dce"; pass_fn = dce };
    { pass_name = "dce_interface_reads"; pass_fn = dce_interface_reads };
  ]

let find_pass name = List.find (fun p -> p.pass_name = name) all_passes

(* IR-size metrics: number of operations (including region bodies) and
   def-use edges (operand references). *)
let op_count (g : graph) = List.length (all_ops g)
let edge_count (g : graph) = List.fold_left (fun a (o : op) -> a + List.length o.operands) 0 (all_ops g)

type pass_stat = {
  ps_pass : string;
  ps_ops_before : int;
  ps_ops_after : int;
  ps_edges_before : int;
  ps_edges_after : int;
}

(* Run one pass, recording a "pass:NAME" child span with before/after
   sizes. Returns the rewritten graph and the stat record. *)
let run_pass ?obs (p : pass) (g : graph) : graph * pass_stat =
  Obs.span_opt obs ("pass:" ^ p.pass_name) (fun obs ->
      let ops_before = op_count g and edges_before = edge_count g in
      let g' = p.pass_fn g in
      let st =
        {
          ps_pass = p.pass_name;
          ps_ops_before = ops_before;
          ps_ops_after = op_count g';
          ps_edges_before = edges_before;
          ps_edges_after = edge_count g';
        }
      in
      Obs.metric_int_opt obs "ops_before" st.ps_ops_before;
      Obs.metric_int_opt obs "ops_after" st.ps_ops_after;
      Obs.metric_int_opt obs "edges_before" st.ps_edges_before;
      Obs.metric_int_opt obs "edges_after" st.ps_edges_after;
      (g', st))

(* Cheap convergence check for the fixpoint driver: identical op count,
   edge count and printed form. Graphs here are tens to a few hundred ops,
   so the string compare is negligible next to the passes themselves. *)
let graphs_equal a b =
  op_count a = op_count b && edge_count a = edge_count b
  && graph_to_string a = graph_to_string b

(* Standard pipeline: fold + lower shifts once, then fold/cse to fixpoint
   (bounded by [fold_rounds]), then strip dead logic. With [obs] set, every
   pass execution appears as a "pass:*" child span of the caller's scope,
   and the number of fold/cse rounds actually taken is recorded as the
   "fold_rounds" metric. *)
let optimize_with_stats ?obs ?verify_each ?(fold_rounds = 4) (g : graph) :
    graph * pass_stat list =
  let stats = ref [] in
  let run name g =
    let g', st = run_pass ?obs (find_pass name) g in
    stats := st :: !stats;
    (match verify_each with Some f -> f ~pass_name:name g' | None -> ());
    g'
  in
  let g = run "fold_constants" g in
  let g = run "lower_constant_shifts" g in
  let g = ref g and rounds = ref 0 and converged = ref false in
  while (not !converged) && !rounds < fold_rounds do
    incr rounds;
    let before = !g in
    g := run "fold_constants" !g;
    g := run "cse" !g;
    if graphs_equal before !g then converged := true
  done;
  g := run "dce" !g;
  g := run "dce_interface_reads" !g;
  g := run "dce" !g;
  (match obs with
  | Some s ->
      Obs.metric_int s "fold_rounds" !rounds;
      Obs.metric_int s "ops_before" (List.nth (List.rev !stats) 0).ps_ops_before;
      Obs.metric_int s "ops_after" (List.hd !stats).ps_ops_after;
      Obs.metric_int s "edges_before" (List.nth (List.rev !stats) 0).ps_edges_before;
      Obs.metric_int s "edges_after" (List.hd !stats).ps_edges_after
  | None -> ());
  (!g, List.rev !stats)

let optimize ?obs ?verify_each ?fold_rounds (g : graph) : graph =
  fst (optimize_with_stats ?obs ?verify_each ?fold_rounds g)
