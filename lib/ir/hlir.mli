(** Lowering from the typed CoreDSL AST to the high-level IR (Figure 5b).

   The output is a flat SSA graph per instruction / always-block mixing the
   [coredsl] dialect (state access, bit manipulation, fields) with the
   [hwarith] dialect (bitwidth-aware arithmetic). On the way down we
   perform, like the paper's "pre-HLS upstream utilities":
   - full loop unrolling (loops must have compile-time trip counts),
   - function inlining,
   - if-conversion: branches become predicated state writes and muxes,
   - SSA construction for mutable locals,
   - merging of multiple writes to one architectural state element into a
     single predicated write (each SCAIE-V sub-interface may be used at
     most once per instruction).

   Ops lowered inside a spawn-block are tagged with the [spawn] attribute,
   mirroring Longnail's flattening with provenance markers (Section 4.1c). *)

module Bn = Bitvec.Bn
exception Lower_error of Diag.t
val lower_error : ?span:Diag.span -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val u : int -> Bitvec.ty
val bool_ty : Bitvec.ty
type pending = {
  p_operands : Mir.value list;
  p_pred : Mir.value option;
  p_spawn : bool;
  p_elems : int;
  p_loc : Diag.span option;
}
type env = {
  b : Mir.builder;
  tu : Coredsl.Tast.tunit;
  mutable locals : (string * (Mir.value * int)) list;
  mutable consts : (string * Bitvec.t) list;
  mutable fields : (string * Mir.value) list;
  mutable reg_cur : (string * Mir.value) list;
  mutable pend_reg : (string * pending) list;
  mutable pend_rf : (string * pending) list;
  mutable pend_mem : (string * pending) list;
  mutable preds : Mir.value list;
  mutable in_spawn : bool;
  mutable ret : (Mir.value option * Mir.value option) option;
}
val conj : env -> Mir.value list -> Mir.value option
val bool_and_fwd : env -> Mir.value -> Mir.value -> Mir.value
val current_pred : env -> Mir.value option
val constant : env -> Bitvec.t -> Mir.value
val bool_and : env -> Mir.value -> Mir.value -> Mir.value
val bool_or : env -> Mir.value -> Mir.value -> Mir.value
val bool_not : env -> Mir.value -> Mir.value
val mux : env -> Mir.value -> Mir.value -> Mir.value -> Mir.value
val merge_pending :
  env ->
  pending option ->
  Mir.value list -> Mir.value option -> bool -> int -> pending
val try_const : env -> Coredsl.Tast.texpr -> Bitvec.t option
val spawn_attr : env -> (string * Mir.attr) list
val to_bool : env -> Mir.value -> Mir.value
val lower_expr : env -> Coredsl.Tast.texpr -> Mir.value
val lower_binop :
  env ->
  Coredsl.Tast.texpr ->
  Coredsl.Ast.binop ->
  Coredsl.Tast.texpr -> Coredsl.Tast.texpr -> Mir.value
val inline_call : env -> string -> Mir.value list -> Mir.value option
val assign_local : env -> string -> Mir.value -> Bitvec.t option -> unit
val lower_stmt : env -> Coredsl.Tast.tstmt -> unit
val lower_stmts : env -> Coredsl.Tast.tstmt list -> unit
val flush_pending : env -> unit
val fresh_env : Coredsl.Tast.tunit -> Mir.builder -> env
val lower_instruction :
  Coredsl.Tast.tunit -> Coredsl.Tast.tinstr -> Mir.graph
val lower_always : Coredsl.Tast.tunit -> Coredsl.Tast.talways -> Mir.graph
val lower_unit : Coredsl.Tast.tunit -> Mir.graph list
