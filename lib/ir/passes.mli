(** Optimization passes over lil graphs: constant folding (canonicalization),
   common-subexpression elimination, and dead-code elimination. These mirror
   MLIR's canonicalization infrastructure the paper relies on ("constant
   registers are internalized into the ISAX module and subject to MLIR's
   usual canonicalization patterns"). *)

val has_side_effect : Mir.op -> bool
val is_interface_read : Mir.op -> bool
val fold_constants : Mir.graph -> Mir.graph
val cse : Mir.graph -> Mir.graph
val dce : Mir.graph -> Mir.graph
val dce_interface_reads : Mir.graph -> Mir.graph
val lower_constant_shifts : Mir.graph -> Mir.graph

(** {2 Instrumented pass manager} *)

type pass = { pass_name : string; pass_fn : Mir.graph -> Mir.graph }

val all_passes : pass list
(** Every registered optimization pass, in canonical order. *)

val find_pass : string -> pass
(** Look a pass up by name; raises [Not_found] on unknown names. *)

val op_count : Mir.graph -> int
(** Number of operations, including region bodies. *)

val edge_count : Mir.graph -> int
(** Number of def-use edges (operand references). *)

(** Before/after IR sizes of one pass execution. *)
type pass_stat = {
  ps_pass : string;
  ps_ops_before : int;
  ps_ops_after : int;
  ps_edges_before : int;
  ps_edges_after : int;
}

val run_pass : ?obs:Obs.scope -> pass -> Mir.graph -> Mir.graph * pass_stat
(** Run one pass; with [obs] set, records a ["pass:NAME"] span with
    before/after op- and edge-counts. *)

val optimize_with_stats :
  ?obs:Obs.scope ->
  ?verify_each:(pass_name:string -> Mir.graph -> unit) ->
  ?fold_rounds:int ->
  Mir.graph ->
  Mir.graph * pass_stat list
(** The standard pipeline (fold + shift lowering, fold/cse to fixpoint
    bounded by [fold_rounds], then DCE), returning the per-pass trace in
    execution order. With [obs] set, also records ["pass:*"] spans plus a
    ["fold_rounds"] rounds-to-fixpoint metric on the enclosing span. With
    [verify_each] set, the callback runs on the result of every pass
    execution (the [--verify-each] sanitizer hook) and may raise to abort
    the pipeline, naming the offending pass. *)

val optimize :
  ?obs:Obs.scope ->
  ?verify_each:(pass_name:string -> Mir.graph -> unit) ->
  ?fold_rounds:int ->
  Mir.graph ->
  Mir.graph
