(** Lowering from the high-level IR to the "Longnail Intermediate Language"
   CDFG (Figure 5c).

   Two things happen here, mirroring Section 4.1(c):
   - architectural state accesses become explicit SCAIE-V sub-interface
     operations (lil.read_rs1, lil.write_rd, lil.read_mem, ...), making
     them schedulable alongside the computation;
   - bitwidth-aware [hwarith] arithmetic is legalized to the signless
     [comb] dialect, materializing sign/zero extensions as
     comb.replicate/comb.concat and truncations as comb.extract, exactly
     like the ADDI example in the paper.

   All lil/comb values are plain unsigned bit vectors. *)

module Bn = Bitvec.Bn
exception Lil_error of Diag.t
val lil_error : ?code:string -> ?span:Diag.span -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val u : int -> Bitvec.ty
val width_of : Mir.value -> int
val std_regfile : string
type ctx = {
  b : Mir.builder;
  elab : Coredsl.Elaborate.elaborated;
  vmap : (int, Mir.value) Hashtbl.t;
  defs : (int, Mir.op) Hashtbl.t;
  mutable instr_word : Mir.value option;
}
val map_v : ctx -> Mir.value -> Mir.value
val const : ctx -> Bitvec.t -> Mir.value
val const_int : ctx -> int -> int -> Mir.value
val resize : ctx -> signed:bool -> Mir.value -> int -> Mir.value
val ext_operand : ctx -> Mir.value -> Mir.value -> int -> Mir.value
val get_instr_word : ctx -> int -> Mir.value
val lower_field : ctx -> int -> Coredsl.Tast.field_info -> Mir.value
val traces_to_field : ctx -> Mir.value -> string -> bool
val icmp_name : signed:bool -> string -> string
val carry_attrs : Mir.op -> (string * Mir.attr) list
val lower_op : ctx -> 'a -> Mir.op -> unit
val of_hlir :
  Coredsl.Elaborate.elaborated ->
  ?fields:Coredsl.Tast.field_info list -> Mir.graph -> Mir.graph
val interface_ops : Mir.graph -> Mir.op list
val validate_single_use : Mir.graph -> unit
