(* Lowering from the high-level IR to the "Longnail Intermediate Language"
   CDFG (Figure 5c).

   Two things happen here, mirroring Section 4.1(c):
   - architectural state accesses become explicit SCAIE-V sub-interface
     operations (lil.read_rs1, lil.write_rd, lil.read_mem, ...), making
     them schedulable alongside the computation;
   - bitwidth-aware [hwarith] arithmetic is legalized to the signless
     [comb] dialect, materializing sign/zero extensions as
     comb.replicate/comb.concat and truncations as comb.extract, exactly
     like the ADDI example in the paper.

   All lil/comb values are plain unsigned bit vectors. *)

module Bn = Bitvec.Bn
open Mir

exception Lil_error of Diag.t

let lil_error ?(code = "E0302") ?span fmt =
  Format.kasprintf (fun m -> raise (Lil_error (Diag.make ?span ~code m))) fmt

let u w = Bitvec.unsigned_ty w
let width_of (v : value) = v.vty.Bitvec.width

(* the standard register file and its access fields *)
let std_regfile = "X"

type ctx = {
  b : builder;
  elab : Coredsl.Elaborate.elaborated;
  vmap : (int, value) Hashtbl.t;  (* old vid -> new value *)
  defs : (int, op) Hashtbl.t;  (* old vid -> old defining op *)
  mutable instr_word : value option;
}

let map_v ctx (v : value) =
  match Hashtbl.find_opt ctx.vmap v.vid with
  | Some v' -> v'
  | None -> lil_error ?span:ctx.b.cur_loc "unmapped value %%%d" v.vid

let const ctx v =
  let pat = Bitvec.of_bn (u (Bitvec.width v)) (Bitvec.pattern v) in
  add_op1 ctx.b "hw.constant" [] (u (Bitvec.width v)) ~attrs:[ ("value", A_bv pat) ]

let const_int ctx w i = const ctx (Bitvec.of_int (u w) i)

(* zero-extend, sign-extend or truncate [v] to [w] bits *)
let resize ctx ~signed (v : value) w =
  let vw = width_of v in
  if vw = w then v
  else if w < vw then
    add_op1 ctx.b "comb.extract" [ v ] (u w) ~attrs:[ ("lowBit", A_int 0) ]
  else if signed then begin
    let sign = add_op1 ctx.b "comb.extract" [ v ] (u 1) ~attrs:[ ("lowBit", A_int (vw - 1)) ] in
    let rep = add_op1 ctx.b "comb.replicate" [ sign ] (u (w - vw)) in
    add_op1 ctx.b "comb.concat" [ rep; v ] (u w)
  end
  else begin
    let zeros = const_int ctx (w - vw) 0 in
    add_op1 ctx.b "comb.concat" [ zeros; v ] (u w)
  end

(* extend an hwarith operand to the result width per its own signedness *)
let ext_operand ctx (old : value) (nv : value) w = resize ctx ~signed:old.vty.Bitvec.signed nv w

let get_instr_word ctx enc_width =
  match ctx.instr_word with
  | Some v -> v
  | None ->
      let v = add_op1 ctx.b "lil.instr_word" [] (u enc_width) ~hint:"iw" in
      ctx.instr_word <- Some v;
      v

(* reconstruct an encoding field value from instruction-word bits:
   comb.extract per segment, zero fill for uncovered bits, one concat *)
let lower_field ctx enc_width (fi : Coredsl.Tast.field_info) =
  let iw = get_instr_word ctx enc_width in
  let segs =
    List.sort
      (fun (a : Coredsl.Tast.field_segment) b -> compare b.fld_lo a.fld_lo)
      fi.segments
  in
  (* walk from the MSB side of the field, collecting pieces *)
  let rec build pos segs acc =
    if pos < 0 then acc
    else
      match segs with
      | (s : Coredsl.Tast.field_segment) :: rest when s.fld_lo + s.seg_len - 1 = pos ->
          let piece =
            add_op1 ctx.b "comb.extract" [ iw ] (u s.seg_len)
              ~attrs:[ ("lowBit", A_int s.instr_lo) ]
          in
          build (s.fld_lo - 1) rest (piece :: acc)
      | _ ->
          (* gap: bits above the next segment (or all remaining) are zero *)
          let next_top = match segs with s :: _ -> s.fld_lo + s.seg_len - 1 | [] -> -1 in
          let gap = pos - next_top in
          let zeros = const_int ctx gap 0 in
          build (pos - gap) segs (zeros :: acc)
  in
  let pieces = List.rev (build (fi.fld_width - 1) segs []) in
  match pieces with
  | [ p ] -> p
  | _ -> add_op1 ctx.b "comb.concat" pieces (u fi.fld_width)

(* Does [v] come (transitively through extensions/casts) from field [f]? *)
let rec traces_to_field ctx (v : value) fname =
  match Hashtbl.find_opt ctx.defs v.vid with
  | Some { opname = "coredsl.field"; attrs; _ } -> (
      match List.assoc_opt "name" attrs with Some (A_str n) -> n = fname | _ -> false)
  | Some { opname = "hwarith.cast"; operands = [ a ]; _ } -> traces_to_field ctx a fname
  | _ -> false

let icmp_name ~signed = function
  | "eq" -> "comb.icmp_eq"
  | "ne" -> "comb.icmp_ne"
  | "lt" -> if signed then "comb.icmp_slt" else "comb.icmp_ult"
  | "le" -> if signed then "comb.icmp_sle" else "comb.icmp_ule"
  | "gt" -> if signed then "comb.icmp_sgt" else "comb.icmp_ugt"
  | "ge" -> if signed then "comb.icmp_sge" else "comb.icmp_uge"
  | p -> lil_error "unknown icmp predicate %s" p

let carry_attrs op =
  List.filter (fun (k, _) -> k = "spawn" || k = "has_pred") op.attrs

(* Lower one high-level op into the lil/comb builder. All lil/comb ops
   built here inherit [op]'s source span via the builder's ambient
   location, set by the caller. *)
let lower_op ctx enc_width (op : op) =
  let lil_error fmt = lil_error ?span:op.oloc fmt in
  let bind old nv = Hashtbl.replace ctx.vmap old.vid nv in
  let operand i = map_v ctx (List.nth op.operands i) in
  let old_operand i = List.nth op.operands i in
  let result0 () = List.hd op.results in
  match op.opname with
  | "hw.constant" ->
      let v = match attr_bv op "value" with Some v -> v | None -> lil_error "constant without value" in
      bind (result0 ()) (const ctx v)
  | "coredsl.field" ->
      let name = Option.get (attr_str op "name") in
      let fi =
        {
          Coredsl.Tast.fld_name = name;
          fld_width = width_of (result0 ());
          segments = [];
        }
      in
      ignore fi;
      (* field segments are stored graph-side; the caller pre-computes them *)
      lil_error "coredsl.field must be lowered by of_hlir (missing segment info for %s)" name
  | "coredsl.get" -> (
      let state = Option.get (attr_str op "state") in
      let r = result0 () in
      match op.operands with
      | [] ->
          (* scalar register: PC or custom *)
          let reg = Coredsl.Elaborate.find_reg ctx.elab state in
          let is_pc = match reg with Some r -> r.is_pc | None -> false in
          if is_pc then bind r (add_op1 ctx.b "lil.read_pc" [] (u (width_of r)) ~hint:"pc")
          else
            bind r
              (add_op1 ctx.b "lil.read_custreg" [ const_int ctx 1 0 ] (u (width_of r))
                 ~attrs:[ ("reg", A_str state) ] ~hint:state)
      | [ idx ] ->
          if state = std_regfile then begin
            if traces_to_field ctx idx "rs1" then
              bind r (add_op1 ctx.b "lil.read_rs1" [] (u (width_of r)) ~hint:"rs1")
            else if traces_to_field ctx idx "rs2" then
              bind r (add_op1 ctx.b "lil.read_rs2" [] (u (width_of r)) ~hint:"rs2")
            else
              lil_error
                "reads of the standard register file must use the rs1/rs2 encoding fields"
          end
          else begin
            let vi = operand 0 in
            bind r
              (add_op1 ctx.b "lil.read_custreg" [ vi ] (u (width_of r))
                 ~attrs:[ ("reg", A_str state) ] ~hint:state)
          end
      | _ -> lil_error "malformed coredsl.get")
  | "coredsl.set" -> (
      let state = Option.get (attr_str op "state") in
      let has_pred = attr_bool op "has_pred" in
      let extra = carry_attrs op in
      let reg = Coredsl.Elaborate.find_reg ctx.elab state in
      let is_pc = match reg with Some r -> r.is_pc | None -> false in
      let elems = match reg with Some r -> r.elems | None -> 1 in
      match op.operands with
      | _ when is_pc ->
          (* scalar PC write: operands [value] or [value; pred] *)
          let ops = List.map (map_v ctx) op.operands in
          ignore (add_op ctx.b "lil.write_pc" ops [] ~attrs:extra)
      | [ _v ] | [ _v; _ ] when elems = 1 ->
          let ops = List.map (map_v ctx) op.operands in
          ignore
            (add_op ctx.b "lil.write_custreg" (const_int ctx 1 0 :: ops) []
               ~attrs:(("reg", A_str state) :: extra))
      | idx :: _rest when state = std_regfile ->
          if not (traces_to_field ctx idx "rd") then
            lil_error "writes to the standard register file must use the rd encoding field";
          let ops = List.map (map_v ctx) (List.tl op.operands) in
          ignore (add_op ctx.b "lil.write_rd" ops [] ~attrs:extra)
      | _ :: _rest ->
          let ops = List.map (map_v ctx) op.operands in
          ignore (add_op ctx.b "lil.write_custreg" ops [] ~attrs:(("reg", A_str state) :: extra))
      | [] -> lil_error "malformed coredsl.set")
  | "coredsl.rom" ->
      let state = Option.get (attr_str op "state") in
      let vi = operand 0 in
      bind (result0 ())
        (add_op1 ctx.b "lil.rom" [ vi ] (u (width_of (result0 ())))
           ~attrs:[ ("rom", A_str state) ] ~hint:state)
  | "coredsl.load" ->
      let space = Option.get (attr_str op "space") in
      let elems = Option.value ~default:1 (attr_int op "elems") in
      let ops = List.map (map_v ctx) op.operands in
      bind (result0 ())
        (add_op1 ctx.b "lil.read_mem" ops (u (width_of (result0 ())))
           ~attrs:([ ("space", A_str space); ("elems", A_int elems) ] @ carry_attrs op))
  | "coredsl.store" ->
      let space = Option.get (attr_str op "space") in
      let elems = Option.value ~default:1 (attr_int op "elems") in
      let ops = List.map (map_v ctx) op.operands in
      ignore
        (add_op ctx.b "lil.write_mem" ops []
           ~attrs:([ ("space", A_str space); ("elems", A_int elems) ] @ carry_attrs op))
  | "coredsl.concat" ->
      let ops = List.map (map_v ctx) op.operands in
      bind (result0 ()) (add_op1 ctx.b "comb.concat" ops (u (width_of (result0 ()))))
  | "coredsl.extract" -> (
      let w = Option.get (attr_int op "width") in
      let v = operand 0 in
      let lo_old = old_operand 1 in
      let lo_def = Hashtbl.find_opt ctx.defs lo_old.vid in
      match lo_def with
      | Some { opname = "hw.constant"; attrs; _ } ->
          let c = match List.assoc_opt "value" attrs with Some (A_bv c) -> Bitvec.to_int c | _ -> 0 in
          bind (result0 ()) (add_op1 ctx.b "comb.extract" [ v ] (u w) ~attrs:[ ("lowBit", A_int c) ])
      | _ ->
          (* dynamic extract: shift right then truncate *)
          let lo = operand 1 in
          let lo' = resize ctx ~signed:false lo (width_of v) in
          let shifted = add_op1 ctx.b "comb.shru" [ v; lo' ] (u (width_of v)) in
          bind (result0 ())
            (add_op1 ctx.b "comb.extract" [ shifted ] (u w) ~attrs:[ ("lowBit", A_int 0) ]))
  | "hwarith.cast" ->
      let old = old_operand 0 in
      let v = operand 0 in
      bind (result0 ()) (resize ctx ~signed:old.vty.Bitvec.signed v (width_of (result0 ())))
  | "hwarith.add" | "hwarith.sub" | "hwarith.mul" | "hwarith.band" | "hwarith.bor"
  | "hwarith.bxor" ->
      let w = width_of (result0 ()) in
      let a = ext_operand ctx (old_operand 0) (operand 0) w in
      let b = ext_operand ctx (old_operand 1) (operand 1) w in
      let name =
        match op.opname with
        | "hwarith.add" -> "comb.add"
        | "hwarith.sub" -> "comb.sub"
        | "hwarith.mul" -> "comb.mul"
        | "hwarith.band" -> "comb.and"
        | "hwarith.bor" -> "comb.or"
        | _ -> "comb.xor"
      in
      bind (result0 ()) (add_op1 ctx.b name [ a; b ] (u w))
  | "hwarith.div" | "hwarith.rem" ->
      let w = width_of (result0 ()) in
      let signed = (old_operand 0).vty.Bitvec.signed || (old_operand 1).vty.Bitvec.signed in
      let a = ext_operand ctx (old_operand 0) (operand 0) w in
      let b = ext_operand ctx (old_operand 1) (operand 1) w in
      let name =
        match (op.opname, signed) with
        | "hwarith.div", true -> "comb.divs"
        | "hwarith.div", false -> "comb.divu"
        | _, true -> "comb.mods"
        | _, false -> "comb.modu"
      in
      bind (result0 ()) (add_op1 ctx.b name [ a; b ] (u w))
  | "hwarith.icmp" ->
      let pred = Option.get (attr_str op "predicate") in
      let oa = old_operand 0 and ob = old_operand 1 in
      let common = Bitvec.union_ty oa.vty ob.vty in
      let w = common.Bitvec.width in
      let a = ext_operand ctx oa (operand 0) w in
      let b = ext_operand ctx ob (operand 1) w in
      bind (result0 ())
        (add_op1 ctx.b (icmp_name ~signed:common.Bitvec.signed pred) [ a; b ] (u 1))
  | "hwarith.shl" | "hwarith.shr" ->
      let w = width_of (result0 ()) in
      let old_a = old_operand 0 in
      let a = resize ctx ~signed:old_a.vty.Bitvec.signed (operand 0) w in
      let amt = resize ctx ~signed:false (operand 1) w in
      let name =
        if op.opname = "hwarith.shl" then "comb.shl"
        else if old_a.vty.Bitvec.signed then "comb.shrs"
        else "comb.shru"
      in
      bind (result0 ()) (add_op1 ctx.b name [ a; amt ] (u w))
  | "hwarith.not" ->
      let w = width_of (result0 ()) in
      let ones = const ctx (Bitvec.lognot (Bitvec.zero (u w))) in
      bind (result0 ()) (add_op1 ctx.b "comb.xor" [ operand 0; ones ] (u w))
  | "hwarith.mux" ->
      let w = width_of (result0 ()) in
      let c = operand 0 in
      let t = ext_operand ctx (old_operand 1) (operand 1) w in
      let f = ext_operand ctx (old_operand 2) (operand 2) w in
      bind (result0 ()) (add_op1 ctx.b "comb.mux" [ c; t; f ] (u w))
  | "hwarith.and" ->
      bind (result0 ()) (add_op1 ctx.b "comb.and" [ operand 0; operand 1 ] (u 1))
  | "hwarith.or" ->
      bind (result0 ()) (add_op1 ctx.b "comb.or" [ operand 0; operand 1 ] (u 1))
  | other -> lil_error "cannot lower op '%s' to lil" other

(* Lower a full high-level graph to a lil graph. *)
let of_hlir (elab : Coredsl.Elaborate.elaborated) ?(fields : Coredsl.Tast.field_info list = [])
    (g : graph) : graph =
  let b = builder () in
  let ctx = { b; elab; vmap = Hashtbl.create 64; defs = Hashtbl.create 64; instr_word = None } in
  List.iter
    (fun op -> List.iter (fun r -> Hashtbl.replace ctx.defs r.vid op) op.results)
    (all_ops g);
  let enc_width =
    match List.assoc_opt "enc_width" g.gattrs with Some (A_int w) -> w | _ -> 32
  in
  List.iter
    (fun op ->
      (* lil/comb ops inherit the source span of the hlir op they lower *)
      set_loc b op.oloc;
      match op.opname with
      | "coredsl.field" ->
          let name = Option.get (attr_str op "name") in
          let fi =
            match List.find_opt (fun (f : Coredsl.Tast.field_info) -> f.fld_name = name) fields with
            | Some fi -> fi
            | None -> lil_error ?span:op.oloc "no segment info for field '%s'" name
          in
          Hashtbl.replace ctx.vmap (List.hd op.results).vid (lower_field ctx enc_width fi)
      | _ -> lower_op ctx enc_width op)
    g.body;
  set_loc b None;
  ignore (add_op b "lil.sink" [] []);
  finish b ~name:g.gname ~kind:g.gkind ~attrs:g.gattrs ()

(* the SCAIE-V sub-interface operations present in a lil graph *)
let interface_ops g =
  List.filter
    (fun op ->
      match op.opname with
      | "lil.instr_word" | "lil.read_rs1" | "lil.read_rs2" | "lil.read_pc" | "lil.read_custreg"
      | "lil.write_rd" | "lil.write_pc" | "lil.write_custreg" | "lil.read_mem" | "lil.write_mem"
        ->
          true
      | _ -> false)
    (all_ops g)

(* Enforce the SCAIE-V rule that each sub-interface is used at most once per
   functionality (Section 3.1). Run after CSE. *)
let validate_single_use g =
  let key op =
    match op.opname with
    | "lil.read_custreg" | "lil.write_custreg" ->
        op.opname ^ ":" ^ Option.value ~default:"" (attr_str op "reg")
    | name -> name
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let k = key op in
      if Hashtbl.mem seen k then
        lil_error ~code:"E0303" ?span:op.oloc "sub-interface %s used more than once in %s" k
          g.gname
      else Hashtbl.add seen k ())
    (interface_ops g)
