(** Content-addressed compilation artifacts (docs/CACHING.md).

    Two halves:

    - {!Fp}: stable structural fingerprints over the values that flow
      between pipeline stages — typed CoreDSL units ({!Coredsl.Tast}),
      MIR graphs ({!Ir.Mir}, SSA-id independent), SCAIE-V virtual
      datasheets ({!Scaiev.Datasheet}) — plus the generic combinators the
      flow uses to key scheduling knobs. Fingerprints are deterministic
      across processes: no [Hashtbl.hash], no physical identity, no
      source locations, no cosmetic hints.
    - {!Store}: a generic keyed artifact store with LRU eviction and
      hit/miss/store/eviction counters, reported per lookup through
      {!Obs} so the [--profile] output and the bench baseline carry
      per-stage cache behaviour. Stores are safe for concurrent use
      from multiple domains (the parallel driver of
      docs/PARALLELISM.md): lookups are single-flight per key. *)

module Fp : sig
  type t = string
  (** A fingerprint: 32 lowercase hex characters (an MD5 of the canonical
      serialization). Exposed as a string so stage keys can be composed
      by concatenation. *)

  (** {2 Generic combinators}

      A [ctx] accumulates the canonical serialization; every combinator
      is injective over its own domain (strings are length-prefixed,
      constructors tagged, floats rendered with [%h]). *)

  type ctx

  val create : unit -> ctx
  val add_tag : ctx -> string -> unit
  val add_string : ctx -> string -> unit
  val add_int : ctx -> int -> unit
  val add_bool : ctx -> bool -> unit
  val add_float : ctx -> float -> unit
  val add_opt : (ctx -> 'a -> unit) -> ctx -> 'a option -> unit
  val add_list : (ctx -> 'a -> unit) -> ctx -> 'a list -> unit
  val finish : ctx -> t

  val digest : (ctx -> unit) -> t
  (** [digest f] runs [f] on a fresh context and finishes it. *)

  (** {2 Domain fingerprints} *)

  val add_bitvec_ty : ctx -> Bitvec.ty -> unit
  val add_bitvec : ctx -> Bitvec.t -> unit

  val tunit : Coredsl.Tast.tunit -> t
  (** Structural fingerprint of a typed unit: elaborated state (registers,
      address spaces, parameters) plus every typed instruction,
      always-block and function body. Source locations are excluded, so
      two elaborations of the same source (even from different files)
      agree; any semantic edit — a literal, an operator, an encoding, a
      register width — changes the fingerprint. *)

  val graph : Ir.Mir.graph -> t
  (** Fingerprint of a MIR graph. SSA value ids are renumbered densely in
      order of first occurrence, so alpha-renamed graphs agree; operation
      names, attributes, operand/result structure, types and region
      nesting all contribute. Cosmetic value hints and op ids do not. *)

  val datasheet : Scaiev.Datasheet.t -> t
  (** Fingerprint of a virtual datasheet: every stage/window/latency field
      plus the ASIC baselines. *)
end

module Disk : sig
  (** Content-addressed {e on-disk} artifact store: the persistent
      sibling of {!Store}, shared across processes so a fresh process —
      or the [longnail serve] daemon after a restart — is served warm.
      One self-describing file per artifact under a versioned root
      ([DIR/v{!format_version}/<md5(key)>.art]); writes are published
      with an atomic rename; corrupted, truncated or wrong-version
      entries are evicted and recomputed, never fatal. Eviction is LRU
      by file mtime against a byte budget. Safe for concurrent use from
      multiple domains and (thanks to atomic publication of
      content-addressed keys) from multiple processes. See
      docs/CACHING.md for the file format. *)

  type stats = {
    hits : int;
    misses : int;
    stores : int;
    evictions : int;
    corrupt : int;  (** entries rejected (and evicted) as invalid *)
    bytes : int;  (** bytes currently on disk (entry files, incl. headers) *)
  }

  type t

  val format_version : int
  (** Version stamp of the store layout {e and} entry encoding. Bumping
      it moves the root to a fresh [v<N>] directory, so incompatible old
      entries are never misread. *)

  val default_budget_bytes : int
  (** 256 MiB. *)

  val open_store : ?budget_bytes:int -> string -> t
  (** [open_store dir] opens (creating if needed) the store rooted at
      [dir/v{!format_version}] and scans existing entries into the size
      accounting. Opening never validates payloads — corruption is
      detected (and healed) lazily on lookup. *)

  val dir : t -> string
  (** The versioned root directory. *)

  val find : t -> ?obs:Obs.scope -> string -> string option
  (** [find t key] returns the stored payload, or [None] on a miss. A
      hit bumps the entry's LRU clock. An invalid entry (truncated,
      corrupted, wrong format version, checksum mismatch) counts as
      [corrupt], is deleted, and reads as a miss. With [obs], records
      [disk.hit] / [disk.miss] / [disk.store] counters on that span (all
      three always present, like {!Store.find_or_add}). *)

  val store : t -> ?obs:Obs.scope -> string -> string -> unit
  (** [store t key payload] atomically publishes [key -> payload]
      (write-temp-then-rename) and then evicts least-recently-used
      entries until the store fits its byte budget. The entry just
      written always survives its own store. *)

  val find_or_add : t -> ?obs:Obs.scope -> string -> (unit -> string) -> string

  val remove : t -> string -> unit

  val length : t -> int
  (** Number of entries currently on disk. *)

  val stats : t -> stats

  val record_stats : t -> name:string -> Obs.scope -> unit
  (** Write cumulative [NAME.hits] / [NAME.misses] / [NAME.stores] /
      [NAME.evictions] / [NAME.corrupt] / [NAME.bytes] metrics onto a
      span. *)
end

module Store : sig
  type stats = { hits : int; misses : int; stores : int; evictions : int }

  type 'v t

  val create : ?capacity:int -> name:string -> unit -> 'v t
  (** A keyed store holding at most [capacity] entries (default 512),
      evicting least-recently-used beyond that. [capacity = 0] disables
      storing entirely: every lookup misses and recomputes — used for
      deliberately cold sessions. *)

  val name : 'v t -> string
  val length : 'v t -> int
  val stats : 'v t -> stats

  val find_or_add : 'v t -> ?obs:Obs.scope -> string -> (unit -> 'v) -> 'v
  (** [find_or_add t key compute] returns the cached value for [key] or
      runs [compute], stores the result and returns it. If [compute]
      raises, nothing is stored and the exception propagates. With [obs],
      records the [cache.hit] / [cache.miss] / [cache.store] counters on
      that span (all three are always present, so the profiling schema is
      identical for cold and warm lookups).

      Concurrent lookups of the same key from several domains are
      single-flight: exactly one domain runs [compute] (outside the
      store lock — independent keys never serialize on each other);
      the others block until the artifact lands and count as hits. If
      the computing domain's [compute] raises, one waiter is promoted
      to retry. [obs] scopes are not shared across domains — each
      caller passes its own. *)

  val mem : 'v t -> string -> bool

  val record_stats : 'v t -> Obs.scope -> unit
  (** Write the store's cumulative [NAME.hits] / [NAME.misses] /
      [NAME.stores] / [NAME.evictions] metrics onto a span. *)
end
