(* Content-addressed compilation artifacts: stable structural
   fingerprints plus a generic keyed store (docs/CACHING.md).

   Fingerprints are the invalidation mechanism of the compilation
   sessions in Longnail.Flow: equal fingerprint => the stage would
   recompute an identical artifact. The serialization therefore covers
   exactly the semantic content a stage consumes and nothing incidental:
   no source locations (same unit from another file re-uses artifacts),
   no SSA value ids (rewrites renumber freely), no cosmetic name hints,
   and never [Hashtbl.hash], which is neither stable nor total on the
   cyclic/functional values in these structures. *)

module Fp = struct
  type t = string

  type ctx = Buffer.t

  let create () = Buffer.create 4096

  (* Tags delimit constructors, length prefixes make strings
     self-delimiting: the serialization is prefix-free, so structurally
     different values cannot collide by concatenation. *)
  let add_tag b s =
    Buffer.add_char b '\x01';
    Buffer.add_string b s;
    Buffer.add_char b '\x02'

  let add_string b s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s

  let add_int b i =
    Buffer.add_char b 'i';
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b ';'

  let add_bool b v = Buffer.add_char b (if v then 'T' else 'F')

  (* %h is exact (hex mantissa/exponent): distinct floats never merge *)
  let add_float b f =
    Buffer.add_char b 'f';
    Buffer.add_string b (Printf.sprintf "%h" f);
    Buffer.add_char b ';'

  let add_opt add b = function
    | None -> Buffer.add_char b 'N'
    | Some v ->
        Buffer.add_char b 'S';
        add b v

  let add_list add b l =
    add_int b (List.length l);
    List.iter (add b) l

  let finish b = Digest.to_hex (Digest.string (Buffer.contents b))

  let digest f =
    let b = create () in
    f b;
    finish b

  (* ---- bit vectors ---- *)

  let add_bitvec_ty b (t : Bitvec.ty) =
    add_bool b t.signed;
    add_int b t.width

  let add_bitvec b (v : Bitvec.t) =
    add_bitvec_ty b (Bitvec.typ v);
    add_string b (Bitvec.Bn.to_string (Bitvec.to_bn v))

  (* ---- typed AST (locations excluded by construction) ---- *)

  let unop_name = function Coredsl.Ast.Neg -> "neg" | Not -> "not" | Lnot -> "lnot"

  let rec add_texpr b (e : Coredsl.Tast.texpr) =
    add_bitvec_ty b e.tty;
    match e.te with
    | T_lit v ->
        add_tag b "lit";
        add_bitvec b v
    | T_local n ->
        add_tag b "local";
        add_string b n
    | T_field n ->
        add_tag b "fld";
        add_string b n
    | T_reg n ->
        add_tag b "reg";
        add_string b n
    | T_regfile (n, i) ->
        add_tag b "regf";
        add_string b n;
        add_texpr b i
    | T_rom (n, i) ->
        add_tag b "rom";
        add_string b n;
        add_texpr b i
    | T_mem { space; addr; elems } ->
        add_tag b "mem";
        add_string b space;
        add_texpr b addr;
        add_int b elems
    | T_binop (op, l, r) ->
        add_tag b "bin";
        add_string b (Coredsl.Tast.binop_name op);
        add_texpr b l;
        add_texpr b r
    | T_unop (op, x) ->
        add_tag b "un";
        add_string b (unop_name op);
        add_texpr b x
    | T_cast x ->
        add_tag b "cast";
        add_texpr b x
    | T_concat (l, r) ->
        add_tag b "cat";
        add_texpr b l;
        add_texpr b r
    | T_extract { value; lo; width } ->
        add_tag b "ext";
        add_texpr b value;
        add_texpr b lo;
        add_int b width
    | T_ternary (c, t, f) ->
        add_tag b "tern";
        add_texpr b c;
        add_texpr b t;
        add_texpr b f
    | T_call (n, args) ->
        add_tag b "call";
        add_string b n;
        add_list add_texpr b args

  let rec add_tstmt b (s : Coredsl.Tast.tstmt) =
    match s.ts with
    | S_local_decl (n, ty, init) ->
        add_tag b "decl";
        add_string b n;
        add_bitvec_ty b ty;
        add_opt add_texpr b init
    | S_assign_local (n, e) ->
        add_tag b "asgl";
        add_string b n;
        add_texpr b e
    | S_assign_reg (n, e) ->
        add_tag b "asgr";
        add_string b n;
        add_texpr b e
    | S_assign_regfile (n, i, e) ->
        add_tag b "asgf";
        add_string b n;
        add_texpr b i;
        add_texpr b e
    | S_assign_mem { space; addr; value; elems } ->
        add_tag b "asgm";
        add_string b space;
        add_texpr b addr;
        add_texpr b value;
        add_int b elems
    | S_if (c, t, e) ->
        add_tag b "if";
        add_texpr b c;
        add_list add_tstmt b t;
        add_list add_tstmt b e
    | S_for { init; cond; step; body } ->
        add_tag b "for";
        add_list add_tstmt b init;
        add_texpr b cond;
        add_list add_tstmt b step;
        add_list add_tstmt b body
    | S_spawn body ->
        add_tag b "spawn";
        add_list add_tstmt b body
    | S_return e ->
        add_tag b "ret";
        add_opt add_texpr b e
    | S_expr e ->
        add_tag b "expr";
        add_texpr b e

  let add_field b (f : Coredsl.Tast.field_info) =
    add_string b f.fld_name;
    add_int b f.fld_width;
    add_list
      (fun b (s : Coredsl.Tast.field_segment) ->
        add_int b s.instr_lo;
        add_int b s.fld_lo;
        add_int b s.seg_len)
      b f.segments

  let add_tinstr b (ti : Coredsl.Tast.tinstr) =
    add_tag b "instr";
    add_string b ti.ti_name;
    add_int b ti.enc_width;
    add_bitvec b ti.mask;
    add_bitvec b ti.match_bits;
    add_list add_field b ti.fields;
    add_list add_tstmt b ti.ti_behavior

  let add_talways b (ta : Coredsl.Tast.talways) =
    add_tag b "always";
    add_string b ta.ta_name;
    add_list add_tstmt b ta.ta_body

  let add_tfunc b (tf : Coredsl.Tast.tfunc) =
    add_tag b "func";
    add_string b tf.tf_name;
    add_opt add_bitvec_ty b tf.tf_ret;
    add_list
      (fun b (n, ty) ->
        add_string b n;
        add_bitvec_ty b ty)
      b tf.tf_params;
    add_list add_tstmt b tf.tf_body

  let add_elab b (e : Coredsl.Elaborate.elaborated) =
    add_tag b "elab";
    add_string b e.ename;
    add_list
      (fun b (n, v) ->
        add_string b n;
        add_bitvec b v)
      b e.params;
    add_list
      (fun b (r : Coredsl.Elaborate.reg) ->
        add_string b r.rname;
        add_bitvec_ty b r.rty;
        add_int b r.elems;
        add_bool b r.is_pc;
        add_bool b r.rconst;
        add_opt (fun b a -> add_list add_bitvec b (Array.to_list a)) b r.rinit)
      b e.regs;
    add_list
      (fun b (s : Coredsl.Elaborate.addr_space) ->
        add_string b s.sname;
        add_bitvec_ty b s.elem_ty;
        add_string b (Bitvec.Bn.to_string s.space_size);
        add_bool b s.is_main_mem)
      b e.spaces

  let tunit (tu : Coredsl.Tast.tunit) =
    digest (fun b ->
        add_tag b "tunit";
        add_string b tu.tu_name;
        add_elab b tu.elab;
        add_list add_tinstr b tu.tinstrs;
        add_list add_talways b tu.talways;
        add_list add_tfunc b tu.tfuncs)

  (* ---- MIR graphs ----

     SSA value ids are renumbered densely in order of first occurrence
     (defs precede uses in a verified graph), so two alpha-equivalent
     graphs serialize identically. Hints, op ids and source spans are
     cosmetic/diagnostic and excluded. *)

  let graph (g : Ir.Mir.graph) =
    digest (fun b ->
        let map = Hashtbl.create 64 in
        let norm vid =
          match Hashtbl.find_opt map vid with
          | Some i -> i
          | None ->
              let i = Hashtbl.length map in
              Hashtbl.add map vid i;
              i
        in
        let add_value b (v : Ir.Mir.value) =
          add_int b (norm v.vid);
          add_bitvec_ty b v.vty
        in
        let add_attr b = function
          | Ir.Mir.A_int i ->
              add_tag b "ai";
              add_int b i
          | Ir.Mir.A_str s ->
              add_tag b "as";
              add_string b s
          | Ir.Mir.A_bv v ->
              add_tag b "ab";
              add_bitvec b v
          | Ir.Mir.A_bool v ->
              add_tag b "af";
              add_bool b v
        in
        let add_named_attr b (k, a) =
          add_string b k;
          add_attr b a
        in
        let rec add_op b (o : Ir.Mir.op) =
          add_tag b "op";
          add_string b o.opname;
          add_list add_value b o.operands;
          add_list add_value b o.results;
          add_list add_named_attr b o.attrs;
          add_list (add_list add_op) b o.regions
        in
        add_tag b "graph";
        add_string b g.gname;
        add_tag b
          (match g.gkind with
          | `Always -> "always"
          | `Function -> "function"
          | `Instruction -> "instruction");
        add_list add_named_attr b g.gattrs;
        add_list add_op b g.body)

  (* ---- virtual datasheets ---- *)

  let datasheet (c : Scaiev.Datasheet.t) =
    digest (fun b ->
        add_tag b "datasheet";
        add_string b c.core_name;
        add_int b c.pipeline_stages;
        add_bool b c.is_fsm;
        add_int b c.operand_stage;
        add_int b c.memory_stage;
        add_int b c.writeback_stage;
        add_bool b c.forwarding_from_writeback;
        add_list
          (fun b (n, (w : Scaiev.Datasheet.window)) ->
            add_string b n;
            add_int b w.earliest;
            add_opt add_int b w.native_latest;
            add_int b w.latency)
          b c.ifaces;
        add_float b c.base_area_um2;
        add_float b c.base_freq_mhz)
end

(* The persistent on-disk sibling of [Store]; implementation in disk.ml. *)
module Disk = Disk

module Store = struct
  type stats = { hits : int; misses : int; stores : int; evictions : int }

  type 'v entry = { value : 'v; mutable last_use : int }

  (* Thread-safety: every field is guarded by [lock]. Lookups from
     several domains are {e single-flight}: the first domain to miss a
     key claims it in [pending] and computes with the lock released;
     concurrent lookups of the same key park on [resolved] and are
     served the stored value when the computation lands (counted as
     hits — exactly one store per key). [compute] itself always runs
     outside the lock, so independent keys never serialize on each
     other. *)
  type 'v t = {
    st_name : string;
    capacity : int;
    lock : Mutex.t;
    resolved : Condition.t;
    tbl : (string, 'v entry) Hashtbl.t;
    pending : (string, unit) Hashtbl.t;
    mutable clock : int;
    mutable hits : int;
    mutable misses : int;
    mutable stores : int;
    mutable evictions : int;
  }

  let create ?(capacity = 512) ~name () =
    {
      st_name = name;
      capacity = max 0 capacity;
      lock = Mutex.create ();
      resolved = Condition.create ();
      tbl = Hashtbl.create (min 64 (max 8 capacity));
      pending = Hashtbl.create 8;
      clock = 0;
      hits = 0;
      misses = 0;
      stores = 0;
      evictions = 0;
    }

  let name t = t.st_name
  let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)

  let stats t =
    Mutex.protect t.lock (fun () ->
        { hits = t.hits; misses = t.misses; stores = t.stores; evictions = t.evictions })

  let mem t key = Mutex.protect t.lock (fun () -> Hashtbl.mem t.tbl key)

  let evict_lru t =
    let worst =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, lu) when lu <= e.last_use -> acc
          | _ -> Some (k, e.last_use))
        t.tbl None
    in
    match worst with
    | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        t.evictions <- t.evictions + 1
    | None -> ()

  let find_or_add t ?obs key compute =
    (* all three counters are always materialized so the profiling
       metric-name schema is identical on cold and warm paths *)
    Obs.incr_opt obs "cache.hit" ~by:0 ();
    Obs.incr_opt obs "cache.miss" ~by:0 ();
    Obs.incr_opt obs "cache.store" ~by:0 ();
    Mutex.lock t.lock;
    let rec claim () =
      t.clock <- t.clock + 1;
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          e.last_use <- t.clock;
          t.hits <- t.hits + 1;
          `Hit e.value
      | None ->
          if Hashtbl.mem t.pending key then begin
            (* another domain is computing this key: wait for it rather
               than duplicating the work, then re-check (the computation
               may have failed, or the entry may not have been retained
               by a capacity-0 store — in both cases we claim it) *)
            Condition.wait t.resolved t.lock;
            claim ()
          end
          else begin
            Hashtbl.add t.pending key ();
            t.misses <- t.misses + 1;
            `Compute
          end
    in
    let outcome = claim () in
    Mutex.unlock t.lock;
    match outcome with
    | `Hit v ->
        Obs.incr_opt obs "cache.hit" ();
        v
    | `Compute -> (
        Obs.incr_opt obs "cache.miss" ();
        match compute () with
        | v ->
            Mutex.lock t.lock;
            Hashtbl.remove t.pending key;
            if t.capacity > 0 then begin
              while Hashtbl.length t.tbl >= t.capacity do
                evict_lru t
              done;
              Hashtbl.replace t.tbl key { value = v; last_use = t.clock };
              t.stores <- t.stores + 1
            end;
            Condition.broadcast t.resolved;
            let stored = t.capacity > 0 in
            Mutex.unlock t.lock;
            if stored then Obs.incr_opt obs "cache.store" ();
            v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.lock;
            Hashtbl.remove t.pending key;
            Condition.broadcast t.resolved;
            Mutex.unlock t.lock;
            Printexc.raise_with_backtrace e bt)

  let record_stats t (obs : Obs.scope) =
    let s = stats t in
    Obs.metric_int obs (t.st_name ^ ".hits") s.hits;
    Obs.metric_int obs (t.st_name ^ ".misses") s.misses;
    Obs.metric_int obs (t.st_name ^ ".stores") s.stores;
    Obs.metric_int obs (t.st_name ^ ".evictions") s.evictions
end
