(* Content-addressed on-disk artifact store (docs/CACHING.md).

   The persistent sibling of [Store]: a byte store keyed by the same
   content-addressed strings the compilation sessions use, surviving
   process restarts so a second process (or the [longnail serve] daemon
   after a restart) is served warm.

   Layout: one file per artifact under a versioned root,

     DIR/v<format_version>/<md5(key)>.art

   so a store-format change bumps [format_version] and old entries are
   simply never looked at again (the old vN directory is inert, not
   misread). Each entry file is fully self-describing:

     longnail-artifact <format_version>\n
     key <byte-length>\n
     <key bytes>\n
     payload <byte-length> md5 <hex digest of payload>\n
     <payload bytes>

   Writes go to a temp file in the same directory and are published with
   an atomic [Sys.rename]: a reader (same process, another domain, or
   another process) sees either the complete old entry, the complete new
   entry, or nothing — never a torn write. Readers validate everything
   (magic, version, lengths, stored key, payload checksum); any mismatch
   — truncation, corruption, a foreign file, an md5 filename collision —
   is treated as a miss, the offending file is evicted, and the caller
   recomputes. Corruption is never fatal.

   Eviction is LRU by file mtime against a byte budget: hits bump the
   entry's mtime, stores evict oldest-first until the store fits. All
   in-process state is guarded by one mutex, so a store can be shared
   across the worker domains of docs/PARALLELISM.md; cross-process
   mutual exclusion is not needed because publication is atomic and the
   last writer of a key wins with an identical artifact (keys are
   content-addressed). *)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  corrupt : int;  (* entries rejected (and evicted) as invalid *)
  bytes : int;  (* payload+header bytes currently on disk *)
}

let format_version = 1
let magic = "longnail-artifact"
let default_budget_bytes = 256 * 1024 * 1024

type t = {
  root : string;  (* the versioned root: DIR/v<format_version> *)
  budget_bytes : int;
  lock : Mutex.t;
  (* entry-file basename -> size in bytes, mirrors the directory; kept
     in sync under [lock] so eviction never has to re-scan *)
  sizes : (string, int) Hashtbl.t;
  mutable total_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable corrupt : int;
}

let entry_suffix = ".art"

let is_entry name =
  let n = String.length name and m = String.length entry_suffix in
  n > m && String.sub name (n - m) m = entry_suffix

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_store ?(budget_bytes = default_budget_bytes) dir =
  let root = Filename.concat dir (Printf.sprintf "v%d" format_version) in
  mkdir_p root;
  let sizes = Hashtbl.create 64 in
  let total = ref 0 in
  Array.iter
    (fun name ->
      if is_entry name then begin
        match Unix.stat (Filename.concat root name) with
        | { Unix.st_kind = Unix.S_REG; st_size; _ } ->
            Hashtbl.replace sizes name st_size;
            total := !total + st_size
        | _ | (exception Unix.Unix_error _) -> ()
      end)
    (Sys.readdir root);
  {
    root;
    budget_bytes = max 0 budget_bytes;
    lock = Mutex.create ();
    sizes;
    total_bytes = !total;
    hits = 0;
    misses = 0;
    stores = 0;
    evictions = 0;
    corrupt = 0;
  }

let dir t = t.root

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        stores = t.stores;
        evictions = t.evictions;
        corrupt = t.corrupt;
        bytes = t.total_bytes;
      })

let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.sizes)

let basename_of_key key = Digest.to_hex (Digest.string key) ^ entry_suffix
let path_of_basename t base = Filename.concat t.root base

(* drop an entry from disk and the size mirror; caller holds [lock] *)
let drop_locked t base =
  (try Sys.remove (path_of_basename t base) with Sys_error _ -> ());
  match Hashtbl.find_opt t.sizes base with
  | Some sz ->
      Hashtbl.remove t.sizes base;
      t.total_bytes <- t.total_bytes - sz
  | None -> ()

(* ---- entry encoding ---- *)

let encode_entry key payload =
  let b = Buffer.create (String.length payload + String.length key + 128) in
  Buffer.add_string b (Printf.sprintf "%s %d\n" magic format_version);
  Buffer.add_string b (Printf.sprintf "key %d\n" (String.length key));
  Buffer.add_string b key;
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "payload %d md5 %s\n" (String.length payload)
       (Digest.to_hex (Digest.string payload)));
  Buffer.add_string b payload;
  Buffer.contents b

exception Invalid_entry

(* Decode and validate one entry file against [key]. Raises
   [Invalid_entry] on any structural problem; returns [None] when the
   file is a valid entry for a *different* key (md5 filename collision —
   not corruption, just a miss). *)
let decode_entry ~key contents =
  let pos = ref 0 in
  let line () =
    match String.index_from_opt contents !pos '\n' with
    | None -> raise Invalid_entry
    | Some i ->
        let l = String.sub contents !pos (i - !pos) in
        pos := i + 1;
        l
  in
  let take n =
    if n < 0 || !pos + n > String.length contents then raise Invalid_entry;
    let s = String.sub contents !pos n in
    pos := !pos + n;
    s
  in
  (match String.split_on_char ' ' (line ()) with
  | [ m; v ] when m = magic && int_of_string_opt v = Some format_version -> ()
  | _ -> raise Invalid_entry);
  let key_len =
    match String.split_on_char ' ' (line ()) with
    | [ "key"; n ] -> (
        match int_of_string_opt n with Some n when n >= 0 -> n | _ -> raise Invalid_entry)
    | _ -> raise Invalid_entry
  in
  let stored_key = take key_len in
  if take 1 <> "\n" then raise Invalid_entry;
  let payload_len, digest =
    match String.split_on_char ' ' (line ()) with
    | [ "payload"; n; "md5"; d ] -> (
        match int_of_string_opt n with
        | Some n when n >= 0 && String.length d = 32 -> (n, d)
        | _ -> raise Invalid_entry)
    | _ -> raise Invalid_entry
  in
  let payload = take payload_len in
  if !pos <> String.length contents then raise Invalid_entry;
  if Digest.to_hex (Digest.string payload) <> digest then raise Invalid_entry;
  if stored_key <> key then None else Some payload

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- lookups ---- *)

let touch path =
  (* bump mtime so LRU eviction sees the access; best-effort *)
  try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

let find t ?obs key =
  Obs.incr_opt obs "disk.hit" ~by:0 ();
  Obs.incr_opt obs "disk.miss" ~by:0 ();
  Obs.incr_opt obs "disk.store" ~by:0 ();
  let base = basename_of_key key in
  let path = path_of_basename t base in
  let outcome =
    Mutex.protect t.lock (fun () ->
        if not (Sys.file_exists path) then begin
          t.misses <- t.misses + 1;
          `Miss
        end
        else
          match decode_entry ~key (read_file path) with
          | Some payload ->
              t.hits <- t.hits + 1;
              touch path;
              `Hit payload
          | None ->
              (* valid entry for another key (md5 collision): plain miss *)
              t.misses <- t.misses + 1;
              `Miss
          | exception (Invalid_entry | Sys_error _ | End_of_file) ->
              (* truncated / corrupted / foreign: evict, recompute *)
              t.corrupt <- t.corrupt + 1;
              t.evictions <- t.evictions + 1;
              t.misses <- t.misses + 1;
              drop_locked t base;
              `Miss)
  in
  match outcome with
  | `Hit payload ->
      Obs.incr_opt obs "disk.hit" ();
      Some payload
  | `Miss ->
      Obs.incr_opt obs "disk.miss" ();
      None

(* evict least-recently-used entries until the store fits the budget;
   caller holds [lock]. [keep] is never evicted (the entry just stored
   must survive its own store, even when it alone exceeds the budget). *)
let evict_to_budget_locked t ~keep =
  if t.total_bytes > t.budget_bytes then begin
    let by_age =
      Hashtbl.fold
        (fun base _ acc ->
          if base = keep then acc
          else
            match Unix.stat (path_of_basename t base) with
            | st -> (st.Unix.st_mtime, base) :: acc
            | exception Unix.Unix_error _ ->
                (* vanished underneath us (another process evicted it):
                   just forget it *)
                (neg_infinity, base) :: acc)
        t.sizes []
      |> List.sort compare
    in
    List.iter
      (fun (_, base) ->
        if t.total_bytes > t.budget_bytes then begin
          drop_locked t base;
          t.evictions <- t.evictions + 1
        end)
      by_age
  end

(* Temp names must be unique across every store instance of this
   process, not just within one [t]: two instances over the same root
   (one per worker domain, as the parallel driver does) would otherwise
   collide on [.tmp-<pid>-<n>] and one writer's [Sys.rename] would find
   its temp file already renamed away. The pid keeps processes apart,
   the atomic keeps instances and domains apart. *)
let tmp_seq = Atomic.make 0

let store t ?obs key payload =
  let base = basename_of_key key in
  let path = path_of_basename t base in
  let entry = encode_entry key payload in
  Mutex.protect t.lock (fun () ->
      let tmp =
        Filename.concat t.root
          (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ())
             (Atomic.fetch_and_add tmp_seq 1))
      in
      let oc = open_out_bin tmp in
      (try
         output_string oc entry;
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      (* atomic publication: readers see the old entry or the new one *)
      Sys.rename tmp path;
      (match Hashtbl.find_opt t.sizes base with
      | Some old -> t.total_bytes <- t.total_bytes - old
      | None -> ());
      Hashtbl.replace t.sizes base (String.length entry);
      t.total_bytes <- t.total_bytes + String.length entry;
      t.stores <- t.stores + 1;
      evict_to_budget_locked t ~keep:base);
  Obs.incr_opt obs "disk.store" ()

let find_or_add t ?obs key compute =
  match find t ?obs key with
  | Some payload -> payload
  | None ->
      let payload = compute () in
      store t ?obs key payload;
      payload

let remove t key =
  Mutex.protect t.lock (fun () -> drop_locked t (basename_of_key key))

let record_stats t ~name (obs : Obs.scope) =
  let s = stats t in
  Obs.metric_int obs (name ^ ".hits") s.hits;
  Obs.metric_int obs (name ^ ".misses") s.misses;
  Obs.metric_int obs (name ^ ".stores") s.stores;
  Obs.metric_int obs (name ^ ".evictions") s.evictions;
  Obs.metric_int obs (name ^ ".corrupt") s.corrupt;
  Obs.metric_int obs (name ^ ".bytes") s.bytes
