(* A fixed-size Domain-based task pool with a mutex/condition work
   queue. One-shot: [run] spawns its workers, drains the queue, joins
   them, and re-raises the lowest-index task failure, so results (and
   errors) are independent of worker scheduling.

   The queue is deliberately simple: every task is enqueued before the
   first worker starts, workers pull under the pool mutex and park on
   the condition only in the (brief) window where the queue is empty
   but the batch is not yet closed. Results are written into a
   per-index slot array; Domain.join publishes them to the caller, so
   no other synchronization is needed on the result side. *)

exception Nested_parallelism

let available_workers () = Domain.recommended_domain_count ()

(* Nested-join rejection: a fixed pool that blocks on its own join from
   inside a worker can deadlock, so parallel regions must not nest.
   The flag lives in domain-local storage — fresh worker domains start
   inside a region; the calling domain never does. *)
let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_worker_key

type 'a outcome =
  | Absent
  | Value of 'a
  | Raised of exn * Printexc.raw_backtrace

type queue = {
  m : Mutex.t;
  nonempty : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable closed : bool;
}

let pop q =
  Mutex.lock q.m;
  let rec take () =
    match Queue.take_opt q.tasks with
    | Some t -> Some t
    | None ->
        if q.closed then None
        else begin
          Condition.wait q.nonempty q.m;
          take ()
        end
  in
  let t = take () in
  Mutex.unlock q.m;
  t

let run ~jobs tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.to_list (Array.map (fun f -> f ()) tasks)
  else begin
    if in_worker () then raise Nested_parallelism;
    let results = Array.make n Absent in
    let q =
      { m = Mutex.create (); nonempty = Condition.create (); tasks = Queue.create (); closed = false }
    in
    Mutex.lock q.m;
    Array.iteri
      (fun i f ->
        Queue.add
          (fun () ->
            results.(i) <-
              (match f () with
              | v -> Value v
              | exception e -> Raised (e, Printexc.get_raw_backtrace ())))
          q.tasks)
      tasks;
    q.closed <- true;
    Condition.broadcast q.nonempty;
    Mutex.unlock q.m;
    let worker () =
      Domain.DLS.set in_worker_key true;
      let rec loop () =
        match pop q with
        | Some t ->
            t ();
            loop ()
        | None -> ()
      in
      loop ()
    in
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    (* join: surface the lowest-index failure, like a sequential run *)
    Array.iter
      (function Raised (e, bt) -> Printexc.raise_with_backtrace e bt | _ -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Value v -> v
           | Absent | Raised _ -> invalid_arg "Par.run: worker left a result slot empty")
         results)
  end

let map ~jobs f xs = run ~jobs (List.map (fun x () -> f x) xs)
