(** A small dependency-free Domain-based task pool (docs/PARALLELISM.md).

    [run ~jobs tasks] executes the thunks on a fixed set of worker
    domains fed from a mutex/condition work queue and returns the
    results {e in task order} — the caller cannot observe scheduling:
    output ordering, and which exception surfaces, are deterministic.

    Exceptions raised by tasks are captured per task (with their
    backtraces) and re-raised at the join point; when several tasks
    fail, the {e lowest-index} failure is re-raised, so error reporting
    matches what a sequential left-to-right run would have surfaced
    first.

    Nested parallel regions are rejected: calling {!run} with
    [jobs > 1] from inside a worker raises {!Nested_parallelism}
    (blocking a fixed-size pool on its own join is a deadlock by
    construction). [jobs <= 1] always executes inline on the calling
    domain — including inside a worker — so sequential fallbacks
    compose freely. *)

exception Nested_parallelism
(** Raised when a parallel [run ~jobs:(>1)] is started from inside a
    worker domain of another parallel region. *)

val available_workers : unit -> int
(** The host's recommended domain count — the natural upper bound for
    [jobs] ([Domain.recommended_domain_count]). *)

val in_worker : unit -> bool
(** [true] while executing inside a pool worker (used by callers that
    must choose a sequential fallback rather than trip
    {!Nested_parallelism}). *)

val run : jobs:int -> (unit -> 'a) list -> 'a list
(** [run ~jobs tasks] runs every thunk and returns the results in task
    order. [jobs] is clamped to [1 .. length tasks]; with an effective
    worker count of 1 (or an empty / singleton task list) everything
    runs inline on the calling domain and no domain is spawned. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs = run ~jobs (List.map (fun x () -> f x) xs)]. *)
