(** Structured compiler diagnostics with source provenance.

    Every user-facing error in the Longnail flow is a {!t}: a severity, a
    stable registered code (["E0xxx"]), a human message, an optional primary
    source span, labeled secondary spans, and free-form notes.  Diagnostics
    render either as caret-snippet text (rustc-style) or as JSON for
    machine consumption; see docs/DIAGNOSTICS.md. *)

type severity = Error | Warning | Note

val severity_to_string : severity -> string

(** A half-open source region. Lines and columns are 1-based; a point span
    has [sp_end_line = sp_line] and [sp_end_col = sp_col]. *)
type span = {
  sp_file : string;
  sp_line : int;
  sp_col : int;
  sp_end_line : int;
  sp_end_col : int;
}

val no_span : span
(** Placeholder span ([file = "<unknown>"], [line = 0]) for diagnostics that
    have no source attribution. *)

val point : file:string -> line:int -> col:int -> span
(** Point span at [file:line:col]. *)

val span_is_valid : span -> bool
(** A span is valid when it names a file and has [sp_line >= 1] and
    [sp_col >= 1]. *)

val pp_span : Format.formatter -> span -> unit
(** Renders as ["file:line:col"]. *)

type label = { lb_span : span; lb_text : string }

type t = {
  severity : severity;
  code : string;
  message : string;
  span : span option;
  labels : label list;
  notes : string list;
}

val make :
  ?severity:severity ->
  ?span:span ->
  ?labels:label list ->
  ?notes:string list ->
  code:string ->
  string ->
  t

val errorf :
  ?span:span ->
  ?labels:label list ->
  ?notes:string list ->
  code:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [errorf ~code fmt ...] builds an error diagnostic with a formatted
    message. *)

exception Fatal of t list
(** Raised by pipeline stages that cannot continue.  The payload is ordered:
    first element is the primary failure. *)

val fatal : t -> 'a
(** [fatal d] raises {!Fatal} [[d]]. *)

val fatalf :
  ?span:span ->
  ?labels:label list ->
  ?notes:string list ->
  code:string ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Formatted variant of {!fatal}. *)

(** {1 Collector} *)

(** Accumulates diagnostics across independent units of work (e.g. one per
    instruction) so a single run can report every error. *)
type collector

val collector : unit -> collector
val add : collector -> t -> unit
val has_errors : collector -> bool
val to_list : collector -> t list
(** In insertion order. *)

(** {1 Error-code registry} *)

val all_codes : (string * string) list
(** Every registered [(code, description)] pair, sorted by code.  The CLI's
    [diag --list-codes] prints this and CI diffs it against
    docs/ERROR_CODES.txt. *)

val describe : string -> string option
val is_registered : string -> bool

val explain_notes : string -> string list
(** Longer-form guidance printed by [diag --explain CODE] under the
    registry description; [[]] for codes with no extra notes. *)

(** {1 Source registry}

    Caret snippets need the text of the file a span points into.  Compile
    entry points register each source buffer here under the file name used
    in its locations. *)

val register_source : file:string -> string -> unit
val lookup_source : file:string -> string option
val source_line : file:string -> line:int -> string option
val clear_sources : unit -> unit

(** {1 Rendering} *)

val render_text : Format.formatter -> t -> unit
(** Header line plus caret snippet (when the span's source is registered),
    labeled secondary snippets, and notes. *)

val render_all : Format.formatter -> t list -> unit

val to_string : t -> string
(** [render_text] into a string. *)

val to_json : t list -> string
(** [{"diagnostics":[...]}] with stable field names; see
    docs/DIAGNOSTICS.md for the schema. *)
