type severity = Error | Warning | Note

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

type span = {
  sp_file : string;
  sp_line : int;
  sp_col : int;
  sp_end_line : int;
  sp_end_col : int;
}

let no_span =
  { sp_file = "<unknown>"; sp_line = 0; sp_col = 0; sp_end_line = 0; sp_end_col = 0 }

let point ~file ~line ~col =
  { sp_file = file; sp_line = line; sp_col = col; sp_end_line = line; sp_end_col = col }

let span_is_valid s = s.sp_file <> "" && s.sp_file <> "<unknown>" && s.sp_line >= 1 && s.sp_col >= 1

let pp_span ppf s = Format.fprintf ppf "%s:%d:%d" s.sp_file s.sp_line s.sp_col

type label = { lb_span : span; lb_text : string }

type t = {
  severity : severity;
  code : string;
  message : string;
  span : span option;
  labels : label list;
  notes : string list;
}

let make ?(severity = Error) ?span ?(labels = []) ?(notes = []) ~code message =
  { severity; code; message; span; labels; notes }

let errorf ?span ?labels ?notes ~code fmt =
  Format.kasprintf (fun message -> make ?span ?labels ?notes ~code message) fmt

exception Fatal of t list

let () =
  Printexc.register_printer (function
    | Fatal ds ->
        Some
          (Printf.sprintf "Diag.Fatal [%s]"
             (String.concat "; "
                (List.map (fun d -> Printf.sprintf "%s: %s" d.code d.message) ds)))
    | _ -> None)

let fatal d = raise (Fatal [ d ])

let fatalf ?span ?labels ?notes ~code fmt =
  Format.kasprintf (fun message -> fatal (make ?span ?labels ?notes ~code message)) fmt

(* ---- collector ---- *)

type collector = { mutable rev : t list }

let collector () = { rev = [] }
let add c d = c.rev <- d :: c.rev
let has_errors c = List.exists (fun d -> d.severity = Error) c.rev
let to_list c = List.rev c.rev

(* ---- error-code registry ---- *)

let all_codes =
  [
    ("E0002", "syntax error");
    ("E0101", "unknown identifier");
    ("E0102", "type mismatch or lossy implicit conversion");
    ("E0103", "invalid assignment target");
    ("E0104", "invalid range bounds");
    ("E0105", "function call error");
    ("E0106", "statement not allowed in this context");
    ("E0107", "instruction encoding error");
    ("E0108", "redeclaration");
    ("E0109", "type error");
    ("E0200", "elaboration error");
    ("E0201", "unresolved import");
    ("E0202", "unknown instruction set or target");
    ("E0203", "cyclic inheritance");
    ("E0204", "constant evaluation error");
    ("E0205", "invalid architectural state declaration");
    ("E0301", "HLIR lowering error");
    ("E0302", "LIL legalization error");
    ("E0303", "sub-interface used more than once");
    ("E0401", "scheduling infeasible");
    ("E0402", "core lacks required interface");
    ("E0501", "hardware generation error");
    ("E0502", "SCAIE-V integration error");
    ("E0510", "malformed IR operation");
    ("E0511", "SSA structure violation");
    ("E0512", "pass produced invalid IR");
    ("E0520", "netlist: multiple drivers");
    ("E0521", "netlist: combinational cycle");
    ("E0522", "netlist: undefined signal");
    ("E0530", "translation validation failed: optimized IR is not equivalent");
    ("E0601", "assembly error");
    ("E0901", "internal error");
    ("E0902", "conflicting compile options");
    ("E0903", "lowering invariant violation");
    ("E0904", "solver iteration budget exhausted");
    ("E0910", "malformed serve request");
    ("E0911", "serve transport error");
    ("E0912", "unknown core in serve request");
    ("E0913", "unknown simulation engine or emission backend");
    ("W1001", "dead assignment: computed value is never used");
    ("W1002", "unused encoding field");
    ("W1003", "unused architectural register");
    ("W1004", "branch condition is provably constant");
    ("W1005", "shift amount provably >= operand width");
    ("W1006", "local read before any assignment");
    ("W1007", "instruction writes no architectural state");
    ("W1008", "architectural write provably truncates its value");
    ("W1009", "comparison is provably constant");
    ("W1010", "result bits can never toggle");
  ]

let describe code = List.assoc_opt code all_codes
let is_registered code = List.mem_assoc code all_codes

(* Longer-form guidance for [diag --explain CODE]; codes without an entry
   get only the registry description. *)
let explain_notes = function
  | "E0512" ->
      [
        "raised by the --verify-each sanitizer when an optimization pass leaves the IR \
         structurally invalid";
        "the message names the offending pass";
      ]
  | "E0530" ->
      [
        "raised by the translation validator guarding the --narrow=on rewrites: the \
         optimized graph disagreed with the original on a concrete input vector";
        "the message names the pass and the counterexample assignment";
        "see docs/NARROWING.md for the validation protocol";
      ]
  | "E0902" -> [ "the compile request mixed options that cannot be combined" ]
  | "W1004" -> [ "the interval analysis proved the condition constant on every path" ]
  | "W1008" ->
      [
        "the value written to architectural state passes through a narrowing cast, and \
         its proven interval never fits the destination width";
      ]
  | "W1009" ->
      [
        "the bit-level known-bits analysis decided the comparison where the intervals \
         alone could not (see docs/NARROWING.md)";
      ]
  | "W1010" ->
      [
        "some bits of an arithmetic result are proven constant beyond what the value's \
         range explains — the datapath is wider than the computation";
        "--narrow=on removes such bits mechanically";
      ]
  | _ -> []

(* ---- source registry ---- *)

let sources : (string, string) Hashtbl.t = Hashtbl.create 7

let register_source ~file src = Hashtbl.replace sources file src
let lookup_source ~file = Hashtbl.find_opt sources file
let clear_sources () = Hashtbl.reset sources

let source_line ~file ~line =
  match lookup_source ~file with
  | None -> None
  | Some src ->
      if line < 1 then None
      else
        let n = String.length src in
        let rec seek pos ln =
          if ln = line then
            let e = match String.index_from_opt src pos '\n' with Some e -> e | None -> n in
            Some (String.sub src pos (e - pos))
          else
            match String.index_from_opt src pos '\n' with
            | Some e when e + 1 <= n -> seek (e + 1) (ln + 1)
            | _ -> None
        in
        if n = 0 then None else seek 0 1

(* ---- text rendering ---- *)

let snippet ppf span ~text =
  match source_line ~file:span.sp_file ~line:span.sp_line with
  | None -> ()
  | Some line_text ->
      let gutter = string_of_int span.sp_line in
      let pad = String.make (String.length gutter) ' ' in
      Format.fprintf ppf "@,  %s | %s" gutter line_text;
      let col = max 1 span.sp_col in
      (* column is 1-based; expand to the span width when it ends on the
         same line *)
      let width =
        if span.sp_end_line = span.sp_line && span.sp_end_col > span.sp_col then
          span.sp_end_col - span.sp_col
        else 1
      in
      let carets = String.make (max 1 width) '^' in
      let indent = String.make (col - 1) ' ' in
      if text = "" then Format.fprintf ppf "@,  %s | %s%s" pad indent carets
      else Format.fprintf ppf "@,  %s | %s%s %s" pad indent carets text

let render_text ppf d =
  Format.pp_open_vbox ppf 0;
  (match d.span with
  | Some s when span_is_valid s -> Format.fprintf ppf "%a: " pp_span s
  | _ -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_to_string d.severity) d.code d.message;
  (match d.span with Some s when span_is_valid s -> snippet ppf s ~text:"" | _ -> ());
  List.iter
    (fun l ->
      if span_is_valid l.lb_span then begin
        Format.fprintf ppf "@,  --> %a: %s" pp_span l.lb_span l.lb_text;
        snippet ppf l.lb_span ~text:""
      end
      else Format.fprintf ppf "@,  --> %s" l.lb_text)
    d.labels;
  List.iter (fun n -> Format.fprintf ppf "@,  note: %s" n) d.notes;
  Format.pp_close_box ppf ()

let render_all ppf ds =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i d ->
      if i > 0 then Format.pp_print_cut ppf ();
      render_text ppf d)
    ds;
  Format.pp_close_box ppf ()

let to_string d = Format.asprintf "%a" render_text d

(* ---- JSON rendering ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_span s =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"end_line":%d,"end_col":%d}|}
    (json_escape s.sp_file) s.sp_line s.sp_col s.sp_end_line s.sp_end_col

let json_of_diag d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf {|{"severity":"%s","code":"%s","message":"%s"|}
       (severity_to_string d.severity) (json_escape d.code) (json_escape d.message));
  (match d.span with
  | Some s when span_is_valid s -> Buffer.add_string buf (",\"span\":" ^ json_of_span s)
  | _ -> Buffer.add_string buf ",\"span\":null");
  Buffer.add_string buf ",\"labels\":[";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"span":%s,"text":"%s"}|} (json_of_span l.lb_span)
           (json_escape l.lb_text)))
    d.labels;
  Buffer.add_string buf "],\"notes\":[";
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf {|"%s"|} (json_escape n)))
    d.notes;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_json ds =
  let buf = Buffer.create 512 in
  Buffer.add_string buf {|{"diagnostics":[|};
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (json_of_diag d))
    ds;
  Buffer.add_string buf "]}";
  Buffer.contents buf
