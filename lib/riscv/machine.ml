(* Cycle-level machine models of the four host cores.

   Architectural state and instruction semantics come from the CoreDSL
   reference interpreter (so the very same typed behaviors drive both the
   HLS flow and the simulation); on top sits a per-core timing model:
   single-issue in-order execution with memory wait states, branch
   redirect penalties, FSM sequencing for PicoRV32, and the ISAX execution
   modes of Section 3.2 (tightly-coupled stalls, decoupled background
   execution with scoreboard stalls, zero-overhead always-block PC
   redirects). This is the substrate for the Section 5.5 case study. *)

module Interp = Coredsl.Interp
module Tast = Coredsl.Tast

exception Machine_error of string

type timing = {
  t_core : string;
  fsm_base : int;  (* base cycles per instruction (1 for pipelined cores) *)
  mem_wait : int;  (* extra cycles for a memory access *)
  branch_penalty : int;  (* extra cycles when the PC is redirected *)
  decoupled_issue_stall : int;  (* Section 3.2: one bubble at issue *)
}

(* The per-core timing parameters live in the core registry (one
   registration site per host core, Scaiev.Core_registry); this model
   only re-labels them with the core's display name. The VexRiscv
   numbers reproduce the Section 5.5 cycle counts (18n+50 baseline,
   11n+50 with ISAXes). *)
let timing_of_descriptor (d : Scaiev.Core_registry.t) =
  {
    t_core = d.name;
    fsm_base = d.timing.Scaiev.Core_registry.fsm_base;
    mem_wait = d.timing.Scaiev.Core_registry.mem_wait;
    branch_penalty = d.timing.Scaiev.Core_registry.branch_penalty;
    decoupled_issue_stall = d.timing.Scaiev.Core_registry.decoupled_issue_stall;
  }

let timing_for (core : Scaiev.Datasheet.t) =
  match Scaiev.Core_registry.of_datasheet core with
  | Some d -> timing_of_descriptor d
  | None -> raise (Machine_error ("no registered timing model for core " ^ core.core_name))

(* The registry-derived presets, kept as named values for the examples
   and the case study. *)
let vexriscv_timing = timing_for Scaiev.Datasheet.vexriscv
let orca_timing = timing_for Scaiev.Datasheet.orca
let piccolo_timing = timing_for Scaiev.Datasheet.piccolo
let picorv32_timing = timing_for Scaiev.Datasheet.picorv32
let mriscv_timing = timing_for Scaiev.Core_registry.mriscv

(* per-ISAX-instruction timing info, derived from a Longnail compile *)
type isax_timing = {
  it_mode : Scaiev.Config.mode;
  it_extra_stall : int;  (* tightly-coupled: cycles the pipeline stalls *)
  it_result_latency : int;  (* decoupled: cycles until the result commits *)
  it_uses_mem : bool;
  it_writes_rd : bool;
}

let isax_timing_of (c : Longnail.Flow.compiled) : (string * isax_timing) list =
  let wb = c.core.writeback_stage in
  List.filter_map
    (fun (f : Longnail.Flow.compiled_functionality) ->
      if f.cf_kind <> `Instruction then None
      else begin
        let bindings = f.cf_hw.Longnail.Hwgen.bindings in
        let uses_mem =
          List.exists (fun b -> b.Longnail.Hwgen.ib_iface = "RdMem" || b.Longnail.Hwgen.ib_iface = "WrMem") bindings
        in
        let writes_rd = List.exists (fun b -> b.Longnail.Hwgen.ib_iface = "WrRD") bindings in
        let max_stage = f.cf_hw.Longnail.Hwgen.max_stage in
        Some
          ( f.cf_name,
            {
              it_mode = f.cf_mode;
              it_extra_stall = max 0 (max_stage - wb);
              it_result_latency = max 1 (max_stage - c.core.operand_stage);
              it_uses_mem = uses_mem;
              it_writes_rd = writes_rd;
            } )
      end)
    c.funcs

type t = {
  tu : Tast.tunit;
  st : Interp.state;
  timing : timing;
  isax : (string * isax_timing) list;
  mutable cycles : int;
  mutable instret : int;
  mutable halted : bool;
  (* decoupled scoreboard: GPR index -> cycle at which the value commits *)
  pending : int array;
}

let create ?(isax = []) ~(timing : timing) (tu : Tast.tunit) =
  {
    tu;
    st = Interp.create tu;
    timing;
    isax;
    cycles = 0;
    instret = 0;
    halted = false;
    pending = Array.make 32 0;
  }

(* build a machine for a core using a Longnail compile for ISAX timing *)
let of_compiled (c : Longnail.Flow.compiled) =
  create ~isax:(isax_timing_of c) ~timing:(timing_for c.core) c.unit_

let read_pc m = Bitvec.to_int (Interp.read_reg m.st "PC")
let write_pc m v = (Interp.reg_array m.st "PC").(0) <- Bitvec.of_int (Bitvec.unsigned_ty 32) v
let read_gpr m i = Bitvec.to_int (Interp.read_regfile m.st "X" i)
let write_gpr m i v = (Interp.reg_array m.st "X").(i) <- Bitvec.of_int (Bitvec.unsigned_ty 32) v

(* load a program (list of 32-bit words) at [base] *)
let load_program m ?(base = 0) words =
  List.iteri
    (fun i w -> Interp.write_mem m.st "MEM" (base + (4 * i)) 4 (Bitvec.of_int (Bitvec.unsigned_ty 32) w))
    words;
  write_pc m base;
  (* loading the program is setup, not execution: clear the trace *)
  m.st.Interp.trace <- []

let store_word m addr v = Interp.write_mem m.st "MEM" addr 4 (Bitvec.of_int (Bitvec.unsigned_ty 32) v)
let load_word m addr = Bitvec.to_int (Interp.read_mem m.st "MEM" addr 4)

let mem_instr_names = [ "LB"; "LH"; "LW"; "LBU"; "LHU"; "SB"; "SH"; "SW" ]

let field_value ti word name =
  match Tast.find_field ti name with
  | Some fi -> Some (Bitvec.to_int (Interp.decode_field word fi))
  | None -> None

(* Execute one instruction; returns false when halted. *)
let step m =
  if m.halted then false
  else begin
    (* always-blocks evaluate continuously; a PC redirect by an
       always-block (e.g. ZOL) replaces the fetch without penalty *)
    let pc0 = read_pc m in
    List.iter (fun ta -> Interp.exec_always m.st ta) m.tu.talways;
    let pc = read_pc m in
    ignore pc0;
    let word = Interp.read_mem m.st "MEM" pc 4 in
    match Interp.decode m.st word with
    | None ->
        m.halted <- true;
        false
    | Some ti ->
        if ti.ti_name = "EBREAK" then begin
          m.halted <- true;
          m.cycles <- m.cycles + 1;
          false
        end
        else begin
          let isax_info = List.assoc_opt ti.ti_name m.isax in
          (* scoreboard: stall until pending writers of our sources commit *)
          let stall_until = ref m.cycles in
          List.iter
            (fun f ->
              match field_value ti word f with
              | Some r when r > 0 -> stall_until := max !stall_until m.pending.(r)
              | _ -> ())
            [ "rs1"; "rs2" ];
          if !stall_until > m.cycles then m.cycles <- !stall_until;
          (* execute architecturally *)
          Interp.exec_instr m.st ti ~instr_word:word;
          let pc_after = read_pc m in
          let redirected = pc_after <> pc in
          if not redirected then write_pc m ((pc + 4) land 0xFFFFFFFF);
          (* timing *)
          let cost = ref m.timing.fsm_base in
          let uses_mem =
            List.mem ti.ti_name mem_instr_names
            || match isax_info with Some i -> i.it_uses_mem | None -> false
          in
          if uses_mem then cost := !cost + m.timing.mem_wait;
          if redirected then cost := !cost + m.timing.branch_penalty;
          (match isax_info with
          | Some { it_mode = Scaiev.Config.Tightly_coupled; it_extra_stall; _ } ->
              cost := !cost + it_extra_stall
          | Some { it_mode = Scaiev.Config.Decoupled; it_result_latency; it_writes_rd; _ } ->
              cost := !cost + m.timing.decoupled_issue_stall;
              if it_writes_rd then begin
                match field_value ti word "rd" with
                | Some rd when rd > 0 ->
                    m.pending.(rd) <- m.cycles + !cost + it_result_latency
                | _ -> ()
              end
          | _ -> ());
          m.cycles <- m.cycles + !cost;
          m.instret <- m.instret + 1;
          true
        end
  end

(* run until halt or the fuel is exhausted; returns consumed cycle count *)
let run ?(fuel = 1_000_000) m =
  let rec go fuel = if fuel <= 0 then raise (Machine_error "out of fuel") else if step m then go (fuel - 1) else () in
  go fuel;
  m.cycles

(* assemble and run a program with the machine's ISAX encoder available *)
let isax_encoder (tu : Tast.tunit) : Asm.custom_encoder =
 fun name fields ->
  match Tast.find_tinstr tu name with
  | None -> raise (Machine_error (Printf.sprintf "unknown ISAX instruction '%s'" name))
  | Some ti ->
      let bvs = List.map (fun (k, v) -> (k, Bitvec.of_int (Bitvec.unsigned_ty 32) v)) fields in
      Bitvec.to_int (Interp.encode ti bvs)
