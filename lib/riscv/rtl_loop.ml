(* RTL-in-the-loop program execution.

   Runs a complete assembler program against an extended core where every
   custom-instruction and always-block *executes through the generated RTL*
   (via the co-simulation harness) while the base RV32I instructions run in
   the reference interpreter. This is the closest analogue of the paper's
   verification methodology — "RTL simulation of the execution of
   handwritten assembler programs" (Section 5.3) — and the integration
   tests compare its final architectural state against a pure-interpreter
   run of the same program. *)

module Interp = Coredsl.Interp
module Tast = Coredsl.Tast

exception Rtl_loop_error of string

type t = {
  compiled : Longnail.Flow.compiled;
  st : Interp.state;  (* architectural state *)
  engine : Rtl.Engine.kind;  (* simulation engine for the RTL modules *)
  mutable instret : int;
  mutable halted : bool;
}

let create ?(engine = Rtl.Engine.Compiled) (compiled : Longnail.Flow.compiled) =
  {
    compiled;
    st = Interp.create compiled.Longnail.Flow.unit_;
    engine;
    instret = 0;
    halted = false;
  }

let tu t = t.compiled.Longnail.Flow.unit_

let read_pc t = Bitvec.to_int (Interp.read_reg t.st "PC")
let write_pc t v = (Interp.reg_array t.st "PC").(0) <- Bitvec.of_int (Bitvec.unsigned_ty 32) v
let read_gpr t i = Bitvec.to_int (Interp.read_regfile t.st "X" i)

let load_program t ?(base = 0) words =
  List.iteri
    (fun i w ->
      Interp.write_mem t.st "MEM" (base + (4 * i)) 4 (Bitvec.of_int (Bitvec.unsigned_ty 32) w))
    words;
  write_pc t base;
  t.st.Interp.trace <- []

(* stimulus reading the current architectural state *)
let stimulus_of t ?instr_word ?rs1 ?rs2 () =
  {
    Longnail.Cosim.instr_word;
    rs1;
    rs2;
    pc = Some (Interp.read_reg t.st "PC");
    custreg =
      (fun reg idx ->
        let a = Interp.reg_array t.st reg in
        if idx >= 0 && idx < Array.length a then a.(idx)
        else raise (Rtl_loop_error (Printf.sprintf "index %d out of range for %s" idx reg)));
    mem_read = (fun addr elems -> Interp.read_mem t.st "MEM" addr elems);
  }

(* apply the RTL's state-update requests to the architectural state *)
let apply_response t ?rd (resp : Longnail.Cosim.response) ~fallthrough_pc =
  List.iter
    (fun (w : Longnail.Cosim.custreg_write) ->
      if w.cw_valid then begin
        let a = Interp.reg_array t.st w.cw_reg in
        let idx = Option.value ~default:0 w.cw_index in
        a.(idx) <- Bitvec.cast (Bitvec.typ a.(0)) w.cw_data
      end)
    resp.custreg_writes;
  (match resp.mem_write with
  | Some (addr, data, true) -> Interp.write_mem t.st "MEM" addr (Bitvec.width data / 8) data
  | _ -> ());
  (match (rd, resp.rd_write) with
  | Some rd, Some (data, true) when rd <> 0 ->
      (Interp.reg_array t.st "X").(rd) <- Bitvec.cast (Bitvec.unsigned_ty 32) data
  | _ -> ());
  match resp.pc_write with
  | Some (data, true) -> write_pc t (Bitvec.to_int data)
  | _ -> (
      match fallthrough_pc with Some pc -> write_pc t pc | None -> ())

(* one evaluation of every always-block through its RTL module *)
let tick_always t =
  List.iter
    (fun (f : Longnail.Flow.compiled_functionality) ->
      if f.cf_kind = `Always then begin
        let resp = Longnail.Cosim.run ~engine:t.engine f (stimulus_of t ()) in
        apply_response t resp ~fallthrough_pc:None
      end)
    t.compiled.Longnail.Flow.funcs

let field_value ti word name =
  Option.map
    (fun fi -> Bitvec.to_int (Interp.decode_field word fi))
    (Tast.find_field ti name)

(* Execute one instruction; ISAXes run through their RTL modules. *)
let step t =
  if t.halted then false
  else begin
    tick_always t;
    let pc = read_pc t in
    let word = Interp.read_mem t.st "MEM" pc 4 in
    match Interp.decode t.st word with
    | None ->
        t.halted <- true;
        false
    | Some ti when ti.ti_name = "EBREAK" ->
        t.halted <- true;
        false
    | Some ti -> (
        t.instret <- t.instret + 1;
        match Longnail.Flow.find_func t.compiled ti.ti_name with
        | Some f ->
            (* custom instruction: through the RTL *)
            let rs1 = Option.map (fun i -> Interp.read_regfile t.st "X" i) (field_value ti word "rs1") in
            let rs2 = Option.map (fun i -> Interp.read_regfile t.st "X" i) (field_value ti word "rs2") in
            let resp =
              Longnail.Cosim.run ~engine:t.engine f
                (stimulus_of t ~instr_word:word ?rs1 ?rs2 ())
            in
            apply_response t ?rd:(field_value ti word "rd") resp
              ~fallthrough_pc:(Some ((pc + 4) land 0xFFFFFFFF));
            true
        | None ->
            (* base instruction: reference interpreter *)
            Interp.exec_instr t.st ti ~instr_word:word;
            if read_pc t = pc then write_pc t ((pc + 4) land 0xFFFFFFFF);
            true)
  end

let run ?(fuel = 200_000) t =
  let rec go fuel =
    if fuel <= 0 then raise (Rtl_loop_error "out of fuel")
    else if step t then go (fuel - 1)
    else ()
  in
  go fuel;
  t.instret
