(** Structural pipeline simulator with SCAIE-V-style ISAX integration.

   Where {!Machine} is a cycle-cost model, this module actually builds the
   pipeline: per-stage instruction slots, operand forwarding, interlock
   stalls and branch flushes — and wires the Longnail-generated RTL
   modules into it the way SCAIE-V does:

   - one {!Rtl.Engine.t} instance per ISAX module serves *all* in-flight
     instructions at once: the module's internal stallable pipeline
     registers carry each instruction's intermediate values, and the
     integration drives the stage-s input ports with whatever instruction
     currently occupies stage s (the ports are stage-suffixed precisely
     for this);
   - the module's stall_in_s ports follow the pipeline's stall boundaries:
     when the operand-stage interlock holds the front of the pipe, the
     corresponding module boundaries freeze with it while the back end
     keeps draining into bubbles;
   - ISAX result/valid outputs are captured in the stage they are bound to
     and committed architecturally in order at the end of the pipe;
   - always-blocks evaluate on every fetch and may redirect it with zero
     overhead (ZOL);
   - tightly-coupled modules (deeper than the writeback stage, no spawn)
     hold the whole pipeline while their module finishes — the paper's
     stall strategy;
   - decoupled modules (spawn) detach at writeback: the pipeline flows on
     and commits younger independent instructions while the detached unit
     keeps computing; its result writes back out of order through a
     scoreboard that stalls readers (and same-rd writers) until it lands —
     the paper's "lightweight out-of-order commit/writeback".

   Limitations (documented, asserted by the tests only where respected):
   pipelined cores only (no PicoRV32), and no store-to-load forwarding
   inside the pipeline window — a dependent load must trail a store by at
   least the pipe depth, which the test programs respect. *)

module Interp = Coredsl.Interp
module Tast = Coredsl.Tast
exception Pipeline_error of string
val u32 : Bitvec.ty
val bv : int -> Bitvec.t
type isax_capture = {
  mutable c_rd : (int * Bitvec.t) option;
  mutable c_pc : Bitvec.t option;
  mutable c_custreg : (string * int * Bitvec.t) list;
  mutable c_mem : (int * Bitvec.t) option;
}
type slot = {
  s_pc : int;
  s_word : int;
  s_ti : Tast.tinstr;
  s_isax : Longnail.Flow.compiled_functionality option;
  s_capture : isax_capture;
  mutable s_rs1v : int;
  mutable s_rs2v : int;
  mutable s_has_operands : bool;
  mutable s_result : int option;
  mutable s_vstage : int;
}
type t = {
  compiled : Longnail.Flow.compiled;
  st : Interp.state;
  sims : (string * Rtl.Engine.t) list;
  always_units : (Longnail.Flow.compiled_functionality * Rtl.Engine.t) list;
  stages : slot option array;
  mutable detached : slot list;
  mutable fetch_pc : int;
  mutable cycles : int;
  mutable instret : int;
  mutable halted : bool;
  depth : int;
}
val create : ?engine:Rtl.Engine.kind -> Longnail.Flow.compiled -> t
val read_gpr : t -> int -> int
val write_gpr : t -> int -> int -> unit
val write_pc : t -> int -> unit
val load_program : t -> ?base:int -> int list -> unit
val store_word : t -> int -> int -> unit
val field_value : Tast.tinstr -> int -> string -> int option
val forwarded_operand : t -> upto:int -> int -> int
val operand_hazard : t -> upto:int -> int -> bool
val netlist_of : t -> string -> Rtl.Netlist.t
val set_stall_inputs : t -> frozen_below:int -> unit
val drive_isax_inputs :
  t -> slot -> Longnail.Flow.compiled_functionality -> int -> unit
val service_isax_stage :
  t -> slot -> Longnail.Flow.compiled_functionality -> int -> unit
val tick_always : t -> unit
val base_execute : t -> slot -> int option
val commit : t -> slot -> unit
val make_capture : unit -> isax_capture
val step : t -> bool
val run : ?fuel:int -> t -> int
