(** RTL-in-the-loop program execution.

   Runs a complete assembler program against an extended core where every
   custom-instruction and always-block *executes through the generated RTL*
   (via the co-simulation harness) while the base RV32I instructions run in
   the reference interpreter. This is the closest analogue of the paper's
   verification methodology — "RTL simulation of the execution of
   handwritten assembler programs" (Section 5.3) — and the integration
   tests compare its final architectural state against a pure-interpreter
   run of the same program. *)

module Interp = Coredsl.Interp
module Tast = Coredsl.Tast
exception Rtl_loop_error of string
type t = {
  compiled : Longnail.Flow.compiled;
  st : Interp.state;
  engine : Rtl.Engine.kind;
  mutable instret : int;
  mutable halted : bool;
}

val create : ?engine:Rtl.Engine.kind -> Longnail.Flow.compiled -> t
(** [create ?engine compiled] prepares a run; every ISAX and always-block
    executes through the chosen RTL simulation engine (compiled by
    default). *)
val tu : t -> Coredsl.Tast.tunit
val read_pc : t -> int
val write_pc : t -> int -> unit
val read_gpr : t -> int -> int
val load_program : t -> ?base:int -> int list -> unit
val stimulus_of :
  t ->
  ?instr_word:Bitvec.t ->
  ?rs1:Bitvec.t -> ?rs2:Bitvec.t -> unit -> Longnail.Cosim.stimulus
val apply_response :
  t ->
  ?rd:int -> Longnail.Cosim.response -> fallthrough_pc:int option -> unit
val tick_always : t -> unit
val field_value : Tast.tinstr -> Bitvec.t -> string -> int option
val step : t -> bool
val run : ?fuel:int -> t -> int
