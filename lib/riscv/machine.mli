(** Cycle-level machine models of the four host cores.

   Architectural state and instruction semantics come from the CoreDSL
   reference interpreter (so the very same typed behaviors drive both the
   HLS flow and the simulation); on top sits a per-core timing model:
   single-issue in-order execution with memory wait states, branch
   redirect penalties, FSM sequencing for PicoRV32, and the ISAX execution
   modes of Section 3.2 (tightly-coupled stalls, decoupled background
   execution with scoreboard stalls, zero-overhead always-block PC
   redirects). This is the substrate for the Section 5.5 case study. *)

module Interp = Coredsl.Interp
module Tast = Coredsl.Tast
exception Machine_error of string
type timing = {
  t_core : string;
  fsm_base : int;
  mem_wait : int;
  branch_penalty : int;
  decoupled_issue_stall : int;
}
val vexriscv_timing : timing
val orca_timing : timing
val piccolo_timing : timing
val picorv32_timing : timing
val mriscv_timing : timing

(** The registry descriptor's cycle-cost parameters as a machine timing
    model. *)
val timing_of_descriptor : Scaiev.Core_registry.t -> timing

(** Look the datasheet's core up in {!Scaiev.Core_registry}; raises
    {!Machine_error} for an unregistered core. *)
val timing_for : Scaiev.Datasheet.t -> timing
type isax_timing = {
  it_mode : Scaiev.Config.mode;
  it_extra_stall : int;
  it_result_latency : int;
  it_uses_mem : bool;
  it_writes_rd : bool;
}
val isax_timing_of : Longnail.Flow.compiled -> (string * isax_timing) list
type t = {
  tu : Tast.tunit;
  st : Interp.state;
  timing : timing;
  isax : (string * isax_timing) list;
  mutable cycles : int;
  mutable instret : int;
  mutable halted : bool;
  pending : int array;
}
val create :
  ?isax:(string * isax_timing) list -> timing:timing -> Tast.tunit -> t
val of_compiled : Longnail.Flow.compiled -> t
val read_pc : t -> int
val write_pc : t -> int -> unit
val read_gpr : t -> int -> int
val write_gpr : t -> int -> int -> unit
val load_program : t -> ?base:int -> int list -> unit
val store_word : t -> int -> int -> unit
val load_word : t -> int -> int
val mem_instr_names : string list
val field_value : Tast.tinstr -> Bitvec.t -> string -> int option
val step : t -> bool
val run : ?fuel:int -> t -> int
val isax_encoder : Tast.tunit -> Asm.custom_encoder
