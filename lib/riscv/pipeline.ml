(* Structural pipeline simulator with SCAIE-V-style ISAX integration.

   Where {!Machine} is a cycle-cost model, this module actually builds the
   pipeline: per-stage instruction slots, operand forwarding, interlock
   stalls and branch flushes — and wires the Longnail-generated RTL
   modules into it the way SCAIE-V does:

   - one {!Rtl.Engine.t} instance per ISAX module serves *all* in-flight
     instructions at once: the module's internal stallable pipeline
     registers carry each instruction's intermediate values, and the
     integration drives the stage-s input ports with whatever instruction
     currently occupies stage s (the ports are stage-suffixed precisely
     for this);
   - the module's stall_in_s ports follow the pipeline's stall boundaries:
     when the operand-stage interlock holds the front of the pipe, the
     corresponding module boundaries freeze with it while the back end
     keeps draining into bubbles;
   - ISAX result/valid outputs are captured in the stage they are bound to
     and committed architecturally in order at the end of the pipe;
   - always-blocks evaluate on every fetch and may redirect it with zero
     overhead (ZOL);
   - tightly-coupled modules (deeper than the writeback stage, no spawn)
     hold the whole pipeline while their module finishes — the paper's
     stall strategy;
   - decoupled modules (spawn) detach at writeback: the pipeline flows on
     and commits younger independent instructions while the detached unit
     keeps computing; its result writes back out of order through a
     scoreboard that stalls readers (and same-rd writers) until it lands —
     the paper's "lightweight out-of-order commit/writeback".

   Limitations (documented, asserted by the tests only where respected):
   pipelined cores only (no PicoRV32), and no store-to-load forwarding
   inside the pipeline window — a dependent load must trail a store by at
   least the pipe depth, which the test programs respect. *)

module Interp = Coredsl.Interp
module Tast = Coredsl.Tast

exception Pipeline_error of string

let u32 = Bitvec.unsigned_ty 32
let bv v = Bitvec.of_int u32 v

(* captured effects of an ISAX instruction while it flows down the pipe *)
type isax_capture = {
  mutable c_rd : (int * Bitvec.t) option;
  mutable c_pc : Bitvec.t option;
  mutable c_custreg : (string * int * Bitvec.t) list;  (* newest first *)
  mutable c_mem : (int * Bitvec.t) option;
}

type slot = {
  s_pc : int;
  s_word : int;
  s_ti : Tast.tinstr;
  s_isax : Longnail.Flow.compiled_functionality option;
  s_capture : isax_capture;
  mutable s_rs1v : int;
  mutable s_rs2v : int;
  mutable s_has_operands : bool;
  mutable s_result : int option;  (* base instructions: forwardable value *)
  mutable s_vstage : int;  (* virtual stage while held past writeback *)
}

type t = {
  compiled : Longnail.Flow.compiled;
  st : Interp.state;  (* committed architectural state *)
  sims : (string * Rtl.Engine.t) list;  (* one per ISAX instruction module *)
  always_units : (Longnail.Flow.compiled_functionality * Rtl.Engine.t) list;
  stages : slot option array;  (* index 1 .. depth+1; commit from depth+1 *)
  mutable detached : slot list;  (* decoupled units past writeback *)
  mutable fetch_pc : int;
  mutable cycles : int;
  mutable instret : int;
  mutable halted : bool;
  depth : int;
}

let create ?(engine = Rtl.Engine.Compiled) (compiled : Longnail.Flow.compiled) =
  let core = compiled.Longnail.Flow.core in
  if core.Scaiev.Datasheet.is_fsm then
    raise (Pipeline_error "the structural pipeline models pipelined cores only");
  let sims, always_units =
    List.fold_left
      (fun (sims, always) (f : Longnail.Flow.compiled_functionality) ->
        let sim = Rtl.Engine.create ~kind:engine f.cf_hw.Longnail.Hwgen.netlist in
        match f.cf_kind with
        | `Instruction -> ((f.cf_name, sim) :: sims, always)
        | `Always -> (sims, (f, sim) :: always))
      ([], []) compiled.funcs
  in
  let depth = core.writeback_stage in
  {
    compiled;
    st = Interp.create compiled.unit_;
    sims;
    always_units;
    stages = Array.make (depth + 2) None;
    detached = [];
    fetch_pc = 0;
    cycles = 0;
    instret = 0;
    halted = false;
    depth;
  }

let read_gpr t i = Bitvec.to_int (Interp.read_regfile t.st "X" i)
let write_gpr t i v = if i <> 0 then (Interp.reg_array t.st "X").(i) <- bv v
let write_pc t v = (Interp.reg_array t.st "PC").(0) <- bv v

let load_program t ?(base = 0) words =
  List.iteri (fun i w -> Interp.write_mem t.st "MEM" (base + (4 * i)) 4 (bv w)) words;
  t.fetch_pc <- base;
  write_pc t base;
  t.st.Interp.trace <- []

let store_word t addr v = Interp.write_mem t.st "MEM" addr 4 (bv v)

let field_value ti word name =
  Option.map (fun fi -> Bitvec.to_int (Interp.decode_field (bv word) fi)) (Tast.find_field ti name)

(* ---- forwarding network ---- *)

(* youngest in-flight producer of register [r] older than stage [upto];
   falls back to the committed register file *)
let forwarded_operand t ~upto r =
  if r = 0 then 0
  else begin
    let from_detached () =
      let rec pick = function
        | [] -> read_gpr t r
        | (d : slot) :: rest -> (
            if field_value d.s_ti d.s_word "rd" = Some r then
              match d.s_capture.c_rd with
              | Some (_, v) -> Bitvec.to_int v
              | None -> pick rest
            else pick rest)
      in
      pick t.detached
    in
    let rec scan i =
      if i >= Array.length t.stages then from_detached ()
      else
        match t.stages.(i) with
        | Some s -> (
            let rd = field_value s.s_ti s.s_word "rd" in
            if rd = Some r then
              match s.s_isax with
              | Some _ -> (
                  match s.s_capture.c_rd with
                  | Some (_, v) -> Bitvec.to_int v
                  | None -> scan (i + 1) (* not produced; caller stalled *))
              | None -> ( match s.s_result with Some v -> v | None -> scan (i + 1))
            else scan (i + 1))
        | None -> scan (i + 1)
    in
    scan upto
  end

(* is there an older in-flight producer of [r] whose value is not ready? *)
let operand_hazard t ~upto r =
  if r = 0 then false
  else begin
    let detached_pending =
      List.exists
        (fun (d : slot) ->
          field_value d.s_ti d.s_word "rd" = Some r && d.s_capture.c_rd = None)
        t.detached
    in
    let rec scan i =
      if i >= Array.length t.stages then detached_pending
      else
        match t.stages.(i) with
        | Some s ->
            let rd = field_value s.s_ti s.s_word "rd" in
            let unfinished =
              rd = Some r
              &&
              match s.s_isax with
              | Some _ -> s.s_capture.c_rd = None
              | None -> s.s_result = None
            in
            if unfinished then true else scan (i + 1)
        | None -> scan (i + 1)
    in
    scan upto
  end

(* ---- ISAX module integration ---- *)

let netlist_of t name =
  (List.find
     (fun (f : Longnail.Flow.compiled_functionality) -> f.cf_name = name)
     t.compiled.Longnail.Flow.funcs)
    .cf_hw.Longnail.Hwgen.netlist

(* set the stall inputs: boundary s freezes iff s < frozen_below *)
let set_stall_inputs t ~frozen_below =
  List.iter
    (fun (name, sim) ->
      List.iter
        (fun (p : Rtl.Netlist.port) ->
          let pn = p.Rtl.Netlist.port_name in
          if String.length pn > 9 && String.sub pn 0 9 = "stall_in_" then begin
            let s = int_of_string (String.sub pn 9 (String.length pn - 9)) in
            Rtl.Engine.set_input sim pn
              (Bitvec.of_int (Bitvec.unsigned_ty 1) (if s < frozen_below then 1 else 0))
          end)
        (netlist_of t name).Rtl.Netlist.inputs)
    t.sims

let drive_isax_inputs t (s : slot) (f : Longnail.Flow.compiled_functionality) stage =
  let sim = List.assoc f.cf_name t.sims in
  let port role (b : Longnail.Hwgen.iface_binding) = List.assoc role b.ib_ports in
  List.iter
    (fun (b : Longnail.Hwgen.iface_binding) ->
      if b.ib_stage = stage then
        match b.ib_opname with
        | "lil.instr_word" -> Rtl.Engine.set_input sim (port "data" b) (bv s.s_word)
        | "lil.read_rs1" -> Rtl.Engine.set_input sim (port "data" b) (bv s.s_rs1v)
        | "lil.read_rs2" -> Rtl.Engine.set_input sim (port "data" b) (bv s.s_rs2v)
        | "lil.read_pc" -> Rtl.Engine.set_input sim (port "data" b) (bv s.s_pc)
        | _ -> ())
    f.cf_hw.Longnail.Hwgen.bindings

let service_isax_stage t (s : slot) (f : Longnail.Flow.compiled_functionality) stage =
  let sim = List.assoc f.cf_name t.sims in
  let port role (b : Longnail.Hwgen.iface_binding) = List.assoc role b.ib_ports in
  List.iter
    (fun (b : Longnail.Hwgen.iface_binding) ->
      if b.ib_stage = stage then
        match b.ib_opname with
        | "lil.read_custreg" ->
            (* the register file answers combinationally in the same stage *)
            let reg = Option.get b.ib_reg in
            let idx =
              match List.assoc_opt "addr" b.ib_ports with
              | Some ap -> Bitvec.to_int (Rtl.Engine.output sim ap)
              | None -> 0
            in
            Rtl.Engine.set_input sim (port "data" b) (Interp.reg_array t.st reg).(idx);
            Rtl.Engine.eval sim
        | "lil.read_mem" ->
            (* issue now; the response port belongs to stage+latency and is
               supplied before the next evaluation *)
            let addr = Bitvec.to_int (Rtl.Engine.output sim (port "addr" b)) in
            let data_port = port "data" b in
            let width =
              match
                List.find_opt
                  (fun (p : Rtl.Netlist.port) -> p.Rtl.Netlist.port_name = data_port)
                  f.cf_hw.Longnail.Hwgen.netlist.Rtl.Netlist.inputs
              with
              | Some p -> p.Rtl.Netlist.port_width
              | None -> 32
            in
            Rtl.Engine.set_input sim data_port (Interp.read_mem t.st "MEM" addr (max 1 (width / 8)));
            Rtl.Engine.eval sim
        | "lil.write_rd" ->
            if Bitvec.to_bool (Rtl.Engine.output sim (port "valid" b)) then begin
              match field_value s.s_ti s.s_word "rd" with
              | Some rd when rd <> 0 ->
                  s.s_capture.c_rd <- Some (rd, Rtl.Engine.output sim (port "data" b))
              | _ -> ()
            end
        | "lil.write_pc" ->
            if Bitvec.to_bool (Rtl.Engine.output sim (port "valid" b)) then
              s.s_capture.c_pc <- Some (Rtl.Engine.output sim (port "data" b))
        | "lil.write_custreg" ->
            (* SCAIE-V's custom register file applies writes in their
               scheduled stage (its hazard logic orders readers); applying
               at commit instead would let an always-block observe stale
               state, e.g. ZOL missing a just-set COUNT *)
            if Bitvec.to_bool (Rtl.Engine.output sim (port "valid" b)) then begin
              let reg = Option.get b.ib_reg in
              let a = Interp.reg_array t.st reg in
              let idx =
                match List.assoc_opt "addr" b.ib_ports with
                | Some ap -> Bitvec.to_int (Rtl.Engine.output sim ap)
                | None -> 0
              in
              a.(idx) <- Bitvec.cast (Bitvec.typ a.(0)) (Rtl.Engine.output sim (port "data" b))
            end
        | "lil.write_mem" ->
            (* memory writes likewise issue in their scheduled stage *)
            if Bitvec.to_bool (Rtl.Engine.output sim (port "valid" b)) then begin
              let data = Rtl.Engine.output sim (port "data" b) in
              Interp.write_mem t.st "MEM"
                (Bitvec.to_int (Rtl.Engine.output sim (port "addr" b)))
                (Bitvec.width data / 8) data
            end
        | _ -> ())
    f.cf_hw.Longnail.Hwgen.bindings

(* always-blocks: evaluate against the fetch PC and committed state; their
   valid-gated writes apply immediately (Section 3.2) *)
let tick_always t =
  List.iter
    (fun ((f : Longnail.Flow.compiled_functionality), sim) ->
      let port role (b : Longnail.Hwgen.iface_binding) = List.assoc role b.ib_ports in
      let bindings = f.cf_hw.Longnail.Hwgen.bindings in
      List.iter
        (fun (b : Longnail.Hwgen.iface_binding) ->
          if b.ib_opname = "lil.read_pc" then
            Rtl.Engine.set_input sim (port "data" b) (bv t.fetch_pc))
        bindings;
      Rtl.Engine.eval sim;
      List.iter
        (fun (b : Longnail.Hwgen.iface_binding) ->
          if b.ib_opname = "lil.read_custreg" then begin
            let reg = Option.get b.ib_reg in
            let idx =
              match List.assoc_opt "addr" b.ib_ports with
              | Some ap -> Bitvec.to_int (Rtl.Engine.output sim ap)
              | None -> 0
            in
            Rtl.Engine.set_input sim (port "data" b) (Interp.reg_array t.st reg).(idx);
            Rtl.Engine.eval sim
          end)
        bindings;
      List.iter
        (fun (b : Longnail.Hwgen.iface_binding) ->
          match b.ib_opname with
          | "lil.write_pc" ->
              if Bitvec.to_bool (Rtl.Engine.output sim (port "valid" b)) then
                t.fetch_pc <- Bitvec.to_int (Rtl.Engine.output sim (port "data" b))
          | "lil.write_custreg" ->
              if Bitvec.to_bool (Rtl.Engine.output sim (port "valid" b)) then begin
                let reg = Option.get b.ib_reg in
                let a = Interp.reg_array t.st reg in
                let idx =
                  match List.assoc_opt "addr" b.ib_ports with
                  | Some ap -> Bitvec.to_int (Rtl.Engine.output sim ap)
                  | None -> 0
                in
                a.(idx) <- Bitvec.cast (Bitvec.typ a.(0)) (Rtl.Engine.output sim (port "data" b))
              end
          | _ -> ())
        bindings;
      Rtl.Engine.clock sim)
    t.always_units

(* ---- base-instruction execution ---- *)

(* produce the forwardable result at the operand stage using the native
   ISS with the forwarded operands installed *)
let base_execute t (s : slot) =
  let iss = Iss.create () in
  (match field_value s.s_ti s.s_word "rs1" with
  | Some r when r <> 0 -> Iss.write_reg iss r s.s_rs1v
  | _ -> ());
  (match field_value s.s_ti s.s_word "rs2" with
  | Some r when r <> 0 -> Iss.write_reg iss r s.s_rs2v
  | _ -> ());
  iss.Iss.pc <- s.s_pc;
  (* loads read the committed memory (no store-to-load forwarding) *)
  (match s.s_ti.ti_name with
  | "LB" | "LH" | "LW" | "LBU" | "LHU" ->
      let imm = Iss.sext ((s.s_word lsr 20) land 0xFFF) 11 in
      let addr = (s.s_rs1v + imm) land 0xFFFFFFFF in
      Iss.write_word iss (addr land lnot 3) (Bitvec.to_int (Interp.read_mem t.st "MEM" (addr land lnot 3) 4));
      Iss.write_word iss ((addr land lnot 3) + 4)
        (Bitvec.to_int (Interp.read_mem t.st "MEM" ((addr land lnot 3) + 4) 4))
  | _ -> ());
  (try Iss.step_word iss s.s_word with Iss.Unknown_instruction _ -> ());
  (match field_value s.s_ti s.s_word "rd" with
  | Some rd when rd <> 0 -> s.s_result <- Some (Iss.read_reg iss rd)
  | _ -> s.s_result <- Some 0);
  (* branch/jump redirect resolves here *)
  if iss.Iss.pc <> (s.s_pc + 4) land 0xFFFFFFFF then Some iss.Iss.pc else None

(* commit the oldest instruction architecturally, in order *)
let commit t (s : slot) =
  t.instret <- t.instret + 1;
  match s.s_isax with
  | Some _ -> (
      (* custom-register and memory writes already took effect in their
         scheduled stages; the GPR result commits here in order *)
      match s.s_capture.c_rd with
      | Some (rd, v) -> write_gpr t rd (Bitvec.to_int v)
      | None -> ())
  | None -> (
      (* replay through the reference interpreter with the captured
         operands (stores need the architectural memory) *)
      let saved =
        List.filter_map
          (fun fo ->
            Option.bind fo (fun r ->
                if r = 0 then None else Some (r, (Interp.reg_array t.st "X").(r))))
          [ field_value s.s_ti s.s_word "rs1"; field_value s.s_ti s.s_word "rs2" ]
      in
      List.iter
        (fun (r, _) ->
          let v =
            if Some r = field_value s.s_ti s.s_word "rs1" then s.s_rs1v
            else s.s_rs2v
          in
          (Interp.reg_array t.st "X").(r) <- bv v)
        saved;
      write_pc t s.s_pc;
      Interp.exec_instr t.st s.s_ti ~instr_word:(bv s.s_word);
      let rd = field_value s.s_ti s.s_word "rd" in
      List.iter
        (fun (r, old) -> if Some r <> rd then (Interp.reg_array t.st "X").(r) <- old)
        saved)

let make_capture () = { c_rd = None; c_pc = None; c_custreg = []; c_mem = None }

(* One pipeline cycle. Returns false when halted and fully drained. *)
let step t =
  let drained = Array.for_all Option.is_none t.stages && t.detached = [] in
  if t.halted && drained then false
  else begin
    t.cycles <- t.cycles + 1;
    let core = t.compiled.Longnail.Flow.core in
    let opstage = core.Scaiev.Datasheet.operand_stage in
    let last = Array.length t.stages - 1 in
    (* 1. operand fetch and interlock at the operand stage *)
    let stall = ref false in
    (match t.stages.(opstage) with
    | Some s when not s.s_has_operands ->
        let rs1 = Option.value ~default:0 (field_value s.s_ti s.s_word "rs1") in
        let rs2 = Option.value ~default:0 (field_value s.s_ti s.s_word "rs2") in
        (* WAW against detached decoupled writers: block same-rd issue *)
        let waw =
          match field_value s.s_ti s.s_word "rd" with
          | Some rd when rd <> 0 ->
              List.exists
                (fun (d : slot) ->
                  field_value d.s_ti d.s_word "rd" = Some rd && d.s_capture.c_rd = None)
                t.detached
          | _ -> false
        in
        if
          operand_hazard t ~upto:(opstage + 1) rs1
          || operand_hazard t ~upto:(opstage + 1) rs2
          || waw
        then stall := true
        else begin
          s.s_rs1v <- forwarded_operand t ~upto:(opstage + 1) rs1;
          s.s_rs2v <- forwarded_operand t ~upto:(opstage + 1) rs2;
          s.s_has_operands <- true;
          if s.s_isax = None then ignore (base_execute t s)
        end
    | _ -> ());
    (* 1b. custom-register data hazards (SCAIE-V hazard handling) *)
    let stall_point = ref (if !stall then opstage else 0) in
    let pending_custreg_writer ~older_than reg =
      let in_pipe =
        let rec scan i =
          if i >= Array.length t.stages then false
          else
            match t.stages.(i) with
            | Some { s_isax = Some g; _ } ->
                let pending =
                  List.exists
                    (fun (b : Longnail.Hwgen.iface_binding) ->
                      b.ib_opname = "lil.write_custreg" && b.ib_reg = Some reg && b.ib_stage > i)
                    g.cf_hw.Longnail.Hwgen.bindings
                in
                if pending then true else scan (i + 1)
            | _ -> scan (i + 1)
        in
        scan (older_than + 1)
      in
      in_pipe
      || List.exists
           (fun (d : slot) ->
             let g = Option.get d.s_isax in
             List.exists
               (fun (b : Longnail.Hwgen.iface_binding) ->
                 b.ib_opname = "lil.write_custreg" && b.ib_reg = Some reg
                 && b.ib_stage >= d.s_vstage)
               g.cf_hw.Longnail.Hwgen.bindings)
           t.detached
    in
    for stage = 1 to last do
      match t.stages.(stage) with
      | Some { s_isax = Some f; _ } ->
          List.iter
            (fun (b : Longnail.Hwgen.iface_binding) ->
              if
                b.ib_opname = "lil.read_custreg"
                && b.ib_stage = stage
                && pending_custreg_writer ~older_than:stage (Option.get b.ib_reg)
              then stall_point := max !stall_point stage)
            f.cf_hw.Longnail.Hwgen.bindings
      | _ -> ()
    done;
    (* 1c. does the instruction at the end of the pipe extend past it? *)
    let hold_at_end = ref false and detach_now = ref false in
    (match t.stages.(last) with
    | Some ({ s_isax = Some f; _ } as sl) ->
        (* on arrival (vstage = 0) the pipe stage itself still gets
           serviced this cycle, so the module extends only if it reaches
           strictly beyond; afterwards, hold until the final virtual stage
           has been serviced *)
        let more =
          if sl.s_vstage > 0 then f.cf_hw.Longnail.Hwgen.max_stage >= sl.s_vstage
          else f.cf_hw.Longnail.Hwgen.max_stage > last
        in
        if more then begin
          if f.cf_mode = Scaiev.Config.Decoupled then detach_now := true
          else begin
            (* tightly-coupled: the whole core stalls *)
            hold_at_end := true;
            stall_point := last
          end
        end
    | _ -> ());
    let frozen = !stall_point in
    (* 2. drive and evaluate the ISAX modules for every occupied stage *)
    set_stall_inputs t ~frozen_below:frozen;
    for stage = 1 to last do
      match t.stages.(stage) with
      | Some ({ s_isax = Some f; s_has_operands = true; _ } as s) ->
          drive_isax_inputs t s f (if stage = last && s.s_vstage > 0 then s.s_vstage else stage)
      | Some ({ s_isax = Some f; _ } as s) when stage <= opstage ->
          drive_isax_inputs t s f stage
      | _ -> ()
    done;
    List.iter (fun (_, sim) -> Rtl.Engine.eval sim) t.sims;
    (* 2a. detached decoupled units keep computing beside the pipe *)
    t.detached <-
      List.filter
        (fun (d : slot) ->
          let f = Option.get d.s_isax in
          drive_isax_inputs t d f d.s_vstage;
          let sim = List.assoc f.cf_name t.sims in
          Rtl.Engine.eval sim;
          service_isax_stage t d f d.s_vstage;
          d.s_vstage <- d.s_vstage + 1;
          if d.s_vstage > f.cf_hw.Longnail.Hwgen.max_stage then begin
            (* out-of-order writeback through the scoreboard *)
            (match d.s_capture.c_rd with
            | Some (rd, v) -> write_gpr t rd (Bitvec.to_int v)
            | None -> ());
            false
          end
          else true)
        t.detached;
    (* 2b. service in-pipe stages, oldest first (write-through ordering);
       stalled slots (at or before the freeze point) do not execute —
       except the held end-of-pipe slot, which services its virtual stage
       while its module's tail keeps running *)
    for stage = last downto frozen + 1 do
      match t.stages.(stage) with
      | Some ({ s_isax = Some f; _ } as s) -> service_isax_stage t s f stage
      | _ -> ()
    done;
    if !hold_at_end then begin
      match t.stages.(last) with
      | Some ({ s_isax = Some f; _ } as s) ->
          let v = if s.s_vstage > 0 then s.s_vstage else last in
          service_isax_stage t s f v;
          s.s_vstage <- v + 1
      | _ -> ()
    end;
    (* 3. commit / detach from the end of the pipe *)
    let redirect = ref None in
    (match t.stages.(last) with
    | Some _ when !hold_at_end -> ()
    | Some ({ s_isax = Some _; _ } as sl) when !detach_now ->
        sl.s_vstage <- (if sl.s_vstage > 0 then sl.s_vstage else last + 1);
        t.detached <- t.detached @ [ sl ];
        t.instret <- t.instret + 1;
        t.stages.(last) <- None
    | Some s ->
        commit t s;
        (match s.s_isax with
        | Some _ -> (
            match s.s_capture.c_pc with
            | Some pc' -> redirect := Some (Bitvec.to_int pc')
            | None -> ())
        | None ->
            (* the interpreter only writes PC for taken control transfers *)
            let pc_after = Bitvec.to_int (Interp.read_reg t.st "PC") in
            if pc_after <> s.s_pc then redirect := Some pc_after);
        t.stages.(last) <- None
    | None -> ());
    (* 4. advance: slots at or before the stall point hold; bubbles drain
       behind them *)
    if frozen > 0 then begin
      for stage = last - 1 downto frozen + 1 do
        t.stages.(stage + 1) <- t.stages.(stage);
        t.stages.(stage) <- None
      done
    end
    else begin
      for stage = last - 1 downto 1 do
        t.stages.(stage + 1) <- t.stages.(stage);
        t.stages.(stage) <- None
      done;
      (match !redirect with
      | Some pc' ->
          for i = 1 to last do
            t.stages.(i) <- None
          done;
          t.fetch_pc <- pc';
          t.halted <- false
      | None -> ());
      (* always-blocks observe (and may replace) the next fetch *)
      if not t.halted then tick_always t;
      if not t.halted then begin
        let word = Bitvec.to_int (Interp.read_mem t.st "MEM" t.fetch_pc 4) in
        match Interp.decode t.st (bv word) with
        | Some ti when ti.ti_name = "EBREAK" -> t.halted <- true
        | Some ti ->
            t.stages.(1) <-
              Some
                {
                  s_pc = t.fetch_pc;
                  s_word = word;
                  s_ti = ti;
                  s_isax = Longnail.Flow.find_func t.compiled ti.ti_name;
                  s_capture = make_capture ();
                  s_rs1v = 0;
                  s_rs2v = 0;
                  s_has_operands = false;
                  s_result = None;
                  s_vstage = 0;
                };
            t.fetch_pc <- (t.fetch_pc + 4) land 0xFFFFFFFF
        | None -> t.halted <- true
      end
    end;
    List.iter (fun (_, sim) -> Rtl.Engine.clock sim) t.sims;
    true
  end

let run ?(fuel = 500_000) t =
  let rec go fuel =
    if fuel <= 0 then raise (Pipeline_error "out of fuel")
    else if step t then go (fuel - 1)
    else ()
  in
  go fuel;
  t.cycles
