(* The longnail serve daemon and its client helpers (see the .mli and
   docs/SERVE.md). One process keeps one Flow.session warm; requests
   arrive as single JSON lines on a Unix-domain socket and every request
   line produces target events plus exactly one done event. The loop is
   deliberately single-threaded: per-request parallelism comes from the
   request's worker domains (Flow.Request.jobs), so two requests never
   race on the shared session from the dispatch side. *)

(* ---------------------------------------------------------------- *)
(* JSON                                                             *)
(* ---------------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string * int

  let utf8_add buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (msg, !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "invalid literal (expected '%s')" lit)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
            (if !pos >= n then fail "unterminated escape";
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' -> (
                 if !pos + 4 > n then fail "truncated \\u escape";
                 let hex = String.sub s !pos 4 in
                 pos := !pos + 4;
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some code -> utf8_add buf code
                 | None -> fail "invalid \\u escape")
             | _ -> fail "invalid escape character");
            go ()
        | c ->
            Buffer.add_char buf c;
            go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match float_of_string_opt tok with
      | Some f -> Num f
      | None -> fail (Printf.sprintf "invalid number '%s'" tok)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elems []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing bytes after the JSON value";
      v
    with
    | v -> Ok v
    | exception Parse_error (msg, p) -> Error (Printf.sprintf "%s at byte %d" msg p)

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let quote s = "\"" ^ escape s ^ "\""

  let number_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let rec to_string = function
    | Null -> "null"
    | Bool b -> if b then "true" else "false"
    | Num f -> number_to_string f
    | Str s -> quote s
    | Arr l -> "[" ^ String.concat "," (List.map to_string l) ^ "]"
    | Obj l ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> quote k ^ ":" ^ to_string v) l)
        ^ "}"

  let member k = function
    | Obj l -> ( match List.assoc_opt k l with Some v -> v | None -> Null)
    | _ -> Null

  let get_string = function Str s -> Some s | _ -> None

  let get_int = function
    | Num f when Float.is_integer f && Float.abs f < 1e15 -> Some (int_of_float f)
    | _ -> None

  let get_float = function Num f -> Some f | _ -> None
  let get_bool = function Bool b -> Some b | _ -> None
  let get_list = function Arr l -> Some l | _ -> None
end

(* ---------------------------------------------------------------- *)
(* Daemon state                                                     *)
(* ---------------------------------------------------------------- *)

let protocol_version = 1

type conn = { c_fd : Unix.file_descr; c_buf : Buffer.t }

type t = {
  s_socket : string;
  s_listen : Unix.file_descr;
  s_session : Longnail.Flow.session;
  s_default_jobs : int;
  s_started : float;
  mutable s_conns : conn list;
  mutable s_requests : int;
  s_stop : bool Atomic.t;
}

let socket_path t = t.s_socket
let session t = t.s_session
let requests_served t = t.s_requests
let stop t = Atomic.set t.s_stop true

let create ?(jobs = 1) ~session ~socket () =
  if jobs < 1 then Diag.fatalf ~code:"E0911" "serve: jobs must be >= 1, got %d" jobs;
  (match Unix.stat socket with
  | st when st.Unix.st_kind = Unix.S_SOCK ->
      (* a socket file already exists: live daemon, or debris from a
         crashed one? probe with a connect before reclaiming *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX socket) with
        | () -> true
        | exception Unix.Unix_error (_, _, _) -> false
      in
      (try Unix.close probe with Unix.Unix_error (_, _, _) -> ());
      if live then
        Diag.fatalf ~code:"E0911" "another daemon is already serving on %s" socket;
      (try Unix.unlink socket with Unix.Unix_error (_, _, _) -> ())
  | _ ->
      Diag.fatalf ~code:"E0911" "refusing to replace existing non-socket file %s" socket
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let l = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind l (Unix.ADDR_UNIX socket) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close l with Unix.Unix_error (_, _, _) -> ());
      Diag.fatalf ~code:"E0911" "cannot bind %s: %s" socket (Unix.error_message e));
  Unix.listen l 64;
  {
    s_socket = socket;
    s_listen = l;
    s_session = session;
    s_default_jobs = jobs;
    s_started = Unix.gettimeofday ();
    s_conns = [];
    s_requests = 0;
    s_stop = Atomic.make false;
  }

(* ---------------------------------------------------------------- *)
(* Response assembly                                                *)
(* ---------------------------------------------------------------- *)

(* Response lines are assembled as raw JSON text so pre-rendered
   fragments (Diag.to_json, Obs.to_json) embed without a re-parse. *)

let quote = Json.quote

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> quote k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"
let float_json f = Printf.sprintf "%.6g" f

let done_error ~id ds =
  obj [ ("id", id); ("event", quote "done"); ("ok", "false"); ("diag", Diag.to_json ds) ]

let bad_request ?(id = "null") msg = done_error ~id [ Diag.make ~code:"E0910" msg ]

(* unknown core name in a compile/dse request: structurally well-formed,
   but the name resolves to no registered core (E0912, with the
   registry's suggestion list in the message) *)
let unknown_core ?(id = "null") msg = done_error ~id [ Diag.make ~code:"E0912" msg ]

let core_error ~id = function
  | `Malformed m -> bad_request ~id m
  | `Unknown_core m -> unknown_core ~id m

(* ---------------------------------------------------------------- *)
(* Request decoding                                                 *)
(* ---------------------------------------------------------------- *)

(* A request's "knobs" object reuses the Knob_flags table verbatim:
   {"scheduler":"asap","cycle-time":3.5,"no-hazard-handling":true}.
   Strings and numbers are flag values, [true] is a bare flag, [false]
   and [null] mean absent. Cache/store flags are daemon-side
   configuration and are rejected over the wire.

   Errors are [(code option, message)]: most rejections are plain
   malformed requests (E0910), but flags with their own diagnostic code
   ([Knob_flags.error_code] — unknown --sim-engine / --emit names) keep
   it, so the client sees the same structured E0913 as the CLI. *)
let apply_knobs j =
  let set kf k v =
    match Longnail.Knob_flags.set kf k v with
    | Ok kf -> Ok kf
    | Error m -> Error (Longnail.Knob_flags.error_code k, m)
  in
  match j with
  | Json.Null -> Ok Longnail.Knob_flags.default
  | Json.Obj fields ->
      let folded =
        List.fold_left
          (fun acc (k, v) ->
            Result.bind acc (fun kf ->
                match v with
                | Json.Bool false | Json.Null -> Ok kf
                | Json.Str s -> set kf k (Some s)
                | Json.Num f -> set kf k (Some (Json.number_to_string f))
                | Json.Bool true -> set kf k None
                | Json.Arr _ | Json.Obj _ ->
                    Error
                      ( None,
                        Printf.sprintf "knob \"%s\" must be a string, number or boolean" k
                      )))
          (Ok Longnail.Knob_flags.default) fields
      in
      Result.bind folded (fun kf ->
          if
            kf.Longnail.Knob_flags.store_dir <> None
            || kf.store_budget_mb <> None || kf.cache_capacity <> None
            || not kf.cache_enabled
          then
            Error
              ( None,
                "cache/store knobs are daemon-side configuration; start the daemon with \
                 --store instead" )
          else Ok kf)
  | _ -> Error (None, "\"knobs\" must be an object of flag names to values")

(* render an apply_knobs rejection: structured code when the flag has
   one, otherwise a plain malformed-request error *)
let knob_error ~id = function
  | Some code, m -> done_error ~id [ Diag.make ~code m ]
  | None, m -> bad_request ~id m

let jobs_of t kf req =
  match Json.member "jobs" req with
  | Json.Null ->
      (* a "jobs" entry inside the knobs object also counts *)
      Ok
        (if kf.Longnail.Knob_flags.jobs <> 1 then kf.Longnail.Knob_flags.jobs
         else t.s_default_jobs)
  | j -> (
      match Json.get_int j with
      | Some n when n >= 1 -> Ok n
      | _ -> Error "\"jobs\" must be an integer >= 1")

let resolve_cores req =
  let names =
    match (Json.member "cores" req, Json.member "core" req) with
    | Json.Arr l, _ ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.Str s :: rest -> go (s :: acc) rest
          | _ -> Error "\"cores\" must be an array of core-name strings"
        in
        go [] l
    | Json.Null, Json.Str s -> Ok [ s ]
    | Json.Null, Json.Null -> Error "request needs \"core\" or \"cores\""
    | Json.Null, _ -> Error "\"core\" must be a core-name string"
    | _, _ -> Error "\"cores\" must be an array of core-name strings"
  in
  match names with
  | Error m -> Error (`Malformed m)
  | Ok [] -> Error (`Malformed "\"cores\" must not be empty")
  | Ok names ->
      (* name -> datasheet through the core registry: unknown names get
         the E0912 diagnostic carrying the same available-core list and
         did-you-mean suggestions as the CLI's --core converter *)
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
            match Scaiev.Core_registry.resolve n with
            | Ok d -> go (d.Scaiev.Core_registry.datasheet :: acc) rest
            | Error m -> Error (`Unknown_core m))
      in
      go [] names

(* The compile unit: either a registry ISAX by name or inline CoreDSL
   text with its elaboration target. Both funnel through the session's
   memoized frontend, so repeated requests skip parse/typecheck. *)
let resolve_unit t req =
  match Json.member "isax" req with
  | Json.Str name -> (
      match Isax.Registry.find name with
      | Some e -> (
          let key =
            Cache.Fp.digest (fun b ->
                Cache.Fp.add_string b "isax";
                Cache.Fp.add_string b e.Isax.Registry.name;
                Cache.Fp.add_string b e.Isax.Registry.target;
                Cache.Fp.add_string b e.Isax.Registry.source)
          in
          match
            Longnail.Flow.frontend t.s_session ~key (fun () -> Isax.Registry.compile e)
          with
          | tu -> Ok (tu, name)
          | exception Diag.Fatal ds -> Error (`Diags ds))
      | None ->
          Error
            (`Bad
               (Printf.sprintf "unknown ISAX '%s' (available: %s)" name
                  (String.concat ", "
                     (List.map (fun (e : Isax.Registry.entry) -> e.name) Isax.Registry.all)))))
  | Json.Null -> (
      match (Json.member "text" req, Json.member "target" req) with
      | Json.Str src, Json.Str target -> (
          let file =
            match Json.get_string (Json.member "file" req) with
            | Some f -> f
            | None -> "<request>"
          in
          let key =
            Cache.Fp.digest (fun b ->
                Cache.Fp.add_string b file;
                Cache.Fp.add_string b target;
                Cache.Fp.add_string b src)
          in
          match
            Longnail.Flow.frontend t.s_session ~key (fun () ->
                match
                  Coredsl.compile_result ~provider:Isax.Registry.provider ~file ~target src
                with
                | Ok tu -> tu
                | Error ds -> raise (Diag.Fatal ds))
          with
          | tu -> Ok (tu, target)
          | exception Diag.Fatal ds -> Error (`Diags ds))
      | Json.Str _, _ -> Error (`Bad "\"text\" requires a \"target\" instruction-set name")
      | _ -> Error (`Bad "request needs \"isax\" (a registry name) or \"text\" + \"target\""))
  | _ -> Error (`Bad "\"isax\" must be a string")

(* ---------------------------------------------------------------- *)
(* Ops                                                              *)
(* ---------------------------------------------------------------- *)

let handle_ping id =
  [
    obj
      [
        ("id", id);
        ("event", quote "done");
        ("ok", "true");
        ("op", quote "ping");
        ("protocol", string_of_int protocol_version);
        ("pid", string_of_int (Unix.getpid ()));
      ];
  ]

let handle_stats t id =
  let disk =
    match Longnail.Flow.session_disk t.s_session with
    | None -> "null"
    | Some d ->
        let st = Cache.Disk.stats d in
        obj
          [
            ("dir", quote (Cache.Disk.dir d));
            ("entries", string_of_int (Cache.Disk.length d));
            ("hits", string_of_int st.Cache.Disk.hits);
            ("misses", string_of_int st.Cache.Disk.misses);
            ("stores", string_of_int st.Cache.Disk.stores);
            ("evictions", string_of_int st.Cache.Disk.evictions);
            ("corrupt", string_of_int st.Cache.Disk.corrupt);
            ("bytes", string_of_int st.Cache.Disk.bytes);
          ]
  in
  [
    obj
      [
        ("id", id);
        ("event", quote "done");
        ("ok", "true");
        ("op", quote "stats");
        ("uptime_s", float_json (Unix.gettimeofday () -. t.s_started));
        ("requests", string_of_int t.s_requests);
        ("disk", disk);
      ];
  ]

let func_json (f : Longnail.Flow.output_func) =
  obj
    [
      ("name", quote f.Longnail.Flow.of_name);
      ("kind", quote f.of_kind);
      ("mode", quote f.of_mode);
      ("max_stage", string_of_int f.of_max_stage);
      ("sv", quote f.of_sv);
    ]

(* Batch-first with per-target isolation: the batch shares the warmed IR
   and fans out worker domains, but one infeasible target poisons the
   whole Flow.compile_many call — so on Fatal, retry each target alone
   and report its own diagnostics while the healthy siblings answer. *)
let compile_targets request targets =
  match Longnail.Flow.compile_many_outputs ~request targets with
  | outs -> List.map Result.ok outs
  | exception Diag.Fatal _ ->
      List.map
        (fun ((core : Scaiev.Datasheet.t), tu) ->
          match
            Longnail.Flow.compile_outputs
              { request with Longnail.Flow.Request.jobs = 1 }
              core tu
          with
          | o -> Ok o
          | exception Diag.Fatal ds -> Error (core.Scaiev.Datasheet.core_name, ds))
        targets

let handle_compile t id req =
  match apply_knobs (Json.member "knobs" req) with
  | Error e -> [ knob_error ~id e ]
  | Ok kf -> (
      match jobs_of t kf req with
      | Error m -> [ bad_request ~id m ]
      | Ok jobs -> (
          match resolve_cores req with
          | Error e -> [ core_error ~id e ]
          | Ok cores -> (
              match resolve_unit t req with
              | Error (`Bad m) -> [ bad_request ~id m ]
              | Error (`Diags ds) -> [ done_error ~id ds ]
              | Ok (tu, _label) ->
                  let obs =
                    if Json.get_bool (Json.member "profile" req) = Some true then
                      Some (Obs.create ~name:"serve_request" ())
                    else None
                  in
                  let request =
                    Longnail.Knob_flags.request ~session:t.s_session ?obs
                      { kf with Longnail.Knob_flags.jobs }
                  in
                  let targets = List.map (fun core -> (core, tu)) cores in
                  let results = compile_targets request targets in
                  Option.iter Obs.finish obs;
                  let events =
                    List.map
                      (function
                        | Ok (o : Longnail.Flow.outputs) ->
                            obj
                              [
                                ("id", id);
                                ("event", quote "target");
                                ("ok", "true");
                                ("core", quote o.Longnail.Flow.o_core);
                                ("funcs", arr (List.map func_json o.o_funcs));
                                ("yaml", quote o.o_yaml);
                              ]
                        | Error (core_name, ds) ->
                            obj
                              [
                                ("id", id);
                                ("event", quote "target");
                                ("ok", "false");
                                ("core", quote core_name);
                                ("diag", Diag.to_json ds);
                              ])
                      results
                  in
                  let failed = List.length (List.filter Result.is_error results) in
                  let profile_fields =
                    match obs with
                    | None -> []
                    | Some o -> [ ("profile", Obs.to_json (Obs.root o)) ]
                  in
                  let done_ev =
                    obj
                      ([
                         ("id", id);
                         ("event", quote "done");
                         ("ok", string_of_bool (failed = 0));
                         ("op", quote "compile");
                         ("targets", string_of_int (List.length results));
                         ("failed", string_of_int failed);
                       ]
                      @ profile_fields)
                  in
                  events @ [ done_ev ])))

let handle_lint t id req =
  match resolve_unit t req with
  | Error (`Bad m) -> [ bad_request ~id m ]
  | Error (`Diags ds) -> [ done_error ~id ds ]
  | Ok (tu, _label) ->
      let include_base = Json.get_bool (Json.member "include-base" req) = Some true in
      let werror = Json.get_bool (Json.member "werror" req) = Some true in
      let ds = Analysis.Lint.lint_unit ~include_base tu in
      let ds = if werror then Analysis.Lint.promote ds else ds in
      let ok = not (List.exists (fun (d : Diag.t) -> d.severity = Diag.Error) ds) in
      [
        obj
          [
            ("id", id);
            ("event", quote "done");
            ("ok", string_of_bool ok);
            ("op", quote "lint");
            ("findings", string_of_int (List.length ds));
            ("diag", Diag.to_json ds);
          ];
      ]

let point_json (p : Longnail.Dse.point) =
  obj
    [
      ("label", quote p.Longnail.Dse.dp_label);
      ( "scheduler",
        quote
          (match p.dp_scheduler with
          | Longnail.Sched_build.Ilp -> "ilp"
          | Longnail.Sched_build.Asap -> "asap") );
      ("cycle_factor", float_json p.dp_cycle_factor);
      ("physical", string_of_bool p.dp_physical);
      ("area_pct", float_json p.dp_area_pct);
      ("freq_mhz", float_json p.dp_freq_mhz);
      ("latency", string_of_int p.dp_latency);
      ("pipe_bits", string_of_int p.dp_pipe_bits);
      ("pareto", string_of_bool p.dp_pareto);
    ]

let handle_dse t id req =
  match apply_knobs (Json.member "knobs" req) with
  | Error e -> [ knob_error ~id e ]
  | Ok kf -> (
      match jobs_of t kf req with
      | Error m -> [ bad_request ~id m ]
      | Ok jobs -> (
          match resolve_cores req with
          | Error e -> [ core_error ~id e ]
          | Ok [ core ] -> (
              match resolve_unit t req with
              | Error (`Bad m) -> [ bad_request ~id m ]
              | Error (`Diags ds) -> [ done_error ~id ds ]
              | Ok (tu, label) ->
                  let request =
                    Longnail.Knob_flags.request ~session:t.s_session
                      { kf with Longnail.Knob_flags.jobs }
                  in
                  let measure c =
                    let r = Asic.Flow.run ~isax_name:label c in
                    (r.Asic.Flow.area_overhead_pct, r.Asic.Flow.achieved_freq_mhz)
                  in
                  let points = Longnail.Dse.explore ~request ~measure core tu in
                  [
                    obj
                      [
                        ("id", id);
                        ("event", quote "done");
                        ("ok", "true");
                        ("op", quote "dse");
                        ("core", quote core.Scaiev.Datasheet.core_name);
                        ("points", arr (List.map point_json points));
                      ];
                  ])
          | Ok _ -> [ bad_request ~id "\"op\":\"dse\" takes exactly one core" ]))

(* ---------------------------------------------------------------- *)
(* Dispatch                                                         *)
(* ---------------------------------------------------------------- *)

let handle_line t line =
  let line = String.trim line in
  if line = "" then []
  else begin
    t.s_requests <- t.s_requests + 1;
    match Json.parse line with
    | Error m -> [ bad_request (Printf.sprintf "malformed request JSON: %s" m) ]
    | Ok req -> (
        let id = Json.to_string (Json.member "id" req) in
        match Json.get_string (Json.member "op" req) with
        | None -> [ bad_request ~id "request needs an \"op\" string" ]
        | Some op -> (
            (* per-request isolation: nothing a request does may kill
               the daemon; unexpected exceptions become E0901 replies *)
            let run f =
              try f () with
              | Diag.Fatal ds -> [ done_error ~id ds ]
              | e ->
                  [
                    done_error ~id
                      [
                        Diag.make ~code:"E0901"
                          (Printf.sprintf "internal error handling '%s': %s" op
                             (Printexc.to_string e));
                      ];
                  ]
            in
            match op with
            | "ping" -> handle_ping id
            | "stats" -> run (fun () -> handle_stats t id)
            | "compile" -> run (fun () -> handle_compile t id req)
            | "lint" -> run (fun () -> handle_lint t id req)
            | "dse" -> run (fun () -> handle_dse t id req)
            | "shutdown" ->
                Atomic.set t.s_stop true;
                [
                  obj
                    [
                      ("id", id);
                      ("event", quote "done");
                      ("ok", "true");
                      ("op", quote "shutdown");
                    ];
                ]
            | op ->
                [
                  bad_request ~id
                    (Printf.sprintf
                       "unknown op '%s' (ops: ping, stats, compile, lint, dse, shutdown)" op);
                ]))
  end

(* ---------------------------------------------------------------- *)
(* Transport                                                        *)
(* ---------------------------------------------------------------- *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let send_lines fd lines =
  List.iter
    (fun l ->
      write_all fd l 0 (String.length l);
      write_all fd "\n" 0 1)
    lines

let close_conn t c =
  t.s_conns <- List.filter (fun c' -> c'.c_fd <> c.c_fd) t.s_conns;
  try Unix.close c.c_fd with Unix.Unix_error (_, _, _) -> ()

(* Cut complete lines out of the connection's pending buffer and answer
   each; a write failure (client went away) closes just that
   connection. *)
let process_buffered t c =
  let data = Buffer.contents c.c_buf in
  Buffer.clear c.c_buf;
  let n = String.length data in
  let pos = ref 0 in
  let alive = ref true in
  while !alive && !pos < n do
    match String.index_from_opt data !pos '\n' with
    | None ->
        Buffer.add_substring c.c_buf data !pos (n - !pos);
        pos := n
    | Some nl -> (
        let line = String.sub data !pos (nl - !pos) in
        pos := nl + 1;
        let replies = handle_line t line in
        match send_lines c.c_fd replies with
        | () -> ()
        | exception Unix.Unix_error (_, _, _) ->
            close_conn t c;
            alive := false)
  done

let drain_conn t c =
  let bytes = Bytes.create 65536 in
  match Unix.read c.c_fd bytes 0 65536 with
  | 0 -> close_conn t c
  | k ->
      Buffer.add_subbytes c.c_buf bytes 0 k;
      process_buffered t c
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t c

let serve t =
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let cleanup () =
    (match prev_sigpipe with
    | Some b -> ( try Sys.set_signal Sys.sigpipe b with Invalid_argument _ | Sys_error _ -> ())
    | None -> ());
    List.iter
      (fun c -> try Unix.close c.c_fd with Unix.Unix_error (_, _, _) -> ())
      t.s_conns;
    t.s_conns <- [];
    (try Unix.close t.s_listen with Unix.Unix_error (_, _, _) -> ());
    try Unix.unlink t.s_socket with Unix.Unix_error (_, _, _) -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  while not (Atomic.get t.s_stop) do
    let fds = t.s_listen :: List.map (fun c -> c.c_fd) t.s_conns in
    match Unix.select fds [] [] 0.2 with
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.s_listen then (
              match Unix.accept t.s_listen with
              | cfd, _ ->
                  t.s_conns <- { c_fd = cfd; c_buf = Buffer.create 256 } :: t.s_conns
              | exception Unix.Unix_error (_, _, _) -> ())
            else
              match List.find_opt (fun c -> c.c_fd = fd) t.s_conns with
              | Some c -> drain_conn t c
              | None -> ())
          readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ---------------------------------------------------------------- *)
(* Client                                                           *)
(* ---------------------------------------------------------------- *)

module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

  let connect ?(retries = 0) ?(retry_delay = 0.1) path =
    let rec go attempt =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () ->
          { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          if attempt < retries then begin
            Unix.sleepf retry_delay;
            go (attempt + 1)
          end
          else
            Diag.fatalf ~code:"E0911" "cannot connect to %s: %s" path
              (Unix.error_message e)
    in
    go 0

  let close c =
    (try flush c.oc with Sys_error _ -> ());
    try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()

  let send c line =
    try
      output_string c.oc line;
      output_char c.oc '\n';
      flush c.oc
    with Sys_error m -> Diag.fatalf ~code:"E0911" "send failed: %s" m

  let recv c =
    match input_line c.ic with
    | l -> Some l
    | exception End_of_file -> None
    | exception Sys_error m -> Diag.fatalf ~code:"E0911" "receive failed: %s" m

  let request c line =
    send c line;
    let rec collect acc =
      match recv c with
      | None ->
          Diag.fatalf ~code:"E0911"
            "server closed the connection before completing the response"
      | Some l -> (
          match Json.parse l with
          | Error m -> Diag.fatalf ~code:"E0911" "malformed response line: %s" m
          | Ok j ->
              let acc = j :: acc in
              if Json.get_string (Json.member "event" j) = Some "done" then List.rev acc
              else collect acc)
    in
    collect []

  let shutdown_server path =
    let c = connect path in
    Fun.protect ~finally:(fun () -> close c) @@ fun () ->
    ignore (request c {|{"op":"shutdown"}|})
end
