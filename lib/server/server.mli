(** The [longnail serve] compile daemon (docs/SERVE.md): a long-running
    process that keeps one {!Longnail.Flow.session} (and optionally a
    persistent {!Cache.Disk} store) warm across many requests, speaking
    line-delimited JSON over a Unix-domain socket.

    Wire protocol, one JSON object per line in both directions:
    {v
    -> {"id":1,"op":"compile","isax":"zbb_subset","cores":["vexriscv","cva5"],
        "knobs":{"scheduler":"asap"},"jobs":4,"profile":true}
    <- {"id":1,"event":"target","ok":true,"core":"vexriscv","funcs":[...],"yaml":"..."}
    <- {"id":1,"event":"target","ok":true,"core":"cva5",...}
    <- {"id":1,"event":"done","ok":true,"op":"compile","targets":2,"failed":0,"profile":{...}}
    v}

    Every request is answered by zero or more ["event":"target"] lines
    followed by exactly one ["event":"done"] line echoing the request
    [id] (JSON [null] when absent). Errors never kill the daemon: a
    malformed request gets a done-event carrying an E0910 diagnostic, a
    failing compile target gets a per-target diagnostic while its batch
    siblings still answer, and transport problems close only the one
    connection (E0911 is reserved for client/daemon transport faults).
    Ops: [ping], [stats], [compile], [lint], [dse], [shutdown]. *)

(** Minimal JSON: just enough for the wire protocol (the container has
    no JSON library). Parses a strict superset of what the daemon emits;
    numbers are floats, strings are UTF-8 (["\uXXXX"] escapes decoded,
    surrogate pairs not supported), duplicate object keys keep the first
    binding via {!member}. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  (** Whole-string parse; [Error] carries a message with a byte offset. *)

  val to_string : t -> string

  val quote : string -> string
  (** [quote s] is [s] escaped and wrapped in double quotes — a JSON
      string literal. *)

  val number_to_string : float -> string
  (** Integral floats print without a fractional part (["3"], not
      ["3."]), so round-tripped ints stay parseable by [int_of_string]. *)

  val member : string -> t -> t
  (** [member k j] is the [k] field of object [j], or [Null] when absent
      or when [j] is not an object. *)

  val get_string : t -> string option

  val get_int : t -> int option
  (** [Num] with an integral value. *)

  val get_float : t -> float option
  val get_bool : t -> bool option
  val get_list : t -> t list option
end

val protocol_version : int

type t
(** A daemon: the listening socket plus the shared compile session. *)

val create : ?jobs:int -> session:Longnail.Flow.session -> socket:string -> unit -> t
(** Bind a Unix-domain socket at [socket] and prepare to serve requests
    against [session]. [jobs] is the default worker-domain count for
    requests that do not name their own (default 1). A stale socket file
    left by a dead daemon is unlinked and reclaimed; raises
    {!Diag.Fatal} (E0911) when a live daemon already answers on the
    path, when the path exists but is not a socket, or when binding
    fails. *)

val socket_path : t -> string
val session : t -> Longnail.Flow.session

val requests_served : t -> int
(** Request lines handled so far (including malformed ones). *)

val handle_line : t -> string -> string list
(** The pure protocol step: one request line in, the response lines out
    (no transport). Exposed so tests and tooling can drive the protocol
    without sockets; {!serve} calls exactly this per received line. *)

val serve : t -> unit
(** Run the accept/dispatch loop on the calling domain until {!stop} or
    a [shutdown] request. Single-threaded by design — requests are
    handled in arrival order, and a request's internal parallelism comes
    from its [jobs] worker domains. SIGPIPE is ignored for the loop's
    duration; on exit every connection is closed and the socket file
    unlinked. *)

val stop : t -> unit
(** Ask a running {!serve} loop to exit; safe to call from another
    domain (the loop polls between [select] rounds, so it winds down
    within its poll interval). *)

(** Client-side helpers for the same wire protocol — used by the
    [longnail client] subcommand, the bench harness and the tests. *)
module Client : sig
  type t

  val connect : ?retries:int -> ?retry_delay:float -> string -> t
  (** Connect to a daemon socket, retrying a refused/missing socket
      [retries] extra times [retry_delay] seconds apart (defaults 0 and
      0.1 — pass [~retries] when racing a just-spawned daemon). Raises
      {!Diag.Fatal} (E0911) when every attempt fails. *)

  val close : t -> unit

  val send : t -> string -> unit
  (** Send one request line ([send] appends the newline). *)

  val recv : t -> string option
  (** Next response line, [None] at end of stream. *)

  val request : t -> string -> Json.t list
  (** [send] one request, then collect response lines through the
      terminating ["event":"done"] line, parsed. Raises {!Diag.Fatal}
      (E0911) if the stream ends early or a line is not JSON. *)

  val shutdown_server : string -> unit
  (** Connect to [path] and ask the daemon to exit. *)
end
