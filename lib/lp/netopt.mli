(** Optimal solver for linear objectives over difference-constraint systems.

   Solves:   minimize    sum_i cost_i * t_i
             subject to  t_dst - t_src >= w        (difference constraints)
                         lower_i <= t_i <= upper_i
                         t integral

   This is the shape the Longnail scheduling ILP (Figure 7 of the paper)
   takes after the lifetime variables are eliminated analytically:
   at any optimum l_ij = t_j - t_i, so the objective
   "sum t_i + sum l_ij" collapses to a weighted sum of start times with
   integer node costs (1 + indegree - outdegree).

   Algorithm: the feasible set is a lattice polyhedron whose least element
   is the ASAP solution (computed by Bellman-Ford longest paths). A linear
   function restricted to such a lattice is L-natural-convex, so steepest
   ascent over "shift a closed set S by +delta" moves reaches the global
   optimum; the best improving set is a minimum-weight closed set under
   the tight-edge closure relation, found with a max-flow min-cut
   computation (Dinic). Each accepted move strictly decreases the
   objective, guaranteeing termination.

   Exactness is cross-checked against the branch-and-bound MILP solver in
   the test suite. *)

type edge = { e_src : int; e_dst : int; e_w : int; }
exception Unbounded
module Maxflow :
  sig
    type arc = {
      dst : int;
      mutable cap : int;
      mutable flow : int;
      rev : int;
    }
    type t = {
      n : int;
      adj : arc array array;
      mutable adj_build : arc list array;
    }
    val inf : int
    val create : int -> t
    val add_edge : t -> int -> int -> int -> unit
    val freeze : t -> t
    val max_flow : t -> int -> int -> int * int array
  end
val asap :
  ?init:int array ->
  ?rounds:int ref ->
  n:int ->
  edges:edge list ->
  lower:int array -> upper:int option array -> unit -> int array option
(** The componentwise-minimal feasible point (Bellman-Ford longest
    paths). With [init] the relaxation warm-starts from [max init lower];
    the result is identical to a cold run whenever that start is below
    the minimal solution — in particular when [init] is the ASAP result
    of a system this one only tightens. [rounds] accumulates relaxation
    sweeps. *)

val ascend :
  n:int ->
  edges:edge list ->
  upper:int option array -> cost:int array -> int array -> int array
(** The steepest-ascent phase, from a minimal element produced by
    {!asap} (mutated in place and returned). Deterministic: equal inputs
    give equal outputs, so a warm-started {!asap} feeding this yields
    byte-identical schedules to a cold solve. Raises {!Unbounded}. *)

val solve :
  ?init:int array ->
  ?rounds:int ref ->
  n:int ->
  edges:edge list ->
  lower:int array ->
  upper:int option array -> cost:int array -> unit -> int array option
(** [asap] composed with [ascend]. *)

val objective : cost:int array -> int array -> int
