(* Solver for systems of difference constraints.

   The precedence part of the Longnail scheduling problem (constraints C1,
   C3, C5 in Figure 7 of the paper) is a system of constraints of the form
   x_j - x_i >= w plus per-variable bounds. Such systems admit a
   componentwise-minimal solution computed by longest paths from a virtual
   source (Bellman-Ford), which also minimizes the sum of start times. This
   is used as the fast scheduling path and as an ablation baseline against
   the full ILP.

   [solve_from] warm-starts the relaxation from a previous solution: any
   starting point below the (new) minimal solution converges to exactly
   that minimal solution, so when a system is only tightened — weights and
   lower bounds only increase — the previous answer is a valid launch pad
   and typically needs just a round or two of repair. *)

type edge = { src : int; dst : int; weight : int }  (* x_dst - x_src >= weight *)

type t = {
  nvars : int;
  mutable edges : edge list;
  lower : int array;
  upper : int option array;
}

let create nvars =
  { nvars; edges = []; lower = Array.make nvars 0; upper = Array.make nvars None }

let add_ge t ~src ~dst ~weight = t.edges <- { src; dst; weight } :: t.edges
let set_lower t v lo = t.lower.(v) <- max t.lower.(v) lo

let set_upper t v hi =
  t.upper.(v) <- (match t.upper.(v) with None -> Some hi | Some h -> Some (min h hi))

(* Longest-path relaxation from [dist] (already >= the lower bounds and
   <= the minimal solution). Mutates [dist] into the componentwise-minimal
   feasible assignment; [None] on infeasibility (positive cycle or an
   upper bound violated). [rounds] accumulates relaxation sweeps. *)
let relax t dist ~rounds =
  let changed = ref true and sweeps = ref 0 in
  let feasible = ref true in
  while !changed && !feasible do
    changed := false;
    incr sweeps;
    if !sweeps > t.nvars + 1 then feasible := false
    else
      List.iter
        (fun { src; dst; weight } ->
          if dist.(src) + weight > dist.(dst) then begin
            dist.(dst) <- dist.(src) + weight;
            changed := true
          end)
        t.edges
  done;
  (match rounds with Some r -> r := !r + !sweeps | None -> ());
  if not !feasible then None
  else begin
    let ok = ref true in
    Array.iteri
      (fun v d -> match t.upper.(v) with Some hi when d > hi -> ok := false | _ -> ())
      dist;
    if !ok then Some dist else None
  end

let solve ?rounds t = relax t (Array.copy t.lower) ~rounds

let solve_from ?rounds t ~(init : int array) =
  let dist = Array.mapi (fun v lo -> max lo init.(v)) t.lower in
  relax t dist ~rounds
