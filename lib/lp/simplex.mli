(** Exact two-phase primal simplex over rationals, with warm restarts.

   Dense tableau implementation with Bland's anti-cycling rule, which
   together with exact {!Rat} arithmetic guarantees termination. Problems
   produced by the Longnail scheduler have tens of variables, so the O(m*n)
   pricing per iteration is irrelevant.

   The solver works on the standard form: minimize c.x subject to the given
   rows, with all structural variables constrained to x >= 0. General bounds
   and integrality live one layer up, in {!Lp}.

   {!solve_ext} additionally returns the final optimal basis and accepts a
   basis from an earlier solve over the {e same coefficient matrix and
   objective} (only right-hand sides changed). Such a basis stays dual
   feasible, so the warm path re-pivots onto it and repairs primal
   feasibility with the dual simplex — no Phase-1 artificials. *)

type rel = Le | Ge | Eq

type outcome =
  | Optimal of Rat.t array * Rat.t  (** structural variable values, objective *)
  | Infeasible
  | Unbounded

(** Cumulative pivot counters; one record can be threaded through many
    solves (an {!Lp.Instance} does exactly that across resolves). *)
type stats = {
  mutable pivots : int;  (** total pivots, all phases *)
  mutable phase1_pivots : int;  (** cold-start Phase-1 pivots *)
  mutable dual_pivots : int;  (** warm-restart feasibility-repair pivots *)
}

val stats : unit -> stats
(** Fresh all-zero counters. *)

exception Iteration_limit of int
(** Raised (carrying the budget) when a single solve exceeds its pivot
    budget. Bland's rule rules out cycling, so this only fires on
    pathologically large instances; the flow maps it to the structured
    E0904 diagnostic instead of appearing to hang. *)

val default_budget : int

type tableau = {
  rows : Rat.t array array;
  rhs : Rat.t array;
  basis : int array;
  ncols : int;
  nstruct : int;
  art_start : int;
}

val reduced_costs : tableau -> Rat.t array -> Rat.t array
val objective_value : tableau -> Rat.t array -> Rat.t
val pivot : tableau -> row:int -> col:int -> unit

val ratio_test : tableau -> col:int -> int
(** Bland ratio test with the degenerate-ratio early exit: the tableau
    invariant rhs >= 0 makes a zero ratio synonymous with a zero rhs, so
    an exact zero-ratio match short-circuits all remaining divisions and
    only tie-breaks further zero-rhs rows on the basic index. Returns the
    leaving row, or [-1] when the column is unbounded. *)

type result = {
  r_outcome : outcome;
  r_basis : int array option;
      (** the optimal basis over the structural|slack column layout, for
          reuse by a later warm solve; [None] unless the outcome is
          [Optimal] with an artificial-free basis *)
  r_warm : bool;  (** the warm path was actually taken *)
}

val solve_ext :
  ?stats:stats ->
  ?budget:int ->
  ?basis:int array ->
  obj:Rat.t array ->
  rows:(Rat.t array * rel * Rat.t) list ->
  unit ->
  result
(** One simplex solve. With [basis] (from a previous [r_basis] over the
    same rows-and-objective structure), tries the warm dual-simplex path
    first and falls back to a cold two-phase solve if the basis no longer
    fits (shape mismatch, singular, or dual infeasible). [budget] bounds
    the pivots of this solve (default {!default_budget}); exceeding it
    raises {!Iteration_limit}. *)

val solve :
  obj:Rat.t array -> rows:(Rat.t array * rel * Rat.t) list -> outcome
(** [solve_ext] with defaults, returning only the outcome. *)
