(* Mixed-integer linear programming by branch & bound over the exact
   {!Simplex} solver.

   This module replaces the paper's Cbc/OR-Tools backend. It offers a small
   problem-builder API: create variables (with lower/upper bounds and an
   integrality flag), add linear constraints, set a minimization objective,
   and solve. All solutions are exact rationals; integer variables are
   branched on until integral. *)

module Rat = Rat
module Simplex = Simplex
module Difference = Difference
module Netopt = Netopt

type rel = Le | Ge | Eq

type var = int

type constr = { coeffs : (Rat.t * var) list; rel : rel; rhs : Rat.t }

type problem = {
  mutable nvars : int;
  mutable names : string list;  (* reversed *)
  mutable lower : Rat.t list;  (* reversed, per var *)
  mutable upper : Rat.t option list;  (* reversed, per var *)
  mutable integer : bool list;  (* reversed, per var *)
  mutable constraints : constr list;  (* reversed *)
  mutable objective : (Rat.t * var) list;
}

type solution = { values : Rat.t array; objective : Rat.t }

type outcome = [ `Optimal of solution | `Infeasible | `Unbounded ]

let create () =
  {
    nvars = 0;
    names = [];
    lower = [];
    upper = [];
    integer = [];
    constraints = [];
    objective = [];
  }

let add_var ?(lower = Rat.zero) ?upper ?(integer = false) p ~name =
  let v = p.nvars in
  p.nvars <- v + 1;
  p.names <- name :: p.names;
  p.lower <- lower :: p.lower;
  p.upper <- upper :: p.upper;
  p.integer <- integer :: p.integer;
  v

let add_int_var ?(lower = 0) ?upper p ~name =
  add_var p ~name ~integer:true ~lower:(Rat.of_int lower)
    ?upper:(Option.map Rat.of_int upper)

let add_constraint p coeffs rel rhs = p.constraints <- { coeffs; rel; rhs } :: p.constraints

let add_int_constraint p coeffs rel rhs =
  add_constraint p
    (List.map (fun (c, v) -> (Rat.of_int c, v)) coeffs)
    rel (Rat.of_int rhs)

let set_objective (p : problem) coeffs = p.objective <- coeffs

let set_int_objective (p : problem) coeffs = p.objective <- List.map (fun (c, v) -> (Rat.of_int c, v)) coeffs

let var_name p v = List.nth (List.rev p.names) v

(* Render the problem in an LP-like text format (used by the fig7 bench to
   show the generated ILP). *)
let to_text (p : problem) =
  let buf = Buffer.create 256 in
  let names = Array.of_list (List.rev p.names) in
  let pp_term first (c, v) =
    let s = Rat.to_string c in
    if first then Printf.sprintf "%s %s" s names.(v)
    else if Rat.sign c >= 0 then Printf.sprintf " + %s %s" s names.(v)
    else Printf.sprintf " - %s %s" (Rat.to_string (Rat.neg c)) names.(v)
  in
  Buffer.add_string buf "minimize\n  ";
  List.iteri (fun i t -> Buffer.add_string buf (pp_term (i = 0) t)) p.objective;
  Buffer.add_string buf "\nsubject to\n";
  List.iter
    (fun { coeffs; rel; rhs } ->
      Buffer.add_string buf "  ";
      List.iteri (fun i t -> Buffer.add_string buf (pp_term (i = 0) t)) coeffs;
      Buffer.add_string buf
        (Printf.sprintf " %s %s\n"
           (match rel with Le -> "<=" | Ge -> ">=" | Eq -> "=")
           (Rat.to_string rhs)))
    (List.rev p.constraints);
  Buffer.add_string buf "bounds\n";
  let lower = Array.of_list (List.rev p.lower) in
  let upper = Array.of_list (List.rev p.upper) in
  let integer = Array.of_list (List.rev p.integer) in
  for v = 0 to p.nvars - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  %s <= %s%s%s\n" (Rat.to_string lower.(v)) names.(v)
         (match upper.(v) with None -> "" | Some u -> Printf.sprintf " <= %s" (Rat.to_string u))
         (if integer.(v) then "  (integer)" else ""))
  done;
  Buffer.contents buf

(* Solve the LP relaxation of [p] with additional branching rows.
   Variables are shifted by their lower bounds so that the simplex sees
   y = x - lo >= 0. With [basis] (the structural|slack basis of an
   earlier relaxation of the same problem shape) the simplex takes its
   warm dual-restart path; the returned {!Simplex.result} carries the
   final basis for the next warm solve. *)
let solve_relaxation ?stats ?budget ?basis (p : problem) ~extra_rows =
  let n = p.nvars in
  let lower = Array.of_list (List.rev p.lower) in
  let upper = Array.of_list (List.rev p.upper) in
  let obj = Array.make n Rat.zero in
  List.iter (fun (c, v) -> obj.(v) <- Rat.add obj.(v) c) p.objective;
  let shift_row { coeffs; rel; rhs } =
    (* sum c_v x_v REL rhs  ==>  sum c_v y_v REL rhs - sum c_v lo_v *)
    let a = Array.make n Rat.zero in
    let shift = ref Rat.zero in
    List.iter
      (fun (c, v) ->
        a.(v) <- Rat.add a.(v) c;
        shift := Rat.add !shift (Rat.mul c lower.(v)))
      coeffs;
    let rel = match rel with Le -> Simplex.Le | Ge -> Simplex.Ge | Eq -> Simplex.Eq in
    (a, rel, Rat.sub rhs !shift)
  in
  let bound_rows = ref [] in
  Array.iteri
    (fun v up ->
      match up with
      | None -> ()
      | Some u ->
          let a = Array.make n Rat.zero in
          a.(v) <- Rat.one;
          bound_rows := (a, Simplex.Le, Rat.sub u lower.(v)) :: !bound_rows)
    upper;
  let rows =
    List.map shift_row (List.rev p.constraints)
    @ List.map shift_row extra_rows
    @ !bound_rows
  in
  let res = Simplex.solve_ext ?stats ?budget ?basis ~obj ~rows () in
  ( (match res.Simplex.r_outcome with
    | Simplex.Infeasible -> `Infeasible
    | Simplex.Unbounded -> `Unbounded
    | Simplex.Optimal (y, objval) ->
        let x = Array.mapi (fun v yv -> Rat.add yv lower.(v)) y in
        (* the shifted objective differs from the true one by sum c_v lo_v *)
        let fix = ref objval in
        List.iter (fun (c, v) -> fix := Rat.add !fix (Rat.mul c lower.(v))) p.objective;
        `Optimal (x, !fix)),
    res )

exception Node_limit
exception Unbounded_relaxation

(* Branch & bound. [seed] is a known-feasible incumbent (value vector +
   objective) that prunes from the first node — how a persistent instance
   resumes from the previous grid point's solution. [root_basis] warm-starts
   the root relaxation only (branching rows change the tableau shape of
   child nodes). Returns the outcome, the root relaxation's final basis
   (for the next warm solve) and whether the warm simplex path ran. *)
let solve_bb ?(max_nodes = 50_000) ?stats ?budget ?root_basis ?seed ?nodes:nodes_acc
    (p : problem) : outcome * int array option * bool =
  let integer = Array.of_list (List.rev p.integer) in
  let incumbent = ref seed in
  let nodes = ref 0 in
  let root_out = ref None and root_warm = ref false in
  let better obj = match !incumbent with None -> true | Some (_, o) -> Rat.lt obj o in
  let rec branch ~root extra_rows =
    incr nodes;
    if !nodes > max_nodes then raise Node_limit;
    let relax, sres =
      solve_relaxation ?stats ?budget ?basis:(if root then root_basis else None) p
        ~extra_rows
    in
    if root then begin
      root_out := sres.Simplex.r_basis;
      root_warm := sres.Simplex.r_warm
    end;
    match relax with
    | `Infeasible -> ()
    | `Unbounded ->
        (* with an incumbent this node can't prove unboundedness of the MILP;
           without one we propagate it via an exception *)
        raise Unbounded_relaxation
    | `Optimal (x, obj) ->
        if better obj then begin
          (* find a fractional integer variable *)
          let frac = ref (-1) in
          (try
             Array.iteri
               (fun v xv ->
                 if integer.(v) && not (Rat.is_integer xv) then begin
                   frac := v;
                   raise Exit
                 end)
               x
           with Exit -> ());
          if !frac < 0 then incumbent := Some (x, obj)
          else begin
            let v = !frac and xv = x.(!frac) in
            let floor_row =
              { coeffs = [ (Rat.one, v) ]; rel = Le; rhs = Rat.of_bn (Rat.floor xv) }
            in
            let ceil_row =
              { coeffs = [ (Rat.one, v) ]; rel = Ge; rhs = Rat.of_bn (Rat.ceil xv) }
            in
            branch ~root:false (floor_row :: extra_rows);
            branch ~root:false (ceil_row :: extra_rows)
          end
        end
  in
  let finish () = (match nodes_acc with Some r -> r := !r + !nodes | None -> ()) in
  let of_incumbent () =
    match !incumbent with
    | None -> `Infeasible
    | Some (x, obj) -> `Optimal { values = x; objective = obj }
  in
  match branch ~root:true [] with
  | () ->
      finish ();
      (of_incumbent (), !root_out, !root_warm)
  | exception Unbounded_relaxation ->
      finish ();
      (`Unbounded, !root_out, !root_warm)
  | exception Node_limit ->
      finish ();
      (of_incumbent (), !root_out, !root_warm)

let solve ?max_nodes (p : problem) : outcome =
  let outcome, _, _ = solve_bb ?max_nodes p in
  outcome

let value_int sol v = Rat.to_int_exn sol.values.(v)

(* ---- persistent solver instances --------------------------------------

   [Instance.create] snapshots a problem's structure (variables,
   constraint coefficient patterns, objective); [update_bounds] /
   [update_rhs] then mutate only the numbers that scheduling knobs move,
   and [resolve] re-solves with everything the previous resolve learned:

   - the instance classifies the constraint structure once. Systems of
     difference constraints (rows of the form x_j - x_i REL w, single
     +-x_v REL b bounds, or constant rows) never touch the simplex:
     with a nonnegative objective the Bellman-Ford least element is
     optimal ([Difference]); with any negative (integer) costs the
     lattice/min-cut solver takes over ([Netopt]). Integrality flags are
     irrelevant on this path — difference systems are totally unimodular,
     so the LP optimum is integral either way.
   - fast-path resolves warm-start Bellman-Ford from the previous least
     element whenever the system only tightened (every edge weight and
     lower bound no smaller) — the relaxation then just repairs the few
     entries the tightening moved, and provably converges to the exact
     same least element a cold run computes.
   - simplex resolves warm-start the root relaxation from the previous
     optimal basis (dual-simplex repair, no Phase 1) and seed branch &
     bound with the previous incumbent when it is still feasible.

   Warm and cold resolves return identical objectives (and on the fast
   path identical value vectors); the QCheck properties in test_lp pin
   this down. *)

module Instance = struct
  type klass = Difference | Netflow | Milp

  let klass_name = function
    | Difference -> "difference"
    | Netflow -> "netflow"
    | Milp -> "milp"

  (* Cumulative counters across every [resolve] of one instance. *)
  type stats = {
    is_resolves : int;
    is_warm_hits : int;  (* resolves that reused previous solver state *)
    is_warm_misses : int;  (* resolves that had to start cold *)
    is_fastpath : int;  (* resolves served without touching the simplex *)
    is_bf_rounds : int;  (* Bellman-Ford relaxation sweeps, fast path *)
    is_bnb_nodes : int;  (* branch & bound nodes, simplex path *)
    is_pivots : int;  (* simplex pivots, all phases *)
    is_phase1_pivots : int;
    is_dual_pivots : int;  (* warm-restart repair pivots *)
  }

  let zero_stats =
    {
      is_resolves = 0;
      is_warm_hits = 0;
      is_warm_misses = 0;
      is_fastpath = 0;
      is_bf_rounds = 0;
      is_bnb_nodes = 0;
      is_pivots = 0;
      is_phase1_pivots = 0;
      is_dual_pivots = 0;
    }

  let add_stats a b =
    {
      is_resolves = a.is_resolves + b.is_resolves;
      is_warm_hits = a.is_warm_hits + b.is_warm_hits;
      is_warm_misses = a.is_warm_misses + b.is_warm_misses;
      is_fastpath = a.is_fastpath + b.is_fastpath;
      is_bf_rounds = a.is_bf_rounds + b.is_bf_rounds;
      is_bnb_nodes = a.is_bnb_nodes + b.is_bnb_nodes;
      is_pivots = a.is_pivots + b.is_pivots;
      is_phase1_pivots = a.is_phase1_pivots + b.is_phase1_pivots;
      is_dual_pivots = a.is_dual_pivots + b.is_dual_pivots;
    }

  (* the net-coefficient shape of one constraint row *)
  type row_shape =
    | Pair of { pos : var; neg : var }  (* x_pos - x_neg REL rhs *)
    | Single of { v : var; sign : int }  (* sign * x_v REL rhs *)
    | Constant  (* 0 REL rhs *)
    | General_row

  type t = {
    nvars : int;
    names : string array;
    integer : bool array;
    objective : (Rat.t * var) list;
    rows : constr array;  (* structure snapshot, declaration order *)
    shapes : row_shape array;
    klass : klass;
    cost : Rat.t array;  (* net objective coefficient per variable *)
    int_cost : int array option;  (* when every cost is integral *)
    (* the mutable data: current rhs per row and current bounds *)
    rhs : Rat.t array;
    lower : Rat.t array;
    upper : Rat.t option array;
    (* warm state *)
    mutable prev_fast : (int array * int array * int array) option;
        (* fast path: (edge weights, effective lowers, least element) of
           the previous resolve, for the monotone-tightening check *)
    mutable prev_basis : int array option;  (* last optimal root LP basis *)
    mutable prev_upper_shape : bool array;  (* upper Some/None pattern then *)
    mutable prev_incumbent : (Rat.t array * Rat.t) option;
    (* counters *)
    mutable resolves : int;
    mutable warm_hits : int;
    mutable warm_misses : int;
    mutable fastpath : int;
    bf_rounds : int ref;
    bnb_nodes : int ref;
    simplex : Simplex.stats;
  }

  let shape_of nvars (c : constr) =
    let net = Array.make nvars Rat.zero in
    List.iter (fun (q, v) -> net.(v) <- Rat.add net.(v) q) c.coeffs;
    let terms = ref [] in
    for v = nvars - 1 downto 0 do
      if not (Rat.is_zero net.(v)) then terms := (v, net.(v)) :: !terms
    done;
    let is_one q = Rat.equal q Rat.one and is_mone q = Rat.equal q Rat.minus_one in
    match !terms with
    | [] -> Constant
    | [ (v, q) ] when is_one q -> Single { v; sign = 1 }
    | [ (v, q) ] when is_mone q -> Single { v; sign = -1 }
    | [ (v1, q1); (v2, q2) ] when is_one q1 && is_mone q2 -> Pair { pos = v1; neg = v2 }
    | [ (v1, q1); (v2, q2) ] when is_mone q1 && is_one q2 -> Pair { pos = v2; neg = v1 }
    | _ -> General_row

  let create (p : problem) : t =
    let nvars = p.nvars in
    let rows = Array.of_list (List.rev p.constraints) in
    let shapes = Array.map (shape_of nvars) rows in
    let cost = Array.make nvars Rat.zero in
    List.iter (fun (q, v) -> cost.(v) <- Rat.add cost.(v) q) p.objective;
    let all_diff = Array.for_all (fun s -> s <> General_row) shapes in
    let int_cost =
      if Array.for_all Rat.is_integer cost then
        Some (Array.map Rat.to_int_exn cost)
      else None
    in
    let klass =
      if not all_diff then Milp
      else if Array.for_all (fun q -> Rat.sign q >= 0) cost then Difference
      else if int_cost <> None then Netflow
      else Milp
    in
    {
      nvars;
      names = Array.of_list (List.rev p.names);
      integer = Array.of_list (List.rev p.integer);
      objective = p.objective;
      rows;
      shapes;
      klass;
      cost;
      int_cost;
      rhs = Array.map (fun (c : constr) -> c.rhs) rows;
      lower = Array.of_list (List.rev p.lower);
      upper = Array.of_list (List.rev p.upper);
      prev_fast = None;
      prev_basis = None;
      prev_upper_shape = [||];
      prev_incumbent = None;
      resolves = 0;
      warm_hits = 0;
      warm_misses = 0;
      fastpath = 0;
      bf_rounds = ref 0;
      bnb_nodes = ref 0;
      simplex = Simplex.stats ();
    }

  let classify t = t.klass
  let nrows t = Array.length t.rows
  let var_name t v = t.names.(v)

  let update_rhs t row rhs =
    if row < 0 || row >= Array.length t.rows then
      invalid_arg (Printf.sprintf "Lp.Instance.update_rhs: row %d of %d" row (nrows t));
    t.rhs.(row) <- rhs

  let update_bounds t v ~lower ~upper =
    if v < 0 || v >= t.nvars then
      invalid_arg (Printf.sprintf "Lp.Instance.update_bounds: var %d of %d" v t.nvars);
    t.lower.(v) <- lower;
    t.upper.(v) <- upper

  let stats t =
    {
      is_resolves = t.resolves;
      is_warm_hits = t.warm_hits;
      is_warm_misses = t.warm_misses;
      is_fastpath = t.fastpath;
      is_bf_rounds = !(t.bf_rounds);
      is_bnb_nodes = !(t.bnb_nodes);
      is_pivots = t.simplex.Simplex.pivots;
      is_phase1_pivots = t.simplex.Simplex.phase1_pivots;
      is_dual_pivots = t.simplex.Simplex.dual_pivots;
    }

  (* ---- the difference-system fast path ---- *)

  (* All rhs / bound data integral? (the coefficients are structurally
     +-1, so this is the only data condition the fast path needs) *)
  let data_integral t =
    Array.for_all Rat.is_integer t.rhs
    && Array.for_all Rat.is_integer t.lower
    && Array.for_all
         (function None -> true | Some u -> Rat.is_integer u)
         t.upper

  (* Lower the current data onto a difference system: one edge per Ge/Le
     pair row (two per Eq), bound rows folded into per-variable bounds,
     constant rows checked directly. Edge order is structural, so the
     weight vector is comparable across resolves. Returns [None] when a
     constant row is violated (trivially infeasible). *)
  let to_difference t =
    let lo = Array.map Rat.to_int_exn t.lower in
    let up = Array.map (Option.map Rat.to_int_exn) t.upper in
    let edges = ref [] and weights = ref [] in
    let trivially_infeasible = ref false in
    let tighten_lower v b = if b > lo.(v) then lo.(v) <- b in
    let tighten_upper v b =
      up.(v) <- (match up.(v) with None -> Some b | Some u -> Some (min u b))
    in
    let add_edge ~src ~dst ~weight =
      edges := { Difference.src; dst; weight } :: !edges;
      weights := weight :: !weights
    in
    Array.iteri
      (fun i shape ->
        let rel = t.rows.(i).rel in
        let b = Rat.to_int_exn t.rhs.(i) in
        match shape with
        | Pair { pos; neg } ->
            (* x_pos - x_neg REL b *)
            if rel = Ge || rel = Eq then add_edge ~src:neg ~dst:pos ~weight:b;
            if rel = Le || rel = Eq then add_edge ~src:pos ~dst:neg ~weight:(-b)
        | Single { v; sign = 1 } ->
            if rel = Ge || rel = Eq then tighten_lower v b;
            if rel = Le || rel = Eq then tighten_upper v b
        | Single { v; sign = _ } ->
            (* -x_v REL b  <=>  x_v inverted-REL -b *)
            if rel = Ge || rel = Eq then tighten_upper v (-b);
            if rel = Le || rel = Eq then tighten_lower v (-b)
        | Constant ->
            let sat =
              match rel with Ge -> 0 >= b | Le -> 0 <= b | Eq -> 0 = b
            in
            if not sat then trivially_infeasible := true
        | General_row -> assert false)
      t.shapes;
    if !trivially_infeasible then None
    else Some (List.rev !edges, Array.of_list (List.rev !weights), lo, up)

  (* monotone tightening vs. the previous fast resolve: every edge weight
     and effective lower bound no smaller (uppers only gate feasibility,
     they never move the least element, so they are free to change) *)
  let tightened ~prev_w ~prev_lo ~w ~lo =
    Array.length prev_w = Array.length w
    && Array.for_all2 (fun old now -> now >= old) prev_w w
    && Array.for_all2 (fun old now -> now >= old) prev_lo lo

  let rat_objective t (sol : int array) =
    let v = ref Rat.zero in
    Array.iteri
      (fun i q -> if not (Rat.is_zero q) then v := Rat.add !v (Rat.mul q (Rat.of_int sol.(i))))
      t.cost;
    !v

  let optimal_of_ints t sol =
    `Optimal { values = Array.map Rat.of_int sol; objective = rat_objective t sol }

  let resolve_fast t ~netflow (edges, w, lo, up) : outcome =
    let warm_init =
      match t.prev_fast with
      | Some (prev_w, prev_lo, prev_sol) when tightened ~prev_w ~prev_lo ~w ~lo ->
          Some prev_sol
      | _ -> None
    in
    if warm_init <> None then t.warm_hits <- t.warm_hits + 1
    else t.warm_misses <- t.warm_misses + 1;
    t.fastpath <- t.fastpath + 1;
    let n = t.nvars in
    let nedges =
      List.map (fun (e : Difference.edge) -> { Netopt.e_src = e.src; e_dst = e.dst; e_w = e.weight }) edges
    in
    match
      Netopt.asap ?init:warm_init ~rounds:t.bf_rounds ~n ~edges:nedges ~lower:lo ~upper:up ()
    with
    | None ->
        t.prev_fast <- None;
        `Infeasible
    | Some least ->
        t.prev_fast <- Some (w, lo, Array.copy least);
        if not netflow then optimal_of_ints t least
        else begin
          (* negative costs: ascend from the least element (min-cut moves) *)
          let cost = match t.int_cost with Some c -> c | None -> assert false in
          match Netopt.ascend ~n ~edges:nedges ~upper:up ~cost least with
          | sol -> optimal_of_ints t sol
          | exception Netopt.Unbounded -> `Unbounded
        end

  (* ---- the simplex path ---- *)

  let to_problem t : problem =
    {
      nvars = t.nvars;
      names = List.rev (Array.to_list t.names);
      lower = List.rev (Array.to_list t.lower);
      upper = List.rev (Array.to_list t.upper);
      integer = List.rev (Array.to_list t.integer);
      constraints =
        List.rev
          (Array.to_list
             (Array.mapi (fun i (c : constr) -> { c with rhs = t.rhs.(i) }) t.rows));
      objective = t.objective;
    }

  (* is the previous incumbent still feasible under the current data? *)
  let point_feasible t (x : Rat.t array) =
    Array.length x = t.nvars
    && Array.for_all2 (fun lo xv -> Rat.le lo xv) t.lower x
    && Array.for_all2
         (fun up xv -> match up with None -> true | Some u -> Rat.le xv u)
         t.upper x
    && Array.for_all2 (fun int xv -> (not int) || Rat.is_integer xv) t.integer x
    && Array.for_all2
         (fun (c : constr) rhs ->
           let v = ref Rat.zero in
           List.iter (fun (q, var) -> v := Rat.add !v (Rat.mul q x.(var))) c.coeffs;
           match c.rel with Le -> Rat.le !v rhs | Ge -> Rat.le rhs !v | Eq -> Rat.equal !v rhs)
         t.rows t.rhs

  let upper_shape t = Array.map Option.is_some t.upper

  let resolve_milp ?max_nodes t : outcome =
    let shape = upper_shape t in
    let root_basis =
      match t.prev_basis with Some b when t.prev_upper_shape = shape -> Some b | None | Some _ -> None
    in
    let seed =
      match t.prev_incumbent with
      | Some (x, obj) when point_feasible t x -> Some (x, obj)
      | _ -> None
    in
    let outcome, basis, warm =
      solve_bb ?max_nodes ~stats:t.simplex ?root_basis ?seed ~nodes:t.bnb_nodes
        (to_problem t)
    in
    if warm then t.warm_hits <- t.warm_hits + 1 else t.warm_misses <- t.warm_misses + 1;
    t.prev_basis <- basis;
    t.prev_upper_shape <- shape;
    (match outcome with
    | `Optimal { values; objective } -> t.prev_incumbent <- Some (Array.copy values, objective)
    | `Infeasible | `Unbounded -> t.prev_incumbent <- None);
    outcome

  let resolve ?max_nodes t : outcome =
    t.resolves <- t.resolves + 1;
    match t.klass with
    | (Difference | Netflow) when data_integral t -> (
        match to_difference t with
        | None ->
            (* a violated constant row: trivially infeasible *)
            t.warm_misses <- t.warm_misses + 1;
            t.prev_fast <- None;
            `Infeasible
        | Some lowered -> resolve_fast t ~netflow:(t.klass = Netflow) lowered)
    | _ -> resolve_milp ?max_nodes t
end
