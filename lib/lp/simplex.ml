(* Exact two-phase primal simplex over rationals, with warm restarts.

   Dense tableau implementation with Bland's anti-cycling rule, which
   together with exact {!Rat} arithmetic guarantees termination. Problems
   produced by the Longnail scheduler have tens of variables, so the O(m*n)
   pricing per iteration is irrelevant.

   The solver works on the standard form: minimize c.x subject to the given
   rows, with all structural variables constrained to x >= 0. General bounds
   and integrality live one layer up, in {!Lp}.

   Besides the one-shot [solve], the module exposes [solve_ext], which
   returns the final optimal basis and can warm-start from a basis produced
   by an earlier solve over the same coefficient matrix and objective:
   because only the right-hand sides change between such solves, the old
   basis stays dual feasible, so re-pivoting onto it and running the dual
   simplex repairs primal feasibility directly — no Phase-1 artificials. *)

type rel = Le | Ge | Eq

type outcome =
  | Optimal of Rat.t array * Rat.t  (* values of structural variables, objective *)
  | Infeasible
  | Unbounded

(* Cumulative pivot counters; one record can span many solves (an
   {!Lp.Instance} threads the same counters through every resolve). *)
type stats = {
  mutable pivots : int;  (* total pivots, all phases *)
  mutable phase1_pivots : int;  (* cold-start Phase-1 pivots *)
  mutable dual_pivots : int;  (* warm-restart feasibility-repair pivots *)
}

let stats () = { pivots = 0; phase1_pivots = 0; dual_pivots = 0 }

exception Iteration_limit of int

(* Pathological instances cannot cycle (Bland), but their pivot count can
   still explode combinatorially; past this budget the solve aborts with a
   structured diagnostic rather than appearing to hang. *)
let default_budget = 200_000

type tableau = {
  rows : Rat.t array array;  (* m x ncols coefficient matrix *)
  rhs : Rat.t array;  (* m *)
  basis : int array;  (* m, column basic in each row *)
  ncols : int;
  nstruct : int;  (* structural variables are columns 0..nstruct-1 *)
  art_start : int;  (* columns >= art_start are artificial *)
}

(* Reduced costs r_j = c_j - sum_i c_B(i) * T(i,j) for all columns. *)
let reduced_costs t (c : Rat.t array) =
  let m = Array.length t.rows in
  let r = Array.copy c in
  for i = 0 to m - 1 do
    let cb = c.(t.basis.(i)) in
    if not (Rat.is_zero cb) then
      for j = 0 to t.ncols - 1 do
        if not (Rat.is_zero t.rows.(i).(j)) then
          r.(j) <- Rat.sub r.(j) (Rat.mul cb t.rows.(i).(j))
      done
  done;
  r

let objective_value t (c : Rat.t array) =
  let m = Array.length t.rows in
  let v = ref Rat.zero in
  for i = 0 to m - 1 do
    v := Rat.add !v (Rat.mul c.(t.basis.(i)) t.rhs.(i))
  done;
  !v

let pivot t ~row ~col =
  let m = Array.length t.rows in
  let pinv = Rat.inv t.rows.(row).(col) in
  for j = 0 to t.ncols - 1 do
    t.rows.(row).(j) <- Rat.mul t.rows.(row).(j) pinv
  done;
  t.rhs.(row) <- Rat.mul t.rhs.(row) pinv;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = t.rows.(i).(col) in
      if not (Rat.is_zero f) then begin
        for j = 0 to t.ncols - 1 do
          t.rows.(i).(j) <- Rat.sub t.rows.(i).(j) (Rat.mul f t.rows.(row).(j))
        done;
        t.rhs.(i) <- Rat.sub t.rhs.(i) (Rat.mul f t.rhs.(row))
      end
    end
  done

(* Ratio test with the degenerate-ratio early exit. The tableau keeps the
   invariant rhs >= 0, so a candidate row's ratio is zero exactly when its
   rhs is zero — detected without dividing. Once any zero-ratio row is in
   hand no positive-rhs row can win, so the remaining rows are only scanned
   for further zero-rhs candidates (Bland tie-break on the smallest basic
   index) and never divided. Semantics are identical to the full scan. *)
let ratio_test t ~col =
  let m = Array.length t.rows in
  let best_row = ref (-1) and best_ratio = ref Rat.zero in
  let degenerate = ref false in
  for i = 0 to m - 1 do
    if Rat.sign t.rows.(i).(col) > 0 then
      if Rat.is_zero t.rhs.(i) then begin
        if (not !degenerate) || t.basis.(i) < t.basis.(!best_row) then best_row := i;
        degenerate := true
      end
      else if not !degenerate then begin
        let ratio = Rat.div t.rhs.(i) t.rows.(i).(col) in
        let better =
          !best_row < 0
          || Rat.lt ratio !best_ratio
          || (Rat.equal ratio !best_ratio && t.basis.(i) < t.basis.(!best_row))
        in
        if better then begin
          best_row := i;
          best_ratio := ratio
        end
      end
  done;
  !best_row

let spend (stats : stats) ~budget ~left =
  stats.pivots <- stats.pivots + 1;
  decr left;
  if !left < 0 then raise (Iteration_limit budget)

(* Run primal simplex iterations on [t] minimizing cost vector [c].
   [banned j] marks columns that may not enter the basis (used to keep
   artificials out in phase 2). Returns [false] on unboundedness. *)
let iterate t (c : Rat.t array) ~banned ~stats ~budget ~left ~phase1 =
  let running = ref true and bounded = ref true in
  while !running do
    let r = reduced_costs t c in
    (* Bland: entering column = smallest index with negative reduced cost *)
    let enter = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if (not (banned j)) && Rat.sign r.(j) < 0 then begin
           enter := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !enter < 0 then running := false
    else begin
      let col = !enter in
      let row = ratio_test t ~col in
      if row < 0 then begin
        bounded := false;
        running := false
      end
      else begin
        spend stats ~budget ~left;
        if phase1 then stats.phase1_pivots <- stats.phase1_pivots + 1;
        pivot t ~row ~col;
        t.basis.(row) <- col
      end
    end
  done;
  !bounded

(* Dual simplex on a dual-feasible tableau (reduced costs >= 0): pick the
   most Bland-ish leaving row (smallest basic index among negative-rhs
   rows), then the entering column by the dual ratio test. Restores the
   primal invariant rhs >= 0, or proves infeasibility. *)
let dual_iterate t (c : Rat.t array) ~stats ~budget ~left =
  let m = Array.length t.rows in
  let feasible = ref true and running = ref true in
  while !running do
    let leave = ref (-1) in
    for i = m - 1 downto 0 do
      if Rat.sign t.rhs.(i) < 0 && (!leave < 0 || t.basis.(i) < t.basis.(!leave)) then
        leave := i
    done;
    if !leave < 0 then running := false
    else begin
      let row = !leave in
      let r = reduced_costs t c in
      (* entering column: minimize r_j / -a_rj over a_rj < 0, tie-break on
         the smallest column index (the dual Bland rule) *)
      let enter = ref (-1) and best = ref Rat.zero in
      for j = 0 to t.ncols - 1 do
        if Rat.sign t.rows.(row).(j) < 0 then begin
          let ratio = Rat.div r.(j) (Rat.neg t.rows.(row).(j)) in
          if !enter < 0 || Rat.lt ratio !best then begin
            enter := j;
            best := ratio
          end
        end
      done;
      if !enter < 0 then begin
        (* the row reads "nonnegative combination = negative": infeasible *)
        feasible := false;
        running := false
      end
      else begin
        spend stats ~budget ~left;
        stats.dual_pivots <- stats.dual_pivots + 1;
        pivot t ~row ~col:!enter;
        t.basis.(row) <- !enter
      end
    end
  done;
  !feasible

(* ---- shared layout ----------------------------------------------------

   Column layout: structural | slack/surplus (one per Le/Ge row, in row
   order) | artificial (cold solves only). The slack allocation ignores
   the rhs-sign normalization the cold path applies, so basis indices
   below [art_start] mean the same thing across solves whose rhs (and
   nothing else) changed — which is what makes them reusable. *)

let layout_counts rows =
  let n_slack =
    Array.fold_left (fun n (_, rel, _) -> match rel with Eq -> n | Le | Ge -> n + 1) 0 rows
  in
  let n_art =
    Array.fold_left (fun n (_, rel, _) -> match rel with Le -> n | Ge | Eq -> n + 1) 0 rows
  in
  (n_slack, n_art)

let extract t (obj : Rat.t array) c2 =
  let x = Array.make t.nstruct Rat.zero in
  Array.iteri (fun i b -> if b >= 0 && b < t.nstruct then x.(b) <- t.rhs.(i)) t.basis;
  ignore obj;
  Optimal (x, objective_value t c2)

(* The optimal basis, for reuse by a later warm solve — only meaningful
   when it is free of artificial columns. *)
let basis_of t =
  if Array.exists (fun b -> b < 0 || b >= t.art_start) t.basis then None
  else Some (Array.copy t.basis)

(* ---- cold solve ------------------------------------------------------- *)

let cold_solve ~stats ~budget ~left ~(obj : Rat.t array) rows =
  let nstruct = Array.length obj in
  let m = Array.length rows in
  (* normalize rhs >= 0 so the artificial basis is feasible *)
  let rows =
    Array.map
      (fun (a, rel, b) ->
        if Rat.sign b < 0 then
          (Array.map Rat.neg a, (match rel with Le -> Ge | Ge -> Le | Eq -> Eq), Rat.neg b)
        else (a, rel, b))
      rows
  in
  (* artificials are needed for normalized Ge/Eq rows; slack columns keep
     the un-normalized row-order layout (see above) *)
  let n_slack, _ = layout_counts rows in
  let n_art =
    Array.fold_left (fun n (_, rel, _) -> match rel with Le -> n | Ge | Eq -> n + 1) 0 rows
  in
  let art_start = nstruct + n_slack in
  let ncols = art_start + n_art in
  let t =
    {
      rows = Array.init m (fun _ -> Array.make ncols Rat.zero);
      rhs = Array.make m Rat.zero;
      basis = Array.make m (-1);
      ncols;
      nstruct;
      art_start;
    }
  in
  let slack = ref nstruct and art = ref art_start in
  Array.iteri
    (fun i (a, rel, b) ->
      Array.iteri (fun j v -> if j < nstruct then t.rows.(i).(j) <- v) a;
      t.rhs.(i) <- b;
      match rel with
      | Le ->
          t.rows.(i).(!slack) <- Rat.one;
          t.basis.(i) <- !slack;
          incr slack
      | Ge ->
          t.rows.(i).(!slack) <- Rat.minus_one;
          incr slack;
          t.rows.(i).(!art) <- Rat.one;
          t.basis.(i) <- !art;
          incr art
      | Eq ->
          t.rows.(i).(!art) <- Rat.one;
          t.basis.(i) <- !art;
          incr art)
    rows;
  let infeasible = ref false in
  (* Phase 1: minimize the sum of artificials *)
  if n_art > 0 then begin
    let c1 = Array.make ncols Rat.zero in
    for j = art_start to ncols - 1 do
      c1.(j) <- Rat.one
    done;
    ignore (iterate t c1 ~banned:(fun _ -> false) ~stats ~budget ~left ~phase1:true);
    if Rat.sign (objective_value t c1) > 0 then infeasible := true
    else
      (* drive remaining artificials out of the basis where possible *)
      for i = 0 to m - 1 do
        if t.basis.(i) >= art_start then begin
          let piv = ref (-1) in
          (try
             for j = 0 to art_start - 1 do
               if not (Rat.is_zero t.rows.(i).(j)) then begin
                 piv := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !piv >= 0 then begin
            pivot t ~row:i ~col:!piv;
            t.basis.(i) <- !piv
          end
          (* otherwise the row is redundant (all-zero with zero rhs) *)
        end
      done
  end;
  if !infeasible then (Infeasible, None)
  else begin
    (* Phase 2 *)
    let c2 = Array.make ncols Rat.zero in
    Array.blit obj 0 c2 0 nstruct;
    let banned j = j >= art_start in
    if not (iterate t c2 ~banned ~stats ~budget ~left ~phase1:false) then (Unbounded, None)
    else (extract t obj c2, basis_of t)
  end

(* ---- warm solve -------------------------------------------------------

   Re-pivot a fresh (artificial-free) tableau onto [basis] and repair
   primal feasibility with the dual simplex. Sound whenever the basis came
   from an optimal solve over the same coefficient matrix and objective:
   such a basis is nonsingular regardless of the rhs, and its reduced
   costs stay >= 0, i.e. it stays dual feasible. Returns [None] when the
   basis does not fit this problem (shape mismatch, singular after row
   degeneracy, or dual infeasible because the objective changed) — the
   caller then falls back to a cold solve. *)

let warm_solve ~stats ~budget ~left ~(obj : Rat.t array) rows ~(basis : int array) =
  let nstruct = Array.length obj in
  let m = Array.length rows in
  let n_slack, _ = layout_counts rows in
  let art_start = nstruct + n_slack in
  let ncols = art_start in
  if Array.length basis <> m || Array.exists (fun b -> b < 0 || b >= art_start) basis then
    None
  else begin
    let t =
      {
        rows = Array.init m (fun _ -> Array.make ncols Rat.zero);
        rhs = Array.make m Rat.zero;
        basis = Array.make m (-1);
        ncols;
        nstruct;
        art_start;
      }
    in
    let slack = ref nstruct in
    Array.iteri
      (fun i (a, rel, b) ->
        Array.iteri (fun j v -> if j < nstruct then t.rows.(i).(j) <- v) a;
        t.rhs.(i) <- b;
        match rel with
        | Le ->
            t.rows.(i).(!slack) <- Rat.one;
            incr slack
        | Ge ->
            t.rows.(i).(!slack) <- Rat.minus_one;
            incr slack
        | Eq -> ())
      rows;
    (* Gaussian re-pivot onto the basis columns. The stored row pairing is
       tried first; any nonsingular basis set succeeds with some pairing. *)
    let assigned = Array.make m false in
    let ok = ref true in
    (try
       Array.iter
         (fun col ->
           let row =
             (* prefer the stored row for this column *)
             let stored = ref (-1) in
             Array.iteri (fun i b -> if b = col then stored := i) basis;
             if
               !stored >= 0
               && (not assigned.(!stored))
               && not (Rat.is_zero t.rows.(!stored).(col))
             then !stored
             else begin
               let r = ref (-1) in
               (try
                  for i = 0 to m - 1 do
                    if (not assigned.(i)) && not (Rat.is_zero t.rows.(i).(col)) then begin
                      r := i;
                      raise Exit
                    end
                  done
                with Exit -> ());
               !r
             end
           in
           if row < 0 then begin
             ok := false;
             raise Exit
           end;
           pivot t ~row ~col;
           t.basis.(row) <- col;
           assigned.(row) <- true)
         basis
     with Exit -> ());
    if (not !ok) || Array.exists (fun b -> b < 0) t.basis then None
    else begin
      let c2 = Array.make ncols Rat.zero in
      Array.blit obj 0 c2 0 nstruct;
      (* the warm premise: the old basis must still be dual feasible *)
      if Array.exists (fun r -> Rat.sign r < 0) (reduced_costs t c2) then None
      else if not (dual_iterate t c2 ~stats ~budget ~left) then Some (Infeasible, None)
      else if not (iterate t c2 ~banned:(fun _ -> false) ~stats ~budget ~left ~phase1:false)
      then Some (Unbounded, None)
      else Some (extract t obj c2, basis_of t)
    end
  end

(* ---- public entry points ---------------------------------------------- *)

type result = {
  r_outcome : outcome;
  r_basis : int array option;  (* for warm restarts; [None] unless Optimal *)
  r_warm : bool;  (* the warm path was actually taken *)
}

let solve_ext ?stats:(st = stats ()) ?(budget = default_budget) ?basis ~(obj : Rat.t array)
    ~(rows : (Rat.t array * rel * Rat.t) list) () : result =
  let rows = Array.of_list rows in
  let left = ref budget in
  match basis with
  | Some b -> (
      match warm_solve ~stats:st ~budget ~left ~obj rows ~basis:b with
      | Some (outcome, basis) -> { r_outcome = outcome; r_basis = basis; r_warm = true }
      | None ->
          let outcome, basis = cold_solve ~stats:st ~budget ~left ~obj rows in
          { r_outcome = outcome; r_basis = basis; r_warm = false })
  | None ->
      let outcome, basis = cold_solve ~stats:st ~budget ~left ~obj rows in
      { r_outcome = outcome; r_basis = basis; r_warm = false }

let solve ~(obj : Rat.t array) ~(rows : (Rat.t array * rel * Rat.t) list) : outcome =
  (solve_ext ~obj ~rows ()).r_outcome
