(* Optimal solver for linear objectives over difference-constraint systems.

   Solves:   minimize    sum_i cost_i * t_i
             subject to  t_dst - t_src >= w        (difference constraints)
                         lower_i <= t_i <= upper_i
                         t integral

   This is the shape the Longnail scheduling ILP (Figure 7 of the paper)
   takes after the lifetime variables are eliminated analytically:
   at any optimum l_ij = t_j - t_i, so the objective
   "sum t_i + sum l_ij" collapses to a weighted sum of start times with
   integer node costs (1 + indegree - outdegree).

   Algorithm: the feasible set is a lattice polyhedron whose least element
   is the ASAP solution (computed by Bellman-Ford longest paths). A linear
   function restricted to such a lattice is L-natural-convex, so steepest
   ascent over "shift a closed set S by +delta" moves reaches the global
   optimum; the best improving set is a minimum-weight closed set under
   the tight-edge closure relation, found with a max-flow min-cut
   computation (Dinic). Each accepted move strictly decreases the
   objective, guaranteeing termination.

   Exactness is cross-checked against the branch-and-bound MILP solver in
   the test suite. *)

type edge = { e_src : int; e_dst : int; e_w : int }

exception Unbounded

(* ---- Dinic max-flow ---- *)

module Maxflow = struct
  type arc = { dst : int; mutable cap : int; mutable flow : int; rev : int }

  type t = { n : int; adj : arc array array; mutable adj_build : arc list array }

  let inf = max_int / 4

  let create n = { n; adj = [||]; adj_build = Array.make n [] }

  let add_edge g u v cap =
    let a = { dst = v; cap; flow = 0; rev = List.length g.adj_build.(v) } in
    let b = { dst = u; cap = 0; flow = 0; rev = List.length g.adj_build.(u) } in
    g.adj_build.(u) <- g.adj_build.(u) @ [ a ];
    g.adj_build.(v) <- g.adj_build.(v) @ [ b ]

  let freeze g = { g with adj = Array.map Array.of_list g.adj_build }

  let max_flow g s t =
    let adj = g.adj in
    let n = g.n in
    let level = Array.make n (-1) in
    let it = Array.make n 0 in
    let bfs () =
      Array.fill level 0 n (-1);
      let q = Queue.create () in
      level.(s) <- 0;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Array.iter
          (fun a ->
            if level.(a.dst) < 0 && a.cap - a.flow > 0 then begin
              level.(a.dst) <- level.(u) + 1;
              Queue.add a.dst q
            end)
          adj.(u)
      done;
      level.(t) >= 0
    in
    let rec dfs u pushed =
      if u = t then pushed
      else begin
        let res = ref 0 in
        while !res = 0 && it.(u) < Array.length adj.(u) do
          let a = adj.(u).(it.(u)) in
          if level.(a.dst) = level.(u) + 1 && a.cap - a.flow > 0 then begin
            let d = dfs a.dst (min pushed (a.cap - a.flow)) in
            if d > 0 then begin
              a.flow <- a.flow + d;
              let back = adj.(a.dst).(a.rev) in
              back.flow <- back.flow - d;
              res := d
            end
            else it.(u) <- it.(u) + 1
          end
          else it.(u) <- it.(u) + 1
        done;
        !res
      end
    in
    let total = ref 0 in
    while bfs () do
      Array.fill it 0 n 0;
      let rec push () =
        let f = dfs s inf in
        if f > 0 then begin
          total := !total + f;
          push ()
        end
      in
      push ()
    done;
    (!total, level)
  (* after the last BFS, level >= 0 marks the source side of a min cut *)
end

(* ---- ASAP via Bellman-Ford longest paths ----

   With [init] the relaxation warm-starts from [max init lower]: as long
   as that point is componentwise below the minimal solution (true when
   [init] is the ASAP result of a system this one only tightens), the
   result is exactly the same minimal element a cold run computes, in
   fewer sweeps. [rounds] accumulates the sweep count. *)

let asap ?init ?rounds ~n ~(edges : edge list) ~lower ~upper () =
  let t =
    match init with
    | None -> Array.copy lower
    | Some s -> Array.mapi (fun i lo -> max lo s.(i)) lower
  in
  let changed = ref true and sweeps = ref 0 and ok = ref true in
  while !changed && !ok do
    changed := false;
    incr sweeps;
    if !sweeps > n + 1 then ok := false
    else
      List.iter
        (fun e ->
          if t.(e.e_src) + e.e_w > t.(e.e_dst) then begin
            t.(e.e_dst) <- t.(e.e_src) + e.e_w;
            changed := true
          end)
        edges
  done;
  (match rounds with Some r -> r := !r + !sweeps | None -> ());
  if not !ok then None
  else begin
    let feasible = ref true in
    Array.iteri
      (fun i ti -> match upper.(i) with Some hi when ti > hi -> feasible := false | _ -> ())
      t;
    if !feasible then Some t else None
  end

(* ---- steepest-ascent phase ----

   Shift-by-closed-set ascent from the minimal element [t] (mutated in
   place). Split out of [solve] so a warm caller can feed a warm-started
   ASAP result through the identical ascent — making warm and cold solves
   not just equal-objective but equal-valued. *)

let ascend ~n ~(edges : edge list) ~(upper : int option array) ~(cost : int array) t =
      let iterations = ref 0 in
      let improved = ref true in
      while !improved do
        incr iterations;
        if !iterations > 100_000 then failwith "Netopt.solve: did not converge";
        improved := false;
        (* build the closure graph on tight edges:
           i in S and (i->j) tight  ==>  j in S;
           i at its upper bound     ==>  i not in S *)
        let src = n and snk = n + 1 in
        let g = Maxflow.create (n + 2) in
        let neg_total = ref 0 in
        for i = 0 to n - 1 do
          if cost.(i) < 0 then begin
            Maxflow.add_edge g src i (-cost.(i));
            neg_total := !neg_total - cost.(i)
          end
          else if cost.(i) > 0 then Maxflow.add_edge g i snk cost.(i);
          match upper.(i) with
          | Some hi when t.(i) >= hi -> Maxflow.add_edge g i snk Maxflow.inf
          | _ -> ()
        done;
        List.iter
          (fun e ->
            if t.(e.e_dst) - t.(e.e_src) = e.e_w then
              Maxflow.add_edge g e.e_src e.e_dst Maxflow.inf)
          edges;
        let g = Maxflow.freeze g in
        let flow, level = Maxflow.max_flow g src snk in
        (* the min closure weight is flow - neg_total; improving iff < 0 *)
        if flow < !neg_total then begin
          (* S = nodes on the source side of the min cut *)
          let in_s i = level.(i) >= 0 in
          (* maximum feasible shift *)
          let delta = ref max_int in
          List.iter
            (fun e ->
              if in_s e.e_src && not (in_s e.e_dst) then
                delta := min !delta (t.(e.e_dst) - t.(e.e_src) - e.e_w))
            edges;
          for i = 0 to n - 1 do
            if in_s i then
              match upper.(i) with Some hi -> delta := min !delta (hi - t.(i)) | None -> ()
          done;
          if !delta = max_int then raise Unbounded;
          if !delta <= 0 then failwith "Netopt.solve: zero shift on improving set";
          for i = 0 to n - 1 do
            if in_s i then t.(i) <- t.(i) + !delta
          done;
          improved := true
        end
      done;
      t

(* ---- main solver ---- *)

let solve ?init ?rounds ~n ~(edges : edge list) ~(lower : int array)
    ~(upper : int option array) ~(cost : int array) () : int array option =
  match asap ?init ?rounds ~n ~edges ~lower ~upper () with
  | None -> None
  | Some t -> Some (ascend ~n ~edges ~upper ~cost t)

(* objective value of a solution *)
let objective ~cost t =
  let v = ref 0 in
  Array.iteri (fun i c -> v := !v + (c * t.(i))) cost;
  !v
