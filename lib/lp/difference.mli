(** Solver for systems of difference constraints.

   The precedence part of the Longnail scheduling problem (constraints C1,
   C3, C5 in Figure 7 of the paper) is a system of constraints of the form
   x_j - x_i >= w plus per-variable bounds. Such systems admit a
   componentwise-minimal solution computed by longest paths from a virtual
   source (Bellman-Ford), which also minimizes the sum of start times. This
   is used as the fast scheduling path and as an ablation baseline against
   the full ILP. *)

type edge = { src : int; dst : int; weight : int; }
type t = {
  nvars : int;
  mutable edges : edge list;
  lower : int array;
  upper : int option array;
}
val create : int -> t
val add_ge : t -> src:int -> dst:int -> weight:int -> unit
val set_lower : t -> int -> int -> unit
val set_upper : t -> int -> int -> unit

val solve : ?rounds:int ref -> t -> int array option
(** The componentwise-minimal feasible assignment, or [None] when the
    system is infeasible (positive cycle, or the minimal assignment
    violates an upper bound — in which case every assignment does).
    [rounds] accumulates the number of relaxation sweeps performed. *)

val solve_from : ?rounds:int ref -> t -> init:int array -> int array option
(** Like {!solve}, but warm-started: the relaxation begins from
    [max init lower] instead of [lower]. Produces {e exactly} the minimal
    solution whenever that starting point is componentwise below it — in
    particular whenever [init] is the minimal solution of a system this
    one only tightens (every weight and lower bound no smaller). Callers
    enforce that monotonicity precondition; see {!Lp.Instance}. *)
