(** Bit-level abstract interpretation over MIR: a reduced product of
    known bits and the {!Dataflow.ranges} intervals.

    One fact per SSA value, computed forward on the {!Dataflow} engine
    (with interval widening at the type bounds, so fixpoints are linear
    in the number of uses — see docs/NARROWING.md):

    - {e known bits}: each bit of the value's two's-complement pattern at
      its own width is 0, 1, or unknown — encoded as a known-mask [bk]
      and the values [bv] of the known bits ([bv] a submask of [bk]);
    - {e interval}: the numeric range of {!Dataflow.ranges}, reused
      verbatim.

    The transfer functions are sound for both MIR algebras: the wrapping
    signless [comb] dialect and the non-wrapping signed/unsigned
    [hwarith] dialect (whose result patterns coincide with mod-2^w
    arithmetic on sign-extended operand patterns, because its result
    types are wide enough to never overflow). Fully known [comb] ops are
    folded through {!Ir.Comb_eval}, the single concrete semantics — so
    on pinned inputs the analysis agrees with evaluation by construction.

    Consumers: the narrowing passes ({!Narrow}), the bit-level lints
    W1008–W1010 ({!Lint}). *)

(** Known bits of a pattern: [bk] = mask of known positions, [bv] = their
    values (a submask of [bk]); both non-negative, below 2^width. *)
type bits = { bk : Bitvec.Bn.t; bv : Bitvec.Bn.t }

type fact = { f_bits : bits; f_range : Dataflow.range }

type t = fact option
(** Per-value lattice element; [None] is bottom (no execution reaches). *)

val top_bits : bits
(** No bit known. *)

val mask : int -> Bitvec.Bn.t
(** [mask w] = 2^w - 1. *)

val fully_known : int -> bits -> bool

val known_const : int -> Bitvec.Bn.t -> bits
(** All [w] bits pinned to the given pattern (reduced mod 2^w). *)

val bits_join : bits -> bits -> bits
val bits_equal : bits -> bits -> bool

val known_count : width:int -> bits -> int
(** Number of known bit positions. *)

val leading_known : width:int -> bits -> int
(** Length of the known run starting at the most significant bit. *)

val bits_value : Bitvec.ty -> bits -> Bitvec.Bn.t option
(** The numeric value, when every bit is known, decoded under the type's
    signedness. *)

val bits_from_range : Bitvec.ty -> Dataflow.range -> bits
(** The bits pinned by an interval alone (the common high-bit prefix of
    the endpoint patterns, when the interval does not cross zero). Used
    by lint W1010 to tell structural knowledge from genuine stuck bits. *)

val spec : t Dataflow.spec
(** The product analysis as a reusable {!Dataflow} spec. *)

type result

val analyze : Ir.Mir.graph -> result
(** Run to fixpoint. Raises {!Dataflow.Diverged} only if the safety-net
    budget is exceeded (a bug — widening bounds the real iteration
    count). *)

val fact_of : result -> Ir.Mir.value -> fact option
val iterations : result -> int

val known_value : Ir.Mir.value -> fact -> Bitvec.Bn.t option
(** Numeric value of the fact when fully pinned (via the bits half). *)

val decide_bool : fact -> bool option
(** Decide a 1-bit value from either half of the product. *)
