(* Structural netlist checks: multiple drivers (E0520), combinational
   cycles (E0521) and undefined signals (E0522), with provenance back to
   the originating CoreDSL source when the caller supplies a resolver. *)

module N = Rtl.Netlist

exception Netcheck_error of Diag.t

(* Hwgen names a signal after the SSA value it implements: "v<id>" plus an
   optional "_s<stage>" pipeline suffix. *)
let signal_provenance (g : Ir.Mir.graph) =
  let defs = Ir.Mir.def_map g in
  fun (signal : string) ->
    let n = String.length signal in
    if n < 2 || signal.[0] <> 'v' then None
    else begin
      let stop = ref 1 in
      while !stop < n && signal.[!stop] >= '0' && signal.[!stop] <= '9' do
        incr stop
      done;
      if !stop = 1 then None
      else
        match int_of_string_opt (String.sub signal 1 (!stop - 1)) with
        | None -> None
        | Some vid -> (
            match Hashtbl.find_opt defs vid with
            | Some (op : Ir.Mir.op) -> op.oloc
            | None -> None)
    end

let diag ?span ?(notes = []) code fmt =
  Format.kasprintf (fun m -> Diag.make ?span ~notes ~code m) fmt

let check ?what ?(provenance = fun _ -> None) (nl : N.t) =
  let what = match what with Some w -> w | None -> nl.N.mod_name in
  let out = ref [] in
  let push d = out := d :: !out in
  let inputs = Hashtbl.create 16 in
  List.iter (fun (p : N.port) -> Hashtbl.replace inputs p.port_name ()) nl.inputs;
  (* E0520: each signal must have exactly one driver. *)
  let drivers = Hashtbl.create 64 in
  List.iter
    (fun node ->
      let s = N.node_out node in
      let span = provenance s in
      if Hashtbl.mem inputs s then
        push
          (diag ?span "E0520"
             "%s: signal '%s' is driven by a node but is also an input port"
             what s)
      else if Hashtbl.mem drivers s then
        push
          (diag ?span "E0520" "%s: signal '%s' has multiple drivers" what s)
      else Hashtbl.replace drivers s node)
    nl.nodes;
  (* E0522: every referenced signal must be defined somewhere. *)
  let defined s = Hashtbl.mem inputs s || Hashtbl.mem drivers s in
  let reported_undef = Hashtbl.create 8 in
  let require ~via s =
    if (not (defined s)) && not (Hashtbl.mem reported_undef s) then begin
      Hashtbl.replace reported_undef s ();
      push
        (diag ?span:(provenance via) "E0522"
           "%s: undefined signal '%s' (referenced by '%s')" what s via)
    end
  in
  List.iter
    (fun node ->
      let via = N.node_out node in
      List.iter (require ~via) (N.comb_deps node);
      match node with
      | N.Reg r ->
          require ~via r.next;
          Option.iter (require ~via) r.enable
      | N.Comb _ | N.Rom _ -> ())
    nl.nodes;
  List.iter (fun (p : N.port) -> require ~via:p.port_name p.port_signal) nl.outputs;
  (* E0521: combinational cycles (registers break paths: comb_deps of a
     Reg is empty). Iterative DFS with an explicit path for the report. *)
  let color = Hashtbl.create 64 in
  (* 0 absent = white, 1 = on stack, 2 = done *)
  let cycle = ref None in
  let rec dfs path s =
    if !cycle = None then
      match Hashtbl.find_opt color s with
      | Some 2 -> ()
      | Some _ ->
          (* Found a back edge: recover the cycle from the path. *)
          let rec cut = function
            | x :: _ as l when x = s -> l
            | _ :: tl -> cut tl
            | [] -> [ s ]
          in
          cycle := Some (cut (List.rev (s :: path)))
      | None -> (
          Hashtbl.replace color s 1;
          (match Hashtbl.find_opt drivers s with
          | Some node -> List.iter (dfs (s :: path)) (N.comb_deps node)
          | None -> ());
          Hashtbl.replace color s 2)
  in
  List.iter (fun node -> dfs [] (N.node_out node)) nl.nodes;
  (match !cycle with
  | Some (first :: _ as signals) ->
      let notes =
        List.filter_map
          (fun s ->
            match provenance s with
            | Some (sp : Diag.span) ->
                Some
                  (Printf.sprintf "'%s' originates at %s:%d:%d" s sp.sp_file
                     sp.sp_line sp.sp_col)
            | None -> None)
          signals
      in
      push
        (diag ?span:(provenance first) ~notes "E0521"
           "%s: combinational cycle through %s" what
           (String.concat " -> " (signals @ [ first ])))
  | Some [] | None -> ());
  List.rev !out

let verify ?what ?provenance nl =
  match check ?what ?provenance nl with
  | [] -> ()
  | d :: _ -> raise (Netcheck_error d)
