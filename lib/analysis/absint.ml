(* Bit-level abstract interpretation over MIR (see the .mli).

   The domain is a reduced product of two halves kept per SSA value:

   - known bits: the unsigned bit pattern of the value at its own width,
     abstracted bit-by-bit as 0 / 1 / unknown. Encoded as a pair of
     non-negative big integers [bk] (the known mask) and [bv] (the values
     of the known bits, [bv] a submask of [bk]).
   - the numeric interval of {!Dataflow.ranges}, reused verbatim as the
     product's interval half.

   Soundness rests on one fact shared by both algebras: every MIR value,
   [hwarith] or [comb], is encoded as its two's-complement pattern at its
   type's width, and every modeled operation commutes with [mod 2^t] on
   those patterns. The [hwarith] algebra never wraps only because its
   result types are wide enough — so the result pattern is still the
   plain mod-2^w sum/product of the sign-/zero-extended operand patterns,
   and the same trailing-bits transfer serves both dialects. Operations
   with no precise bit transfer fall back to "all bits unknown"; a fully
   known [comb] op is folded exactly through {!Ir.Comb_eval}, which makes
   agreement with the concrete semantics true by construction. *)

open Ir.Mir
module Bn = Bitvec.Bn
module D = Dataflow

type bits = { bk : Bn.t; bv : Bn.t }
type fact = { f_bits : bits; f_range : D.range }

(* ---- bit-twiddling on non-negative big integers ---- *)

let mask w = Bn.sub (Bn.pow2 w) Bn.one
let band = Bn.bitwise ( land )
let bor = Bn.bitwise ( lor )
let bxor = Bn.bitwise ( lxor )

(* a & ~b without a width: valid because [x & b] is a submask of [x],
   so the subtraction borrows nothing *)
let andnot a b = Bn.sub a (band a b)

let testbit = Bn.mag_testbit
let bn_min a b = if Bn.compare a b <= 0 then a else b
let bn_max a b = if Bn.compare a b >= 0 then a else b

let top_bits = { bk = Bn.zero; bv = Bn.zero }

let fully_known w b = Bn.equal b.bk (mask w)
let known_const w p = { bk = mask w; bv = Bn.mod_pow2 p w }

let bits_equal a b = Bn.equal a.bk b.bk && Bn.equal a.bv b.bv

let bits_join a b =
  let bk = andnot (band a.bk b.bk) (bxor a.bv b.bv) in
  { bk; bv = band a.bv bk }

let popcount w m =
  let c = ref 0 in
  for i = 0 to w - 1 do
    if testbit m i then incr c
  done;
  !c

let known_count ~width b = popcount width b.bk

let leading_known ~width b =
  let k = ref 0 in
  (try
     for i = width - 1 downto 0 do
       if testbit b.bk i then incr k else raise Exit
     done
   with Exit -> ());
  !k

(* numeric value of a fully known pattern under the type's signedness *)
let bits_value (ty : Bitvec.ty) b =
  let w = ty.Bitvec.width in
  if fully_known w b then
    Some
      (if ty.Bitvec.signed && testbit b.bv (w - 1) then Bn.sub b.bv (Bn.pow2 w)
       else b.bv)
  else None

(* ---- interval -> known bits ----

   Any contiguous value interval whose endpoints' patterns share a common
   high-bit prefix pins that prefix for every value in between — valid
   whenever the patterns are monotone over the interval, i.e. when the
   interval does not cross the sign-pattern discontinuity at 0. *)
let bits_from_range (ty : Bitvec.ty) (r : D.range) =
  let w = ty.Bitvec.width in
  if Bn.compare r.D.lo Bn.zero >= 0 || Bn.compare r.D.hi Bn.zero < 0 then begin
    let pa = Bn.mod_pow2 r.D.lo w and pb = Bn.mod_pow2 r.D.hi w in
    let diff = Bn.num_bits (bxor pa pb) in
    let bk = andnot (mask w) (mask diff) in
    { bk; bv = band pa bk }
  end
  else top_bits

(* ---- the reduction ----

   Exchange information between the two halves once per transfer. A
   conflict between the halves can only arise on unreachable facts; we
   keep the original half rather than manufacture bottom. *)
let reduce (ty : Bitvec.ty) b (rng : D.range) =
  let w = ty.Bitvec.width in
  (* interval -> bits *)
  let rb = bits_from_range ty rng in
  let conflict = not (Bn.is_zero (band (band b.bk rb.bk) (bxor b.bv rb.bv))) in
  let b = if conflict then b else { bk = bor b.bk rb.bk; bv = bor b.bv rb.bv } in
  (* bits -> interval *)
  let rng =
    match bits_value ty b with
    | Some v -> { D.lo = v; hi = v }
    | None ->
        (* pattern bounds translate to value bounds only when the whole
           concretization sits on one side of the sign discontinuity *)
        let sign_det = (not ty.Bitvec.signed) || testbit b.bk (w - 1) in
        if sign_det then begin
          let pmin = b.bv and pmax = bor b.bv (andnot (mask w) b.bk) in
          let dec p =
            if ty.Bitvec.signed && testbit b.bv (w - 1) then Bn.sub p (Bn.pow2 w) else p
          in
          let lo = bn_max rng.D.lo (dec pmin) and hi = bn_min rng.D.hi (dec pmax) in
          if Bn.compare lo hi > 0 then rng else { D.lo; hi }
        end
        else rng
  in
  { f_bits = b; f_range = rng }

(* ---- bit-level transfer ---- *)

(* encode a value's known bits at width [w]: truncate, or extend per the
   value's own signedness (a signed extension is known only when the
   source sign bit is) *)
let ext_to w (vty : Bitvec.ty) b =
  let wa = vty.Bitvec.width in
  if wa >= w then { bk = Bn.mod_pow2 b.bk w; bv = Bn.mod_pow2 b.bv w }
  else
    let high = andnot (mask w) (mask wa) in
    if not vty.Bitvec.signed then { bk = bor b.bk high; bv = b.bv }
    else if testbit b.bk (wa - 1) then
      if testbit b.bv (wa - 1) then { bk = bor b.bk high; bv = bor b.bv high }
      else { bk = bor b.bk high; bv = b.bv }
    else b

let shl_w w x k = Bn.mod_pow2 (Bn.shift_left x k) w

(* trailing positions known in both operands *)
let trailing_common w a b =
  let t = ref 0 in
  (try
     for i = 0 to w - 1 do
       if testbit a.bk i && testbit b.bk i then incr t else raise Exit
     done
   with Exit -> ());
  !t

(* the low t bits of a+b / a-b / a*b (mod 2^w) depend only on the low t
   bits of the operand patterns — two's complement arithmetic is a ring
   mod 2^t for every t *)
let trailing_arith w kind a b =
  let t = trailing_common w a b in
  if t = 0 then top_bits
  else begin
    let la = Bn.mod_pow2 a.bv t and lb = Bn.mod_pow2 b.bv t in
    let low =
      match kind with
      | `Add -> Bn.mod_pow2 (Bn.add la lb) t
      | `Sub -> Bn.mod_pow2 (Bn.sub la lb) t
      | `Mul -> Bn.mod_pow2 (Bn.mul la lb) t
    in
    { bk = mask t; bv = low }
  end

let bitwise_bits kind a b =
  match kind with
  | `And ->
      let known1 = band (band a.bk a.bv) (band b.bk b.bv) in
      let known0 = bor (andnot a.bk a.bv) (andnot b.bk b.bv) in
      { bk = bor known0 known1; bv = known1 }
  | `Or ->
      let known1 = bor (band a.bk a.bv) (band b.bk b.bv) in
      let known0 = band (andnot a.bk a.bv) (andnot b.bk b.bv) in
      { bk = bor known0 known1; bv = known1 }
  | `Xor ->
      let bk = band a.bk b.bk in
      { bk; bv = band (bxor a.bv b.bv) bk }

let bits_shl w b k =
  if k >= w then known_const w Bn.zero
  else { bk = bor (shl_w w b.bk k) (mask k); bv = shl_w w b.bv k }

let bits_lshr w b k =
  if k >= w then known_const w Bn.zero
  else
    let high = andnot (mask w) (mask (w - k)) in
    { bk = bor (Bn.shift_right b.bk k) high; bv = Bn.shift_right b.bv k }

let bits_ashr w b k =
  let k = min k (w - 1) in
  let high = andnot (mask w) (mask (w - k)) in
  let sign_known = testbit b.bk (w - 1) in
  let fill = sign_known && testbit b.bv (w - 1) in
  {
    bk = bor (Bn.shift_right b.bk k) (if sign_known then high else Bn.zero);
    bv = bor (Bn.shift_right b.bv k) (if fill then high else Bn.zero);
  }

let bool_bits = function
  | Some true -> known_const 1 Bn.one
  | Some false -> known_const 1 Bn.zero
  | None -> top_bits

(* [Some k]: a shift/mux selector whose numeric value is pinned *)
let known_nonneg_int (v : value) b =
  match bits_value v.vty b with
  | Some n when Bn.compare n Bn.zero >= 0 -> Bn.to_int_opt n
  | _ -> None

let bits_compute (op : op) ~(factb : value -> bits option) (r : value) : bits option =
  let w = r.vty.Bitvec.width in
  let operand i = List.nth op.operands i in
  let fb_of (v : value) = Option.value ~default:top_bits (factb v) in
  let fb i = fb_of (operand i) in
  let any_bottom = List.exists (fun v -> factb v = None) op.operands in
  if any_bottom then None
  else if
    Ir.Comb_eval.is_comb op.opname
    && List.for_all (fun (v : value) -> fully_known v.vty.Bitvec.width (fb_of v)) op.operands
  then
    (* every operand pinned: fold the op through the concrete semantics *)
    try
      let ops =
        List.map
          (fun (v : value) ->
            Bitvec.of_bn (Bitvec.unsigned_ty v.vty.Bitvec.width) (fb_of v).bv)
          op.operands
      in
      let res = Ir.Comb_eval.eval ~name:op.opname ~attrs:op.attrs ~ops ~result_width:w in
      Some (known_const w (Bitvec.pattern res))
    with _ -> Some top_bits
  else
    let ext2 () = (ext_to w (operand 0).vty (fb 0), ext_to w (operand 1).vty (fb 1)) in
    match op.opname with
    | "hw.constant" -> (
        match attr_bv op "value" with
        | Some c -> Some (known_const w (Bitvec.pattern c))
        | None -> Some top_bits)
    | "comb.add" | "hwarith.add" ->
        let a, b = ext2 () in
        Some (trailing_arith w `Add a b)
    | "comb.sub" | "hwarith.sub" ->
        let a, b = ext2 () in
        Some (trailing_arith w `Sub a b)
    | "comb.mul" | "hwarith.mul" ->
        let a, b = ext2 () in
        Some (trailing_arith w `Mul a b)
    | "comb.and" | "hwarith.band" ->
        let a, b = ext2 () in
        Some (bitwise_bits `And a b)
    | "comb.or" | "hwarith.bor" ->
        let a, b = ext2 () in
        Some (bitwise_bits `Or a b)
    | "comb.xor" | "hwarith.bxor" ->
        let a, b = ext2 () in
        Some (bitwise_bits `Xor a b)
    | "hwarith.not" ->
        let a = ext_to w (operand 0).vty (fb 0) in
        Some { bk = a.bk; bv = band (andnot (mask w) a.bv) a.bk }
    | "comb.mux" | "hwarith.mux" ->
        let c = fb 0 and t = ext_to w (operand 1).vty (fb 1) in
        let f = ext_to w (operand 2).vty (fb 2) in
        Some
          (if fully_known 1 c then if Bn.is_zero c.bv then f else t
           else bits_join t f)
    | "comb.extract" -> (
        match attr_int op "lowBit" with
        | Some lb ->
            let a = fb 0 in
            Some
              {
                bk = Bn.mod_pow2 (Bn.shift_right a.bk lb) w;
                bv = Bn.mod_pow2 (Bn.shift_right a.bv lb) w;
              }
        | None -> Some top_bits)
    | "comb.concat" ->
        (* first operand is the most significant *)
        Some
          (List.fold_left
             (fun acc (v : value) ->
               let b = Option.value ~default:top_bits (factb v) in
               let wv = v.vty.Bitvec.width in
               { bk = bor (Bn.shift_left acc.bk wv) b.bk; bv = bor (Bn.shift_left acc.bv wv) b.bv })
             top_bits op.operands)
    | "comb.replicate" ->
        let a = fb 0 in
        let wo = (operand 0).vty.Bitvec.width in
        let n = if wo > 0 then w / wo else 0 in
        let acc = ref top_bits in
        for _ = 1 to n do
          acc := { bk = bor (Bn.shift_left !acc.bk wo) a.bk; bv = bor (Bn.shift_left !acc.bv wo) a.bv }
        done;
        Some !acc
    | "comb.shl" | "hwarith.shl" -> (
        match known_nonneg_int (operand 1) (fb 1) with
        | Some k -> Some (bits_shl w (ext_to w (operand 0).vty (fb 0)) k)
        | None -> Some top_bits)
    | "comb.shru" -> (
        match known_nonneg_int (operand 1) (fb 1) with
        | Some k -> Some (bits_lshr w (fb 0) k)
        | None -> Some top_bits)
    | "comb.shrs" -> (
        match known_nonneg_int (operand 1) (fb 1) with
        | Some k -> Some (bits_ashr w (fb 0) k)
        | None -> Some top_bits)
    | "hwarith.shr" -> (
        (* floor division by 2^k = arithmetic shift of the sign-extended
           pattern (Bn.shift_right is floor for negatives) *)
        match known_nonneg_int (operand 1) (fb 1) with
        | Some k -> Some (bits_ashr w (ext_to w (operand 0).vty (fb 0)) k)
        | None -> Some top_bits)
    | "hwarith.cast" ->
        Some (ext_to w (operand 0).vty (fb 0))
    | "hwarith.and" | "hwarith.or" ->
        let a = fb 0 and b = fb 1 in
        let ka = if fully_known 1 a then Some (Bn.equal a.bv Bn.one) else None in
        let kb = if fully_known 1 b then Some (Bn.equal b.bv Bn.one) else None in
        let decided =
          match (op.opname, ka, kb) with
          | "hwarith.and", Some false, _ | "hwarith.and", _, Some false -> Some false
          | "hwarith.and", Some true, Some true -> Some true
          | "hwarith.or", Some true, _ | "hwarith.or", _, Some true -> Some true
          | "hwarith.or", Some false, Some false -> Some false
          | _ -> None
        in
        Some (bool_bits decided)
    | "hwarith.icmp" -> (
        (* eq/ne decidable from a single conflicting known bit; every
           predicate decidable when both sides are fully pinned *)
        let wa = (operand 0).vty.Bitvec.width and wb = (operand 1).vty.Bitvec.width in
        let wc = max wa wb + 1 in
        let a = ext_to wc (operand 0).vty (fb 0) and b = ext_to wc (operand 1).vty (fb 1) in
        let conflict = not (Bn.is_zero (band (band a.bk b.bk) (bxor a.bv b.bv))) in
        match (attr_str op "predicate", bits_value (operand 0).vty (fb 0), bits_value (operand 1).vty (fb 1)) with
        | Some p, Some va, Some vb -> (
            let c = Bn.compare va vb in
            match D.icmp_pred p with
            | Some `Eq -> Some (bool_bits (Some (c = 0)))
            | Some `Ne -> Some (bool_bits (Some (c <> 0)))
            | Some `Lt -> Some (bool_bits (Some (c < 0)))
            | Some `Le -> Some (bool_bits (Some (c <= 0)))
            | Some `Gt -> Some (bool_bits (Some (c > 0)))
            | Some `Ge -> Some (bool_bits (Some (c >= 0)))
            | None -> Some top_bits)
        | Some p, _, _ when conflict -> (
            match D.icmp_pred p with
            | Some `Eq -> Some (bool_bits (Some false))
            | Some `Ne -> Some (bool_bits (Some true))
            | _ -> Some top_bits)
        | _ -> Some top_bits)
    | name
      when String.length name > 10 && String.sub name 0 10 = "comb.icmp_" -> (
        (* partial knowledge: eq/ne from one conflicting known bit *)
        let a = fb 0 and b = fb 1 in
        let conflict = not (Bn.is_zero (band (band a.bk b.bk) (bxor a.bv b.bv))) in
        if conflict then
          match name with
          | "comb.icmp_eq" -> Some (bool_bits (Some false))
          | "comb.icmp_ne" -> Some (bool_bits (Some true))
          | _ -> Some top_bits
        else Some top_bits)
    | _ -> Some top_bits

(* ---- the product analysis, on the Dataflow engine ---- *)

type t = fact option

let fact_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
      bits_equal a.f_bits b.f_bits
      && Bn.equal a.f_range.D.lo b.f_range.D.lo
      && Bn.equal a.f_range.D.hi b.f_range.D.hi
  | _ -> false

let fact_join a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b ->
      Some
        {
          f_bits = bits_join a.f_bits b.f_bits;
          f_range =
            {
              D.lo = bn_min a.f_range.D.lo b.f_range.D.lo;
              hi = bn_max a.f_range.D.hi b.f_range.D.hi;
            };
        }

let fact_widen (v : value) old joined =
  match (old, joined) with
  | Some o, Some j ->
      let wr =
        D.widen_range v (Some o.f_range) (Some j.f_range)
        |> Option.value ~default:(D.range_of_ty v.vty)
      in
      (* the bits half has height <= width per value: no widening needed *)
      Some { j with f_range = wr }
  | _ -> joined

let spec : t D.spec =
  {
    D.df_name = "absint";
    df_direction = D.Forward;
    df_init = (fun _ -> None);
    df_transfer =
      (fun op ~fact ->
        let franges (v : value) = Option.map (fun f -> f.f_range) (fact v) in
        let fbits (v : value) = Option.map (fun f -> f.f_bits) (fact v) in
        List.map
          (fun (r : value) ->
            let rng = D.ranges_compute op ~fact:franges r in
            let bts = bits_compute op ~factb:fbits r in
            match (rng, bts) with
            | None, None -> (r, None)
            | _ ->
                let rng = Option.value rng ~default:(D.range_of_ty r.vty) in
                let bts = Option.value bts ~default:top_bits in
                (r, Some (reduce r.vty bts rng)))
          op.results);
    df_join = fact_join;
    df_equal = fact_equal;
    df_widen = Some fact_widen;
  }

type result = { res : t D.result }

let analyze (g : graph) : result = { res = D.run spec g }
let fact_of r (v : value) = r.res.D.fact_of v
let iterations r = r.res.D.iterations

(* ---- convenience queries ---- *)

let known_value (v : value) (f : fact) = bits_value v.vty f.f_bits

let decide_bool (f : fact) =
  if fully_known 1 f.f_bits then Some (Bn.equal f.f_bits.bv Bn.one)
  else D.range_exact f.f_range |> Option.map (fun x -> Bn.equal x Bn.one)
