(* Analysis-driven width narrowing over LIL graphs (see the .mli).

   Three rewrites, each justified by an {!Absint} proof and each checked
   end-to-end by {!Tv} before its result is accepted:

   - [narrow_widths]: an op whose top k result bits are proven constant
     is re-emitted at width w-k on the low bits of its operands, with the
     constant high bits gratis via comb.concat. Sound exactly for the
     modular ops (add/sub/mul/and/or/xor/mux), whose low w-k bits depend
     only on the low w-k operand bits.
   - [simplify_compares]: comparisons the domain decides become 1-bit
     constants.
   - [eliminate_dead_selects]: a mux whose condition is decided (or whose
     arms coincide) forwards the surviving arm.

   The rewires leave dead high-bit logic behind on purpose: the ordinary
   fold/cse/dce cleanup pipeline erases it, which is where the removed
   bits actually disappear from the netlist. *)

open Ir.Mir
module Bn = Bitvec.Bn

type stats = {
  ns_ops_rewritten : int;  (** ops re-emitted at a narrower width *)
  ns_bits_removed : int;  (** total result bits proven constant and stripped *)
  ns_compares_folded : int;
  ns_selects_removed : int;
  ns_tv_validations : int;  (** translation-validator runs that passed *)
  ns_tv_vectors : int;  (** total input vectors driven across them *)
  ns_tv_exhaustive : int;  (** how many runs enumerated the whole space *)
}

let zero_stats =
  {
    ns_ops_rewritten = 0;
    ns_bits_removed = 0;
    ns_compares_folded = 0;
    ns_selects_removed = 0;
    ns_tv_validations = 0;
    ns_tv_vectors = 0;
    ns_tv_exhaustive = 0;
  }

let u w = Bitvec.unsigned_ty w

(* ops whose low result bits depend only on the low operand bits: the
   mod-2^t ring ops and the bitwise/select ops *)
let narrowable = function
  | "comb.add" | "comb.sub" | "comb.mul" | "comb.and" | "comb.or" | "comb.xor" | "comb.mux" ->
      true
  | _ -> false

(* one rewriting sweep in the style of [Ir.Passes.lower_constant_shifts]:
   copy the body, consult [facts] on original results, splice replacement
   wiring through a vid substitution *)
let sweep (g : graph) (visit : builder -> (value -> value) -> (int, value) Hashtbl.t -> op -> bool) :
    graph =
  let b = builder () in
  List.iter
    (fun op ->
      b.next_o <- max b.next_o (op.oid + 1);
      List.iter (fun (r : value) -> b.next_v <- max b.next_v (r.vid + 1)) op.results)
    (all_ops g);
  let subst : (int, value) Hashtbl.t = Hashtbl.create 16 in
  let s v = match Hashtbl.find_opt subst v.vid with Some v' -> v' | None -> v in
  List.iter
    (fun op ->
      if not (visit b s subst op) then
        b.ops <- { op with operands = List.map s op.operands } :: b.ops)
    g.body;
  { g with body = List.rev b.ops }

(* ---- narrow_widths ---- *)

let narrow_widths (facts : Absint.result) (g : graph) : graph * int * int =
  let rewritten = ref 0 and bits_removed = ref 0 in
  let g' =
    sweep g (fun b s subst op ->
        match op.results with
        | [ r ] when narrowable op.opname -> (
            let w = r.vty.Bitvec.width in
            match Absint.fact_of facts r with
            | None -> false
            | Some f ->
                let k = Absint.leading_known ~width:w f.f_bits in
                if k <= 0 then false
                else begin
                  set_loc b op.oloc;
                  let repl =
                    if k >= w then
                      (* the whole result is pinned: emit the constant *)
                      add_op1 b "hw.constant" [] (u w)
                        ~attrs:[ ("value", A_bv (Bitvec.of_bn (u w) f.f_bits.bv)) ]
                    else begin
                      let w' = w - k in
                      let high = Bn.shift_right f.f_bits.bv w' in
                      let low (v : value) =
                        add_op1 b "comb.extract" [ s v ] (u w')
                          ~attrs:[ ("lowBit", A_int 0) ]
                      in
                      let narrow_operands =
                        match (op.opname, op.operands) with
                        | "comb.mux", [ c; t; e ] -> [ s c; low t; low e ]
                        | _, ops -> List.map low ops
                      in
                      let nres = add_op1 b op.opname narrow_operands (u w') ~attrs:op.attrs in
                      let hconst =
                        add_op1 b "hw.constant" [] (u k)
                          ~attrs:[ ("value", A_bv (Bitvec.of_bn (u k) high)) ]
                      in
                      add_op1 b "comb.concat" [ hconst; nres ] (u w)
                    end
                  in
                  Hashtbl.replace subst r.vid repl;
                  incr rewritten;
                  bits_removed := !bits_removed + min k w;
                  true
                end)
        | _ -> false)
  in
  (g', !rewritten, !bits_removed)

(* ---- simplify_compares ---- *)

let is_icmp name = String.length name > 10 && String.sub name 0 10 = "comb.icmp_"

let simplify_compares (facts : Absint.result) (g : graph) : graph * int =
  let folded = ref 0 in
  let g' =
    sweep g (fun b _s subst op ->
        match op.results with
        | [ r ] when is_icmp op.opname -> (
            match Option.map Absint.decide_bool (Absint.fact_of facts r) |> Option.join with
            | Some decision ->
                set_loc b op.oloc;
                let repl =
                  add_op1 b "hw.constant" [] (u 1)
                    ~attrs:[ ("value", A_bv (Bitvec.of_bool decision)) ]
                in
                Hashtbl.replace subst r.vid repl;
                incr folded;
                true
            | None -> false)
        | _ -> false)
  in
  (g', !folded)

(* ---- eliminate_dead_selects ---- *)

let eliminate_dead_selects (facts : Absint.result) (g : graph) : graph * int =
  let removed = ref 0 in
  let g' =
    sweep g (fun _b s subst op ->
        match (op.opname, op.operands, op.results) with
        | "comb.mux", [ c; t; e ], [ r ] ->
            let decided =
              match Option.map Absint.decide_bool (Absint.fact_of facts c) |> Option.join with
              | Some true -> Some t
              | Some false -> Some e
              | None -> if (s t).vid = (s e).vid then Some t else None
            in
            (match decided with
            | Some arm ->
                Hashtbl.replace subst r.vid (s arm);
                incr removed;
                true
            | None -> false)
        | _ -> false)
  in
  (g', !removed)

(* ---- the driver ---- *)

let validated ~pass_name ~original ~optimized stats =
  let v = Tv.validate ~pass_name ~original ~optimized in
  {
    stats with
    ns_tv_validations = stats.ns_tv_validations + 1;
    ns_tv_vectors = stats.ns_tv_vectors + v.Tv.tv_vectors;
    ns_tv_exhaustive = (stats.ns_tv_exhaustive + if v.Tv.tv_exhaustive then 1 else 0);
  }

let narrow_graph ?obs ?verify_each (g : graph) : graph * stats =
  let stats = ref zero_stats in
  let sanitize name g = match verify_each with Some f -> f ~pass_name:name g | None -> () in
  (* each pass re-analyzes: rewrites invalidate earlier facts *)
  let step name f g =
    let changed = ref false in
    let pass =
      {
        Ir.Passes.pass_name = name;
        pass_fn =
          (fun g ->
            let facts = Absint.analyze g in
            let g', did = f facts g in
            changed := did;
            if did then g' else g);
      }
    in
    let g', _stat = Ir.Passes.run_pass ?obs pass g in
    if !changed then begin
      stats := validated ~pass_name:name ~original:g ~optimized:g' !stats;
      sanitize name g'
    end;
    g'
  in
  let g1 =
    step "narrow_widths"
      (fun facts g ->
        let g', rewritten, bits = narrow_widths facts g in
        stats :=
          {
            !stats with
            ns_ops_rewritten = !stats.ns_ops_rewritten + rewritten;
            ns_bits_removed = !stats.ns_bits_removed + bits;
          };
        (g', rewritten > 0))
      g
  in
  let g2 =
    step "simplify_compares"
      (fun facts g ->
        let g', folded = simplify_compares facts g in
        stats := { !stats with ns_compares_folded = !stats.ns_compares_folded + folded };
        (g', folded > 0))
      g1
  in
  let g3 =
    step "eliminate_dead_selects"
      (fun facts g ->
        let g', removed = eliminate_dead_selects facts g in
        stats := { !stats with ns_selects_removed = !stats.ns_selects_removed + removed };
        (g', removed > 0))
      g2
  in
  if
    !stats.ns_ops_rewritten = 0 && !stats.ns_compares_folded = 0
    && !stats.ns_selects_removed = 0
  then (g, !stats)
  else begin
    (* fold/cse/dce erase the dead high-bit logic the rewires stranded *)
    let vcb = match verify_each with Some f -> Some (fun ~pass_name g -> f ~pass_name g) | None -> None in
    let g4 = Ir.Passes.optimize ?obs ?verify_each:vcb g3 in
    (* belt and braces: the cleanup may drop now-unused interface reads,
       so the end-to-end check allows the input set to shrink *)
    stats := validated ~pass_name:"narrow" ~original:g ~optimized:g4 !stats;
    (g4, !stats)
  end
