(** The CoreDSL linter: dataflow-backed W1xxx warnings over a typed unit.

    Lints run per ISAX instruction / always-block (base RV32I instructions
    are skipped unless [include_base] is set): the behavior is lowered to
    HLIR and analyzed with the {!Dataflow} instances, plus a few direct
    walks of the typed AST for properties the IR no longer exposes.

    Catalog (docs/ANALYSIS.md):
    - W1001 dead assignment — a computed value is never used;
    - W1002 unused encoding field;
    - W1003 unused architectural register;
    - W1004 branch condition provably constant (range analysis);
    - W1005 shift amount provably >= the operand width (range analysis);
    - W1006 local read before any assignment;
    - W1007 instruction writes no architectural state.

    All diagnostics carry {!Diag.severity} [Warning]; [--werror] promotion
    is the caller's business (see {!promote}). *)

val lint_codes : (string * string) list
(** Code/description pairs of every warning the linter can emit (the
    [W1xxx] rows of {!Diag.all_codes}). *)

val lint_unit : ?include_base:bool -> Coredsl.Tast.tunit -> Diag.t list
(** All warnings for a unit, deterministically ordered: instructions in
    declaration order (then ops in graph order), then always-blocks,
    then functions, then unit-level register lints. *)

val promote : Diag.t list -> Diag.t list
(** Turn warnings into errors ([--werror]). *)
