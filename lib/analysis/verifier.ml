(* Dialect-aware structural verifier (see the .mli).

   One signature per registered op describes its shape; [check] walks the
   graph once for the SSA discipline and once per op for the shape rules.
   The registry is deliberately exhaustive over the ops the lowerings can
   emit: an op missing here is reported as unknown, which is exactly what
   we want from a sanitizer that guards aggressive pass rewrites. *)

open Ir.Mir

type level = [ `Hlir | `Lil | `Any ]

exception Verify_error of Diag.t

let w (v : value) = v.vty.Bitvec.width

let describe_op (op : op) =
  let tys vs = String.concat ", " (List.map (fun v -> Bitvec.ty_to_string v.vty) vs) in
  Printf.sprintf "op %d: %s : (%s) -> (%s)" op.oid op.opname (tys op.operands)
    (tys op.results)

(* ---- op signatures ---- *)

type arity = Exact of int | Between of int * int | At_least of int

let arity_ok a n =
  match a with
  | Exact k -> n = k
  | Between (lo, hi) -> n >= lo && n <= hi
  | At_least k -> n >= k

let arity_to_string = function
  | Exact k -> string_of_int k
  | Between (lo, hi) -> Printf.sprintf "%d..%d" lo hi
  | At_least k -> Printf.sprintf "at least %d" k

(* required attribute kinds *)
type akind = K_int | K_str | K_bv

let akind_name = function K_int -> "integer" | K_str -> "string" | K_bv -> "bit-vector"

let has_attr_kind op name = function
  | K_int -> attr_int op name <> None
  | K_str -> attr_str op name <> None
  | K_bv -> attr_bv op name <> None

type opsig = {
  os_operands : arity;
  os_results : int;
  os_attrs : (string * akind) list;  (* required attributes *)
  os_check : op -> string option;  (* extra width/value rules *)
}

let ok (_ : op) = None

let sg ?(attrs = []) ?(check = ok) operands results =
  { os_operands = operands; os_results = results; os_attrs = attrs; os_check = check }

let sum_widths vs = List.fold_left (fun a v -> a + w v) 0 vs

(* widths of both operands equal the result width (signless comb ops) *)
let bin_same op =
  match (op.operands, op.results) with
  | [ a; b ], [ r ] when w a = w r && w b = w r -> None
  | [ a; b ], [ r ] ->
      Some
        (Printf.sprintf "operand widths %d/%d must equal the result width %d" (w a) (w b)
           (w r))
  | _ -> None

(* comparison: equal operand widths, 1-bit result *)
let cmp_same op =
  match (op.operands, op.results) with
  | [ a; b ], [ r ] ->
      if w a <> w b then
        Some (Printf.sprintf "comparison operand widths %d and %d differ" (w a) (w b))
      else if w r <> 1 then
        Some (Printf.sprintf "comparison result must be 1 bit, not %d" (w r))
      else None
  | _ -> None

let const_check op =
  match (attr_bv op "value", op.results) with
  | Some v, [ r ] when Bitvec.width v <> w r ->
      Some
        (Printf.sprintf "constant value width %d does not match result width %d"
           (Bitvec.width v) (w r))
  | _ -> None

let icmp_predicates = [ "eq"; "ne"; "lt"; "le"; "gt"; "ge" ]

let hl_icmp_check op =
  match (attr_str op "predicate", op.results) with
  | Some p, _ when not (List.mem p icmp_predicates) ->
      Some (Printf.sprintf "unknown icmp predicate '%s'" p)
  | _, [ r ] when w r <> 1 -> Some "icmp result must be 1 bit"
  | _ -> None

let bool_ops_check op =
  match List.find_opt (fun v -> w v <> 1) (op.operands @ op.results) with
  | Some v -> Some (Printf.sprintf "boolean op on a %d-bit value" (w v))
  | None -> None

let mux_check op =
  match op.operands with
  | c :: _ when w c <> 1 -> Some (Printf.sprintf "mux condition must be 1 bit, not %d" (w c))
  | _ -> None

let comb_mux_check op =
  match (op.operands, op.results) with
  | [ c; t; f ], [ r ] ->
      if w c <> 1 then Some (Printf.sprintf "mux condition must be 1 bit, not %d" (w c))
      else if w t <> w r || w f <> w r then
        Some
          (Printf.sprintf "mux arm widths %d/%d must equal the result width %d" (w t) (w f)
             (w r))
      else None
  | _ -> None

let concat_check op =
  match op.results with
  | [ r ] when sum_widths op.operands <> w r ->
      Some
        (Printf.sprintf "concatenated operand widths sum to %d, result is %d bits"
           (sum_widths op.operands) (w r))
  | _ -> None

let hl_extract_check op =
  match (attr_int op "width", op.results) with
  | Some wd, [ r ] when wd <> w r ->
      Some (Printf.sprintf "width attribute %d does not match result width %d" wd (w r))
  | _ -> None

let comb_extract_check op =
  match (attr_int op "lowBit", op.operands, op.results) with
  | Some lb, [ a ], [ r ] when lb < 0 || lb + w r > w a ->
      Some
        (Printf.sprintf "extract of bits [%d..%d] out of a %d-bit operand" lb
           (lb + w r - 1) (w a))
  | _ -> None

let replicate_check op =
  match (op.operands, op.results) with
  | [ a ], [ r ] when w r = 0 || w r mod w a <> 0 ->
      Some
        (Printf.sprintf "replication result width %d is not a multiple of the operand \
                         width %d" (w r) (w a))
  | _ -> None

let registry : (string * opsig) list =
  let c2 = sg (Exact 2) 1 ~check:bin_same in
  let cmp = sg (Exact 2) 1 ~check:cmp_same in
  [
    (* constants (shared by both levels) *)
    ("hw.constant", sg (Exact 0) 1 ~attrs:[ ("value", K_bv) ] ~check:const_check);
    (* hwarith: bitwidth-aware arithmetic (HLIR) *)
    ("hwarith.add", sg (Exact 2) 1);
    ("hwarith.sub", sg (Exact 2) 1);
    ("hwarith.mul", sg (Exact 2) 1);
    ("hwarith.div", sg (Exact 2) 1);
    ("hwarith.rem", sg (Exact 2) 1);
    ("hwarith.band", sg (Exact 2) 1);
    ("hwarith.bor", sg (Exact 2) 1);
    ("hwarith.bxor", sg (Exact 2) 1);
    ("hwarith.shl", sg (Exact 2) 1);
    ("hwarith.shr", sg (Exact 2) 1);
    ("hwarith.not", sg (Exact 1) 1);
    ("hwarith.cast", sg (Exact 1) 1);
    ("hwarith.icmp", sg (Exact 2) 1 ~attrs:[ ("predicate", K_str) ] ~check:hl_icmp_check);
    ("hwarith.and", sg (Exact 2) 1 ~check:bool_ops_check);
    ("hwarith.or", sg (Exact 2) 1 ~check:bool_ops_check);
    ("hwarith.mux", sg (Exact 3) 1 ~check:mux_check);
    (* coredsl: architectural state and bit manipulation (HLIR) *)
    ("coredsl.field", sg (Exact 0) 1 ~attrs:[ ("name", K_str) ]);
    ("coredsl.get", sg (Between (0, 1)) 1 ~attrs:[ ("state", K_str) ]);
    ("coredsl.set", sg (Between (1, 3)) 0 ~attrs:[ ("state", K_str) ]);
    ("coredsl.load", sg (Between (1, 2)) 1 ~attrs:[ ("space", K_str); ("elems", K_int) ]);
    ("coredsl.store", sg (Between (2, 3)) 0 ~attrs:[ ("space", K_str); ("elems", K_int) ]);
    ("coredsl.rom", sg (Exact 1) 1 ~attrs:[ ("state", K_str) ]);
    ("coredsl.concat", sg (Exact 2) 1 ~check:concat_check);
    ("coredsl.extract", sg (Exact 2) 1 ~attrs:[ ("width", K_int) ] ~check:hl_extract_check);
    (* comb: signless combinational logic (LIL) *)
    ("comb.add", c2);
    ("comb.sub", c2);
    ("comb.mul", c2);
    ("comb.and", c2);
    ("comb.or", c2);
    ("comb.xor", c2);
    ("comb.divs", c2);
    ("comb.divu", c2);
    ("comb.mods", c2);
    ("comb.modu", c2);
    ("comb.shl", c2);
    ("comb.shru", c2);
    ("comb.shrs", c2);
    ("comb.icmp_eq", cmp);
    ("comb.icmp_ne", cmp);
    ("comb.icmp_slt", cmp);
    ("comb.icmp_ult", cmp);
    ("comb.icmp_sle", cmp);
    ("comb.icmp_ule", cmp);
    ("comb.icmp_sgt", cmp);
    ("comb.icmp_ugt", cmp);
    ("comb.icmp_sge", cmp);
    ("comb.icmp_uge", cmp);
    ("comb.mux", sg (Exact 3) 1 ~check:comb_mux_check);
    ("comb.extract", sg (Exact 1) 1 ~attrs:[ ("lowBit", K_int) ] ~check:comb_extract_check);
    ("comb.replicate", sg (Exact 1) 1 ~check:replicate_check);
    ("comb.concat", sg (At_least 1) 1 ~check:concat_check);
    (* lil: explicit SCAIE-V sub-interface operations (LIL) *)
    ("lil.instr_word", sg (Exact 0) 1);
    ("lil.read_rs1", sg (Exact 0) 1);
    ("lil.read_rs2", sg (Exact 0) 1);
    ("lil.read_pc", sg (Exact 0) 1);
    ("lil.read_custreg", sg (Exact 1) 1 ~attrs:[ ("reg", K_str) ]);
    ("lil.rom", sg (Exact 1) 1 ~attrs:[ ("rom", K_str) ]);
    ("lil.read_mem", sg (Between (1, 2)) 1 ~attrs:[ ("space", K_str); ("elems", K_int) ]);
    ("lil.write_rd", sg (Between (1, 2)) 0);
    ("lil.write_pc", sg (Between (1, 2)) 0);
    ("lil.write_custreg", sg (Between (2, 3)) 0 ~attrs:[ ("reg", K_str) ]);
    ("lil.write_mem", sg (Between (2, 3)) 0 ~attrs:[ ("space", K_str); ("elems", K_int) ]);
    ("lil.sink", sg (Exact 0) 0);
  ]

(* ---- dialect levels ---- *)

let dialect_of_opname name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let level_allows level dialect =
  match level with
  | `Hlir -> List.mem dialect [ "coredsl"; "hwarith"; "hw" ]
  | `Lil -> List.mem dialect [ "lil"; "comb"; "hw" ]

let level_name = function `Hlir -> "HLIR" | `Lil -> "LIL"

let infer_level g =
  let is_lil (op : op) =
    match dialect_of_opname op.opname with "lil" | "comb" -> true | _ -> false
  in
  if List.exists is_lil (all_ops g) then `Lil else `Hlir

(* ---- the check itself ---- *)

let check ?(level = `Any) (g : graph) : Diag.t list =
  let level = match level with `Any -> infer_level g | (`Hlir | `Lil) as l -> l in
  let out = ref [] in
  let violation ~code (op : op) fmt =
    Format.kasprintf
      (fun msg ->
        out :=
          Diag.make ~code ?span:op.oloc
            (Printf.sprintf "IR verifier: %s in %s: %s" op.opname g.gname msg)
            ~notes:[ "offending " ^ describe_op op ]
          :: !out)
      fmt
  in
  let shape op fmt = violation ~code:"E0510" op fmt in
  let ssa op fmt = violation ~code:"E0511" op fmt in
  (* SSA discipline: single def, def before use, operand type = def type *)
  let defined : (int, value) Hashtbl.t = Hashtbl.create 64 in
  let rec ssa_walk body =
    List.iter
      (fun (op : op) ->
        List.iter
          (fun v ->
            match Hashtbl.find_opt defined v.vid with
            | None -> ssa op "uses value %%%d before (or without) its definition" v.vid
            | Some def ->
                if not (Bitvec.ty_equal def.vty v.vty) then
                  ssa op "operand %%%d has type %s but was defined with type %s" v.vid
                    (Bitvec.ty_to_string v.vty) (Bitvec.ty_to_string def.vty))
          op.operands;
        List.iter
          (fun r ->
            if Hashtbl.mem defined r.vid then ssa op "value %%%d is defined twice" r.vid
            else Hashtbl.replace defined r.vid r)
          op.results;
        List.iter ssa_walk op.regions)
      body
  in
  ssa_walk g.body;
  (* per-op shape rules *)
  List.iter
    (fun (op : op) ->
      let dialect = dialect_of_opname op.opname in
      if not (level_allows level dialect) then
        shape op "dialect '%s' is not allowed at the %s level" dialect (level_name level)
      else
        match List.assoc_opt op.opname registry with
        | None -> shape op "unknown operation"
        | Some s ->
            if not (arity_ok s.os_operands (List.length op.operands)) then
              shape op "expects %s operand(s), got %d" (arity_to_string s.os_operands)
                (List.length op.operands);
            if List.length op.results <> s.os_results then
              shape op "expects %d result(s), got %d" s.os_results (List.length op.results);
            if op.regions <> [] then shape op "unexpected nested region";
            List.iter
              (fun (name, kind) ->
                if not (has_attr_kind op name kind) then
                  shape op "missing required %s attribute '%s'" (akind_name kind) name)
              s.os_attrs;
            if
              arity_ok s.os_operands (List.length op.operands)
              && List.length op.results = s.os_results
            then Option.iter (fun m -> shape op "%s" m) (s.os_check op))
    (all_ops g);
  (* LIL terminator invariant: exactly one lil.sink, last in the body *)
  (if level = `Lil then
     let sinks = List.filter (fun (o : op) -> o.opname = "lil.sink") (all_ops g) in
     match List.rev g.body with
     | [] ->
         out :=
           Diag.make ~code:"E0510"
             (Printf.sprintf "IR verifier: lil graph %s is empty (missing lil.sink \
                              terminator)" g.gname)
           :: !out
     | last :: _ ->
         if last.opname <> "lil.sink" then
           shape last "lil graph must end with the lil.sink terminator";
         if List.length sinks <> 1 then
           shape last "lil graph must contain exactly one lil.sink, found %d"
             (List.length sinks));
  List.rev !out

let verify ?level g =
  match check ?level g with [] -> () | d :: _ -> raise (Verify_error d)
