(** Structural checks on an RTL netlist before SystemVerilog emission.

    Complements [Rtl.Netlist.validate] (which raises stringly
    [Netlist_error]s) with structured diagnostics carrying originating
    CoreDSL provenance when available:
    - E0520: a signal driven more than once (duplicate node outputs, or a
      node shadowing an input port);
    - E0521: a combinational cycle, reported with the full signal path;
    - E0522: a referenced signal no node or input port defines.

    Provenance maps a netlist signal name back to a source span; use
    {!signal_provenance} over the LIL graph the hardware was generated
    from (hwgen names signals ["v<id>"] / ["v<id>_s<stage>"] after the
    defining SSA value). *)

exception Netcheck_error of Diag.t

val signal_provenance : Ir.Mir.graph -> string -> Diag.span option
(** Resolve a hwgen signal name to the source span of the LIL op defining
    the underlying SSA value, when the op recorded one. *)

val check :
  ?what:string ->
  ?provenance:(string -> Diag.span option) ->
  Rtl.Netlist.t ->
  Diag.t list
(** All structural violations, deterministically ordered (driver checks in
    node order, then undefined signals, then cycles). [what] names the
    functionality for the message (defaults to the module name). *)

val verify :
  ?what:string ->
  ?provenance:(string -> Diag.span option) ->
  Rtl.Netlist.t ->
  unit
(** Raise {!Netcheck_error} with the first violation of {!check}. *)
