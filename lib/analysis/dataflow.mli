(** Fixed-point dataflow framework over MIR graphs.

    A worklist engine computing one fact per SSA value. An analysis is a
    {!spec}: the lattice (join/equal, with [init] as the per-value starting
    element) plus a transfer function mapping one op's surrounding facts to
    updated facts. Forward analyses re-enqueue the users of a changed
    value; backward analyses re-enqueue its definer. The engine raises on
    divergence (a transfer-count budget quadratic in the graph size), and
    reports the number of transfer applications so tests can assert
    convergence bounds.

    Instances used by the linter (docs/ANALYSIS.md):
    - {!ranges}: forward constant-range/known-bits intervals over both the
      [hwarith] (non-wrapping) and [comb] (wrapping) algebras;
    - {!liveness}: backward liveness seeded at side-effecting ops;
    - {!reaching_writes}: the architectural-state writes a (straight-line)
      graph performs, in op order. *)

type direction = Forward | Backward

type 'f spec = {
  df_name : string;
  df_direction : direction;
  df_init : Ir.Mir.value -> 'f;  (** lattice bottom for this value *)
  df_transfer :
    Ir.Mir.op -> fact:(Ir.Mir.value -> 'f) -> (Ir.Mir.value * 'f) list;
      (** new facts implied by one op under the current assignment *)
  df_join : 'f -> 'f -> 'f;
  df_equal : 'f -> 'f -> bool;
}

type 'f result = {
  fact_of : Ir.Mir.value -> 'f;
  iterations : int;  (** transfer-function applications until the fixpoint *)
}

exception Diverged of string
(** Raised when the worklist exceeds its budget — a non-monotone or
    ever-growing lattice. *)

val run : 'f spec -> Ir.Mir.graph -> 'f result

(** {2 Constant ranges} *)

(** Inclusive numeric interval over math integers. *)
type range = { lo : Bitvec.Bn.t; hi : Bitvec.Bn.t }

val range_of_ty : Bitvec.ty -> range
(** The full representable range of a type. *)

val range_exact : range -> Bitvec.Bn.t option
(** [Some v] when the interval pins a single value. *)

val ranges : range option spec
(** Forward interval analysis; [None] is bottom (no executions seen). *)

(** {2 Liveness} *)

val liveness : bool spec
(** Backward: a value is live iff some transitive user has a side effect. *)

(** {2 Reaching writes} *)

val reaching_writes : Ir.Mir.graph -> (string * Ir.Mir.op) list
(** The architectural-state writes of the graph in op order, as
    [(state-or-space name, op)] — the degenerate straight-line form of a
    reaching-definitions analysis (MIR graphs have no control flow).
    Covers [coredsl.set]/[coredsl.store] at the HLIR level and the
    [lil.write_*] interface ops at the LIL level. *)
