(** Fixed-point dataflow framework over MIR graphs.

    A worklist engine computing one fact per SSA value. An analysis is a
    {!spec}: the lattice (join/equal, with [init] as the per-value starting
    element) plus a transfer function mapping one op's surrounding facts to
    updated facts. Forward analyses re-enqueue the users of a changed
    value; backward analyses re-enqueue its definer. Analyses on lattices
    of unbounded height supply a widening operator ([df_widen]): once a
    value's fact has changed {!widen_threshold} times, further growth
    jumps to the widened element (for intervals: the type bounds), making
    fixpoints linear in the number of uses. A transfer-count budget
    quadratic in the graph size remains as a pure safety net for broken
    (non-monotone, unwidened) transfer functions; the engine reports the
    number of transfer applications so tests can assert the real
    convergence bounds.

    Instances used by the linter (docs/ANALYSIS.md):
    - {!ranges}: forward constant-range/known-bits intervals over both the
      [hwarith] (non-wrapping) and [comb] (wrapping) algebras;
    - {!liveness}: backward liveness seeded at side-effecting ops;
    - {!reaching_writes}: the architectural-state writes a (straight-line)
      graph performs, in op order. *)

type direction = Forward | Backward

type 'f spec = {
  df_name : string;
  df_direction : direction;
  df_init : Ir.Mir.value -> 'f;  (** lattice bottom for this value *)
  df_transfer :
    Ir.Mir.op -> fact:(Ir.Mir.value -> 'f) -> (Ir.Mir.value * 'f) list;
      (** new facts implied by one op under the current assignment *)
  df_join : 'f -> 'f -> 'f;
  df_equal : 'f -> 'f -> bool;
  df_widen : (Ir.Mir.value -> 'f -> 'f -> 'f) option;
      (** [widen v old joined] replaces [joined] once [v]'s fact has
          changed {!widen_threshold} times; must be an upper bound of
          [joined] on a sub-lattice of finite height. [None] for lattices
          that are already finite-height (e.g. liveness). *)
}

type 'f result = {
  fact_of : Ir.Mir.value -> 'f;
  iterations : int;  (** transfer-function applications until the fixpoint *)
}

exception Diverged of string
(** Raised when the worklist exceeds its safety-net budget — a
    non-monotone or ever-growing (and unwidened) lattice. *)

val widen_threshold : int
(** Number of fact changes per value before [df_widen] kicks in. *)

val run : 'f spec -> Ir.Mir.graph -> 'f result

(** {2 Constant ranges} *)

(** Inclusive numeric interval over math integers. *)
type range = { lo : Bitvec.Bn.t; hi : Bitvec.Bn.t }

val range_of_ty : Bitvec.ty -> range
(** The full representable range of a type. *)

val range_exact : range -> Bitvec.Bn.t option
(** [Some v] when the interval pins a single value. *)

val exact : Bitvec.Bn.t -> range option
(** The singleton interval. *)

val clamp : Bitvec.ty -> range -> range
(** Intersect with the type's representable range (full range when the
    intersection would be empty). *)

val rjoin : range option -> range option -> range option
(** Interval join ([None] = bottom is the identity). *)

val requal : range option -> range option -> bool

val widen_range : Ir.Mir.value -> range option -> range option -> range option
(** Interval widening with thresholds at the value's type bounds: a bound
    that is still moving jumps to the representable extreme. *)

val decide_cmp :
  [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ] -> range -> range -> bool option
(** Decide a comparison from two intervals; [None] when undecidable. *)

val icmp_pred : string -> [ `Eq | `Ne | `Lt | `Le | `Gt | `Ge ] option
(** The [hwarith.icmp] predicate attribute, parsed. *)

val ranges_compute :
  Ir.Mir.op -> fact:(Ir.Mir.value -> range option) -> Ir.Mir.value -> range option
(** The interval transfer function for one result of one op — exposed so
    {!Absint} can reuse it as the interval half of its reduced product. *)

val ranges : range option spec
(** Forward interval analysis; [None] is bottom (no executions seen).
    Widens at the type bounds. *)

(** {2 Liveness} *)

val liveness : bool spec
(** Backward: a value is live iff some transitive user has a side effect. *)

(** {2 Reaching writes} *)

val reaching_writes : Ir.Mir.graph -> (string * Ir.Mir.op) list
(** The architectural-state writes of the graph in op order, as
    [(state-or-space name, op)] — the degenerate straight-line form of a
    reaching-definitions analysis (MIR graphs have no control flow).
    Covers [coredsl.set]/[coredsl.store] at the HLIR level and the
    [lil.write_*] interface ops at the LIL level. *)
