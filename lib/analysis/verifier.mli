(** Dialect-aware structural verifier for the mini-MLIR IR.

    Replaces the bare SSA walk of [Ir.Mir.verify] in the flow: every op is
    checked against a per-dialect signature registry (operand arity,
    operand/result width rules, required attributes and their kinds,
    region and terminator invariants) on top of the SSA discipline
    (single definition, definition before use, operand types matching the
    defining result).

    Dialect levels (see docs/ANALYSIS.md):
    - [`Hlir]: the Figure 5b form — [coredsl] + [hwarith] + [hw.constant].
    - [`Lil]: the Figure 5c CDFG — [lil] + [comb] + [hw.constant],
      terminated by exactly one [lil.sink] as the last op of the body.
    - [`Any]: infer the level from the ops present ([lil]/[comb] ops make
      the graph a lil graph, otherwise it is checked as HLIR).

    Codes: malformed ops (unknown op, wrong arity/widths/attributes,
    unexpected region, terminator violations) are E0510; SSA violations
    (use before def, double definition, operand/definition type mismatch)
    are E0511. *)

type level = [ `Hlir | `Lil | `Any ]

exception Verify_error of Diag.t

val describe_op : Ir.Mir.op -> string
(** One-line rendering of an op — name, id, operand and result types —
    used in diagnostics notes. *)

val check : ?level:level -> Ir.Mir.graph -> Diag.t list
(** All violations found in the graph, in op order (default level
    [`Any]). An empty list means the graph is well-formed. *)

val verify : ?level:level -> Ir.Mir.graph -> unit
(** Raise {!Verify_error} with the first violation of {!check}. *)
