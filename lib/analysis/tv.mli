(** Translation validation: prove (or heavily test) that an optimized MIR
    graph is observationally equivalent to the original.

    The contract (docs/NARROWING.md):

    - {e free inputs} are the results of non-[comb] ops — interface
      reads, instruction fields. A validated pass must leave those ops
      untouched (same SSA ids and types), which every {!Narrow} pass
      does by construction; a pass that rewrites one fails validation
      outright.
    - {e observables} are the side-effecting ops
      ({!Ir.Passes.has_side_effect}) in op order: opname, attributes,
      and the concrete patterns of their operands under
      {!Ir.Comb_eval} evaluation.

    When the summed free-input width is at most {!exhaustive_budget}
    bits the whole input space is enumerated (a proof); otherwise corner
    vectors plus a fixed-seed pseudo-random sample are driven, so runs
    are deterministic. Any mismatch raises {!Diag.Fatal} with code
    [E0530] naming the pass and a counterexample assignment. *)

type verdict = {
  tv_pass : string;
  tv_vectors : int;  (** input vectors driven *)
  tv_exhaustive : bool;  (** whole input space enumerated *)
}

val exhaustive_budget : int
(** Total free-input bits up to which validation is exhaustive. *)

val free_inputs : Ir.Mir.graph -> Ir.Mir.value list
(** The results of non-comb ops, in op order. *)

val validate :
  pass_name:string -> original:Ir.Mir.graph -> optimized:Ir.Mir.graph -> verdict
(** Raises {!Diag.Fatal} (E0530) on any counterexample. *)
