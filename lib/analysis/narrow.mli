(** Analysis-driven width narrowing of LIL graphs (docs/NARROWING.md).

    Consumes {!Absint} proofs to shrink the datapath — the paper's
    bit-precise-types advantage, applied by the optimizer instead of the
    programmer:

    - {!narrow_widths}: an op whose top [k] result bits are proven
      constant is re-emitted at width [w-k] on the low bits of its
      operands, and the constant high bits are re-attached with a free
      [comb.concat] (a fully pinned result becomes an [hw.constant]);
      only the modular ops (add/sub/mul/and/or/xor/mux) are eligible;
    - {!simplify_compares}: [comb.icmp_*] ops the domain decides fold to
      1-bit constants;
    - {!eliminate_dead_selects}: a [comb.mux] with a decided condition
      (or identical arms) forwards the surviving arm.

    {!narrow_graph} runs the three passes, re-running the analysis
    between them, then the ordinary fold/cse/dce pipeline to erase the
    stranded high-bit logic. Every pass that changed the graph — and the
    end-to-end composition — is checked by {!Tv}; a counterexample
    raises {!Diag.Fatal} [E0530] and no invalid graph can escape. *)

type stats = {
  ns_ops_rewritten : int;  (** ops re-emitted at a narrower width *)
  ns_bits_removed : int;  (** total result bits proven constant and stripped *)
  ns_compares_folded : int;
  ns_selects_removed : int;
  ns_tv_validations : int;  (** translation-validator runs that passed *)
  ns_tv_vectors : int;  (** total input vectors driven across them *)
  ns_tv_exhaustive : int;  (** how many runs enumerated the whole space *)
}

val zero_stats : stats

val narrowable : string -> bool
(** Is this opname eligible for width narrowing? *)

val narrow_widths : Absint.result -> Ir.Mir.graph -> Ir.Mir.graph * int * int
(** [(graph', ops_rewritten, bits_removed)] — pure rewrite, no TV. *)

val simplify_compares : Absint.result -> Ir.Mir.graph -> Ir.Mir.graph * int
(** [(graph', compares_folded)] — pure rewrite, no TV. *)

val eliminate_dead_selects : Absint.result -> Ir.Mir.graph -> Ir.Mir.graph * int
(** [(graph', selects_removed)] — pure rewrite, no TV. *)

val narrow_graph :
  ?obs:Obs.scope ->
  ?verify_each:(pass_name:string -> Ir.Mir.graph -> unit) ->
  Ir.Mir.graph ->
  Ir.Mir.graph * stats
(** The full TV-guarded narrowing stage. With [obs], each pass records a
    ["pass:NAME"] span via {!Ir.Passes.run_pass}. With [verify_each],
    the sanitizer callback runs after every graph-changing pass. Raises
    {!Diag.Fatal} (E0530) if translation validation finds a
    counterexample. *)
