(* Translation validation for optimization passes (see the .mli).

   Equivalence is checked by co-simulating the two graphs through
   {!Ir.Comb_eval}, the single concrete semantics of the [comb] dialect:

   - the free inputs are the results of non-comb ops (interface reads,
     instruction fields, ...). Passes never touch those ops, so the two
     graphs share them by SSA id and a single assignment drives both;
   - the observables are the side-effecting ops (architectural writes and
     stores), in op order: their opname, attributes, and the concrete
     patterns of their operands must coincide on every driven vector.

   When the total free-input width fits the exhaustive budget the whole
   input space is enumerated — a proof, not a test. Beyond it we drive
   corner vectors (all-zeros, all-ones, each input saturated alone) plus
   a fixed-seed pseudo-random sample, so validation is deterministic
   across runs. Any counterexample raises a structured E0530 naming the
   pass and the offending assignment. *)

open Ir.Mir
module Bn = Bitvec.Bn

type verdict = { tv_pass : string; tv_vectors : int; tv_exhaustive : bool }

(* total free-input bits up to which the input space is enumerated *)
let exhaustive_budget = 12

(* pseudo-random vectors driven beyond the exhaustive budget *)
let random_vectors = 128

let attr_render (k, a) =
  match a with
  | A_int i -> Printf.sprintf "%s=%d" k i
  | A_str s -> Printf.sprintf "%s=%s" k s
  | A_bool b -> Printf.sprintf "%s=%b" k b
  | A_bv v -> Printf.sprintf "%s=%s" k (Bitvec.to_hex_string v)

let op_skeleton (op : op) =
  Printf.sprintf "%s{%s}" op.opname (String.concat "," (List.map attr_render op.attrs))

(* results of non-comb ops, in op order: the free inputs of the graph *)
let free_inputs (g : graph) : value list =
  List.concat_map
    (fun (op : op) ->
      if Ir.Comb_eval.is_comb op.opname then [] else op.results)
    (all_ops g)

let fail ~pass_name fmt =
  Format.kasprintf
    (fun msg ->
      Diag.fatal
        (Diag.make ~code:"E0530"
           (Printf.sprintf "translation validation failed in pass '%s': %s" pass_name msg)))
    fmt

(* evaluate [g] under the free-input assignment [env0]; returns the
   observable stream *)
let eval_graph (g : graph) (env0 : (int, Bitvec.t) Hashtbl.t) :
    (string * Bitvec.t list) list =
  let env : (int, Bitvec.t) Hashtbl.t = Hashtbl.create 64 in
  let lookup (v : value) =
    match Hashtbl.find_opt env v.vid with
    | Some x -> x
    | None -> (
        match Hashtbl.find_opt env0 v.vid with
        | Some x -> x
        | None -> Bitvec.zero (Bitvec.unsigned_ty v.vty.Bitvec.width))
  in
  let obs = ref [] in
  List.iter
    (fun (op : op) ->
      (if Ir.Comb_eval.is_comb op.opname then
         match op.results with
         | [ r ] ->
             let ops = List.map lookup op.operands in
             let res =
               Ir.Comb_eval.eval ~name:op.opname ~attrs:op.attrs ~ops
                 ~result_width:r.vty.Bitvec.width
             in
             Hashtbl.replace env r.vid res
         | _ -> ()
       else
         (* free input: take the driven value *)
         List.iter
           (fun (r : value) -> Hashtbl.replace env r.vid (lookup r))
           op.results);
      if Ir.Passes.has_side_effect op then
        obs := (op_skeleton op, List.map lookup op.operands) :: !obs)
    (all_ops g);
  List.rev !obs

(* deterministic seed from the graph name and pass, so reruns drive the
   same sample *)
let seed_of ~pass_name (g : graph) =
  let h = Hashtbl.hash (g.gname, pass_name) in
  [| h; h lxor 0x5f3759df |]

let bn_random st w =
  let x = ref Bn.zero in
  let remaining = ref w in
  while !remaining > 0 do
    let k = min 24 !remaining in
    x := Bn.add (Bn.shift_left !x k) (Bn.of_int (Random.State.int st (1 lsl k)));
    remaining := !remaining - k
  done;
  !x

let assignment_render inputs env0 =
  String.concat ", "
    (List.map
       (fun (v : value) ->
         let x =
           match Hashtbl.find_opt env0 v.vid with
           | Some x -> x
           | None -> Bitvec.zero (Bitvec.unsigned_ty v.vty.Bitvec.width)
         in
         Printf.sprintf "%%%d=%s" v.vid (Bitvec.to_hex_string x))
       inputs)

let check_vector ~pass_name ~original ~optimized inputs env0 =
  let oa = eval_graph original env0 and ob = eval_graph optimized env0 in
  if List.length oa <> List.length ob then
    fail ~pass_name "graphs perform %d vs %d side effects under %s" (List.length oa)
      (List.length ob)
      (assignment_render inputs env0)
  else
    List.iter2
      (fun (ska, va) (skb, vb) ->
        if ska <> skb then
          fail ~pass_name "side-effect skeleton changed: %s vs %s" ska skb;
        if not (List.for_all2 (fun a b -> Bn.equal (Bitvec.pattern a) (Bitvec.pattern b)) va vb)
        then
          fail ~pass_name
            "counterexample on %s: %s observes [%s] in the original but [%s] after the pass"
            ska
            (assignment_render inputs env0)
            (String.concat ";" (List.map Bitvec.to_hex_string va))
            (String.concat ";" (List.map Bitvec.to_hex_string vb)))
      oa ob

let validate ~pass_name ~(original : graph) ~(optimized : graph) : verdict =
  (* the free inputs must survive the pass untouched: same ids, same
     types — otherwise the co-simulation below would be vacuous. A pass
     may drop an input that became unused (dce of interface reads) but
     can never invent or retype one. *)
  let inputs = free_inputs original in
  let inputs' = free_inputs optimized in
  let id_ty (v : value) = (v.vid, v.vty) in
  let originals = List.map id_ty inputs in
  List.iter
    (fun v ->
      if not (List.mem (id_ty v) originals) then
        fail ~pass_name "the pass rewrote a non-combinational (interface) op")
    inputs';
  let total_bits = List.fold_left (fun acc (v : value) -> acc + v.vty.Bitvec.width) 0 inputs in
  let drive env0 = check_vector ~pass_name ~original ~optimized inputs env0 in
  if total_bits <= exhaustive_budget then begin
    let n = 1 lsl total_bits in
    for i = 0 to n - 1 do
      let env0 = Hashtbl.create 16 in
      let off = ref 0 in
      List.iter
        (fun (v : value) ->
          let w = v.vty.Bitvec.width in
          let slice = (i lsr !off) land ((1 lsl w) - 1) in
          Hashtbl.replace env0 v.vid (Bitvec.of_int (Bitvec.unsigned_ty w) slice);
          off := !off + w)
        inputs;
      drive env0
    done;
    { tv_pass = pass_name; tv_vectors = max n 1; tv_exhaustive = true }
  end
  else begin
    let vectors = ref 0 in
    let drive env0 = incr vectors; drive env0 in
    let const_vec f =
      let env0 = Hashtbl.create 16 in
      List.iter
        (fun (v : value) ->
          let w = v.vty.Bitvec.width in
          Hashtbl.replace env0 v.vid (Bitvec.of_bn (Bitvec.unsigned_ty w) (f w)))
        inputs;
      env0
    in
    (* corners: all zeros, all ones, then each input saturated alone *)
    drive (const_vec (fun _ -> Bn.zero));
    drive (const_vec (fun w -> Bn.sub (Bn.pow2 w) Bn.one));
    List.iter
      (fun (vsat : value) ->
        let env0 = Hashtbl.create 16 in
        List.iter
          (fun (v : value) ->
            let w = v.vty.Bitvec.width in
            let x = if v.vid = vsat.vid then Bn.sub (Bn.pow2 w) Bn.one else Bn.zero in
            Hashtbl.replace env0 v.vid (Bitvec.of_bn (Bitvec.unsigned_ty w) x))
          inputs;
        drive env0)
      inputs;
    let st = Random.State.make (seed_of ~pass_name original) in
    for _ = 1 to random_vectors do
      let env0 = Hashtbl.create 16 in
      List.iter
        (fun (v : value) ->
          let w = v.vty.Bitvec.width in
          Hashtbl.replace env0 v.vid (Bitvec.of_bn (Bitvec.unsigned_ty w) (bn_random st w)))
        inputs;
      drive env0
    done;
    { tv_pass = pass_name; tv_vectors = !vectors; tv_exhaustive = false }
  end
