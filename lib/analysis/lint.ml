(* CoreDSL linter: W1xxx warnings over a typed unit.

   Two sources of facts: direct walks of the typed AST (encoding-field and
   register usage, definite assignment of locals) and the dataflow
   instances over the lowered HLIR (dead computations via liveness,
   provably-constant conditions and oversized shifts via ranges, missing
   architectural writes via reaching_writes).  Base-ISA instructions are
   skipped by default — the linter targets the user's ISAX. *)

open Coredsl.Tast
module M = Ir.Mir

let lint_codes =
  [
    ("W1001", "dead assignment: computed value is never used");
    ("W1002", "unused encoding field");
    ("W1003", "unused architectural register");
    ("W1004", "branch condition is provably constant");
    ("W1005", "shift amount provably >= operand width");
    ("W1006", "local read before any assignment");
    ("W1007", "instruction writes no architectural state");
    ("W1008", "architectural write provably truncates its value");
    ("W1009", "comparison is provably constant (bit-level analysis)");
    ("W1010", "result bits can never toggle");
  ]

let span_of loc = Coredsl.Ast.span_of_loc loc

let warn ?span code fmt =
  Format.kasprintf (fun m -> Diag.make ~severity:Diag.Warning ?span ~code m) fmt

let promote ds =
  List.map
    (fun (d : Diag.t) ->
      if d.severity = Diag.Warning then { d with Diag.severity = Diag.Error } else d)
    ds

(* ------------------------------------------------------------------ *)
(* Generic TAST traversal: visit every expression in evaluation order. *)

let rec iter_expr f (e : texpr) =
  f e;
  match e.te with
  | T_lit _ | T_local _ | T_field _ | T_reg _ -> ()
  | T_regfile (_, i) | T_rom (_, i) -> iter_expr f i
  | T_mem { addr; _ } -> iter_expr f addr
  | T_binop (_, a, b) | T_concat (a, b) ->
      iter_expr f a;
      iter_expr f b
  | T_unop (_, a) | T_cast a -> iter_expr f a
  | T_extract { value; lo; _ } ->
      iter_expr f value;
      iter_expr f lo
  | T_ternary (c, a, b) ->
      iter_expr f c;
      iter_expr f a;
      iter_expr f b
  | T_call (_, args) -> List.iter (iter_expr f) args

let rec iter_stmt f (s : tstmt) =
  (match s.ts with
  | S_local_decl (_, _, e) -> Option.iter (iter_expr f) e
  | S_assign_local (_, e) | S_assign_reg (_, e) | S_expr e -> iter_expr f e
  | S_assign_regfile (_, i, v) ->
      iter_expr f i;
      iter_expr f v
  | S_assign_mem { addr; value; _ } ->
      iter_expr f addr;
      iter_expr f value
  | S_if (c, t, e) ->
      iter_expr f c;
      List.iter (iter_stmt f) t;
      List.iter (iter_stmt f) e
  | S_for { init; cond; step; body } ->
      List.iter (iter_stmt f) init;
      iter_expr f cond;
      List.iter (iter_stmt f) step;
      List.iter (iter_stmt f) body
  | S_spawn body -> List.iter (iter_stmt f) body
  | S_return e -> Option.iter (iter_expr f) e);
  ()

let iter_stmts f ss = List.iter (iter_stmt f) ss

(* ------------------------------------------------------------------ *)
(* W1002: encoding fields never read by the behavior.                  *)

let unused_fields (ti : tinstr) =
  let used = Hashtbl.create 8 in
  iter_stmts
    (fun e -> match e.te with T_field n -> Hashtbl.replace used n () | _ -> ())
    ti.ti_behavior;
  let anchor =
    match ti.ti_behavior with s :: _ -> Some (span_of s.tsloc) | [] -> None
  in
  List.filter_map
    (fun (f : field_info) ->
      if Hashtbl.mem used f.fld_name then None
      else
        Some
          (warn ?span:anchor "W1002"
             "instruction %s: encoding field '%s' is never read" ti.ti_name
             f.fld_name))
    ti.fields

(* ------------------------------------------------------------------ *)
(* W1006: local read before any assignment (definite-assignment walk). *)

(* Union semantics at joins: a local assigned on *some* path is treated as
   assigned afterwards, so only reads that no execution path can have
   initialized are reported. *)
let read_before_assign ~what ?(pre = []) (body : tstmt list) =
  let declared = Hashtbl.create 8 in
  let assigned = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace assigned n ()) pre;
  let warns = ref [] in
  let reported = Hashtbl.create 8 in
  let check_expr e =
    iter_expr
      (fun e ->
        match e.te with
        | T_local n
          when Hashtbl.mem declared n
               && (not (Hashtbl.mem assigned n))
               && not (Hashtbl.mem reported n) ->
            Hashtbl.replace reported n ();
            warns :=
              warn ~span:(span_of e.tloc) "W1006"
                "%s: local '%s' is read before any assignment" what n
              :: !warns
        | _ -> ())
      e
  in
  let rec stmt (s : tstmt) =
    match s.ts with
    | S_local_decl (n, _, init) ->
        Option.iter check_expr init;
        Hashtbl.replace declared n ();
        if init <> None then Hashtbl.replace assigned n ()
    | S_assign_local (n, e) ->
        check_expr e;
        Hashtbl.replace assigned n ()
    | S_assign_reg (_, e) | S_expr e -> check_expr e
    | S_assign_regfile (_, i, v) ->
        check_expr i;
        check_expr v
    | S_assign_mem { addr; value; _ } ->
        check_expr addr;
        check_expr value
    | S_if (c, t, e) ->
        check_expr c;
        List.iter stmt t;
        List.iter stmt e
    | S_for { init; cond; step; body } ->
        List.iter stmt init;
        check_expr cond;
        List.iter stmt body;
        List.iter stmt step
    | S_spawn body -> List.iter stmt body
    | S_return e -> Option.iter check_expr e
  in
  List.iter stmt body;
  List.rev !warns

(* ------------------------------------------------------------------ *)
(* MIR-level lints over a lowered HLIR graph.                          *)

let span_key = function
  | None -> "<none>"
  | Some (s : Diag.span) -> Printf.sprintf "%s:%d:%d" s.sp_file s.sp_line s.sp_col

let is_lintable_compute (op : M.op) =
  op.results <> []
  && (not (Ir.Passes.has_side_effect op))
  && op.opname <> "coredsl.field"
  && op.opname <> "hw.constant"

(* Predicate machinery the HLIR lowering generates eagerly and DCE later
   removes: the negated else-branch predicate ([x == 0] over an i1) and the
   predicated-write merge mux (whose condition also predicates a state
   write). Dead instances are compiler artifacts, not user dead code. *)
let is_lowering_artifact defs uses (op : M.op) =
  match op.opname with
  | "hwarith.icmp" -> (
      match (op.M.operands, M.attr_str op "predicate") with
      | [ a; b ], Some "eq" ->
          a.M.vty.Bitvec.width = 1
          && (match Hashtbl.find_opt defs b.M.vid with
             | Some (d : M.op) -> d.opname = "hw.constant"
             | None -> false)
      | _ -> false)
  | "hwarith.mux" -> (
      match op.M.operands with
      | p :: _ -> (
          match Hashtbl.find_opt uses p.M.vid with
          | Some users -> List.exists Ir.Passes.has_side_effect users
          | None -> false)
      | [] -> false)
  | _ -> false

(* Loop unrolling clones ops sharing one source span; report each
   (code, span, message) once. *)
let dedup_push seen out (d : Diag.t) =
  let k = (d.Diag.code, span_key d.Diag.span, d.Diag.message) in
  if not (Hashtbl.mem seen k) then begin
    Hashtbl.replace seen k ();
    out := d :: !out
  end

let mir_lints ~what ~is_instruction (g : M.graph) =
  let ops = M.all_ops g in
  let uses = M.use_map g in
  let defs = M.def_map g in
  let live = Dataflow.run Dataflow.liveness g in
  let rng = lazy (Dataflow.run Dataflow.ranges g) in
  let range_of v = (Lazy.force rng).Dataflow.fact_of v in
  (* The bit-level product analysis, for the W1008-W1010 lints: shared by
     the whole graph walk and only forced when a candidate op exists. *)
  let ai = lazy (Absint.analyze g) in
  let afact v = Absint.fact_of (Lazy.force ai) v in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let push d = dedup_push seen out d in
  List.iter
    (fun (op : M.op) ->
      (* W1001: dead computation roots — no user at all, confirmed dead by
         the liveness analysis (side-effecting ops are never dead). *)
      if
        is_lintable_compute op
        && (not (is_lowering_artifact defs uses op))
        && List.for_all
             (fun (r : M.value) ->
               (match Hashtbl.find_opt uses r.vid with
               | None | Some [] -> true
               | Some _ -> false)
               && not (live.Dataflow.fact_of r))
             op.results
      then begin
        let msg =
          match (op.opname, M.attr_str op "state") with
          | "coredsl.get", Some st ->
              Printf.sprintf "%s: value read from %s is never used" what st
          | _ -> Printf.sprintf "%s: computed value is never used" what
        in
        push (Diag.make ~severity:Diag.Warning ?span:op.oloc ~code:"W1001" msg)
      end;
      (* W1008: an architectural write whose value rides through a
         narrowing cast the analysis proves always loses the value — the
         source interval lies entirely outside the destination's range. *)
      if Ir.Passes.has_side_effect op then
        List.iter
          (fun (v : M.value) ->
            match Hashtbl.find_opt defs v.M.vid with
            | Some (d : M.op) when d.opname = "hwarith.cast" -> (
                match d.M.operands with
                | [ src ] when src.M.vty.Bitvec.width > v.M.vty.Bitvec.width -> (
                    match afact src with
                    | Some f ->
                        let dst = Dataflow.range_of_ty v.M.vty in
                        let r = f.Absint.f_range in
                        if
                          Bitvec.Bn.compare r.Dataflow.lo dst.Dataflow.hi > 0
                          || Bitvec.Bn.compare r.Dataflow.hi dst.Dataflow.lo < 0
                        then
                          push
                            (warn ?span:op.oloc "W1008"
                               "%s: written value is provably truncated (a %d-bit \
                                value never representable in %d bits)"
                               what src.M.vty.Bitvec.width v.M.vty.Bitvec.width)
                    | None -> ())
                | _ -> ())
            | _ -> ())
          op.operands;
      (* W1004: comparison / branch condition provably constant. *)
      (match op.opname with
      | "hwarith.icmp" -> (
          match op.results with
          | [ r ] -> (
              match Option.bind (range_of r) Dataflow.range_exact with
              | Some v ->
                  let truth = if Bitvec.Bn.is_zero v then "false" else "true" in
                  push
                    (warn ?span:op.oloc "W1004"
                       "%s: comparison is always %s" what truth)
              | None -> (
                  (* W1009: the intervals alone could not decide, but the
                     bit-level product can. *)
                  match Option.bind (afact r) Absint.decide_bool with
                  | Some b ->
                      push
                        (warn ?span:op.oloc "W1009"
                           "%s: comparison is always %s (bit-level analysis)" what
                           (if b then "true" else "false"))
                  | None -> ()))
          | _ -> ())
      | "hwarith.mux" -> (
          match op.operands with
          | cond :: _ -> (
              let cond_is_icmp =
                match Hashtbl.find_opt defs cond.M.vid with
                | Some d -> d.M.opname = "hwarith.icmp"
                | None -> false
              in
              if not cond_is_icmp then
                match Option.bind (range_of cond) Dataflow.range_exact with
                | Some v ->
                    let truth =
                      if Bitvec.Bn.is_zero v then "false" else "true"
                    in
                    push
                      (warn ?span:op.oloc "W1004"
                         "%s: condition is always %s" what truth)
                | None -> ())
          | [] -> ())
      | "hwarith.shl" | "hwarith.shr" -> (
          (* W1005: the shift amount's lower bound reaches the operand
             width, so the result is provably degenerate. *)
          match op.operands with
          | [ x; amt ] -> (
              match range_of amt with
              | Some r
                when Bitvec.Bn.compare r.Dataflow.lo
                       (Bitvec.Bn.of_int x.M.vty.Bitvec.width)
                     >= 0 ->
                  push
                    (warn ?span:op.oloc "W1005"
                       "%s: shift amount is always >= the operand width (%d)"
                       what x.M.vty.Bitvec.width)
              | _ -> ())
          | _ -> ())
      | "hwarith.add" | "hwarith.sub" | "hwarith.mul" | "comb.add" | "comb.sub"
      | "comb.mul" -> (
          (* W1010: arithmetic result bits the analysis proves stuck beyond
             what the value's interval already explains (restricted to
             arithmetic so structural shift/concat zeros stay silent). *)
          match op.results with
          | [ r ]
            when match Hashtbl.find_opt uses r.M.vid with
                 | Some (_ :: _) -> true
                 | _ -> false -> (
              match afact r with
              | Some f ->
                  let w = r.M.vty.Bitvec.width in
                  let known = Absint.known_count ~width:w f.Absint.f_bits in
                  let explained =
                    Absint.known_count ~width:w
                      (Absint.bits_from_range r.M.vty f.Absint.f_range)
                  in
                  if known < w && known > explained then
                    push
                      (warn ?span:op.oloc "W1010"
                         "%s: %d of %d result bits can never toggle" what
                         (known - explained) w)
              | None -> ())
          | _ -> ())
      | _ -> ()))
    ops;
  let out = List.rev !out in
  (* W1007: an instruction whose behavior writes no architectural state
     compiles to dead hardware. *)
  if is_instruction && Dataflow.reaching_writes g = [] then
    let anchor =
      List.find_map (fun (op : M.op) -> op.M.oloc) ops
    in
    out
    @ [
        warn ?span:anchor "W1007"
          "%s: writes no architectural state (no register, memory or PC \
           update)" what;
      ]
  else out

(* ------------------------------------------------------------------ *)
(* W1003: architectural registers never referenced anywhere.           *)

let unused_registers (tu : tunit) =
  let used = Hashtbl.create 8 in
  let note_expr e =
    match e.te with
    | T_reg n | T_regfile (n, _) | T_rom (n, _) -> Hashtbl.replace used n ()
    | _ -> ()
  in
  (* Register *references* count from every body, including the base
     ISA's: X/PC are used by base instructions even if no ISAX touches
     them. *)
  let rec note_stmt (s : tstmt) =
    match s.ts with
    | S_assign_reg (n, _) | S_assign_regfile (n, _, _) ->
        Hashtbl.replace used n ()
    | S_if (_, t, e) ->
        List.iter note_stmt t;
        List.iter note_stmt e
    | S_for { init; step; body; _ } ->
        List.iter note_stmt init;
        List.iter note_stmt step;
        List.iter note_stmt body
    | S_spawn body -> List.iter note_stmt body
    | _ -> ()
  in
  let walk body =
    iter_stmts note_expr body;
    List.iter note_stmt body
  in
  List.iter (fun (ti : tinstr) -> walk ti.ti_behavior) tu.tinstrs;
  List.iter (fun (ta : talways) -> walk ta.ta_body) tu.talways;
  List.iter (fun (tf : tfunc) -> walk tf.tf_body) tu.tfuncs;
  List.filter_map
    (fun (r : Coredsl.Elaborate.reg) ->
      if r.rname = "X" || r.is_pc || r.rconst || Hashtbl.mem used r.rname then
        None
      else
        Some
          (warn "W1003" "architectural register '%s' is never referenced"
             r.rname))
    tu.elab.Coredsl.Elaborate.regs

(* ------------------------------------------------------------------ *)

let base_instr_names =
  lazy
    (let names = Hashtbl.create 64 in
     let add (tu : tunit) =
       List.iter
         (fun (ti : tinstr) -> Hashtbl.replace names ti.ti_name ())
         tu.tinstrs
     in
     add (Coredsl.compile_rv32i ());
     add (Coredsl.compile_rv32im ());
     names)

let lint_unit ?(include_base = false) (tu : tunit) =
  let base = Lazy.force base_instr_names in
  let is_base n = (not include_base) && Hashtbl.mem base n in
  let acc = ref [] in
  let add ds = acc := !acc @ ds in
  List.iter
    (fun (ti : tinstr) ->
      if not (is_base ti.ti_name) then begin
        let what = Printf.sprintf "instruction %s" ti.ti_name in
        add (unused_fields ti);
        add (read_before_assign ~what ti.ti_behavior);
        match Ir.Hlir.lower_instruction tu ti with
        | g -> add (mir_lints ~what ~is_instruction:true g)
        | exception (Ir.Hlir.Lower_error _ | Diag.Fatal _) -> ()
      end)
    tu.tinstrs;
  List.iter
    (fun (ta : talways) ->
      let what = Printf.sprintf "always block %s" ta.ta_name in
      add (read_before_assign ~what ta.ta_body);
      match Ir.Hlir.lower_always tu ta with
      | g -> add (mir_lints ~what ~is_instruction:false g)
      | exception (Ir.Hlir.Lower_error _ | Diag.Fatal _) -> ())
    tu.talways;
  List.iter
    (fun (tf : tfunc) ->
      let what = Printf.sprintf "function %s" tf.tf_name in
      add
        (read_before_assign ~what
           ~pre:(List.map fst tf.tf_params)
           tf.tf_body))
    tu.tfuncs;
  add (unused_registers tu);
  !acc
