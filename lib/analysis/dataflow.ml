(* Fixed-point dataflow over MIR graphs (see the .mli).

   The engine indexes the graph once (value -> defining op, value -> using
   ops), seeds the worklist with every op, and applies the transfer
   function until no fact changes. Facts default to [df_init] until first
   written, so sparse analyses pay only for the values they touch. *)

open Ir.Mir
module Bn = Bitvec.Bn

type direction = Forward | Backward

type 'f spec = {
  df_name : string;
  df_direction : direction;
  df_init : value -> 'f;
  df_transfer : op -> fact:(value -> 'f) -> (value * 'f) list;
  df_join : 'f -> 'f -> 'f;
  df_equal : 'f -> 'f -> bool;
  df_widen : (value -> 'f -> 'f -> 'f) option;
}

type 'f result = { fact_of : value -> 'f; iterations : int }

exception Diverged of string

(* after this many changes to one value's fact, jump to the widened
   element instead of climbing the lattice one rung at a time *)
let widen_threshold = 3

let run (spec : 'f spec) (g : graph) : 'f result =
  let ops = Array.of_list (all_ops g) in
  let n = Array.length ops in
  let facts : (int, 'f) Hashtbl.t = Hashtbl.create (2 * n) in
  let fact (v : value) =
    match Hashtbl.find_opt facts v.vid with Some f -> f | None -> spec.df_init v
  in
  (* dependency indices: which op defines / which ops use each value *)
  let def_idx : (int, int) Hashtbl.t = Hashtbl.create n in
  let use_idx : (int, int list) Hashtbl.t = Hashtbl.create n in
  Array.iteri
    (fun i (o : op) ->
      List.iter (fun r -> Hashtbl.replace def_idx r.vid i) o.results;
      List.iter
        (fun v ->
          Hashtbl.replace use_idx v.vid
            (i :: Option.value ~default:[] (Hashtbl.find_opt use_idx v.vid)))
        o.operands)
    ops;
  let in_queue = Array.make (max n 1) false in
  let q = Queue.create () in
  let enqueue i =
    if not in_queue.(i) then begin
      in_queue.(i) <- true;
      Queue.add i q
    end
  in
  (match spec.df_direction with
  | Forward -> for i = 0 to n - 1 do enqueue i done
  | Backward -> for i = n - 1 downto 0 do enqueue i done);
  (* with widening each value's fact changes O(widen_threshold + lattice
     height after widening) times, so the fixpoint is linear in uses; the
     quadratic budget below is a pure safety net for broken (non-monotone
     or unwidened ever-growing) transfer functions, not a convergence
     mechanism *)
  let budget = 64 * (n + 1) * (n + 1) in
  let changes : (int, int) Hashtbl.t = Hashtbl.create (2 * n) in
  let iterations = ref 0 in
  while not (Queue.is_empty q) do
    let i = Queue.take q in
    in_queue.(i) <- false;
    incr iterations;
    if !iterations > budget then
      raise
        (Diverged
           (Printf.sprintf "%s did not converge on %s after %d transfers" spec.df_name
              g.gname !iterations));
    List.iter
      (fun ((v : value), f) ->
        let old = fact v in
        let joined = spec.df_join old f in
        let joined =
          match spec.df_widen with
          | Some widen when not (spec.df_equal old joined) ->
              let c = Option.value ~default:0 (Hashtbl.find_opt changes v.vid) in
              if c >= widen_threshold then widen v old joined else joined
          | _ -> joined
        in
        if not (spec.df_equal old joined) then begin
          Hashtbl.replace facts v.vid joined;
          Hashtbl.replace changes v.vid
            (1 + Option.value ~default:0 (Hashtbl.find_opt changes v.vid));
          match spec.df_direction with
          | Forward ->
              List.iter enqueue (Option.value ~default:[] (Hashtbl.find_opt use_idx v.vid))
          | Backward -> (
              match Hashtbl.find_opt def_idx v.vid with Some d -> enqueue d | None -> ())
        end)
      (spec.df_transfer ops.(i) ~fact)
  done;
  { fact_of = fact; iterations = !iterations }

(* ---- constant ranges ---- *)

type range = { lo : Bn.t; hi : Bn.t }

let bn_min a b = if Bn.compare a b <= 0 then a else b
let bn_max a b = if Bn.compare a b >= 0 then a else b

let range_of_ty (t : Bitvec.ty) = { lo = Bitvec.min_value_bn t; hi = Bitvec.max_value_bn t }

let range_exact r = if Bn.equal r.lo r.hi then Some r.lo else None

(* clamp a computed interval into what the result type can represent *)
let clamp (t : Bitvec.ty) r =
  let full = range_of_ty t in
  let lo = bn_max r.lo full.lo and hi = bn_min r.hi full.hi in
  if Bn.compare lo hi > 0 then full else { lo; hi }

let rjoin a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some { lo = bn_min a.lo b.lo; hi = bn_max a.hi b.hi }

let requal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> Bn.equal a.lo b.lo && Bn.equal a.hi b.hi
  | _ -> false

let exact v = Some { lo = v; hi = v }

(* decide a comparison from two intervals; [None] when undecidable *)
let decide_cmp pred a b =
  let lt_always = Bn.compare a.hi b.lo < 0 in
  let ge_always = Bn.compare a.lo b.hi >= 0 in
  let le_always = Bn.compare a.hi b.lo <= 0 in
  let gt_always = Bn.compare a.lo b.hi > 0 in
  let disjoint = Bn.compare a.hi b.lo < 0 || Bn.compare b.hi a.lo < 0 in
  let same_singleton =
    Bn.equal a.lo a.hi && Bn.equal b.lo b.hi && Bn.equal a.lo b.lo
  in
  match pred with
  | `Eq -> if same_singleton then Some true else if disjoint then Some false else None
  | `Ne -> if same_singleton then Some false else if disjoint then Some true else None
  | `Lt -> if lt_always then Some true else if ge_always then Some false else None
  | `Le -> if le_always then Some true else if gt_always then Some false else None
  | `Gt -> if gt_always then Some true else if le_always then Some false else None
  | `Ge -> if ge_always then Some true else if lt_always then Some false else None

let bool_range = function
  | Some true -> exact Bn.one
  | Some false -> exact Bn.zero
  | None -> Some { lo = Bn.zero; hi = Bn.one }

(* interval arithmetic helpers (exact on math integers) *)
let radd a b = { lo = Bn.add a.lo b.lo; hi = Bn.add a.hi b.hi }
let rsub a b = { lo = Bn.sub a.lo b.hi; hi = Bn.sub a.hi b.lo }

let rmul a b =
  let ps = [ Bn.mul a.lo b.lo; Bn.mul a.lo b.hi; Bn.mul a.hi b.lo; Bn.mul a.hi b.hi ] in
  {
    lo = List.fold_left bn_min (List.hd ps) (List.tl ps);
    hi = List.fold_left bn_max (List.hd ps) (List.tl ps);
  }

let nonneg r = Bn.compare r.lo Bn.zero >= 0

(* shift amounts: a sane clamp — any amount beyond 4096 behaves like 4096
   for interval purposes (the operand width is far smaller) *)
let amt_int bn = match Bn.to_int_opt bn with Some k when k >= 0 -> min k 4096 | _ -> 4096

let rshl a b =
  if nonneg a && nonneg b then
    Some { lo = Bn.shift_left a.lo (amt_int b.lo); hi = Bn.shift_left a.hi (amt_int b.hi) }
  else None

let rshr a b =
  if nonneg a && nonneg b then
    Some { lo = Bn.shift_right a.lo (amt_int b.hi); hi = Bn.shift_right a.hi (amt_int b.lo) }
  else None

(* wrap-checking: comb ops truncate; only keep the math interval when it
   already fits the unsigned result type *)
let comb_fit (t : Bitvec.ty) r =
  let full = range_of_ty t in
  if Bn.compare r.lo full.lo >= 0 && Bn.compare r.hi full.hi <= 0 then r else full

let icmp_pred = function
  | "eq" -> Some `Eq
  | "ne" -> Some `Ne
  | "lt" -> Some `Lt
  | "le" -> Some `Le
  | "gt" -> Some `Gt
  | "ge" -> Some `Ge
  | _ -> None

let comb_icmp_pred name ~signed_ok =
  (* s-variants compare patterns reinterpreted as signed: only decidable
     from pattern intervals when both sign bits are provably clear *)
  match name with
  | "comb.icmp_eq" -> Some `Eq
  | "comb.icmp_ne" -> Some `Ne
  | "comb.icmp_ult" -> Some `Lt
  | "comb.icmp_ule" -> Some `Le
  | "comb.icmp_ugt" -> Some `Gt
  | "comb.icmp_uge" -> Some `Ge
  | "comb.icmp_slt" when signed_ok -> Some `Lt
  | "comb.icmp_sle" when signed_ok -> Some `Le
  | "comb.icmp_sgt" when signed_ok -> Some `Gt
  | "comb.icmp_sge" when signed_ok -> Some `Ge
  | _ -> None

let ranges_compute (op : op) ~(fact : value -> range option) (r : value) : range option =
  let ty = r.vty in
  let top = Some (range_of_ty ty) in
  let operand i = List.nth op.operands i in
  let f i = fact (operand i) in
  let lift2 k =
    match (f 0, f 1) with
    | Some a, Some b -> Some (clamp ty (k a b))
    | _ -> None  (* bottom in, bottom out *)
  in
  let lift2_opt k =
    match (f 0, f 1) with
    | Some a, Some b -> (
        match k a b with Some r -> Some (clamp ty r) | None -> top)
    | _ -> None
  in
  let comb2 k =
    match (f 0, f 1) with
    | Some a, Some b -> Some (comb_fit ty (k a b))
    | _ -> None
  in
  match op.opname with
  | "hw.constant" -> (
      match attr_bv op "value" with Some c -> exact (Bitvec.to_bn c) | None -> top)
  (* hwarith: the CoreDSL algebra never wraps, so interval math is exact *)
  | "hwarith.add" -> lift2 radd
  | "hwarith.sub" -> lift2 rsub
  | "hwarith.mul" -> lift2 rmul
  | "hwarith.band" ->
      lift2_opt (fun a b ->
          if nonneg a && nonneg b then Some { lo = Bn.zero; hi = bn_min a.hi b.hi }
          else None)
  | "hwarith.shl" -> lift2_opt rshl
  | "hwarith.shr" -> lift2_opt rshr
  | "hwarith.cast" -> (
      match f 0 with
      | None -> None
      | Some a ->
          let full = range_of_ty ty in
          if Bn.compare a.lo full.lo >= 0 && Bn.compare a.hi full.hi <= 0 then Some a
          else top)
  | "hwarith.mux" -> (
      match (fact (operand 1), fact (operand 2)) with
      | Some _, Some _ | Some _, None | None, Some _ ->
          Option.map (clamp ty) (rjoin (fact (operand 1)) (fact (operand 2)))
      | None, None -> None)
  | "hwarith.icmp" -> (
      match (attr_str op "predicate", f 0, f 1) with
      | Some p, Some a, Some b -> (
          match icmp_pred p with
          | Some pred -> bool_range (decide_cmp pred a b)
          | None -> bool_range None)
      | Some _, _, _ -> None
      | None, _, _ -> bool_range None)
  | "hwarith.and" -> (
      match (f 0, f 1) with
      | Some a, Some b ->
          if Bn.equal a.lo Bn.one && Bn.equal b.lo Bn.one then exact Bn.one
          else if Bn.is_zero a.hi || Bn.is_zero b.hi then exact Bn.zero
          else bool_range None
      | _ -> None)
  | "hwarith.or" -> (
      match (f 0, f 1) with
      | Some a, Some b ->
          if Bn.equal a.lo Bn.one || Bn.equal b.lo Bn.one then exact Bn.one
          else if Bn.is_zero a.hi && Bn.is_zero b.hi then exact Bn.zero
          else bool_range None
      | _ -> None)
  (* comb: signless and wrapping — keep math intervals only when they fit *)
  | "comb.add" -> comb2 radd
  | "comb.mul" -> comb2 rmul
  | "comb.sub" -> comb2 rsub
  | "comb.and" ->
      comb2 (fun a b ->
          if nonneg a && nonneg b then { lo = Bn.zero; hi = bn_min a.hi b.hi }
          else range_of_ty ty)
  | "comb.or" -> comb2 (fun a b -> { lo = bn_max a.lo b.lo; hi = (range_of_ty ty).hi })
  | "comb.shl" -> (
      match (f 0, f 1) with
      | Some a, Some b -> (
          match rshl a b with Some r -> Some (comb_fit ty r) | None -> top)
      | _ -> None)
  | "comb.shru" -> (
      match (f 0, f 1) with
      | Some a, Some b -> (
          match rshr a b with Some r -> Some (comb_fit ty r) | None -> top)
      | _ -> None)
  | "comb.mux" -> (
      match (fact (operand 1), fact (operand 2)) with
      | None, None -> None
      | t, fl -> Option.map (clamp ty) (rjoin t fl))
  | "comb.extract" -> (
      match (f 0, attr_int op "lowBit") with
      | None, _ -> None
      | Some a, Some 0 -> Some (comb_fit ty a)
      | Some a, Some lb -> (
          match range_exact a with
          | Some v when Bn.compare v Bn.zero >= 0 ->
              exact (Bn.mod_pow2 (Bn.shift_right v lb) ty.Bitvec.width)
          | _ -> top)
      | Some _, None -> top)
  | "comb.concat" ->
      let ofacts = List.map fact op.operands in
      if List.exists (fun f -> f = None) ofacts then None
      else
        let exacts =
          List.map2
            (fun f (v : value) ->
              match Option.map range_exact f |> Option.join with
              | Some e when Bn.compare e Bn.zero >= 0 -> Some (e, v.vty.Bitvec.width)
              | _ -> None)
            ofacts op.operands
        in
        if List.for_all Option.is_some exacts then
          exact
            (List.fold_left
               (fun acc p ->
                 let e, w = Option.get p in
                 Bn.add (Bn.shift_left acc w) e)
               Bn.zero exacts)
        else top
  | name when String.length name > 10 && String.sub name 0 10 = "comb.icmp_" -> (
      match (f 0, f 1) with
      | Some a, Some b ->
          (* unsigned comparisons on pattern intervals are plain math;
             signed ones additionally need provably-clear sign bits *)
          let half = Bn.pow2 ((operand 0).vty.Bitvec.width - 1) in
          let signed_ok =
            nonneg a && nonneg b && Bn.compare a.hi half < 0 && Bn.compare b.hi half < 0
          in
          (match comb_icmp_pred name ~signed_ok with
          | Some pred -> bool_range (decide_cmp pred a b)
          | None -> bool_range None)
      | _ -> None)
  | _ ->
      (* unmodeled op (division, xor, replicate, interface reads, ...):
         all we know is the type range *)
      top

(* widening with thresholds at the type bounds: any bound still moving
   after [widen_threshold] updates jumps straight to the representable
   extreme, so interval growth can never be milked one step at a time *)
let widen_range (v : value) old joined =
  match (old, joined) with
  | None, j -> j
  | Some o, Some j ->
      let full = range_of_ty v.vty in
      Some
        {
          lo = (if Bn.compare j.lo o.lo < 0 then full.lo else j.lo);
          hi = (if Bn.compare j.hi o.hi > 0 then full.hi else j.hi);
        }
  | Some _, None -> old

let ranges : range option spec =
  {
    df_name = "ranges";
    df_direction = Forward;
    df_init = (fun _ -> None);
    df_transfer =
      (fun op ~fact ->
        List.map (fun (r : value) -> (r, ranges_compute op ~fact r)) op.results);
    df_join = rjoin;
    df_equal = requal;
    df_widen = Some widen_range;
  }

(* ---- liveness ---- *)

let liveness : bool spec =
  {
    df_name = "liveness";
    df_direction = Backward;
    df_init = (fun _ -> false);
    df_transfer =
      (fun op ~fact ->
        let live =
          Ir.Passes.has_side_effect op || List.exists (fun r -> fact r) op.results
        in
        if live then List.map (fun v -> (v, true)) op.operands else []);
    df_join = ( || );
    df_equal = Bool.equal;
    df_widen = None;
  }

(* ---- reaching writes ---- *)

let reaching_writes (g : graph) : (string * op) list =
  List.filter_map
    (fun (op : op) ->
      let state default = Option.value ~default (attr_str op "state") in
      let space default = Option.value ~default (attr_str op "space") in
      match op.opname with
      | "coredsl.set" -> Some (state "?", op)
      | "coredsl.store" -> Some (space "?", op)
      | "lil.write_rd" -> Some ("X", op)
      | "lil.write_pc" -> Some ("PC", op)
      | "lil.write_custreg" -> Some (Option.value ~default:"?" (attr_str op "reg"), op)
      | "lil.write_mem" -> Some (space "?", op)
      | _ -> None)
    (all_ops g)
