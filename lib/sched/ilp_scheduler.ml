(* ILP scheduler for the LongnailProblem — the formulation of Figure 7.

   Decision variables: a start time t_i per operation and a lifetime l_ij
   per dependence. The multi-criteria objective minimizes the sum of start
   times (latency) plus the sum of lifetimes (pipeline registers in the
   ISAX module). Constraints:
   (C1) t_i + latency_i <= t_j            for every dependence i->j
   (C2) l_ij >= t_j - t_i
   (C3) earliest_i <= t_i <= latest_i
   (C4) integrality / non-negativity
   (C5) t_i + latency_i + 1 <= t_j        for every chain-breaking edge

   The paper solves this with Cbc via OR-Tools; we use the exact
   branch-and-bound solver from lib/lp. *)

type outcome = Scheduled | Infeasible

(* horizon: a safe upper bound for all start times, needed to keep the LP
   relaxation bounded *)
let horizon p =
  let lat_sum =
    Array.fold_left (fun acc (op : Problem.operation) -> acc + op.lot.latency + 1) 0
      p.Problem.operations
  in
  let max_earliest =
    Array.fold_left (fun acc (op : Problem.operation) -> max acc op.lot.earliest) 0
      p.Problem.operations
  in
  lat_sum + max_earliest + 1

(* Build the Figure 7 ILP for [p]. Returns the LP problem and the t
   variables (exposed for the fig7 dump in the bench harness). *)
let build_ilp p =
  let n = Array.length p.Problem.operations in
  let lp = Lp.create () in
  let hz = horizon p in
  let t =
    Array.init n (fun i ->
        Lp.add_int_var lp ~upper:hz ~name:(Printf.sprintf "t%d" i))
  in
  let lifetimes =
    List.map
      (fun (d : Problem.dependence) ->
        Lp.add_int_var lp ~upper:hz ~name:(Printf.sprintf "l_%d_%d" d.dep_src d.dep_dst))
      p.Problem.dependences
  in
  (* (C1) precedence *)
  List.iter
    (fun (d : Problem.dependence) ->
      let lat = p.Problem.operations.(d.dep_src).lot.latency in
      Lp.add_int_constraint lp [ (1, t.(d.dep_dst)); (-1, t.(d.dep_src)) ] Lp.Ge lat)
    p.Problem.dependences;
  (* (C2) lifetimes *)
  List.iter2
    (fun (d : Problem.dependence) l ->
      Lp.add_int_constraint lp [ (1, l); (-1, t.(d.dep_dst)); (1, t.(d.dep_src)) ] Lp.Ge 0)
    p.Problem.dependences lifetimes;
  (* (C3) windows *)
  Array.iteri
    (fun i (op : Problem.operation) ->
      if op.lot.earliest > 0 then Lp.add_int_constraint lp [ (1, t.(i)) ] Lp.Ge op.lot.earliest;
      match op.lot.latest with
      | Some l -> Lp.add_int_constraint lp [ (1, t.(i)) ] Lp.Le l
      | None -> ())
    p.Problem.operations;
  (* (C5) chain breakers *)
  List.iter
    (fun (d : Problem.dependence) ->
      let lat = p.Problem.operations.(d.dep_src).lot.latency in
      Lp.add_int_constraint lp [ (1, t.(d.dep_dst)); (-1, t.(d.dep_src)) ] Lp.Ge (lat + 1))
    (Problem.chain_breakers p);
  (* (obj) sum of start times + sum of lifetimes *)
  Lp.set_int_objective lp
    (Array.to_list (Array.map (fun v -> (1, v)) t) @ List.map (fun l -> (1, l)) lifetimes);
  (lp, t)

(* Solve the Figure 7 ILP via the generic branch-and-bound MILP solver.
   Exact but slow on large graphs; used for small instances and as the
   cross-check oracle for the network backend. *)
let schedule_exact (p : Problem.t) : outcome =
  Problem.check_input p;
  let lp, t = build_ilp p in
  match Lp.solve lp with
  | `Infeasible | `Unbounded -> Infeasible
  | `Optimal sol ->
      Array.iteri (fun i ti -> p.Problem.start_time.(i) <- Lp.value_int sol ti) t;
      Problem.compute_start_time_in_cycle p;
      Scheduled

(* Default backend: eliminate the lifetime variables analytically
   (l_ij = t_j - t_i at any optimum), turning the Figure 7 ILP into
   "minimize sum c_i t_i over difference constraints" with node costs
   c_i = 1 + indegree - outdegree, and solve that exactly with the
   lattice/min-cut solver in {!Lp.Netopt}. *)
let schedule_netflow (p : Problem.t) : outcome =
  Problem.check_input p;
  let n = Array.length p.Problem.operations in
  let cost = Array.make n 1 in
  List.iter
    (fun (d : Problem.dependence) ->
      cost.(d.dep_dst) <- cost.(d.dep_dst) + 1;
      cost.(d.dep_src) <- cost.(d.dep_src) - 1)
    p.Problem.dependences;
  let edges =
    List.map
      (fun (d : Problem.dependence) ->
        {
          Lp.Netopt.e_src = d.dep_src;
          e_dst = d.dep_dst;
          e_w = p.Problem.operations.(d.dep_src).lot.latency;
        })
      p.Problem.dependences
    @ List.map
        (fun (d : Problem.dependence) ->
          {
            Lp.Netopt.e_src = d.dep_src;
            e_dst = d.dep_dst;
            e_w = p.Problem.operations.(d.dep_src).lot.latency + 1;
          })
        (Problem.chain_breakers p)
  in
  let lower = Array.map (fun (op : Problem.operation) -> op.lot.earliest) p.Problem.operations in
  let upper = Array.map (fun (op : Problem.operation) -> op.lot.latest) p.Problem.operations in
  match Lp.Netopt.solve ~n ~edges ~lower ~upper ~cost () with
  | None -> Infeasible
  | Some t ->
      Array.iteri (fun i ti -> p.Problem.start_time.(i) <- ti) t;
      Problem.compute_start_time_in_cycle p;
      Scheduled

type backend = Exact | Netflow

let schedule ?(backend = Netflow) (p : Problem.t) : outcome =
  match backend with Exact -> schedule_exact p | Netflow -> schedule_netflow p

(* ---- persistent incremental scheduler ----------------------------------

   One {!Lp.Instance} per dependence-graph structure, kept alive across the
   re-schedules of a DSE sweep. The Figure 7 ILP is lowered with the
   lifetime variables eliminated (node costs 1 + indegree - outdegree, as
   in [schedule_netflow]) and constraints C1/C5 merged into a single row
   per dependence whose right-hand side is [latency] — or [latency + 1]
   when the edge currently breaks a combinational chain. Between grid
   points only the numbers move:

   - a chain-breaker set change is an [update_rhs] per flipped edge;
   - a window change is an [update_bounds] per operation.

   [resolve] then warm-starts from the previous grid point. The merged
   rows describe exactly the same feasible set as the duplicated C1+C5
   edges of the one-shot backends (the breaker row dominates its plain
   copy), and the tight-edge closure used by the min-cut ascent is also
   unchanged (a dominated edge is never tight and never crosses an
   improving cut), so this path is schedule-for-schedule identical to
   [schedule_netflow] — warm or cold. *)

module Incremental = struct
  type t = {
    n : int;
    deps : (int * int) list;  (* (src, dst) per dependence, in order *)
    inst : Lp.Instance.t;
    lock : Mutex.t;
  }

  let shape_of (p : Problem.t) =
    ( Array.length p.Problem.operations,
      List.map (fun (d : Problem.dependence) -> (d.dep_src, d.dep_dst)) p.Problem.dependences
    )

  let create (p : Problem.t) : t =
    Problem.check_input p;
    let n, deps = shape_of p in
    let lp = Lp.create () in
    let t =
      Array.init n (fun i ->
          let op = p.Problem.operations.(i) in
          Lp.add_int_var lp ~lower:op.lot.earliest ?upper:op.lot.latest
            ~name:(Printf.sprintf "t%d" i))
    in
    let breakers = Problem.chain_breakers p in
    let is_breaker d = List.memq d breakers in
    List.iter
      (fun (d : Problem.dependence) ->
        let lat = p.Problem.operations.(d.dep_src).lot.latency in
        let rhs = if is_breaker d then lat + 1 else lat in
        Lp.add_int_constraint lp [ (1, t.(d.dep_dst)); (-1, t.(d.dep_src)) ] Lp.Ge rhs)
      p.Problem.dependences;
    let cost = Array.make n 1 in
    List.iter
      (fun (d : Problem.dependence) ->
        cost.(d.dep_dst) <- cost.(d.dep_dst) + 1;
        cost.(d.dep_src) <- cost.(d.dep_src) - 1)
      p.Problem.dependences;
    Lp.set_int_objective lp (List.init n (fun i -> (cost.(i), t.(i))));
    { n; deps; inst = Lp.Instance.create lp; lock = Mutex.create () }

  (* Same dependence-graph structure? (Latencies, windows and the breaker
     set are data and may differ; operation count and edge list may not.) *)
  let compatible inc (p : Problem.t) = shape_of p = (inc.n, inc.deps)

  let schedule inc (p : Problem.t) : outcome =
    Problem.check_input p;
    if not (compatible inc p) then
      Problem.problem_error "Ilp_scheduler.Incremental: dependence graph changed shape";
    Mutex.protect inc.lock (fun () ->
        Array.iteri
          (fun i (op : Problem.operation) ->
            Lp.Instance.update_bounds inc.inst i ~lower:(Lp.Rat.of_int op.lot.earliest)
              ~upper:(Option.map Lp.Rat.of_int op.lot.latest))
          p.Problem.operations;
        let breakers = Problem.chain_breakers p in
        let is_breaker d = List.memq d breakers in
        List.iteri
          (fun row (d : Problem.dependence) ->
            let lat = p.Problem.operations.(d.dep_src).lot.latency in
            let rhs = if is_breaker d then lat + 1 else lat in
            Lp.Instance.update_rhs inc.inst row (Lp.Rat.of_int rhs))
          p.Problem.dependences;
        match Lp.Instance.resolve inc.inst with
        | `Infeasible | `Unbounded -> Infeasible
        | `Optimal sol ->
            Array.iteri
              (fun i _ -> p.Problem.start_time.(i) <- Lp.value_int sol i)
              p.Problem.operations;
            Problem.compute_start_time_in_cycle p;
            Scheduled)

  let stats inc = Lp.Instance.stats inc.inst
  let classify inc = Lp.Instance.classify inc.inst
end

(* Textual dump of the generated ILP (Figure 7 instance). *)
let ilp_text p =
  let lp, _ = build_ilp p in
  Lp.to_text lp

(* Size of the Figure 7 ILP without materializing it: (variables,
   constraints). Used by the profiling layer, which must not distort the
   timings it reports by building a second copy of the LP. *)
let ilp_size p =
  let n = Array.length p.Problem.operations in
  let n_deps = List.length p.Problem.dependences in
  let n_windows =
    Array.fold_left
      (fun acc (op : Problem.operation) ->
        acc
        + (if op.lot.earliest > 0 then 1 else 0)
        + match op.lot.latest with Some _ -> 1 | None -> 0)
      0 p.Problem.operations
  in
  let n_breakers = List.length (Problem.chain_breakers p) in
  (n + n_deps, (2 * n_deps) + n_windows + n_breakers)
