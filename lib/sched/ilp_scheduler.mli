(** ILP scheduler for the LongnailProblem — the formulation of Figure 7.

   Decision variables: a start time t_i per operation and a lifetime l_ij
   per dependence. The multi-criteria objective minimizes the sum of start
   times (latency) plus the sum of lifetimes (pipeline registers in the
   ISAX module). Constraints:
   (C1) t_i + latency_i <= t_j            for every dependence i->j
   (C2) l_ij >= t_j - t_i
   (C3) earliest_i <= t_i <= latest_i
   (C4) integrality / non-negativity
   (C5) t_i + latency_i + 1 <= t_j        for every chain-breaking edge

   The paper solves this with Cbc via OR-Tools; we use the exact
   branch-and-bound solver from lib/lp. *)

type outcome = Scheduled | Infeasible
val horizon : Problem.t -> int
val build_ilp : Problem.t -> Lp.problem * int array
val schedule_exact : Problem.t -> outcome
val schedule_netflow : Problem.t -> outcome
type backend = Exact | Netflow
val schedule : ?backend:backend -> Problem.t -> outcome
val ilp_text : Problem.t -> string

val ilp_size : Problem.t -> int * int
(** [(variables, constraints)] of the Figure 7 ILP for this instance,
    computed without building it (profiling must stay cheap). *)

(** Persistent incremental scheduler: one {!Lp.Instance} kept alive
    across the re-schedules of a DSE sweep. The Figure 7 ILP is lowered
    as in [schedule_netflow] (lifetimes eliminated, node costs
    1 + indegree - outdegree) with C1/C5 merged into one row per
    dependence; between grid points only right-hand sides (chain-breaker
    flips) and bounds (window changes) move, and {!Lp.Instance.resolve}
    warm-starts from the previous solution. Produces schedules identical
    to [schedule_netflow], warm or cold. Thread-safe: re-schedules on the
    same instance are serialized by an internal mutex. *)
module Incremental : sig
  type t

  val create : Problem.t -> t
  (** Snapshot the dependence-graph structure of [p] into a persistent
      solver instance. *)

  val compatible : t -> Problem.t -> bool
  (** Whether [p] has the operation count and dependence list this
      instance was created from (latencies, windows and the breaker set
      are data and may differ freely). *)

  val schedule : t -> Problem.t -> outcome
  (** Push the current latencies, windows and chain-breaker set of [p]
      into the instance, re-solve (warm when possible), and write the
      start times back into [p]. Raises {!Problem.Problem_error} when
      [compatible] is false. *)

  val stats : t -> Lp.Instance.stats
  val classify : t -> Lp.Instance.klass
end
