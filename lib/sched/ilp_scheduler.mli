(** ILP scheduler for the LongnailProblem — the formulation of Figure 7.

   Decision variables: a start time t_i per operation and a lifetime l_ij
   per dependence. The multi-criteria objective minimizes the sum of start
   times (latency) plus the sum of lifetimes (pipeline registers in the
   ISAX module). Constraints:
   (C1) t_i + latency_i <= t_j            for every dependence i->j
   (C2) l_ij >= t_j - t_i
   (C3) earliest_i <= t_i <= latest_i
   (C4) integrality / non-negativity
   (C5) t_i + latency_i + 1 <= t_j        for every chain-breaking edge

   The paper solves this with Cbc via OR-Tools; we use the exact
   branch-and-bound solver from lib/lp. *)

type outcome = Scheduled | Infeasible
val horizon : Problem.t -> int
val build_ilp : Problem.t -> Lp.problem * int array
val schedule_exact : Problem.t -> outcome
val schedule_netflow : Problem.t -> outcome
type backend = Exact | Netflow
val schedule : ?backend:backend -> Problem.t -> outcome
val ilp_text : Problem.t -> string

val ilp_size : Problem.t -> int * int
(** [(variables, constraints)] of the Figure 7 ILP for this instance,
    computed without building it (profiling must stay cheap). *)
