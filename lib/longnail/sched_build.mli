(** Construction of the LongnailProblem (Section 4.2) from a lil graph and a
   SCAIE-V virtual datasheet.

   - every lil/comb operation becomes a scheduling operation;
   - SSA def-use edges become dependences;
   - SCAIE-V sub-interface operations get operator types whose
     earliest/latest windows come from the datasheet; WrRD/RdMem/WrMem get
     latest = infinity so that the tightly-coupled/decoupled variants are
     reachable (Section 4.2);
   - for always-blocks, every interface constraint is stage 0 and solving
     merely checks single-cycle feasibility (Section 4.4). *)

exception Build_error of Diag.t
val build_error :
  ?code:string -> ?span:Diag.span -> ('a, Format.formatter, unit, 'b) format4 -> 'a
type built = {
  problem : Sched.Problem.t;
  index_of_op : (int, int) Hashtbl.t;
  ops_by_index : Ir.Mir.op array;
}
val result_width : Ir.Mir.op -> int
val operator_type_for :
  Scaiev.Datasheet.t ->
  Delay_model.t ->
  always:bool -> Ir.Mir.op -> Sched.Problem.operator_type
val build :
  Scaiev.Datasheet.t ->
  ?delay_model:Delay_model.t ->
  ?cycle_time:float -> Ir.Mir.graph -> built
type scheduler = Ilp | Asap

val schedule :
  ?scheduler:scheduler -> ?solver:Sched.Ilp_scheduler.Incremental.t -> built -> bool
(** Solve the problem in place. With [solver] (a persistent incremental
    instance from an earlier build of the same graph) a structurally
    compatible ILP re-schedule warm-starts from the previous solution;
    otherwise the one-shot path runs. Both produce identical schedules. *)

(** For an infeasible problem: the operation whose ASAP lower bound
    (longest dependence path, ignoring [latest] windows) most overshoots
    its own [latest] window, with that bound and the window. The mir op
    carries the originating CoreDSL span. *)
val infeasible_culprit : built -> (Ir.Mir.op * int * int) option

val start_time : built -> Ir.Mir.op -> int
