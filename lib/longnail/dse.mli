(** Automated design-space exploration (the Section 7 outlook feature).

   Area minimization and performance metrics conflict, so for one ISAX on
   one core we sweep the knobs Longnail exposes —
   - the scheduler (lifetime-minimizing ILP vs. plain ASAP),
   - the target cycle time handed to chain breaking (scheduling for a
     slower clock packs stages fuller: fewer pipeline registers, lower
     fmax; scheduling for a faster clock spreads the logic),
   - the scheduling delay model (the paper's uniform delays vs. the
     physical width-aware model),
   and report the Pareto-optimal trade-off points over (area, frequency,
   instruction latency).

   The sweep runs through a {!Flow.session}, so only the sched->hwgen
   tail re-runs per grid point: front-end and HLIR/LIL passes execute
   exactly once per functionality across the whole grid, and repeating a
   sweep in the same {!sweep_session} replays entirely from cache —
   including the injected [measure], memoized per {!Flow.target_key}. *)

type point = {
  dp_label : string;
  dp_scheduler : Sched_build.scheduler;
  dp_cycle_factor : float;
  dp_physical : bool;
  dp_area_pct : float;
  dp_freq_mhz : float;
  dp_latency : int;
  dp_pipe_bits : int;
  dp_pareto : bool;
}

val dominates : point -> point -> bool
(** [dominates p q]: no worse on every axis and strictly better on at
    least one — equal points never dominate each other. *)

val mark_pareto : point list -> point list

(** A sweep session: the shared compilation session plus a memo for the
    injected measurement, which can dominate a warm sweep's cost. *)
type sweep_session = {
  ss_flow : Flow.session;
  ss_measure : (float * float) Cache.Store.t;
}

val sweep_session : ?session:Flow.session -> unit -> sweep_session

val explore :
  ?cycle_factors:float list ->
  ?sweep:sweep_session ->
  ?request:Flow.Request.t ->
  measure:(Flow.compiled -> float * float) ->
  Scaiev.Datasheet.t -> Coredsl.Tast.tunit -> point list
(** Grid points whose compile raises {!Diag.Fatal} (e.g. infeasible
    schedules) are skipped; identical outcomes are deduplicated.

    [?request] supplies the worker count ([Request.jobs]), the profiling
    scope and — when no [?sweep] is given — the flow session to wrap in a
    fresh sweep session. Passing [?sweep] together with a request that
    carries its own session raises E0902. With [jobs > 1] the grid fans
    out over worker domains after warming the shared IR artifacts.

    Grid points are {e evaluated} largest cycle factor first, so the
    session's persistent solver instances see a monotonically tightening
    difference system and warm-start every subsequent ILP re-schedule
    (docs/SCHEDULING.md); results are {e collected} by grid index, so the
    returned point list is identical regardless of evaluation order or
    job count. *)
