(* The shared knob/cache/parallelism flag table (see the .mli). The CLI
   bridges [specs] into cmdliner terms and folds [set]; the bench feeds
   its raw argv through [parse] and keeps the leftovers for its own
   target parser — both front ends accept the exact same flags. *)

type spec = { name : string; arg : string option; doc : string }

let specs =
  [
    { name = "scheduler"; arg = Some "KIND"; doc = "Scheduler: ilp (default) or asap." };
    {
      name = "delay";
      arg = Some "MODEL";
      doc = "Scheduling delay model: 'default', 'physical', or 'uniform:NS'.";
    };
    {
      name = "cycle-time";
      arg = Some "NS";
      doc = "Target cycle time in nanoseconds (default: the core's base period).";
    };
    {
      name = "no-hazard-handling";
      arg = None;
      doc = "Drop the decoupled-mode scoreboard (the Table 4 ablation row).";
    };
    {
      name = "sim-engine";
      arg = Some "ENGINE";
      doc = "RTL simulation engine: compiled (default) or interp (the reference interpreter).";
    };
    {
      name = "emit";
      arg = Some "BACKEND";
      doc = "HDL emission backend: sv (SystemVerilog, default) or v2001 (Verilog-2001 subset).";
    };
    {
      name = "narrow";
      arg = Some "MODE";
      doc =
        "Analysis-driven width narrowing: 'on' (translation-validated, E0530 on any \
         counterexample) or 'off' (default).";
    };
    {
      name = "jobs";
      arg = Some "N";
      doc = "Worker domains for batch compiles (default 1 = sequential).";
    };
    { name = "no-cache"; arg = None; doc = "Disable artifact retention: every compile runs cold." };
    {
      name = "verify-each";
      arg = None;
      doc = "Re-verify the IR after every optimization pass (sanitizer; E0512 on failure).";
    };
    {
      name = "cache-capacity";
      arg = Some "N";
      doc = "Maximum entries per artifact store (default 512, LRU beyond).";
    };
    {
      name = "store";
      arg = Some "DIR";
      doc =
        "Persistent on-disk artifact store: target outputs are spilled to DIR so a later \
         process compiles warm.";
    };
    {
      name = "store-budget-mb";
      arg = Some "MB";
      doc = "Size budget of the on-disk store in MiB (default 256, LRU eviction beyond).";
    };
  ]

type t = {
  scheduler : Sched_build.scheduler;
  delay : Delay_model.spec;
  cycle_time : float option;
  hazard_handling : bool;
  sim_engine : Rtl.Engine.kind;
  emit_backend : Rtl.Backend.kind;
  narrow : bool;
  jobs : int;
  cache_enabled : bool;
  cache_capacity : int option;
  verify_each : bool;
  store_dir : string option;
  store_budget_mb : int option;
}

let default =
  {
    scheduler = Sched_build.Ilp;
    delay = Delay_model.Default;
    cycle_time = None;
    hazard_handling = true;
    sim_engine = Rtl.Engine.Compiled;
    emit_backend = Rtl.Backend.Sv;
    narrow = false;
    jobs = 1;
    cache_enabled = true;
    cache_capacity = None;
    verify_each = false;
    store_dir = None;
    store_budget_mb = None;
  }

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let set t name value =
  match (name, value) with
  | "scheduler", Some "ilp" -> Ok { t with scheduler = Sched_build.Ilp }
  | "scheduler", Some "asap" -> Ok { t with scheduler = Sched_build.Asap }
  | "scheduler", Some v -> err "--scheduler expects 'ilp' or 'asap', got '%s'" v
  | "delay", Some "default" -> Ok { t with delay = Delay_model.Default }
  | "delay", Some "physical" -> Ok { t with delay = Delay_model.Physical }
  | "delay", Some v when String.length v > 8 && String.sub v 0 8 = "uniform:" -> (
      let ns = String.sub v 8 (String.length v - 8) in
      match float_of_string_opt ns with
      | Some f when f > 0.0 -> Ok { t with delay = Delay_model.Uniform f }
      | _ -> err "--delay uniform:NS expects a positive number of ns, got '%s'" ns)
  | "delay", Some v -> err "--delay expects 'default', 'physical' or 'uniform:NS', got '%s'" v
  | "cycle-time", Some v -> (
      match float_of_string_opt v with
      | Some f when f > 0.0 -> Ok { t with cycle_time = Some f }
      | _ -> err "--cycle-time expects a positive number of ns, got '%s'" v)
  | "no-hazard-handling", None -> Ok { t with hazard_handling = false }
  | "sim-engine", Some v -> (
      (* Rtl.Choice supplies the did-you-mean hint; front ends map this
         to the structured E0913 diagnostic via [error_code]. *)
      match Rtl.Engine.kind_of_string v with
      | Ok k -> Ok { t with sim_engine = k }
      | Error m -> err "--sim-engine: %s" m)
  | "emit", Some v -> (
      match Rtl.Backend.of_string v with
      | Ok k -> Ok { t with emit_backend = k }
      | Error m -> err "--emit: %s" m)
  | "narrow", Some "on" -> Ok { t with narrow = true }
  | "narrow", Some "off" -> Ok { t with narrow = false }
  | "narrow", Some v -> err "--narrow expects 'on' or 'off', got '%s'" v
  | "jobs", Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> Ok { t with jobs = n }
      | _ -> err "--jobs expects an integer >= 1, got '%s'" v)
  | "no-cache", None -> Ok { t with cache_enabled = false }
  | "verify-each", None -> Ok { t with verify_each = true }
  | "cache-capacity", Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> Ok { t with cache_capacity = Some n }
      | _ -> err "--cache-capacity expects a non-negative integer, got '%s'" v)
  | "store", Some dir when dir <> "" -> Ok { t with store_dir = Some dir }
  | "store", Some _ -> err "--store expects a directory path"
  | "store-budget-mb", Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> Ok { t with store_budget_mb = Some n }
      | _ -> err "--store-budget-mb expects a non-negative integer, got '%s'" v)
  | name, Some _ -> err "--%s does not take a value" name
  | name, None -> err "--%s requires a value" name

let find_spec name = List.find_opt (fun s -> s.name = name) specs

let is_flag_like a = String.length a >= 2 && String.sub a 0 2 = "--"

(* "--name=value" -> (name, Some value); "--name" -> (name, None) *)
let split_flag a =
  let body = String.sub a 2 (String.length a - 2) in
  match String.index_opt body '=' with
  | None -> (body, None)
  | Some i ->
      (String.sub body 0 i, Some (String.sub body (i + 1) (String.length body - i - 1)))

let parse t args =
  let rec go t leftovers = function
    | [] -> Ok (t, List.rev leftovers)
    | a :: rest when is_flag_like a -> (
        let name, inline = split_flag a in
        match find_spec name with
        | None -> go t (a :: leftovers) rest
        | Some spec -> (
            let value, rest =
              match (spec.arg, inline) with
              | None, v -> (v, rest) (* bare flag; an inline value errors in [set] *)
              | Some _, Some v -> (Some v, rest)
              | Some _, None -> (
                  match rest with
                  | v :: rest' when not (is_flag_like v) -> (Some v, rest')
                  | _ -> (None, rest))
            in
            match set t name value with
            | Ok t -> go t leftovers rest
            | Error e -> Error e))
    | a :: rest -> go t (a :: leftovers) rest
  in
  go t [] args

let knobs t =
  {
    Flow.k_scheduler = t.scheduler;
    k_delay = t.delay;
    k_cycle_time = t.cycle_time;
    k_hazard_handling = t.hazard_handling;
    k_sim_engine = t.sim_engine;
    k_backend = t.emit_backend;
    k_narrow = t.narrow;
  }

(* Flags whose rejections are structured diagnostics rather than plain
   usage errors: unknown engine/backend names are E0913 (same shape as
   the E0912 unknown-core diagnostic, with did-you-mean suggestions). *)
let error_code = function
  | "sim-engine" | "emit" -> Some "E0913"
  | _ -> None

let disk t =
  Option.map
    (fun dir ->
      let budget_bytes = Option.map (fun mb -> mb * 1024 * 1024) t.store_budget_mb in
      Cache.Disk.open_store ?budget_bytes dir)
    t.store_dir

let session t =
  Flow.create_session ?capacity:t.cache_capacity ~enabled:t.cache_enabled ?disk:(disk t) ()

let request ?session:s ?obs t =
  let session = match s with Some s -> s | None -> session t in
  Flow.Request.make ~knobs:(knobs t) ~session ?obs ~jobs:t.jobs ~verify_each:t.verify_each ()
