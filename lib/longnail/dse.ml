(* Automated design-space exploration (the Section 7 outlook feature).

   Area minimization and performance metrics conflict, so for one ISAX on
   one core we sweep the knobs Longnail exposes —
   - the scheduler (lifetime-minimizing ILP vs. plain ASAP),
   - the target cycle time handed to chain breaking (scheduling for a
     slower clock packs stages fuller: fewer pipeline registers, lower
     fmax; scheduling for a faster clock spreads the logic),
   - the scheduling delay model (the paper's uniform delays vs. the
     physical width-aware model),
   and report the Pareto-optimal trade-off points over (area, frequency,
   instruction latency).

   The sweep runs through a Flow compilation session, so only the
   sched->hwgen tail re-runs per grid point: the front-end and HLIR/LIL
   passes execute exactly once per functionality across the whole grid,
   and repeating a sweep in the same session replays entirely from
   cache (including the injected [measure], memoized per target key). *)

type point = {
  dp_label : string;
  dp_scheduler : Sched_build.scheduler;
  dp_cycle_factor : float;  (* multiplier on the core's base period *)
  dp_physical : bool;
  dp_area_pct : float;
  dp_freq_mhz : float;
  dp_latency : int;  (* last interface stage = instruction latency proxy *)
  dp_pipe_bits : int;
  dp_pareto : bool;
}

(* p dominates q if no worse on all axes and better on one *)
let dominates p q =
  p.dp_area_pct <= q.dp_area_pct
  && p.dp_freq_mhz >= q.dp_freq_mhz
  && p.dp_latency <= q.dp_latency
  && (p.dp_area_pct < q.dp_area_pct || p.dp_freq_mhz > q.dp_freq_mhz
    || p.dp_latency < q.dp_latency)

let mark_pareto points =
  List.map
    (fun p -> { p with dp_pareto = not (List.exists (fun q -> dominates q p) points) })
    points

(* A sweep session: the shared Flow session plus a memo for the injected
   measurement (area/frequency analysis can dominate a warm sweep's cost,
   so it is cached under the same target key as the compile itself). *)
type sweep_session = {
  ss_flow : Flow.session;
  ss_measure : (float * float) Cache.Store.t;
}

let sweep_session ?session () =
  {
    ss_flow = (match session with Some s -> s | None -> Flow.create_session ());
    ss_measure = Cache.Store.create ~name:"measure" ();
  }

let config_label (factor, scheduler, physical) =
  Printf.sprintf "%s/ct*%.2f/%s"
    (match scheduler with Sched_build.Ilp -> "ilp" | Sched_build.Asap -> "asap")
    factor
    (if physical then "phys" else "unif")

(* [measure] converts a compile into (area %, fmax); injected so that the
   asic library (which depends on this one) can supply the real flow.

   With [?request] carrying [jobs > 1] the grid points fan out over
   worker domains: the shared IR artifacts are warmed once on the
   calling domain, each point runs the sched->hwgen tail in a task, and
   results are collected by index, so the point list (and the Pareto
   marking over it) is identical to a sequential sweep.

   Sequential sweeps evaluate the cycle factors largest-first: shrinking
   the target period only adds chain breakers, i.e. only tightens the
   difference system, which is exactly the monotone precondition under
   which the session's persistent solver instances warm-start
   (docs/SCHEDULING.md). Results are collected by original grid index, so
   the returned point list is independent of the evaluation order. *)
let explore ?(cycle_factors = [ 0.75; 1.0; 1.5; 2.0 ]) ?sweep ?request
    ~(measure : Flow.compiled -> float * float) (core : Scaiev.Datasheet.t)
    (tu : Coredsl.Tast.tunit) : point list =
  let r = Option.value request ~default:Flow.Request.default in
  let jobs = r.Flow.Request.jobs in
  let obs = r.Flow.Request.obs in
  let ss =
    match sweep with
    | Some ss ->
        if Option.is_some r.Flow.Request.session then
          Diag.fatal
            (Diag.make ~code:"E0902"
               "conflicting compile options: ?sweep given together with a request that \
                carries its own session"
               ~notes:[ "pass the flow session inside the sweep_session only" ]);
        ss
    | None -> sweep_session ?session:r.Flow.Request.session ()
  in
  let base_ct = Scaiev.Datasheet.cycle_time_ns core in
  let configs =
    List.concat_map
      (fun factor ->
        List.concat_map
          (fun scheduler ->
            List.map (fun physical -> (factor, scheduler, physical)) [ false; true ])
          [ Sched_build.Ilp; Sched_build.Asap ])
      cycle_factors
  in
  let eval_point ?obs ((factor, scheduler, physical) as config) =
    let cycle_time = base_ct *. factor in
    let delay =
      if physical then Delay_model.Physical else Delay_model.Uniform (cycle_time /. 14.0)
    in
    let knobs = Flow.knobs ~scheduler ~delay ~cycle_time () in
    let req = Flow.Request.make ~knobs ~session:ss.ss_flow ?obs () in
    match Flow.compile_request req core tu with
    | exception Diag.Fatal _ -> None
    | exception _ -> None
    | c ->
        let area_pct, freq =
          Cache.Store.find_or_add ss.ss_measure ?obs
            (Flow.target_key ss.ss_flow knobs core tu) (fun () -> measure c)
        in
        let latency =
          List.fold_left
            (fun acc (f : Flow.compiled_functionality) -> max acc f.cf_hw.Hwgen.max_stage)
            0 c.funcs
        in
        let pipe_bits =
          List.fold_left
            (fun acc (f : Flow.compiled_functionality) -> acc + f.cf_hw.Hwgen.pipe_reg_bits)
            0 c.funcs
        in
        Some
          {
            dp_label = config_label config;
            dp_scheduler = scheduler;
            dp_cycle_factor = factor;
            dp_physical = physical;
            dp_area_pct = area_pct;
            dp_freq_mhz = freq;
            dp_latency = latency;
            dp_pipe_bits = pipe_bits;
            dp_pareto = false;
          }
  in
  let indexed = List.mapi (fun i config -> (i, config)) configs in
  (* warm-friendly evaluation order: cycle factor descending (stable on
     the rest of the grid) — each step only tightens the system *)
  let by_warmth =
    List.stable_sort
      (fun (_, (fa, _, _)) (_, (fb, _, _)) -> compare (fb : float) fa)
      indexed
  in
  let slots = Array.make (List.length configs) None in
  (if jobs <= 1 then
     List.iter (fun (i, config) -> slots.(i) <- eval_point ?obs config) by_warmth
   else begin
     (* warm the shared frontend/IR artifacts on this domain, then fan
        the per-point sched->hwgen tails out over the worker pool *)
     Flow.warm_ir ss.ss_flow tu;
     Obs.span_opt obs "parallel_explore" @@ fun pobs ->
     Obs.metric_int_opt pobs "par.workers" (max 1 (min jobs (List.length configs)));
     Obs.metric_int_opt pobs "par.points" (List.length configs);
     let task (i, config) () =
       let tobs =
         match pobs with
         | None -> None
         | Some _ -> Some (Obs.create ~name:("dse:" ^ config_label config) ())
       in
       let p = eval_point ?obs:tobs config in
       Option.iter Obs.finish tobs;
       ((i, p), Option.map Obs.root tobs)
     in
     let results = Par.run ~jobs (List.map task by_warmth) in
     (match pobs with
     | None -> ()
     | Some p -> List.iter (fun (_, sp) -> Option.iter (Obs.attach p) sp) results);
     List.iter (fun ((i, p), _) -> slots.(i) <- p) results
   end);
  let points = List.filter_map Fun.id (Array.to_list slots) in
  (* deduplicate identical outcomes to keep the report readable *)
  let distinct =
    List.fold_left
      (fun acc p ->
        if
          List.exists
            (fun q ->
              q.dp_area_pct = p.dp_area_pct && q.dp_freq_mhz = p.dp_freq_mhz
              && q.dp_latency = p.dp_latency)
            acc
        then acc
        else p :: acc)
      [] points
  in
  mark_pareto (List.rev distinct)
