(** Hardware generation from a scheduled lil graph (Section 4.5).

   Each graph becomes one RTL module whose interface operations turn into
   input/output ports carrying the stage number in which they are active
   (matching Figure 5d, e.g. [instr_word_2], [res_3_data]). Stallable
   pipeline registers are inserted wherever a value crosses a stage
   boundary; the registers feeding stage s+1 are gated by [stall_in_s].
   Longnail does not generate a controller: SCAIE-V's logic tracks the
   progress of the custom instruction and commits results (Section 4.5). *)

exception Hwgen_error of Diag.t
val hw_error : ?code:string -> ?span:Diag.span -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** One SCAIE-V port binding of a generated module: which sub-interface,
    in which stage, in which execution mode, and the module port names by
    role ("data", "valid", "addr"). *)
type iface_binding = {
  ib_opname : string;  (** the lil op name, e.g. "lil.read_rs1" *)
  ib_iface : string;  (** SCAIE-V sub-interface name, e.g. "RdRS1" *)
  ib_reg : string option;  (** custom register, if any *)
  ib_stage : int;  (** scheduled stage *)
  ib_mode : Scaiev.Config.mode;
  ib_has_valid : bool;
  ib_ports : (string * string) list;  (** role -> port name *)
}

(** A generated hardware module with its interface bindings. *)
type result = {
  netlist : Rtl.Netlist.t;
  bindings : iface_binding list;
  max_stage : int;  (** last stage any interface is active in *)
  pipe_reg_bits : int;  (** bits of stallable pipeline registers inserted *)
}
val select_mode :
  Scaiev.Datasheet.t ->
  always:bool -> Ir.Mir.op -> iface:string -> t:int -> Scaiev.Config.mode
val effective_stages :
  Sched_build.built -> Ir.Mir.graph -> (int, int) Hashtbl.t
val generate :
  Scaiev.Datasheet.t ->
  Coredsl.Elaborate.elaborated ->
  Sched_build.built -> Ir.Mir.graph -> result
