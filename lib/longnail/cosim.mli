(** Co-simulation harness: drive a generated ISAX module cycle by cycle
   through its SCAIE-V port bindings, the way the host core would.

   Used by the integration tests to verify that the RTL produced by
   Longnail matches the CoreDSL reference interpreter (the paper verifies
   extended cores by RTL simulation, Section 5.3), and by the examples to
   demonstrate the generated hardware actually computing. *)

(** The values the "host core" supplies to the module under test. *)
type stimulus = {
  instr_word : Bitvec.t option;
  rs1 : Bitvec.t option;
  rs2 : Bitvec.t option;
  pc : Bitvec.t option;
  custreg : string -> int -> Bitvec.t;  (** custom register read responses *)
  mem_read : int -> int -> Bitvec.t;  (** address, elems -> load response *)
}
val default_stimulus : stimulus
type custreg_write = {
  cw_reg : string;
  cw_index : int option;
  cw_data : Bitvec.t;
  cw_valid : bool;
}
type response = {
  rd_write : (Bitvec.t * bool) option;
  pc_write : (Bitvec.t * bool) option;
  custreg_writes : custreg_write list;
  mem_write : (int * Bitvec.t * bool) option;
  mem_read_request : (int * bool) option;
  cycles : int;
}
exception Cosim_error of string

val run :
  ?engine:Rtl.Engine.kind -> Flow.compiled_functionality -> stimulus -> response
(** Run one instruction (or always-block evaluation) through the module
    on the chosen simulation engine (compiled by default; pass
    [~engine:Rtl.Engine.Interp] to cross-check the reference
    interpreter). *)
