(** The shared command-line surface for the scheduling knobs, the cache
    controls and the parallel driver — one table of flag specs with one
    parser, used by both the [longnail] CLI (bridged into cmdliner
    terms) and the bench harness (fed the raw argv), so the two front
    ends cannot drift apart.

    Flags:
    {v
    --scheduler KIND        ilp (default) or asap
    --delay MODEL           default, physical, or uniform:NS
    --cycle-time NS         target cycle time (default: the core's period)
    --no-hazard-handling    drop the decoupled-mode scoreboard
    --sim-engine ENGINE     compiled (default) or interp
    --emit BACKEND          sv (SystemVerilog, default) or v2001
    --narrow MODE           analysis-driven width narrowing: on or off (default)
    --jobs N                worker domains for batch compiles (default 1)
    --no-cache              disable artifact retention
    --verify-each           re-verify the IR after every optimization pass
    --cache-capacity N      max entries per artifact store
    --store DIR             persistent on-disk artifact store directory
    --store-budget-mb MB    size budget of the on-disk store (default 256)
    v} *)

(** One flag: [arg = None] is a bare flag, [Some docv] takes a value. *)
type spec = { name : string; arg : string option; doc : string }

val specs : spec list

(** Accumulated settings (start from {!default}, fold {!set}). *)
type t = {
  scheduler : Sched_build.scheduler;
  delay : Delay_model.spec;
  cycle_time : float option;
  hazard_handling : bool;
  sim_engine : Rtl.Engine.kind;
  emit_backend : Rtl.Backend.kind;
  narrow : bool;
  jobs : int;
  cache_enabled : bool;
  cache_capacity : int option;
  verify_each : bool;
  store_dir : string option;
  store_budget_mb : int option;
}

val default : t

val set : t -> string -> string option -> (t, string) result
(** [set t name value] applies one flag (name without the leading
    [--]); [Error] carries a user-facing usage message. *)

val parse : t -> string list -> (t * string list, string) result
(** Consume every recognized [--name VALUE] / [--name=VALUE] / bare
    [--name] from the argument list, returning the settings and the
    remaining arguments in their original order. Unrecognized arguments
    (including unknown [--] flags) are left for the caller's own parser;
    a recognized flag with a missing or malformed value is an [Error]. *)

val knobs : t -> Flow.knobs

val error_code : string -> string option
(** [error_code name] is the structured diagnostic code for rejections
    of flag [name], when it has one: [--sim-engine] and [--emit] map to
    E0913 ("unknown simulation engine or emission backend", with
    did-you-mean suggestions); other flags are plain usage errors. *)

val disk : t -> Cache.Disk.t option
(** The persistent store named by [--store DIR] (opened with the
    [--store-budget-mb] budget), or [None]. *)

val session : t -> Flow.session
(** A session honoring [--no-cache] / [--cache-capacity] / [--store] /
    [--store-budget-mb]. *)

val request : ?session:Flow.session -> ?obs:Obs.scope -> t -> Flow.Request.t
(** The {!Flow.Request.t} these settings describe; creates {!session}
    when none is supplied. *)
