(* Co-simulation harness: drive a generated ISAX module cycle by cycle
   through its SCAIE-V port bindings, the way the host core would.

   Used by the integration tests to verify that the RTL produced by
   Longnail matches the CoreDSL reference interpreter (the paper verifies
   extended cores by RTL simulation, Section 5.3), and by the examples to
   demonstrate the generated hardware actually computing. *)

type stimulus = {
  instr_word : Bitvec.t option;
  rs1 : Bitvec.t option;
  rs2 : Bitvec.t option;
  pc : Bitvec.t option;
  custreg : string -> int -> Bitvec.t;  (* register name, index -> value *)
  mem_read : int -> int -> Bitvec.t;  (* address, elems -> little-endian value *)
}

let default_stimulus =
  {
    instr_word = None;
    rs1 = None;
    rs2 = None;
    pc = None;
    custreg = (fun _ _ -> Bitvec.zero (Bitvec.unsigned_ty 32));
    mem_read = (fun _ elems -> Bitvec.zero (Bitvec.unsigned_ty (8 * elems)));
  }

type custreg_write = {
  cw_reg : string;
  cw_index : int option;
  cw_data : Bitvec.t;
  cw_valid : bool;
}

type response = {
  rd_write : (Bitvec.t * bool) option;  (* WrRD data, valid *)
  pc_write : (Bitvec.t * bool) option;
  custreg_writes : custreg_write list;
  mem_write : (int * Bitvec.t * bool) option;  (* addr, data, valid *)
  mem_read_request : (int * bool) option;  (* addr, valid *)
  cycles : int;
}

exception Cosim_error of string

(* Run one instruction (or one always-block evaluation) through the module.
   Inputs are applied in the stage recorded in each binding; outputs are
   sampled in theirs. All stall inputs are held low. The compiled engine
   is the default; [~engine:Rtl.Engine.Interp] cross-checks against the
   reference interpreter. *)
let run ?(engine = Rtl.Engine.Compiled) (f : Flow.compiled_functionality)
    (stim : stimulus) : response =
  let hw = f.cf_hw in
  let m = hw.Hwgen.netlist in
  let sim = Rtl.Engine.create ~kind:engine m in
  let u w = Bitvec.unsigned_ty w in
  (* hold stall inputs low *)
  List.iter
    (fun (p : Rtl.Netlist.port) ->
      if String.length p.port_name >= 8 && String.sub p.port_name 0 8 = "stall_in" then
        Rtl.Engine.set_input sim p.port_name (Bitvec.zero (u 1)))
    m.Rtl.Netlist.inputs;
  let port role (b : Hwgen.iface_binding) =
    match List.assoc_opt role b.ib_ports with
    | Some p -> p
    | None -> raise (Cosim_error (Printf.sprintf "binding %s lacks %s port" b.ib_iface role))
  in
  let has_input name = List.exists (fun (p : Rtl.Netlist.port) -> p.port_name = name) m.Rtl.Netlist.inputs in
  let rd_write = ref None and pc_write = ref None in
  let custreg_writes = ref [] and mem_write = ref None and mem_read_request = ref None in
  (* pending memory response: (cycle, port, value) *)
  let pending_inputs : (int * string * Bitvec.t) list ref = ref [] in
  let min_stage =
    List.fold_left (fun acc (b : Hwgen.iface_binding) -> min acc b.ib_stage) 1000 hw.bindings
  in
  let min_stage = min min_stage 0 in
  let max_cycle = hw.max_stage + 2 in
  for cycle = min_stage to max_cycle do
    (* supply plain inputs bound to this stage *)
    List.iter
      (fun (b : Hwgen.iface_binding) ->
        if b.ib_stage = cycle then
          match b.ib_opname with
          | "lil.instr_word" -> (
              match stim.instr_word with
              | Some v -> Rtl.Engine.set_input sim (port "data" b) v
              | None -> raise (Cosim_error "stimulus lacks instruction word"))
          | "lil.read_rs1" ->
              Rtl.Engine.set_input sim (port "data" b)
                (match stim.rs1 with Some v -> v | None -> raise (Cosim_error "no rs1"))
          | "lil.read_rs2" ->
              Rtl.Engine.set_input sim (port "data" b)
                (match stim.rs2 with Some v -> v | None -> raise (Cosim_error "no rs2"))
          | "lil.read_pc" ->
              Rtl.Engine.set_input sim (port "data" b)
                (match stim.pc with Some v -> v | None -> raise (Cosim_error "no pc"))
          | _ -> ())
      hw.bindings;
    (* supply any pending (latency-delayed) inputs due this cycle *)
    List.iter
      (fun (c, p, v) -> if c = cycle then Rtl.Engine.set_input sim p v)
      !pending_inputs;
    Rtl.Engine.eval sim;
    (* address-dependent reads: custom registers deliver in the same stage *)
    List.iter
      (fun (b : Hwgen.iface_binding) ->
        if b.ib_stage = cycle && b.ib_opname = "lil.read_custreg" then begin
          let reg = Option.get b.ib_reg in
          let idx =
            match List.assoc_opt "addr" b.ib_ports with
            | Some ap -> Bitvec.to_int (Rtl.Engine.output sim ap)
            | None -> 0
          in
          let data_port = port "data" b in
          if has_input data_port then begin
            Rtl.Engine.set_input sim data_port (stim.custreg reg idx);
            Rtl.Engine.eval sim
          end
        end)
      hw.bindings;
    (* memory read request: response arrives after the interface latency *)
    List.iter
      (fun (b : Hwgen.iface_binding) ->
        if b.ib_stage = cycle && b.ib_opname = "lil.read_mem" then begin
          let addr = Bitvec.to_int (Rtl.Engine.output sim (port "addr" b)) in
          let valid = Bitvec.to_bool (Rtl.Engine.output sim (port "valid" b)) in
          mem_read_request := Some (addr, valid);
          let data_port = port "data" b in
          (* the response arrives one cycle later (RdMem latency) *)
          let width =
            match
              List.find_opt
                (fun (p : Rtl.Netlist.port) -> p.port_name = data_port)
                m.Rtl.Netlist.inputs
            with
            | Some p -> p.port_width
            | None -> 32
          in
          pending_inputs :=
            (cycle + 1, data_port, Bitvec.cast (u width) (stim.mem_read addr (max 1 (width / 8))))
            :: !pending_inputs
        end)
      hw.bindings;
    (* sample outputs bound to this stage *)
    List.iter
      (fun (b : Hwgen.iface_binding) ->
        if b.ib_stage = cycle then
          match b.ib_opname with
          | "lil.write_rd" ->
              rd_write :=
                Some
                  ( Rtl.Engine.output sim (port "data" b),
                    Bitvec.to_bool (Rtl.Engine.output sim (port "valid" b)) )
          | "lil.write_pc" ->
              pc_write :=
                Some
                  ( Rtl.Engine.output sim (port "data" b),
                    Bitvec.to_bool (Rtl.Engine.output sim (port "valid" b)) )
          | "lil.write_custreg" ->
              let reg = Option.get b.ib_reg in
              custreg_writes :=
                {
                  cw_reg = reg;
                  cw_index =
                    Option.map
                      (fun ap -> Bitvec.to_int (Rtl.Engine.output sim ap))
                      (List.assoc_opt "addr" b.ib_ports);
                  cw_data = Rtl.Engine.output sim (port "data" b);
                  cw_valid = Bitvec.to_bool (Rtl.Engine.output sim (port "valid" b));
                }
                :: !custreg_writes
          | "lil.write_mem" ->
              mem_write :=
                Some
                  ( Bitvec.to_int (Rtl.Engine.output sim (port "addr" b)),
                    Rtl.Engine.output sim (port "data" b),
                    Bitvec.to_bool (Rtl.Engine.output sim (port "valid" b)) )
          | _ -> ())
      hw.bindings;
    Rtl.Engine.clock sim
  done;
  {
    rd_write = !rd_write;
    pc_write = !pc_write;
    custreg_writes = List.rev !custreg_writes;
    mem_write = !mem_write;
    mem_read_request = !mem_read_request;
    cycles = max_cycle - min_stage + 1;
  }
