(** The end-to-end Longnail flow (Figure 9 of the paper), organized as a
    {e compilation session} over content-addressed stage artifacts:

    {v
    CoreDSL source
      -> typed AST                     (lib/coredsl)    [frontend artifact]
      -> high-level IR, Figure 5b      (Ir.Hlir)        ]
      -> lil CDFG, Figure 5c           (Ir.Lil+Passes)  ] [IR artifact]
      -> LongnailProblem + schedule    (Sched_build)    ]
      -> RTL + SystemVerilog, Fig 5d   (Hwgen, Sv_emit) ] [sched artifact]
      -> SCAIE-V configuration, Fig 8  (Config_gen)       [target artifact]
    v}

    Artifact granularity (see docs/CACHING.md for the key grammar):
    the frontend artifact is keyed per source; the IR artifact per
    functionality (core-independent — a unit compiled for five cores
    lowers and optimizes each instruction once); the sched artifact per
    functionality x core x scheduling knobs; the target artifact per
    unit x core x knobs including hazard handling. Hazard handling only
    affects the SCAIE-V adapter, so the w/ and w/o-scoreboard ablation
    shares every per-functionality artifact.

    Only the ISAX instructions (those not part of the RV32I base set) and
    always-blocks are synthesized; base instructions are implemented by
    the host core itself. *)

(** Every flow failure is raised as {!Diag.Fatal}. Stage exceptions that
    already carry a {!Diag.t} ({!Ir.Hlir.Lower_error}, {!Ir.Lil.Lil_error},
    {!Sched_build.Build_error}, {!Hwgen.Hwgen_error},
    {!Scaiev.Generator.Generate_error}) are converted at the stage
    boundary, with a note naming the functionality being compiled;
    stringly internal errors (IR/problem verification) are wrapped as
    E0901, and a blown simplex pivot budget
    ({!Lp.Simplex.Iteration_limit}) as E0904. *)
val diag_of_stage_exn : exn -> Diag.t option

val with_stage_diags : string -> (unit -> 'a) -> 'a

(** One compiled functionality: a custom instruction or an always-block,
    with every intermediate artifact retained for inspection. *)
type compiled_functionality = {
  cf_name : string;
  cf_kind : [ `Always | `Instruction ];
  cf_hlir : Ir.Mir.graph;  (** the Figure 5b coredsl+hwarith form *)
  cf_lil : Ir.Mir.graph;  (** the optimized Figure 5c CDFG *)
  cf_built : Sched_build.built;  (** the solved LongnailProblem *)
  cf_hw : Hwgen.result;  (** netlist + SCAIE-V port bindings *)
  cf_sv : string;  (** emitted SystemVerilog *)
  cf_mode : Scaiev.Config.mode;  (** dominant execution mode (Section 3.2) *)
}

(** A whole ISAX compiled for one host core. *)
type compiled = {
  core : Scaiev.Datasheet.t;
  unit_ : Coredsl.Tast.tunit;
  funcs : compiled_functionality list;
  config : Scaiev.Config.t;  (** the SCAIE-V configuration (Figure 8) *)
  config_yaml : string;  (** the same, rendered in the YAML exchange format *)
  adapter : Scaiev.Generator.adapter;  (** SCAIE-V's integration plan *)
}

(** Names of the built-in RV32I base instructions (not ISAXes). *)
val base_instr_names : string list lazy_t

val is_isax_instruction : Coredsl.Tast.tinstr -> bool

(** The strongest mode used by any interface binding of a functionality:
    decoupled > tightly-coupled > in-pipeline. *)
val dominant_mode : Hwgen.result -> kind:[> `Always ] -> Scaiev.Config.mode

(** The paper schedules with uniform operator delays; the default model
    charges one fourteenth of the target clock period per logic operator
    (wiring is free), reproducing the reported ~10-stage sqrt. *)
val default_delay_model : Scaiev.Datasheet.t -> float option -> Delay_model.t

(** {1 Scheduling knobs}

    The fingerprintable knob set that selects one point of the scheduling
    design space. Knobs are part of the sched- and target-artifact cache
    keys; two compiles with equal knobs (and equal unit/core fingerprints)
    share artifacts. *)
type knobs = {
  k_scheduler : Sched_build.scheduler;
  k_delay : Delay_model.spec;
  k_cycle_time : float option;  (** [None] = the core's base clock period *)
  k_hazard_handling : bool;
      (** scoreboard for decoupled mode; only affects the target artifact *)
  k_sim_engine : Rtl.Engine.kind;
      (** RTL-in-the-loop simulation engine (compiled by default) *)
  k_backend : Rtl.Backend.kind;
      (** HDL emission backend: SystemVerilog or Verilog-2001 *)
  k_narrow : bool;
      (** analysis-driven width narrowing of the optimized LIL
          ({!Analysis.Narrow}); every rewrite is translation-validated
          (E0530 on any counterexample). Off by default. *)
}

val default_knobs : knobs
(** ILP scheduler, the paper's uniform cycle-time-derived delay model, the
    core's base period, hazard handling on, compiled simulation engine,
    SystemVerilog emission. *)

val knobs :
  ?scheduler:Sched_build.scheduler ->
  ?delay:Delay_model.spec ->
  ?cycle_time:float ->
  ?hazard_handling:bool ->
  ?sim_engine:Rtl.Engine.kind ->
  ?backend:Rtl.Backend.kind ->
  ?narrow:bool ->
  unit ->
  knobs

val func_knobs_key : knobs -> string
(** The knob component of sched-artifact keys (excludes hazard handling,
    which only appears in the target key; includes the simulation engine,
    emission backend and narrowing knob, so switching any of them never
    shares artifacts). *)

val delay_model_for : Scaiev.Datasheet.t -> knobs -> Delay_model.t
(** Resolve the knob's delay spec against the effective cycle time. *)

(** {1 Compilation sessions}

    A session owns four content-addressed artifact stores (frontend, IR,
    sched, target) plus fingerprint memos. Sessions are shared by the CLI,
    {!compile_many}, {!Dse.explore} and the bench baseline; compiling the
    same inputs twice within a session is served entirely from cache. *)
type session

val create_session : ?capacity:int -> ?enabled:bool -> ?disk:Cache.Disk.t -> unit -> session
(** [capacity] bounds each store (default 512 entries, LRU beyond that).
    [enabled:false] creates a session whose stores never retain anything —
    every compile is cold; used for deliberately un-cached baselines.
    [disk] attaches a persistent {!Cache.Disk} store: whole-target output
    artifacts are additionally spilled to / served from it by
    {!compile_outputs} and {!compile_many_outputs}, so a {e fresh process}
    opening the same store directory compiles warm. *)

val session_disk : session -> Cache.Disk.t option
(** The attached persistent store, if any. *)

val session_stats : session -> (string * Cache.Store.stats) list
(** Per-store cumulative hit/miss/store/eviction counters, in pipeline
    order: [frontend], [ir], [sched], [target]. Sessions are safe for
    concurrent use from multiple domains: the stores are single-flight
    (see {!Cache.Store.find_or_add}) and the fingerprint memos are
    mutex-guarded. *)

val session_solver_stats : session -> Lp.Instance.stats
(** Aggregate warm-start counters over the session's persistent ILP
    solver instances (one per functionality x core, created on first
    schedule and kept across knob changes — see docs/SCHEDULING.md).
    Feeds the [solver] section of [bench perf --json]. *)

val session_solver_count : session -> int
(** Number of persistent solver instances the session currently holds. *)

(** {1 Compile requests}

    The compile API (docs/PARALLELISM.md): one {!Request.t} bundles the
    scheduling knobs, the session, the profiling scope and the worker
    count. It is the {e only} way to configure a compile — the per-entry-
    point optional arguments that used to shadow it were removed.
    [Request.make] accepts the individual knob shorthands directly;
    mixing them with a full [?knobs] record raises {!Diag.Fatal} with
    code E0902 (there is no silent precedence). *)
module Request : sig
  type t = {
    knobs : knobs;
    session : session option;  (** [None] = a throwaway non-retaining session *)
    obs : Obs.scope option;
    jobs : int;  (** worker domains for batch entry points; [1] = sequential *)
    verify_each : bool;
        (** re-verify the IR after every optimization pass (the
            [--verify-each] sanitizer); purely a checking knob — it never
            changes the produced artifacts, so it is deliberately not part
            of the cache keys *)
  }

  val default : t
  (** [default_knobs], no session, no profiling, one job, no sanitizer. *)

  val make :
    ?scheduler:Sched_build.scheduler ->
    ?delay:Delay_model.spec ->
    ?cycle_time:float ->
    ?hazard_handling:bool ->
    ?knobs:knobs ->
    ?session:session ->
    ?obs:Obs.scope ->
    ?jobs:int ->
    ?verify_each:bool ->
    unit ->
    t
  (** Raises {!Diag.Fatal} (E0902) when [jobs < 1], or when [?knobs] is
      mixed with any of the individual knob arguments
      ([?scheduler] / [?delay] / [?cycle_time] / [?hazard_handling]). *)
end

val frontend :
  session -> ?obs:Obs.scope -> key:string -> (unit -> Coredsl.Tast.tunit) -> Coredsl.Tast.tunit
(** Memoize a front-end run (parse + typecheck + elaborate) under a
    caller-supplied key — a digest of everything that determines the
    result: source text, compile target, provider contents. The caller
    owns key completeness; see docs/CACHING.md. With [obs], cache
    counters are recorded on that span. *)

val target_key : session -> knobs -> Scaiev.Datasheet.t -> Coredsl.Tast.tunit -> string
(** The content-addressed key of a whole-target compile — exposed so
    callers (e.g. the DSE measure memo) can key their own derived
    artifacts consistently with the session. *)

(** {1 Compiling} *)

(** The per-functionality Figure-9 stage names, in pipeline order. With a
    profiling scope, a {e cold} {!compile_functionality} records one child
    span named ["func:NAME"] containing one span per stage in this list,
    nested under the ["ir_artifact"] (hlir/lil/optimize/verify) and
    ["sched_artifact"] (schedule/hwgen/netcheck/sv_emit) cache-boundary
    spans. The ["verify"] stage runs the dialect-aware
    {!Analysis.Verifier} over the optimized LIL, and ["netcheck"] runs
    {!Analysis.Netcheck} over the generated netlist before SV emission. A
    cache hit skips the stage spans: only the boundary span with its
    [cache.hit]/[cache.miss]/[cache.store] counters remains. *)
val stage_names : string list

(** Compile a single instruction or always-block, configured by
    [?request] (default {!Request.default}). With a profiling scope,
    records a ["func:NAME"] span as described at {!stage_names}.
    Raises {!Diag.Fatal} with code E0401 when scheduling is infeasible; the
    diagnostic cites the CoreDSL span of the operation whose interface
    window cannot be met. *)
val compile_functionality :
  ?request:Request.t ->
  Scaiev.Datasheet.t ->
  Coredsl.Tast.tunit ->
  [ `Always of Coredsl.Tast.talways | `Instr of Coredsl.Tast.tinstr ] ->
  compiled_functionality

(** The Figure 8 bit-pattern string of an instruction's encoding. *)
val mask_of : Coredsl.Tast.tinstr -> string

val compile_request : Request.t -> Scaiev.Datasheet.t -> Coredsl.Tast.tunit -> compiled
(** The canonical single-target entry point: compile every ISAX
    functionality of a typed unit for one host core and produce the
    integration artifacts. [Request.jobs] is ignored here (one target has
    nothing to fan out); without a session a throwaway non-retaining one
    is used, so results are identical with and without caching (see the
    byte-equivalence tests). [knobs.k_hazard_handling = false] drops the
    decoupled-mode scoreboard (the Table 4 ablation row). *)

val compile : ?request:Request.t -> Scaiev.Datasheet.t -> Coredsl.Tast.tunit -> compiled
(** [compile_request] with [?request] defaulting to {!Request.default}. *)

val warm_ir : ?verify_each:bool -> ?narrow:bool -> session -> Coredsl.Tast.tunit -> unit
(** Populate the session's core-independent IR artifacts (hlir + optimized
    lil per ISAX functionality) on the calling domain. {!compile_many}
    calls this before fanning out worker domains, so the frontend/IR half
    is computed once and shared read-only. *)

val compile_many :
  ?request:Request.t -> (Scaiev.Datasheet.t * Coredsl.Tast.tunit) list -> compiled list
(** Batch compile ISAX x core targets through one shared session (a fresh
    retaining session if none is given): common units lower once, common
    (unit, core, knobs) triples compile once. With [Request.jobs > 1] the
    per-target sched/hwgen/SV/integration tail fans out over that many
    worker domains ({!Par.run}); results are collected by index, so the
    output — SV and YAML bytes, diagnostics ordering, the first raised
    failure — is identical to a sequential run. With a profiling scope,
    records one [parallel_compile] span carrying [par.workers] and
    [par.targets] metrics, with one ["target:CORE"] child span per target
    (merged in task order, deterministic at any job count). *)

val find_func : compiled -> string -> compiled_functionality option

(** {1 Portable output artifacts}

    The projection of a {!compiled} target that client-facing front ends
    (the CLI's output files, the [longnail serve] daemon's responses)
    actually consume — per-functionality SystemVerilog plus the SCAIE-V
    YAML and a few integration facts, as plain strings and ints so it
    round-trips through the persistent {!Cache.Disk} store. A disk-warm
    compile returns {!outputs} without rebuilding netlists, schedules or
    adapters; the bytes are identical to a cold compile by construction
    (they {e are} the cold compile's bytes). *)

type output_func = {
  of_name : string;
  of_kind : string;  (** ["instruction"] or ["always"] *)
  of_mode : string;  (** {!Scaiev.Config.mode_to_string} of the dominant mode *)
  of_max_stage : int;
  of_sv : string;
}

type outputs = { o_core : string; o_funcs : output_func list; o_yaml : string }

val outputs_of_compiled : compiled -> outputs

val compile_outputs : Request.t -> Scaiev.Datasheet.t -> Coredsl.Tast.tunit -> outputs
(** Like {!compile_request}, but returns the portable projection and
    consults the session's disk store first: a disk hit skips every
    compile stage; a miss compiles, spills the encoded outputs, and
    returns them. Without an attached disk store this is exactly
    [outputs_of_compiled (compile_request ...)]. With a profiling scope,
    disk lookups record [disk.hit] / [disk.miss] / [disk.store] counters. *)

val compile_many_outputs :
  ?request:Request.t ->
  (Scaiev.Datasheet.t * Coredsl.Tast.tunit) list ->
  outputs list
(** Batch variant of {!compile_outputs}: disk misses fan out through
    {!compile_many} (sharing the in-memory session and worker domains);
    result order matches the input. *)

val find_output_func : outputs -> string -> output_func option
