(** The end-to-end Longnail flow (Figure 9 of the paper):

    {v
    CoreDSL source
      -> typed AST                     (lib/coredsl)
      -> high-level IR, Figure 5b      (Ir.Hlir)
      -> lil CDFG, Figure 5c           (Ir.Lil + Ir.Passes)
      -> LongnailProblem + schedule    (Sched_build, against the core's
                                        virtual datasheet)
      -> RTL + SystemVerilog, Fig 5d   (Hwgen, Rtl.Sv_emit)
      -> SCAIE-V configuration, Fig 8  (Config_gen)
    v}

    Only the ISAX instructions (those not part of the RV32I base set) and
    always-blocks are synthesized; base instructions are implemented by
    the host core itself. *)

(** Every flow failure is raised as {!Diag.Fatal}. Stage exceptions that
    already carry a {!Diag.t} ({!Ir.Hlir.Lower_error}, {!Ir.Lil.Lil_error},
    {!Sched_build.Build_error}, {!Hwgen.Hwgen_error},
    {!Scaiev.Generator.Generate_error}) are converted at the stage
    boundary, with a note naming the functionality being compiled;
    stringly internal errors (IR/problem verification) are wrapped as
    E0901. *)
val diag_of_stage_exn : exn -> Diag.t option

val with_stage_diags : string -> (unit -> 'a) -> 'a

(** One compiled functionality: a custom instruction or an always-block,
    with every intermediate artifact retained for inspection. *)
type compiled_functionality = {
  cf_name : string;
  cf_kind : [ `Always | `Instruction ];
  cf_hlir : Ir.Mir.graph;  (** the Figure 5b coredsl+hwarith form *)
  cf_lil : Ir.Mir.graph;  (** the optimized Figure 5c CDFG *)
  cf_built : Sched_build.built;  (** the solved LongnailProblem *)
  cf_hw : Hwgen.result;  (** netlist + SCAIE-V port bindings *)
  cf_sv : string;  (** emitted SystemVerilog *)
  cf_mode : Scaiev.Config.mode;  (** dominant execution mode (Section 3.2) *)
}

(** A whole ISAX compiled for one host core. *)
type compiled = {
  core : Scaiev.Datasheet.t;
  unit_ : Coredsl.Tast.tunit;
  funcs : compiled_functionality list;
  config : Scaiev.Config.t;  (** the SCAIE-V configuration (Figure 8) *)
  config_yaml : string;  (** the same, rendered in the YAML exchange format *)
  adapter : Scaiev.Generator.adapter;  (** SCAIE-V's integration plan *)
}

(** Names of the built-in RV32I base instructions (not ISAXes). *)
val base_instr_names : string list lazy_t

val is_isax_instruction : Coredsl.Tast.tinstr -> bool

(** The strongest mode used by any interface binding of a functionality:
    decoupled > tightly-coupled > in-pipeline. *)
val dominant_mode : Hwgen.result -> kind:[> `Always ] -> Scaiev.Config.mode

(** The paper schedules with uniform operator delays; the default model
    charges one fourteenth of the target clock period per logic operator
    (wiring is free), reproducing the reported ~10-stage sqrt. *)
val default_delay_model : Scaiev.Datasheet.t -> float option -> Delay_model.t

(** The per-functionality Figure-9 stage names, in pipeline order. With a
    profiling scope, {!compile_functionality} records one child span named
    ["func:NAME"] containing exactly one span per stage in this list. *)
val stage_names : string list

(** Compile a single instruction or always-block. [cycle_time] defaults to
    the core's base clock period; [delay_model] to {!default_delay_model}.
    With [obs] set, records a ["func:NAME"] span with one child per
    {!stage_names} entry, each carrying stage-specific metrics (IR sizes,
    ILP variables/constraints, netlist cells, SV bytes, ...).
    Raises {!Diag.Fatal} with code E0401 when scheduling is infeasible; the
    diagnostic cites the CoreDSL span of the operation whose interface
    window cannot be met. *)
val compile_functionality :
  Scaiev.Datasheet.t ->
  Coredsl.Tast.tunit ->
  ?scheduler:Sched_build.scheduler ->
  ?delay_model:Delay_model.t ->
  ?cycle_time:float ->
  ?obs:Obs.scope ->
  [ `Always of Coredsl.Tast.talways | `Instr of Coredsl.Tast.tinstr ] ->
  compiled_functionality

(** The Figure 8 bit-pattern string of an instruction's encoding. *)
val mask_of : Coredsl.Tast.tinstr -> string

(** Compile every ISAX functionality of a typed unit for one host core and
    produce the integration artifacts. [hazard_handling:false] drops the
    decoupled-mode scoreboard (the Table 4 ablation row). *)
val compile :
  ?scheduler:Sched_build.scheduler ->
  ?delay_model:Delay_model.t ->
  ?cycle_time:float ->
  ?hazard_handling:bool ->
  ?obs:Obs.scope ->
  Scaiev.Datasheet.t ->
  Coredsl.Tast.tunit ->
  compiled

val find_func : compiled -> string -> compiled_functionality option
