(* Physical delay model for scheduling.

   The paper currently assumes uniform delays ("we plan to leverage an
   actual target-specific technology library in the future"); we use a
   slightly richer width-aware linear model calibrated against typical
   22nm standard-cell data so that chaining produces realistic pipeline
   depths (e.g. the 32-iteration sqrt spans about 10 stages, Section 5.4).
   All delays in nanoseconds. *)

type t = { op_delay : string -> int -> float  (* op name, result width *) }

let default_op_delay op w =
  let fw = float_of_int w in
  match op with
  | "hw.constant" -> 0.0
  | "comb.extract" | "comb.concat" | "comb.replicate" -> 0.0 (* wiring *)
  | "comb.and" | "comb.or" | "comb.xor" -> 0.035
  | "comb.mux" -> 0.035
  | "comb.icmp_eq" | "comb.icmp_ne" | "comb.icmp_ult" | "comb.icmp_ule" | "comb.icmp_ugt"
  | "comb.icmp_uge" | "comb.icmp_slt" | "comb.icmp_sle" | "comb.icmp_sgt" | "comb.icmp_sge" ->
      0.04 +. (0.0012 *. fw)
  | "comb.add" | "comb.sub" -> 0.04 +. (0.0012 *. fw)
  | "comb.shl" | "comb.shru" | "comb.shrs" -> 0.06 +. (0.001 *. fw)
  | "comb.mul" -> 0.12 +. (0.004 *. fw)
  | "comb.divu" | "comb.divs" | "comb.modu" | "comb.mods" -> 0.25 +. (0.008 *. fw)
  | "lil.rom" -> 0.22
  | _ -> 0.035 (* interface ops: pad/mux delay *)

(* width-aware physical model: the "more precise physical delays" the paper
   names as future work; available for the scheduler-ablation bench and
   used by the ASIC timing analysis *)
let physical = { op_delay = default_op_delay }

(* Uniform model (the paper's default): every *logic* operator costs the
   same delay; wiring (extract/concat/replicate) and constants are free,
   as in CIRCT's chaining support. *)
let uniform d =
  {
    op_delay =
      (fun op _ ->
        match op with
        | "hw.constant" | "comb.extract" | "comb.concat" | "comb.replicate" -> 0.0
        | _ -> d);
  }

(* The paper's setting: "we currently assume uniform delays ... for logic
   and non-combinational sub-interface operations". The scheduler therefore
   over-packs stages relative to the true physical delays, which is what
   produces the Table 4 frequency regressions on cores with narrow
   interface windows (Section 5.4). *)
let default = uniform 0.14  (* overridden per core by Flow *)

(* Declarative model selection. [t] holds a closure and therefore cannot
   be fingerprinted by the artifact cache; [spec] is the stable,
   key-able description that the Flow session stores in its stage keys
   and resolves to a [t] only at scheduling time. *)
type spec =
  | Default  (** uniform, cycle-time-derived delay (the paper's setting) *)
  | Uniform of float  (** uniform delay in ns for every logic op *)
  | Physical  (** the width-aware 22nm linear model *)
  | Custom of string * t
      (** escape hatch: caller-provided model under a caller-chosen
          cache key — the caller owns key uniqueness *)

let spec_key = function
  | Default -> "default"
  | Uniform d -> Printf.sprintf "uniform:%h" d
  | Physical -> "physical"
  | Custom (k, _) -> "custom:" ^ k

let resolve spec ~cycle_time_ns =
  match spec with
  | Default -> uniform (cycle_time_ns /. 14.0)
  | Uniform d -> uniform d
  | Physical -> physical
  | Custom (_, t) -> t
