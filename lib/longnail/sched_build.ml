(* Construction of the LongnailProblem (Section 4.2) from a lil graph and a
   SCAIE-V virtual datasheet.

   - every lil/comb operation becomes a scheduling operation;
   - SSA def-use edges become dependences;
   - SCAIE-V sub-interface operations get operator types whose
     earliest/latest windows come from the datasheet; WrRD/RdMem/WrMem get
     latest = infinity so that the tightly-coupled/decoupled variants are
     reachable (Section 4.2);
   - for always-blocks, every interface constraint is stage 0 and solving
     merely checks single-cycle feasibility (Section 4.4). *)

open Ir.Mir

exception Build_error of Diag.t

let build_error ?(code = "E0901") ?span fmt =
  Format.kasprintf (fun m -> raise (Build_error (Diag.make ?span ~code m))) fmt

type built = {
  problem : Sched.Problem.t;
  index_of_op : (int, int) Hashtbl.t;  (* mir op id -> problem operation index *)
  ops_by_index : op array;  (* problem operation index -> mir op *)
}

let result_width (op : op) =
  match op.results with r :: _ -> r.vty.Bitvec.width | [] -> 0

(* the operator type for one lil/comb op on a given core *)
let operator_type_for (core : Scaiev.Datasheet.t) (dm : Delay_model.t) ~always (op : op) :
    Sched.Problem.operator_type =
  match Scaiev.Iface.of_lil_op op.opname with
  | Some iface ->
      if always then
        (* always mode: continuous evaluation anchored at stage 0 *)
        Sched.Problem.operator_type iface ~earliest:0 ~latest:0 ~latency:0
          ~outgoing_delay:((dm.Delay_model.op_delay) op.opname (result_width op))
      else begin
        let w =
          match Scaiev.Datasheet.find core iface with
          | Some w -> w
          | None ->
              build_error ~code:"E0402" ?span:op.oloc "core %s lacks interface %s"
                core.core_name iface
        in
        let latest =
          if List.mem iface Scaiev.Iface.relaxable then None (* relaxed to infinity *)
          else w.native_latest
        in
        Sched.Problem.operator_type iface ~earliest:w.earliest ?latest ~latency:w.latency
          ~outgoing_delay:((dm.Delay_model.op_delay) op.opname (result_width op))
      end
  | None ->
      (* plain logic: free placement *)
      Sched.Problem.operator_type op.opname ~latency:0
        ~outgoing_delay:((dm.Delay_model.op_delay) op.opname (result_width op))

let build (core : Scaiev.Datasheet.t) ?(delay_model = Delay_model.default) ?cycle_time
    (g : graph) : built =
  let always = g.gkind = `Always in
  let cycle_time =
    match cycle_time with Some ct -> ct | None -> Scaiev.Datasheet.cycle_time_ns core
  in
  let b = Sched.Problem.builder () in
  let index_of_op = Hashtbl.create 64 in
  let producer : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* value id -> problem op index *)
  let ops = all_ops g in
  List.iteri
    (fun _ (op : op) ->
      match op.opname with
      | "lil.sink" -> ()
      | _ ->
          let lot = operator_type_for core delay_model ~always op in
          let idx = Sched.Problem.add_operation b ~label:(Printf.sprintf "%s#%d" op.opname op.oid) lot in
          Hashtbl.replace index_of_op op.oid idx;
          List.iter (fun r -> Hashtbl.replace producer r.vid idx) op.results)
    ops;
  List.iter
    (fun (op : op) ->
      match Hashtbl.find_opt index_of_op op.oid with
      | None -> ()
      | Some dst ->
          List.iter
            (fun v ->
              match Hashtbl.find_opt producer v.vid with
              | Some src -> Sched.Problem.add_dependence b ~src ~dst
              | None -> ())
            op.operands)
    ops;
  let problem = Sched.Problem.finish ~cycle_time b in
  let ops_by_index =
    Array.of_list (List.filter (fun (o : op) -> Hashtbl.mem index_of_op o.oid) ops)
  in
  { problem; index_of_op; ops_by_index }

(* schedule with the ILP (default) or ASAP scheduler *)
type scheduler = Ilp | Asap

(* [solver] is a persistent incremental instance from an earlier build of
   the same graph (a DSE sweep re-scheduling under different knobs): when
   it is structurally compatible the re-schedule warm-starts from the
   previous grid point; otherwise — or for the ASAP scheduler — it is
   ignored and the one-shot path runs as before. Both paths produce
   identical schedules. *)
let schedule ?(scheduler = Ilp) ?solver (bt : built) =
  match scheduler with
  | Ilp -> (
      let outcome =
        match solver with
        | Some inc when Sched.Ilp_scheduler.Incremental.compatible inc bt.problem ->
            Sched.Ilp_scheduler.Incremental.schedule inc bt.problem
        | _ -> Sched.Ilp_scheduler.schedule bt.problem
      in
      match outcome with
      | Sched.Ilp_scheduler.Scheduled -> true
      | Sched.Ilp_scheduler.Infeasible -> false)
  | Asap -> (
      match Sched.Asap_scheduler.schedule bt.problem with
      | Sched.Asap_scheduler.Scheduled -> true
      | Sched.Asap_scheduler.Infeasible -> false)

(* Explain an infeasible problem: compute each operation's ASAP lower
   bound (longest dependence path, honoring [earliest] but ignoring
   [latest]) and return the op whose lower bound overshoots its own
   [latest] window the most, with (lower_bound, latest). The returned mir
   op carries the CoreDSL span the violation originates from, so flow
   errors can cite the offending source line. *)
let infeasible_culprit (bt : built) : (op * int * int) option =
  let p = bt.problem in
  let ops = p.Sched.Problem.operations in
  let n = Array.length ops in
  let lb = Array.make n 0 in
  Array.iteri (fun i (o : Sched.Problem.operation) -> lb.(i) <- o.lot.earliest) ops;
  let preds = Array.make n [] in
  let add_edge extra (d : Sched.Problem.dependence) =
    let w = ops.(d.dep_src).lot.latency + extra in
    preds.(d.dep_dst) <- (d.dep_src, w) :: preds.(d.dep_dst)
  in
  List.iter (add_edge 0) p.Sched.Problem.dependences;
  List.iter (add_edge 1) (Sched.Problem.chain_breakers p);
  List.iter
    (fun j ->
      List.iter (fun (i, w) -> if lb.(i) + w > lb.(j) then lb.(j) <- lb.(i) + w) preds.(j))
    (Sched.Problem.topo_order p);
  let best = ref None in
  Array.iteri
    (fun i (o : Sched.Problem.operation) ->
      match o.lot.latest with
      | Some l when lb.(i) > l -> (
          match !best with
          | Some (_, lb0, l0) when lb0 - l0 >= lb.(i) - l -> ()
          | _ -> best := Some (bt.ops_by_index.(i), lb.(i), l))
      | _ -> ())
    ops;
  !best

(* start time of a mir op after scheduling *)
let start_time bt (op : op) =
  match Hashtbl.find_opt bt.index_of_op op.oid with
  | Some idx -> bt.problem.Sched.Problem.start_time.(idx)
  | None -> build_error ?span:op.oloc "op %d not in problem" op.oid
