(** Physical delay model for scheduling.

   The paper currently assumes uniform delays ("we plan to leverage an
   actual target-specific technology library in the future"); we use a
   slightly richer width-aware linear model calibrated against typical
   22nm standard-cell data so that chaining produces realistic pipeline
   depths (e.g. the 32-iteration sqrt spans about 10 stages, Section 5.4).
   All delays in nanoseconds. *)

type t = { op_delay : string -> int -> float; }
val default_op_delay : string -> int -> float
val physical : t
val uniform : float -> t
val default : t

(** Declarative, fingerprintable model selection for the compilation
    session ({!Flow}): [t] holds a closure and cannot be content-hashed,
    so stage cache keys store a [spec] and resolve it only when the
    scheduler actually runs. *)
type spec =
  | Default  (** uniform delay derived from the core's cycle time (paper default) *)
  | Uniform of float  (** uniform delay in ns *)
  | Physical  (** width-aware 22nm linear model *)
  | Custom of string * t  (** caller-keyed custom model; caller owns key uniqueness *)

val spec_key : spec -> string
(** Stable string used inside stage cache keys. *)

val resolve : spec -> cycle_time_ns:float -> t
(** [Default] resolves to [uniform (cycle_time_ns /. 14.)] — the same
    per-core derivation the flow has always used. *)
