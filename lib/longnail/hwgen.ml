(* Hardware generation from a scheduled lil graph (Section 4.5).

   Each graph becomes one RTL module whose interface operations turn into
   input/output ports carrying the stage number in which they are active
   (matching Figure 5d, e.g. [instr_word_2], [res_3_data]). Stallable
   pipeline registers are inserted wherever a value crosses a stage
   boundary; the registers feeding stage s+1 are gated by [stall_in_s].
   Longnail does not generate a controller: SCAIE-V's logic tracks the
   progress of the custom instruction and commits results (Section 4.5). *)

open Ir.Mir

exception Hwgen_error of Diag.t

let hw_error ?(code = "E0501") ?span fmt =
  Format.kasprintf (fun m -> raise (Hwgen_error (Diag.make ?span ~code m))) fmt

type iface_binding = {
  ib_opname : string;  (* lil op name *)
  ib_iface : string;  (* SCAIE-V sub-interface name *)
  ib_reg : string option;  (* custom register, if any *)
  ib_stage : int;
  ib_mode : Scaiev.Config.mode;
  ib_has_valid : bool;
  ib_ports : (string * string) list;  (* role ("data","valid","addr","result") -> port *)
}

type result = {
  netlist : Rtl.Netlist.t;
  bindings : iface_binding list;
  max_stage : int;
  pipe_reg_bits : int;
}

(* mode selection, Section 4.3: in-pipeline if within the native window,
   else decoupled inside spawn-blocks, else tightly-coupled *)
let select_mode (core : Scaiev.Datasheet.t) ~always (op : op) ~iface ~t : Scaiev.Config.mode =
  if always then Scaiev.Config.Always_mode
  else
    match Scaiev.Datasheet.find core iface with
    | None -> Scaiev.Config.In_pipeline
    | Some w -> (
        match w.native_latest with
        | Some l when t > l ->
            if attr_bool op "spawn" then Scaiev.Config.Decoupled else Scaiev.Config.Tightly_coupled
        | _ -> Scaiev.Config.In_pipeline)

(* Wiring operations (extract/concat/replicate and constants) have zero
   physical delay, so after scheduling we sink each one to the earliest
   stage among its consumers. This avoids pipelining narrow slices of
   values that are registered anyway and mirrors the retiming a synthesis
   tool would perform. *)
let effective_stages (bt : Sched_build.built) (g : graph) =
  let stage : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let is_wiring = function
    | "comb.extract" | "comb.concat" | "comb.replicate" | "hw.constant" -> true
    | _ -> false
  in
  let consumers : (int, op list) Hashtbl.t = Hashtbl.create 64 in
  let ops = all_ops g in
  List.iter
    (fun (op : op) ->
      List.iter
        (fun v ->
          Hashtbl.replace consumers v.vid
            (op :: Option.value ~default:[] (Hashtbl.find_opt consumers v.vid)))
        op.operands)
    ops;
  (* process in reverse topological (= reverse program) order *)
  List.iter
    (fun (op : op) ->
      match op.opname with
      | "lil.sink" -> ()
      | _ ->
          let t0 = Sched_build.start_time bt op in
          let t =
            if not (is_wiring op.opname) then t0
            else begin
              let uses =
                List.concat_map
                  (fun r -> Option.value ~default:[] (Hashtbl.find_opt consumers r.vid))
                  op.results
              in
              match uses with
              | [] -> t0
              | _ ->
                  List.fold_left
                    (fun acc (u : op) ->
                      match Hashtbl.find_opt stage u.oid with
                      | Some tu -> min acc tu
                      | None -> acc)
                    max_int uses
                  |> fun m -> if m = max_int then t0 else max t0 m
            end
          in
          Hashtbl.replace stage op.oid t)
    (List.rev ops);
  stage

let generate (core : Scaiev.Datasheet.t) (elab : Coredsl.Elaborate.elaborated)
    (bt : Sched_build.built) (g : graph) : result =
  let always = g.gkind = `Always in
  let eff_stage = effective_stages bt g in
  let stage_of (op : op) =
    match Hashtbl.find_opt eff_stage op.oid with
    | Some t -> t
    | None -> Sched_build.start_time bt op
  in
  let nodes = ref [] in
  let inputs = ref [] and outputs = ref [] in
  let stall_ports = Hashtbl.create 8 in
  let bindings = ref [] in
  let add_node n = nodes := n :: !nodes in
  let add_input name width =
    inputs := { Rtl.Netlist.port_name = name; port_width = width; port_signal = name } :: !inputs;
    name
  in
  let add_output name width signal =
    outputs := { Rtl.Netlist.port_name = name; port_width = width; port_signal = signal } :: !outputs
  in
  (* pipeline-enable for the boundary after stage s *)
  let pipe_enable s =
    match Hashtbl.find_opt stall_ports s with
    | Some en -> en
    | None ->
        let stall = add_input (Printf.sprintf "stall_in_%d" s) 1 in
        let en = Printf.sprintf "pipe_en_%d" s in
        let one = Printf.sprintf "const_one_%d" s in
        add_node
          (Rtl.Netlist.Comb
             {
               out = one;
               width = 1;
               op = "hw.constant";
               attrs = [ ("value", A_bv (Bitvec.of_int (Bitvec.unsigned_ty 1) 1)) ];
               inputs = [];
             });
        add_node (Rtl.Netlist.Comb { out = en; width = 1; op = "comb.xor"; attrs = []; inputs = [ stall; one ] });
        Hashtbl.replace stall_ports s en;
        en
  in
  (* per value: base signal name, availability stage, constancy *)
  let base_sig : (int, string * int * bool) Hashtbl.t = Hashtbl.create 64 in
  let piped : (int * int, string) Hashtbl.t = Hashtbl.create 64 in
  let pipe_bits = ref 0 in
  let define (v : value) ?(latency = 0) t name =
    Hashtbl.replace base_sig v.vid (name, t + latency, false)
  in
  let define_const (v : value) name = Hashtbl.replace base_sig v.vid (name, 0, true) in
  (* fetch the signal carrying [v] in stage [s], inserting pipeline regs *)
  let rec signal_at (v : value) s =
    let name, avail, is_const =
      match Hashtbl.find_opt base_sig v.vid with
      | Some x -> x
      | None -> hw_error "value %%%d has no signal" v.vid
    in
    if is_const || s <= avail then name
    else
      match Hashtbl.find_opt piped (v.vid, s) with
      | Some n -> n
      | None ->
          let prev = signal_at v (s - 1) in
          let n = Printf.sprintf "v%d_s%d" v.vid s in
          let w = v.vty.Bitvec.width in
          add_node
            (Rtl.Netlist.Reg
               { out = n; width = w; next = prev; enable = Some (pipe_enable (s - 1)); init = None });
          pipe_bits := !pipe_bits + w;
          Hashtbl.replace piped (v.vid, s) n;
          n
  in
  let const_one = lazy (
    let n = "const_true" in
    add_node
      (Rtl.Netlist.Comb
         {
           out = n;
           width = 1;
           op = "hw.constant";
           attrs = [ ("value", A_bv (Bitvec.of_int (Bitvec.unsigned_ty 1) 1)) ];
           inputs = [];
         });
    n)
  in
  let max_stage = ref 0 in
  let bind op ~iface ?reg ~t ~has_valid ports =
    max_stage := max !max_stage t;
    bindings :=
      {
        ib_opname = op.opname;
        ib_iface = iface;
        ib_reg = reg;
        ib_stage = t;
        ib_mode = select_mode core ~always op ~iface ~t;
        ib_has_valid = has_valid;
        ib_ports = ports;
      }
      :: !bindings
  in
  List.iter
    (fun (op : op) ->
      match op.opname with
      | "lil.sink" -> ()
      | _ -> (
          let t = stage_of op in
          max_stage := max !max_stage t;
          let has_pred = attr_bool op "has_pred" in
          let pred_signal ~n_data =
            if has_pred then signal_at (List.nth op.operands n_data) t
            else Lazy.force const_one
          in
          match op.opname with
          | "lil.instr_word" ->
              let r = List.hd op.results in
              let p = add_input (Printf.sprintf "instr_word_%d" t) r.vty.Bitvec.width in
              define r t p;
              bind op ~iface:"RdInstr" ~t ~has_valid:false [ ("data", p) ]
          | "lil.read_rs1" | "lil.read_rs2" | "lil.read_pc" ->
              let r = List.hd op.results in
              let base =
                match op.opname with
                | "lil.read_rs1" -> "rs1"
                | "lil.read_rs2" -> "rs2"
                | _ -> "pc"
              in
              let p = add_input (Printf.sprintf "%s_%d" base t) r.vty.Bitvec.width in
              define r t p;
              bind op
                ~iface:(match base with "rs1" -> "RdRS1" | "rs2" -> "RdRS2" | _ -> "RdPC")
                ~t ~has_valid:false [ ("data", p) ]
          | "lil.read_custreg" ->
              let reg = Option.get (attr_str op "reg") in
              let r = List.hd op.results in
              let rinfo = Coredsl.Elaborate.find_reg elab reg in
              let elems = match rinfo with Some ri -> ri.elems | None -> 1 in
              let ports = ref [] in
              if elems > 1 then begin
                let idx = List.hd op.operands in
                let pa = Printf.sprintf "rd_%s_addr_%d" reg t in
                add_output pa idx.vty.Bitvec.width (signal_at idx t);
                ports := ("addr", pa) :: !ports
              end;
              let pd = add_input (Printf.sprintf "rd_%s_data_%d" reg t) r.vty.Bitvec.width in
              define r t pd;
              bind op ~iface:("Rd" ^ reg) ~reg ~t ~has_valid:false (("data", pd) :: !ports)
          | "lil.read_mem" ->
              let r = List.hd op.results in
              let addr = List.hd op.operands in
              let pa = Printf.sprintf "mem_raddr_%d" t in
              add_output pa addr.vty.Bitvec.width (signal_at addr t);
              let pv = Printf.sprintf "mem_rvalid_%d" t in
              add_output pv 1 (pred_signal ~n_data:1);
              let lat =
                match Scaiev.Datasheet.find core "RdMem" with Some w -> w.latency | None -> 1
              in
              let pd = add_input (Printf.sprintf "mem_rdata_%d" (t + lat)) r.vty.Bitvec.width in
              define r ~latency:lat t pd;
              bind op ~iface:"RdMem" ~t ~has_valid:true
                [ ("addr", pa); ("valid", pv); ("data", pd) ]
          | "lil.write_rd" ->
              let v = List.hd op.operands in
              let pd = Printf.sprintf "res_%d_data" t in
              add_output pd v.vty.Bitvec.width (signal_at v t);
              let pv = Printf.sprintf "res_%d_valid" t in
              add_output pv 1 (pred_signal ~n_data:1);
              bind op ~iface:"WrRD" ~t ~has_valid:true [ ("data", pd); ("valid", pv) ]
          | "lil.write_pc" ->
              let v = List.hd op.operands in
              let pd = Printf.sprintf "wrpc_%d_data" t in
              add_output pd v.vty.Bitvec.width (signal_at v t);
              let pv = Printf.sprintf "wrpc_%d_valid" t in
              add_output pv 1 (pred_signal ~n_data:1);
              bind op ~iface:"WrPC" ~t ~has_valid:true [ ("data", pd); ("valid", pv) ]
          | "lil.write_custreg" ->
              let reg = Option.get (attr_str op "reg") in
              let rinfo = Coredsl.Elaborate.find_reg elab reg in
              let elems = match rinfo with Some ri -> ri.elems | None -> 1 in
              let idx = List.nth op.operands 0 in
              let v = List.nth op.operands 1 in
              let ports = ref [] in
              if elems > 1 then begin
                let pa = Printf.sprintf "wr_%s_addr_%d" reg t in
                add_output pa idx.vty.Bitvec.width (signal_at idx t);
                ports := ("addr", pa) :: !ports
              end;
              let pd = Printf.sprintf "wr_%s_data_%d" reg t in
              add_output pd v.vty.Bitvec.width (signal_at v t);
              let pv = Printf.sprintf "wr_%s_valid_%d" reg t in
              add_output pv 1 (pred_signal ~n_data:2);
              bind op ~iface:("Wr" ^ reg) ~reg ~t ~has_valid:true
                (("data", pd) :: ("valid", pv) :: !ports)
          | "lil.write_mem" ->
              let addr = List.nth op.operands 0 and v = List.nth op.operands 1 in
              let pa = Printf.sprintf "mem_waddr_%d" t in
              add_output pa addr.vty.Bitvec.width (signal_at addr t);
              let pd = Printf.sprintf "mem_wdata_%d" t in
              add_output pd v.vty.Bitvec.width (signal_at v t);
              let pv = Printf.sprintf "mem_wvalid_%d" t in
              add_output pv 1 (pred_signal ~n_data:2);
              bind op ~iface:"WrMem" ~t ~has_valid:true
                [ ("addr", pa); ("data", pd); ("valid", pv) ]
          | "lil.rom" ->
              let rom = Option.get (attr_str op "rom") in
              let r = List.hd op.results in
              let table =
                match Coredsl.Elaborate.find_reg elab rom with
                | Some { rinit = Some t; _ } -> t
                | _ -> hw_error ?span:op.oloc "ROM %s has no contents" rom
              in
              let idx = List.hd op.operands in
              let n = Printf.sprintf "v%d" r.vid in
              add_node
                (Rtl.Netlist.Rom
                   { out = n; width = r.vty.Bitvec.width; table; index = signal_at idx t });
              define r t n
          | "hw.constant" ->
              let r = List.hd op.results in
              let n = Printf.sprintf "v%d" r.vid in
              add_node
                (Rtl.Netlist.Comb
                   { out = n; width = r.vty.Bitvec.width; op = "hw.constant"; attrs = op.attrs; inputs = [] });
              define_const r n
          | comb when Ir.Comb_eval.is_comb comb ->
              let r = List.hd op.results in
              let n = Printf.sprintf "v%d" r.vid in
              add_node
                (Rtl.Netlist.Comb
                   {
                     out = n;
                     width = r.vty.Bitvec.width;
                     op = comb;
                     attrs = op.attrs;
                     inputs = List.map (fun v -> signal_at v t) op.operands;
                   });
              define r t n
          | other -> hw_error ?span:op.oloc "cannot generate hardware for op %s" other))
    g.body;
  let netlist =
    {
      Rtl.Netlist.mod_name = g.gname;
      inputs = List.rev !inputs;
      outputs = List.rev !outputs;
      nodes = List.rev !nodes;
    }
  in
  Rtl.Netlist.validate netlist;
  { netlist; bindings = List.rev !bindings; max_stage = !max_stage; pipe_reg_bits = !pipe_bits }
