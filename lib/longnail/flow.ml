(* The end-to-end Longnail flow (Figure 9):

   CoreDSL source
     -> typed AST                      (lib/coredsl)
     -> high-level IR, Figure 5b      (Ir.Hlir)
     -> lil CDFG, Figure 5c           (Ir.Lil + Ir.Passes)
     -> LongnailProblem + schedule    (Sched_build, against the core's
                                       virtual datasheet)
     -> RTL + SystemVerilog, Fig 5d   (Hwgen, Rtl.Sv_emit)
     -> SCAIE-V configuration, Fig 8  (Config_gen)

   Only the ISAX instructions (those not part of the RV32I base set) and
   always-blocks are synthesized; base instructions are implemented by the
   host core itself.

   The flow is organized as a *compilation session*: every stage boundary
   is a content-addressed artifact (Cache.Store) keyed by structural
   fingerprints (Cache.Fp), so repeated compiles — the CLI, batch
   compiles, the DSE sweep, the bench baseline — reuse everything
   upstream of the first changed input. Artifact granularity:

     frontend artifact   per source            (caller-supplied key)
     IR artifact         per functionality     (unit fp; core-independent)
     sched artifact      per functionality x core x knobs
     target artifact     per unit x core x knobs (incl. hazard handling)

   Hazard handling only affects the SCAIE-V adapter, so it appears only in
   the target key: the w/ and w/o-scoreboard ablation shares every
   per-functionality artifact. *)

(* Every failure of the flow surfaces as [Diag.Fatal]: stage exceptions
   already carrying a [Diag.t] are re-raised as fatal diagnostics at the
   stage boundary; stringly internal errors (IR/problem verification) are
   wrapped as E0901. *)

let diag_of_stage_exn = function
  | Ir.Hlir.Lower_error d
  | Ir.Lil.Lil_error d
  | Sched_build.Build_error d
  | Hwgen.Hwgen_error d
  | Scaiev.Generator.Generate_error d ->
      Some d
  | Ir.Mir.Verify_error m ->
      Some (Diag.make ~code:"E0901" ("internal: IR verification failed: " ^ m))
  | Analysis.Verifier.Verify_error d | Analysis.Netcheck.Netcheck_error d -> Some d
  | Sched.Problem.Problem_error m -> Some (Diag.make ~code:"E0901" ("internal: " ^ m))
  | Lp.Simplex.Iteration_limit budget ->
      Some
        (Diag.make ~code:"E0904"
           (Printf.sprintf "solver iteration budget exhausted (%d pivots)" budget)
           ~notes:
             [
               "the scheduling ILP did not converge within the simplex pivot budget; this \
                indicates a degenerate or pathologically large constraint system";
             ])
  | _ -> None

(* Run [f], converting any stage exception into a fatal diagnostic that
   names the functionality being compiled. *)
let with_stage_diags what f =
  try f ()
  with e -> (
    match diag_of_stage_exn e with
    | Some d -> Diag.fatal { d with Diag.notes = d.Diag.notes @ [ "while compiling " ^ what ] }
    | None -> raise e)

type compiled_functionality = {
  cf_name : string;
  cf_kind : [ `Instruction | `Always ];
  cf_hlir : Ir.Mir.graph;
  cf_lil : Ir.Mir.graph;
  cf_built : Sched_build.built;
  cf_hw : Hwgen.result;
  cf_sv : string;
  cf_mode : Scaiev.Config.mode;  (* dominant execution mode *)
}

type compiled = {
  core : Scaiev.Datasheet.t;
  unit_ : Coredsl.Tast.tunit;
  funcs : compiled_functionality list;
  config : Scaiev.Config.t;
  config_yaml : string;
  adapter : Scaiev.Generator.adapter;
}

(* names of the base RV32I instructions, which are not ISAXes *)
let base_instr_names =
  lazy
    (let tu = Coredsl.compile_rv32i () in
     List.map (fun (ti : Coredsl.Tast.tinstr) -> ti.ti_name) tu.tinstrs)

(* Forcing a lazy concurrently from two domains raises [RacyLazy], so
   every internal access goes through this lock; the parallel driver also
   forces it eagerly before fanning out worker domains. *)
let base_instr_lock = Mutex.create ()
let base_names () = Mutex.protect base_instr_lock (fun () -> Lazy.force base_instr_names)

let is_isax_instruction (ti : Coredsl.Tast.tinstr) =
  not (List.mem ti.ti_name (base_names ()))

let dominant_mode (hw : Hwgen.result) ~kind =
  if kind = `Always then Scaiev.Config.Always_mode
  else if List.exists (fun b -> b.Hwgen.ib_mode = Scaiev.Config.Decoupled) hw.bindings then
    Scaiev.Config.Decoupled
  else if List.exists (fun b -> b.Hwgen.ib_mode = Scaiev.Config.Tightly_coupled) hw.bindings
  then Scaiev.Config.Tightly_coupled
  else Scaiev.Config.In_pipeline

(* The paper schedules with uniform operator delays; we default to a
   uniform delay of one fourteenth of the target clock period, i.e. up to
   ~14 chained logic operations per stage. This reproduces the reported ~10
   pipeline stages for the 32-iteration sqrt and lets the downstream ASIC
   timing analysis (with true physical delays) discover the frequency
   regressions of Table 4, exactly like the paper's flow. *)
let default_delay_model core cycle_time =
  let ct = match cycle_time with Some ct -> ct | None -> Scaiev.Datasheet.cycle_time_ns core in
  Delay_model.uniform (ct /. 14.0)

(* ---- scheduling knobs ------------------------------------------------ *)

type knobs = {
  k_scheduler : Sched_build.scheduler;
  k_delay : Delay_model.spec;
  k_cycle_time : float option;  (* None = the core's base clock period *)
  k_hazard_handling : bool;
  k_sim_engine : Rtl.Engine.kind;  (* RTL-in-the-loop simulation engine *)
  k_backend : Rtl.Backend.kind;  (* HDL emission backend *)
  k_narrow : bool;  (* analysis-driven width narrowing (TV-guarded) *)
}

let default_knobs =
  {
    k_scheduler = Sched_build.Ilp;
    k_delay = Delay_model.Default;
    k_cycle_time = None;
    k_hazard_handling = true;
    k_sim_engine = Rtl.Engine.Compiled;
    k_backend = Rtl.Backend.Sv;
    k_narrow = false;
  }

let knobs ?(scheduler = Sched_build.Ilp) ?(delay = Delay_model.Default) ?cycle_time
    ?(hazard_handling = true) ?(sim_engine = Rtl.Engine.Compiled)
    ?(backend = Rtl.Backend.Sv) ?(narrow = false) () =
  { k_scheduler = scheduler; k_delay = delay; k_cycle_time = cycle_time;
    k_hazard_handling = hazard_handling; k_sim_engine = sim_engine; k_backend = backend;
    k_narrow = narrow }

let scheduler_name = function Sched_build.Ilp -> "ilp" | Sched_build.Asap -> "asap"

(* The knob part of the per-functionality sched key. Hazard handling is
   deliberately absent: it only affects the adapter (target artifact).
   The simulation engine cannot change any artifact (engines are asserted
   bit-identical) but is still keyed so engine-tagged runs never share
   entries; the emission backend changes the HDL text and must be keyed. *)
let func_knobs_key k =
  Printf.sprintf "%s|ct:%s|%s|eng:%s|be:%s|nw:%s" (scheduler_name k.k_scheduler)
    (match k.k_cycle_time with Some ct -> Printf.sprintf "%h" ct | None -> "core")
    (Delay_model.spec_key k.k_delay)
    (Rtl.Engine.kind_to_string k.k_sim_engine)
    (Rtl.Backend.to_string k.k_backend)
    (if k.k_narrow then "on" else "off")

let delay_model_for core k =
  let ct =
    match k.k_cycle_time with Some ct -> ct | None -> Scaiev.Datasheet.cycle_time_ns core
  in
  Delay_model.resolve k.k_delay ~cycle_time_ns:ct

(* ---- compilation sessions -------------------------------------------- *)

(* IR artifact: the core-independent half of a functionality (Figure 5b
   and the optimized Figure 5c CDFG). *)
type func_ir = { fi_hlir : Ir.Mir.graph; fi_lil : Ir.Mir.graph }

type session = {
  s_frontend : Coredsl.Tast.tunit Cache.Store.t;
  s_ir : func_ir Cache.Store.t;
  s_func : compiled_functionality Cache.Store.t;
  s_target : compiled Cache.Store.t;
  s_disk : Cache.Disk.t option;
      (* persistent spill: whole-target output artifacts (SV + YAML +
         integration facts) are additionally written to / served from a
         content-addressed on-disk store, so a *fresh process* opening
         the same store directory compiles warm. Only [compile_outputs]
         / [compile_many_outputs] consult it: the full [compiled] value
         (netlists, schedules, adapters) exists only on real compiles. *)
  (* fingerprint memos, keyed by physical identity: reusing the same
     tunit/datasheet value across lookups skips re-serialization. Guarded
     by [s_fp_lock]: sessions are shared across worker domains. *)
  s_fp_lock : Mutex.t;
  mutable s_unit_fps : (Coredsl.Tast.tunit * Cache.Fp.t) list;
  mutable s_core_fps : (Scaiev.Datasheet.t * Cache.Fp.t) list;
  (* persistent ILP solver instances, keyed by functionality IR x core
     (knob-independent: knobs move only the numbers — chain breakers,
     windows — which is exactly what {!Lp.Instance} re-solves warm). A DSE
     sweep therefore holds one solver per functionality and every grid
     point after the first re-pivots instead of starting from scratch.
     Guarded by [s_solver_lock]; each instance additionally serializes its
     own re-solves, so concurrent domains are safe. *)
  s_solver_lock : Mutex.t;
  mutable s_solvers : (string * Sched.Ilp_scheduler.Incremental.t) list;
}

let create_session ?capacity ?(enabled = true) ?disk () =
  let capacity = if enabled then capacity else Some 0 in
  {
    s_frontend = Cache.Store.create ?capacity ~name:"frontend" ();
    s_ir = Cache.Store.create ?capacity ~name:"ir" ();
    s_func = Cache.Store.create ?capacity ~name:"sched" ();
    s_target = Cache.Store.create ?capacity ~name:"target" ();
    s_disk = disk;
    s_fp_lock = Mutex.create ();
    s_unit_fps = [];
    s_core_fps = [];
    s_solver_lock = Mutex.create ();
    s_solvers = [];
  }

(* Fetch (or create on first use) the persistent solver for one
   functionality x core; [create] builds it from the first scheduling
   problem seen under the key. *)
let session_solver s ~key ~create =
  Mutex.protect s.s_solver_lock (fun () ->
      match List.assoc_opt key s.s_solvers with
      | Some inc -> inc
      | None ->
          let inc = create () in
          s.s_solvers <- (key, inc) :: s.s_solvers;
          inc)

(* Aggregate warm-start counters over every solver instance the session
   holds — the [solver] section of [bench perf --json]. *)
let session_solver_stats s : Lp.Instance.stats =
  Mutex.protect s.s_solver_lock (fun () ->
      List.fold_left
        (fun acc (_, inc) ->
          Lp.Instance.add_stats acc (Sched.Ilp_scheduler.Incremental.stats inc))
        Lp.Instance.zero_stats s.s_solvers)

let session_solver_count s =
  Mutex.protect s.s_solver_lock (fun () -> List.length s.s_solvers)

let session_disk s = s.s_disk

let session_stats s =
  [
    (Cache.Store.name s.s_frontend, Cache.Store.stats s.s_frontend);
    (Cache.Store.name s.s_ir, Cache.Store.stats s.s_ir);
    (Cache.Store.name s.s_func, Cache.Store.stats s.s_func);
    (Cache.Store.name s.s_target, Cache.Store.stats s.s_target);
  ]

let fp_memo_limit = 32

let take n l = List.filteri (fun i _ -> i < n) l

(* The memo lookups mutate the lists, so reads and writes both take the
   lock. Fingerprinting itself is pure; a rare duplicate computation when
   two domains race on the same fresh value is harmless (same fp). *)
let unit_fp s (tu : Coredsl.Tast.tunit) =
  match Mutex.protect s.s_fp_lock (fun () -> List.assq_opt tu s.s_unit_fps) with
  | Some fp -> fp
  | None ->
      let fp = Cache.Fp.tunit tu in
      Mutex.protect s.s_fp_lock (fun () ->
          s.s_unit_fps <- take fp_memo_limit ((tu, fp) :: s.s_unit_fps));
      fp

let core_fp s (core : Scaiev.Datasheet.t) =
  match Mutex.protect s.s_fp_lock (fun () -> List.assq_opt core s.s_core_fps) with
  | Some fp -> fp
  | None ->
      let fp = Cache.Fp.datasheet core in
      Mutex.protect s.s_fp_lock (fun () ->
          s.s_core_fps <- take fp_memo_limit ((core, fp) :: s.s_core_fps));
      fp

let frontend s ?obs ~key thunk = Cache.Store.find_or_add s.s_frontend ?obs ("fe/" ^ key) thunk

let ir_key s tu ~narrow ~kind ~name =
  Printf.sprintf "%s/%s/%s%s" (unit_fp s tu)
    (match kind with `Instruction -> "instr" | `Always -> "always")
    name
    (if narrow then "/nw" else "")

let func_key s k core tu ~kind ~name =
  Printf.sprintf "%s/%s/%s"
    (ir_key s tu ~narrow:k.k_narrow ~kind ~name)
    (core_fp s core) (func_knobs_key k)

let target_key s k (core : Scaiev.Datasheet.t) (tu : Coredsl.Tast.tunit) =
  Printf.sprintf "%s/%s/%s|%s" (unit_fp s tu) (core_fp s core) (func_knobs_key k)
    (if k.k_hazard_handling then "hz" else "nohz")

(* A throwaway session with storing disabled: used when a caller compiles
   without a session, so the un-cached path has no retention cost. *)
let throwaway () = create_session ~enabled:false ()

(* ---- compile requests ------------------------------------------------ *)

(* The unified public compile API: one record bundles everything a compile
   entry point takes. The former per-entry-point optional arguments
   (?scheduler ?delay ... ?session ?obs) are gone; [make] accepts the
   individual knob shorthands instead, and mixing them with a full [?knobs]
   record is a usage error (E0902) — there is no silent precedence. *)
module Request = struct
  type t = {
    knobs : knobs;
    session : session option;
    obs : Obs.scope option;
    jobs : int;
    verify_each : bool;
  }

  let default =
    { knobs = default_knobs; session = None; obs = None; jobs = 1; verify_each = false }

  let conflict msg =
    Diag.fatal
      (Diag.make ~code:"E0902" ("conflicting compile options: " ^ msg)
         ~notes:
           [
             "pass either one full ?knobs record or the individual knob arguments to \
              Request.make, not both";
           ])

  let make ?scheduler ?delay ?cycle_time ?hazard_handling ?knobs ?session ?obs ?(jobs = 1)
      ?(verify_each = false) () =
    if jobs < 1 then
      Diag.fatalf ~code:"E0902" "invalid compile request: jobs must be >= 1 (got %d)" jobs;
    let individual =
      List.filter_map
        (fun (present, arg) -> if present then Some arg else None)
        [
          (Option.is_some scheduler, "?scheduler");
          (Option.is_some delay, "?delay");
          (Option.is_some cycle_time, "?cycle_time");
          (Option.is_some hazard_handling, "?hazard_handling");
        ]
    in
    let knobs =
      match knobs with
      | Some k ->
          if individual <> [] then
            conflict
              (Printf.sprintf "?knobs given together with %s" (String.concat ", " individual));
          k
      | None ->
          {
            k_scheduler = Option.value scheduler ~default:Sched_build.Ilp;
            k_delay = Option.value delay ~default:Delay_model.Default;
            k_cycle_time = cycle_time;
            k_hazard_handling = Option.value hazard_handling ~default:true;
            k_sim_engine = Rtl.Engine.Compiled;
            k_backend = Rtl.Backend.Sv;
            k_narrow = false;
          }
    in
    { knobs; session; obs; jobs; verify_each }
end

(* ---- per-functionality stages ---------------------------------------- *)

(* The per-functionality Figure-9 stages, in pipeline order. Each cold
   compiled functionality records exactly one profiling span per stage
   (nested under the [ir_artifact] / [sched_artifact] cache-boundary
   spans); tests and the CI schema check rely on this list staying in sync
   with [compile_functionality]. Cache hits skip the stage spans entirely
   — only the boundary span with its cache counters remains. *)
let stage_names =
  [ "hlir"; "lil"; "optimize"; "verify"; "schedule"; "hwgen"; "netcheck"; "sv_emit" ]

(* [--verify-each] sanitizer: re-check the graph after every pass and blame
   the pass (E0512) rather than reporting a bare verifier failure. *)
let pass_sanitizer ~pass_name g =
  match Analysis.Verifier.check ~level:`Lil g with
  | [] -> ()
  | (d : Diag.t) :: _ ->
      Diag.fatal
        {
          d with
          Diag.code = "E0512";
          message =
            Printf.sprintf "pass '%s' produced invalid IR: %s" pass_name d.Diag.message;
        }

let build_func_ir ?(verify_each = false) ?(narrow = false) (tu : Coredsl.Tast.tunit) obs fn =
  let hlir, fields =
    Obs.span_opt obs "hlir" (fun sobs ->
        let hlir, fields =
          match fn with
          | `Instr (ti : Coredsl.Tast.tinstr) -> (Ir.Hlir.lower_instruction tu ti, ti.fields)
          | `Always ta -> (Ir.Hlir.lower_always tu ta, [])
        in
        Analysis.Verifier.verify ~level:`Hlir hlir;
        Obs.metric_int_opt sobs "ops" (Ir.Passes.op_count hlir);
        Obs.metric_int_opt sobs "edges" (Ir.Passes.edge_count hlir);
        (hlir, fields))
  in
  let lil =
    Obs.span_opt obs "lil" (fun sobs ->
        let lil = Ir.Lil.of_hlir tu.elab ~fields hlir in
        Obs.metric_int_opt sobs "ops" (Ir.Passes.op_count lil);
        Obs.metric_int_opt sobs "edges" (Ir.Passes.edge_count lil);
        lil)
  in
  let lil =
    Obs.span_opt obs "optimize" (fun sobs ->
        let sanitizer = if verify_each then Some pass_sanitizer else None in
        Ir.Passes.optimize ?obs:sobs ?verify_each:sanitizer lil)
  in
  (* analysis-driven width narrowing: off by default so the stage list
     (and the profile schema) only grows when the knob asks for it. Every
     rewrite inside is translation-validated (E0530 on counterexample). *)
  let lil =
    if not narrow then lil
    else
      Obs.span_opt obs "narrow" (fun sobs ->
          let sanitizer = if verify_each then Some pass_sanitizer else None in
          let lil, (st : Analysis.Narrow.stats) =
            Analysis.Narrow.narrow_graph ?obs:sobs ?verify_each:sanitizer lil
          in
          Obs.metric_int_opt sobs "ops_rewritten" st.ns_ops_rewritten;
          Obs.metric_int_opt sobs "bits_removed" st.ns_bits_removed;
          Obs.metric_int_opt sobs "compares_folded" st.ns_compares_folded;
          Obs.metric_int_opt sobs "selects_removed" st.ns_selects_removed;
          Obs.metric_int_opt sobs "tv_validations" st.ns_tv_validations;
          Obs.metric_int_opt sobs "tv_vectors" st.ns_tv_vectors;
          Obs.metric_int_opt sobs "tv_exhaustive" st.ns_tv_exhaustive;
          lil)
  in
  let lil =
    Obs.span_opt obs "verify" (fun sobs ->
        Analysis.Verifier.verify ~level:`Lil lil;
        Ir.Lil.validate_single_use lil;
        Obs.metric_int_opt sobs "ops" (Ir.Passes.op_count lil);
        lil)
  in
  { fi_hlir = hlir; fi_lil = lil }

let build_func_hw ?solver_for (core : Scaiev.Datasheet.t) (tu : Coredsl.Tast.tunit) k ~name
    ~kind obs (fir : func_ir) =
  let delay_model = delay_model_for core k in
  let cycle_time = k.k_cycle_time in
  let scheduler = k.k_scheduler in
  let lil = fir.fi_lil in
  let built =
    Obs.span_opt obs "schedule" (fun sobs ->
        let built = Sched_build.build core ~delay_model ?cycle_time lil in
        let p = built.Sched_build.problem in
        Obs.metric_str_opt sobs "scheduler" (scheduler_name scheduler);
        Obs.metric_int_opt sobs "sched_ops" (Array.length p.Sched.Problem.operations);
        Obs.metric_int_opt sobs "sched_deps" (List.length p.Sched.Problem.dependences);
        let vars, constraints = Sched.Ilp_scheduler.ilp_size p in
        Obs.metric_int_opt sobs "ilp_vars" vars;
        Obs.metric_int_opt sobs "ilp_constraints" constraints;
        (* the persistent solver only serves the ILP scheduler *)
        let solver =
          match (scheduler, solver_for) with
          | Sched_build.Ilp, Some get -> Some (get p)
          | _ -> None
        in
        let before =
          match solver with
          | Some inc -> Sched.Ilp_scheduler.Incremental.stats inc
          | None -> Lp.Instance.zero_stats
        in
        let feasible = Sched_build.schedule ~scheduler ?solver built in
        (* Always the same metric name set on the ILP path, warm or cold —
           profiling span shapes must not depend on solver state. *)
        (match solver with
        | None -> ()
        | Some inc ->
            let a = Sched.Ilp_scheduler.Incremental.stats inc in
            let d f = f a - f before in
            Obs.metric_str_opt sobs "solver.class"
              (Lp.Instance.klass_name (Sched.Ilp_scheduler.Incremental.classify inc));
            Obs.metric_int_opt sobs "solver.resolves" (d (fun s -> s.Lp.Instance.is_resolves));
            Obs.metric_int_opt sobs "solver.warm_hits"
              (d (fun s -> s.Lp.Instance.is_warm_hits));
            Obs.metric_int_opt sobs "solver.fastpath" (d (fun s -> s.Lp.Instance.is_fastpath));
            Obs.metric_int_opt sobs "solver.bf_rounds"
              (d (fun s -> s.Lp.Instance.is_bf_rounds));
            Obs.metric_int_opt sobs "solver.bnb_nodes"
              (d (fun s -> s.Lp.Instance.is_bnb_nodes));
            Obs.metric_int_opt sobs "solver.pivots" (d (fun s -> s.Lp.Instance.is_pivots)));
        Obs.metric_int_opt sobs "feasible" (if feasible then 1 else 0);
        if not feasible then begin
          (* name the operation that overshoots its interface window, so the
             error points at the CoreDSL line it was lowered from *)
          let span, notes =
            match Sched_build.infeasible_culprit built with
            | Some (culprit, lb, latest) ->
                ( culprit.Ir.Mir.oloc,
                  [
                    Printf.sprintf
                      "%s cannot start before stage %d, but core %s requires it no later \
                       than stage %d"
                      culprit.Ir.Mir.opname lb core.core_name latest;
                  ] )
            | None -> (None, [])
          in
          Diag.fatal
            (Diag.make ?span ~notes ~code:"E0401"
               (Printf.sprintf "scheduling of %s for core %s is infeasible" name
                  core.core_name))
        end;
        Sched.Problem.verify built.problem;
        Obs.metric_int_opt sobs "latency"
          (Array.fold_left max 0 p.Sched.Problem.start_time);
        built)
  in
  let hw =
    Obs.span_opt obs "hwgen" (fun sobs ->
        let hw = Hwgen.generate core tu.elab built lil in
        let st = Rtl.Netlist.stats hw.Hwgen.netlist in
        Obs.metric_int_opt sobs "cells" st.Rtl.Netlist.n_comb_nodes;
        Obs.metric_int_opt sobs "registers" st.Rtl.Netlist.n_registers;
        Obs.metric_int_opt sobs "register_bits" st.Rtl.Netlist.register_bits;
        Obs.metric_int_opt sobs "max_stage" hw.Hwgen.max_stage;
        Obs.metric_int_opt sobs "pipe_reg_bits" hw.Hwgen.pipe_reg_bits;
        hw)
  in
  let () =
    Obs.span_opt obs "netcheck" (fun sobs ->
        Analysis.Netcheck.verify ~what:name
          ~provenance:(Analysis.Netcheck.signal_provenance lil)
          hw.Hwgen.netlist;
        Obs.metric_int_opt sobs "signals"
          (List.length hw.Hwgen.netlist.Rtl.Netlist.nodes))
  in
  let sv =
    Obs.span_opt obs "sv_emit" (fun sobs ->
        let sv = Rtl.Backend.emit k.k_backend hw.netlist in
        Obs.metric_int_opt sobs "sv_bytes" (String.length sv);
        sv)
  in
  {
    cf_name = name;
    cf_kind = kind;
    cf_hlir = fir.fi_hlir;
    cf_lil = fir.fi_lil;
    cf_built = built;
    cf_hw = hw;
    cf_sv = sv;
    cf_mode = dominant_mode hw ~kind;
  }

let compile_functionality_in session k ?obs ?(verify_each = false)
    (core : Scaiev.Datasheet.t)
    (tu : Coredsl.Tast.tunit)
    (fn : [ `Instr of Coredsl.Tast.tinstr | `Always of Coredsl.Tast.talways ]) :
    compiled_functionality =
  let name, kind =
    match fn with
    | `Instr ti -> (ti.Coredsl.Tast.ti_name, `Instruction)
    | `Always ta -> (ta.Coredsl.Tast.ta_name, `Always)
  in
  Obs.span_opt obs ("func:" ^ name) @@ fun obs ->
  with_stage_diags name @@ fun () ->
  Obs.metric_str_opt obs "kind"
    (match kind with `Instruction -> "instruction" | `Always -> "always");
  let fir =
    Obs.span_opt obs "ir_artifact" @@ fun sobs ->
    Cache.Store.find_or_add session.s_ir ?obs:sobs
      (ir_key session tu ~narrow:k.k_narrow ~kind ~name)
      (fun () -> build_func_ir ~verify_each ~narrow:k.k_narrow tu sobs fn)
  in
  (* the persistent solver is keyed per functionality x core but *not* per
     knobs: the knobs only move rhs/bounds, which is what resolves warm.
     Narrowing changes the IR the problem is built from, so it rides in
     via [ir_key]. *)
  let solver_for p =
    session_solver session
      ~key:
        (Printf.sprintf "%s/%s"
           (ir_key session tu ~narrow:k.k_narrow ~kind ~name)
           (core_fp session core))
      ~create:(fun () -> Sched.Ilp_scheduler.Incremental.create p)
  in
  Obs.span_opt obs "sched_artifact" @@ fun sobs ->
  Cache.Store.find_or_add session.s_func ?obs:sobs (func_key session k core tu ~kind ~name)
    (fun () -> build_func_hw ~solver_for core tu k ~name ~kind sobs fir)

let compile_functionality ?request (core : Scaiev.Datasheet.t) (tu : Coredsl.Tast.tunit)
    (fn : [ `Instr of Coredsl.Tast.tinstr | `Always of Coredsl.Tast.talways ]) :
    compiled_functionality =
  let r = Option.value request ~default:Request.default in
  let session = match r.Request.session with Some s -> s | None -> throwaway () in
  compile_functionality_in session r.Request.knobs ?obs:r.Request.obs
    ~verify_each:r.Request.verify_each core tu fn

let mask_of (ti : Coredsl.Tast.tinstr) =
  Scaiev.Config.mask_string ~width:ti.enc_width ~mask:ti.mask ~match_bits:ti.match_bits

let build_target session k ?obs ?verify_each (core : Scaiev.Datasheet.t)
    (tu : Coredsl.Tast.tunit) : compiled =
  let instrs = List.filter is_isax_instruction tu.tinstrs in
  let funcs =
    List.map
      (fun ti -> compile_functionality_in session k ?obs ?verify_each core tu (`Instr ti))
      instrs
    @ List.map
        (fun ta -> compile_functionality_in session k ?obs ?verify_each core tu (`Always ta))
        tu.talways
  in
  Obs.metric_int_opt obs "n_funcs" (List.length funcs);
  let config =
    Obs.span_opt obs "config_gen" @@ fun _ ->
    {
      Scaiev.Config.regs = Config_gen.reg_requests tu.elab (List.map (fun f -> f.cf_hw) funcs);
      funcs =
        List.map
          (fun f ->
            let mask =
              match f.cf_kind with
              | `Instruction -> (
                  match Coredsl.Tast.find_tinstr tu f.cf_name with
                  | Some ti -> mask_of ti
                  | None ->
                      Diag.fatalf ~code:"E0901"
                        "internal: compiled instruction %s is missing from the typed unit"
                        f.cf_name)
              | `Always -> ""
            in
            Config_gen.functionality_of ~name:f.cf_name ~kind:f.cf_kind ~mask f.cf_hw)
          funcs;
    }
  in
  let adapter, config_yaml =
    Obs.span_opt obs "adapter_gen" (fun sobs ->
        let adapter =
          with_stage_diags "the SCAIE-V adapter" (fun () ->
              Scaiev.Generator.generate ~hazard_handling:k.k_hazard_handling core config)
        in
        let yaml = Scaiev.Config.to_yaml config in
        Obs.metric_int_opt sobs "config_yaml_bytes" (String.length yaml);
        (adapter, yaml))
  in
  { core; unit_ = tu; funcs; config; config_yaml; adapter }

(* Compile every ISAX functionality of [tu] for [core] — the single
   implementation behind [compile] and the per-target tail of
   [compile_many]. *)
let compile_request (r : Request.t) (core : Scaiev.Datasheet.t) (tu : Coredsl.Tast.tunit) :
    compiled =
  let k = r.Request.knobs in
  let session = match r.Request.session with Some s -> s | None -> throwaway () in
  let obs = r.Request.obs in
  Obs.metric_str_opt obs "core" core.core_name;
  Cache.Store.find_or_add session.s_target ?obs (target_key session k core tu) (fun () ->
      build_target session k ?obs ~verify_each:r.Request.verify_each core tu)

let compile ?request (core : Scaiev.Datasheet.t) (tu : Coredsl.Tast.tunit) : compiled =
  compile_request (Option.value request ~default:Request.default) core tu

(* Populate the session's core-independent IR artifacts for [tu] on the
   calling domain. The parallel driver runs this before fanning out, so
   the frontend/IR half is computed once and shared read-only — worker
   domains then run only the per-target sched/hwgen/SV/integration tail. *)
let warm_ir ?(verify_each = false) ?(narrow = false) session (tu : Coredsl.Tast.tunit) =
  let warm ~kind ~name fn =
    with_stage_diags name (fun () ->
        ignore
          (Cache.Store.find_or_add session.s_ir (ir_key session tu ~narrow ~kind ~name)
             (fun () -> build_func_ir ~verify_each ~narrow tu None fn)))
  in
  List.iter
    (fun (ti : Coredsl.Tast.tinstr) -> warm ~kind:`Instruction ~name:ti.ti_name (`Instr ti))
    (List.filter is_isax_instruction tu.tinstrs);
  List.iter
    (fun (ta : Coredsl.Tast.talways) -> warm ~kind:`Always ~name:ta.ta_name (`Always ta))
    tu.talways

(* Batch compile: fan the per-target tail out over [jobs] worker domains.
   Results are collected by index, so the output list (and therefore SV /
   YAML bytes and diagnostics ordering) is identical to a sequential run;
   with a profiling scope every target records into its own single-domain
   scope, merged under one [parallel_compile] span in task order. *)
let compile_many ?request targets =
  let r = Option.value request ~default:Request.default in
  let session = match r.Request.session with Some s -> s | None -> create_session () in
  let n = List.length targets in
  let jobs = max 1 (min r.Request.jobs (max n 1)) in
  Obs.span_opt r.Request.obs "parallel_compile" @@ fun pobs ->
  Obs.metric_int_opt pobs "par.workers" jobs;
  Obs.metric_int_opt pobs "par.targets" n;
  if jobs > 1 then begin
    (* worker-domain safety: force the base-instruction lazy before
       domains could race on it, and warm the shared IR artifacts so the
       fan-out is purely per-target *)
    ignore (base_names ());
    let seen = ref [] in
    List.iter
      (fun ((_ : Scaiev.Datasheet.t), tu) ->
        if not (List.memq tu !seen) then begin
          seen := tu :: !seen;
          warm_ir ~verify_each:r.Request.verify_each ~narrow:r.Request.knobs.k_narrow
            session tu
        end)
      targets
  end;
  let task ((core : Scaiev.Datasheet.t), tu) () =
    let tobs =
      match pobs with
      | None -> None
      | Some _ -> Some (Obs.create ~name:("target:" ^ core.core_name) ())
    in
    let result =
      compile_request
        { r with Request.session = Some session; obs = tobs; jobs = 1 }
        core tu
    in
    Option.iter Obs.finish tobs;
    (result, Option.map Obs.root tobs)
  in
  let results = Par.run ~jobs (List.map task targets) in
  (match pobs with
  | None -> ()
  | Some p -> List.iter (fun (_, sp) -> Option.iter (Obs.attach p) sp) results);
  List.map fst results

let find_func c name = List.find_opt (fun f -> f.cf_name = name) c.funcs

(* ---- portable output artifacts (the disk-spilled projection) --------- *)

(* The subset of a [compiled] target that client-facing front ends (the
   CLI's output files, the serve daemon's responses) actually consume,
   as plain strings/ints so it round-trips through the on-disk store.
   Full [compiled] values — netlists, schedules, adapters — exist only
   on real compiles; a disk-warm process never rebuilds them. *)

type output_func = {
  of_name : string;
  of_kind : string;  (* "instruction" | "always" *)
  of_mode : string;  (* Scaiev.Config.mode_to_string *)
  of_max_stage : int;
  of_sv : string;
}

type outputs = { o_core : string; o_funcs : output_func list; o_yaml : string }

let outputs_of_compiled (c : compiled) =
  {
    o_core = c.core.Scaiev.Datasheet.core_name;
    o_funcs =
      List.map
        (fun (f : compiled_functionality) ->
          {
            of_name = f.cf_name;
            of_kind = (match f.cf_kind with `Instruction -> "instruction" | `Always -> "always");
            of_mode = Scaiev.Config.mode_to_string f.cf_mode;
            of_max_stage = f.cf_hw.Hwgen.max_stage;
            of_sv = f.cf_sv;
          })
        c.funcs;
    o_yaml = c.config_yaml;
  }

(* The outputs codec: length-prefixed fields, fully self-delimiting. Its
   version is folded into the disk key (not the file header), so a codec
   change simply misses every old entry instead of misreading it; the
   store's own [Cache.Disk.format_version] guards the file layout. *)
let outputs_codec_version = 1

let outputs_key session k core tu =
  Printf.sprintf "out%d/%s" outputs_codec_version (target_key session k core tu)

let encode_outputs (o : outputs) =
  let b = Buffer.create 4096 in
  let put_int i =
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b '\n'
  in
  let put_str s =
    put_int (String.length s);
    Buffer.add_string b s
  in
  put_str o.o_core;
  put_str o.o_yaml;
  put_int (List.length o.o_funcs);
  List.iter
    (fun f ->
      put_str f.of_name;
      put_str f.of_kind;
      put_str f.of_mode;
      put_int f.of_max_stage;
      put_str f.of_sv)
    o.o_funcs;
  Buffer.contents b

let decode_outputs payload =
  let pos = ref 0 in
  let fail () = raise Exit in
  let get_int () =
    match String.index_from_opt payload !pos '\n' with
    | None -> fail ()
    | Some i -> (
        let s = String.sub payload !pos (i - !pos) in
        pos := i + 1;
        match int_of_string_opt s with Some n -> n | None -> fail ())
  in
  let get_str () =
    let n = get_int () in
    if n < 0 || !pos + n > String.length payload then fail ();
    let s = String.sub payload !pos n in
    pos := !pos + n;
    s
  in
  try
    let o_core = get_str () in
    let o_yaml = get_str () in
    let n = get_int () in
    if n < 0 then fail ();
    let o_funcs =
      List.init n (fun _ ->
          let of_name = get_str () in
          let of_kind = get_str () in
          let of_mode = get_str () in
          let of_max_stage = get_int () in
          let of_sv = get_str () in
          { of_name; of_kind; of_mode; of_max_stage; of_sv })
    in
    if !pos <> String.length payload then fail ();
    Some { o_core; o_funcs; o_yaml }
  with Exit -> None

(* Batch compile to output artifacts, consulting the session's disk
   store: disk hits skip compilation entirely (including IR lowering and
   scheduling); misses run through [compile_many] — sharing the in-memory
   session and the worker-domain fan-out — and are spilled back so the
   next process starts warm. Result order matches [targets]. *)
let compile_many_outputs ?request targets =
  let r = match request with Some r -> r | None -> Request.default in
  let session = match r.Request.session with Some s -> s | None -> create_session () in
  let r = { r with Request.session = Some session } in
  match session.s_disk with
  | None -> List.map outputs_of_compiled (compile_many ~request:r targets)
  | Some d ->
      let obs = r.Request.obs in
      let probed =
        List.map
          (fun (core, tu) ->
            let key = outputs_key session r.Request.knobs core tu in
            (key, Option.bind (Cache.Disk.find d ?obs key) decode_outputs))
          targets
      in
      let missing =
        List.filter_map
          (fun (target, (_, found)) -> if found = None then Some target else None)
          (List.combine targets probed)
      in
      let computed = if missing = [] then [] else compile_many ~request:r missing in
      let rec stitch probed computed acc =
        match probed with
        | [] -> List.rev acc
        | (_, Some outs) :: rest -> stitch rest computed (outs :: acc)
        | (key, None) :: rest -> (
            match computed with
            | c :: computed' ->
                let outs = outputs_of_compiled c in
                Cache.Disk.store d ?obs key (encode_outputs outs);
                stitch rest computed' (outs :: acc)
            | [] -> Diag.fatalf ~code:"E0901" "internal: compile_many_outputs lost a target")
      in
      stitch probed computed []

let compile_outputs (r : Request.t) core tu =
  match compile_many_outputs ~request:r [ (core, tu) ] with
  | [ o ] -> o
  | _ -> Diag.fatalf ~code:"E0901" "internal: compile_outputs lost the target"

let find_output_func (o : outputs) name =
  List.find_opt (fun f -> f.of_name = name) o.o_funcs
