(* Observability substrate for the compile pipeline.

   A [scope] is a cursor into a tree of spans. Each span records a name,
   wall-clock duration, an ordered list of metrics (ints, floats, strings,
   monotonically accumulated counters), and child spans. The tree mirrors
   the paper's Figure-9 flow: the root covers one driver invocation, each
   compiled functionality gets a child, and every pipeline stage
   (parse/typecheck, HLIR build, lil lowering, optimization passes,
   scheduling, hwgen, SV emission) nests underneath.

   Renderers: a JSON emitter (machine-readable; consumed by the bench
   baseline writer and the CI schema check) and a pretty tree printer
   (the CLI's `--profile` output). The emitted metric-name *schema* is a
   stable contract checked in CI, so renames are deliberate.

   Overhead when unused is two words per [span] call; the flow creates a
   scope only when profiling is requested. *)

type metric =
  | M_int of int
  | M_float of float
  | M_str of string

type span = {
  sp_name : string;
  mutable sp_elapsed_ns : float;  (* wall time of the span body *)
  mutable sp_metrics : (string * metric) list;  (* reverse insertion order *)
  mutable sp_children : span list;  (* reverse order *)
}

(* A scope points at the span currently being recorded, plus the wall
   clock at which that span started (so a root scope can be [finish]ed). *)
type scope = { current : span; started : float }

let now_ns () = Unix.gettimeofday () *. 1e9

let make_span name = { sp_name = name; sp_elapsed_ns = 0.0; sp_metrics = []; sp_children = [] }

let create ?(name = "root") () = { current = make_span name; started = now_ns () }
let root (s : scope) = s.current

(* Close the scope's span: set its elapsed time to now - start. [span]
   does this automatically for children; [finish] is for root scopes. *)
let finish (s : scope) = s.current.sp_elapsed_ns <- now_ns () -. s.started

(* ---- spans ---- *)

(* Run [f] in a fresh child span of [s] named [name], timing it. The child
   scope is passed to [f] so stages can nest and attach metrics. The span
   is recorded even when [f] raises (partial pipelines still profile). *)
let span (s : scope) name (f : scope -> 'a) : 'a =
  let child = make_span name in
  s.current.sp_children <- child :: s.current.sp_children;
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () -> child.sp_elapsed_ns <- now_ns () -. t0)
    (fun () -> f { current = child; started = t0 })

(* Optional-scope variant: the flow threads [scope option] so the
   un-profiled path pays nothing. *)
let span_opt (s : scope option) name (f : scope option -> 'a) : 'a =
  match s with None -> f None | Some s -> span s name (fun c -> f (Some c))

(* Graft an independently recorded (finished) span tree under the
   scope's current span. This is how the parallel driver merges
   per-worker scopes deterministically: each worker records into its
   own scope (scopes are single-domain cursors, never shared), and the
   joining domain attaches the finished roots in task order. *)
let attach (s : scope) (sp : span) = s.current.sp_children <- sp :: s.current.sp_children

(* ---- metrics ---- *)

let set_metric (s : scope) key m =
  s.current.sp_metrics <- (key, m) :: List.remove_assoc key s.current.sp_metrics

let metric_int s key v = set_metric s key (M_int v)
let metric_float s key v = set_metric s key (M_float v)
let metric_str s key v = set_metric s key (M_str v)

(* Counter: accumulate into an int metric (creates it at 0). *)
let incr s key ?(by = 1) () =
  let prev = match List.assoc_opt key s.current.sp_metrics with Some (M_int i) -> i | _ -> 0 in
  set_metric s key (M_int (prev + by))

let incr_opt s key ?(by = 1) () = Option.iter (fun s -> incr s key ~by ()) s

let metric_int_opt s key v = Option.iter (fun s -> metric_int s key v) s
let metric_float_opt s key v = Option.iter (fun s -> metric_float s key v) s
let metric_str_opt s key v = Option.iter (fun s -> metric_str s key v) s

(* ---- queries (used by tests and the CI schema check) ---- *)

let metrics sp = List.rev sp.sp_metrics
let children sp = List.rev sp.sp_children

let get_int sp key =
  match List.assoc_opt key sp.sp_metrics with Some (M_int i) -> Some i | _ -> None

let get_str sp key =
  match List.assoc_opt key sp.sp_metrics with Some (M_str s) -> Some s | _ -> None

(* All spans, pre-order. *)
let rec all_spans sp = sp :: List.concat_map all_spans (children sp)

(* First span with [name], depth-first. *)
let find_span sp name = List.find_opt (fun s -> s.sp_name = name) (all_spans sp)

let find_spans sp name = List.filter (fun s -> s.sp_name = name) (all_spans sp)

(* Generic span names: per-functionality spans are "func:NAME", so the
   schema collapses them to a stable "func:*" entry. *)
let generic_name n =
  match String.index_opt n ':' with
  | Some i -> String.sub n 0 i ^ ":*"
  | None -> n

(* The metric-name schema of a span tree: every "span.metric" pair plus
   every span name, sorted and distinct. This is the contract CI diffs
   against the checked-in schema file. *)
let schema sp =
  let names = ref [] in
  let add n = if not (List.mem n !names) then names := n :: !names in
  List.iter
    (fun s ->
      let base = generic_name s.sp_name in
      add ("span " ^ base);
      List.iter (fun (k, _) -> add (Printf.sprintf "metric %s.%s" base k)) (metrics s))
    (all_spans sp);
  List.sort compare !names

(* ---- validation (CI gate: no empty or non-finite metrics) ---- *)

exception Invalid_metrics of string

let validate sp =
  List.iter
    (fun s ->
      if s.sp_name = "" then raise (Invalid_metrics "empty span name");
      if not (Float.is_finite s.sp_elapsed_ns) || s.sp_elapsed_ns < 0.0 then
        raise (Invalid_metrics (Printf.sprintf "non-finite elapsed time in span %s" s.sp_name));
      List.iter
        (fun (k, m) ->
          if k = "" then raise (Invalid_metrics ("empty metric name in span " ^ s.sp_name));
          match m with
          | M_float f when not (Float.is_finite f) ->
              raise
                (Invalid_metrics (Printf.sprintf "non-finite metric %s.%s" s.sp_name k))
          | _ -> ())
        (metrics s))
    (all_spans sp)

(* ---- JSON rendering ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Floats must stay JSON-parseable: no nan/inf, no "1." trailing dot. *)
let json_float f =
  if not (Float.is_finite f) then "0"
  else
    let s = Printf.sprintf "%.6f" f in
    s

let metric_to_json = function
  | M_int i -> string_of_int i
  | M_float f -> json_float f
  | M_str s -> Printf.sprintf "\"%s\"" (json_escape s)

let rec span_to_json_buf b sp =
  Buffer.add_string b "{";
  Buffer.add_string b (Printf.sprintf "\"name\":\"%s\"" (json_escape sp.sp_name));
  Buffer.add_string b (Printf.sprintf ",\"elapsed_ms\":%s" (json_float (sp.sp_elapsed_ns /. 1e6)));
  Buffer.add_string b ",\"metrics\":{";
  List.iteri
    (fun i (k, m) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" (json_escape k) (metric_to_json m)))
    (metrics sp);
  Buffer.add_string b "},\"children\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",";
      span_to_json_buf b c)
    (children sp);
  Buffer.add_string b "]}"

let to_json sp =
  let b = Buffer.create 1024 in
  span_to_json_buf b sp;
  Buffer.contents b

(* ---- pretty rendering (the CLI `--profile` tree) ---- *)

let pp_metric fmt = function
  | M_int i -> Format.fprintf fmt "%d" i
  | M_float f -> Format.fprintf fmt "%.3f" f
  | M_str s -> Format.fprintf fmt "%s" s

let rec pp_span ?(indent = 0) fmt sp =
  Format.fprintf fmt "%s%-*s %8.3f ms" (String.make indent ' ')
    (max 1 (28 - indent)) sp.sp_name (sp.sp_elapsed_ns /. 1e6);
  List.iter (fun (k, m) -> Format.fprintf fmt "  %s=%a" k pp_metric m) (metrics sp);
  Format.fprintf fmt "\n";
  List.iter (fun c -> pp_span ~indent:(indent + 2) fmt c) (children sp)

let pp fmt sp = pp_span ~indent:0 fmt sp
let to_pretty sp = Format.asprintf "%a" pp sp
