(** Observability substrate for the compile pipeline: a tree of timed
    spans with attached metrics, plus JSON / pretty renderers and the
    metric-name schema used by the CI gate. See docs/OBSERVABILITY.md. *)

type metric =
  | M_int of int
  | M_float of float
  | M_str of string

type span = {
  sp_name : string;
  mutable sp_elapsed_ns : float;
  mutable sp_metrics : (string * metric) list;  (** reverse insertion order *)
  mutable sp_children : span list;  (** reverse order *)
}

type scope
(** A cursor pointing at the span currently being recorded. *)

val create : ?name:string -> unit -> scope
(** Fresh scope with a root span (default name ["root"]). *)

val root : scope -> span
(** The span the scope currently points at. *)

val finish : scope -> unit
(** Close a root scope: set its span's elapsed time to now minus the
    scope's creation time. (Child spans are closed automatically.) *)

val span : scope -> string -> (scope -> 'a) -> 'a
(** [span s name f] runs [f] inside a fresh, timed child span. The span is
    recorded even when [f] raises. *)

val span_opt : scope option -> string -> (scope option -> 'a) -> 'a
(** Optional-scope variant: with [None] just runs the function. *)

val attach : scope -> span -> unit
(** [attach s sp] grafts an independently recorded span tree as the next
    child of the scope's current span. Scopes are single-domain cursors
    and must never be shared across domains; parallel work records into
    one fresh ({!create}d, {!finish}ed) scope per task and the joining
    domain merges the roots in task order with [attach] — the resulting
    tree shape is deterministic regardless of worker scheduling. *)

(** {2 Metrics} *)

val metric_int : scope -> string -> int -> unit
val metric_float : scope -> string -> float -> unit
val metric_str : scope -> string -> string -> unit

val incr : scope -> string -> ?by:int -> unit -> unit
(** Accumulating counter (starts from 0). *)

val incr_opt : scope option -> string -> ?by:int -> unit -> unit

val metric_int_opt : scope option -> string -> int -> unit
val metric_float_opt : scope option -> string -> float -> unit
val metric_str_opt : scope option -> string -> string -> unit

(** {2 Queries} *)

val metrics : span -> (string * metric) list
(** Metrics in insertion order. *)

val children : span -> span list
(** Child spans in recording order. *)

val get_int : span -> string -> int option
val get_str : span -> string -> string option

val all_spans : span -> span list
(** The whole tree, pre-order. *)

val find_span : span -> string -> span option
val find_spans : span -> string -> span list

(** {2 Schema and validation} *)

val generic_name : string -> string
(** ["func:DOTP"] -> ["func:*"]: collapse instance-specific span names. *)

val schema : span -> string list
(** Sorted, distinct ["span NAME"] / ["metric NAME.KEY"] lines — the
    contract diffed in CI against the checked-in schema file. *)

exception Invalid_metrics of string

val validate : span -> unit
(** Raise {!Invalid_metrics} on empty names or non-finite values — the
    bench baseline writer calls this before writing JSON. *)

(** {2 Rendering} *)

val to_json : span -> string
(** Machine-readable rendering:
    [{"name":..,"elapsed_ms":..,"metrics":{..},"children":[..]}]. *)

val pp : Format.formatter -> span -> unit
val to_pretty : span -> string
